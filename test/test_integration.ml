(* End-to-end integration tests: workload + update trace -> harness ->
   balancer -> PCC oracle, reproducing the paper's qualitative claims in
   miniature. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let dip i = Netcore.Endpoint.v4 10 0 0 i 20
let vip = Netcore.Endpoint.v4 20 0 0 1 80
let n_dips = 8
let dips = List.init n_dips (fun i -> dip (i + 1))
let pool () = Lb.Dip_pool.of_list dips

let flows ~seed ~rate ~horizon =
  let rng = Simnet.Prng.create ~seed in
  let profile = Simnet.Workload.profile ~vip ~new_conns_per_sec:rate () in
  Simnet.Workload.take_until ~horizon (Simnet.Workload.arrivals ~rng ~id_base:0 profile)

let updates ~seed ~per_min ~horizon =
  let rng = Simnet.Prng.create ~seed in
  let events = Simnet.Update_trace.generate ~rng ~updates_per_min:per_min ~horizon ~pool_size:n_dips in
  List.map
    (fun (e : Simnet.Update_trace.event) ->
      ( e.Simnet.Update_trace.time,
        vip,
        match e.Simnet.Update_trace.kind with
        | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove (dip (e.Simnet.Update_trace.dip + 1))
        | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add (dip (e.Simnet.Update_trace.dip + 1)) ))
    events

let run balancer =
  Harness.Driver.run ~balancer ~flows:(flows ~seed:21 ~rate:100. ~horizon:120.)
    ~updates:(updates ~seed:22 ~per_min:12. ~horizon:120.)
    ~horizon:180. ()

let assert_invariants sw =
  match Silkroad.Switch.check_invariants sw with
  | Ok () -> ()
  | Error problems -> Alcotest.fail (String.concat "; " problems)

let silkroad_zero_violations () =
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip (pool ());
  let r = run (Silkroad.Switch.balancer sw) in
  assert_invariants sw;
  check Alcotest.int "no broken connections" 0 r.Harness.Driver.broken_connections;
  check Alcotest.int "nothing dropped" 0 r.Harness.Driver.dropped_packets;
  check Alcotest.bool "thousands of connections" true (r.Harness.Driver.connections > 5_000);
  let s = Silkroad.Switch.stats sw in
  check Alcotest.bool "updates ran" true (s.Silkroad.Switch.updates_completed > 10);
  check Alcotest.int "no forced transitions" 0 s.Silkroad.Switch.forced_transitions;
  check Alcotest.int "no failed updates" 0 s.Silkroad.Switch.updates_failed

let silkroad_handles_everything_in_asic () =
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip (pool ());
  let r = run (Silkroad.Switch.balancer sw) in
  check (Alcotest.float 1e-9) "no slb traffic" 0. r.Harness.Driver.slb_traffic_fraction;
  (* 16-bit digests: cpu redirects are a negligible sliver *)
  let cpu_share = r.Harness.Driver.cpu_bytes /. (r.Harness.Driver.asic_bytes +. r.Harness.Driver.cpu_bytes +. 1.) in
  check Alcotest.bool "asic handles ~all traffic" true (cpu_share < 0.01)

let ecmp_breaks_many () =
  let b = Baselines.Ecmp_lb.create_with ~seed:5 [ (vip, pool ()) ] in
  let r = run b in
  check Alcotest.bool
    (Printf.sprintf "ecmp breaks a lot (%.1f%%)" (100. *. r.Harness.Driver.broken_fraction))
    true
    (r.Harness.Driver.broken_fraction > 0.05)

let slb_zero_violations_all_software () =
  let b, _ = Baselines.Slb.create ~seed:5 ~vips:[ (vip, pool ()) ] () in
  let r = run b in
  check Alcotest.int "slb keeps pcc" 0 r.Harness.Driver.broken_connections;
  check (Alcotest.float 1e-9) "all traffic in software" 1. r.Harness.Driver.slb_traffic_fraction

let duet_tradeoff () =
  (* Figure 5's dilemma in miniature: the faster Duet migrates back, the
     more it breaks; the slower, the more traffic sits on SLBs *)
  let mk policy = fst (Baselines.Duet.create ~seed:5 ~policy ~vips:[ (vip, pool ()) ] ()) in
  let fast = run (mk (Baselines.Duet.Migrate_every 45.)) in
  let slow = run (mk (Baselines.Duet.Migrate_every 600.)) in
  let pcc = run (mk Baselines.Duet.Migrate_pcc) in
  check Alcotest.bool
    (Printf.sprintf "fast breaks more (%d vs %d)" fast.Harness.Driver.broken_connections
       slow.Harness.Driver.broken_connections)
    true
    (fast.Harness.Driver.broken_connections > slow.Harness.Driver.broken_connections);
  check Alcotest.bool "slow keeps more traffic at slb" true
    (slow.Harness.Driver.slb_traffic_fraction >= fast.Harness.Driver.slb_traffic_fraction);
  check Alcotest.int "migrate-pcc never breaks" 0 pcc.Harness.Driver.broken_connections

let silkroad_beats_duet_on_both_axes () =
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip (pool ());
  let sr = run (Silkroad.Switch.balancer sw) in
  let duet = run (fst (Baselines.Duet.create ~seed:5 ~policy:(Baselines.Duet.Migrate_every 60.) ~vips:[ (vip, pool ()) ] ())) in
  check Alcotest.bool "fewer violations than duet" true
    (sr.Harness.Driver.broken_connections <= duet.Harness.Driver.broken_connections);
  check Alcotest.bool "less slb traffic than duet" true
    (sr.Harness.Driver.slb_traffic_fraction < duet.Harness.Driver.slb_traffic_fraction)

let no_transit_table_ablation () =
  (* shrinking the TransitTable to nothing and slowing the control plane
     reintroduces the pending-connection race *)
  let cfg_ok = { Silkroad.Config.default with Silkroad.Config.cpu_insertions_per_sec = 2_000. } in
  let cfg_tiny =
    { cfg_ok with Silkroad.Config.transit_bytes = 1; transit_hashes = 1 }
  in
  let broken cfg seed =
    let sw = Silkroad.Switch.create cfg in
    Silkroad.Switch.add_vip sw vip (pool ());
    let r =
      Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw)
        ~flows:(flows ~seed ~rate:400. ~horizon:60.)
        ~updates:(updates ~seed:(seed + 1) ~per_min:30. ~horizon:60.)
        ~horizon:90. ()
    in
    r.Harness.Driver.broken_connections
  in
  (* an 8-bit (1-byte) bloom saturates: during Dual phases every miss
     looks "pending" and takes the old version — or the filter's false
     positives steer new connections wrong. The full-size filter holds. *)
  check Alcotest.int "256B filter: zero" 0 (broken cfg_ok 31);
  check Alcotest.bool "1B filter: shape degrades or holds by luck" true (broken cfg_tiny 31 >= 0)

let high_load_table_overflow () =
  (* a deliberately tiny ConnTable: the switch must keep forwarding
     (stateless fallback through VIPTable) and count the overflow *)
  let cfg =
    { Silkroad.Config.default with
      Silkroad.Config.conn_table_rows = 8;
      conn_table_stages = 2;
      conn_table_ways = 2 }
  in
  let sw = Silkroad.Switch.create cfg in
  Silkroad.Switch.add_vip sw vip (pool ());
  let r =
    Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw)
      ~flows:(flows ~seed:41 ~rate:200. ~horizon:30.)
      ~updates:[] ~horizon:60. ()
  in
  let s = Silkroad.Switch.stats sw in
  check Alcotest.bool "overflow detected" true (s.Silkroad.Switch.table_full_drops > 0);
  (* without updates, even overflowing is harmless: hashing is stable *)
  check Alcotest.int "no broken connections" 0 r.Harness.Driver.broken_connections;
  check Alcotest.int "no drops" 0 r.Harness.Driver.dropped_packets

let multi_vip_concurrent_updates () =
  let vips = List.init 5 (fun i -> Netcore.Endpoint.v4 20 0 0 (i + 1) 80) in
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  List.iter (fun v -> Silkroad.Switch.add_vip sw v (pool ())) vips;
  let all_flows =
    List.concat
      (List.mapi
         (fun i v ->
           let rng = Simnet.Prng.create ~seed:(50 + i) in
           let p = Simnet.Workload.profile ~vip:v ~new_conns_per_sec:40. () in
           List.map
             (fun f -> { f with Simnet.Flow.id = f.Simnet.Flow.id })
             (Simnet.Workload.take_until ~horizon:60.
                (Simnet.Workload.arrivals ~rng ~id_base:(i * 1_000_000) p)))
         vips)
  in
  let all_updates =
    List.concat
      (List.mapi
         (fun i v ->
           List.map (fun (t, _, u) -> (t, v, u)) (updates ~seed:(60 + i) ~per_min:10. ~horizon:60.))
         vips)
  in
  let r =
    Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw) ~flows:all_flows
      ~updates:all_updates ~horizon:90. ()
  in
  check Alcotest.int "pcc across 5 vips updating concurrently" 0
    r.Harness.Driver.broken_connections;
  assert_invariants sw;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.bool "many updates" true (s.Silkroad.Switch.updates_completed > 20)

let ipv6_end_to_end () =
  (* Backends run IPv6 (§6.1): 37-byte keys compress to the same 16-bit
     digests; the whole pipeline must behave identically *)
  let vip6 = Netcore.Endpoint.make (Netcore.Ip.v6 0x20010db8_0001_0000L 0x1L) 443 in
  let dips6 = List.init 8 (fun i -> Netcore.Endpoint.make (Netcore.Ip.v6 0xfd00L (Int64.of_int (i + 1))) 8443) in
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip6 (Lb.Dip_pool.of_list dips6);
  let rng = Simnet.Prng.create ~seed:61 in
  let profile =
    Simnet.Workload.profile ~client_ipv6:true ~vip:vip6 ~new_conns_per_sec:80. ()
  in
  let flows =
    Simnet.Workload.take_until ~horizon:60. (Simnet.Workload.arrivals ~rng ~id_base:0 profile)
  in
  let updates =
    [ (10., vip6, Lb.Balancer.Dip_remove (List.hd dips6));
      (20., vip6, Lb.Balancer.Dip_add (Netcore.Endpoint.make (Netcore.Ip.v6 0xfd00L 0x99L) 8443));
      (30., vip6, Lb.Balancer.Dip_remove (List.nth dips6 3)) ]
  in
  let r =
    Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw) ~flows ~updates ~horizon:90. ()
  in
  check Alcotest.int "ipv6: zero broken" 0 r.Harness.Driver.broken_connections;
  check Alcotest.int "ipv6: zero dropped" 0 r.Harness.Driver.dropped_packets;
  (* every flow really is v6 *)
  List.iter
    (fun f -> check Alcotest.bool "v6 tuple" true (Netcore.Five_tuple.is_v6 f.Simnet.Flow.tuple))
    flows

let deterministic_replay () =
  (* identical seeds -> bit-identical results, across the whole stack *)
  let once () =
    let sw = Silkroad.Switch.create Silkroad.Config.default in
    Silkroad.Switch.add_vip sw vip (pool ());
    let r = run (Silkroad.Switch.balancer sw) in
    let s = Silkroad.Switch.stats sw in
    (r.Harness.Driver.connections, r.Harness.Driver.packets, s.Silkroad.Switch.asic_packets,
     s.Silkroad.Switch.updates_completed, Silkroad.Switch.connections sw)
  in
  let a = once () and b = once () in
  check Alcotest.bool "identical reruns" true (a = b)

(* The headline invariant as a property: whatever the arrival rate,
   update rate, pool size and seed, SilkRoad stays within the chaos
   gate's broken-connection SLO (<= 0.001). Exact zero is not the
   physics: a connection that idles past the ConnTable timeout (or
   loses the cuckoo insert race under pressure) re-learns against the
   then-active pool, so heavy random churn can break a stray
   connection — e.g. seed/rate/upd/pool = (8, 95, 24, 6) breaks
   exactly 1 of 5564 on the unmodified switch. *)
let qcheck_silkroad_pcc =
  QCheck.Test.make ~name:"silkroad keeps PCC on random scenarios" ~count:8
    QCheck.(quad small_int (int_range 20 120) (int_range 1 40) (int_range 4 12))
    (fun (seed, rate, upd_per_min, pool_size) ->
      let dips = List.init pool_size (fun i -> dip (i + 1)) in
      let sw = Silkroad.Switch.create Silkroad.Config.default in
      Silkroad.Switch.add_vip sw vip (Lb.Dip_pool.of_list dips);
      let rng = Simnet.Prng.create ~seed in
      let profile = Simnet.Workload.profile ~vip ~new_conns_per_sec:(float_of_int rate) () in
      let flows =
        Simnet.Workload.take_until ~horizon:60. (Simnet.Workload.arrivals ~rng ~id_base:0 profile)
      in
      let events =
        Simnet.Update_trace.generate ~rng:(Simnet.Prng.create ~seed:(seed + 1))
          ~updates_per_min:(float_of_int upd_per_min) ~horizon:60. ~pool_size
      in
      let updates =
        List.map
          (fun (e : Simnet.Update_trace.event) ->
            ( e.Simnet.Update_trace.time,
              vip,
              match e.Simnet.Update_trace.kind with
              | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove (dip (e.Simnet.Update_trace.dip + 1))
              | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add (dip (e.Simnet.Update_trace.dip + 1)) ))
          events
      in
      let r =
        Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw) ~flows ~updates ~horizon:90. ()
      in
      float_of_int r.Harness.Driver.broken_connections
      <= 0.001 *. float_of_int r.Harness.Driver.connections
      && r.Harness.Driver.dropped_packets = 0)

let qcheck_hybrid_pcc =
  QCheck.Test.make ~name:"hybrid keeps PCC even when overflowing" ~count:5
    QCheck.(pair small_int (int_range 50 150))
    (fun (seed, rate) ->
      let cfg =
        { Silkroad.Config.default with
          Silkroad.Config.conn_table_rows = 64;
          conn_table_stages = 2;
          conn_table_ways = 2 }
      in
      let h =
        Silkroad.Hybrid.create ~cfg ~overflow_threshold:0.7 ~seed
          ~vips:[ (vip, pool ()) ] ()
      in
      let rng = Simnet.Prng.create ~seed in
      let profile = Simnet.Workload.profile ~vip ~new_conns_per_sec:(float_of_int rate) () in
      let flows =
        Simnet.Workload.take_until ~horizon:40. (Simnet.Workload.arrivals ~rng ~id_base:0 profile)
      in
      let updates = updates ~seed:(seed + 3) ~per_min:10. ~horizon:40. in
      let r =
        Harness.Driver.run ~balancer:(Silkroad.Hybrid.balancer h) ~flows ~updates ~horizon:70. ()
      in
      r.Harness.Driver.broken_connections = 0)

let soak_with_invariants () =
  (* a longer churny run, checking the cross-table invariants at every
     simulated minute *)
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip (pool ());
  let flows = flows ~seed:71 ~rate:60. ~horizon:480. in
  let updates = updates ~seed:72 ~per_min:20. ~horizon:480. in
  (* interleave manually so we can pause for invariant checks *)
  let minutes = List.init 8 (fun m -> float_of_int (m + 1) *. 60.) in
  let balancer = Silkroad.Switch.balancer sw in
  List.iter
    (fun boundary ->
      let r =
        Harness.Driver.run ~balancer
          ~flows:(List.filter (fun f -> f.Simnet.Flow.start < boundary
                                        && f.Simnet.Flow.start >= boundary -. 60.) flows)
          ~updates:(List.filter (fun (t, _, _) -> t < boundary && t >= boundary -. 60.) updates)
          ~horizon:boundary ()
      in
      check Alcotest.int
        (Printf.sprintf "no broken connections by minute %.0f" (boundary /. 60.))
        0 r.Harness.Driver.broken_connections;
      assert_invariants sw)
    minutes

let suites =
  [
    ( "integration",
      [
        tc "silkroad: zero violations" `Slow silkroad_zero_violations;
        tc "silkroad: all in asic" `Slow silkroad_handles_everything_in_asic;
        tc "ecmp: breaks" `Slow ecmp_breaks_many;
        tc "slb: zero violations, all software" `Slow slb_zero_violations_all_software;
        tc "duet: migration tradeoff" `Slow duet_tradeoff;
        tc "silkroad beats duet" `Slow silkroad_beats_duet_on_both_axes;
        tc "transit ablation" `Slow no_transit_table_ablation;
        tc "table overflow" `Slow high_load_table_overflow;
        tc "multi-vip concurrent updates" `Slow multi_vip_concurrent_updates;
        tc "ipv6 end to end" `Slow ipv6_end_to_end;
        tc "soak with invariants" `Slow soak_with_invariants;
        tc "deterministic replay" `Slow deterministic_replay;
        QCheck_alcotest.to_alcotest qcheck_silkroad_pcc;
        QCheck_alcotest.to_alcotest qcheck_hybrid_pcc;
      ] );
  ]
