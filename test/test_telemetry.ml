(* Tests for the telemetry subsystem: registry semantics, streaming
   histogram accuracy against exact order statistics, merge laws, JSON
   round-trips, and the constant-memory guarantee the harness driver
   relies on. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- registry ---- *)

let registry_basics () =
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "x.count" in
  Telemetry.Registry.Counter.incr c;
  Telemetry.Registry.Counter.add c 41;
  (* get-or-create: same handle behind the same key *)
  let c' = Telemetry.Registry.counter reg "x.count" in
  Telemetry.Registry.Counter.incr c';
  check Alcotest.int "shared counter" 43 (Telemetry.Registry.counter_value reg "x.count");
  let g = Telemetry.Registry.gauge reg "x.level" in
  Telemetry.Registry.Gauge.set g 2.5;
  Telemetry.Registry.Gauge.add g 0.5;
  check (Alcotest.float 1e-12) "gauge" 3.0 (Telemetry.Registry.gauge_value reg "x.level")

let registry_labels () =
  let reg = Telemetry.Registry.create () in
  let a = Telemetry.Registry.counter reg ~labels:[ ("vip", "a") ] "x" in
  let b = Telemetry.Registry.counter reg ~labels:[ ("vip", "b") ] "x" in
  Telemetry.Registry.Counter.incr a;
  Telemetry.Registry.Counter.add b 2;
  check Alcotest.int "label a" 1
    (Telemetry.Registry.counter_value reg ~labels:[ ("vip", "a") ] "x");
  check Alcotest.int "label b" 2
    (Telemetry.Registry.counter_value reg ~labels:[ ("vip", "b") ] "x");
  (* label order is canonicalized *)
  let ab = Telemetry.Registry.counter reg ~labels:[ ("k1", "1"); ("k2", "2") ] "y" in
  let ba = Telemetry.Registry.counter reg ~labels:[ ("k2", "2"); ("k1", "1") ] "y" in
  Telemetry.Registry.Counter.incr ab;
  Telemetry.Registry.Counter.incr ba;
  check Alcotest.int "sorted labels are one key" 2
    (Telemetry.Registry.counter_value reg ~labels:[ ("k1", "1"); ("k2", "2") ] "y")

let registry_kind_mismatch () =
  let reg = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter reg "m");
  (match Telemetry.Registry.gauge reg "m" with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

(* ---- histogram quantile accuracy ---- *)

let exact_percentile sorted q =
  (* nearest-rank on a sorted array *)
  let n = Array.length sorted in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) i))

let quantile_accuracy_on samples name =
  let h = Telemetry.Histogram.create () in
  Array.iter (Telemetry.Histogram.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  List.iter
    (fun q ->
      let exact = exact_percentile sorted q in
      let approx = Telemetry.Histogram.quantile h q in
      let rel = Float.abs (approx -. exact) /. exact in
      if rel > 0.05 then
        Alcotest.failf "%s: q=%.3f exact=%.6g approx=%.6g rel=%.3f" name q exact approx rel)
    [ 0.25; 0.5; 0.9; 0.99; 0.999 ]

let quantile_accuracy () =
  let rng = Random.State.make [| 42 |] in
  (* lognormal-ish spread over several decades, like latencies *)
  let lognormal () =
    let u1 = Random.State.float rng 1. +. 1e-12 and u2 = Random.State.float rng 1. in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    exp ((z *. 1.5) -. 8.)
  in
  quantile_accuracy_on (Array.init 10_000 (fun _ -> lognormal ())) "lognormal";
  quantile_accuracy_on
    (Array.init 10_000 (fun _ -> 1e-6 +. Random.State.float rng 1e-3))
    "uniform";
  (* heavily duplicated values *)
  quantile_accuracy_on
    (Array.init 10_000 (fun i -> if i mod 10 = 0 then 5e-3 else 7e-4))
    "bimodal"

let quantile_edge_cases () =
  let h = Telemetry.Histogram.create () in
  check (Alcotest.float 0.) "empty" 0. (Telemetry.Histogram.quantile h 0.5);
  Telemetry.Histogram.observe h 3.2e-4;
  check (Alcotest.float 1e-12) "single value, q=0" 3.2e-4 (Telemetry.Histogram.quantile h 0.);
  check (Alcotest.float 1e-12) "single value, q=1" 3.2e-4 (Telemetry.Histogram.quantile h 1.);
  let m = Telemetry.Histogram.median h in
  check Alcotest.bool "single value, median within bucket" true
    (Float.abs (m -. 3.2e-4) /. 3.2e-4 < 0.05);
  (* out-of-range values land in the overflow/underflow buckets but keep
     count/min/max exact *)
  Telemetry.Histogram.observe h 0.;
  Telemetry.Histogram.observe h 1e30;
  check Alcotest.int "count" 3 (Telemetry.Histogram.count h);
  check (Alcotest.float 0.) "min" 0. (Telemetry.Histogram.min_value h);
  check (Alcotest.float 0.) "max" 1e30 (Telemetry.Histogram.max_value h)

(* ---- merge laws ---- *)

let split_merge_equals_whole () =
  let rng = Random.State.make [| 7 |] in
  let samples = Array.init 3_000 (fun _ -> exp (Random.State.float rng 10. -. 9.)) in
  let whole = Telemetry.Histogram.create () in
  Array.iter (Telemetry.Histogram.observe whole) samples;
  let parts = Array.init 3 (fun _ -> Telemetry.Histogram.create ()) in
  Array.iteri (fun i v -> Telemetry.Histogram.observe parts.(i mod 3) v) samples;
  let merged = Telemetry.Histogram.merge (Telemetry.Histogram.merge parts.(0) parts.(1)) parts.(2) in
  check Alcotest.int "count" (Telemetry.Histogram.count whole) (Telemetry.Histogram.count merged);
  List.iter
    (fun q ->
      check (Alcotest.float 1e-12)
        (Printf.sprintf "quantile %.3f" q)
        (Telemetry.Histogram.quantile whole q)
        (Telemetry.Histogram.quantile merged q))
    [ 0.1; 0.5; 0.9; 0.99 ]

let merge_associativity () =
  let rng = Random.State.make [| 11 |] in
  let mk () =
    let h = Telemetry.Histogram.create () in
    for _ = 1 to 500 do
      Telemetry.Histogram.observe h (exp (Random.State.float rng 12. -. 10.))
    done;
    h
  in
  let a = mk () and b = mk () and c = mk () in
  let l = Telemetry.Histogram.merge (Telemetry.Histogram.merge a b) c in
  let r = Telemetry.Histogram.merge a (Telemetry.Histogram.merge b c) in
  check Alcotest.int "count" (Telemetry.Histogram.count l) (Telemetry.Histogram.count r);
  check (Alcotest.float 1e-12) "min" (Telemetry.Histogram.min_value l)
    (Telemetry.Histogram.min_value r);
  check (Alcotest.float 1e-12) "max" (Telemetry.Histogram.max_value l)
    (Telemetry.Histogram.max_value r);
  (* bucket counts are ints, so quantiles agree exactly *)
  List.iter
    (fun q ->
      check (Alcotest.float 0.)
        (Printf.sprintf "quantile %.3f" q)
        (Telemetry.Histogram.quantile l q) (Telemetry.Histogram.quantile r q))
    [ 0.01; 0.5; 0.999 ];
  (* sums are float additions: associative only up to rounding *)
  check Alcotest.bool "sum close" true
    (Float.abs (Telemetry.Histogram.sum l -. Telemetry.Histogram.sum r)
     < 1e-9 *. Float.abs (Telemetry.Histogram.sum l))

let registry_merge () =
  let a = Telemetry.Registry.create () and b = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.add (Telemetry.Registry.counter a "n") 3;
  Telemetry.Registry.Counter.add (Telemetry.Registry.counter b "n") 4;
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge b "g") 1.5;
  let into = Telemetry.Registry.create () in
  Telemetry.Registry.merge_into ~into a;
  Telemetry.Registry.merge_into ~into b;
  check Alcotest.int "counters sum" 7 (Telemetry.Registry.counter_value into "n");
  check (Alcotest.float 1e-12) "gauge carried" 1.5 (Telemetry.Registry.gauge_value into "g");
  (* sources are unchanged *)
  check Alcotest.int "source a intact" 3 (Telemetry.Registry.counter_value a "n")

(* ---- JSON ---- *)

let json_roundtrip () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.add (Telemetry.Registry.counter reg "c.packets") 12345;
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge reg "g.ratio") 0.1;
  Telemetry.Registry.Gauge.set
    (Telemetry.Registry.gauge reg ~labels:[ ("vip", "20.0.0.1:80") ] "g.per_vip")
    (-3.75);
  let h = Telemetry.Registry.histogram reg "h.latency" in
  List.iter (Telemetry.Histogram.observe h) [ 1e-6; 2e-5; 3e-4; 0.7e-6; 1e-3 ];
  let s = Telemetry.Registry.snapshot reg in
  (match Telemetry.Snapshot.of_json (Telemetry.Snapshot.to_json s) with
   | Error e -> Alcotest.failf "of_json failed: %s" e
   | Ok s' -> check Alcotest.bool "roundtrip equal" true (Telemetry.Snapshot.equal s s'));
  (* snapshot accessors *)
  check (Alcotest.option Alcotest.int) "counter" (Some 12345)
    (Telemetry.Snapshot.counter s "c.packets");
  (match Telemetry.Snapshot.histogram s "h.latency" with
   | None -> Alcotest.fail "histogram missing from snapshot"
   | Some sum -> check Alcotest.int "histogram count" 5 sum.Telemetry.Snapshot.count)

let json_parser_hostility () =
  List.iter
    (fun s ->
      match Telemetry.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2" ];
  (match Telemetry.Json.parse "{\"a\": [1, 2.5, \"x\\n\", true, null]}" with
   | Error e -> Alcotest.failf "parse failed: %s" e
   | Ok v ->
     check Alcotest.bool "member" true (Telemetry.Json.member "a" v <> None));
  (* non-finite floats serialize as null rather than invalid JSON *)
  check Alcotest.string "nan is null" "null" (Telemetry.Json.to_string (Telemetry.Json.Float Float.nan))

let csv_export () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.incr (Telemetry.Registry.counter reg "a.count");
  let h = Telemetry.Registry.histogram reg ~labels:[ ("vip", "v1") ] "a.lat" in
  Telemetry.Histogram.observe h 1e-3;
  let csv = Telemetry.Registry.to_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + counter + 8 histogram fields (count/sum/min/max/quantiles) *)
  check Alcotest.int "header + 9 rows" 10 (List.length lines);
  check Alcotest.string "header" "name,labels,kind,field,value" (List.hd lines);
  check Alcotest.bool "counter row" true (List.mem "a.count,,counter,value,1" lines);
  check Alcotest.bool "histogram count row" true
    (List.mem "a.lat,vip=v1,histogram,count,1" lines)

(* ---- constant memory ---- *)

let million_observations_constant_memory () =
  let h = Telemetry.Histogram.create () in
  for i = 1 to 10_000 do
    Telemetry.Histogram.observe h (1e-6 *. float_of_int i)
  done;
  let words_before = Telemetry.Histogram.memory_words h in
  for i = 1 to 1_000_000 do
    Telemetry.Histogram.observe h (1e-7 *. float_of_int i)
  done;
  check Alcotest.int "1.01M observations" 1_010_000 (Telemetry.Histogram.count h);
  check Alcotest.int "footprint unchanged" words_before (Telemetry.Histogram.memory_words h)

(* The driver itself: a run with >=1M probes must not return a result
   that grows with the probe count (the old float-list accumulator did). *)
let driver_constant_memory () =
  let dip = Netcore.Endpoint.v4 10 0 0 1 20 in
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let stub () =
    let reg = Telemetry.Registry.create () in
    {
      Lb.Balancer.name = "stub";
      advance = (fun ~now:_ -> ());
      process =
        (fun ~now:_ _ -> { Lb.Balancer.dip = Some dip; location = Lb.Balancer.Asic });
      update = (fun ~now:_ ~vip:_ _ -> ());
      connections = (fun () -> 0);
      metrics = (fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let flows n =
    List.init n (fun i ->
        {
          Simnet.Flow.id = i;
          tuple =
            Netcore.Five_tuple.make
              ~src:(Netcore.Endpoint.v4 1 2 ((i / 60000) + 1) 4 (1 + (i mod 60000)))
              ~dst:vip ~proto:Netcore.Protocol.Tcp;
          start = 0.;
          duration = 100.;
          bytes_per_sec = 1000.;
        })
  in
  let run n =
    Harness.Driver.run ~early_offsets:[] ~probe_interval:0.1 ~balancer:(stub ())
      ~flows:(flows n) ~updates:[] ~horizon:100. ()
  in
  let small = run 10 in
  let large = run 1_000 in
  check Alcotest.bool ">=1M probes" true (large.Harness.Driver.packets >= 1_000_000);
  let words r = Obj.reachable_words (Obj.repr r) in
  (* identical metric sets -> near-identical footprint; the old list kept
     ~3 words per probe, which would put [large] ~3M words above [small] *)
  check Alcotest.bool "result footprint independent of probe count" true
    (words large < words small + 1024)

(* ---- integration with the switch ---- *)

let switch_stats_match_registry () =
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let pool = Lb.Dip_pool.of_list (List.init 8 (fun i -> Netcore.Endpoint.v4 10 0 0 (i + 1) 20)) in
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Silkroad.Switch.add_vip sw vip pool;
  let flows =
    List.init 300 (fun i ->
        {
          Simnet.Flow.id = i;
          tuple =
            Netcore.Five_tuple.make
              ~src:(Netcore.Endpoint.v4 1 2 3 4 (1000 + i))
              ~dst:vip ~proto:Netcore.Protocol.Tcp;
          start = float_of_int i *. 0.05;
          duration = 30.;
          bytes_per_sec = 1000.;
        })
  in
  let updates =
    [ (5., vip, Lb.Balancer.Dip_add (Netcore.Endpoint.v4 10 0 0 99 20));
      (12., vip, Lb.Balancer.Dip_remove (Netcore.Endpoint.v4 10 0 0 99 20)) ]
  in
  let r =
    Harness.Driver.run ~balancer:(Silkroad.Switch.balancer sw) ~flows ~updates ~horizon:60. ()
  in
  let stats = Silkroad.Switch.stats sw in
  let reg = Silkroad.Switch.metrics sw in
  let cv name = Telemetry.Registry.counter_value reg name in
  check Alcotest.int "asic_packets" stats.Silkroad.Switch.asic_packets (cv "switch.asic_packets");
  check Alcotest.int "cpu_packets" stats.Silkroad.Switch.cpu_packets (cv "switch.cpu_packets");
  check Alcotest.int "dropped_packets" stats.Silkroad.Switch.dropped_packets
    (cv "switch.dropped_packets");
  check Alcotest.int "connections_seen" stats.Silkroad.Switch.connections_seen
    (cv "switch.connections_seen");
  check Alcotest.int "false_hits" stats.Silkroad.Switch.false_hits (cv "conn_table.false_hits");
  check Alcotest.int "collision_repairs" stats.Silkroad.Switch.collision_repairs
    (cv "conn_table.repairs");
  check Alcotest.int "updates_completed" stats.Silkroad.Switch.updates_completed
    (cv "switch.updates_completed");
  (* the uniform balancer pair covers every forwarded/dropped packet *)
  check Alcotest.int "lb.packets + lb.dropped = driver packets"
    r.Harness.Driver.packets
    (cv "lb.packets" + cv "lb.dropped_packets");
  (* the driver's merged snapshot carries the same values *)
  check (Alcotest.option Alcotest.int) "snapshot matches registry"
    (Some stats.Silkroad.Switch.asic_packets)
    (Telemetry.Snapshot.counter r.Harness.Driver.telemetry "switch.asic_packets");
  (* satellite: collision repairs are accounted against the CPU queue *)
  if stats.Silkroad.Switch.collision_repairs > 0 then
    check Alcotest.bool "repairs completed through cpu queue" true
      (cv "switch.repairs_completed" > 0)

let driver_latency_agrees_with_exact () =
  (* drive the real switch, then check the snapshot's latency quantiles
     against exact percentiles of a parallel exact recording *)
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let dip = Netcore.Endpoint.v4 10 0 0 1 20 in
  (* a balancer alternating asic/slb locations exercises both latency
     distributions *)
  let i = ref 0 in
  let reg = Telemetry.Registry.create () in
  let b =
    {
      Lb.Balancer.name = "alt";
      advance = (fun ~now:_ -> ());
      process =
        (fun ~now:_ _ ->
          incr i;
          let location = if !i mod 4 = 0 then Lb.Balancer.Slb else Lb.Balancer.Asic in
          { Lb.Balancer.dip = Some dip; location });
      update = (fun ~now:_ ~vip:_ _ -> ());
      connections = (fun () -> 0);
      metrics = (fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let flows =
    List.init 200 (fun i ->
        {
          Simnet.Flow.id = i;
          tuple =
            Netcore.Five_tuple.make
              ~src:(Netcore.Endpoint.v4 9 8 7 6 (2000 + i))
              ~dst:vip ~proto:Netcore.Protocol.Tcp;
          start = 0.;
          duration = 200.;
          bytes_per_sec = 100.;
        })
  in
  let r = Harness.Driver.run ~balancer:b ~flows ~updates:[] ~horizon:200. () in
  (* median probe is ASIC-handled: the fixed sub-microsecond latency *)
  check Alcotest.bool "median is asic latency within 5%" true
    (Float.abs (r.Harness.Driver.latency_median -. Harness.Driver.asic_latency)
     /. Harness.Driver.asic_latency
     < 0.05);
  (* p99 must be in the SLB band (50us..1ms-ish), far above the median *)
  check Alcotest.bool "p99 in slb band" true
    (r.Harness.Driver.latency_p99 > 20e-6 && r.Harness.Driver.latency_p99 < 5e-3);
  match Telemetry.Snapshot.histogram r.Harness.Driver.telemetry "driver.latency" with
  | None -> Alcotest.fail "driver.latency missing"
  | Some s ->
    check Alcotest.int "histogram saw every probe" r.Harness.Driver.packets
      s.Telemetry.Snapshot.count

let suites =
  [
    ( "telemetry.registry",
      [
        tc "counters and gauges" `Quick registry_basics;
        tc "labels" `Quick registry_labels;
        tc "kind mismatch" `Quick registry_kind_mismatch;
        tc "merge" `Quick registry_merge;
      ] );
    ( "telemetry.histogram",
      [
        tc "quantiles within 5% of exact" `Quick quantile_accuracy;
        tc "edge cases" `Quick quantile_edge_cases;
        tc "split+merge = whole" `Quick split_merge_equals_whole;
        tc "merge associativity" `Quick merge_associativity;
        tc "1M observations, constant memory" `Quick million_observations_constant_memory;
      ] );
    ( "telemetry.json",
      [
        tc "snapshot roundtrip" `Quick json_roundtrip;
        tc "parser rejects garbage" `Quick json_parser_hostility;
        tc "csv export" `Quick csv_export;
      ] );
    ( "telemetry.integration",
      [
        tc "switch stats = registry" `Quick switch_stats_match_registry;
        tc "driver latency quantiles" `Quick driver_latency_agrees_with_exact;
        tc "driver constant memory @1M probes" `Slow driver_constant_memory;
      ] );
  ]
