(* Tests for the SilkRoad core: version allocator, DIPPoolTable (with
   version reuse), VIPTable phases, ConnTable digests and collision
   repair, the switch's control plane and 3-step PCC updates, and the
   analytic models. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let dip i = Netcore.Endpoint.v4 10 0 0 i 20
let vip = Netcore.Endpoint.v4 20 0 0 1 80
let pool l = Lb.Dip_pool.of_list (List.map dip l)

let flow i =
  Netcore.Five_tuple.make
    ~src:(Netcore.Endpoint.v4 1 2 ((i / 60000) + 1) 4 (1 + (i mod 60000)))
    ~dst:vip ~proto:Netcore.Protocol.Tcp

(* ---------- Version ---------- *)

let version_alloc_release () =
  let v = Silkroad.Version.create ~bits:2 in
  check Alcotest.int "capacity" 4 (Silkroad.Version.capacity v);
  let a = Result.get_ok (Silkroad.Version.allocate v) in
  let b = Result.get_ok (Silkroad.Version.allocate v) in
  check Alcotest.bool "distinct" true (a <> b);
  check Alcotest.int "free" 2 (Silkroad.Version.free_count v);
  Silkroad.Version.release v a;
  check Alcotest.int "free after release" 3 (Silkroad.Version.free_count v);
  check Alcotest.bool "released not allocated" false (Silkroad.Version.is_allocated v a)

let version_ring_buffer_order () =
  let v = Silkroad.Version.create ~bits:2 in
  let all = List.init 4 (fun _ -> Result.get_ok (Silkroad.Version.allocate v)) in
  check (Alcotest.list Alcotest.int) "fifo" [ 0; 1; 2; 3 ] all;
  Silkroad.Version.release v 2;
  Silkroad.Version.release v 0;
  check Alcotest.int "ring order" 2 (Result.get_ok (Silkroad.Version.allocate v));
  check Alcotest.int "ring order 2" 0 (Result.get_ok (Silkroad.Version.allocate v))

let version_exhaustion () =
  let v = Silkroad.Version.create ~bits:1 in
  ignore (Silkroad.Version.allocate v);
  ignore (Silkroad.Version.allocate v);
  (match Silkroad.Version.allocate v with
   | Error `Exhausted -> ()
   | Ok _ -> Alcotest.fail "expected exhaustion");
  check Alcotest.int "counted" 1 (Silkroad.Version.exhaustions v)

let version_double_release () =
  let v = Silkroad.Version.create ~bits:2 in
  let a = Result.get_ok (Silkroad.Version.allocate v) in
  Silkroad.Version.release v a;
  Alcotest.check_raises "double release" (Invalid_argument "Version.release: not allocated")
    (fun () -> Silkroad.Version.release v a)

let qcheck_version_never_double_allocates =
  QCheck.Test.make ~name:"allocator never hands out a live version" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let v = Silkroad.Version.create ~bits:3 in
      let live = Hashtbl.create 8 in
      List.for_all
        (fun alloc ->
          if alloc then
            match Silkroad.Version.allocate v with
            | Ok x ->
              let fresh = not (Hashtbl.mem live x) in
              Hashtbl.replace live x ();
              fresh
            | Error `Exhausted -> Hashtbl.length live = 8
          else
            match Hashtbl.fold (fun k () acc -> k :: acc) live [] with
            | [] -> true
            | k :: _ ->
              Hashtbl.remove live k;
              Silkroad.Version.release v k;
              true)
        ops)

(* ---------- Dip_pool_table ---------- *)

let dpt () = Silkroad.Dip_pool_table.create ~version_bits:6 ~seed:1

let dpt_basics () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2 ])) in
  check Alcotest.bool "has vip" true (Silkroad.Dip_pool_table.has_vip t vip);
  (match Silkroad.Dip_pool_table.pool t ~vip ~version:v0 with
   | Some p -> check Alcotest.int "pool size" 2 (Lb.Dip_pool.size p)
   | None -> Alcotest.fail "pool missing");
  (match Silkroad.Dip_pool_table.add_vip t vip (pool [ 1 ]) with
   | Error `Exists -> ()
   | Ok _ -> Alcotest.fail "duplicate vip accepted");
  match Silkroad.Dip_pool_table.select_dip t ~vip ~version:v0 (flow 1) with
  | Some d -> check Alcotest.bool "selected member" true (List.mem d [ dip 1; dip 2 ])
  | None -> Alcotest.fail "no dip"

let dpt_publish_remove_creates_version () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2; 3 ])) in
  let v1 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 2)))
  in
  check Alcotest.bool "new version" true (v1 <> v0);
  (* both pools coexist: old conns keep v0 *)
  (match Silkroad.Dip_pool_table.pool t ~vip ~version:v0 with
   | Some p -> check Alcotest.int "old intact" 3 (Lb.Dip_pool.size p)
   | None -> Alcotest.fail "old destroyed");
  match Silkroad.Dip_pool_table.pool t ~vip ~version:v1 with
  | Some p ->
    check Alcotest.int "new smaller" 2 (Lb.Dip_pool.size p);
    check Alcotest.bool "dip gone" false (Lb.Dip_pool.mem p (dip 2))
  | None -> Alcotest.fail "new missing"

let dpt_version_reuse () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2 ])) in
  (* keep v0 alive with a connection *)
  Silkroad.Dip_pool_table.retain t ~vip ~version:v0;
  let v1 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 2)))
  in
  (* add a substitute: the paper's reuse case — v0 is recycled *)
  let v2 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v1 (Lb.Balancer.Dip_add (dip 4)))
  in
  check Alcotest.int "reused v0" v0 v2;
  check Alcotest.int "one reuse" 1 (Silkroad.Dip_pool_table.reuses t);
  (match Silkroad.Dip_pool_table.pool t ~vip ~version:v2 with
   | Some p ->
     check Alcotest.bool "substituted" true (Lb.Dip_pool.mem p (dip 4));
     check Alcotest.bool "old member kept" true (Lb.Dip_pool.mem p (dip 1));
     check Alcotest.bool "removed gone" false (Lb.Dip_pool.mem p (dip 2))
   | None -> Alcotest.fail "reused pool missing");
  (* slot positions preserved for surviving members *)
  match Silkroad.Dip_pool_table.pool t ~vip ~version:v2 with
  | Some p -> check Alcotest.bool "slot kept" true
                (Netcore.Endpoint.equal (Lb.Dip_pool.members p).(0) (dip 1))
  | None -> assert false

let dpt_readd_same_dip_reuses () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2 ])) in
  Silkroad.Dip_pool_table.retain t ~vip ~version:v0;
  let v1 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 2)))
  in
  (* the same DIP comes back (rolling reboot): reuse without mutation *)
  let v2 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v1 (Lb.Balancer.Dip_add (dip 2)))
  in
  check Alcotest.int "identical pool reused" v0 v2

let dpt_refcount_destroys () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2 ])) in
  Silkroad.Dip_pool_table.retain t ~vip ~version:v0;
  let v1 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 2)))
  in
  check Alcotest.int "two live" 2 (Silkroad.Dip_pool_table.live_versions t ~vip);
  (* the last v0 connection ends: v0 is destroyed (v1 is current) *)
  Silkroad.Dip_pool_table.release t ~vip ~version:v0 ~current:v1;
  check Alcotest.int "one live" 1 (Silkroad.Dip_pool_table.live_versions t ~vip);
  check Alcotest.bool "v0 gone" true (Silkroad.Dip_pool_table.pool t ~vip ~version:v0 = None)

let dpt_current_survives_zero_refs () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1 ])) in
  Silkroad.Dip_pool_table.retain t ~vip ~version:v0;
  Silkroad.Dip_pool_table.release t ~vip ~version:v0 ~current:v0;
  check Alcotest.bool "current stays" true (Silkroad.Dip_pool_table.pool t ~vip ~version:v0 <> None)

let dpt_gc () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1; 2 ])) in
  (* v0 never attracted connections; after an update it should be
     collectable *)
  let v1 =
    Result.get_ok (Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 2)))
  in
  Silkroad.Dip_pool_table.gc t ~vip ~current:v1;
  check Alcotest.int "only current" 1 (Silkroad.Dip_pool_table.live_versions t ~vip)

let dpt_bad_updates () =
  let t = dpt () in
  let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t vip (pool [ 1 ])) in
  (match Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_remove (dip 9)) with
   | Error (`Bad_update _) -> ()
   | Ok _ | Error _ -> Alcotest.fail "removing absent dip accepted");
  (match Silkroad.Dip_pool_table.publish t ~vip ~current:v0 (Lb.Balancer.Dip_add (dip 1)) with
   | Error (`Bad_update _) -> ()
   | Ok _ | Error _ -> Alcotest.fail "adding present dip accepted");
  match Silkroad.Dip_pool_table.publish t ~vip:(dip 99) ~current:0 (Lb.Balancer.Dip_add (dip 1)) with
  | Error `No_such_vip -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown vip accepted"

(* ---------- Vip_table ---------- *)

let vipt_phases () =
  let t = Silkroad.Vip_table.create () in
  Silkroad.Vip_table.add t vip ~version:3;
  check (Alcotest.option Alcotest.int) "current" (Some 3) (Silkroad.Vip_table.current t vip);
  check Alcotest.int "not updating" 0 (Silkroad.Vip_table.updating_count t);
  Silkroad.Vip_table.start_recording t vip;
  check Alcotest.int "updating" 1 (Silkroad.Vip_table.updating_count t);
  check Alcotest.bool "recording" true (Silkroad.Vip_table.phase t vip = Some Silkroad.Vip_table.Recording);
  Silkroad.Vip_table.execute t vip ~new_version:5;
  check (Alcotest.option Alcotest.int) "flipped" (Some 5) (Silkroad.Vip_table.current t vip);
  (match Silkroad.Vip_table.phase t vip with
   | Some (Silkroad.Vip_table.Dual { old_version }) -> check Alcotest.int "old kept" 3 old_version
   | _ -> Alcotest.fail "not dual");
  Silkroad.Vip_table.finish t vip;
  check Alcotest.bool "idle" true (Silkroad.Vip_table.phase t vip = Some Silkroad.Vip_table.Idle);
  check Alcotest.int "not updating anymore" 0 (Silkroad.Vip_table.updating_count t)

let vipt_illegal_transitions () =
  let t = Silkroad.Vip_table.create () in
  Silkroad.Vip_table.add t vip ~version:0;
  Alcotest.check_raises "execute w/o recording"
    (Invalid_argument "Vip_table.execute: not recording") (fun () ->
      Silkroad.Vip_table.execute t vip ~new_version:1);
  Alcotest.check_raises "finish w/o dual" (Invalid_argument "Vip_table.finish: not in dual phase")
    (fun () -> Silkroad.Vip_table.finish t vip);
  Silkroad.Vip_table.start_recording t vip;
  Alcotest.check_raises "double recording"
    (Invalid_argument "Vip_table.start_recording: update in progress") (fun () ->
      Silkroad.Vip_table.start_recording t vip);
  Silkroad.Vip_table.cancel_recording t vip;
  check Alcotest.bool "cancelled to idle" true
    (Silkroad.Vip_table.phase t vip = Some Silkroad.Vip_table.Idle)

(* ---------- Conn_table ---------- *)

let small_cfg =
  { Silkroad.Config.default with
    Silkroad.Config.conn_table_rows = 1024;
    conn_table_stages = 2;
    conn_table_ways = 4 }

let ct_insert_lookup () =
  let t = Silkroad.Conn_table.create small_cfg in
  for i = 0 to 499 do
    match Silkroad.Conn_table.insert t (flow i) ~version:(i mod 64) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "insert failed"
  done;
  check Alcotest.int "size" 500 (Silkroad.Conn_table.size t);
  for i = 0 to 499 do
    match Silkroad.Conn_table.lookup t (flow i) with
    | Some r ->
      check Alcotest.bool "exact hit" true r.Silkroad.Conn_table.exact;
      check Alcotest.int "version" (i mod 64) r.Silkroad.Conn_table.version
    | None -> Alcotest.fail "lookup lost key"
  done

let ct_remove () =
  let t = Silkroad.Conn_table.create small_cfg in
  ignore (Silkroad.Conn_table.insert t (flow 1) ~version:2);
  check Alcotest.bool "removed" true (Silkroad.Conn_table.remove t (flow 1));
  check Alcotest.bool "gone" true (Silkroad.Conn_table.lookup t (flow 1) = None)

let ct_entry_bits () =
  let t = Silkroad.Conn_table.create Silkroad.Config.default in
  (* 16-bit digest + 6-bit version + 6-bit overhead = 28 *)
  check Alcotest.int "28-bit entries" 28 (Silkroad.Conn_table.entry_bits t);
  (* 4 entries per 112-bit word at capacity 1M: 28 Mbit = 3.5 MB *)
  let bits = Silkroad.Conn_table.sram_bits t in
  check Alcotest.int "sram bits" (Silkroad.Config.conn_capacity Silkroad.Config.default / 4 * 112) bits

let ct_false_positive_repair () =
  (* small digests force collisions; repair must leave both connections
     resolving exactly. 4 stages give the repair room to separate. *)
  let cfg =
    { small_cfg with
      Silkroad.Config.digest_bits = 8;
      conn_table_rows = 128;
      conn_table_stages = 4 }
  in
  let t = Silkroad.Conn_table.create cfg in
  for i = 0 to 299 do
    ignore (Silkroad.Conn_table.insert t (flow i) ~version:1)
  done;
  (* find a fresh flow that falsely hits *)
  let colliding = ref None in
  (try
     for i = 1000 to 20_000 do
       match Silkroad.Conn_table.lookup t (flow i) with
       | Some r when not r.Silkroad.Conn_table.exact ->
         colliding := Some i;
         raise Exit
       | Some _ | None -> ()
     done
   with Exit -> ());
  match !colliding with
  | None -> Alcotest.fail "8-bit digests produced no collision (!)"
  | Some i ->
    (match Silkroad.Conn_table.repair_collision t (flow i) ~version:2 with
     | Ok () ->
       (match Silkroad.Conn_table.lookup t (flow i) with
        | Some r ->
          check Alcotest.bool "newcomer exact" true r.Silkroad.Conn_table.exact;
          check Alcotest.int "newcomer version" 2 r.Silkroad.Conn_table.version
        | None -> Alcotest.fail "newcomer lost");
       check Alcotest.bool "repair counted" true (Silkroad.Conn_table.repairs t >= 1)
     | Error `Full -> Alcotest.fail "repair reported full")

let ct_repair_preserves_residents () =
  let cfg =
    { small_cfg with
      Silkroad.Config.digest_bits = 8;
      conn_table_rows = 128;
      conn_table_stages = 4 }
  in
  let t = Silkroad.Conn_table.create cfg in
  let residents = List.init 300 (fun i -> flow i) in
  List.iter (fun f -> ignore (Silkroad.Conn_table.insert t f ~version:1)) residents;
  (* repair every collision we can find among fresh flows *)
  let repaired = ref 0 in
  for i = 1000 to 30_000 do
    match Silkroad.Conn_table.lookup t (flow i) with
    | Some r when not r.Silkroad.Conn_table.exact ->
      (match Silkroad.Conn_table.repair_collision t (flow i) ~version:2 with
       | Ok () -> incr repaired
       | Error `Full -> ())
    | Some _ | None -> ()
  done;
  check Alcotest.bool "some repairs" true (!repaired > 0);
  (* Residents the repairs relocated must still resolve exactly. A
     freshly inserted entry can in principle shadow an untouched
     resident (same row, same digest, earlier stage) — vanishingly rare
     at the paper's 16-bit digests, observable at our stress-test 8 bits
     — so we assert the fraction stays tiny rather than zero. *)
  let shadowed = ref 0 in
  List.iter
    (fun f ->
      match Silkroad.Conn_table.lookup t f with
      | Some r -> if not r.Silkroad.Conn_table.exact then incr shadowed
      | None -> Alcotest.fail "resident lost")
    residents;
  check Alcotest.bool
    (Printf.sprintf "shadowed residents %d <= 3" !shadowed)
    true (!shadowed <= 3)

(* ---------- Switch: control plane & 3-step update ---------- *)

let mk_switch ?(cfg = Silkroad.Config.default) ?(dips = [ 1; 2; 3; 4 ]) () =
  let sw = Silkroad.Switch.create cfg in
  Silkroad.Switch.add_vip sw vip (pool dips);
  sw

let syn i = Netcore.Packet.syn (flow i)
let data i = Netcore.Packet.data (flow i)
let fin i = Netcore.Packet.fin (flow i)

let switch_forwards () =
  let sw = mk_switch () in
  let o = Silkroad.Switch.process sw ~now:0. (syn 1) in
  (match o.Lb.Balancer.dip with
   | Some d -> check Alcotest.bool "to a member" true (List.mem d [ dip 1; dip 2; dip 3; dip 4 ])
   | None -> Alcotest.fail "dropped");
  check Alcotest.bool "asic" true (o.Lb.Balancer.location = Lb.Balancer.Asic)

let switch_learns_after_delay () =
  let sw = mk_switch () in
  ignore (Silkroad.Switch.process sw ~now:0. (syn 1));
  check Alcotest.int "not yet installed" 0 (Silkroad.Switch.connections sw);
  (* learning timeout 1 ms + insertion 5 us *)
  Silkroad.Switch.advance sw ~now:0.01;
  check Alcotest.int "installed" 1 (Silkroad.Switch.connections sw)

let switch_same_dip_before_after_install () =
  let sw = mk_switch () in
  let d0 = (Silkroad.Switch.process sw ~now:0. (syn 1)).Lb.Balancer.dip in
  let d1 = (Silkroad.Switch.process sw ~now:0.0002 (data 1)).Lb.Balancer.dip in
  Silkroad.Switch.advance sw ~now:0.05;
  let d2 = (Silkroad.Switch.process sw ~now:0.05 (data 1)).Lb.Balancer.dip in
  check Alcotest.bool "pending consistent" true (d0 = d1);
  check Alcotest.bool "installed consistent" true (d0 = d2)

let switch_fin_expires_entry () =
  let sw = mk_switch () in
  ignore (Silkroad.Switch.process sw ~now:0. (syn 1));
  Silkroad.Switch.advance sw ~now:0.01;
  check Alcotest.int "installed" 1 (Silkroad.Switch.connections sw);
  ignore (Silkroad.Switch.process sw ~now:1. (fin 1));
  Silkroad.Switch.advance sw ~now:1.1;
  check Alcotest.int "expired" 0 (Silkroad.Switch.connections sw)

let switch_idle_timeout_gc () =
  let cfg = { Silkroad.Config.default with Silkroad.Config.idle_timeout = 1. } in
  let sw = mk_switch ~cfg () in
  ignore (Silkroad.Switch.process sw ~now:0. (syn 1));
  Silkroad.Switch.advance sw ~now:0.01;
  check Alcotest.int "installed" 1 (Silkroad.Switch.connections sw);
  (* never FINs; the idle GC reaps it *)
  Silkroad.Switch.advance sw ~now:3.;
  Silkroad.Switch.advance sw ~now:3.5;
  check Alcotest.int "reaped" 0 (Silkroad.Switch.connections sw)

let switch_update_keeps_old_flows () =
  let sw = mk_switch ~dips:[ 1; 2; 3; 4; 5; 6; 7; 8 ] () in
  let flows_before = List.init 60 (fun i -> (i, (Silkroad.Switch.process sw ~now:0. (syn i)).Lb.Balancer.dip)) in
  Silkroad.Switch.advance sw ~now:0.1;
  (* add a 9th dip: a plain rehash would move ~8/9 of flows *)
  Silkroad.Switch.request_update sw ~now:0.1 ~vip (Lb.Balancer.Dip_add (dip 9));
  Silkroad.Switch.advance sw ~now:0.2;
  List.iter
    (fun (i, d) ->
      let o = Silkroad.Switch.process sw ~now:0.2 (data i) in
      check Alcotest.bool "pinned through update" true (o.Lb.Balancer.dip = d))
    flows_before;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.int "update done" 1 s.Silkroad.Switch.updates_completed

let switch_new_flows_use_new_pool () =
  let sw = mk_switch ~dips:[ 1 ] () in
  ignore (Silkroad.Switch.process sw ~now:0. (syn 1));
  Silkroad.Switch.advance sw ~now:0.1;
  Silkroad.Switch.request_update sw ~now:0.1 ~vip (Lb.Balancer.Dip_add (dip 2));
  Silkroad.Switch.advance sw ~now:0.3;
  (* the new pool has 2 dips; some new flow must land on dip 2 *)
  let landed = ref false in
  for i = 100 to 200 do
    if (Silkroad.Switch.process sw ~now:0.3 (syn i)).Lb.Balancer.dip = Some (dip 2) then
      landed := true
  done;
  check Alcotest.bool "new dip used" true !landed

let switch_pending_conns_protected () =
  (* connections that arrive while the update is in flight (the pending
     window) must stick to the old pool: this is TransitTable's job *)
  let cfg =
    { Silkroad.Config.default with
      Silkroad.Config.learning_timeout = 0.01;
      cpu_insertions_per_sec = 1000. }
  in
  let sw = mk_switch ~cfg ~dips:[ 1; 2; 3; 4; 5; 6; 7; 8 ] () in
  Silkroad.Switch.request_update sw ~now:0.0005 ~vip (Lb.Balancer.Dip_add (dip 9));
  (* flows arriving right around the request: pending when it executes *)
  let pending = List.init 40 (fun i -> (i, (Silkroad.Switch.process sw ~now:0.001 (syn i)).Lb.Balancer.dip)) in
  (* before any insertion completes, probe again *)
  List.iter
    (fun (i, d) ->
      let o = Silkroad.Switch.process sw ~now:0.002 (data i) in
      check Alcotest.bool "pending pinned" true (o.Lb.Balancer.dip = d))
    pending;
  (* let everything install and the update finish *)
  Silkroad.Switch.advance sw ~now:2.;
  List.iter
    (fun (i, d) ->
      let o = Silkroad.Switch.process sw ~now:2. (data i) in
      check Alcotest.bool "still pinned after install" true (o.Lb.Balancer.dip = d))
    pending;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.int "no forced transitions" 0 s.Silkroad.Switch.forced_transitions;
  check Alcotest.int "update completed" 1 s.Silkroad.Switch.updates_completed

let switch_transit_cleared_after_updates () =
  (* slow the learning path down so the update's Recording window is
     still open when the second connection arrives *)
  let cfg = { Silkroad.Config.default with Silkroad.Config.learning_timeout = 0.05 } in
  let sw = mk_switch ~cfg () in
  ignore (Silkroad.Switch.process sw ~now:0. (syn 1));
  Silkroad.Switch.request_update sw ~now:0.001 ~vip (Lb.Balancer.Dip_add (dip 9));
  ignore (Silkroad.Switch.process sw ~now:0.002 (syn 2));
  check Alcotest.bool "recorded in bloom" true
    (Asic.Bloom_filter.population (Silkroad.Switch.transit_filter sw) > 0);
  Silkroad.Switch.advance sw ~now:1.;
  check Alcotest.int "bloom cleared" 0
    (Asic.Bloom_filter.population (Silkroad.Switch.transit_filter sw));
  check Alcotest.bool "clear counted" true
    ((Silkroad.Switch.stats sw).Silkroad.Switch.transit_clears >= 1)

let switch_updates_queue_per_vip () =
  let sw = mk_switch ~dips:[ 1; 2; 3; 4 ] () in
  Silkroad.Switch.request_update sw ~now:0. ~vip (Lb.Balancer.Dip_remove (dip 4));
  Silkroad.Switch.request_update sw ~now:0. ~vip (Lb.Balancer.Dip_add (dip 5));
  Silkroad.Switch.request_update sw ~now:0. ~vip (Lb.Balancer.Dip_remove (dip 1));
  Silkroad.Switch.advance sw ~now:5.;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.int "all three ran" 3 s.Silkroad.Switch.updates_completed;
  (* final pool: {2, 3, 5} *)
  let seen = Hashtbl.create 8 in
  for i = 0 to 400 do
    match (Silkroad.Switch.process sw ~now:6. (syn i)).Lb.Balancer.dip with
    | Some d -> Hashtbl.replace seen d ()
    | None -> Alcotest.fail "dropped"
  done;
  check Alcotest.bool "dip1 gone" false (Hashtbl.mem seen (dip 1));
  check Alcotest.bool "dip4 gone" false (Hashtbl.mem seen (dip 4));
  check Alcotest.bool "dip5 present" true (Hashtbl.mem seen (dip 5))

let switch_version_recycling () =
  (* run many updates with live connections: far more updates than the
     2^6 version space, exercising release + reuse *)
  let sw = mk_switch ~dips:[ 1; 2; 3; 4 ] () in
  let now = ref 0. in
  for round = 0 to 99 do
    let d = 1 + (round mod 4) in
    ignore (Silkroad.Switch.process sw ~now:!now (syn round));
    Silkroad.Switch.request_update sw ~now:!now ~vip (Lb.Balancer.Dip_remove (dip d));
    now := !now +. 0.5;
    Silkroad.Switch.advance sw ~now:!now;
    Silkroad.Switch.request_update sw ~now:!now ~vip (Lb.Balancer.Dip_add (dip d));
    now := !now +. 0.5;
    Silkroad.Switch.advance sw ~now:!now
  done;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.int "no failures" 0 s.Silkroad.Switch.updates_failed;
  check Alcotest.int "200 updates" 200 s.Silkroad.Switch.updates_completed;
  check Alcotest.int "no version exhaustion" 0
    (Silkroad.Dip_pool_table.version_exhaustions (Silkroad.Switch.pools sw));
  check Alcotest.bool "reuse happened" true
    (Silkroad.Dip_pool_table.reuses (Silkroad.Switch.pools sw) > 0)

let switch_syn_collision_repair () =
  let cfg =
    { Silkroad.Config.default with
      Silkroad.Config.digest_bits = 4;
      conn_table_rows = 64;
      conn_table_stages = 2;
      conn_table_ways = 4 }
  in
  let sw = mk_switch ~cfg () in
  (* install enough connections to make 4-bit collisions certain *)
  for i = 0 to 299 do
    ignore (Silkroad.Switch.process sw ~now:0. (syn i))
  done;
  Silkroad.Switch.advance sw ~now:1.;
  for i = 1000 to 1999 do
    ignore (Silkroad.Switch.process sw ~now:1. (syn i))
  done;
  Silkroad.Switch.advance sw ~now:2.;
  let s = Silkroad.Switch.stats sw in
  check Alcotest.bool "collisions observed" true (s.Silkroad.Switch.false_hits > 0);
  check Alcotest.bool "repairs ran" true (s.Silkroad.Switch.collision_repairs > 0);
  check Alcotest.bool "cpu handled syns" true (s.Silkroad.Switch.cpu_packets > 0)

let switch_unknown_vip () =
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  let o = Silkroad.Switch.process sw ~now:0. (syn 1) in
  check Alcotest.bool "dropped" true (o.Lb.Balancer.dip = None);
  Alcotest.check_raises "update unknown"
    (Invalid_argument "Switch.request_update: unknown VIP") (fun () ->
      Silkroad.Switch.request_update sw ~now:0. ~vip (Lb.Balancer.Dip_add (dip 1)))

let switch_memory_accounting () =
  let sw = mk_switch () in
  let bits = Silkroad.Switch.memory_bits sw in
  check Alcotest.bool "includes conn table" true
    (bits >= Silkroad.Conn_table.sram_bits (Silkroad.Switch.conn_table sw));
  check Alcotest.bool "includes bloom" true
    (bits >= Asic.Bloom_filter.bits (Silkroad.Switch.transit_filter sw))

(* ---------- Meters / isolation ---------- *)

let switch_meter_drops_red () =
  let sw = mk_switch () in
  (* 1 KB/s committed+excess: the third 1KB-ish packet in a burst is Red *)
  Silkroad.Switch.set_meter sw ~vip ~cir:1000. ~cbs:1100 ~eir:1000. ~ebs:1100;
  let outcomes =
    List.init 4 (fun i -> (Silkroad.Switch.process sw ~now:0.001 (data i)).Lb.Balancer.dip)
  in
  let drops = List.length (List.filter (fun d -> d = None) outcomes) in
  check Alcotest.bool "some packets dropped red" true (drops >= 1);
  check Alcotest.bool "metered counted" true (Silkroad.Switch.metered_drops sw >= 1);
  (* other VIPs unaffected *)
  let vip2 = Netcore.Endpoint.v4 20 0 0 2 80 in
  Silkroad.Switch.add_vip sw vip2 (pool [ 5; 6 ]);
  let f2 =
    Netcore.Five_tuple.make ~src:(Netcore.Endpoint.v4 9 9 9 9 999) ~dst:vip2
      ~proto:Netcore.Protocol.Tcp
  in
  let o = Silkroad.Switch.process sw ~now:0.001 (Netcore.Packet.syn f2) in
  check Alcotest.bool "unmetered vip forwards" true (o.Lb.Balancer.dip <> None);
  Silkroad.Switch.clear_meter sw ~vip;
  let o = Silkroad.Switch.process sw ~now:0.001 (data 99) in
  check Alcotest.bool "meter cleared" true (o.Lb.Balancer.dip <> None)

let switch_meter_unknown_vip () =
  let sw = Silkroad.Switch.create Silkroad.Config.default in
  Alcotest.check_raises "unknown" (Invalid_argument "Switch.set_meter: unknown VIP") (fun () ->
      Silkroad.Switch.set_meter sw ~vip ~cir:1. ~cbs:1 ~eir:1. ~ebs:1)

(* ---------- Hybrid (§7: combine with SLBs) ---------- *)

let hybrid_pinned_vip_at_slb () =
  let vip2 = Netcore.Endpoint.v4 20 0 0 2 80 in
  let h =
    Silkroad.Hybrid.create ~seed:3 ~slb_vips:[ vip2 ]
      ~vips:[ (vip, pool [ 1; 2 ]); (vip2, pool [ 3; 4 ]) ]
      ()
  in
  let b = Silkroad.Hybrid.balancer h in
  let o1 = b.Lb.Balancer.process ~now:0. (syn 1) in
  check Alcotest.bool "normal vip at asic" true (o1.Lb.Balancer.location = Lb.Balancer.Asic);
  let f2 =
    Netcore.Five_tuple.make ~src:(Netcore.Endpoint.v4 9 9 9 9 999) ~dst:vip2
      ~proto:Netcore.Protocol.Tcp
  in
  let o2 = b.Lb.Balancer.process ~now:0. (Netcore.Packet.syn f2) in
  check Alcotest.bool "pinned vip at slb" true (o2.Lb.Balancer.location = Lb.Balancer.Slb);
  check Alcotest.int "slb tracks it" 1 (Silkroad.Hybrid.slb_connections h)

let hybrid_overflow_spills () =
  (* tiny ConnTable: once hot, new conns spill to the SLB and stay there *)
  let cfg =
    { Silkroad.Config.default with
      Silkroad.Config.conn_table_rows = 4;
      conn_table_stages = 2;
      conn_table_ways = 2 }
  in
  let h =
    Silkroad.Hybrid.create ~cfg ~overflow_threshold:0.5 ~seed:3 ~vips:[ (vip, pool [ 1; 2; 3; 4 ]) ] ()
  in
  let b = Silkroad.Hybrid.balancer h in
  for i = 0 to 63 do
    ignore (b.Lb.Balancer.process ~now:(0.01 *. float_of_int i) (syn i))
  done;
  b.Lb.Balancer.advance ~now:10.;
  for i = 64 to 127 do
    ignore (b.Lb.Balancer.process ~now:(10. +. (0.01 *. float_of_int i)) (syn i))
  done;
  check Alcotest.bool "spilled some" true (Silkroad.Hybrid.spilled_connections h > 0);
  (* a spilled connection is served by the SLB consistently, through updates *)
  let spilled_flow = 127 in
  let d0 = (b.Lb.Balancer.process ~now:12. (data spilled_flow)).Lb.Balancer.dip in
  b.Lb.Balancer.update ~now:13. ~vip (Lb.Balancer.Dip_remove (dip 4));
  b.Lb.Balancer.advance ~now:14.;
  let d1 = (b.Lb.Balancer.process ~now:14. (data spilled_flow)).Lb.Balancer.dip in
  check Alcotest.bool "spilled conn pinned" true (d0 = d1)

let hybrid_updates_reach_both () =
  let vip2 = Netcore.Endpoint.v4 20 0 0 2 80 in
  let h =
    Silkroad.Hybrid.create ~seed:3 ~slb_vips:[ vip2 ]
      ~vips:[ (vip, pool [ 1; 2 ]); (vip2, pool [ 3; 4 ]) ]
      ()
  in
  let b = Silkroad.Hybrid.balancer h in
  b.Lb.Balancer.update ~now:0. ~vip:vip2 (Lb.Balancer.Dip_remove (dip 3));
  b.Lb.Balancer.advance ~now:1.;
  (* all new conns of vip2 now land on dip 4 *)
  for i = 0 to 20 do
    let f =
      Netcore.Five_tuple.make
        ~src:(Netcore.Endpoint.v4 9 9 9 9 (1000 + i))
        ~dst:vip2 ~proto:Netcore.Protocol.Tcp
    in
    check Alcotest.bool "new pool live at slb" true
      ((b.Lb.Balancer.process ~now:1. (Netcore.Packet.syn f)).Lb.Balancer.dip = Some (dip 4))
  done

(* ---------- Switch_group (§7: switch failures) ---------- *)

let group_spreads_and_survives () =
  let g = Silkroad.Switch_group.create ~seed:4 ~switches:3 ~vips:[ (vip, pool [ 1; 2; 3; 4 ]) ] () in
  let b = Silkroad.Switch_group.balancer g in
  (* flows spread over the 3 members *)
  let before = List.init 90 (fun i -> (i, (b.Lb.Balancer.process ~now:0. (syn i)).Lb.Balancer.dip)) in
  b.Lb.Balancer.advance ~now:1.;
  let conns = Array.map Silkroad.Switch.connections (Silkroad.Switch_group.members g) in
  Array.iter (fun c -> check Alcotest.bool "each member holds some" true (c > 0)) conns;
  (* no updates ever: failing a switch re-hashes its flows onto an
     identical VIPTable -> no breakage *)
  Silkroad.Switch_group.fail g 0;
  check Alcotest.int "two alive" 2 (Silkroad.Switch_group.alive g);
  List.iter
    (fun (i, d) ->
      let o = b.Lb.Balancer.process ~now:2. (data i) in
      check Alcotest.bool "same mapping on survivor" true (o.Lb.Balancer.dip = d))
    before

let group_old_version_conns_break () =
  let g = Silkroad.Switch_group.create ~seed:4 ~switches:2 ~vips:[ (vip, pool [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ] () in
  let b = Silkroad.Switch_group.balancer g in
  let before = List.init 200 (fun i -> (i, (b.Lb.Balancer.process ~now:0. (syn i)).Lb.Balancer.dip)) in
  b.Lb.Balancer.advance ~now:1.;
  (* an update pins existing conns to the old version *)
  b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_add (dip 9));
  b.Lb.Balancer.advance ~now:2.;
  (* without failure: nothing breaks *)
  List.iter
    (fun (i, d) ->
      check Alcotest.bool "held before failure" true
        ((b.Lb.Balancer.process ~now:2. (data i)).Lb.Balancer.dip = d))
    before;
  Silkroad.Switch_group.fail g 0;
  (* flows that lived on switch 0 under the old version re-hash under the
     NEW pool on switch 1: some break — "the same issue with an SLB
     failure" (§7) *)
  let broken =
    List.length
      (List.filter
         (fun (i, d) -> (b.Lb.Balancer.process ~now:3. (data i)).Lb.Balancer.dip <> d)
         before)
  in
  check Alcotest.bool (Printf.sprintf "some broke (%d)" broken) true (broken > 0);
  check Alcotest.bool "most survive" true (broken < 100)

let group_last_switch_protected () =
  let g = Silkroad.Switch_group.create ~seed:4 ~switches:2 ~vips:[ (vip, pool [ 1 ]) ] () in
  Silkroad.Switch_group.fail g 0;
  Alcotest.check_raises "last" (Invalid_argument "Switch_group.fail: cannot kill the last switch")
    (fun () -> Silkroad.Switch_group.fail g 1)

let udp_flow i =
  Netcore.Five_tuple.make
    ~src:(Netcore.Endpoint.v4 4 4 ((i / 60000) + 1) 4 (1 + (i mod 60000)))
    ~dst:vip ~proto:Netcore.Protocol.Udp

let switch_udp_connections () =
  (* UDP has no SYN/FIN: entries are learned from any packet and expire
     by idle timeout; PCC must hold across updates all the same *)
  let cfg = { Silkroad.Config.default with Silkroad.Config.idle_timeout = 2. } in
  let sw = mk_switch ~cfg ~dips:[ 1; 2; 3; 4; 5; 6; 7; 8 ] () in
  let pkt i = Netcore.Packet.make ~flags:Netcore.Tcp_flags.none ~payload_len:256 (udp_flow i) in
  let before =
    List.init 40 (fun i -> (i, (Silkroad.Switch.process sw ~now:0. (pkt i)).Lb.Balancer.dip))
  in
  Silkroad.Switch.advance sw ~now:0.5;
  check Alcotest.int "udp entries learned" 40 (Silkroad.Switch.connections sw);
  Silkroad.Switch.request_update sw ~now:0.5 ~vip (Lb.Balancer.Dip_add (dip 9));
  Silkroad.Switch.advance sw ~now:1.;
  List.iter
    (fun (i, d) ->
      check Alcotest.bool "udp pinned" true
        ((Silkroad.Switch.process sw ~now:1. (pkt i)).Lb.Balancer.dip = d))
    before;
  (* silence: the idle timer reaps them *)
  Silkroad.Switch.advance sw ~now:5.;
  Silkroad.Switch.advance sw ~now:8.;
  check Alcotest.int "udp entries expired" 0 (Silkroad.Switch.connections sw)

(* ---------- Health_checker (§7) ---------- *)

let health_detects_failure () =
  let down = Hashtbl.create 4 in
  let is_alive d = not (Hashtbl.mem down d) in
  let dips = List.map dip [ 1; 2; 3 ] in
  let hc = Silkroad.Health_checker.create ~interval:10. ~threshold:3 ~is_alive ~dips () in
  (* all healthy: no events over three rounds *)
  check Alcotest.int "quiet" 0 (List.length (Silkroad.Health_checker.advance hc ~now:25.));
  (* dip 2 dies: detected after 3 missed probes (30s) *)
  Hashtbl.replace down (dip 2) ();
  let events = Silkroad.Health_checker.advance hc ~now:65. in
  check Alcotest.int "one event" 1 (List.length events);
  (match events with
   | [ (d, `Down) ] -> check Alcotest.bool "right dip" true (Netcore.Endpoint.equal d (dip 2))
   | _ -> Alcotest.fail "expected one Down");
  check Alcotest.bool "marked" true (Silkroad.Health_checker.is_marked_down hc (dip 2));
  (* recovery is announced on the next probe *)
  Hashtbl.remove down (dip 2);
  let events = Silkroad.Health_checker.advance hc ~now:75. in
  (match events with
   | [ (d, `Up) ] -> check Alcotest.bool "up" true (Netcore.Endpoint.equal d (dip 2))
   | _ -> Alcotest.fail "expected one Up");
  check Alcotest.bool "unmarked" false (Silkroad.Health_checker.is_marked_down hc (dip 2))

let health_flap_needs_threshold () =
  let alive = ref false in
  let hc =
    Silkroad.Health_checker.create ~interval:1. ~threshold:3 ~is_alive:(fun _ -> !alive)
      ~dips:[ dip 1 ] ()
  in
  (* alternate up/down faster than the threshold: never declared down *)
  let events = ref [] in
  for i = 0 to 19 do
    alive := i mod 2 = 0;
    events := !events @ Silkroad.Health_checker.advance hc ~now:(float_of_int i)
  done;
  check Alcotest.int "no transitions" 0 (List.length !events)

let health_bandwidth_anchor () =
  (* §7: 10K DIPs / 10 s / 100-byte probes ~ 800 Kbps *)
  let bps = Silkroad.Health_checker.probe_bandwidth_bps ~dips:10_000 ~interval:10. ~probe_bytes:100 in
  check Alcotest.bool (Printf.sprintf "%.0f bps ~ 800k" bps) true (bps = 800_000.)

let health_drives_switch_updates () =
  (* end to end: checker events feed the switch's update queue *)
  let down = Hashtbl.create 4 in
  let is_alive d = not (Hashtbl.mem down d) in
  let dips_l = List.map dip [ 1; 2; 3; 4 ] in
  let sw = mk_switch ~dips:[ 1; 2; 3; 4 ] () in
  let hc = Silkroad.Health_checker.create ~interval:5. ~threshold:2 ~is_alive ~dips:dips_l () in
  Hashtbl.replace down (dip 3) ();
  let apply now =
    List.iter
      (fun (d, ev) ->
        let u = match ev with `Down -> Lb.Balancer.Dip_remove d | `Up -> Lb.Balancer.Dip_add d in
        Silkroad.Switch.request_update sw ~now ~vip u)
      (Silkroad.Health_checker.advance hc ~now)
  in
  apply 20.;
  Silkroad.Switch.advance sw ~now:21.;
  (* no new connection may land on the dead DIP *)
  for i = 0 to 200 do
    match (Silkroad.Switch.process sw ~now:21. (syn i)).Lb.Balancer.dip with
    | Some d -> check Alcotest.bool "avoids dead dip" false (Netcore.Endpoint.equal d (dip 3))
    | None -> Alcotest.fail "dropped"
  done;
  (* recovery re-adds it (exercising version reuse) *)
  Hashtbl.remove down (dip 3);
  apply 40.;
  Silkroad.Switch.advance sw ~now:41.;
  let reached = ref false in
  for i = 300 to 600 do
    if (Silkroad.Switch.process sw ~now:41. (syn i)).Lb.Balancer.dip = Some (dip 3) then
      reached := true
  done;
  check Alcotest.bool "recovered dip reachable" true !reached

(* A DIP flapping faster than interval*threshold must not oscillate the
   switch's pool membership: the checker never reports a transition, so
   no update is ever requested and the published version stays put. *)
let health_flap_pool_membership_stable () =
  let sw = mk_switch ~dips:[ 1; 2; 3; 4 ] () in
  let alive = ref true in
  let hc =
    Silkroad.Health_checker.create ~interval:1. ~threshold:3
      ~is_alive:(fun d -> if Netcore.Endpoint.equal d (dip 2) then !alive else true)
      ~dips:(List.map dip [ 1; 2; 3; 4 ]) ()
  in
  let versions_before = (Silkroad.Switch.stats sw).Silkroad.Switch.updates_completed in
  (* flap with a 2 s period against a 3 s detection window, for 30 s *)
  for i = 0 to 29 do
    alive := i mod 2 = 0;
    let now = float_of_int i in
    List.iter
      (fun (d, ev) ->
        let u = match ev with `Down -> Lb.Balancer.Dip_remove d | `Up -> Lb.Balancer.Dip_add d in
        Silkroad.Switch.request_update sw ~now ~vip u)
      (Silkroad.Health_checker.advance hc ~now);
    Silkroad.Switch.advance sw ~now
  done;
  check Alcotest.int "no updates applied"
    versions_before
    (Silkroad.Switch.stats sw).Silkroad.Switch.updates_completed;
  check Alcotest.bool "never marked down" false (Silkroad.Health_checker.is_marked_down hc (dip 2));
  (* the flapping dip is still a member: new connections can land on it *)
  let reached = ref false in
  for i = 700 to 1000 do
    if (Silkroad.Switch.process sw ~now:31. (syn i)).Lb.Balancer.dip = Some (dip 2) then
      reached := true
  done;
  check Alcotest.bool "flapping dip still in pool" true !reached

(* A health-checker recovery re-adds the DIP through the version-reuse
   path: the pool state after re-add matches a previously published
   version, so the allocator reuses it instead of burning a new one. *)
let health_recovery_reuses_version () =
  let sw = mk_switch ~dips:[ 1; 2; 3; 4 ] () in
  let down = Hashtbl.create 4 in
  let hc =
    Silkroad.Health_checker.create ~interval:5. ~threshold:2
      ~is_alive:(fun d -> not (Hashtbl.mem down d))
      ~dips:(List.map dip [ 1; 2; 3; 4 ]) ()
  in
  let apply now =
    List.iter
      (fun (d, ev) ->
        let u = match ev with `Down -> Lb.Balancer.Dip_remove d | `Up -> Lb.Balancer.Dip_add d in
        Silkroad.Switch.request_update sw ~now ~vip u)
      (Silkroad.Health_checker.advance hc ~now)
  in
  (* live connections keep the original version referenced, so the pool
     state the re-add restores is still registered and can be reused *)
  for i = 0 to 50 do
    ignore (Silkroad.Switch.process sw ~now:10. (syn i))
  done;
  Silkroad.Switch.advance sw ~now:12.;
  check Alcotest.int "no reuse yet" 0 (Silkroad.Dip_pool_table.reuses (Silkroad.Switch.pools sw));
  Hashtbl.replace down (dip 3) ();
  apply 20.;
  Silkroad.Switch.advance sw ~now:25.;
  Hashtbl.remove down (dip 3);
  apply 40.;
  Silkroad.Switch.advance sw ~now:45.;
  check Alcotest.bool "re-add reused a version" true
    (Silkroad.Dip_pool_table.reuses (Silkroad.Switch.pools sw) > 0)

(* ---------- Memory_model ---------- *)

let mm_entry_bits () =
  (* paper: IPv6 naive entry = 37B key + 18B action + overhead *)
  check Alcotest.int "naive v6" ((37 * 8) + (18 * 8) + 6)
    (Silkroad.Memory_model.conn_entry_bits ~layout:Silkroad.Memory_model.Naive ~ipv6:true
       ~digest_bits:16 ~version_bits:6);
  check Alcotest.int "digest+version" 28
    (Silkroad.Memory_model.conn_entry_bits ~layout:Silkroad.Memory_model.Digest_version
       ~ipv6:true ~digest_bits:16 ~version_bits:6)

let mm_10m_naive_overflows () =
  (* "storing the states of ten million connections ... takes a few
     hundreds of MB" vs <=100MB available *)
  let naive =
    Silkroad.Memory_model.conn_table_bits ~layout:Silkroad.Memory_model.Naive ~ipv6:true
      ~digest_bits:16 ~version_bits:6 ~connections:10_000_000
  in
  check Alcotest.bool "naive 10M v6 > 100 MB" true (Silkroad.Memory_model.mb naive > 100.);
  let compact =
    Silkroad.Memory_model.switch_bits ~layout:Silkroad.Memory_model.Digest_version ~ipv6:true
      ~digest_bits:16 ~version_bits:6 ~connections:10_000_000 ~versions:64 ~total_dips:4187
  in
  check Alcotest.bool "compact 10M v6 fits 50 MB" true (Silkroad.Memory_model.mb compact < 50.)

let mm_dippool_anchor () =
  (* "64 versions of 4187 IPv6 DIPs" ~ 4.8 MB *)
  let bits = Silkroad.Memory_model.dip_pool_table_bits ~ipv6:true ~versions:64 ~total_dips:4187 in
  let mb = Silkroad.Memory_model.mb bits in
  check Alcotest.bool (Printf.sprintf "%.2f MB ~ 4.8" mb) true (mb > 4. && mb < 6.)

let mm_saving_bounds () =
  check (Alcotest.float 1e-9) "half" 50. (Silkroad.Memory_model.saving_percent ~baseline:100 ~compact:50);
  check (Alcotest.float 1e-9) "zero base" 0. (Silkroad.Memory_model.saving_percent ~baseline:0 ~compact:10)

let mm_table1 () =
  let gens = Silkroad.Memory_model.asic_generations in
  check Alcotest.int "three generations" 3 (List.length gens);
  let last = List.nth gens 2 in
  check Alcotest.int "2016" 2016 last.Silkroad.Memory_model.gen_year;
  check Alcotest.int "100 MB" 100 last.Silkroad.Memory_model.gen_sram_mb_hi

(* ---------- Cost_model ---------- *)

let cost_ratios () =
  let c = Silkroad.Cost_model.power_and_cost () in
  check Alcotest.bool
    (Printf.sprintf "power ratio %.0f ~ 500" c.Silkroad.Cost_model.power_ratio)
    true
    (c.Silkroad.Cost_model.power_ratio > 400. && c.Silkroad.Cost_model.power_ratio < 650.);
  check Alcotest.bool
    (Printf.sprintf "cost ratio %.0f ~ 250" c.Silkroad.Cost_model.cost_ratio)
    true
    (c.Silkroad.Cost_model.cost_ratio > 180. && c.Silkroad.Cost_model.cost_ratio < 320.)

let cost_counts () =
  (* the paper's sizing example: 15 Tbps needs 1500 SLBs at 10G NICs *)
  let d = Silkroad.Cost_model.demand_of_traffic ~gbps:15_000. ~avg_packet_bytes:800 ~connections:10_000_000 in
  check Alcotest.int "1500 slbs" 1500 (Silkroad.Cost_model.slb_count d);
  check Alcotest.int "3 silkroads (traffic-bound)" 3 (Silkroad.Cost_model.silkroad_count d);
  (* a connection-bound cluster *)
  let d2 = Silkroad.Cost_model.demand_of_traffic ~gbps:100. ~avg_packet_bytes:800 ~connections:25_000_000 in
  check Alcotest.int "conn bound" 3 (Silkroad.Cost_model.silkroad_count d2)

(* ---------- Program (Table 2) ---------- *)

let program_shape () =
  let p = Silkroad.Program.table2 ~connections:1_000_000 ~vips:1024 in
  (* Table 2's qualitative shape: TCAM untouched; every other class in
     (0, 50%]; SALUs the largest consumer *)
  check (Alcotest.float 1e-9) "tcam 0" 0. p.Asic.Resources.p_tcam;
  let fields =
    [ p.Asic.Resources.p_match_crossbar; p.Asic.Resources.p_sram; p.Asic.Resources.p_vliw;
      p.Asic.Resources.p_hash_bits; p.Asic.Resources.p_stateful_alus ]
  in
  List.iter (fun f -> check Alcotest.bool "in (0,60)" true (f > 0. && f < 60.)) fields;
  check Alcotest.bool "phv tiny" true (p.Asic.Resources.p_phv < 3.);
  check Alcotest.bool "salu largest" true
    (List.for_all (fun f -> p.Asic.Resources.p_stateful_alus >= f -. 1e-9) fields)

let program_scales_with_connections () =
  let r1 = Silkroad.Program.additional_resources ~connections:1_000_000 ~vips:1024 in
  let r10 = Silkroad.Program.additional_resources ~connections:10_000_000 ~vips:1024 in
  check Alcotest.bool "sram grows roughly linearly" true
    (r10.Asic.Resources.sram_bits > 6 * r1.Asic.Resources.sram_bits);
  check Alcotest.int "crossbar unchanged" r1.Asic.Resources.match_crossbar_bits
    r10.Asic.Resources.match_crossbar_bits

(* ---------- Assignment ---------- *)

let mb_bits mb = mb * 8 * 1024 * 1024

let assignment_basic () =
  let layers =
    [ { Silkroad.Assignment.layer_name = "tor"; switches = 4; sram_budget_bits = mb_bits 10;
        capacity_gbps = 1000. };
      { Silkroad.Assignment.layer_name = "core"; switches = 2; sram_budget_bits = mb_bits 50;
        capacity_gbps = 6000. } ]
  in
  let vips =
    List.init 20 (fun i ->
        { Silkroad.Assignment.vip = Netcore.Endpoint.v4 20 0 0 (i + 1) 80;
          conn_bits = mb_bits 4; traffic_gbps = 100. })
  in
  let p = Silkroad.Assignment.assign ~layers ~vips in
  check Alcotest.int "all placed" 20 (List.length p.Silkroad.Assignment.assignment);
  check Alcotest.int "none unplaced" 0 (List.length p.Silkroad.Assignment.unplaced);
  check Alcotest.bool "within budget" true (p.Silkroad.Assignment.max_sram_utilization <= 1.);
  (* both layers should be used: min-max balancing *)
  let used_layers =
    List.sort_uniq String.compare (List.map snd p.Silkroad.Assignment.assignment)
  in
  check Alcotest.int "both layers" 2 (List.length used_layers)

let assignment_overflow_reported () =
  let layers =
    [ { Silkroad.Assignment.layer_name = "tor"; switches = 1; sram_budget_bits = mb_bits 1;
        capacity_gbps = 10. } ]
  in
  let vips =
    [ { Silkroad.Assignment.vip = vip; conn_bits = mb_bits 100; traffic_gbps = 1. } ]
  in
  let p = Silkroad.Assignment.assign ~layers ~vips in
  check Alcotest.int "unplaced" 1 (List.length p.Silkroad.Assignment.unplaced)

let assignment_respects_traffic () =
  let layers =
    [ { Silkroad.Assignment.layer_name = "tiny-pipe"; switches = 1; sram_budget_bits = mb_bits 100;
        capacity_gbps = 1. };
      { Silkroad.Assignment.layer_name = "fat-pipe"; switches = 1; sram_budget_bits = mb_bits 100;
        capacity_gbps = 10_000. } ]
  in
  let vips =
    [ { Silkroad.Assignment.vip = vip; conn_bits = mb_bits 1; traffic_gbps = 500. } ]
  in
  let p = Silkroad.Assignment.assign ~layers ~vips in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "goes to fat pipe"
    [ (Netcore.Endpoint.to_string vip, "fat-pipe") ]
    (List.map (fun (v, l) -> (Netcore.Endpoint.to_string v, l)) p.Silkroad.Assignment.assignment)

let suites =
  [
    ( "silkroad.version",
      [
        tc "alloc/release" `Quick version_alloc_release;
        tc "ring order" `Quick version_ring_buffer_order;
        tc "exhaustion" `Quick version_exhaustion;
        tc "double release" `Quick version_double_release;
        QCheck_alcotest.to_alcotest qcheck_version_never_double_allocates;
      ] );
    ( "silkroad.dip_pool_table",
      [
        tc "basics" `Quick dpt_basics;
        tc "remove creates version" `Quick dpt_publish_remove_creates_version;
        tc "version reuse" `Quick dpt_version_reuse;
        tc "re-add same dip" `Quick dpt_readd_same_dip_reuses;
        tc "refcount destroys" `Quick dpt_refcount_destroys;
        tc "current survives" `Quick dpt_current_survives_zero_refs;
        tc "gc" `Quick dpt_gc;
        tc "bad updates" `Quick dpt_bad_updates;
      ] );
    ( "silkroad.vip_table",
      [ tc "phases" `Quick vipt_phases; tc "illegal transitions" `Quick vipt_illegal_transitions ] );
    ( "silkroad.conn_table",
      [
        tc "insert/lookup" `Quick ct_insert_lookup;
        tc "remove" `Quick ct_remove;
        tc "entry bits" `Quick ct_entry_bits;
        tc "collision repair" `Quick ct_false_positive_repair;
        tc "repair preserves residents" `Quick ct_repair_preserves_residents;
      ] );
    ( "silkroad.switch",
      [
        tc "forwards" `Quick switch_forwards;
        tc "learning delay" `Quick switch_learns_after_delay;
        tc "consistent around install" `Quick switch_same_dip_before_after_install;
        tc "fin expires" `Quick switch_fin_expires_entry;
        tc "idle gc" `Quick switch_idle_timeout_gc;
        tc "update keeps old flows" `Quick switch_update_keeps_old_flows;
        tc "new flows new pool" `Quick switch_new_flows_use_new_pool;
        tc "pending protected (3-step)" `Quick switch_pending_conns_protected;
        tc "transit cleared" `Quick switch_transit_cleared_after_updates;
        tc "updates queue" `Quick switch_updates_queue_per_vip;
        tc "version recycling" `Quick switch_version_recycling;
        tc "syn collision repair" `Quick switch_syn_collision_repair;
        tc "unknown vip" `Quick switch_unknown_vip;
        tc "memory accounting" `Quick switch_memory_accounting;
        tc "udp connections" `Quick switch_udp_connections;
      ] );
    ( "silkroad.isolation",
      [
        tc "meter drops red" `Quick switch_meter_drops_red;
        tc "meter unknown vip" `Quick switch_meter_unknown_vip;
      ] );
    ( "silkroad.hybrid",
      [
        tc "pinned vip" `Quick hybrid_pinned_vip_at_slb;
        tc "overflow spills" `Quick hybrid_overflow_spills;
        tc "updates reach both" `Quick hybrid_updates_reach_both;
      ] );
    ( "silkroad.switch_group",
      [
        tc "spread & survive" `Quick group_spreads_and_survives;
        tc "old versions break" `Quick group_old_version_conns_break;
        tc "last switch protected" `Quick group_last_switch_protected;
      ] );
    ( "silkroad.health",
      [
        tc "detects failure & recovery" `Quick health_detects_failure;
        tc "flapping below threshold" `Quick health_flap_needs_threshold;
        tc "probe bandwidth" `Quick health_bandwidth_anchor;
        tc "drives switch updates" `Quick health_drives_switch_updates;
        tc "flap keeps pool stable" `Quick health_flap_pool_membership_stable;
        tc "recovery reuses version" `Quick health_recovery_reuses_version;
      ] );
    ( "silkroad.memory_model",
      [
        tc "entry bits" `Quick mm_entry_bits;
        tc "10M scaling" `Quick mm_10m_naive_overflows;
        tc "dippool anchor" `Quick mm_dippool_anchor;
        tc "saving bounds" `Quick mm_saving_bounds;
        tc "table 1" `Quick mm_table1;
      ] );
    ( "silkroad.cost_model",
      [ tc "ratios" `Quick cost_ratios; tc "counts" `Quick cost_counts ] );
    ( "silkroad.program",
      [
        tc "table 2 shape" `Quick program_shape;
        tc "scales with conns" `Quick program_scales_with_connections;
      ] );
    ( "silkroad.p4_sketch",
      [
        tc "emits the program" `Quick (fun () ->
            let p4 = Silkroad.P4_sketch.emit Silkroad.Config.default in
            List.iter
              (fun needle ->
                check Alcotest.bool needle true
                  (let re = Str.regexp_string needle in
                   try ignore (Str.search_forward re p4 0); true with Not_found -> false))
              [ "conn_table"; "vip_table"; "dip_pool_table"; "learn_table"; "transit_bank_0";
                "bit<16>  conn_digest"; "bit<6>   pool_version"; "size = 1048576";
                "register<bit<1>>(2048)" ]);
        tc "about 400 lines" `Quick (fun () ->
            (* the paper: "defined in a 400 line P4 program" *)
            let n = Silkroad.P4_sketch.line_count Silkroad.Config.default in
            check Alcotest.bool (Printf.sprintf "%d lines in [250, 500]" n) true
              (n >= 250 && n <= 500));
      ] );
    ( "silkroad.assignment",
      [
        tc "basic" `Quick assignment_basic;
        tc "overflow" `Quick assignment_overflow_reported;
        tc "traffic constraint" `Quick assignment_respects_traffic;
      ] );
  ]
