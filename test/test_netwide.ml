(* Network-wide replay suite: the cross-switch differential that gates
   the netwide engine, plus the routing and topology properties it
   stands on.

   Structure mirrors test_replay.ml's equivalence layers:

   - topology: §5.3 feasibility threaded through construction — an
     infeasible VIP→layer assignment fails at build time with the
     [net.*] diagnostics, warn/off modes degrade as documented.

   - route: qcheck properties of the per-layer rendezvous ECMP — same
     5-tuple, same path, on every call; every flow terminates on the
     layer the Assignment placed its VIP on; an Agg failure re-homes
     exactly the flows that transited the dead switch and a recovery
     routes them back.

   - differential: on a degenerate 1-Core/1-Agg/1-ToR topology whose
     placement puts every VIP on the single ToR, [Netwide.Replay.run]
     must be byte-identical in merged telemetry to the single-switch
     [Harness.Replay.run] — scalar and batched, on scripted-update,
     digest-collision and chaos traces. The netwide engine earns no
     slack on the workloads the single-switch engine already pins.

   - events: the paper's network-wide claim. A connection established
     before a ToR failure is re-routed to a different switch and must
     survive a concurrent DIP pool update with zero PCC violations;
     recovery routes it back, again without violations; a VIP migration
     moves only that VIP's flows. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ----- fixtures ----- *)

let default_vips = Experiments.Common.vips_of ~n_vips:4 ~dips_per_vip:8

let layer name switches sram_budget_bits capacity_gbps =
  { Silkroad.Assignment.layer_name = name; switches; sram_budget_bits; capacity_gbps }

(* generous per-switch budget: 50 MB of LB SRAM *)
let big = 50 * 8 * 1024 * 1024

(* the degenerate network: single switch per layer, Core and Agg with
   zero LB SRAM so the assignment provably lands every VIP on the ToR —
   routing transits Core and Agg but all connection state lives on one
   switch, exactly the single-switch replay's world *)
let degenerate_layers =
  [ layer "core" 1 0 10_000.; layer "agg" 1 0 10_000.; layer "tor" 1 big 10_000. ]

let degenerate_topo () = Netwide.Topology.build ~layers:degenerate_layers ~vips:default_vips ()

let make_switch ?(cfg = Silkroad.Config.default) ?(vips = default_vips) () () =
  let sw = Silkroad.Switch.create cfg in
  List.iter (fun (vip, pool) -> Silkroad.Switch.add_vip sw vip pool) vips;
  sw

let random_flows ~seed ~n ~span vips =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let vips = Array.of_list vips in
  List.init n (fun id ->
      let vip, _ = vips.(Random.State.int rng (Array.length vips)) in
      let src =
        Netcore.Endpoint.v4
          (1 + Random.State.int rng 200)
          (Random.State.int rng 250) (Random.State.int rng 250)
          (1 + Random.State.int rng 250)
          (1024 + Random.State.int rng 50000)
      in
      {
        Simnet.Flow.id;
        tuple = Netcore.Five_tuple.make ~src ~dst:vip ~proto:Netcore.Protocol.Tcp;
        start = Random.State.float rng span;
        duration = 0.5 +. Random.State.float rng 60.;
        bytes_per_sec = 1000.;
      })

let tiny_cfg =
  {
    Silkroad.Config.default with
    Silkroad.Config.conn_table_rows = 64;
    conn_table_ways = 2;
    conn_table_stages = 2;
    digest_bits = 6;
  }

(* ----- topology: feasibility at build time ----- *)

(* a ToR that cannot hold even one VIP's connection state *)
let infeasible_layers = [ layer "tor" 1 1_000 10_000. ]

let build_fails_on_infeasible () =
  match Netwide.Topology.build ~layers:infeasible_layers ~vips:default_vips () with
  | (_ : Netwide.Topology.t) -> Alcotest.fail "build accepted an infeasible placement"
  | exception Invalid_argument msg ->
    check Alcotest.bool "message carries the net.unplaced diagnostic" true
      (try
         ignore (Str.search_forward (Str.regexp_string "net.unplaced") msg 0);
         true
       with Not_found -> false)

let build_warn_keeps_diags () =
  let topo =
    Netwide.Topology.build ~check:`Warn ~layers:infeasible_layers ~vips:default_vips ()
  in
  check Alcotest.bool "diagnostics carry errors" true
    (Analysis.Diag.errors topo.Netwide.Topology.diags > 0);
  check Alcotest.bool "unplaced VIPs reported" true
    (topo.Netwide.Topology.placement.Silkroad.Assignment.unplaced <> [])

let build_off_skips_check () =
  let topo =
    Netwide.Topology.build ~check:`Off ~layers:infeasible_layers ~vips:default_vips ()
  in
  check Alcotest.int "no diagnostics" 0 (List.length topo.Netwide.Topology.diags)

let degenerate_places_all_on_tor () =
  let topo = degenerate_topo () in
  check Alcotest.int "three layers, three nodes" 3 (Netwide.Topology.n_nodes topo);
  List.iter
    (fun (vip, _) ->
      check Alcotest.int "VIP terminates on the ToR layer" 2
        (Netwide.Topology.layer_of_vip topo vip))
    default_vips;
  check Alcotest.int "nothing unplaced" 0
    (List.length topo.Netwide.Topology.placement.Silkroad.Assignment.unplaced)

(* ----- route: qcheck properties ----- *)

(* multi-path fabric: 2 Core, 4 Agg, 8 ToR; state pinned to the ToRs *)
let fabric_layers =
  [ layer "core" 2 0 10_000.; layer "agg" 4 0 10_000.; layer "tor" 8 big 10_000. ]

let fabric () = Netwide.Topology.build ~layers:fabric_layers ~vips:default_vips ()

let path_ids topo vip flow =
  List.map (fun n -> n.Netwide.Topology.node_id) (Netwide.Route.path topo ~vip flow)

let qcheck_route_deterministic =
  QCheck.Test.make ~name:"route: per-5-tuple path is deterministic and full-depth" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let topo = fabric () in
      let flows = random_flows ~seed ~n:40 ~span:10. default_vips in
      List.for_all
        (fun (f : Simnet.Flow.t) ->
          let vip = f.Simnet.Flow.tuple.Netcore.Five_tuple.dst in
          let p1 = path_ids topo vip f.Simnet.Flow.tuple in
          let p2 = path_ids topo vip f.Simnet.Flow.tuple in
          p1 = p2 && List.length p1 = 3)
        flows)

let qcheck_route_terminates_at_placement =
  QCheck.Test.make
    ~name:"route: every flow's owner sits on the layer the Assignment placed its VIP on"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let topo = fabric () in
      let assignment = topo.Netwide.Topology.placement.Silkroad.Assignment.assignment in
      let flows = random_flows ~seed ~n:40 ~span:10. default_vips in
      List.for_all
        (fun (f : Simnet.Flow.t) ->
          let vip = f.Simnet.Flow.tuple.Netcore.Five_tuple.dst in
          let placed_layer = List.assoc vip assignment in
          match Netwide.Route.owner topo ~vip f.Simnet.Flow.tuple with
          | None -> false
          | Some n -> String.equal n.Netwide.Topology.layer_name placed_layer)
        flows)

let qcheck_agg_failure_minimal_disruption =
  QCheck.Test.make
    ~name:"route: an Agg failure re-homes exactly the flows that transited it, recovery undoes it"
    ~count:30
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, agg_member) ->
      let topo = fabric () in
      let dead = topo.Netwide.Topology.layer_nodes.(1).(agg_member) in
      let flows = random_flows ~seed ~n:60 ~span:10. default_vips in
      let tuples =
        List.map
          (fun (f : Simnet.Flow.t) ->
            (f.Simnet.Flow.tuple.Netcore.Five_tuple.dst, f.Simnet.Flow.tuple))
          flows
      in
      let before = List.map (fun (vip, t) -> path_ids topo vip t) tuples in
      Netwide.Topology.set_up topo ~node_id:dead.Netwide.Topology.node_id false;
      let during = List.map (fun (vip, t) -> path_ids topo vip t) tuples in
      let ok =
        List.for_all2
          (fun old now ->
            if List.mem dead.Netwide.Topology.node_id old then
              (* only the Agg hop may change; Core and ToR choices are
                 independent rendezvous draws *)
              List.length now = 3
              && List.nth now 0 = List.nth old 0
              && List.nth now 2 = List.nth old 2
              && List.nth now 1 <> dead.Netwide.Topology.node_id
            else now = old)
          before during
      in
      Netwide.Topology.set_up topo ~node_id:dead.Netwide.Topology.node_id true;
      let after = List.map (fun (vip, t) -> path_ids topo vip t) tuples in
      ok && after = before)

(* ----- differential: degenerate topology vs single-switch replay ----- *)

let telemetry_json_h (r : Harness.Replay.result) =
  Telemetry.Snapshot.to_json (Telemetry.Registry.snapshot r.Harness.Replay.telemetry)

let telemetry_json_n (r : Netwide.Replay.result) =
  Telemetry.Snapshot.to_json (Telemetry.Registry.snapshot r.Netwide.Replay.telemetry)

let check_differential name (h : Harness.Replay.result) (n : Netwide.Replay.result) =
  check Alcotest.string (name ^ ": telemetry byte-identical") (telemetry_json_h h)
    (telemetry_json_n n);
  check Alcotest.int (name ^ ": packets") h.Harness.Replay.packets n.Netwide.Replay.packets;
  check Alcotest.int (name ^ ": dropped") h.Harness.Replay.dropped n.Netwide.Replay.dropped;
  check Alcotest.int (name ^ ": connections") h.Harness.Replay.connections
    n.Netwide.Replay.connections;
  check Alcotest.int (name ^ ": broken") h.Harness.Replay.broken n.Netwide.Replay.broken;
  check Alcotest.int (name ^ ": violations") h.Harness.Replay.violations
    n.Netwide.Replay.violations;
  check Alcotest.int (name ^ ": no flows moved") 0 n.Netwide.Replay.moved_flows;
  let no = Silkroad.Switch.no_dip in
  Array.iteri
    (fun i x ->
      let y = n.Netwide.Replay.first_dip.(i) in
      let same = if x == no then y == no else y != no && Netcore.Endpoint.equal x y in
      if not same then Alcotest.failf "%s: flow %d first DIP differs" name i)
    h.Harness.Replay.first_dip

let differential ?(cfg = Silkroad.Config.default) ~name ~trace ~controls () =
  let scalar =
    Harness.Replay.run ~mode:Harness.Replay.Scalar ~make_switch:(make_switch ~cfg ()) ~trace
      ~controls ()
  in
  let nw_scalar = Netwide.Replay.run ~cfg ~batched:false ~topo:(degenerate_topo ()) ~trace ~controls () in
  check_differential (name ^ " (scalar)") scalar nw_scalar;
  let batch =
    Harness.Replay.run ~mode:Harness.Replay.Batch ~make_switch:(make_switch ~cfg ()) ~trace
      ~controls ()
  in
  let nw_batch = Netwide.Replay.run ~cfg ~batched:true ~topo:(degenerate_topo ()) ~trace ~controls () in
  check_differential (name ^ " (batched)") batch nw_batch

let differential_scripted () =
  let s =
    Experiments.Common.scenario ~conns_per_sec_per_vip:20. ~updates_per_min:6.
      ~trace_seconds:60. ()
  in
  let trace =
    Harness.Packed_trace.compile ~horizon:s.Experiments.Common.horizon s.Experiments.Common.flows
  in
  let controls =
    Harness.Replay.controls_of_updates ~horizon:s.Experiments.Common.horizon
      s.Experiments.Common.updates
  in
  differential ~name:"scripted" ~trace ~controls ()

let differential_collisions () =
  let flows = random_flows ~seed:4242 ~n:400 ~span:50. default_vips in
  let trace = Harness.Packed_trace.compile ~horizon:120. flows in
  (* non-vacuity: this workload must actually exercise false hits *)
  let probe =
    Harness.Replay.run ~make_switch:(make_switch ~cfg:tiny_cfg ()) ~trace ~controls:[] ()
  in
  check Alcotest.bool "digest collisions occurred" true (probe.Harness.Replay.false_hits > 0);
  differential ~cfg:tiny_cfg ~name:"collisions" ~trace ~controls:[] ()

let differential_chaos (scenario : Chaos.Scenario.t) () =
  let horizon = 120. in
  let flows = random_flows ~seed:9091 ~n:2000 ~span:90. default_vips in
  let inj = Chaos.Injector.create ~scenario ~seed:1117 ~vips:default_vips ~horizon () in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let controls = Harness.Replay.controls_of_chaos ~horizon (Chaos.Injector.events inj) in
  differential ~name:scenario.Chaos.Scenario.name ~trace ~controls ()

(* ----- events: the network-wide PCC claim ----- *)

(* 1 transit Core over 2 state-holding ToRs: the smallest fabric where a
   switch failure re-routes connections to a different switch *)
let two_tor_layers = [ layer "core" 1 0 10_000.; layer "tor" 2 big 10_000. ]

let two_tor () = Netwide.Topology.build ~layers:two_tor_layers ~vips:default_vips ()

(* ToR node ids in the 1-Core/2-ToR fabric *)
let tor_a = 1

(* A connection established before a ToR failure is re-routed to the
   surviving ToR and must ride out a concurrent DIP pool update with
   zero PCC violations: the §4.3 protocol (old version stays current
   through the recording step, the stalled CPU widens the window) pins
   every re-routed flow to the pool its very first packet selected
   from. *)
let failure_with_concurrent_update () =
  let topo = two_tor () in
  let flows = random_flows ~seed:777 ~n:800 ~span:25. default_vips in
  let trace = Harness.Packed_trace.compile ~probe_interval:1. ~horizon:120. flows in
  let vip0, pool0 = List.hd default_vips in
  let removed = (Lb.Dip_pool.members pool0).(0) in
  let controls =
    (29., Harness.Replay.Cpu_backlog 1_000_000)
    :: Harness.Replay.controls_of_updates ~horizon:120.
         [ (30.4, vip0, Lb.Balancer.Dip_remove removed) ]
  in
  let events = [ (30., Netwide.Replay.Switch_down tor_a) ] in
  let r = Netwide.Replay.run ~topo ~trace ~controls ~events () in
  check Alcotest.bool "workload is non-trivial" true
    (r.Netwide.Replay.connections > 300 && r.Netwide.Replay.packets > 10_000);
  check Alcotest.bool "the failure re-homed connections" true
    (r.Netwide.Replay.moved_flows > 0);
  check Alcotest.int "zero PCC violations across the re-route + update" 0
    r.Netwide.Replay.violations

let failure_and_recovery () =
  let topo = two_tor () in
  let flows = random_flows ~seed:888 ~n:600 ~span:25. default_vips in
  let trace = Harness.Packed_trace.compile ~probe_interval:1. ~horizon:120. flows in
  let events =
    [ (30., Netwide.Replay.Switch_down tor_a); (60., Netwide.Replay.Switch_up tor_a) ]
  in
  let r = Netwide.Replay.run ~topo ~trace ~events () in
  check Alcotest.bool "flows moved away and back" true (r.Netwide.Replay.moved_flows > 0);
  check Alcotest.int "zero PCC violations across the down/up cycle" 0
    r.Netwide.Replay.violations;
  let json = telemetry_json_n r in
  let has s =
    try
      ignore (Str.search_forward (Str.regexp_string s) json 0);
      true
    with Not_found -> false
  in
  check Alcotest.bool "netwide.switch_downs in merged telemetry" true (has "netwide.switch_downs");
  check Alcotest.bool "netwide.switch_ups in merged telemetry" true (has "netwide.switch_ups")

let vip_migration_moves_only_its_flows () =
  (* Agg has no LB SRAM budget, so the assignment starts every VIP on
     the ToRs; the migration then pulls one VIP up to the Agg switch *)
  let layers = [ layer "agg" 1 0 10_000.; layer "tor" 2 big 10_000. ] in
  let topo = Netwide.Topology.build ~layers ~vips:default_vips () in
  let flows = random_flows ~seed:999 ~n:600 ~span:25. default_vips in
  let trace = Harness.Packed_trace.compile ~probe_interval:1. ~horizon:120. flows in
  let vip0, _ = List.hd default_vips in
  let events = [ (40., Netwide.Replay.Vip_move (vip0, "agg")) ] in
  let r = Netwide.Replay.run ~topo ~trace ~events () in
  let vip0_flows =
    List.length
      (List.filter
         (fun (f : Simnet.Flow.t) ->
           Netcore.Endpoint.equal f.Simnet.Flow.tuple.Netcore.Five_tuple.dst vip0)
         flows)
  in
  check Alcotest.bool "the migrated VIP had flows" true (vip0_flows > 0);
  check Alcotest.int "exactly the VIP's flows re-homed" vip0_flows
    r.Netwide.Replay.moved_flows;
  check Alcotest.int "zero PCC violations across the migration" 0
    r.Netwide.Replay.violations;
  check Alcotest.int "the moved VIP now terminates on the Agg" 0
    (Netwide.Topology.layer_of_vip topo vip0)

let parallel_matches_sequential () =
  let flows = random_flows ~seed:31337 ~n:400 ~span:25. default_vips in
  let trace = Harness.Packed_trace.compile ~probe_interval:1. ~horizon:90. flows in
  let events =
    [ (30., Netwide.Replay.Switch_down tor_a); (60., Netwide.Replay.Switch_up tor_a) ]
  in
  let run parallel = Netwide.Replay.run ~parallel ~topo:(two_tor ()) ~trace ~events () in
  let seq = run false in
  let par = run true in
  check Alcotest.string "parallel telemetry byte-identical to sequential"
    (telemetry_json_n seq) (telemetry_json_n par);
  check Alcotest.int "parallel packets" seq.Netwide.Replay.packets par.Netwide.Replay.packets;
  check Alcotest.int "parallel violations" seq.Netwide.Replay.violations
    par.Netwide.Replay.violations;
  check Alcotest.int "parallel moved" seq.Netwide.Replay.moved_flows
    par.Netwide.Replay.moved_flows

let chaos_cases make =
  List.map
    (fun (sc : Chaos.Scenario.t) -> tc sc.Chaos.Scenario.name `Slow (make sc))
    Chaos.Scenario.all

let suites =
  [
    ( "netwide.topology",
      [
        tc "infeasible placement fails at build" `Quick build_fails_on_infeasible;
        tc "warn mode keeps the diagnostics" `Quick build_warn_keeps_diags;
        tc "off mode skips the check" `Quick build_off_skips_check;
        tc "degenerate topology pins every VIP to the ToR" `Quick degenerate_places_all_on_tor;
      ] );
    ( "netwide.route",
      [
        QCheck_alcotest.to_alcotest qcheck_route_deterministic;
        QCheck_alcotest.to_alcotest qcheck_route_terminates_at_placement;
        QCheck_alcotest.to_alcotest qcheck_agg_failure_minimal_disruption;
      ] );
    ( "netwide.differential",
      tc "scripted updates" `Quick differential_scripted
      :: tc "digest collisions" `Quick differential_collisions
      :: chaos_cases differential_chaos );
    ( "netwide.events",
      [
        tc "failure + concurrent update: zero violations" `Slow failure_with_concurrent_update;
        tc "failure and recovery round trip" `Quick failure_and_recovery;
        tc "vip migration moves only its flows" `Quick vip_migration_moves_only_its_flows;
        tc "parallel = sequential" `Quick parallel_matches_sequential;
      ] );
  ]
