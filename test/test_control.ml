(* The serve-mode control plane: protocol codec properties, session
   semantics, and the headline identity — a scripted serve session is
   counter-identical (down to the merged switch telemetry snapshot) to a
   batch replay of the same trace with the equivalent control list,
   because both drive the very same Replay.Stepper calls in the same
   order.

   Control times in the identity scripts are dyadic rationals so that
   the relative [advance] deltas the script carries re-accumulate to
   exactly the absolute times the batch control list uses. *)

let check = Alcotest.check
let tc = Alcotest.test_case

module P = Control.Protocol

(* ----- generators ----- *)

let gen_endpoint =
  QCheck.Gen.(
    map
      (fun (a, b, c, d, port) -> Netcore.Endpoint.v4 a b c d port)
      (tup5 (int_range 1 255) (int_range 0 255) (int_range 0 255) (int_range 0 255)
         (int_range 0 65535)))

let gen_duration =
  QCheck.Gen.(
    oneof
      [
        return 0.;
        return 1.5;
        return 1e-9;
        return 12345.6789;
        map (fun f -> Float.abs f) (float_bound_inclusive 1e12);
      ])

let gen_query =
  QCheck.Gen.(
    map
      (fun s -> "m" ^ s)
      (string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '9'; '.'; '_'; '-' ]) (int_bound 12)))

let gen_command =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun v ds -> P.Vip_add (v, ds))
          gen_endpoint
          (list_size (int_range 1 5) gen_endpoint);
        map (fun v -> P.Vip_remove v) gen_endpoint;
        map2 (fun v d -> P.Dip_add (v, d)) gen_endpoint gen_endpoint;
        map2 (fun v d -> P.Dip_remove (v, d)) gen_endpoint gen_endpoint;
        map
          (fun (vip, old_dip, new_dip) -> P.Dip_replace { vip; old_dip; new_dip })
          (tup3 gen_endpoint gen_endpoint gen_endpoint);
        map2 (fun up d -> P.Health ((if up then `Up else `Down), d)) bool gen_endpoint;
        map (fun dt -> P.Advance dt) gen_duration;
        map (fun q -> P.Stats q) (opt gen_query);
        return P.Drain;
        return P.Quit;
      ])

let gen_line =
  QCheck.Gen.(map2 (fun seq cmd -> { P.seq; cmd }) (opt (int_bound 1_000_000)) gen_command)

let arb_line = QCheck.make ~print:P.render gen_line

let gen_payload =
  (* no newlines and no leading '@' — the two shapes the line-oriented
     framing cannot carry verbatim *)
  QCheck.Gen.(
    map
      (fun s ->
        let s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s in
        if s <> "" && s.[0] = '@' then "x" ^ s else s)
      (string_size ~gen:printable (int_bound 30)))

let gen_response =
  QCheck.Gen.(
    map3
      (fun rseq ok payload -> { P.rseq; body = (if ok then Ok payload else Error payload) })
      (opt (int_bound 1_000_000))
      bool gen_payload)

let arb_response = QCheck.make ~print:P.render_response gen_response

(* ----- protocol properties ----- *)

let qcheck_line_roundtrip =
  QCheck.Test.make ~name:"render/parse round-trip (lines)" ~count:500 arb_line (fun l ->
      match P.parse (P.render l) with
      | Ok (Some l') when P.equal_line l l' -> true
      | Ok (Some l') ->
          QCheck.Test.fail_reportf "parsed %S from %S" (P.render l') (P.render l)
      | Ok None -> QCheck.Test.fail_reportf "%S parsed as blank" (P.render l)
      | Error e -> QCheck.Test.fail_reportf "%S rejected: %s" (P.render l) e)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"render/parse round-trip (responses)" ~count:500 arb_response
    (fun r ->
      match P.parse_response (P.render_response r) with
      | Ok r' when P.equal_response r r' -> true
      | Ok r' ->
          QCheck.Test.fail_reportf "parsed %S from %S" (P.render_response r')
            (P.render_response r)
      | Error e -> QCheck.Test.fail_reportf "%S rejected: %s" (P.render_response r) e)

let qcheck_parse_total =
  QCheck.Test.make ~name:"parse never raises on garbage" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      (match P.parse s with Ok _ | Error _ -> ());
      (match P.parse_response s with Ok _ | Error _ -> ());
      true)

let garbage_rejected () =
  let rejected s =
    match P.parse s with
    | Error _ -> ()
    | Ok None -> Alcotest.failf "%S treated as blank" s
    | Ok (Some l) -> Alcotest.failf "%S accepted as %S" s (P.render l)
  in
  List.iter rejected
    [
      "bogus";
      "vip-add";
      "vip-add 20.0.0.1:80";
      "vip-add notanip 10.0.0.1:20";
      "dip-add 20.0.0.1:80";
      "dip-replace 20.0.0.1:80 10.0.0.1:20";
      "health sideways 10.0.0.1:20";
      "advance";
      "advance -1";
      "advance nan";
      "advance inf";
      "stats a b";
      "drain now";
      "quit 0";
      "@x quit";
      "@-3 quit";
      "@5";
    ];
  List.iter
    (fun s ->
      match P.parse s with
      | Ok None -> ()
      | Ok (Some _) | Error _ -> Alcotest.failf "%S should be blank" s)
    [ ""; "   "; "# comment"; "  # indented comment"; "\t" ]

(* Socket clients terminate lines with CRLF and the odd trailing
   tab/space; both halves of the protocol must treat those like the
   canonical line. *)
let crlf_tolerated () =
  let same canonical noisy =
    match (P.parse canonical, P.parse noisy) with
    | Ok (Some a), Ok (Some b) when P.equal_line a b -> ()
    | _, Error e -> Alcotest.failf "%S rejected: %s" noisy e
    | _, Ok None -> Alcotest.failf "%S treated as blank" noisy
    | _, Ok (Some b) -> Alcotest.failf "%S parsed as %S" noisy (P.render b)
  in
  same "quit" "quit\r";
  same "drain" "drain \r";
  same "advance 0.5" "advance 0.5\r";
  same "advance 0.5" "advance\t0.5  \t\r";
  same "vip-add 10.0.0.1:80 20.0.0.1:8080" "vip-add 10.0.0.1:80 20.0.0.1:8080\r";
  same "@7 dip-remove 10.0.0.1:80 20.0.0.1:8080" "@7  dip-remove  10.0.0.1:80  20.0.0.1:8080\r";
  (match P.parse "# comment\r" with
  | Ok None -> ()
  | _ -> Alcotest.fail "CRLF comment should be blank");
  (match P.parse "  \t\r" with
  | Ok None -> ()
  | _ -> Alcotest.fail "CRLF whitespace line should be blank")

let crlf_response_tolerated () =
  let resp s =
    match P.parse_response s with
    | Ok r -> r
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  let body s = (resp s).P.body in
  check (Alcotest.result Alcotest.string Alcotest.string) "bare ok" (Ok "") (body "ok\r");
  check (Alcotest.result Alcotest.string Alcotest.string) "ok with seq/payload"
    (Ok "done") (body "ok @3 done\r" );
  check (Alcotest.option Alcotest.int) "seq survives" (Some 3) (resp "ok @3 done\r").P.rseq;
  check (Alcotest.result Alcotest.string Alcotest.string) "err payload stripped"
    (Error "boom") (body "err boom \t\r");
  (* ...but a canonical (non-CRLF) line keeps its payload verbatim,
     trailing spaces included — parse_response stays the exact inverse
     of render_response *)
  check (Alcotest.result Alcotest.string Alcotest.string) "canonical trailing space kept"
    (Ok "x ") (body "ok x ");
  match P.parse_response "okx\r" with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "%S accepted as %S" "okx\r" (P.render_response r)

(* ----- session semantics ----- *)

let vip k = Experiments.Common.vip k
let dip k = Experiments.Common.dip k
let e = Netcore.Endpoint.to_string

let line s =
  match P.parse s with
  | Ok (Some l) -> l
  | Ok None -> Alcotest.failf "blank command %S" s
  | Error m -> Alcotest.failf "bad test command %S: %s" s m

let expect_ok session s =
  match (Control.Session.exec session (line s)).P.body with
  | Ok payload -> payload
  | Error m -> Alcotest.failf "%S failed: %s" s m

let expect_err session s =
  match (Control.Session.exec session (line s)).P.body with
  | Ok payload -> Alcotest.failf "%S succeeded: %s" s payload
  | Error m -> m

let session_state session =
  Telemetry.Registry.snapshot (Control.Session.switch_metrics session)

let rejects_without_state_change () =
  let session = Control.Session.create () in
  ignore (expect_ok session (Printf.sprintf "vip-add %s %s %s" (e (vip 0)) (e (dip 0)) (e (dip 1))));
  let before = session_state session in
  (* parse failures *)
  (match Control.Session.exec_line session "utter garbage" with
  | Some { P.body = Error _; _ } -> ()
  | _ -> Alcotest.fail "garbage not rejected");
  (* validation failures, one per command family *)
  ignore (expect_err session (Printf.sprintf "vip-add %s %s" (e (vip 0)) (e (dip 5))));
  ignore (expect_err session (Printf.sprintf "vip-add %s %s %s" (e (vip 1)) (e (dip 5)) (e (dip 5))));
  ignore (expect_err session (Printf.sprintf "vip-remove %s" (e (vip 3))));
  ignore (expect_err session (Printf.sprintf "dip-add %s %s" (e (vip 0)) (e (dip 0))));
  ignore (expect_err session (Printf.sprintf "dip-add %s %s" (e (vip 3)) (e (dip 5))));
  ignore (expect_err session (Printf.sprintf "dip-remove %s %s" (e (vip 0)) (e (dip 7))));
  ignore (expect_err session (Printf.sprintf "dip-replace %s %s %s" (e (vip 0)) (e (dip 7)) (e (dip 8))));
  ignore (expect_err session (Printf.sprintf "dip-replace %s %s %s" (e (vip 0)) (e (dip 0)) (e (dip 1))));
  ignore (expect_err session (Printf.sprintf "health down %s" (e (dip 9))));
  ignore (expect_err session (Printf.sprintf "health up %s" (e (dip 0))));
  check Alcotest.bool "switch state unchanged" true
    (Telemetry.Snapshot.equal before (session_state session));
  check Alcotest.int "errors counted" 11
    (Telemetry.Registry.counter_value (Control.Session.control_metrics session) "control.errors")

let idempotent_redelivery () =
  let session = Control.Session.create () in
  ignore (expect_ok session (Printf.sprintf "@1 vip-add %s %s %s" (e (vip 0)) (e (dip 0)) (e (dip 1))));
  ignore (expect_ok session (Printf.sprintf "@2 dip-add %s %s" (e (vip 0)) (e (dip 2))));
  let before = session_state session in
  (* re-delivered and stale sequence numbers ack as duplicates... *)
  List.iter
    (fun s ->
      match (Control.Session.exec session (line s)).P.body with
      | Ok "duplicate" -> ()
      | Ok p -> Alcotest.failf "%S re-applied: %s" s p
      | Error m -> Alcotest.failf "%S errored: %s" s m)
    [
      Printf.sprintf "@2 dip-add %s %s" (e (vip 0)) (e (dip 2));
      Printf.sprintf "@1 vip-add %s %s %s" (e (vip 0)) (e (dip 0)) (e (dip 1));
      Printf.sprintf "@2 vip-remove %s" (e (vip 0));
    ];
  check Alcotest.bool "duplicates change nothing" true
    (Telemetry.Snapshot.equal before (session_state session));
  check Alcotest.int "duplicates counted" 3
    (Telemetry.Registry.counter_value (Control.Session.control_metrics session)
       "control.duplicates");
  (* ...an errored command does not consume its number... *)
  ignore (expect_err session (Printf.sprintf "@3 dip-add %s %s" (e (vip 0)) (e (dip 2))));
  ignore (expect_err session (Printf.sprintf "@3 dip-add %s %s" (e (vip 0)) (e (dip 2))));
  (* ...and the number is still usable by a successful retry *)
  ignore (expect_ok session (Printf.sprintf "@3 dip-add %s %s" (e (vip 0)) (e (dip 3))))

let health_semantics () =
  let session = Control.Session.create () in
  ignore (expect_ok session (Printf.sprintf "vip-add %s %s %s" (e (vip 0)) (e (dip 0)) (e (dip 1))));
  ignore (expect_ok session (Printf.sprintf "vip-add %s %s %s" (e (vip 1)) (e (dip 0)) (e (dip 2))));
  ignore (expect_ok session (Printf.sprintf "vip-add %s %s" (e (vip 2)) (e (dip 0))));
  (* withdrawn from both multi-member pools, kept in the singleton *)
  check Alcotest.string "down" (Printf.sprintf "down %s withdrawn_from=2" (e (dip 0)))
    (expect_ok session (Printf.sprintf "health down %s" (e (dip 0))));
  ignore (expect_err session (Printf.sprintf "health down %s" (e (dip 0))));
  ignore (expect_ok session "advance 30");
  check Alcotest.string "up" (Printf.sprintf "up %s restored_to=2" (e (dip 0)))
    (expect_ok session (Printf.sprintf "health up %s" (e (dip 0))));
  ignore (expect_ok session "advance 30");
  Array.iter
    (fun sw ->
      match Silkroad.Switch.check_invariants sw with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "invariants: %s" (String.concat "; " vs))
    (Control.Session.switches session)

let vip_remove_drops_traffic () =
  let vips = [ (vip 0, Lb.Dip_pool.of_list [ dip 0; dip 1 ]) ] in
  let flows = Test_replay.random_flows ~seed:77 ~n:40 ~span:20. vips in
  let trace = Harness.Packed_trace.compile ~horizon:60. flows in
  let session = Control.Session.create ~vips ~trace () in
  ignore (expect_ok session "advance 10");
  let mid = Control.Session.counts session in
  ignore (expect_ok session (Printf.sprintf "vip-remove %s" (e (vip 0))));
  ignore (expect_ok session "drain");
  let final = Control.Session.counts session in
  check Alcotest.bool "packets flowed before removal" true (mid.c_packets > 0);
  check Alcotest.bool "packets kept arriving" true (final.c_packets > mid.c_packets);
  check Alcotest.int "every post-removal packet dropped"
    (final.c_packets - mid.c_packets)
    (final.c_dropped - mid.c_dropped);
  Array.iter
    (fun sw ->
      check Alcotest.int "no connections left" 0 (Silkroad.Switch.connections sw);
      match Silkroad.Switch.check_invariants sw with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "invariants: %s" (String.concat "; " vs))
    (Control.Session.switches session)

let update_hook_observes_latency () =
  let vips = [ (vip 0, Lb.Dip_pool.of_list [ dip 0; dip 1; dip 2 ]) ] in
  (* a burst of connections arriving exactly when the update lands: their
     learning batch (1ms timeout) cannot have drained yet, so they are
     seen-but-uninserted and the step-1 barrier must take real time *)
  let burst =
    List.init 40 (fun i ->
        {
          Simnet.Flow.id = 1000 + i;
          tuple =
            Netcore.Five_tuple.make
              ~src:(Netcore.Endpoint.v4 9 9 (i / 250) (1 + (i mod 250)) (2000 + i))
              ~dst:(vip 0) ~proto:Netcore.Protocol.Tcp;
          start = 5.0;
          duration = 30.;
          bytes_per_sec = 1000.;
        })
  in
  let flows = Test_replay.random_flows ~seed:3 ~n:200 ~span:10. vips @ burst in
  let trace = Harness.Packed_trace.compile ~horizon:80. flows in
  let session = Control.Session.create ~vips ~trace () in
  ignore (expect_ok session "advance 5");
  ignore (expect_ok session (Printf.sprintf "dip-remove %s %s" (e (vip 0)) (e (dip 2))));
  ignore (expect_ok session "advance 20");
  ignore (expect_ok session (Printf.sprintf "dip-add %s %s" (e (vip 0)) (e (dip 2))));
  ignore (expect_ok session "drain");
  let reg = Control.Session.control_metrics session in
  let completed =
    (Silkroad.Switch.stats (Control.Session.switches session).(0)).updates_completed
  in
  check Alcotest.int "updates completed" 2 completed;
  match Telemetry.Registry.find_histogram reg "control.update_apply_seconds" with
  | None -> Alcotest.fail "control.update_apply_seconds missing"
  | Some h ->
      check Alcotest.int "every update observed" completed (Telemetry.Histogram.count h);
      check Alcotest.bool "with live traffic the 3-step protocol takes real time" true
        (Telemetry.Histogram.max_value h > 0.)

(* ----- scripted serve == batch replay ----- *)

(* Dyadic control times: step 1/4 keeps every partial sum exact. *)
let identity_updates =
  [
    (4.25, vip 0, Lb.Balancer.Dip_remove (dip 2));
    (7.5, vip 1, Lb.Balancer.Dip_add (dip 23));
    (7.5, vip 0, Lb.Balancer.Dip_add (dip 2));
    (11.75, vip 1, Lb.Balancer.Dip_replace { old_dip = dip 20; new_dip = dip 24 });
    (13., vip 2, Lb.Balancer.Dip_remove (dip 30));
    (15.25, vip 2, Lb.Balancer.Dip_add (dip 30));
  ]

let script_of_updates updates =
  (* absolute times -> relative advance lines + the update commands *)
  let buf = Buffer.create 256 in
  let now = ref 0. in
  List.iter
    (fun (t, v, u) ->
      if t > !now then begin
        Buffer.add_string buf (P.render { P.seq = None; cmd = P.Advance (t -. !now) });
        Buffer.add_char buf '\n';
        now := t
      end;
      let cmd =
        match u with
        | Lb.Balancer.Dip_add d -> P.Dip_add (v, d)
        | Lb.Balancer.Dip_remove d -> P.Dip_remove (v, d)
        | Lb.Balancer.Dip_replace { old_dip; new_dip } ->
            P.Dip_replace { vip = v; old_dip; new_dip }
      in
      Buffer.add_string buf (P.render { P.seq = None; cmd });
      Buffer.add_char buf '\n')
    updates;
  Buffer.add_string buf "drain\nquit\n";
  Buffer.contents buf

let serve_vs_batch ~shards () =
  let vips =
    [
      (vip 0, Lb.Dip_pool.of_list [ dip 0; dip 1; dip 2 ]);
      (vip 1, Lb.Dip_pool.of_list [ dip 20; dip 21; dip 22 ]);
      (vip 2, Lb.Dip_pool.of_list [ dip 30; dip 31 ]);
    ]
  in
  let flows = Test_replay.random_flows ~seed:42 ~n:150 ~span:16. vips in
  let horizon = 40. in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  (* batch leg, capturing the switches it creates *)
  let captured = ref [] in
  let make_switch () =
    let sw = Silkroad.Switch.create Silkroad.Config.default in
    List.iter (fun (v, pool) -> Silkroad.Switch.add_vip sw v pool) vips;
    captured := sw :: !captured;
    sw
  in
  let mode =
    if shards > 1 then Harness.Replay.Sharded { shards; parallel = false }
    else Harness.Replay.Batch
  in
  let controls = Harness.Replay.controls_of_updates ~horizon identity_updates in
  let batch = Harness.Replay.run ~mode ~make_switch ~trace ~controls () in
  (* serve leg: the same workload as a command script through the full
     parse -> session -> stepper path *)
  let session = Control.Session.create ~shards ~vips ~trace () in
  String.split_on_char '\n' (script_of_updates identity_updates)
  |> List.iter (fun l ->
         match Control.Session.exec_line session l with
         | Some { P.body = Error m; _ } -> Alcotest.failf "%S failed: %s" l m
         | Some { P.body = Ok _; _ } | None -> ());
  let c = Control.Session.counts session in
  check Alcotest.int "packets" batch.Harness.Replay.packets c.c_packets;
  check Alcotest.int "dropped" batch.Harness.Replay.dropped c.c_dropped;
  check Alcotest.int "connections" batch.Harness.Replay.connections c.c_connections;
  check Alcotest.int "broken" batch.Harness.Replay.broken c.c_broken;
  check Alcotest.int "violations" batch.Harness.Replay.violations c.c_violations;
  let batch_switch_snapshot =
    Telemetry.Registry.snapshot
      (Telemetry.Registry.merge_all (List.rev_map Silkroad.Switch.metrics !captured))
  in
  check Alcotest.bool "switch telemetry byte-identical" true
    (Telemetry.Snapshot.equal batch_switch_snapshot (session_state session));
  check Alcotest.string "switch telemetry JSON byte-identical"
    (Telemetry.Snapshot.to_json batch_switch_snapshot)
    (Telemetry.Snapshot.to_json (session_state session))

let health_matches_updates () =
  (* health down/up must be byte-equivalent to the Dip_remove/Dip_add
     controls it expands to *)
  let vips =
    [
      (vip 0, Lb.Dip_pool.of_list [ dip 0; dip 1; dip 2 ]);
      (vip 1, Lb.Dip_pool.of_list [ dip 0; dip 21 ]);
    ]
  in
  let flows = Test_replay.random_flows ~seed:9 ~n:100 ~span:12. vips in
  let horizon = 30. in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let expanded =
    [
      (5.25, vip 0, Lb.Balancer.Dip_remove (dip 0));
      (5.25, vip 1, Lb.Balancer.Dip_remove (dip 0));
      (9.5, vip 0, Lb.Balancer.Dip_add (dip 0));
      (9.5, vip 1, Lb.Balancer.Dip_add (dip 0));
    ]
  in
  let captured = ref [] in
  let make_switch () =
    let sw = Silkroad.Switch.create Silkroad.Config.default in
    List.iter (fun (v, pool) -> Silkroad.Switch.add_vip sw v pool) vips;
    captured := sw :: !captured;
    sw
  in
  let batch =
    Harness.Replay.run ~make_switch ~trace
      ~controls:(Harness.Replay.controls_of_updates ~horizon expanded)
      ()
  in
  let session = Control.Session.create ~vips ~trace () in
  List.iter
    (fun l -> ignore (expect_ok session l))
    [
      "advance 5.25";
      Printf.sprintf "health down %s" (e (dip 0));
      "advance 4.25";
      Printf.sprintf "health up %s" (e (dip 0));
      "drain";
    ];
  let c = Control.Session.counts session in
  check Alcotest.int "packets" batch.Harness.Replay.packets c.c_packets;
  check Alcotest.int "broken" batch.Harness.Replay.broken c.c_broken;
  let batch_switch_snapshot =
    Telemetry.Registry.snapshot
      (Telemetry.Registry.merge_all (List.rev_map Silkroad.Switch.metrics !captured))
  in
  check Alcotest.bool "switch telemetry byte-identical" true
    (Telemetry.Snapshot.equal batch_switch_snapshot (session_state session))

let suites =
  [
    ( "control.protocol",
      [
        QCheck_alcotest.to_alcotest qcheck_line_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_parse_total;
        tc "malformed lines rejected, blanks skipped" `Quick garbage_rejected;
        tc "CRLF/trailing-whitespace commands tolerated" `Quick crlf_tolerated;
        tc "CRLF responses stripped, canonical payloads verbatim" `Quick crlf_response_tolerated;
      ] );
    ( "control.session",
      [
        tc "rejects bad commands without state change" `Quick rejects_without_state_change;
        tc "idempotent re-delivery" `Quick idempotent_redelivery;
        tc "health down/up fan-out" `Quick health_semantics;
        tc "vip-remove tears down traffic" `Quick vip_remove_drops_traffic;
        tc "update hook feeds apply-latency histogram" `Quick update_hook_observes_latency;
      ] );
    ( "control.identity",
      [
        tc "scripted serve == batch replay" `Quick (serve_vs_batch ~shards:1);
        tc "scripted serve == sharded replay" `Quick (serve_vs_batch ~shards:4);
        tc "health events == expanded updates" `Quick health_matches_updates;
      ] );
  ]
