(* Differential model-checking suite for the fast-path replay engine.

   Three equivalence layers, each pinning one leg of the replay
   contract:

   - oracle: the switch against a pure reference model (a plain function
     of the 5-tuple, no digests, no versions, no tables) on
     qcheck-random traces. On update-free traces the switch must agree
     with the reference for EVERY flow — even digest-colliding ones,
     because a false hit forwards with the colliding entry's version,
     and with a single live version that resolves to the same pool and
     the same per-flow ECMP choice. Under an update, versions diverge,
     so the guarantee narrows to collision-free flows (collisions
     computed from pure table geometry via Conn_table.probe_positions)
     — digest collisions are the only divergence class, as §4.2 argues.

   - driver vs replay: Replay.run in Scalar mode must reproduce
     Driver.run's observable counters exactly — same packets, same
     order, same control tie-breaking — on scripted-update workloads
     and under all chaos scenarios.

   - scalar vs batch vs sharded: Batch must be byte-identical to Scalar
     (same switch, same order, only the boxing differs), checked as
     telemetry-JSON string equality. Sharded runs per-shard ConnTables
     whose collision and Bloom false-positive classes shrink, so it is
     compared on the collision-free counter set, with scalar
     [false_hits = 0] asserted as the precondition. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ----- workload construction ----- *)

let default_vips = Experiments.Common.vips_of ~n_vips:4 ~dips_per_vip:8

let make_switch ?(cfg = Silkroad.Config.default) ?(vips = default_vips) ?conn_layout () () =
  let sw = Silkroad.Switch.create ?conn_layout cfg in
  List.iter (fun (vip, pool) -> Silkroad.Switch.add_vip sw vip pool) vips;
  sw

let random_flows ~seed ~n ~span vips =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let vips = Array.of_list vips in
  List.init n (fun id ->
      let vip, _ = vips.(Random.State.int rng (Array.length vips)) in
      let src =
        Netcore.Endpoint.v4
          (1 + Random.State.int rng 200)
          (Random.State.int rng 250) (Random.State.int rng 250)
          (1 + Random.State.int rng 250)
          (1024 + Random.State.int rng 50000)
      in
      {
        Simnet.Flow.id;
        tuple = Netcore.Five_tuple.make ~src ~dst:vip ~proto:Netcore.Protocol.Tcp;
        start = Random.State.float rng span;
        duration = 0.5 +. Random.State.float rng 60.;
        bytes_per_sec = 1000.;
      })

(* The pure reference model: a flow's DIP is a function of its 5-tuple
   and its VIP's pool — exactly the per-flow ECMP choice Dip_pool_table
   makes, with none of the switch's machinery. *)
let reference ~seed vips (flow : Simnet.Flow.t) =
  let pool = List.assoc flow.Simnet.Flow.tuple.Netcore.Five_tuple.dst vips in
  Lb.Dip_pool.select_flow ~seed pool flow.Simnet.Flow.tuple

(* Collision classes from pure geometry: two flows can falsely hit each
   other iff they share a (stage, row, digest) triple in a ConnTable of
   this configuration. *)
let colliding_flows cfg flows =
  let table = Silkroad.Conn_table.create cfg in
  let seen = Hashtbl.create 256 in
  let collides = Hashtbl.create 16 in
  List.iteri
    (fun i (flow : Simnet.Flow.t) ->
      List.iter
        (fun pos ->
          match Hashtbl.find_opt seen pos with
          | Some j when j <> i ->
            Hashtbl.replace collides i ();
            Hashtbl.replace collides j ()
          | Some _ -> ()
          | None -> Hashtbl.replace seen pos i)
        (Silkroad.Conn_table.probe_positions table flow.Simnet.Flow.tuple))
    flows;
  fun i -> Hashtbl.mem collides i

(* A small config where 6-bit digests in a 256-entry table make
   collisions common enough for qcheck to exercise them. *)
let tiny_cfg =
  {
    Silkroad.Config.default with
    Silkroad.Config.conn_table_rows = 64;
    conn_table_ways = 2;
    conn_table_stages = 2;
    digest_bits = 6;
  }

(* ----- oracle tests ----- *)

let oracle_update_free ?conn_layout cfg name =
  QCheck.Test.make ~name ~count:10 QCheck.(int_bound 1_000_000) (fun seed ->
      let flows = random_flows ~seed ~n:150 ~span:100. default_vips in
      let trace = Harness.Packed_trace.compile ~horizon:170. flows in
      let r =
        Harness.Replay.run ~make_switch:(make_switch ~cfg ?conn_layout ()) ~trace ~controls:[] ()
      in
      List.iteri
        (fun i flow ->
          let expected = reference ~seed:cfg.Silkroad.Config.seed default_vips flow in
          if not (Netcore.Endpoint.equal r.Harness.Replay.first_dip.(i) expected) then
            QCheck.Test.fail_reportf "flow %d: switch %a, reference %a" i Netcore.Endpoint.pp
              r.Harness.Replay.first_dip.(i) Netcore.Endpoint.pp expected)
        flows;
      true)

let qcheck_oracle_default = oracle_update_free Silkroad.Config.default "oracle: update-free trace matches reference model (default config)"

let qcheck_oracle_tiny =
  oracle_update_free tiny_cfg
    "oracle: update-free trace matches reference even with 6-bit digest collisions"

(* the same oracle legs over the boxed reference ConnTable layout: the
   pure-function reference knows nothing about memory layout, so both
   layouts must satisfy it independently *)
let qcheck_oracle_default_boxed =
  oracle_update_free ~conn_layout:`Boxed Silkroad.Config.default
    "oracle: update-free trace matches reference model (boxed layout)"

let qcheck_oracle_tiny_boxed =
  oracle_update_free ~conn_layout:`Boxed tiny_cfg
    "oracle: boxed layout matches reference under 6-bit digest collisions"

(* With an update in flight versions diverge, so the reference holds for
   collision-free flows only: flows whose first packet precedes the
   update resolve against the old pool, later ones against old or new
   (depending on where the VIP is in its update protocol when the SYN
   lands). Colliding flows are exactly the allowed divergence class. *)
let qcheck_oracle_under_update =
  QCheck.Test.make ~name:"oracle: under one update, collision-free flows match old/new reference"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cfg = tiny_cfg in
      let vips = default_vips in
      let flows = random_flows ~seed ~n:150 ~span:100. vips in
      let vip0, pool0 = List.hd vips in
      let removed = (Lb.Dip_pool.members pool0).(0) in
      let update_at = 60. in
      let trace = Harness.Packed_trace.compile ~horizon:170. flows in
      let controls =
        Harness.Replay.controls_of_updates ~horizon:170.
          [ (update_at, vip0, Lb.Balancer.Dip_remove removed) ]
      in
      let r = Harness.Replay.run ~make_switch:(make_switch ~cfg ~vips ()) ~trace ~controls () in
      let collides = colliding_flows cfg flows in
      let old_vips = vips in
      let new_vips = (vip0, Lb.Dip_pool.remove pool0 removed) :: List.tl vips in
      List.iteri
        (fun i (flow : Simnet.Flow.t) ->
          if not (collides i) then begin
            let got = r.Harness.Replay.first_dip.(i) in
            let seed = cfg.Silkroad.Config.seed in
            let old_choice = reference ~seed old_vips flow in
            let new_choice = reference ~seed new_vips flow in
            let ok =
              if flow.Simnet.Flow.start <= update_at then Netcore.Endpoint.equal got old_choice
              else
                Netcore.Endpoint.equal got old_choice || Netcore.Endpoint.equal got new_choice
            in
            if not ok then
              QCheck.Test.fail_reportf "flow %d (start %.2f): switch %a, reference old %a new %a"
                i flow.Simnet.Flow.start Netcore.Endpoint.pp got Netcore.Endpoint.pp old_choice
                Netcore.Endpoint.pp new_choice
          end)
        flows;
      true)

(* The tiny config must actually produce false hits on a dense workload
   — otherwise the collision leg of the oracle is vacuous. *)
let tiny_config_collides () =
  let flows = random_flows ~seed:4242 ~n:400 ~span:50. default_vips in
  let trace = Harness.Packed_trace.compile ~horizon:120. flows in
  let r = Harness.Replay.run ~make_switch:(make_switch ~cfg:tiny_cfg ()) ~trace ~controls:[] () in
  check Alcotest.bool "false hits occurred" true (r.Harness.Replay.false_hits > 0);
  (* ... and the oracle equality above still held for every flow. *)
  List.iteri
    (fun i flow ->
      check Alcotest.bool "matches reference" true
        (Netcore.Endpoint.equal r.Harness.Replay.first_dip.(i)
           (reference ~seed:tiny_cfg.Silkroad.Config.seed default_vips flow)))
    flows

(* ----- driver vs replay ----- *)

let check_counters name (d : Harness.Driver.result) (r : Harness.Replay.result) =
  check Alcotest.int (name ^ ": packets") d.Harness.Driver.packets r.Harness.Replay.packets;
  check Alcotest.int (name ^ ": dropped") d.Harness.Driver.dropped_packets
    r.Harness.Replay.dropped;
  check Alcotest.int (name ^ ": connections") d.Harness.Driver.connections
    r.Harness.Replay.connections;
  check Alcotest.int (name ^ ": broken") d.Harness.Driver.broken_connections
    r.Harness.Replay.broken;
  check Alcotest.int (name ^ ": violations") d.Harness.Driver.violation_packets
    r.Harness.Replay.violations

let scripted_scenario () =
  Experiments.Common.scenario ~conns_per_sec_per_vip:20. ~updates_per_min:6. ~trace_seconds:60.
    ()

let replay_of_scenario ~mode (s : Experiments.Common.scenario) =
  let trace = Harness.Packed_trace.compile ~horizon:s.Experiments.Common.horizon s.Experiments.Common.flows in
  let controls =
    Harness.Replay.controls_of_updates ~horizon:s.Experiments.Common.horizon
      s.Experiments.Common.updates
  in
  Harness.Replay.run ~mode ~make_switch:(make_switch ()) ~trace ~controls ()

let driver_of_scenario ?chaos (s : Experiments.Common.scenario) =
  let _sw, balancer = Experiments.Common.silkroad ~vips:default_vips () in
  Harness.Driver.run ?chaos ~balancer ~flows:s.Experiments.Common.flows
    ~updates:s.Experiments.Common.updates ~horizon:s.Experiments.Common.horizon ()

let driver_vs_scalar_scripted () =
  let s = scripted_scenario () in
  let d = driver_of_scenario s in
  let r = replay_of_scenario ~mode:Harness.Replay.Scalar s in
  check Alcotest.bool "workload is non-trivial" true
    (d.Harness.Driver.connections > 1000 && d.Harness.Driver.packets > 10_000);
  check_counters "scripted" d r

let chaos_workload (scenario : Chaos.Scenario.t) =
  let horizon = 120. in
  let flows = random_flows ~seed:9091 ~n:2000 ~span:90. default_vips in
  let inj =
    Chaos.Injector.create ~scenario ~seed:1117 ~vips:default_vips ~horizon ()
  in
  (flows, inj, horizon)

let driver_vs_scalar_chaos (scenario : Chaos.Scenario.t) () =
  let flows, inj, horizon = chaos_workload scenario in
  let _sw, balancer = Experiments.Common.silkroad ~vips:default_vips () in
  let d = Harness.Driver.run ~chaos:inj ~balancer ~flows ~updates:[] ~horizon () in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let controls = Harness.Replay.controls_of_chaos ~horizon (Chaos.Injector.events inj) in
  let r =
    Harness.Replay.run ~mode:Harness.Replay.Scalar ~make_switch:(make_switch ()) ~trace
      ~controls ()
  in
  check_counters scenario.Chaos.Scenario.name d r

(* ----- scalar vs batch vs sharded ----- *)

let telemetry_json (r : Harness.Replay.result) =
  Telemetry.Snapshot.to_json (Telemetry.Registry.snapshot r.Harness.Replay.telemetry)

let scalar_vs_batch_scripted () =
  let s = scripted_scenario () in
  let scalar = replay_of_scenario ~mode:Harness.Replay.Scalar s in
  let batch = replay_of_scenario ~mode:Harness.Replay.Batch s in
  check Alcotest.string "telemetry byte-identical" (telemetry_json scalar)
    (telemetry_json batch)

let scalar_vs_batch_chaos (scenario : Chaos.Scenario.t) () =
  let flows, inj, horizon = chaos_workload scenario in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let controls = Harness.Replay.controls_of_chaos ~horizon (Chaos.Injector.events inj) in
  let run mode = Harness.Replay.run ~mode ~make_switch:(make_switch ()) ~trace ~controls () in
  let scalar = run Harness.Replay.Scalar in
  let batch = run Harness.Replay.Batch in
  check Alcotest.string
    (scenario.Chaos.Scenario.name ^ ": telemetry byte-identical")
    (telemetry_json scalar) (telemetry_json batch)

let check_shard_counters ?(exact_pcc = true) name (scalar : Harness.Replay.result)
    (sharded : Harness.Replay.result) =
  (* precondition for exact equality on the collision-free counter set *)
  check Alcotest.int (name ^ ": scalar run is collision-free") 0
    scalar.Harness.Replay.false_hits;
  check Alcotest.int (name ^ ": packets") scalar.Harness.Replay.packets
    sharded.Harness.Replay.packets;
  check Alcotest.int (name ^ ": dropped") scalar.Harness.Replay.dropped
    sharded.Harness.Replay.dropped;
  check Alcotest.int (name ^ ": connections") scalar.Harness.Replay.connections
    sharded.Harness.Replay.connections;
  if exact_pcc then begin
    check Alcotest.int (name ^ ": broken") scalar.Harness.Replay.broken
      sharded.Harness.Replay.broken;
    check Alcotest.int (name ^ ": violations") scalar.Harness.Replay.violations
      sharded.Harness.Replay.violations
  end
  else begin
    (* Re-route faults forget flows mid-update: each forgotten flow
       re-learns its DIP against its own switch's CPU/barrier timeline,
       and sharding divides every switch's load by the shard count, so
       the re-learn can land on the opposite side of the §4.3 race
       window from the scalar run. The per-connection verdicts are
       mode-dependent by design there. What sharding must still
       preserve: every re-route tears down the same connection set
       (each flow's state lives on exactly one shard, and its lifetime
       depends only on that flow's own packet times), and only
       re-homed connections may break. *)
    let rerouted (r : Harness.Replay.result) =
      Telemetry.Registry.counter_value r.Harness.Replay.telemetry "switch.rerouted_flows"
    in
    check Alcotest.int (name ^ ": rerouted flows") (rerouted scalar) (rerouted sharded);
    check Alcotest.bool (name ^ ": scalar breaks only re-homed conns") true
      (scalar.Harness.Replay.broken <= rerouted scalar);
    check Alcotest.bool (name ^ ": sharded breaks only re-homed conns") true
      (sharded.Harness.Replay.broken <= rerouted sharded)
  end

let sharded_vs_scalar_scripted () =
  let s = scripted_scenario () in
  let scalar = replay_of_scenario ~mode:Harness.Replay.Scalar s in
  let sharded =
    replay_of_scenario ~mode:(Harness.Replay.Sharded { shards = 4; parallel = false }) s
  in
  check_shard_counters "scripted" scalar sharded

let sharded_vs_scalar_chaos (scenario : Chaos.Scenario.t) () =
  let flows, inj, horizon = chaos_workload scenario in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let controls = Harness.Replay.controls_of_chaos ~horizon (Chaos.Injector.events inj) in
  let run mode = Harness.Replay.run ~mode ~make_switch:(make_switch ()) ~trace ~controls () in
  let scalar = run Harness.Replay.Scalar in
  let sharded = run (Harness.Replay.Sharded { shards = 4; parallel = false }) in
  let exact_pcc =
    not
      (List.exists
         (function
           | Chaos.Scenario.Switch_failure _ | Chaos.Scenario.Vip_migration _ -> true
           | _ -> false)
         scenario.Chaos.Scenario.faults)
  in
  check_shard_counters ~exact_pcc scenario.Chaos.Scenario.name scalar sharded

let parallel_matches_sequential () =
  let s = scripted_scenario () in
  let seq = replay_of_scenario ~mode:(Harness.Replay.Sharded { shards = 4; parallel = false }) s in
  let par = replay_of_scenario ~mode:(Harness.Replay.Sharded { shards = 4; parallel = true }) s in
  check Alcotest.string "parallel telemetry byte-identical to sequential" (telemetry_json seq)
    (telemetry_json par);
  check Alcotest.int "parallel packets" seq.Harness.Replay.packets par.Harness.Replay.packets;
  check Alcotest.int "parallel broken" seq.Harness.Replay.broken par.Harness.Replay.broken

(* ----- flat vs boxed ConnTable layouts ----- *)

(* The cross-layout contract: the SoA table and the boxed reference are
   placement-identical, so the same traffic through both layouts must
   produce byte-identical PCC counters, collision counters AND
   first-DIP assignments — including on digest-collision workloads,
   where any layout divergence would surface as a different false-hit
   or repair count. *)
let check_layout_equal name (f : Harness.Replay.result) (b : Harness.Replay.result) =
  check Alcotest.string (name ^ ": telemetry byte-identical") (telemetry_json f)
    (telemetry_json b);
  check Alcotest.int (name ^ ": packets") f.Harness.Replay.packets b.Harness.Replay.packets;
  check Alcotest.int (name ^ ": dropped") f.Harness.Replay.dropped b.Harness.Replay.dropped;
  check Alcotest.int (name ^ ": connections") f.Harness.Replay.connections
    b.Harness.Replay.connections;
  check Alcotest.int (name ^ ": broken") f.Harness.Replay.broken b.Harness.Replay.broken;
  check Alcotest.int (name ^ ": violations") f.Harness.Replay.violations
    b.Harness.Replay.violations;
  check Alcotest.int (name ^ ": false hits") f.Harness.Replay.false_hits
    b.Harness.Replay.false_hits;
  check Alcotest.int (name ^ ": repairs") f.Harness.Replay.repairs b.Harness.Replay.repairs;
  let no = Silkroad.Switch.no_dip in
  Array.iteri
    (fun i x ->
      let y = b.Harness.Replay.first_dip.(i) in
      let same =
        if x == no then y == no else y != no && Netcore.Endpoint.equal x y
      in
      if not same then Alcotest.failf "%s: flow %d first DIP differs across layouts" name i)
    f.Harness.Replay.first_dip

let layout_runs ?(cfg = Silkroad.Config.default) ~trace ~controls () =
  let run layout =
    Harness.Replay.run ~mode:Harness.Replay.Batch
      ~make_switch:(make_switch ~cfg ~conn_layout:layout ())
      ~trace ~controls ()
  in
  (run `Flat, run `Boxed)

let layout_equiv_scripted () =
  let s = scripted_scenario () in
  let trace =
    Harness.Packed_trace.compile ~horizon:s.Experiments.Common.horizon s.Experiments.Common.flows
  in
  let controls =
    Harness.Replay.controls_of_updates ~horizon:s.Experiments.Common.horizon
      s.Experiments.Common.updates
  in
  let f, b = layout_runs ~trace ~controls () in
  check_layout_equal "scripted" f b

(* the digest-collision fixture: tiny_cfg plus a dense workload makes
   false hits and SYN repairs certain, so this leg is non-vacuous *)
let layout_equiv_tiny_collisions () =
  let flows = random_flows ~seed:4242 ~n:400 ~span:50. default_vips in
  let trace = Harness.Packed_trace.compile ~horizon:120. flows in
  let f, b = layout_runs ~cfg:tiny_cfg ~trace ~controls:[] () in
  check Alcotest.bool "false hits occurred" true (f.Harness.Replay.false_hits > 0);
  check_layout_equal "tiny collisions" f b

let layout_equiv_chaos (scenario : Chaos.Scenario.t) () =
  let flows, inj, horizon = chaos_workload scenario in
  let trace = Harness.Packed_trace.compile ~horizon flows in
  let controls = Harness.Replay.controls_of_chaos ~horizon (Chaos.Injector.events inj) in
  let f, b = layout_runs ~trace ~controls () in
  check_layout_equal scenario.Chaos.Scenario.name f b

(* shard_of must be a total assignment, stable in the tuple *)
let qcheck_shard_of_range =
  QCheck.Test.make ~name:"shard_of lands in range and is deterministic" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let flows = random_flows ~seed ~n:20 ~span:10. default_vips in
      List.for_all
        (fun (f : Simnet.Flow.t) ->
          let k = Harness.Replay.shard_of ~shards:7 f.Simnet.Flow.tuple in
          k >= 0 && k < 7 && k = Harness.Replay.shard_of ~shards:7 f.Simnet.Flow.tuple)
        flows)

(* ----- packed trace codec ----- *)

let codec_round_trip () =
  let s = Experiments.Common.scenario ~conns_per_sec_per_vip:5. ~updates_per_min:0.
      ~trace_seconds:30. ()
  in
  let t = Harness.Packed_trace.compile ~horizon:s.Experiments.Common.horizon s.Experiments.Common.flows in
  let path = Filename.temp_file "silkroad-trace" ".srp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Harness.Packed_trace.save path t;
      let t' = Harness.Packed_trace.load path in
      check (Alcotest.float 0.) "horizon" t.Harness.Packed_trace.horizon t'.Harness.Packed_trace.horizon;
      check Alcotest.bool "vips" true (t.Harness.Packed_trace.vips = t'.Harness.Packed_trace.vips);
      check Alcotest.bool "flow ids" true (t.Harness.Packed_trace.flow_ids = t'.Harness.Packed_trace.flow_ids);
      check Alcotest.bool "flow vips" true (t.Harness.Packed_trace.flow_vip = t'.Harness.Packed_trace.flow_vip);
      check Alcotest.bool "flow tuples" true
        (t.Harness.Packed_trace.flow_tuples = t'.Harness.Packed_trace.flow_tuples);
      check Alcotest.bool "times" true (t.Harness.Packed_trace.times = t'.Harness.Packed_trace.times);
      check Alcotest.bool "pkt flows" true (t.Harness.Packed_trace.pkt_flow = t'.Harness.Packed_trace.pkt_flow);
      check Alcotest.bool "pkt flags" true
        (Bytes.equal t.Harness.Packed_trace.pkt_flags t'.Harness.Packed_trace.pkt_flags);
      (* a loaded trace replays identically to the in-memory one *)
      let run trace =
        Harness.Replay.run ~make_switch:(make_switch ()) ~trace ~controls:[] ()
      in
      check Alcotest.string "replay identical" (telemetry_json (run t)) (telemetry_json (run t')))

let codec_rejects_garbage () =
  let path = Filename.temp_file "silkroad-trace" ".srp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      check Alcotest.bool "load fails" true
        (match Harness.Packed_trace.load path with
         | (_ : Harness.Packed_trace.t) -> false
         | exception Failure _ -> true))

let compile_matches_driver_schedule () =
  let s = scripted_scenario () in
  let t = Harness.Packed_trace.compile ~horizon:s.Experiments.Common.horizon s.Experiments.Common.flows in
  let d = driver_of_scenario { s with Experiments.Common.updates = [] } in
  check Alcotest.int "packet-for-packet with the driver" d.Harness.Driver.packets
    (Harness.Packed_trace.n_packets t);
  (* times must be sorted (ties kept in emission order by construction) *)
  let sorted = ref true in
  for i = 1 to Harness.Packed_trace.n_packets t - 1 do
    if t.Harness.Packed_trace.times.(i) < t.Harness.Packed_trace.times.(i - 1) then sorted := false
  done;
  check Alcotest.bool "times sorted" true !sorted

let chaos_cases make =
  List.map
    (fun (sc : Chaos.Scenario.t) -> tc sc.Chaos.Scenario.name `Slow (make sc))
    Chaos.Scenario.all

let suites =
  [
    ( "replay.oracle",
      [
        QCheck_alcotest.to_alcotest qcheck_oracle_default;
        QCheck_alcotest.to_alcotest qcheck_oracle_tiny;
        QCheck_alcotest.to_alcotest qcheck_oracle_default_boxed;
        QCheck_alcotest.to_alcotest qcheck_oracle_tiny_boxed;
        QCheck_alcotest.to_alcotest qcheck_oracle_under_update;
        tc "tiny config actually collides" `Quick tiny_config_collides;
      ] );
    ( "replay.layout_equivalence",
      tc "scripted updates" `Quick layout_equiv_scripted
      :: tc "digest collisions" `Quick layout_equiv_tiny_collisions
      :: chaos_cases layout_equiv_chaos );
    ( "replay.driver_equivalence",
      tc "scripted updates" `Quick driver_vs_scalar_scripted :: chaos_cases driver_vs_scalar_chaos
    );
    ( "replay.batch_equivalence",
      tc "scripted updates" `Quick scalar_vs_batch_scripted :: chaos_cases scalar_vs_batch_chaos
    );
    ( "replay.shard_equivalence",
      tc "scripted updates" `Quick sharded_vs_scalar_scripted
      :: tc "parallel = sequential" `Quick parallel_matches_sequential
      :: QCheck_alcotest.to_alcotest qcheck_shard_of_range
      :: chaos_cases sharded_vs_scalar_chaos );
    ( "replay.packed_trace",
      [
        tc "codec round trip" `Quick codec_round_trip;
        tc "rejects garbage" `Quick codec_rejects_garbage;
        tc "compile matches driver schedule" `Quick compile_matches_driver_schedule;
      ] );
  ]
