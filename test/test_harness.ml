(* Tests for the experiment driver: probe trains, PCC wiring, traffic
   attribution, latency accounting. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let dip i = Netcore.Endpoint.v4 10 0 0 i 20
let vip = Netcore.Endpoint.v4 20 0 0 1 80

let flow ~id ~start ~duration =
  {
    Simnet.Flow.id;
    tuple =
      Netcore.Five_tuple.make
        ~src:(Netcore.Endpoint.v4 1 2 3 4 (1000 + id))
        ~dst:vip ~proto:Netcore.Protocol.Tcp;
    start;
    duration;
    bytes_per_sec = 1000.;
  }

(* a balancer that records every packet it sees *)
let recording_balancer () =
  let log = ref [] in
  let b =
    {
      Lb.Balancer.name = "recorder";
      advance = (fun ~now:_ -> ());
      process =
        (fun ~now pkt ->
          log := (now, pkt.Netcore.Packet.flags) :: !log;
          { Lb.Balancer.dip = Some (dip 1); location = Lb.Balancer.Asic });
      update = (fun ~now:_ ~vip:_ _ -> ());
      connections = (fun () -> 0);
      metrics =
        (let reg = Telemetry.Registry.create () in
         fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  (b, log)

let probe_train_shape () =
  let b, log = recording_balancer () in
  let f = flow ~id:1 ~start:10. ~duration:40. in
  let r = Harness.Driver.run ~balancer:b ~flows:[ f ] ~updates:[] ~horizon:100. () in
  let events = List.rev !log in
  (* first packet is the SYN at flow start *)
  (match events with
   | (t0, flags) :: _ ->
     check (Alcotest.float 1e-9) "syn time" 10. t0;
     check Alcotest.bool "syn" true (Netcore.Tcp_flags.is_connection_start flags)
   | [] -> Alcotest.fail "no packets");
  (* last is the FIN at flow end *)
  (match List.rev events with
   | (t_last, flags) :: _ ->
     check (Alcotest.float 1e-9) "fin time" 50. t_last;
     check Alcotest.bool "fin" true (Netcore.Tcp_flags.is_connection_end flags)
   | [] -> assert false);
  (* early probes inside the learning window *)
  check Alcotest.bool "early probe at +250us" true
    (List.exists (fun (t, _) -> abs_float (t -. 10.00025) < 1e-9) events);
  (* steady probes every 15 s: 25 and 40 *)
  check Alcotest.bool "steady probes" true
    (List.exists (fun (t, _) -> abs_float (t -. 25.) < 1e-9) events
     && List.exists (fun (t, _) -> abs_float (t -. 40.) < 1e-9) events);
  check Alcotest.int "one connection" 1 r.Harness.Driver.connections;
  check Alcotest.int "no violations" 0 r.Harness.Driver.broken_connections

let horizon_truncates () =
  let b, log = recording_balancer () in
  let f = flow ~id:1 ~start:10. ~duration:1000. in
  ignore (Harness.Driver.run ~balancer:b ~flows:[ f ] ~updates:[] ~horizon:30. ());
  List.iter (fun (t, _) -> check Alcotest.bool "within horizon" true (t < 30.)) !log;
  (* flows starting after the horizon produce nothing *)
  let b2, log2 = recording_balancer () in
  ignore
    (Harness.Driver.run ~balancer:b2 ~flows:[ flow ~id:2 ~start:50. ~duration:10. ]
       ~updates:[] ~horizon:30. ());
  check Alcotest.int "late flow skipped" 0 (List.length !log2)

let unstable_balancer_counted () =
  (* a balancer that flips DIP on every packet: every flow breaks *)
  let toggle = ref true in
  let b =
    {
      Lb.Balancer.name = "flipper";
      advance = (fun ~now:_ -> ());
      process =
        (fun ~now:_ _ ->
          toggle := not !toggle;
          { Lb.Balancer.dip = Some (dip (if !toggle then 1 else 2)); location = Lb.Balancer.Asic });
      update = (fun ~now:_ ~vip:_ _ -> ());
      connections = (fun () -> 0);
      metrics =
        (let reg = Telemetry.Registry.create () in
         fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let flows = List.init 5 (fun i -> flow ~id:i ~start:1. ~duration:20.) in
  let r = Harness.Driver.run ~balancer:b ~flows ~updates:[] ~horizon:50. () in
  check Alcotest.int "all broken" 5 r.Harness.Driver.broken_connections;
  check (Alcotest.float 1e-9) "fraction" 1. r.Harness.Driver.broken_fraction

let traffic_attribution () =
  (* all packets at the SLB: slb fraction is 1 and latency is SLB-like *)
  let b =
    {
      Lb.Balancer.name = "slbish";
      advance = (fun ~now:_ -> ());
      process =
        (fun ~now:_ _ -> { Lb.Balancer.dip = Some (dip 1); location = Lb.Balancer.Slb });
      update = (fun ~now:_ ~vip:_ _ -> ());
      connections = (fun () -> 0);
      metrics =
        (let reg = Telemetry.Registry.create () in
         fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let flows = List.init 20 (fun i -> flow ~id:i ~start:1. ~duration:60.) in
  let r = Harness.Driver.run ~balancer:b ~flows ~updates:[] ~horizon:120. () in
  check (Alcotest.float 1e-9) "all slb" 1. r.Harness.Driver.slb_traffic_fraction;
  check Alcotest.bool "slb-like latency" true
    (r.Harness.Driver.latency_median > 20e-6 && r.Harness.Driver.latency_median < 1e-3);
  check Alcotest.bool "p99 >= median" true
    (r.Harness.Driver.latency_p99 >= r.Harness.Driver.latency_median)

let update_delivery_order () =
  let seen = ref [] in
  let b =
    {
      Lb.Balancer.name = "u";
      advance = (fun ~now:_ -> ());
      process = (fun ~now:_ _ -> { Lb.Balancer.dip = Some (dip 1); location = Lb.Balancer.Asic });
      update = (fun ~now ~vip:_ _ -> seen := now :: !seen);
      connections = (fun () -> 0);
      metrics =
        (let reg = Telemetry.Registry.create () in
         fun () -> reg);
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let updates =
    [ (5., vip, Lb.Balancer.Dip_add (dip 5)); (1., vip, Lb.Balancer.Dip_remove (dip 1));
      (3., vip, Lb.Balancer.Dip_add (dip 3)) ]
  in
  ignore (Harness.Driver.run ~balancer:b ~flows:[] ~updates ~horizon:10. ());
  check (Alcotest.list (Alcotest.float 1e-9)) "time order" [ 1.; 3.; 5. ] (List.rev !seen)

let suites =
  [
    ( "harness.driver",
      [
        tc "probe train" `Quick probe_train_shape;
        tc "horizon truncation" `Quick horizon_truncates;
        tc "violations counted" `Quick unstable_balancer_counted;
        tc "traffic & latency attribution" `Quick traffic_attribution;
        tc "update ordering" `Quick update_delivery_order;
      ] );
  ]
