(* Tests for silkroad-lint: the stage allocator's budget enforcement
   (one over-budget fixture per resource class), the config-level
   feasibility checks Switch.create consults, the determinism source
   lint (seeded fixtures + the shipped tree), and the network-wide
   assignment checks. *)

let check = Alcotest.check
let tc = Alcotest.test_case

module P = Asic.Pipeline
module R = Asic.Resources

(* a 2-stage chip small enough to overflow one class at a time *)
let tiny ?(n_stages = 2) ?(phv = 64) ?(baseline = R.make ()) () =
  { P.chip_name = "tiny"; n_stages;
    stage_budget =
      R.make ~match_crossbar_bits:64 ~sram_bits:1024 ~tcam_bits:64 ~vliw_actions:2 ~hash_bits:16
        ~stateful_alus:1 ();
    chip_phv_bits = phv; baseline }

let rule_of report =
  match report.P.failure with
  | None -> "feasible"
  | Some f -> Analysis.Feasibility.rule_of_failure f

let expect_rule name items rule =
  let r, ds = Analysis.Feasibility.check_items (tiny ()) items in
  check Alcotest.string (name ^ " rule") rule (rule_of r);
  check Alcotest.int (name ^ " is an error") 1 (Analysis.Diag.errors ds)

let overbudget_per_class () =
  expect_rule "crossbar" [ P.item ~name:"wide-key" (R.make ~match_crossbar_bits:65 ()) ]
    "pipe.crossbar";
  expect_rule "sram" [ P.item ~name:"big-table" (R.make ~sram_bits:2048 ()) ] "pipe.sram";
  expect_rule "tcam" [ P.item ~name:"acl" (R.make ~tcam_bits:65 ()) ] "pipe.tcam";
  expect_rule "vliw" [ P.item ~name:"many-actions" (R.make ~vliw_actions:3 ()) ] "pipe.vliw";
  expect_rule "hash" [ P.item ~name:"hasher" (R.make ~hash_bits:17 ()) ] "pipe.hash";
  expect_rule "salu" [ P.item ~name:"registers" (R.make ~stateful_alus:2 ()) ] "pipe.salu";
  expect_rule "phv" [ P.item ~name:"metadata" (R.make ~phv_bits:65 ()) ] "pipe.phv";
  (* dependency chain deeper than the 2-stage chip *)
  expect_rule "stages"
    [ P.item ~name:"a" (R.make ~sram_bits:1 ());
      P.item ~after:[ "a" ] ~name:"b" (R.make ~sram_bits:1 ());
      P.item ~after:[ "b" ] ~name:"c" (R.make ~sram_bits:1 ()) ]
    "pipe.stages"

let divisible_spreads_and_exhausts () =
  (* 1.5 stages worth of SRAM spreads fine when divisible... *)
  let spread = [ P.item ~divisible:true ~name:"cuckoo" (R.make ~sram_bits:1536 ()) ] in
  let r, _ = Analysis.Feasibility.check_items (tiny ()) spread in
  check Alcotest.bool "1.5-stage table placed" true (P.is_feasible r);
  (match r.P.placements with
   | [ p ] ->
     check Alcotest.int "starts at stage 0" 0 p.P.first_stage;
     check Alcotest.int "ends at stage 1" 1 p.P.last_stage
   | _ -> Alcotest.fail "expected one placement");
  (* ...but the whole chip's SRAM is still a ceiling *)
  let too_big = [ P.item ~divisible:true ~name:"cuckoo" (R.make ~sram_bits:4096 ()) ] in
  let r, ds = Analysis.Feasibility.check_items (tiny ()) too_big in
  check Alcotest.string "whole-chip sram rule" "pipe.sram" (rule_of r);
  (match r.P.failure with
   | Some f ->
     check Alcotest.bool "reported as a cross-stage total" true f.P.spread;
     check Alcotest.int "free = 2 stages" 2048 f.P.available
   | None -> Alcotest.fail "expected failure");
  check Alcotest.int "one error" 1 (Analysis.Diag.errors ds)

let dependencies_order_stages () =
  let items =
    [ P.item ~name:"first" (R.make ~sram_bits:1 ());
      P.item ~after:[ "first" ] ~name:"second" (R.make ~sram_bits:1 ()) ]
  in
  let r, _ = Analysis.Feasibility.check_items (tiny ()) items in
  match r.P.placements with
  | [ a; b ] ->
    check Alcotest.bool "strictly later stage" true (b.P.first_stage > a.P.last_stage)
  | _ -> Alcotest.fail "expected two placements"

(* ---------- the SilkRoad program on the §6 chip ---------- *)

let items_sum_to_table2 () =
  let connections = 1_000_000 and vips = 1024 in
  let items = Silkroad.Program.pipeline_items ~connections ~vips in
  let sum = R.sum (List.map (fun (i : P.item) -> i.P.needs) items) in
  let old = Silkroad.Program.additional_resources ~connections ~vips in
  check Alcotest.bool "item sum = additional_resources" true (sum = old);
  (* and the allocator reports exactly that total, so Table 2 numbers
     are untouched by staging *)
  let r = P.allocate (Silkroad.Program.chip ()) items in
  check Alcotest.bool "allocator total unchanged" true (r.P.total_additional = old);
  check Alcotest.bool "1M connections feasible" true (P.is_feasible r)

let default_and_10m_feasible () =
  let r = Silkroad.Program.feasibility Silkroad.Config.default in
  check Alcotest.bool "default feasible" true (P.is_feasible r);
  let r10 =
    Silkroad.Program.feasibility (Silkroad.Config.sized_for ~connections:10_000_000)
  in
  (* §5.2: "up to 10M connections can fit in the on-chip SRAM" *)
  check Alcotest.bool "10M feasible" true (P.is_feasible r10);
  (* the big table really is spread across stages *)
  match
    List.find_opt
      (fun p -> p.P.placed.P.item_name = "ConnTable")
      r10.P.placements
  with
  | Some p -> check Alcotest.bool "ConnTable spans stages" true (p.P.last_stage > p.P.first_stage)
  | None -> Alcotest.fail "ConnTable not placed"

let oversized_config_rejected () =
  let cfg = Silkroad.Config.sized_for ~connections:40_000_000 in
  let r, ds = Analysis.Feasibility.check_config cfg in
  check Alcotest.string "40M fails on SRAM" "pipe.sram" (rule_of r);
  check Alcotest.int "one error" 1 (Analysis.Diag.errors ds);
  let d = List.hd ds in
  (match d.Analysis.Diag.hint with
   | Some h ->
     check Alcotest.bool "hint prices the digest knob" true
       (let re = Str.regexp_string "digest width" in
        try ignore (Str.search_forward re h 0); true with Not_found -> false)
   | None -> Alcotest.fail "expected a fix hint")

let salu_config_rejected () =
  let cfg = { Silkroad.Config.default with Silkroad.Config.transit_hashes = 8 } in
  let r, _ = Analysis.Feasibility.check_config cfg in
  check Alcotest.string "8 Bloom banks fail on stateful ALUs" "pipe.salu" (rule_of r)

let switch_create_check () =
  let bad = { Silkroad.Config.default with Silkroad.Config.transit_hashes = 8 } in
  (match Silkroad.Switch.create ~check:`Fail bad with
   | exception Invalid_argument msg ->
     check Alcotest.bool "names the pipeline" true
       (let re = Str.regexp_string "infeasible pipeline" in
        try ignore (Str.search_forward re msg 0); true with Not_found -> false)
   | _ -> Alcotest.fail "`Fail must raise on an infeasible configuration");
  (* `Warn (default) and `Off still build the software model *)
  ignore (Silkroad.Switch.create bad);
  ignore (Silkroad.Switch.create ~check:`Off bad);
  ignore (Silkroad.Switch.create ~check:`Fail Silkroad.Config.default)

(* ---------- determinism source lint ---------- *)

let rules_of src =
  List.map (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.rule) (Analysis.Source_lint.lint_string src)

let source_fixtures_caught () =
  check Alcotest.(list string) "wall clock" [ "det.wall-clock" ]
    (rules_of "let t = Sys.time ()");
  check Alcotest.(list string) "self init" [ "det.self-init" ]
    (rules_of "let () = Random.self_init ()");
  check Alcotest.(list string) "poly hash" [ "det.poly-hash" ]
    (rules_of "let h y = Hashtbl.hash y");
  check Alcotest.(list string) "poly compare as value" [ "det.poly-compare" ]
    (rules_of "let xs ys = List.sort compare ys");
  check Alcotest.(list string) "(=) as value" [ "det.poly-compare" ]
    (rules_of "let mem x xs = List.exists (( = ) x) xs");
  check Alcotest.(list string) "hashtbl order" [ "det.hashtbl-order" ]
    (rules_of "let dump h = Hashtbl.iter (fun k v -> Format.printf \"%s %d\" k v) h");
  check Alcotest.(list string) "parse error" [ "src.parse" ] (rules_of "let let = in")

let source_fixture_locations () =
  match Analysis.Source_lint.lint_string ~file:"x.ml" "let a = 1\nlet t = Sys.time ()" with
  | [ d ] -> (
    match d.Analysis.Diag.loc with
    | Some l ->
      check Alcotest.string "file" "x.ml" l.Analysis.Diag.file;
      check Alcotest.int "line" 2 l.Analysis.Diag.line
    | None -> Alcotest.fail "expected a location")
  | ds -> Alcotest.fail (Printf.sprintf "expected one finding, got %d" (List.length ds))

let source_negatives_clean () =
  (* applied compare is deterministic in-run: not flagged *)
  check Alcotest.(list string) "applied compare" [] (rules_of "let f a b = compare a b = 0");
  (* explicit comparators are fine *)
  check Alcotest.(list string) "String.compare" []
    (rules_of "let xs ys = List.sort String.compare ys");
  (* collect-sort-render is the blessed Hashtbl pattern *)
  check Alcotest.(list string) "sorted fold" []
    (rules_of
       "let dump h = List.iter print_endline (List.sort String.compare (Hashtbl.fold (fun k _ \
        acc -> k :: acc) h []))");
  (* the allowlist attribute suppresses file-wide *)
  check Alcotest.(list string) "allow attribute" []
    (rules_of "[@@@silkroad.allow \"det.wall-clock\"]\nlet t = Sys.time ()")

(* The old toplevel-mutable [det.domain-unsafe] rule moved to
   Analysis.Domain_safety (inter-procedural, over typed trees);
   its fixtures live in Test_verify now. *)

(* Walk up from cwd to the repository root (dune-project); the test
   binary runs in _build/default/test. *)
let repo_root () =
  let rec up d n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat d "dune-project") && Sys.file_exists (Filename.concat d "lib") then Some d
    else up (Filename.dirname d) (n - 1)
  in
  up (Sys.getcwd ()) 6

let shipped_tree_clean () =
  match repo_root () with
  | None -> () (* sandboxed run without the source tree: nothing to lint *)
  | Some root ->
    let ds = Analysis.Source_lint.lint_dirs (Analysis.Source_lint.default_dirs ~root) in
    let errs = List.filter (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.severity = Analysis.Diag.Error) ds in
    List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) errs;
    check Alcotest.int "no determinism errors in lib/, bin/, test/, bench/" 0 (List.length errs)

(* ---------- network-wide mode ---------- *)

let network_default_places_all () =
  let _, ds =
    Analysis.Feasibility.check_network ~layers:Analysis.Feasibility.default_layers
      ~vips:(Analysis.Feasibility.default_demands ~vips:256 ())
      ()
  in
  check Alcotest.int "no errors" 0 (Analysis.Diag.errors ds);
  check Alcotest.int "no warnings" 0 (Analysis.Diag.warnings ds)

let mb_bits m = int_of_float (m *. 8. *. 1024. *. 1024.)

let network_overflow_reported () =
  let layers =
    [ { Silkroad.Assignment.layer_name = "ToR"; switches = 1; sram_budget_bits = mb_bits 1.;
        capacity_gbps = 100. } ]
  in
  let vip i = Netcore.Endpoint.v4 20 0 0 (i + 1) 80 in
  let huge =
    { Silkroad.Assignment.vip = vip 0; conn_bits = mb_bits 10.; traffic_gbps = 1. }
  in
  let _, ds = Analysis.Feasibility.check_network ~layers ~vips:[ huge ] () in
  check Alcotest.int "unplaced VIP is an error" 1 (Analysis.Diag.errors ds);
  check Alcotest.string "rule" "net.unplaced" (List.hd ds).Analysis.Diag.rule;
  (* a VIP that fits but leaves <10% headroom draws the warning *)
  let tight =
    { Silkroad.Assignment.vip = vip 1; conn_bits = mb_bits 0.95; traffic_gbps = 1. }
  in
  let _, ds = Analysis.Feasibility.check_network ~layers ~vips:[ tight ] () in
  check Alcotest.int "no errors" 0 (Analysis.Diag.errors ds);
  check Alcotest.string "headroom warning" "net.sram-headroom" (List.hd ds).Analysis.Diag.rule

(* ---------- diagnostics plumbing ---------- *)

let diag_render_and_json () =
  let d =
    Analysis.Diag.v
      ~loc:{ Analysis.Diag.file = "a.ml"; line = 3; col = 4 }
      ~hint:"do the other thing" ~rule:"det.wall-clock" ~severity:Analysis.Diag.Error "bad"
  in
  let text = Format.asprintf "@[<v>%a@]" Analysis.Diag.pp d in
  check Alcotest.bool "text form" true
    (let re = Str.regexp_string "a.ml:3:4: error[det.wall-clock]: bad" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false);
  let j = Analysis.Diag.list_to_json [ d ] in
  check Alcotest.int "json errors field" 1
    (match Telemetry.Json.member "errors" j with Some (Telemetry.Json.Int n) -> n | _ -> -1);
  (* deterministic order: by location, then rule *)
  let d2 =
    Analysis.Diag.v
      ~loc:{ Analysis.Diag.file = "a.ml"; line = 1; col = 0 }
      ~rule:"z" ~severity:Analysis.Diag.Warning "later line sorts last"
  in
  check Alcotest.bool "sorted by position" true (Analysis.Diag.compare d2 d < 0)

let suites =
  [
    ( "analysis.pipeline",
      [
        tc "over budget per class" `Quick overbudget_per_class;
        tc "divisible spread + exhaustion" `Quick divisible_spreads_and_exhausts;
        tc "dependencies order stages" `Quick dependencies_order_stages;
        tc "items sum to Table 2" `Quick items_sum_to_table2;
        tc "default and 10M feasible" `Quick default_and_10m_feasible;
        tc "40M rejected with hint" `Quick oversized_config_rejected;
        tc "8 Bloom banks rejected" `Quick salu_config_rejected;
        tc "Switch.create ?check" `Quick switch_create_check;
      ] );
    ( "analysis.source",
      [
        tc "seeded fixtures caught" `Quick source_fixtures_caught;
        tc "locations" `Quick source_fixture_locations;
        tc "negatives stay clean" `Quick source_negatives_clean;
        tc "shipped tree lints clean" `Quick shipped_tree_clean;
      ] );
    ( "analysis.network",
      [
        tc "defaults place all" `Quick network_default_places_all;
        tc "overflow + headroom" `Quick network_overflow_reported;
      ] );
    ( "analysis.diag", [ tc "render + json + order" `Quick diag_render_and_json ] );
  ]
