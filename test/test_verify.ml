(* silkroad-verify: the Domain-safety race analysis and the bounded PCC
   model checker (ISSUE 8). *)

open Analysis
module Mc = Modelcheck

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---------- races: seeded fixtures ---------- *)

let rules r = List.map (fun (d : Diag.t) -> d.Diag.rule) r.Domain_safety.diags
let fixture_roots = [ "Fix.Stepper" ]
let analyze_fix src = Domain_safety.analyze_impls ~roots:fixture_roots [ ("Fix", src) ]

let races_positive_fixtures () =
  (* direct: a toplevel Hashtbl the step function reads *)
  let r =
    analyze_fix
      {|
module Stepper = struct
  let cache : (int, int) Hashtbl.t = Hashtbl.create 16
  let step x = Hashtbl.replace cache x x; Hashtbl.length cache
end
|}
  in
  check Alcotest.int "toplevel Hashtbl flagged" 1 r.Domain_safety.shared_mutable;
  check Alcotest.(list string) "rule" [ "domain.shared-mutable" ] (rules r);
  (* a ref *)
  let r =
    analyze_fix {|
module Stepper = struct
  let hits = ref 0
  let step () = incr hits; !hits
end
|}
  in
  check Alcotest.int "toplevel ref flagged" 1 r.Domain_safety.shared_mutable;
  (* a mutable record literal *)
  let r =
    analyze_fix
      {|
module Stepper = struct
  type acc = { mutable n : int }
  let totals = { n = 0 }
  let step () = totals.n <- totals.n + 1; totals.n
end
|}
  in
  check Alcotest.int "mutable record literal flagged" 1 r.Domain_safety.shared_mutable;
  (* an array literal *)
  let r =
    analyze_fix
      {|
module Stepper = struct
  let slots = [| 0; 0; 0 |]
  let step i = slots.(i) <- slots.(i) + 1; slots.(i)
end
|}
  in
  check Alcotest.int "array literal flagged" 1 r.Domain_safety.shared_mutable

let races_interprocedural () =
  (* the maker hides behind two calls and another module: only an
     inter-procedural analysis finds it *)
  let r =
    Domain_safety.analyze_impls ~roots:[ "Fix.Stepper.step" ]
      [
        ( "Fix",
          {|
module Registry = struct
  let make () = ref []
  let global = make ()
  let push x = global := x :: !global
end
module Helper = struct
  let record x = Registry.push x
end
module Stepper = struct
  let step x = Helper.record x
end
|}
        );
      ]
  in
  check Alcotest.int "indirect maker flagged" 1 r.Domain_safety.shared_mutable;
  let d =
    List.find (fun (d : Diag.t) -> d.Diag.rule = "domain.shared-mutable") r.Domain_safety.diags
  in
  (* the witness chain names every hop from the root to the state *)
  let has needle =
    let re = Str.regexp_string needle in
    try
      ignore (Str.search_forward re d.Diag.message 0);
      true
    with Not_found -> false
  in
  check Alcotest.bool "chain from root" true (has "Fix.Stepper.step");
  check Alcotest.bool "chain through helper" true (has "record");
  check Alcotest.bool "names the global" true (has "Fix.Registry.global");
  (* an identical program whose step never calls the helper is clean:
     reachability, not definition, is what is judged *)
  let r =
    Domain_safety.analyze_impls ~roots:[ "Fix.Stepper.step" ]
      [
        ( "Fix",
          {|
module Registry = struct
  let make () = ref []
  let global = make ()
  let push x = global := x :: !global
end
module Stepper = struct
  let step x = x + 1
end
|}
        );
      ]
  in
  check Alcotest.int "unreachable mutable not flagged" 0 r.Domain_safety.shared_mutable

let races_negative_fixtures () =
  (* shard-local allocation inside the entry point is the blessed
     pattern *)
  let r =
    analyze_fix
      {|
module Stepper = struct
  let make_table () = Hashtbl.create 16
  let step x =
    let local = make_table () in
    Hashtbl.replace local x x;
    Hashtbl.length local
end
|}
  in
  check Alcotest.int "local alloc clean" 0 r.Domain_safety.shared_mutable;
  (* immutable toplevel values are fine *)
  let r =
    analyze_fix
      {|
module Stepper = struct
  let weights = [ 1; 2; 3 ]
  let step x = List.nth weights (x mod 3)
end
|}
  in
  check Alcotest.int "immutable clean" 0 r.Domain_safety.shared_mutable;
  (* the allow attribute opts the file out *)
  let r =
    analyze_fix
      {|
[@@@silkroad.allow "domain.shared-mutable"]
module Stepper = struct
  let cache = Hashtbl.create 16
  let step x = Hashtbl.replace cache x x
end
|}
  in
  check Alcotest.int "allow attribute honoured" 0 r.Domain_safety.shared_mutable;
  check Alcotest.bool "no error diags" true
    (List.for_all (fun (d : Diag.t) -> d.Diag.severity <> Diag.Error) r.Domain_safety.diags)

let races_synchronized () =
  let r =
    analyze_fix
      {|
module Stepper = struct
  let hits = Atomic.make 0
  let step () = Atomic.fetch_and_add hits 1
end
|}
  in
  check Alcotest.int "Atomic is not an error" 0 r.Domain_safety.shared_mutable;
  check Alcotest.int "but is surfaced as info" 1 r.Domain_safety.synchronized;
  check Alcotest.(list string) "rule" [ "domain.synchronized" ] (rules r)

let races_no_root_warning () =
  let r =
    Domain_safety.analyze_impls ~roots:[ "Fix.Stepper"; "Gone.Entry_point" ]
      [ ("Fix", "module Stepper = struct let step x = x end") ]
  in
  check Alcotest.bool "missing root warned" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.rule = "domain.no-root" && d.Diag.severity = Diag.Warning)
       r.Domain_safety.diags);
  check Alcotest.int "present root not warned" 1
    (List.length
       (List.filter (fun (d : Diag.t) -> d.Diag.rule = "domain.no-root") r.Domain_safety.diags))

(* Walk up from cwd (the test binary runs in _build/default/test) to a
   tree that has both dune-project and lib/ — inside the sandbox that is
   _build/default itself, whose lib/ carries the .cmt typed trees. *)
let repo_root () =
  let rec up d n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat d "dune-project")
      && Sys.file_exists (Filename.concat d "lib")
    then Some d
    else up (Filename.dirname d) (n - 1)
  in
  up (Sys.getcwd ()) 6

let races_shipped_tree_clean () =
  match repo_root () with
  | None -> ()
  | Some root -> (
    let r = Domain_safety.analyze_root ~root () in
    match r.Domain_safety.units with
    | 0 -> () (* no typed trees in this sandbox: nothing to analyze *)
    | _ ->
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity = Diag.Error then Format.eprintf "%a@." Diag.pp d)
        r.Domain_safety.diags;
      check Alcotest.int "no shared-mutable errors in the shipped tree" 0
        r.Domain_safety.shared_mutable;
      (* the analysis actually saw the Domain entry points and walked a
         real call graph — a silently-empty run must not pass the gate *)
      check Alcotest.bool "all roots matched" true
        (not
           (List.exists (fun (d : Diag.t) -> d.Diag.rule = "domain.no-root") r.Domain_safety.diags));
      check Alcotest.bool "roots found" true (r.Domain_safety.roots_matched > 0);
      check Alcotest.bool "graph walked" true (r.Domain_safety.reachable > 50))

(* ---------- model: shipped semantics exhaust clean ---------- *)

let multinomial xs =
  let fact n = Array.fold_left ( * ) 1 (Array.init n (fun i -> i + 1)) in
  let total = List.fold_left ( + ) 0 xs in
  List.fold_left (fun acc k -> acc / fact k) (fact total) xs

let model_shipped_exhaust () =
  List.iter
    (fun sc ->
      let oc = Mc.check_scope sc in
      let expected_orders =
        multinomial (sc.Mc.sc_updates :: sc.Mc.sc_flow_packets)
      in
      let expected_runs =
        expected_orders * List.length sc.Mc.sc_regimes * List.length sc.Mc.sc_patterns
      in
      check Alcotest.int (sc.Mc.sc_name ^ " exhausts all interleavings") expected_runs
        oc.Mc.oc_runs;
      check Alcotest.int (sc.Mc.sc_name ^ " zero PCC violations") 0 oc.Mc.oc_violating;
      check Alcotest.int (sc.Mc.sc_name ^ " zero premature recycles") 0 oc.Mc.oc_recycled;
      (* the scope's regimes must stay under the barrier deadline, or
         "zero violations" would be tested under forced transitions *)
      check Alcotest.int (sc.Mc.sc_name ^ " no forced barrier releases") 0 oc.Mc.oc_forced)
    Mc.default_scopes

let model_scope_is_big_enough () =
  (* the acceptance floor: >= 3 updates x 4 packets with forced digest
     collisions, all four collision/alias patterns, several regimes *)
  let sc = List.hd Mc.default_scopes in
  check Alcotest.bool "3 updates" true (sc.Mc.sc_updates >= 3);
  check Alcotest.bool "4 packets" true (List.fold_left ( + ) 0 sc.Mc.sc_flow_packets >= 4);
  check Alcotest.bool "collision pattern present" true
    (List.exists (fun p -> p.Mc.collide) sc.Mc.sc_patterns);
  check Alcotest.bool "alias pattern present" true
    (List.exists (fun p -> p.Mc.alias) sc.Mc.sc_patterns);
  check Alcotest.bool "several regimes" true (List.length sc.Mc.sc_regimes >= 3)

let model_forced_collisions_real () =
  (* the "collide"/"alias" patterns are checked against the real
     ConnTable probes and the real Bloom filter, not assumed *)
  let rg = List.hd (List.hd Mc.default_scopes).Mc.sc_regimes in
  let cfg = Mc.verify_config ~cpu_rate:rg.Mc.cpu_rate ~learn_timeout:rg.Mc.learn_timeout () in
  let flows = Mc.conformance_flows ~cfg ~n:3 in
  check Alcotest.int "conformance flows found" 3 (Array.length flows);
  let ct = Silkroad.Conn_table.create cfg in
  let shares a b =
    let pa = Silkroad.Conn_table.probe_positions ct a in
    List.exists (fun p -> List.mem p (Silkroad.Conn_table.probe_positions ct b)) pa
  in
  Array.iteri
    (fun i a ->
      Array.iteri (fun j b -> if i < j then check Alcotest.bool "collision-free" false (shares a b)) flows)
    flows

let model_determinism () =
  let sc = List.nth Mc.default_scopes 1 in
  let a = Mc.check_scope sc and b = Mc.check_scope sc in
  check Alcotest.bool "same outcome on re-run" true
    (a.Mc.oc_runs = b.Mc.oc_runs && a.Mc.oc_events = b.Mc.oc_events
    && a.Mc.oc_violating = b.Mc.oc_violating
    && a.Mc.oc_recycled = b.Mc.oc_recycled
    && List.length a.Mc.oc_counterexamples = List.length b.Mc.oc_counterexamples)

(* ---------- model: seeded mutations must be killed ---------- *)

let mutant_outcome mu =
  List.map (fun sc -> Mc.check_scope ~mutation:mu sc) (Mc.mutation_scopes mu)

let model_mutant_transit_killed () =
  let ocs = mutant_outcome Mc.Transit_insert_disabled in
  let ces = List.concat_map (fun oc -> oc.Mc.oc_counterexamples) ocs in
  check Alcotest.bool "model finds counterexamples" true (ces <> []);
  (* the counterexample is not an artifact of the abstraction: replayed
     through Harness.Replay on a real Switch it breaks PCC *)
  let ce = List.find (fun ce -> ce.Mc.ce_kind = `Pcc) ces in
  let r = Mc.replay_on_switch ce in
  check Alcotest.bool "breaks PCC on the real switch" true (r.Harness.Replay.violations > 0);
  check Alcotest.bool "a connection is broken" true (r.Harness.Replay.broken > 0)

let model_mutant_barrier_killed () =
  let ocs = mutant_outcome Mc.Barrier_force_release in
  let ces = List.concat_map (fun oc -> oc.Mc.oc_counterexamples) ocs in
  let ce = List.find (fun ce -> ce.Mc.ce_kind = `Pcc) ces in
  let r = Mc.replay_on_switch ce in
  check Alcotest.bool "stuck-CPU forced release breaks PCC" true
    (r.Harness.Replay.violations > 0);
  (* and the real switch really did fire its liveness valve *)
  check Alcotest.bool "barrier deadline fired in the model" true
    (List.exists (fun oc -> oc.Mc.oc_forced > 0) ocs)

let model_mutant_eager_gc_killed () =
  let ocs = mutant_outcome Mc.Eager_version_gc in
  check Alcotest.bool "recycle property trips" true
    (List.exists (fun oc -> oc.Mc.oc_recycled > 0) ocs);
  check Alcotest.bool "a recycle counterexample is produced" true
    (List.exists
       (fun oc -> List.exists (fun ce -> ce.Mc.ce_kind = `Recycle) oc.Mc.oc_counterexamples)
       ocs);
  check Alcotest.bool "model-only" true (Mc.mutation_model_only Mc.Eager_version_gc)

let model_run_verify_kills_all () =
  let report = Mc.run_verify () in
  check Alcotest.int "no error diags" 0 (Diag.errors report.Mc.rp_diags);
  List.iter
    (fun (mu, _, killed) ->
      check Alcotest.bool (Mc.mutation_name mu ^ " killed") true (killed <> None);
      match killed with
      | Some (_, Some replay) ->
        check Alcotest.bool
          (Mc.mutation_name mu ^ " replay breaks PCC")
          true
          (replay.Harness.Replay.violations > 0)
      | Some (ce, None) ->
        check Alcotest.bool
          (Mc.mutation_name mu ^ " model-only kill")
          true
          (Mc.mutation_model_only mu && ce.Mc.ce_kind = `Recycle)
      | None -> ())
    report.Mc.rp_mutants;
  check Alcotest.int "every mutation hunted" (List.length Mc.mutations)
    (List.length report.Mc.rp_mutants)

(* ---------- model: counterexamples as serve-mode scripts ---------- *)

let model_ce_script_replays () =
  let ocs = mutant_outcome Mc.Transit_insert_disabled in
  let ce =
    List.find
      (fun ce -> ce.Mc.ce_kind = `Pcc)
      (List.concat_map (fun oc -> oc.Mc.oc_counterexamples) ocs)
  in
  let script = Mc.ce_script ce in
  (* every line is a protocol line or a comment *)
  String.split_on_char '\n' script
  |> List.iter (fun line ->
         match Control.Protocol.parse line with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "script line %S: %s" line e);
  (* driving a serve-mode session with the script as the control half
     and the counterexample trace as the data half reproduces the PCC
     break end to end *)
  let session =
    Control.Session.create ~cfg:ce.Mc.ce_cfg ~shards:1 ~trace:(Mc.ce_trace ce) ()
  in
  String.split_on_char '\n' script
  |> List.iter (fun line ->
         match Control.Session.exec_line session line with
         | None | Some { Control.Protocol.body = Ok _; _ } -> ()
         | Some { Control.Protocol.body = Error e; _ } ->
           Alcotest.failf "session rejected %S: %s" line e);
  let counts = Control.Session.counts session in
  check Alcotest.bool "all packets judged" true
    (counts.Harness.Replay.c_packets > 0);
  check Alcotest.bool "serve replay shows the violation" true
    (counts.Harness.Replay.c_violations > 0)

let model_ce_trace_and_controls_consistent () =
  let ocs = mutant_outcome Mc.Transit_insert_disabled in
  let ce =
    List.find
      (fun ce -> ce.Mc.ce_kind = `Pcc)
      (List.concat_map (fun oc -> oc.Mc.oc_counterexamples) ocs)
  in
  let trace = Mc.ce_trace ce in
  let pkts =
    List.length
      (List.filter (fun (_, e) -> match e with Mc.Pkt _ -> true | Mc.Upd _ -> false) ce.Mc.ce_events)
  in
  check Alcotest.int "one trace packet per Pkt event" pkts (Array.length trace.Harness.Packed_trace.times);
  check Alcotest.int "one control per Upd event"
    (List.length ce.Mc.ce_events - pkts)
    (List.length (Mc.ce_controls ce));
  check Alcotest.int "model predicted violations" ce.Mc.ce_model_violations
    (Mc.replay_on_switch ce).Harness.Replay.violations

(* ---------- model: conformance with the real switch ---------- *)

let gen_schedule =
  (* 3 flows with 1-3 packets each + 2 updates, shuffled onto a gap grid *)
  QCheck.Gen.(
    let* npkts = flatten_l [ int_range 1 3; int_range 1 3; int_range 1 3 ] in
    let* gap = oneofl [ 0.25; 0.4 ] in
    let streams = Array.of_list (npkts @ [ 2 ]) in
    let total = Array.fold_left ( + ) 0 streams in
    let* picks =
      (* random interleaving: repeatedly draw a stream with remaining events *)
      let rec go streams acc left =
        if left = 0 then return (List.rev acc)
        else
          let* s = int_bound 3 in
          if streams.(s) > 0 then begin
            let streams' = Array.copy streams in
            streams'.(s) <- streams'.(s) - 1;
            go streams' (s :: acc) (left - 1)
          end
          else go streams acc left
      in
      go streams [] total
    in
    return (npkts, gap, picks))

let conformance_events (npkts, gap, picks) =
  let lens = Array.of_list npkts in
  let seen = Array.make 4 0 in
  List.mapi
    (fun i s ->
      let t = float_of_int (i + 1) *. gap in
      if s < 3 then begin
        let j = seen.(s) in
        seen.(s) <- j + 1;
        (t, Mc.Pkt { eflow = s; esyn = j = 0; eends = j = lens.(s) - 1 && lens.(s) > 1 })
      end
      else begin
        let j = seen.(3) in
        seen.(3) <- j + 1;
        (t, Mc.Upd j)
      end)
    picks

let qcheck_model_conforms =
  QCheck.Test.make ~name:"model == switch on sampled interleavings" ~count:60 (QCheck.make gen_schedule)
    (fun ((npkts, gap, picks) as sched) ->
      ignore npkts;
      let rg =
        (* vary the regime with the schedule so both sync and async
           install orders are sampled *)
        if gap > 0.3 then { Mc.rg_name = "slow"; cpu_rate = 2.; learn_timeout = 0.3; gap }
        else { Mc.rg_name = "fast"; cpu_rate = 200.; learn_timeout = 0.01; gap }
      in
      let cfg = Mc.verify_config ~cpu_rate:rg.Mc.cpu_rate ~learn_timeout:rg.Mc.learn_timeout () in
      let flows = Mc.conformance_flows ~cfg ~n:3 in
      let removed = [| (Mc.model_dips ()).(0); (Mc.model_dips ()).(1) |] in
      let events = conformance_events sched in
      let horizon = float_of_int (List.length picks + 4) *. gap +. 1. in
      let m = Mc.model_observe ~cfg ~flows ~removed ~events ~horizon in
      let s = Mc.switch_observe ~cfg ~flows ~removed ~events ~horizon () in
      (* the boxed reference layout must be indistinguishable from the
         flat one under the model's eyes — same DIPs, same update and
         repair counters on every sampled interleaving *)
      let sb = Mc.switch_observe ~conn_layout:`Boxed ~cfg ~flows ~removed ~events ~horizon () in
      if s <> sb then
        QCheck.Test.fail_reportf
          "flat/boxed switch divergence: completed %d/%d failed %d/%d forced %d/%d repairs %d/%d"
          s.Mc.ob_completed sb.Mc.ob_completed s.Mc.ob_failed sb.Mc.ob_failed s.Mc.ob_forced
          sb.Mc.ob_forced s.Mc.ob_repairs sb.Mc.ob_repairs;
      if m <> s then
        QCheck.Test.fail_reportf
          "model/switch divergence: completed %d/%d failed %d/%d forced %d/%d repairs %d/%d \
           dips [%s] vs [%s]"
          m.Mc.ob_completed s.Mc.ob_completed m.Mc.ob_failed s.Mc.ob_failed m.Mc.ob_forced
          s.Mc.ob_forced m.Mc.ob_repairs s.Mc.ob_repairs
          (String.concat ";"
             (Array.to_list
                (Array.map
                   (function Some d -> Netcore.Endpoint.to_string d | None -> "-")
                   m.Mc.ob_dips)))
          (String.concat ";"
             (Array.to_list
                (Array.map
                   (function Some d -> Netcore.Endpoint.to_string d | None -> "-")
                   s.Mc.ob_dips)))
      else true)

(* ---------- diag JSON escaping (satellite) ---------- *)

let diag_json_escaping () =
  let nasty =
    "quote \" backslash \\ newline \n tab \t return \r control \x01 done"
  in
  let d =
    Diag.v
      ~loc:{ Diag.file = "dir\\file \"x\".ml"; line = 2; col = 7 }
      ~hint:nasty ~rule:"model.pcc" ~severity:Diag.Error
      ("message with " ^ nasty)
  in
  let j = Diag.list_to_json [ d ] in
  let s = Telemetry.Json.to_string j in
  (* the rendered JSON must parse back to the same tree... *)
  (match Telemetry.Json.parse s with
   | Error e -> Alcotest.failf "diag JSON does not re-parse: %s" e
   | Ok j' -> check Alcotest.bool "escaping round-trips" true (Telemetry.Json.equal j j'));
  (* ...and the nasty strings must come back byte-identical *)
  (match Telemetry.Json.parse s with
   | Ok j' -> (
     match Telemetry.Json.member "diagnostics" j' with
     | Some (Telemetry.Json.List [ dj ]) ->
       let str k =
         match Telemetry.Json.member k dj with
         | Some (Telemetry.Json.String s) -> s
         | _ -> Alcotest.failf "missing %s" k
       in
       check Alcotest.string "hint survives" nasty (str "hint");
       check Alcotest.string "message survives" ("message with " ^ nasty) (str "message");
       check Alcotest.string "file survives" "dir\\file \"x\".ml" (str "file")
     | _ -> Alcotest.fail "diagnostics list missing")
   | Error _ -> ());
  (* pretty rendering escapes identically *)
  match Telemetry.Json.parse (Telemetry.Json.to_string_pretty j) with
  | Ok j' -> check Alcotest.bool "pretty round-trips" true (Telemetry.Json.equal j j')
  | Error e -> Alcotest.failf "pretty diag JSON does not re-parse: %s" e

let suites =
  [
    ( "verify.races",
      [
        tc "seeded positives flagged" `Quick races_positive_fixtures;
        tc "inter-procedural chain" `Quick races_interprocedural;
        tc "negatives stay clean" `Quick races_negative_fixtures;
        tc "synchronized state is info" `Quick races_synchronized;
        tc "missing root warns" `Quick races_no_root_warning;
        tc "shipped tree clean" `Quick races_shipped_tree_clean;
      ] );
    ( "verify.model",
      [
        tc "shipped semantics exhaust clean" `Quick model_shipped_exhaust;
        tc "scope meets the acceptance floor" `Quick model_scope_is_big_enough;
        tc "forced collisions are real" `Quick model_forced_collisions_real;
        tc "deterministic" `Quick model_determinism;
        tc "mutant: transit insert disabled" `Quick model_mutant_transit_killed;
        tc "mutant: barrier force-release" `Quick model_mutant_barrier_killed;
        tc "mutant: eager version gc" `Quick model_mutant_eager_gc_killed;
        tc "run_verify kills every mutant" `Quick model_run_verify_kills_all;
      ] );
    ( "verify.counterexamples",
      [
        tc "script replays through serve session" `Quick model_ce_script_replays;
        tc "trace/controls consistent with events" `Quick model_ce_trace_and_controls_consistent;
      ] );
    ( "verify.conformance", [ QCheck_alcotest.to_alcotest qcheck_model_conforms ] );
    ( "verify.diag", [ tc "JSON escaping round-trip" `Quick diag_json_escaping ] );
  ]
