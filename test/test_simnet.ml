(* Tests for the simulation substrate: PRNG, distributions, statistics,
   event queue, sim engine, workload generation, update traces,
   cluster populations. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---------- Prng ---------- *)

let prng_deterministic () =
  let a = Simnet.Prng.create ~seed:1 and b = Simnet.Prng.create ~seed:1 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Simnet.Prng.bits30 a) (Simnet.Prng.bits30 b)
  done

let prng_split_independent () =
  let a = Simnet.Prng.create ~seed:1 in
  let child = Simnet.Prng.split a in
  check Alcotest.bool "diverged" true (Simnet.Prng.bits30 a <> Simnet.Prng.bits30 child)

let prng_copy () =
  let a = Simnet.Prng.create ~seed:3 in
  ignore (Simnet.Prng.bits30 a);
  let b = Simnet.Prng.copy a in
  check Alcotest.int "copies agree" (Simnet.Prng.bits30 a) (Simnet.Prng.bits30 b)

let qcheck_prng_int_range =
  QCheck.Test.make ~name:"Prng.int in range" ~count:300
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Simnet.Prng.create ~seed in
      let v = Simnet.Prng.int rng n in
      v >= 0 && v < n)

let prng_uniform_mean () =
  let rng = Simnet.Prng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Simnet.Prng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let prng_exponential_mean () =
  let rng = Simnet.Prng.create ~seed:6 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Simnet.Prng.exponential rng ~mean:4.
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 4" true (abs_float (mean -. 4.) < 0.2)

let prng_choose_weighted () =
  let rng = Simnet.Prng.create ~seed:7 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let v = Simnet.Prng.choose_weighted rng [ ("a", 9.); ("b", 1.) ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  check Alcotest.bool "ratio ~9:1" true (a > 8_700 && a < 9_300)

(* ---------- Dist ---------- *)

let dist_lognormal_quantiles () =
  let d = Simnet.Dist.lognormal_of_quantiles ~median:180. ~p99:6000. in
  let rng = Simnet.Prng.create ~seed:8 in
  let samples = List.init 20_000 (fun _ -> Simnet.Dist.sample d rng) in
  let med = Simnet.Stats.median samples in
  let p99 = Simnet.Stats.p99 samples in
  check Alcotest.bool
    (Printf.sprintf "median %.0f within 10%%" med)
    true
    (abs_float (med -. 180.) /. 180. < 0.1);
  check Alcotest.bool (Printf.sprintf "p99 %.0f within 25%%" p99) true
    (abs_float (p99 -. 6000.) /. 6000. < 0.25)

let dist_exponential_mean () =
  let d = Simnet.Dist.exponential ~mean:10. in
  (match Simnet.Dist.mean d with
   | Some m -> check (Alcotest.float 1e-9) "analytic mean" 10. m
   | None -> Alcotest.fail "no mean");
  let rng = Simnet.Prng.create ~seed:9 in
  let samples = List.init 20_000 (fun _ -> Simnet.Dist.sample d rng) in
  check Alcotest.bool "empirical mean" true (abs_float (Simnet.Stats.mean samples -. 10.) < 0.5)

let dist_constant_truncated () =
  let rng = Simnet.Prng.create ~seed:10 in
  check (Alcotest.float 1e-9) "constant" 5. (Simnet.Dist.sample (Simnet.Dist.constant 5.) rng);
  let d = Simnet.Dist.truncated (Simnet.Dist.constant 100.) ~lo:0. ~hi:10. in
  check (Alcotest.float 1e-9) "truncated" 10. (Simnet.Dist.sample d rng)

let dist_mixture_mean () =
  let d = Simnet.Dist.mixture [ (Simnet.Dist.constant 0., 1.); (Simnet.Dist.constant 10., 1.) ] in
  match Simnet.Dist.mean d with
  | Some m -> check (Alcotest.float 1e-9) "mixture mean" 5. m
  | None -> Alcotest.fail "no mean"

let dist_pareto () =
  let d = Simnet.Dist.pareto ~shape:2. ~scale:1. in
  (match Simnet.Dist.mean d with
   | Some m -> check (Alcotest.float 1e-9) "pareto mean" 2. m
   | None -> Alcotest.fail "no mean");
  let rng = Simnet.Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    check Alcotest.bool "above scale" true (Simnet.Dist.sample d rng >= 1.)
  done

(* ---------- Stats ---------- *)

let stats_percentiles () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check (Alcotest.float 1e-9) "median" 3. (Simnet.Stats.median xs);
  check (Alcotest.float 1e-9) "p0" 1. (Simnet.Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "p100" 5. (Simnet.Stats.percentile xs 100.);
  check (Alcotest.float 1e-9) "p25" 2. (Simnet.Stats.percentile xs 25.);
  check (Alcotest.float 1e-9) "single" 7. (Simnet.Stats.percentile [ 7. ] 50.)

let stats_cdf () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  let c = Simnet.Stats.cdf xs ~points:[ 0.; 2.; 4. ] in
  check (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9))) "points"
    [ (0., 0.); (2., 0.5); (4., 1.) ] c;
  check (Alcotest.float 1e-9) "ccdf" 0.5 (Simnet.Stats.ccdf_at xs 2.)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let v = Simnet.Stats.percentile xs p in
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

(* ---------- Event_queue / Sim ---------- *)

let queue_ordering () =
  let q = Simnet.Event_queue.create () in
  Simnet.Event_queue.add q ~time:3. "c";
  Simnet.Event_queue.add q ~time:1. "a";
  Simnet.Event_queue.add q ~time:2. "b";
  Simnet.Event_queue.add q ~time:1. "a2";
  let order = ref [] in
  let rec drain () =
    match Simnet.Event_queue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "time then fifo order" [ "a"; "a2"; "b"; "c" ]
    (List.rev !order)

let qcheck_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:100
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Simnet.Event_queue.create () in
      List.iter (fun t -> Simnet.Event_queue.add q ~time:t ()) times;
      let rec drain last =
        match Simnet.Event_queue.pop q with
        | Some (t, ()) -> t >= last && drain t
        | None -> true
      in
      drain neg_infinity)

let sim_run_until () =
  let sim = Simnet.Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Simnet.Sim.schedule sim ~at:t (fun _ -> fired := t :: !fired))
    [ 1.; 2.; 3.; 4. ];
  Simnet.Sim.run sim ~until:2.5;
  check Alcotest.int "two fired" 2 (List.length !fired);
  check (Alcotest.float 1e-9) "clock at horizon" 2.5 (Simnet.Sim.now sim);
  Simnet.Sim.run sim;
  check Alcotest.int "all fired" 4 (List.length !fired)

let sim_nested_schedule () =
  let sim = Simnet.Sim.create () in
  let log = ref [] in
  Simnet.Sim.schedule sim ~at:1. (fun sim ->
      log := "outer" :: !log;
      Simnet.Sim.schedule_in sim ~delay:0.5 (fun _ -> log := "inner" :: !log));
  Simnet.Sim.run sim;
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "final clock" 1.5 (Simnet.Sim.now sim)

(* ---------- Workload ---------- *)

let workload_rate () =
  let rng = Simnet.Prng.create ~seed:12 in
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let p = Simnet.Workload.profile ~vip ~new_conns_per_sec:100. () in
  let flows = Simnet.Workload.take_until ~horizon:100. (Simnet.Workload.arrivals ~rng ~id_base:0 p) in
  let n = List.length flows in
  check Alcotest.bool (Printf.sprintf "%d flows ~ 10000" n) true (n > 9_000 && n < 11_000);
  (* starts are increasing and flows target the VIP *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a.Simnet.Flow.start <= b.Simnet.Flow.start && increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "sorted" true (increasing flows);
  List.iter
    (fun f -> check Alcotest.bool "vip dst" true (Netcore.Endpoint.equal (Simnet.Flow.vip f) vip))
    flows

let workload_duration_median () =
  let rng = Simnet.Prng.create ~seed:13 in
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let p = Simnet.Workload.profile ~duration:Simnet.Workload.hadoop_durations ~vip ~new_conns_per_sec:50. () in
  let flows = Simnet.Workload.take_until ~horizon:200. (Simnet.Workload.arrivals ~rng ~id_base:0 p) in
  let durations = List.map (fun f -> f.Simnet.Flow.duration) flows in
  let med = Simnet.Stats.median durations in
  check Alcotest.bool (Printf.sprintf "hadoop median %.1f ~ 10s" med) true (med > 8. && med < 12.)

let workload_merge () =
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let mk seed = Simnet.Workload.arrivals ~rng:(Simnet.Prng.create ~seed) ~id_base:(seed * 100000)
      (Simnet.Workload.profile ~vip ~new_conns_per_sec:10. ())
  in
  let merged = Simnet.Workload.merge [ mk 1; mk 2; mk 3 ] in
  let flows = Simnet.Workload.take_until ~horizon:20. merged in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a.Simnet.Flow.start <= b.Simnet.Flow.start && increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "merged sorted" true (increasing flows);
  check Alcotest.bool "roughly 3x rate" true
    (let n = List.length flows in
     n > 400 && n < 800)

let flow_accessors () =
  let tuple =
    Netcore.Five_tuple.make ~src:(Netcore.Endpoint.v4 1 2 3 4 1000)
      ~dst:(Netcore.Endpoint.v4 20 0 0 1 80) ~proto:Netcore.Protocol.Tcp
  in
  let f = { Simnet.Flow.id = 1; tuple; start = 10.; duration = 5.; bytes_per_sec = 100. } in
  check (Alcotest.float 1e-9) "finish" 15. (Simnet.Flow.finish f);
  check Alcotest.bool "active" true (Simnet.Flow.active_at f 12.);
  check Alcotest.bool "not yet" false (Simnet.Flow.active_at f 9.);
  check Alcotest.bool "done" false (Simnet.Flow.active_at f 15.);
  check (Alcotest.float 1e-9) "bytes" 500. (Simnet.Flow.bytes f)

(* ---------- Update_trace ---------- *)

let trace_rate_and_balance () =
  let rng = Simnet.Prng.create ~seed:14 in
  let events =
    Simnet.Update_trace.generate ~rng ~updates_per_min:30. ~horizon:600. ~pool_size:16
  in
  let n = List.length events in
  (* 30/min for 10 min = ~300 *)
  check Alcotest.bool (Printf.sprintf "%d events ~300" n) true (n > 220 && n < 380);
  (* times sorted, dips in range *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Simnet.Update_trace.time <= b.Simnet.Update_trace.time && sorted rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "sorted" true (sorted events);
  List.iter
    (fun e ->
      check Alcotest.bool "dip in range" true
        (e.Simnet.Update_trace.dip >= 0 && e.Simnet.Update_trace.dip < 16))
    events

let trace_remove_add_consistency () =
  (* every Add re-adds a previously removed DIP; a DIP is never removed
     twice without an Add in between *)
  let rng = Simnet.Prng.create ~seed:15 in
  let events =
    Simnet.Update_trace.generate ~rng ~updates_per_min:20. ~horizon:1200. ~pool_size:8
  in
  let up = Array.make 8 true in
  List.iter
    (fun e ->
      match e.Simnet.Update_trace.kind with
      | Simnet.Update_trace.Remove ->
        check Alcotest.bool "removing a live dip" true up.(e.Simnet.Update_trace.dip);
        up.(e.Simnet.Update_trace.dip) <- false
      | Simnet.Update_trace.Add ->
        check Alcotest.bool "adding a downed dip" true (not up.(e.Simnet.Update_trace.dip));
        up.(e.Simnet.Update_trace.dip) <- true)
    events

let trace_pool_never_below_half () =
  let rng = Simnet.Prng.create ~seed:16 in
  let events =
    Simnet.Update_trace.generate ~rng ~updates_per_min:60. ~horizon:1200. ~pool_size:8
  in
  let up = ref 8 in
  List.iter
    (fun e ->
      (match e.Simnet.Update_trace.kind with
       | Simnet.Update_trace.Remove -> decr up
       | Simnet.Update_trace.Add -> incr up);
      check Alcotest.bool "at least 3 alive" true (!up >= 3))
    events

(* The documented invariant, under adversarial seeds and rates: the live
   pool never drops below half its size (rounded down), whatever update
   storm the generator is asked for. *)
let qcheck_trace_pool_floor =
  QCheck.Test.make ~name:"Update_trace.generate never drains pool below half" ~count:150
    QCheck.(
      triple (int_range 0 1_000_000) (int_range 2 32) (float_range 1. 600.))
    (fun (seed, pool_size, updates_per_min) ->
      let rng = Simnet.Prng.create ~seed in
      let events =
        Simnet.Update_trace.generate ~rng ~updates_per_min ~horizon:900. ~pool_size
      in
      let floor_size = pool_size / 2 in
      let up = ref pool_size in
      List.for_all
        (fun (e : Simnet.Update_trace.event) ->
          (match e.Simnet.Update_trace.kind with
           | Simnet.Update_trace.Remove -> decr up
           | Simnet.Update_trace.Add -> incr up);
          !up >= floor_size && !up <= pool_size)
        events)

let trace_cause_mix () =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. Simnet.Update_trace.cause_mix in
  check (Alcotest.float 0.5) "weights sum to 100" 100. total;
  let upgrade_w = List.assoc Simnet.Update_trace.Upgrade Simnet.Update_trace.cause_mix in
  check (Alcotest.float 1e-9) "82.7% upgrades" 82.7 upgrade_w

let trace_rolling_reboot () =
  let rng = Simnet.Prng.create ~seed:17 in
  let events = Simnet.Update_trace.rolling_reboot ~batch:2 ~period:300. ~rng ~start:0. ~pool_size:6 () in
  (* 6 dips = 6 removes + 6 adds *)
  check Alcotest.int "12 events" 12 (List.length events);
  let removes =
    List.filter (fun e -> e.Simnet.Update_trace.kind = Simnet.Update_trace.Remove) events
  in
  (* batches at t=0, 300, 600 *)
  let times = List.sort_uniq Float.compare (List.map (fun e -> e.Simnet.Update_trace.time) removes) in
  check (Alcotest.list (Alcotest.float 1e-9)) "batch times" [ 0.; 300.; 600. ] times

let trace_count_per_minute () =
  let events =
    [ { Simnet.Update_trace.time = 10.; dip = 0; kind = Simnet.Update_trace.Remove;
        cause = Simnet.Update_trace.Upgrade };
      { Simnet.Update_trace.time = 70.; dip = 0; kind = Simnet.Update_trace.Add;
        cause = Simnet.Update_trace.Upgrade } ]
  in
  let counts = Simnet.Update_trace.count_per_minute events ~horizon:120. in
  check Alcotest.int "minute 0" 1 counts.(0);
  check Alcotest.int "minute 1" 1 counts.(1)

(* ---------- Cluster ---------- *)

let cluster_population () =
  let rng = Simnet.Prng.create ~seed:18 in
  let pop = Simnet.Cluster.population ~n:96 ~rng () in
  check Alcotest.int "96 clusters" 96 (List.length pop);
  let backends = List.filter (fun c -> c.Simnet.Cluster.cls = Simnet.Cluster.Backend) pop in
  check Alcotest.int "a third are backends" 32 (List.length backends);
  List.iter
    (fun c ->
      check Alcotest.bool "positive tors" true (c.Simnet.Cluster.n_tors > 0);
      check Alcotest.bool "median <= p99" true
        (c.Simnet.Cluster.conns_per_tor_median <= c.Simnet.Cluster.conns_per_tor_p99);
      check Alcotest.bool "backend=ipv6" true
        (c.Simnet.Cluster.ipv6 = (c.Simnet.Cluster.cls = Simnet.Cluster.Backend)))
    pop

let cluster_scale_anchor () =
  (* the busiest clusters should be around 10M connections per ToR *)
  let rng = Simnet.Prng.create ~seed:19 in
  let pop = Simnet.Cluster.population ~n:96 ~rng () in
  let max_conns =
    List.fold_left (fun acc c -> Float.max acc c.Simnet.Cluster.conns_per_tor_p99) 0. pop
  in
  check Alcotest.bool
    (Printf.sprintf "max %.1fM in [5M, 60M]" (max_conns /. 1e6))
    true
    (max_conns > 5e6 && max_conns < 6e7)

(* ---------- Trace_io ---------- *)

let trace_flow_roundtrip () =
  let rng = Simnet.Prng.create ~seed:21 in
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let p = Simnet.Workload.profile ~vip ~new_conns_per_sec:50. () in
  let flows = Simnet.Workload.take_until ~horizon:10. (Simnet.Workload.arrivals ~rng ~id_base:0 p) in
  let path = Filename.temp_file "silkroad" ".flows" in
  Simnet.Trace_io.save_flows path flows;
  (match Simnet.Trace_io.load_flows path with
   | Ok loaded ->
     check Alcotest.int "count" (List.length flows) (List.length loaded);
     List.iter2
       (fun a b ->
         check Alcotest.int "id" a.Simnet.Flow.id b.Simnet.Flow.id;
         check Alcotest.bool "tuple" true
           (Netcore.Five_tuple.equal a.Simnet.Flow.tuple b.Simnet.Flow.tuple);
         check (Alcotest.float 1e-5) "start" a.Simnet.Flow.start b.Simnet.Flow.start)
       flows loaded
   | Error e -> Alcotest.fail e);
  Sys.remove path

let trace_update_roundtrip () =
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let dip6 = Netcore.Endpoint.make (Netcore.Ip.v6 0xfd00L 7L) 8443 in
  let updates =
    [ (1.5, vip, `Remove, Netcore.Endpoint.v4 10 0 0 1 20); (2.25, vip, `Add, dip6) ]
  in
  let path = Filename.temp_file "silkroad" ".updates" in
  Simnet.Trace_io.save_updates path updates;
  (match Simnet.Trace_io.load_updates path with
   | Ok loaded ->
     check Alcotest.int "count" 2 (List.length loaded);
     List.iter2
       (fun (t, v, k, d) (t', v', k', d') ->
         check (Alcotest.float 1e-6) "time" t t';
         check Alcotest.bool "vip" true (Netcore.Endpoint.equal v v');
         check Alcotest.bool "kind" true (k = k');
         check Alcotest.bool "dip" true (Netcore.Endpoint.equal d d'))
       updates loaded
   | Error e -> Alcotest.fail e);
  Sys.remove path

let trace_rejects_garbage () =
  let path = Filename.temp_file "silkroad" ".bad" in
  let oc = open_out path in
  output_string oc "# comment\nflow 1 1.2.3.4:5 20.0.0.1:80 0.0 1.0 10.0\nflow oops\n";
  close_out oc;
  (match Simnet.Trace_io.load_flows path with
   | Error msg -> check Alcotest.bool "names the line" true (String.length msg > 0)
   | Ok _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

let trace_line_errors () =
  check Alcotest.bool "not a flow" true (Result.is_error (Simnet.Trace_io.flow_of_line "update 1"));
  check Alcotest.bool "bad endpoint" true
    (Result.is_error (Simnet.Trace_io.flow_of_line "flow 1 nonsense 20.0.0.1:80 0 1 1"));
  check Alcotest.bool "bad kind" true
    (Result.is_error (Simnet.Trace_io.update_of_line "update 1 20.0.0.1:80 frobnicate 10.0.0.1:20"))

let qcheck_trace_line_roundtrip =
  QCheck.Test.make ~name:"trace line print/parse roundtrip" ~count:200
    QCheck.(quad small_int (pair (int_bound 255) (int_range 1 65535))
              (pair (float_bound_inclusive 1000.) (float_bound_inclusive 500.))
              (float_bound_inclusive 1e6))
    (fun (id, (oct, port), (start, duration), rate) ->
      let f =
        {
          Simnet.Flow.id;
          tuple =
            Netcore.Five_tuple.make
              ~src:(Netcore.Endpoint.v4 1 2 oct 4 port)
              ~dst:(Netcore.Endpoint.v4 20 0 0 1 80)
              ~proto:Netcore.Protocol.Tcp;
          start;
          duration;
          bytes_per_sec = rate;
        }
      in
      match Simnet.Trace_io.flow_of_line (Simnet.Trace_io.flow_to_line f) with
      | Ok f' ->
        f'.Simnet.Flow.id = f.Simnet.Flow.id
        && Netcore.Five_tuple.equal f'.Simnet.Flow.tuple f.Simnet.Flow.tuple
        && abs_float (f'.Simnet.Flow.start -. f.Simnet.Flow.start) < 1e-5
      | Error _ -> false)

let suites =
  [
    ( "simnet.prng",
      [
        tc "deterministic" `Quick prng_deterministic;
        tc "split" `Quick prng_split_independent;
        tc "copy" `Quick prng_copy;
        tc "uniform mean" `Quick prng_uniform_mean;
        tc "exponential mean" `Quick prng_exponential_mean;
        tc "weighted choice" `Quick prng_choose_weighted;
        QCheck_alcotest.to_alcotest qcheck_prng_int_range;
      ] );
    ( "simnet.dist",
      [
        tc "lognormal quantiles" `Quick dist_lognormal_quantiles;
        tc "exponential mean" `Quick dist_exponential_mean;
        tc "constant/truncated" `Quick dist_constant_truncated;
        tc "mixture mean" `Quick dist_mixture_mean;
        tc "pareto" `Quick dist_pareto;
      ] );
    ( "simnet.stats",
      [
        tc "percentiles" `Quick stats_percentiles;
        tc "cdf" `Quick stats_cdf;
        QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
      ] );
    ( "simnet.sim",
      [
        tc "queue ordering" `Quick queue_ordering;
        tc "run until" `Quick sim_run_until;
        tc "nested schedule" `Quick sim_nested_schedule;
        QCheck_alcotest.to_alcotest qcheck_queue_sorted;
      ] );
    ( "simnet.workload",
      [
        tc "arrival rate" `Quick workload_rate;
        tc "hadoop median" `Quick workload_duration_median;
        tc "merge" `Quick workload_merge;
        tc "flow accessors" `Quick flow_accessors;
      ] );
    ( "simnet.update_trace",
      [
        tc "rate & ranges" `Quick trace_rate_and_balance;
        tc "remove/add consistency" `Quick trace_remove_add_consistency;
        tc "pool floor" `Quick trace_pool_never_below_half;
        QCheck_alcotest.to_alcotest qcheck_trace_pool_floor;
        tc "cause mix" `Quick trace_cause_mix;
        tc "rolling reboot" `Quick trace_rolling_reboot;
        tc "count per minute" `Quick trace_count_per_minute;
      ] );
    ( "simnet.trace_io",
      [
        tc "flow roundtrip" `Quick trace_flow_roundtrip;
        tc "update roundtrip" `Quick trace_update_roundtrip;
        tc "rejects garbage" `Quick trace_rejects_garbage;
        tc "line errors" `Quick trace_line_errors;
        QCheck_alcotest.to_alcotest qcheck_trace_line_roundtrip;
      ] );
    ( "simnet.cluster",
      [
        tc "population" `Quick cluster_population;
        tc "scale anchors" `Quick cluster_scale_anchor;
      ] );
  ]
