(* Aggregates every library's suites into one alcotest run. *)
let () =
  Alcotest.run "silkroad"
    (Test_netcore.suites @ Test_asic.suites @ Test_simnet.suites @ Test_telemetry.suites
     @ Test_lb.suites @ Test_baselines.suites @ Test_silkroad.suites @ Test_harness.suites
     @ Test_experiments.suites @ Test_chaos.suites @ Test_analysis.suites @ Test_coverage.suites
     @ Test_integration.suites @ Test_replay.suites @ Test_netwide.suites
     @ Test_control.suites @ Test_verify.suites)
