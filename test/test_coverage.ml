(* Small-surface coverage: printers, validators and accessors that the
   larger suites exercise only incidentally. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let config_validation () =
  let bad field =
    match Silkroad.Config.validate field with
    | Error _ -> true
    | Ok () -> false
  in
  check Alcotest.bool "default ok" true (Silkroad.Config.validate Silkroad.Config.default = Ok ());
  check Alcotest.bool "digest too wide" true
    (bad { Silkroad.Config.default with Silkroad.Config.digest_bits = 40 });
  check Alcotest.bool "one stage" true
    (bad { Silkroad.Config.default with Silkroad.Config.conn_table_stages = 1 });
  check Alcotest.bool "zero transit" true
    (bad { Silkroad.Config.default with Silkroad.Config.transit_bytes = 0 });
  check Alcotest.bool "negative timeout" true
    (bad { Silkroad.Config.default with Silkroad.Config.learning_timeout = -1. });
  check Alcotest.bool "create rejects bad config" true
    (try
       ignore (Silkroad.Switch.create { Silkroad.Config.default with Silkroad.Config.version_bits = 0 });
       false
     with Invalid_argument _ -> true)

let config_sizing () =
  let cfg = Silkroad.Config.sized_for ~connections:1_000_000 in
  let cap = Silkroad.Config.conn_capacity cfg in
  check Alcotest.bool "capacity covers target at 85%" true
    (float_of_int cap *. 0.85 >= 999_999.);
  check Alcotest.int "max versions" 64 (Silkroad.Config.max_versions Silkroad.Config.default)

let printers_do_not_raise () =
  let vip = Netcore.Endpoint.v4 20 0 0 1 80 in
  let flow =
    Netcore.Five_tuple.make ~src:(Netcore.Endpoint.v4 1 2 3 4 9) ~dst:vip
      ~proto:Netcore.Protocol.Udp
  in
  let strings =
    [ Format.asprintf "%a" Lb.Balancer.pp_location Lb.Balancer.Asic;
      Format.asprintf "%a" Lb.Balancer.pp_location Lb.Balancer.Slb;
      Format.asprintf "%a" Lb.Balancer.pp_update (Lb.Balancer.Dip_add vip);
      Format.asprintf "%a" Lb.Balancer.pp_update
        (Lb.Balancer.Dip_replace { old_dip = vip; new_dip = Netcore.Endpoint.v4 1 1 1 1 1 });
      Format.asprintf "%a" Netcore.Packet.pp (Netcore.Packet.syn flow);
      Format.asprintf "%a" Simnet.Flow.pp
        { Simnet.Flow.id = 1; tuple = flow; start = 0.; duration = 1.; bytes_per_sec = 1. };
      Format.asprintf "%a" Lb.Dip_pool.pp (Lb.Dip_pool.of_list [ vip ]);
      Format.asprintf "%a" Asic.Meter.pp_color Asic.Meter.Yellow;
      Format.asprintf "%a" Simnet.Update_trace.pp_cause Simnet.Update_trace.Testing;
      Format.asprintf "%a" Simnet.Cluster.pp
        (Simnet.Cluster.sample ~rng:(Simnet.Prng.create ~seed:1) Simnet.Cluster.Pop 0);
      Format.asprintf "%a" Asic.Resources.pp (Asic.Resources.make ~sram_bits:8 ());
      Format.asprintf "%a" Asic.Resources.pp_percentages
        (Asic.Resources.relative_to
           ~base:(Asic.Resources.make ~sram_bits:16 ())
           (Asic.Resources.make ~sram_bits:8 ())) ]
  in
  List.iter (fun s -> check Alcotest.bool "non-empty" true (String.length s > 0)) strings

let stats_histogram () =
  let h = Simnet.Stats.histogram [ 1.; 2.; 3.; 10. ] ~bins:[ (0., 5.); (5., 20.) ] in
  check
    (Alcotest.list (Alcotest.triple (Alcotest.float 1e-9) (Alcotest.float 1e-9) Alcotest.int))
    "bins" [ (0., 5., 3); (5., 20., 1) ] h

let dist_scaled () =
  let rng = Simnet.Prng.create ~seed:1 in
  let d = Simnet.Dist.scaled (Simnet.Dist.constant 3.) 2. in
  check (Alcotest.float 1e-9) "sample" 6. (Simnet.Dist.sample d rng);
  check (Alcotest.option (Alcotest.float 1e-9)) "mean" (Some 6.) (Simnet.Dist.mean d)

let prng_shuffle_permutes () =
  let rng = Simnet.Prng.create ~seed:2 in
  let arr = Array.init 50 (fun i -> i) in
  Simnet.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check Alcotest.bool "same elements" true (sorted = Array.init 50 (fun i -> i));
  check Alcotest.bool "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

let sim_step_pending () =
  let sim = Simnet.Sim.create () in
  Simnet.Sim.schedule sim ~at:1. (fun _ -> ());
  Simnet.Sim.schedule sim ~at:2. (fun _ -> ());
  check Alcotest.int "pending" 2 (Simnet.Sim.pending sim);
  check Alcotest.bool "step" true (Simnet.Sim.step sim);
  check Alcotest.int "processed" 1 (Simnet.Sim.events_processed sim);
  check Alcotest.bool "step2" true (Simnet.Sim.step sim);
  check Alcotest.bool "empty" false (Simnet.Sim.step sim)

let endpoint_hash_fold_differs () =
  let a = Netcore.Endpoint.v4 1 2 3 4 80 and b = Netcore.Endpoint.v4 1 2 3 4 81 in
  check Alcotest.bool "different ports differ" true
    (Netcore.Endpoint.hash_fold 0L a <> Netcore.Endpoint.hash_fold 0L b)

let balancer_interface_complete () =
  (* the record exposes everything the harness needs for any impl *)
  let b = Baselines.Ecmp_lb.create ~seed:1 () in
  check Alcotest.string "name" "ecmp" b.Lb.Balancer.name;
  b.Lb.Balancer.advance ~now:0.;
  check Alcotest.int "connections" 0 (b.Lb.Balancer.connections ())

let memory_model_units () =
  check (Alcotest.float 1e-9) "1 MiB" 1.0 (Silkroad.Memory_model.mb (8 * 1024 * 1024));
  (* the paper's footnote-1 arithmetic: a v6 entry is 37B key + 18B action *)
  let bits =
    Silkroad.Memory_model.conn_entry_bits ~layout:Silkroad.Memory_model.Naive ~ipv6:true
      ~digest_bits:16 ~version_bits:6
  in
  check Alcotest.bool "~55 bytes + overhead" true (bits >= 55 * 8)

let suites =
  [
    ( "coverage",
      [
        tc "config validation" `Quick config_validation;
        tc "config sizing" `Quick config_sizing;
        tc "printers" `Quick printers_do_not_raise;
        tc "histogram" `Quick stats_histogram;
        tc "scaled dist" `Quick dist_scaled;
        tc "shuffle" `Quick prng_shuffle_permutes;
        tc "sim step/pending" `Quick sim_step_pending;
        tc "endpoint hash fold" `Quick endpoint_hash_fold_differs;
        tc "balancer record" `Quick balancer_interface_complete;
        tc "memory units" `Quick memory_model_units;
      ] );
  ]
