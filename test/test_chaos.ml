(* Tests of the chaos engine: deterministic compilation, byte-identical
   reports, the scenario matrix (silkroad holds PCC where the baselines
   measurably break), and violation attribution. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let vips () = Experiments.Common.vips_of ~n_vips:2 ~dips_per_vip:8

let scenario_exn name =
  match Chaos.Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "missing built-in scenario %s" name

(* ---------- catalogue ---------- *)

let catalogue_names () =
  List.iter
    (fun name ->
      check Alcotest.bool name true (Option.is_some (Chaos.Scenario.find name)))
    [ "quiet"; "dip-mass-failure"; "dip-flap"; "cpu-stall"; "control-partition"; "syn-flood";
      "update-storm"; "switch-failure"; "vip-migration" ];
  check Alcotest.bool "unknown rejected" true (Option.is_none (Chaos.Scenario.find "nope"));
  (* labels stay stable: reports and dashboards key on them *)
  check Alcotest.string "label" "dip-mass-failure"
    (Chaos.Scenario.fault_label
       (Chaos.Scenario.Dip_mass_failure { at = 0.; fraction = 0.5; downtime = 1. }))

(* ---------- deterministic compilation ---------- *)

let event_key (e : Chaos.Engine.event) =
  let op =
    match e.Chaos.Engine.op with
    | Chaos.Engine.Deliver_update (v, _) -> "deliver:" ^ Netcore.Endpoint.to_string v
    | Chaos.Engine.Update_dropped (v, _) -> "dropped:" ^ Netcore.Endpoint.to_string v
    | Chaos.Engine.Update_suppressed (v, _) -> "suppressed:" ^ Netcore.Endpoint.to_string v
    | Chaos.Engine.Dip_died d -> "died:" ^ Netcore.Endpoint.to_string d
    | Chaos.Engine.Dip_recovered d -> "up:" ^ Netcore.Endpoint.to_string d
    | Chaos.Engine.Cpu_backlog n -> Printf.sprintf "cpu:%d" n
    | Chaos.Engine.Syn_packet f -> "syn:" ^ Netcore.Five_tuple.to_string f
    | Chaos.Engine.Switch_failed r ->
      Printf.sprintf "switch-fail:%x:%f" r.Lb.Balancer.rr_salt r.Lb.Balancer.rr_fraction
    | Chaos.Engine.Switch_recovered r ->
      Printf.sprintf "switch-up:%x:%f" r.Lb.Balancer.rr_salt r.Lb.Balancer.rr_fraction
    | Chaos.Engine.Vip_migrated r ->
      Printf.sprintf "vip-migrate:%s"
        (match r.Lb.Balancer.rr_vip with
         | Some v -> Netcore.Endpoint.to_string v
         | None -> "*")
  in
  Printf.sprintf "%.9f|%s|%s" e.Chaos.Engine.time e.Chaos.Engine.fault op

let compile_deterministic () =
  List.iter
    (fun s ->
      let compile () =
        Chaos.Engine.compile ~scenario:(scenario_exn s) ~seed:42 ~vips:(vips ()) ~horizon:260.
      in
      let a = compile () and b = compile () in
      check Alcotest.(list string) (s ^ " identical timelines")
        (List.map event_key a.Chaos.Engine.events)
        (List.map event_key b.Chaos.Engine.events);
      (* and a different seed actually changes randomized scenarios *)
      if not (String.equal s "quiet") then begin
        let c =
          Chaos.Engine.compile ~scenario:(scenario_exn s) ~seed:43 ~vips:(vips ()) ~horizon:260.
        in
        check Alcotest.bool (s ^ " nonempty") true (a.Chaos.Engine.events <> []);
        ignore c
      end)
    [ "dip-mass-failure"; "control-partition"; "syn-flood"; "update-storm"; "switch-failure";
      "vip-migration" ]

let events_sorted_and_bounded () =
  List.iter
    (fun s ->
      let c =
        Chaos.Engine.compile ~scenario:(scenario_exn s) ~seed:7 ~vips:(vips ()) ~horizon:260.
      in
      let last = ref neg_infinity in
      List.iter
        (fun (e : Chaos.Engine.event) ->
          check Alcotest.bool "sorted" true (e.Chaos.Engine.time >= !last);
          check Alcotest.bool "within horizon" true
            (e.Chaos.Engine.time >= 0. && e.Chaos.Engine.time < 260.);
          last := e.Chaos.Engine.time)
        c.Chaos.Engine.events)
    [ "dip-mass-failure"; "dip-flap"; "cpu-stall"; "control-partition"; "syn-flood";
      "update-storm"; "switch-failure"; "vip-migration" ]

(* Delivered updates must always be applicable: replaying them through
   Lb.Balancer.apply_update must never raise, whatever was dropped or
   delayed by the control-channel fault. *)
let delivered_updates_consistent () =
  List.iter
    (fun seed ->
      let c =
        Chaos.Engine.compile
          ~scenario:(scenario_exn "control-partition")
          ~seed ~vips:(vips ()) ~horizon:500.
      in
      let pools = Hashtbl.create 4 in
      List.iter (fun (v, p) -> Hashtbl.replace pools v p) (vips ());
      List.iter
        (fun (e : Chaos.Engine.event) ->
          match e.Chaos.Engine.op with
          | Chaos.Engine.Deliver_update (v, u) ->
            let pool = Hashtbl.find pools v in
            let pool' = Lb.Balancer.apply_update pool u in
            check Alcotest.bool "pool never emptied" false (Lb.Dip_pool.is_empty pool');
            Hashtbl.replace pools v pool'
          | _ -> ())
        c.Chaos.Engine.events)
    [ 1; 2; 3; 4; 5 ]

let attribution_windows () =
  let c =
    Chaos.Engine.compile ~scenario:(scenario_exn "dip-mass-failure") ~seed:1 ~vips:(vips ())
      ~horizon:260.
  in
  (* inside the failure window: attributed to the fault *)
  check
    Alcotest.(option string)
    "inside" (Some "dip-mass-failure")
    (Chaos.Engine.active_fault c ~now:31.);
  (* before anything happened: no active fault *)
  check Alcotest.(option string) "before" None (Chaos.Engine.active_fault c ~now:1.)

(* ---------- end-to-end determinism: byte-identical reports ---------- *)

let report_bytes_identical () =
  let run () =
    let spec =
      Experiments.Chaos_runner.smoke_spec (scenario_exn "control-partition") ~seed:5
    in
    let _, report = Experiments.Chaos_runner.run spec ~balancer:"duet" in
    Chaos.Report.to_json report
  in
  check Alcotest.string "same seed, same bytes" (run ()) (run ())

(* ---------- the scenario matrix ---------- *)

let pcc_budget = 0.001

let matrix_run scenario_name balancer =
  let spec =
    {
      (Experiments.Chaos_runner.default_spec (scenario_exn scenario_name) ~seed:1) with
      Experiments.Chaos_runner.rate = 50.;
    }
  in
  Experiments.Chaos_runner.run spec ~balancer

let matrix_scenario scenario_name () =
  let _, silkroad = matrix_run scenario_name "silkroad" in
  let _, duet = matrix_run scenario_name "duet" in
  check Alcotest.bool
    (Printf.sprintf "silkroad holds PCC under %s (broken %.6f)" scenario_name
       silkroad.Chaos.Report.broken_fraction)
    true
    (silkroad.Chaos.Report.broken_fraction <= pcc_budget);
  check Alcotest.bool
    (Printf.sprintf "duet measurably breaks under %s (broken %.6f)" scenario_name
       duet.Chaos.Report.broken_fraction)
    true
    (duet.Chaos.Report.broken_fraction > pcc_budget)

let matrix_mass_failure = matrix_scenario "dip-mass-failure"
let matrix_cpu_stall = matrix_scenario "cpu-stall"

(* The re-route scenarios: a switch failure (or VIP migration) wipes the
   per-connection state of the affected flows while a pool update is
   in flight behind a stalled switch CPU. The probe interval is small so
   re-routed connections re-arrive inside the §4.3 pending window —
   silkroad's TransitTable pins them to the old version, while slb
   re-selects against the already-shifted pool and duet remaps them on
   migrate-back. *)
let reroute_run scenario_name balancer =
  let spec =
    {
      (Experiments.Chaos_runner.default_spec (scenario_exn scenario_name) ~seed:1) with
      Experiments.Chaos_runner.rate = 30.;
      probe_interval = 2.5;
    }
  in
  Experiments.Chaos_runner.run spec ~balancer

let matrix_reroute scenario_name () =
  let _, silkroad = reroute_run scenario_name "silkroad" in
  check Alcotest.bool
    (Printf.sprintf "silkroad survives the re-route under %s (broken %.6f)" scenario_name
       silkroad.Chaos.Report.broken_fraction)
    true
    (silkroad.Chaos.Report.broken_fraction <= pcc_budget);
  List.iter
    (fun baseline ->
      let _, report = reroute_run scenario_name baseline in
      check Alcotest.bool
        (Printf.sprintf "%s measurably breaks on re-route under %s (broken %.6f)" baseline
           scenario_name report.Chaos.Report.broken_fraction)
        true
        (report.Chaos.Report.broken_fraction > pcc_budget))
    [ "duet"; "slb" ]

let matrix_switch_failure = matrix_reroute "switch-failure"
let matrix_vip_migration = matrix_reroute "vip-migration"

(* Every violation is attributed: the per-fault chaos.violations labels
   sum to the unlabeled total, which equals the harness's own count. *)
let attribution_complete () =
  let result, report = matrix_run "dip-mass-failure" "duet" in
  let labeled = List.fold_left (fun acc (_, v) -> acc + v) 0 report.Chaos.Report.violations_by_fault in
  check Alcotest.int "labels sum to total" report.Chaos.Report.violation_packets labeled;
  check
    Alcotest.(option int)
    "total in telemetry"
    (Some report.Chaos.Report.violation_packets)
    (Telemetry.Snapshot.counter result.Harness.Driver.telemetry "chaos.violations");
  (* the chaos counters ride in the run's merged snapshot *)
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " present") true
        (Option.is_some (Telemetry.Snapshot.counter result.Harness.Driver.telemetry name)))
    [ "chaos.updates_delivered"; "chaos.dips_failed"; "chaos.dips_recovered" ];
  (* and the bulk of the blame lands on the injected fault *)
  let mass =
    match List.assoc_opt "dip-mass-failure" report.Chaos.Report.violations_by_fault with
    | Some v -> v
    | None -> 0
  in
  check Alcotest.bool "mostly attributed to the fault" true
    (report.Chaos.Report.violation_packets = 0
    || float_of_int mass /. float_of_int report.Chaos.Report.violation_packets > 0.5)

(* silkroad's zero-violation runs still carry the fault accounting *)
let quiet_scenario_clean () =
  let spec = Experiments.Chaos_runner.smoke_spec (scenario_exn "quiet") ~seed:2 in
  let result, report = Experiments.Chaos_runner.run spec ~balancer:"silkroad" in
  check Alcotest.int "no broken connections" 0 report.Chaos.Report.broken_connections;
  check Alcotest.bool "background churn delivered" true
    (match Telemetry.Snapshot.counter result.Harness.Driver.telemetry "chaos.updates_delivered" with
     | Some n -> n > 0
     | None -> false)

(* ---------- report serialization ---------- *)

let report_json_shape () =
  let spec = Experiments.Chaos_runner.smoke_spec (scenario_exn "dip-mass-failure") ~seed:9 in
  let _, report = Experiments.Chaos_runner.run spec ~balancer:"silkroad" in
  let json = Chaos.Report.to_json report in
  match Telemetry.Json.parse json with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok v ->
    let str_field f =
      match Telemetry.Json.member f v with
      | Some (Telemetry.Json.String s) -> s
      | _ -> Alcotest.failf "missing string field %s" f
    in
    check Alcotest.string "scenario" "dip-mass-failure" (str_field "scenario");
    check Alcotest.string "balancer" "silkroad" (str_field "balancer");
    (match Telemetry.Json.member "violations_by_fault" v with
     | Some (Telemetry.Json.Obj _) -> ()
     | _ -> Alcotest.fail "missing violations_by_fault object")

let suites =
  [
    ( "chaos.scenario",
      [
        tc "catalogue" `Quick catalogue_names;
        tc "compile deterministic" `Quick compile_deterministic;
        tc "events sorted+bounded" `Quick events_sorted_and_bounded;
        tc "delivered updates consistent" `Quick delivered_updates_consistent;
        tc "attribution windows" `Quick attribution_windows;
      ] );
    ( "chaos.soak",
      [
        tc "report bytes identical" `Quick report_bytes_identical;
        tc "matrix: dip-mass-failure" `Slow matrix_mass_failure;
        tc "matrix: cpu-stall" `Slow matrix_cpu_stall;
        tc "matrix: switch-failure" `Slow matrix_switch_failure;
        tc "matrix: vip-migration" `Slow matrix_vip_migration;
        tc "attribution complete" `Slow attribution_complete;
        tc "quiet scenario clean" `Quick quiet_scenario_clean;
        tc "report json shape" `Quick report_json_shape;
      ] );
  ]
