(* Tests for the baseline balancers: stateless ECMP, the software LB,
   Maglev hashing, and Duet. *)

let check = Alcotest.check
let tc = Alcotest.test_case

let dip i = Netcore.Endpoint.v4 10 0 0 i 20
let vip = Netcore.Endpoint.v4 20 0 0 1 80
let pool n = Lb.Dip_pool.of_list (List.init n (fun i -> dip (i + 1)))

let flow i =
  Netcore.Five_tuple.make
    ~src:(Netcore.Endpoint.v4 1 2 3 ((i / 60000) + 1) (1 + (i mod 60000)))
    ~dst:vip ~proto:Netcore.Protocol.Tcp

let syn i = Netcore.Packet.syn (flow i)
let data i = Netcore.Packet.data (flow i)
let fin i = Netcore.Packet.fin (flow i)

(* ---------- Ecmp_lb ---------- *)

let ecmp_stateless_consistency () =
  let b = Baselines.Ecmp_lb.create_with ~seed:1 [ (vip, pool 4) ] in
  let o1 = b.Lb.Balancer.process ~now:0. (syn 1) in
  let o2 = b.Lb.Balancer.process ~now:1. (data 1) in
  check Alcotest.bool "stable without updates" true (o1.Lb.Balancer.dip = o2.Lb.Balancer.dip);
  check Alcotest.bool "asic path" true (o1.Lb.Balancer.location = Lb.Balancer.Asic);
  check Alcotest.int "no state" 0 (b.Lb.Balancer.connections ())

let ecmp_breaks_on_update () =
  let b = Baselines.Ecmp_lb.create_with ~seed:1 [ (vip, pool 8) ] in
  let before = List.init 200 (fun i -> (i, (b.Lb.Balancer.process ~now:0. (syn i)).Lb.Balancer.dip)) in
  b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_remove (dip 1));
  let moved =
    List.length
      (List.filter
         (fun (i, d) -> (b.Lb.Balancer.process ~now:2. (data i)).Lb.Balancer.dip <> d)
         before)
  in
  (* mod-8 -> mod-7 rehash moves most flows *)
  check Alcotest.bool (Printf.sprintf "%d moved > 50" moved) true (moved > 50)

let ecmp_unknown_vip_drops () =
  let b = Baselines.Ecmp_lb.create ~seed:1 () in
  let o = b.Lb.Balancer.process ~now:0. (syn 1) in
  check Alcotest.bool "dropped" true (o.Lb.Balancer.dip = None)

(* ---------- Slb ---------- *)

let slb_pcc_across_updates () =
  let b, stats = Baselines.Slb.create ~seed:1 ~vips:[ (vip, pool 8) ] () in
  let assigned = List.init 100 (fun i -> (i, (b.Lb.Balancer.process ~now:0. (syn i)).Lb.Balancer.dip)) in
  b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_remove (dip 1));
  b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_add (dip 9));
  List.iter
    (fun (i, d) ->
      let o = b.Lb.Balancer.process ~now:2. (data i) in
      check Alcotest.bool "pinned" true (o.Lb.Balancer.dip = d))
    assigned;
  check Alcotest.int "conn table" 100 (b.Lb.Balancer.connections ());
  let s = stats () in
  check Alcotest.int "packets counted" 200 s.Baselines.Slb.packets;
  check Alcotest.int "conns created" 100 s.Baselines.Slb.connections_created

let slb_fin_removes () =
  let b, _ = Baselines.Slb.create ~seed:1 ~vips:[ (vip, pool 4) ] () in
  ignore (b.Lb.Balancer.process ~now:0. (syn 1));
  check Alcotest.int "one" 1 (b.Lb.Balancer.connections ());
  ignore (b.Lb.Balancer.process ~now:1. (fin 1));
  check Alcotest.int "zero" 0 (b.Lb.Balancer.connections ())

let slb_new_conns_use_new_pool () =
  let b, _ = Baselines.Slb.create ~seed:1 ~vips:[ (vip, Lb.Dip_pool.of_list [ dip 1 ]) ] () in
  b.Lb.Balancer.update ~now:0. ~vip (Lb.Balancer.Dip_remove (dip 1));
  b.Lb.Balancer.update ~now:0. ~vip (Lb.Balancer.Dip_add (dip 2));
  let o = b.Lb.Balancer.process ~now:1. (syn 1) in
  check Alcotest.bool "new pool" true (o.Lb.Balancer.dip = Some (dip 2))

let slb_capacity_overload () =
  let b, stats = Baselines.Slb.create ~seed:1 ~capacity_pps:100. ~vips:[ (vip, pool 4) ] () in
  (* a burst far beyond 100 pps: most packets are shed *)
  let dropped = ref 0 in
  for i = 0 to 499 do
    if (b.Lb.Balancer.process ~now:0.001 (syn i)).Lb.Balancer.dip = None then incr dropped
  done;
  check Alcotest.bool (Printf.sprintf "%d dropped" !dropped) true (!dropped > 400);
  check Alcotest.bool "counted" true ((stats ()).Baselines.Slb.overload_drops > 400);
  (* after a second of quiet, capacity recovers *)
  let o = b.Lb.Balancer.process ~now:2. (syn 9999) in
  check Alcotest.bool "recovers" true (o.Lb.Balancer.dip <> None)

(* ---------- Maglev ---------- *)

let maglev_balanced () =
  let backends = List.init 8 (fun i -> dip (i + 1)) in
  let t = Baselines.Maglev_hash.create ~table_size:65537 backends in
  List.iter
    (fun b ->
      let share =
        float_of_int (Baselines.Maglev_hash.entries_of t b)
        /. float_of_int (Baselines.Maglev_hash.table_size t)
      in
      check Alcotest.bool
        (Printf.sprintf "share %.4f within 1%% of 1/8" share)
        true
        (abs_float (share -. 0.125) < 0.01 *. 0.125 +. 0.002))
    backends

let maglev_low_disruption () =
  let backends = List.init 8 (fun i -> dip (i + 1)) in
  let t = Baselines.Maglev_hash.create ~table_size:65537 backends in
  let t' = Baselines.Maglev_hash.create ~table_size:65537 (List.tl backends) in
  let d = Baselines.Maglev_hash.disruption t t' in
  (* removing 1 of 8 backends must remap its 1/8 share, and maglev adds
     only a small extra disruption on top *)
  check Alcotest.bool (Printf.sprintf "disruption %.3f < 0.3" d) true (d < 0.3);
  check Alcotest.bool "at least the removed share" true (d >= 0.125 -. 0.01)

let maglev_rejects_bad_args () =
  Alcotest.check_raises "empty" (Invalid_argument "Maglev_hash.create: no backends") (fun () ->
      ignore (Baselines.Maglev_hash.create []));
  Alcotest.check_raises "not prime"
    (Invalid_argument "Maglev_hash.create: table size must be prime") (fun () ->
      ignore (Baselines.Maglev_hash.create ~table_size:100 [ dip 1 ]))

let maglev_lookup_members () =
  let backends = List.init 5 (fun i -> dip (i + 1)) in
  let t = Baselines.Maglev_hash.create ~table_size:4099 backends in
  for i = 0 to 500 do
    let h = Netcore.Hashing.seeded ~seed:7 (Int64.of_int i) in
    let b = Baselines.Maglev_hash.lookup t h in
    check Alcotest.bool "is member" true (List.exists (Netcore.Endpoint.equal b) backends)
  done

(* ---------- Duet ---------- *)

let duet_switch_path_idle () =
  let b, stats = Baselines.Duet.create ~seed:1 ~policy:(Baselines.Duet.Migrate_every 600.) ~vips:[ (vip, pool 4) ] () in
  let o = b.Lb.Balancer.process ~now:0. (syn 1) in
  check Alcotest.bool "asic when idle" true (o.Lb.Balancer.location = Lb.Balancer.Asic);
  let s = stats () in
  check Alcotest.int "switch packet" 1 s.Baselines.Duet.switch_packets

let duet_redirects_on_update () =
  let b, stats = Baselines.Duet.create ~seed:1 ~grace:1. ~policy:(Baselines.Duet.Migrate_every 600.) ~vips:[ (vip, pool 4) ] () in
  b.Lb.Balancer.update ~now:10. ~vip (Lb.Balancer.Dip_add (dip 9));
  let o = b.Lb.Balancer.process ~now:10.1 (syn 1) in
  check Alcotest.bool "slb during update" true (o.Lb.Balancer.location = Lb.Balancer.Slb);
  let s = stats () in
  check Alcotest.int "slb packet" 1 s.Baselines.Duet.slb_packets

let duet_migrates_back () =
  let b, stats = Baselines.Duet.create ~seed:1 ~grace:1. ~policy:(Baselines.Duet.Migrate_every 60.) ~vips:[ (vip, pool 4) ] () in
  b.Lb.Balancer.update ~now:10. ~vip (Lb.Balancer.Dip_add (dip 9));
  b.Lb.Balancer.advance ~now:90.;
  let o = b.Lb.Balancer.process ~now:90. (syn 1) in
  check Alcotest.bool "back at switch" true (o.Lb.Balancer.location = Lb.Balancer.Asic);
  check Alcotest.int "migrated once" 1 (stats ()).Baselines.Duet.migrations;
  (* the new pool is live at the switch *)
  let hits = ref false in
  for i = 0 to 200 do
    if (b.Lb.Balancer.process ~now:91. (syn (100 + i))).Lb.Balancer.dip = Some (dip 9) then
      hits := true
  done;
  check Alcotest.bool "new dip reachable" true !hits

let duet_slb_keeps_pcc_during_redirect () =
  let b, _ = Baselines.Duet.create ~seed:1 ~grace:1. ~policy:(Baselines.Duet.Migrate_every 600.) ~vips:[ (vip, pool 8) ] () in
  (* flows established at the switch *)
  let flows = List.init 50 (fun i -> (i, (b.Lb.Balancer.process ~now:0. (syn i)).Lb.Balancer.dip)) in
  (* they keep a packet flowing during the grace window *)
  b.Lb.Balancer.update ~now:10. ~vip (Lb.Balancer.Dip_remove (dip 8));
  List.iter (fun (i, _) -> ignore (b.Lb.Balancer.process ~now:10.5 (data i))) flows;
  (* after execution, snooped connections stay pinned *)
  List.iter
    (fun (i, d) ->
      let o = b.Lb.Balancer.process ~now:12. (data i) in
      check Alcotest.bool "pinned at slb" true (o.Lb.Balancer.dip = d))
    flows

let duet_pcc_policy_waits () =
  let b, stats = Baselines.Duet.create ~seed:1 ~grace:1. ~policy:Baselines.Duet.Migrate_pcc ~vips:[ (vip, pool 8) ] () in
  (* one long-lived flow pinned to a dip that the update rehashes *)
  let pinned = List.init 30 (fun i -> i) in
  List.iter (fun i -> ignore (b.Lb.Balancer.process ~now:0. (syn i))) pinned;
  b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_remove (dip 8));
  List.iter (fun i -> ignore (b.Lb.Balancer.process ~now:1.5 (data i))) pinned;
  b.Lb.Balancer.advance ~now:100.;
  (* some flows rehash differently under the 7-dip pool: cannot migrate *)
  check Alcotest.int "no migration while old conns live" 0 (stats ()).Baselines.Duet.migrations;
  (* close every connection: now it may migrate *)
  List.iter (fun i -> ignore (b.Lb.Balancer.process ~now:101. (fin i))) pinned;
  b.Lb.Balancer.advance ~now:200.;
  check Alcotest.int "migrated after drain" 1 (stats ()).Baselines.Duet.migrations

let duet_vip_budget () =
  let vip2 = Netcore.Endpoint.v4 20 0 0 2 80 in
  let b, stats =
    Baselines.Duet.create ~seed:1 ~switch_vip_budget:1 ~policy:(Baselines.Duet.Migrate_every 600.)
      ~vips:[ (vip, pool 4); (vip2, pool 4) ] ()
  in
  let o1 = b.Lb.Balancer.process ~now:0. (syn 1) in
  check Alcotest.bool "budgeted vip at switch" true (o1.Lb.Balancer.location = Lb.Balancer.Asic);
  let f2 =
    Netcore.Five_tuple.make ~src:(Netcore.Endpoint.v4 9 9 9 9 99) ~dst:vip2
      ~proto:Netcore.Protocol.Tcp
  in
  let o2 = b.Lb.Balancer.process ~now:0. (Netcore.Packet.syn f2) in
  check Alcotest.bool "overflow vip at slb" true (o2.Lb.Balancer.location = Lb.Balancer.Slb);
  (* updates to the SLB-homed vip apply atomically and keep PCC *)
  let d2 = o2.Lb.Balancer.dip in
  b.Lb.Balancer.update ~now:1. ~vip:vip2 (Lb.Balancer.Dip_add (dip 9));
  b.Lb.Balancer.advance ~now:2.;
  let o2' = b.Lb.Balancer.process ~now:2. (Netcore.Packet.data f2) in
  check Alcotest.bool "pinned across update" true (o2'.Lb.Balancer.dip = d2);
  check Alcotest.int "no migrations for pinned vip" 0 (stats ()).Baselines.Duet.migrations

let suites =
  [
    ( "baselines.ecmp",
      [
        tc "stateless consistency" `Quick ecmp_stateless_consistency;
        tc "breaks on update" `Quick ecmp_breaks_on_update;
        tc "unknown vip drops" `Quick ecmp_unknown_vip_drops;
      ] );
    ( "baselines.slb",
      [
        tc "pcc across updates" `Quick slb_pcc_across_updates;
        tc "fin removes" `Quick slb_fin_removes;
        tc "new conns new pool" `Quick slb_new_conns_use_new_pool;
        tc "capacity overload" `Quick slb_capacity_overload;
      ] );
    ( "baselines.maglev",
      [
        tc "balanced" `Quick maglev_balanced;
        tc "low disruption" `Quick maglev_low_disruption;
        tc "bad args" `Quick maglev_rejects_bad_args;
        tc "lookup members" `Quick maglev_lookup_members;
      ] );
    ( "baselines.duet",
      [
        tc "switch path when idle" `Quick duet_switch_path_idle;
        tc "redirect on update" `Quick duet_redirects_on_update;
        tc "migrate back" `Quick duet_migrates_back;
        tc "pcc during redirect" `Quick duet_slb_keeps_pcc_during_redirect;
        tc "migrate-pcc waits" `Quick duet_pcc_policy_waits;
        tc "ecmp vip budget" `Quick duet_vip_budget;
      ] );
  ]
