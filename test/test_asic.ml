(* Tests for the ASIC substrate: SRAM math, registers, bloom filter,
   cuckoo tables, learning filter, CPU model, meters, ECMP. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---------- Sram ---------- *)

let sram_packing () =
  check Alcotest.int "4x28 in 112" 4 (Asic.Sram.entries_per_word ~entry_bits:28);
  check Alcotest.int "1x112" 1 (Asic.Sram.entries_per_word ~entry_bits:112);
  check Alcotest.int "wide entries use 1" 1 (Asic.Sram.entries_per_word ~entry_bits:200);
  check Alcotest.int "words for 10 entries of 28b" 3
    (Asic.Sram.words_for_entries ~entry_bits:28 ~entries:10);
  check Alcotest.int "zero entries" 0 (Asic.Sram.words_for_entries ~entry_bits:28 ~entries:0);
  check Alcotest.int "wide" 20 (Asic.Sram.words_for_entries ~entry_bits:200 ~entries:10)

let sram_units () =
  check Alcotest.int "bytes" 14 (Asic.Sram.bytes_of_bits 112);
  check (Alcotest.float 1e-9) "mib" 1.0 (Asic.Sram.mib_of_bits (8 * 1024 * 1024))

let qcheck_sram_words =
  QCheck.Test.make ~name:"word packing covers all entries" ~count:300
    QCheck.(pair (int_range 1 300) (int_range 0 100000))
    (fun (entry_bits, entries) ->
      let words = Asic.Sram.words_for_entries ~entry_bits ~entries in
      if entries = 0 then words = 0
      else if entry_bits <= Asic.Sram.word_bits then
        words * (Asic.Sram.word_bits / entry_bits) >= entries
      else words * Asic.Sram.word_bits >= entries * entry_bits)

(* ---------- Register_array ---------- *)

let registers_basic () =
  let r = Asic.Register_array.create ~width_bits:8 ~size:16 () in
  Asic.Register_array.write r 3 255;
  check Alcotest.int "read" 255 (Asic.Register_array.read r 3);
  Asic.Register_array.write r 3 256;
  check Alcotest.int "masked" 0 (Asic.Register_array.read r 3);
  let v = Asic.Register_array.read_modify_write r 4 (fun x -> x + 7) in
  check Alcotest.int "rmw result" 7 v;
  check Alcotest.int "rmw persisted" 7 (Asic.Register_array.read r 4);
  Asic.Register_array.clear r;
  check Alcotest.int "cleared" 0 (Asic.Register_array.read r 4);
  check Alcotest.int "sram bits" 128 (Asic.Register_array.sram_bits r)

(* ---------- Bloom_filter ---------- *)

let bloom_no_false_negative () =
  let b = Asic.Bloom_filter.create ~bits:2048 ~hashes:2 () in
  for i = 0 to 199 do
    Asic.Bloom_filter.add b (Int64.of_int (i * 7919))
  done;
  for i = 0 to 199 do
    check Alcotest.bool "member" true (Asic.Bloom_filter.mem b (Int64.of_int (i * 7919)))
  done

let bloom_clear () =
  let b = Asic.Bloom_filter.create ~bits:256 ~hashes:2 () in
  Asic.Bloom_filter.add b 42L;
  check Alcotest.bool "before" true (Asic.Bloom_filter.mem b 42L);
  Asic.Bloom_filter.clear b;
  check Alcotest.bool "after" false (Asic.Bloom_filter.mem b 42L);
  check Alcotest.int "population" 0 (Asic.Bloom_filter.population b)

let bloom_fp_rate () =
  let b = Asic.Bloom_filter.create ~bits:2048 ~hashes:2 () in
  for i = 0 to 99 do
    Asic.Bloom_filter.add b (Int64.of_int (1_000_000 + i))
  done;
  let fp = ref 0 in
  for i = 0 to 9_999 do
    if Asic.Bloom_filter.mem b (Int64.of_int (5_000_000 + i)) then incr fp
  done;
  check Alcotest.bool "fp rate below 3%" true (!fp < 300);
  check Alcotest.bool "estimate sane" true (Asic.Bloom_filter.false_positive_probability b < 0.05)

(* The TransitTable operating point (256 bytes, k = 2) against the
   analytic false-positive rate (1 - e^(-kn/m))^k: with n = 200 resident
   keys, p ≈ 3.1%; 50k random probes put the observed rate within 2x of
   that with overwhelming margin (the binomial std dev is ~0.08%). *)
let bloom_fp_rate_analytic () =
  let m = 2048 and k = 2 and n = 200 in
  let b = Asic.Bloom_filter.create ~bits:m ~hashes:k () in
  let rng = Random.State.make [| 0xb100; 0xf11e |] in
  for _ = 1 to n do
    Asic.Bloom_filter.add b (Random.State.int64 rng Int64.max_int)
  done;
  let probes = 50_000 in
  let fp = ref 0 in
  for _ = 1 to probes do
    (* negated keys never collide with the non-negative resident set *)
    if Asic.Bloom_filter.mem b (Int64.lognot (Random.State.int64 rng Int64.max_int)) then
      incr fp
  done;
  let analytic =
    (1. -. exp (-.float_of_int (k * n) /. float_of_int m)) ** float_of_int k
  in
  let observed = float_of_int !fp /. float_of_int probes in
  check Alcotest.bool
    (Printf.sprintf "observed %.4f within 2x of analytic %.4f" observed analytic)
    true
    (observed >= analytic /. 2. && observed <= analytic *. 2.)

let qcheck_bloom_membership =
  QCheck.Test.make ~name:"bloom never forgets" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) int64)
    (fun keys ->
      let b = Asic.Bloom_filter.create ~bits:4096 ~hashes:3 () in
      List.iter (Asic.Bloom_filter.add b) keys;
      List.for_all (Asic.Bloom_filter.mem b) keys)

(* ---------- Cuckoo ---------- *)

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash ~seed x = Netcore.Hashing.seeded ~seed (Int64.of_int x)
end

module IC = Asic.Cuckoo.Make (Int_key)

let cuckoo_insert_find () =
  let t = IC.create ~stages:2 ~rows_per_stage:64 ~ways:4 () in
  for i = 0 to 99 do
    match IC.insert t i (i * 10) with
    | Ok _ -> ()
    | Error `Full -> Alcotest.fail "table full too early"
    | Error `Duplicate -> Alcotest.fail "spurious duplicate"
  done;
  check Alcotest.int "size" 100 (IC.size t);
  for i = 0 to 99 do
    match IC.lookup t i with
    | Some hit ->
      check Alcotest.bool "exact" true hit.IC.exact;
      check Alcotest.int "value" (i * 10) hit.IC.value
    | None -> Alcotest.fail (Printf.sprintf "lost key %d" i)
  done

let cuckoo_duplicate () =
  let t = IC.create ~stages:2 ~rows_per_stage:16 ~ways:2 () in
  (match IC.insert t 1 10 with Ok _ -> () | Error _ -> Alcotest.fail "first insert");
  match IC.insert t 1 20 with
  | Error `Duplicate -> ()
  | Ok _ | Error `Full -> Alcotest.fail "expected duplicate"

let cuckoo_remove () =
  let t = IC.create ~stages:2 ~rows_per_stage:16 ~ways:2 () in
  ignore (IC.insert t 5 50);
  check Alcotest.bool "present" true (IC.mem_exact t 5);
  check Alcotest.bool "removed" true (IC.remove t 5);
  check Alcotest.bool "absent" false (IC.mem_exact t 5);
  check Alcotest.bool "remove again" false (IC.remove t 5);
  check Alcotest.int "size" 0 (IC.size t)

let cuckoo_set_exact () =
  let t = IC.create ~stages:2 ~rows_per_stage:16 ~ways:2 () in
  ignore (IC.insert t 5 50);
  check Alcotest.bool "set" true (IC.set_exact t 5 99);
  (match IC.find_exact t 5 with
   | Some v -> check Alcotest.int "updated" 99 v
   | None -> Alcotest.fail "lost");
  check Alcotest.bool "set missing" false (IC.set_exact t 6 1)

let cuckoo_high_occupancy () =
  let t = IC.create ~stages:4 ~rows_per_stage:64 ~ways:4 () in
  let cap = IC.capacity t in
  let inserted = ref 0 in
  (try
     for i = 0 to cap - 1 do
       match IC.insert t i i with
       | Ok _ -> incr inserted
       | Error `Full -> raise Exit
       | Error `Duplicate -> Alcotest.fail "duplicate"
     done
   with Exit -> ());
  check Alcotest.bool
    (Printf.sprintf "occupancy %.2f >= 0.9" (IC.occupancy t))
    true
    (float_of_int !inserted /. float_of_int cap >= 0.9)

let cuckoo_relocate () =
  let t = IC.create ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  for i = 0 to 50 do
    ignore (IC.insert t i i)
  done;
  match IC.stage_of_exact t 7 with
  | None -> Alcotest.fail "key 7 missing"
  | Some s ->
    (match IC.relocate t 7 ~forbid_stages:[ s ] with
     | Ok _ ->
       (match IC.stage_of_exact t 7 with
        | Some s' -> check Alcotest.bool "moved out" true (s' <> s)
        | None -> Alcotest.fail "lost during relocate")
     | Error `Full -> Alcotest.fail "relocate full"
     | Error `Not_found -> Alcotest.fail "relocate not found");
    (match IC.find_exact t 7 with
     | Some v -> check Alcotest.int "value preserved" 7 v
     | None -> Alcotest.fail "value lost")

let cuckoo_relocate_missing () =
  let t = IC.create ~stages:2 ~rows_per_stage:8 ~ways:2 () in
  match IC.relocate t 42 ~forbid_stages:[ 0 ] with
  | Error `Not_found -> ()
  | Ok _ | Error `Full -> Alcotest.fail "expected Not_found"

let cuckoo_forbid_stage () =
  let t = IC.create ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  for i = 0 to 30 do
    match IC.insert ~forbid_stages:[ 0 ] t i i with
    | Ok _ ->
      (match IC.stage_of_exact t i with
       | Some s -> check Alcotest.bool "not in stage 0" true (s <> 0)
       | None -> Alcotest.fail "missing")
    | Error _ -> Alcotest.fail "insert failed"
  done

let qcheck_cuckoo_model =
  QCheck.Test.make ~name:"cuckoo table = reference map" ~count:60
    QCheck.(list (pair (int_bound 500) bool))
    (fun ops ->
      let t = IC.create ~stages:3 ~rows_per_stage:128 ~ways:4 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            match IC.insert t k k with
            | Ok _ -> Hashtbl.replace model k k
            | Error `Duplicate -> ()
            | Error `Full -> ()
          end
          else begin
            let removed = IC.remove t k in
            let expected = Hashtbl.mem model k in
            if removed <> expected then failwith "remove disagreed";
            Hashtbl.remove model k
          end)
        ops;
      Hashtbl.length model = IC.size t
      && Hashtbl.fold (fun k v acc -> acc && IC.find_exact t k = Some v) model true)

let qcheck_cuckoo_moves_preserve =
  QCheck.Test.make ~name:"evictions never lose entries" ~count:20
    QCheck.(int_range 100 400)
    (fun n ->
      let t = IC.create ~stages:2 ~rows_per_stage:64 ~ways:4 () in
      let kept = ref [] in
      for i = 0 to n - 1 do
        match IC.insert t i i with
        | Ok _ -> kept := i :: !kept
        | Error _ -> ()
      done;
      List.for_all (fun k -> IC.find_exact t k = Some k) !kept)

let cuckoo_digest_mode () =
  let t = IC.create ~digest_bits:8 ~stages:2 ~rows_per_stage:256 ~ways:4 () in
  for i = 0 to 499 do
    ignore (IC.insert t i i)
  done;
  for i = 0 to 499 do
    match IC.lookup t i with
    | Some _ -> ()
    | None -> Alcotest.fail "digest lookup lost a key"
  done;
  let fp = ref 0 in
  for i = 10_000 to 30_000 do
    match IC.lookup t i with
    | Some hit when not hit.IC.exact -> incr fp
    | Some _ | None -> ()
  done;
  check Alcotest.bool "some false positives with 8-bit digest" true (!fp > 0)

let cuckoo_probe_positions () =
  let t = IC.create ~digest_bits:8 ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  let ps = IC.probe_positions t 42 in
  check Alcotest.int "one per stage" 3 (List.length ps);
  List.iteri
    (fun i (s, row, d) ->
      check Alcotest.int "stage index" i s;
      check Alcotest.bool "row bounded" true (row >= 0 && row < 64);
      check Alcotest.bool "digest bounded" true (d >= 0 && d < 256))
    ps;
  (* deterministic *)
  check Alcotest.bool "stable" true (ps = IC.probe_positions t 42)

let cuckoo_placement_filter_respected () =
  let t = IC.create ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  (* forbid stage 1 entirely via the filter *)
  IC.set_placement_filter t (Some (fun _ ~stage ~row:_ -> stage <> 1));
  for i = 0 to 60 do
    match IC.insert t i i with
    | Ok _ ->
      (match IC.stage_of_exact t i with
       | Some s -> check Alcotest.bool "never stage 1" true (s <> 1)
       | None -> Alcotest.fail "lost")
    | Error `Full -> ()
    | Error `Duplicate -> Alcotest.fail "dup"
  done;
  (* clearing the filter restores stage 1 *)
  IC.set_placement_filter t None;
  let landed_in_1 = ref false in
  for i = 100 to 400 do
    (match IC.insert t i i with
     | Ok _ -> if IC.stage_of_exact t i = Some 1 then landed_in_1 := true
     | Error _ -> ())
  done;
  check Alcotest.bool "stage 1 usable again" true !landed_in_1

(* ---------- Cuckoo: flat vs boxed differential ---------- *)

module ICB = Asic.Cuckoo_boxed.Make (Int_key)

(* An insert that exhausts the BFS budget must fail cleanly: report
   table-full after exactly [max_bfs_nodes] expansions, record the
   occupancy at first failure, and leave the table untouched. *)
let cuckoo_bfs_boundary () =
  let max_bfs_nodes = 64 in
  let t = IC.create ~stages:2 ~rows_per_stage:512 ~ways:4 ~max_bfs_nodes () in
  let kept = ref [] in
  let first_fail = ref None in
  (try
     for i = 0 to IC.capacity t - 1 do
       match IC.insert t i i with
       | Ok _ -> kept := i :: !kept
       | Error `Full ->
         first_fail := Some i;
         raise Exit
       | Error `Duplicate -> Alcotest.fail "duplicate"
     done
   with Exit -> ());
  (match !first_fail with
   | None -> Alcotest.fail "table never filled"
   | Some _ -> ());
  let size_at_fail = IC.size t in
  check Alcotest.int "failed insert ran the BFS to its budget" max_bfs_nodes
    (IC.last_bfs_expanded t);
  check Alcotest.int "one failed insert" 1 (IC.failed_inserts t);
  (match IC.first_full_occupancy t with
   | None -> Alcotest.fail "first_full_occupancy not recorded"
   | Some occ ->
     check Alcotest.bool
       (Printf.sprintf "occupancy at first failure %.3f >= 0.8" occ)
       true (occ >= 0.8);
     check (Alcotest.float 1e-9) "occupancy recorded at the failure point" (IC.occupancy t) occ);
  check Alcotest.int "failed insert did not change size" size_at_fail (IC.size t);
  List.iter
    (fun k ->
      match IC.find_exact t k with
      | Some v -> check Alcotest.int "kept value" k v
      | None -> Alcotest.fail (Printf.sprintf "failed insert lost resident key %d" k))
    !kept

(* Same op sequence through the SoA table and the boxed reference: the
   greedy-kick scan order is the boxed BFS's pop order, so placements,
   move counts, sizes and stage assignments must be identical — the
   cross-layout contract Conn_table's differential suite builds on. *)
let layout_differential ?placement_filter ops =
  let tf = IC.create ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  let tb = ICB.create ~stages:3 ~rows_per_stage:64 ~ways:2 () in
  (match placement_filter with
   | None -> ()
   | Some f ->
     IC.set_placement_filter tf (Some f);
     ICB.set_placement_filter tb (Some f));
  let ok = ref true in
  List.iter
    (fun (k, ins) ->
      if ins then begin
        let rf = IC.insert tf k k and rb = ICB.insert tb k k in
        if rf <> rb then begin
          Printf.printf "insert %d: flat %s, boxed %s\n%!" k
            (match rf with
             | Ok m -> Printf.sprintf "Ok %d" m
             | Error `Full -> "Full"
             | Error `Duplicate -> "Dup")
            (match rb with
             | Ok m -> Printf.sprintf "Ok %d" m
             | Error `Full -> "Full"
             | Error `Duplicate -> "Dup");
          ok := false
        end
      end
      else if IC.remove tf k <> ICB.remove tb k then ok := false;
      if IC.size tf <> ICB.size tb then ok := false;
      if IC.stage_of_exact tf k <> ICB.stage_of_exact tb k then ok := false;
      if IC.find_exact tf k <> ICB.find_exact tb k then ok := false)
    ops;
  !ok && IC.moves tf = ICB.moves tb && IC.failed_inserts tf = ICB.failed_inserts tb

let qcheck_flat_boxed_differential =
  QCheck.Test.make ~name:"flat and boxed layouts place identically" ~count:60
    QCheck.(list_of_size (Gen.int_range 50 500) (pair (int_bound 600) bool))
    (fun ops -> layout_differential ops)

let qcheck_flat_boxed_differential_filtered =
  QCheck.Test.make ~name:"flat and boxed layouts place identically under a placement filter"
    ~count:40
    QCheck.(list_of_size (Gen.int_range 50 400) (pair (int_bound 600) bool))
    (fun ops ->
      (* the filter ConnTable actually installs: veto some (stage, row)
         cells as a pure predicate of the key *)
      layout_differential ~placement_filter:(fun k ~stage ~row -> (k + stage + row) mod 7 <> 0)
        ops)

(* The greedy depth-1 kick pass must actually fire on the flat layout
   (it is the amortisation this PR exists for) and stay at zero on the
   boxed reference, without changing outcomes. *)
let cuckoo_greedy_kicks_counter () =
  let t = IC.create ~stages:2 ~rows_per_stage:64 ~ways:4 () in
  let tb = ICB.create ~stages:2 ~rows_per_stage:64 ~ways:4 () in
  (try
     for i = 0 to IC.capacity t - 1 do
       let rf = IC.insert t i i and rb = ICB.insert tb i i in
       if rf <> rb then Alcotest.fail "layouts diverged";
       match rf with Error `Full -> raise Exit | Ok _ | Error `Duplicate -> ()
     done
   with Exit -> ());
  check Alcotest.bool
    (Printf.sprintf "flat greedy kicks %d > 0" (IC.greedy_kicks t))
    true (IC.greedy_kicks t > 0);
  check Alcotest.int "boxed never greedy-kicks" 0 (ICB.greedy_kicks tb);
  check Alcotest.int "kicks count into moves" (ICB.moves tb) (IC.moves t)

(* ---------- Learning_filter ---------- *)

let learning_dedup () =
  let f = Asic.Learning_filter.create ~capacity:8 ~timeout:0.001 () in
  check Alcotest.bool "accept" true (Asic.Learning_filter.offer f ~now:0. "a" () = `Accepted);
  check Alcotest.bool "dup" true (Asic.Learning_filter.offer f ~now:0. "a" () = `Duplicate);
  check Alcotest.int "pending" 1 (Asic.Learning_filter.pending f)

let learning_overflow () =
  let f = Asic.Learning_filter.create ~capacity:2 ~timeout:1. () in
  ignore (Asic.Learning_filter.offer f ~now:0. "a" ());
  ignore (Asic.Learning_filter.offer f ~now:0. "b" ());
  check Alcotest.bool "dropped" true (Asic.Learning_filter.offer f ~now:0. "c" () = `Dropped);
  check Alcotest.int "drop count" 1 (Asic.Learning_filter.dropped f);
  check Alcotest.bool "full means ready" true (Asic.Learning_filter.ready f ~now:0.)

let learning_timeout () =
  let f = Asic.Learning_filter.create ~capacity:100 ~timeout:0.5 () in
  ignore (Asic.Learning_filter.offer f ~now:1. "a" ());
  check Alcotest.bool "not ready yet" false (Asic.Learning_filter.ready f ~now:1.2);
  check Alcotest.bool "ready at deadline" true (Asic.Learning_filter.ready f ~now:1.5);
  (match Asic.Learning_filter.next_deadline f with
   | Some d -> check (Alcotest.float 1e-9) "deadline" 1.5 d
   | None -> Alcotest.fail "no deadline");
  let batch = Asic.Learning_filter.drain f in
  check Alcotest.int "batch size" 1 (List.length batch);
  check Alcotest.int "empty after drain" 0 (Asic.Learning_filter.pending f);
  check Alcotest.bool "re-offer accepted" true
    (Asic.Learning_filter.offer f ~now:2. "a" () = `Accepted)

let learning_drain_order () =
  let f = Asic.Learning_filter.create ~capacity:10 ~timeout:1. () in
  ignore (Asic.Learning_filter.offer f ~now:0. "a" ());
  ignore (Asic.Learning_filter.offer f ~now:0.1 "b" ());
  ignore (Asic.Learning_filter.offer f ~now:0.2 "c" ());
  let keys = List.map fst (Asic.Learning_filter.drain f) in
  check (Alcotest.list Alcotest.string) "fifo" [ "a"; "b"; "c" ] keys

(* ---------- Switch_cpu ---------- *)

let cpu_rate () =
  let cpu = Asic.Switch_cpu.create ~insertions_per_sec:1000. () in
  let t1 = Asic.Switch_cpu.submit cpu ~now:0. ~work_items:100 in
  check (Alcotest.float 1e-9) "100 items at 1k/s" 0.1 t1;
  let t2 = Asic.Switch_cpu.submit cpu ~now:0. ~work_items:100 in
  check (Alcotest.float 1e-9) "queued" 0.2 t2;
  let t3 = Asic.Switch_cpu.submit cpu ~now:1. ~work_items:100 in
  check (Alcotest.float 1e-9) "idle restart" 1.1 t3;
  check Alcotest.int "total" 300 (Asic.Switch_cpu.total_items cpu)

(* ---------- Meter ---------- *)

let meter_colors () =
  let m = Asic.Meter.create ~cir:1000. ~cbs:1000 ~eir:1000. ~ebs:1000 in
  check Alcotest.bool "green" true (Asic.Meter.mark m ~now:0. ~bytes:1000 = Asic.Meter.Green);
  check Alcotest.bool "yellow" true (Asic.Meter.mark m ~now:0. ~bytes:1000 = Asic.Meter.Yellow);
  check Alcotest.bool "red" true (Asic.Meter.mark m ~now:0. ~bytes:1000 = Asic.Meter.Red);
  check Alcotest.bool "green after refill" true
    (Asic.Meter.mark m ~now:0.5 ~bytes:400 = Asic.Meter.Green);
  check Alcotest.int "green bytes" 1400 (Asic.Meter.marked m Asic.Meter.Green)

let meter_accuracy () =
  let m = Asic.Meter.create ~cir:1_000_000. ~cbs:10_000 ~eir:1_000_000. ~ebs:10_000 in
  let green = ref 0 and total = ref 0 in
  let dt = 0.0005 in
  for i = 0 to 19_999 do
    let bytes = 1000 in
    total := !total + bytes;
    if Asic.Meter.mark m ~now:(float_of_int i *. dt) ~bytes = Asic.Meter.Green then
      green := !green + bytes
  done;
  let share = float_of_int !green /. float_of_int !total in
  check Alcotest.bool (Printf.sprintf "green share %.3f in [0.49,0.53]" share) true
    (share >= 0.49 && share <= 0.53)

(* ---------- Ecmp ---------- *)

let ecmp_select_uniform () =
  let members = Array.init 8 (fun i -> i) in
  let counts = Array.make 8 0 in
  for i = 0 to 7999 do
    let h = Netcore.Hashing.seeded ~seed:1 (Int64.of_int i) in
    let m = Asic.Ecmp.select members h in
    counts.(m) <- counts.(m) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "within 30% of fair share" true (c > 700 && c < 1300))
    counts

let resilient_only_moves_removed () =
  let members = Array.init 8 (fun i -> i) in
  let r = Asic.Ecmp.resilient ~slots_per_member:64 members in
  let r' = Asic.Ecmp.resilient_remove ~equal:Int.equal r 3 in
  let moved = ref 0 and total = 20_000 in
  for i = 0 to total - 1 do
    let h = Netcore.Hashing.seeded ~seed:2 (Int64.of_int i) in
    let before = Asic.Ecmp.resilient_select r h in
    let after = Asic.Ecmp.resilient_select r' h in
    if before <> after then begin
      incr moved;
      check Alcotest.int "only flows of removed member move" 3 before
    end
  done;
  check Alcotest.bool "moved share ~1/8" true
    (let s = float_of_int !moved /. float_of_int total in
     s > 0.08 && s < 0.17)

let resilient_add_disruption_small () =
  let members = Array.init 8 (fun i -> i) in
  let r = Asic.Ecmp.resilient ~slots_per_member:64 members in
  let r' = Asic.Ecmp.resilient_add r 8 in
  let moved = ref 0 and total = 20_000 in
  for i = 0 to total - 1 do
    let h = Netcore.Hashing.seeded ~seed:3 (Int64.of_int i) in
    if Asic.Ecmp.resilient_select r h <> Asic.Ecmp.resilient_select r' h then incr moved
  done;
  check Alcotest.bool "disruption ~1/9" true
    (let s = float_of_int !moved /. float_of_int total in
     s > 0.05 && s < 0.2)

(* ---------- Timer_wheel ---------- *)

let wheel_fires_on_time () =
  let w = Asic.Timer_wheel.create ~granularity:1. ~slots:8 () in
  Asic.Timer_wheel.schedule w ~key:"a" ~at:3.;
  Asic.Timer_wheel.schedule w ~key:"b" ~at:5.;
  check (Alcotest.list Alcotest.string) "nothing early" [] (Asic.Timer_wheel.advance w ~now:2.);
  (* delivery is at tick precision: a@3 fires once its tick completes *)
  check (Alcotest.list Alcotest.string) "tick not complete" []
    (Asic.Timer_wheel.advance w ~now:3.5);
  check (Alcotest.list Alcotest.string) "a fires" [ "a" ] (Asic.Timer_wheel.advance w ~now:4.);
  check Alcotest.bool "a gone" false (Asic.Timer_wheel.mem w ~key:"a");
  check (Alcotest.list Alcotest.string) "b fires" [ "b" ] (Asic.Timer_wheel.advance w ~now:10.)

let wheel_reschedule_replaces () =
  let w = Asic.Timer_wheel.create ~granularity:1. ~slots:8 () in
  Asic.Timer_wheel.schedule w ~key:"a" ~at:2.;
  Asic.Timer_wheel.schedule w ~key:"a" ~at:6.;
  check Alcotest.int "one entry" 1 (Asic.Timer_wheel.scheduled w);
  check (Alcotest.list Alcotest.string) "old deadline dead" [] (Asic.Timer_wheel.advance w ~now:3.);
  check (Alcotest.list Alcotest.string) "new deadline fires" [ "a" ]
    (Asic.Timer_wheel.advance w ~now:7.)

let wheel_cancel () =
  let w = Asic.Timer_wheel.create ~granularity:1. ~slots:4 () in
  Asic.Timer_wheel.schedule w ~key:"a" ~at:1.;
  Asic.Timer_wheel.cancel w ~key:"a";
  check (Alcotest.list Alcotest.string) "cancelled" [] (Asic.Timer_wheel.advance w ~now:5.)

let wheel_beyond_revolution () =
  (* a deadline further than one revolution must survive sweeps *)
  let w = Asic.Timer_wheel.create ~granularity:1. ~slots:4 () in
  Asic.Timer_wheel.schedule w ~key:"far" ~at:11.;
  check (Alcotest.list Alcotest.string) "pass 1" [] (Asic.Timer_wheel.advance w ~now:5.);
  check (Alcotest.list Alcotest.string) "pass 2" [] (Asic.Timer_wheel.advance w ~now:9.);
  check (Alcotest.list Alcotest.string) "finally" [ "far" ] (Asic.Timer_wheel.advance w ~now:12.)

let qcheck_wheel_delivers_all =
  QCheck.Test.make ~name:"wheel delivers everything exactly once, in order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (pair small_int (float_bound_inclusive 50.)))
    (fun entries ->
      let w = Asic.Timer_wheel.create ~granularity:0.7 ~slots:8 () in
      (* last write wins per key *)
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, at) ->
          Asic.Timer_wheel.schedule w ~key:k ~at;
          Hashtbl.replace model k at)
        entries;
      let fired = Asic.Timer_wheel.advance w ~now:100. in
      let sorted_ok =
        let rec go last = function
          | [] -> true
          | k :: rest ->
            let at = Hashtbl.find model k in
            at >= last -. 1e-9 && go at rest
        in
        go neg_infinity fired
      in
      List.length fired = Hashtbl.length model
      && List.for_all (Hashtbl.mem model) fired
      && sorted_ok
      && Asic.Timer_wheel.scheduled w = 0)

(* ---------- Resources / Table_spec ---------- *)

let resources_math () =
  let a = Asic.Resources.make ~sram_bits:100 ~hash_bits:10 () in
  let b = Asic.Resources.make ~sram_bits:50 ~vliw_actions:2 () in
  let s = Asic.Resources.add a b in
  check Alcotest.int "sram" 150 s.Asic.Resources.sram_bits;
  check Alcotest.int "vliw" 2 s.Asic.Resources.vliw_actions;
  let p = Asic.Resources.relative_to ~base:(Asic.Resources.make ~sram_bits:300 ()) a in
  check (Alcotest.float 1e-9) "pct" (100. /. 3.) p.Asic.Resources.p_sram;
  check (Alcotest.float 1e-9) "0/0" 0. p.Asic.Resources.p_tcam

let table_spec_sram () =
  let spec =
    Asic.Table_spec.make ~name:"conn" ~entries:1_000_000 ~match_key_bits:296
      ~stored_key_bits:16 ~action_data_bits:6 ~overhead_bits:6 ()
  in
  check Alcotest.int "entry bits" 28 (Asic.Table_spec.entry_bits spec);
  check Alcotest.int "sram" (250_000 * 112) (Asic.Table_spec.sram_bits spec)

let suites =
  [
    ( "asic.sram",
      [
        tc "packing" `Quick sram_packing;
        tc "units" `Quick sram_units;
        QCheck_alcotest.to_alcotest qcheck_sram_words;
      ] );
    ("asic.registers", [ tc "basic" `Quick registers_basic ]);
    ( "asic.bloom",
      [
        tc "no false negatives" `Quick bloom_no_false_negative;
        tc "clear" `Quick bloom_clear;
        tc "fp rate" `Quick bloom_fp_rate;
        tc "fp rate matches analytic" `Quick bloom_fp_rate_analytic;
        QCheck_alcotest.to_alcotest qcheck_bloom_membership;
      ] );
    ( "asic.cuckoo",
      [
        tc "insert/find" `Quick cuckoo_insert_find;
        tc "duplicate" `Quick cuckoo_duplicate;
        tc "remove" `Quick cuckoo_remove;
        tc "set_exact" `Quick cuckoo_set_exact;
        tc "high occupancy" `Quick cuckoo_high_occupancy;
        tc "relocate" `Quick cuckoo_relocate;
        tc "relocate missing" `Quick cuckoo_relocate_missing;
        tc "forbidden stages" `Quick cuckoo_forbid_stage;
        tc "digest mode" `Quick cuckoo_digest_mode;
        tc "probe positions" `Quick cuckoo_probe_positions;
        tc "placement filter" `Quick cuckoo_placement_filter_respected;
        tc "bfs budget boundary" `Quick cuckoo_bfs_boundary;
        tc "greedy kick counter" `Quick cuckoo_greedy_kicks_counter;
        QCheck_alcotest.to_alcotest qcheck_cuckoo_model;
        QCheck_alcotest.to_alcotest qcheck_cuckoo_moves_preserve;
        QCheck_alcotest.to_alcotest qcheck_flat_boxed_differential;
        QCheck_alcotest.to_alcotest qcheck_flat_boxed_differential_filtered;
      ] );
    ( "asic.learning_filter",
      [
        tc "dedup" `Quick learning_dedup;
        tc "overflow" `Quick learning_overflow;
        tc "timeout" `Quick learning_timeout;
        tc "drain order" `Quick learning_drain_order;
      ] );
    ("asic.switch_cpu", [ tc "rate model" `Quick cpu_rate ]);
    ("asic.meter", [ tc "colors" `Quick meter_colors; tc "accuracy" `Quick meter_accuracy ]);
    ( "asic.ecmp",
      [
        tc "uniform selection" `Quick ecmp_select_uniform;
        tc "resilient remove" `Quick resilient_only_moves_removed;
        tc "resilient add" `Quick resilient_add_disruption_small;
      ] );
    ( "asic.timer_wheel",
      [
        tc "fires on time" `Quick wheel_fires_on_time;
        tc "reschedule replaces" `Quick wheel_reschedule_replaces;
        tc "cancel" `Quick wheel_cancel;
        tc "beyond a revolution" `Quick wheel_beyond_revolution;
        QCheck_alcotest.to_alcotest qcheck_wheel_delivers_all;
      ] );
    ( "asic.resources",
      [ tc "arithmetic" `Quick resources_math; tc "table spec sram" `Quick table_spec_sram ] );
  ]
