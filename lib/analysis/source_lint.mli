(** Determinism lint — the [det.*] rules of [silkroad-lint].

    The repo's headline reproducibility guarantee (chaos reports are
    byte-identical for a fixed seed, Table 2 numbers are frozen) only
    holds if no code path smuggles in ambient nondeterminism. This
    walks the untyped AST (compiler-libs) of every [.ml] file and
    reports:

    - [det.wall-clock] ({e error}): [Sys.time], [Unix.time],
      [Unix.gettimeofday] outside the allowlisted clock module —
      simulated time comes from the harness, wall time only from
      [Harness.Stopwatch].
    - [det.self-init] ({e error}): [Random.self_init] /
      [Random.State.make_self_init] — every PRNG must be seeded.
    - [det.poly-hash] ({e error}): [Hashtbl.hash] /
      [Hashtbl.seeded_hash] — polymorphic hashing varies across
      layouts; hash through explicit key functions.
    - [det.poly-compare] ({e error}): the {e polymorphic} [compare] /
      [Stdlib.compare] / [(=)] passed as a value (e.g. to
      [List.sort]) — it follows physical structure, not domain order;
      pass an explicit comparator. Fully applied uses
      ([compare a b = 0]) are not flagged.
    - [det.hashtbl-order] ({e warning}): a [Hashtbl.iter]/[fold]
      whose callback writes to a formatted sink ([Format]/[Printf]/
      [Buffer]/[print_*]) with no sort in its arguments — one write
      per entry, in seed-dependent table order, leaks into reports.
    The toplevel-mutable [det.domain-unsafe] rule that used to live
    here is subsumed by {!Domain_safety}, which finds shared mutable
    state {e inter-procedurally} from the actual Domain entry points
    instead of flagging definitions by directory.

    A file opts a rule out with a structure-level attribute, e.g.
    [[@@@silkroad.allow "det.wall-clock"]] (file-wide; the attribute
    is in the [silkroad.] namespace so the compiler ignores it). *)

val rules : (string * string) list
(** [(rule id, one-line description)] for [--help] style listings. *)

val lint_string : ?file:string -> string -> Diag.t list
(** Lint source text. [file] (default ["<string>"]) is used in
    locations. A syntax error yields a single [src.parse] error. *)

val lint_file : string -> Diag.t list

val lint_dirs : string list -> Diag.t list
(** Lint every [.ml] under the given directories (recursively,
    deterministic sorted order), skipping [_build], [.git] and
    hidden directories. *)

val default_dirs : root:string -> string list
(** [lib], [bin], [test] and [bench] under [root] — the full source
    surface the CI gate lints. Tests and benches matter too: a
    nondeterministic expectation (unsorted [Hashtbl] render, polymorphic
    comparator) makes a green run unreproducible. *)
