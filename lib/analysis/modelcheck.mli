(** Bounded exhaustive model checking of the §4.3 update machinery.

    The checker runs a {e small-scope} abstract model of one
    {!Silkroad.Switch}: a single VIP, a handful of connections with
    forced digest collisions and TransitTable (Bloom) aliases, a version
    ring of [2^version_bits] slots, the pending-update queue, and the
    asynchronous learn → switch-CPU → install pipeline with the exact
    timing rules of {!Asic.Learning_filter} and {!Asic.Switch_cpu}. For
    a scope of [k] pool updates and [m] packet arrivals it enumerates
    {e all} interleavings (orders of the merged event stream) across
    several timing regimes, and checks two properties after every event:

    - {b PCC}: every judged packet of a connection is forwarded to the
      DIP of its first packet (mirroring {!Harness.Replay}'s judge,
      including the removed-DIP exclusion rule);
    - {b no premature version recycle}: no live connection ever
      references a DIP-pool version that has been destroyed.

    Every schedule the model explores is directly realizable on the real
    switch — install and delete completions are not free interleaving
    choices but are computed with the mirrored timing rules — so a
    counterexample converts to a concrete replay: a {!Harness.Packed_trace}
    plus control list for {!Harness.Replay.run}, and a serve-mode script
    for [silkroad_cli serve --script]. Seeded mutations (TransitTable
    insert disabled; barrier force-release racing a slow switch CPU)
    must each produce a counterexample that demonstrably breaks PCC when
    replayed on the real switch; the shipped semantics must exhaust the
    scope with zero violations. A conformance harness
    ({!model_observe} / {!switch_observe}) pins the model to the real
    switch per-packet on sampled interleavings. *)

(** {2 Scopes} *)

type regime = {
  rg_name : string;
  cpu_rate : float;  (** switch-CPU insertions per second *)
  learn_timeout : float;  (** learning-filter batch deadline, seconds *)
  gap : float;  (** spacing of the event time grid, seconds *)
}

type pattern = {
  pat_name : string;
  collide : bool;  (** flows 0 and 1 share a ConnTable digest/bucket *)
  alias : bool;  (** recording flow 0 makes flow 1 falsely hit transit *)
}

type scope = {
  sc_name : string;
  sc_updates : int;  (** k: DIP removals, applied in a fixed order *)
  sc_flow_packets : int list;  (** packets per judged flow (>= 2 each) *)
  sc_regimes : regime list;
  sc_patterns : pattern list;
}

val default_scopes : scope list
(** The CI scope: at least 3 updates x 4 packets, all four
    collision/alias patterns, three timing regimes. *)

val verify_config :
  ?use_transit:bool -> cpu_rate:float -> learn_timeout:float -> unit -> Silkroad.Config.t
(** The sized-down switch configuration the checker (and its real-switch
    replays) run under: 6-bit digests and a 4-byte TransitTable so
    collisions and aliases are dense enough to search for. *)

(** {2 Mutations} *)

type mutation =
  | Transit_insert_disabled
      (** step 1 records nothing ([use_transit = false]) — Figure 16's
          ablation; updates apply instantly, unprotected *)
  | Barrier_force_release
      (** the [Switch.barrier_deadline] liveness valve fires while the
          switch CPU is still installing the pending connection *)
  | Eager_version_gc
      (** model-only: step-3 GC destroys old versions while connections
          still reference them — must trip the recycle property *)

val mutations : mutation list
val mutation_name : mutation -> string

val mutation_model_only : mutation -> bool
(** [true] for mutations with no real-switch realization
    ({!Eager_version_gc}); these must trip a model property but are not
    replayed. *)

(** {2 Events and counterexamples} *)

type event =
  | Pkt of { eflow : int; esyn : bool; eends : bool }
  | Upd of int  (** index into the removal sequence *)

type counterexample = {
  ce_mutation : mutation option;  (** [None] = shipped semantics *)
  ce_scope : string;
  ce_regime : regime;
  ce_pattern : pattern;
  ce_cfg : Silkroad.Config.t;
  ce_vip : Netcore.Endpoint.t;
  ce_dips : Netcore.Endpoint.t array;  (** initial pool *)
  ce_removed : Netcore.Endpoint.t array;  (** per update, in order *)
  ce_flows : Netcore.Five_tuple.t array;
  ce_events : (float * event) list;  (** the violating schedule *)
  ce_kind : [ `Pcc | `Recycle ];
  ce_model_violations : int;
}

type outcome = {
  oc_runs : int;  (** interleavings explored (x regimes x patterns) *)
  oc_events : int;  (** total events stepped *)
  oc_violating : int;  (** runs with a PCC violation *)
  oc_recycled : int;  (** runs tripping the recycle property *)
  oc_forced : int;  (** runs where the barrier deadline fired *)
  oc_counterexamples : counterexample list;  (** capped *)
}

val check_scope : ?mutation:mutation -> scope -> outcome
(** Exhaust one scope. Without [?mutation], shipped semantics: the
    expectation is [oc_violating = 0], [oc_recycled = 0] and
    [oc_forced = 0] (the scope's regimes keep all delays under
    {!Silkroad.Switch.barrier_deadline}). *)

val mutation_scopes : mutation -> scope list
(** The scopes a mutation is hunted in (e.g. {!Barrier_force_release}
    needs a stretched grid and a pathologically slow CPU). *)

(** {2 Realizing counterexamples} *)

val ce_trace : counterexample -> Harness.Packed_trace.t
val ce_controls : counterexample -> (float * Harness.Replay.control) list

val ce_script : counterexample -> string
(** A serve-mode protocol script ({!Control.Protocol} lines, [#]
    comments carrying the config knobs) that replays the control half of
    the schedule; feed it to [silkroad_cli serve --script] together with
    [ce_trace] and the config from [ce_cfg]. *)

val replay_on_switch : counterexample -> Harness.Replay.result
(** Replay trace + controls through {!Harness.Replay.run} ([Scalar])
    against real {!Silkroad.Switch}es built from [ce_cfg]. For a PCC
    counterexample of a non-model-only mutation, the expectation is
    [violations > 0]. *)

(** {2 Conformance with the real switch} *)

type obs = {
  ob_dips : Netcore.Endpoint.t option array;
      (** per packet event, in schedule order; [None] = dropped *)
  ob_completed : int;
  ob_failed : int;
  ob_forced : int;
  ob_repairs : int;
}

val conformance_flows : cfg:Silkroad.Config.t -> n:int -> Netcore.Five_tuple.t array
(** [n] flows to one VIP that are pairwise ConnTable-collision-free and
    Bloom-alias-free (checked empirically against scratch tables, with
    every other flow recorded — membership is monotone in the bit set,
    so this covers every reachable TransitTable state). On these flows
    the model and the switch must agree packet-for-packet. *)

val model_observe :
  cfg:Silkroad.Config.t ->
  flows:Netcore.Five_tuple.t array ->
  removed:Netcore.Endpoint.t array ->
  events:(float * event) list ->
  horizon:float ->
  obs

val switch_observe :
  ?conn_layout:Silkroad.Conn_table.layout ->
  cfg:Silkroad.Config.t ->
  flows:Netcore.Five_tuple.t array ->
  removed:Netcore.Endpoint.t array ->
  events:(float * event) list ->
  horizon:float ->
  unit ->
  obs
(** Drive a real {!Silkroad.Switch.process_flow} through the same
    schedule ({!Harness.Replay.Stepper}'s discipline: packets strictly
    between controls, update exclusion before request). [?conn_layout]
    selects the ConnTable layout (default [`Flat]); the conformance
    suite runs both and pins them to the model. *)

val model_vip : Netcore.Endpoint.t
val model_dips : unit -> Netcore.Endpoint.t array
(** The fixed single-VIP world every scope runs in. *)

(** {2 Reports} *)

type report = {
  rp_shipped : (scope * outcome) list;
  rp_mutants :
    (mutation * outcome * (counterexample * Harness.Replay.result option) option) list;
      (** per mutation: its outcome, and the first counterexample that
          kills it (with the real-switch replay unless model-only) *)
  rp_diags : Diag.t list;
}

val run_verify : ?scopes:scope list -> ?mutants:mutation list -> unit -> report
(** The [silkroad_cli verify --model] entry point: exhaust the shipped
    scopes, then hunt every mutation. Diags: [model.scope] info lines
    with exploration counts; [model.pcc] / [model.recycle] /
    [model.forced] errors if shipped semantics misbehaves;
    [model.mutant] info when a mutation is killed (counterexample found
    {e and} its replay breaks PCC on the real switch), error when one
    survives. *)
