(** Inter-procedural Domain-safety (race) analysis — [verify --races].

    The sharded replay path ({!Harness.Replay} with
    [Sharded {parallel = true}]) runs one {!Silkroad.Switch} per Domain;
    the serve-mode control plane ({!Control.Session}) mutates switches a
    replay may be stepping. Any {e module-toplevel} mutable value that
    code on those call paths touches is shared by every Domain and is a
    data race waiting for a schedule. PR 3's [det.domain-unsafe] lint
    flagged toplevel mutable {e definitions} in a fixed directory list —
    syntactic, per-file, and blind to calls. This analysis replaces it:
    it loads the compiler's typed trees ([.cmt] files), builds the call
    graph of every module-level binding, and walks it from the Domain
    entry points, reporting the mutable globals that are actually
    {e reachable} — inter-procedurally, across libraries, with a
    root-to-access witness chain on every finding.

    {2 Classification}

    A module-level [let] is a {e mutable global} when its right-hand
    side eagerly (outside [fun]/[function]/[lazy]) builds mutable state:
    applies a known allocator ([ref], [Hashtbl.create], [Array.make],
    [Bytes.create], [Buffer.create], [Queue.create], [Stack.create],
    [Random.State.make], [Telemetry.Registry.create], ...), writes a
    record literal with a [mutable] field, writes an array literal — or
    applies a function that (transitively) does one of those, resolved
    by a fixpoint over the call graph. Values built with an allowlisted
    synchronisation discipline ([Atomic.make], [Mutex.create],
    [Condition.create], [Semaphore.*], [Domain.DLS.new_key]) are
    {e synchronized} and reported as {e info}, not errors.

    {2 Rules}

    - [domain.shared-mutable] ({e error}): a mutable global reachable
      from a Domain entry point, with the reference chain.
    - [domain.synchronized] ({e info}): a synchronized global on the
      same paths — the surface a reviewer audits.
    - [domain.no-root] ({e warning}): a configured entry point matched
      no analyzed binding (the analysis is running blind; typically the
      root was renamed or its [.cmt] was not built).
    - [domain.no-cmt] ({e error}): no typed trees found at all.

    A file opts out with the same attribute Source_lint honours:
    [[@@@silkroad.allow "domain.shared-mutable"]] (file-wide; checked on
    both the defining and the accessing compilation unit). *)

val default_roots : string list
(** The Domain entry points: ["Harness.Replay.Stepper"],
    ["Control.Session"], ["Silkroad.Switch.process_flow"],
    ["Silkroad.Switch.process_batch"]. A binding is a root when its
    fully qualified name equals a root or extends it by [.]-components
    (so a module prefix roots every binding under it). *)

type result = {
  diags : Diag.t list;
  bindings : int;  (** module-level bindings analyzed *)
  units : int;  (** compilation units loaded *)
  roots_matched : int;  (** bindings matching a root prefix *)
  reachable : int;  (** bindings reachable from the roots *)
  shared_mutable : int;  (** reachable mutable globals (errors) *)
  synchronized : int;  (** reachable synchronized globals (infos) *)
}

val analyze_impls : ?roots:string list -> (string * string) list -> result
(** [analyze_impls [(unit_name, source); ...]] typechecks each source
    text in-process (against the standard library only — fixtures;
    cross-module tests use nested modules inside one unit) and analyzes
    the typed trees. [unit_name] may be dotted (["Harness.Replay"]) and
    prefixes every binding in that unit. Raises [Failure] on a fixture
    that does not parse or typecheck. *)

val analyze_root : ?roots:string list -> root:string -> unit -> result
(** Analyze the built tree: loads every [.cmt] under [root/lib]
    (including the [.objs] directories dune hides), mangled unit names
    canonicalized ([Silkroad__Switch] → [Silkroad.Switch]). Requires a
    prior [dune build]; reports [domain.no-cmt] when nothing is found. *)
