open Parsetree

let rules =
  [ ("det.wall-clock", "wall-clock read outside the allowlisted clock module");
    ("det.self-init", "self-seeded PRNG");
    ("det.poly-hash", "polymorphic Hashtbl.hash");
    ("det.poly-compare", "polymorphic compare/(=) passed as a value");
    ("det.hashtbl-order", "Hashtbl iteration order escaping into formatted output");
    ("src.parse", "file does not parse") ]

let loc_of (l : Location.t) =
  let p = l.Location.loc_start in
  { Diag.file = p.Lexing.pos_fname; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let path_of lid = try String.concat "." (Longident.flatten lid) with _ -> ""

(* [@@@silkroad.allow "rule"] anywhere in the file suppresses the rule
   file-wide *)
let allowed_rules str =
  let allowed = ref [] in
  let attribute _ (a : attribute) =
    if a.attr_name.Location.txt = "silkroad.allow" then
      match a.attr_payload with
      | PStr
          [ { pstr_desc =
                Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
              _ } ] ->
        allowed := s :: !allowed
      | _ -> ()
  in
  let it = { Ast_iterator.default_iterator with attribute } in
  it.Ast_iterator.structure it str;
  !allowed

let wall_clock = [ "Sys.time"; "Stdlib.Sys.time"; "Unix.time"; "Unix.gettimeofday" ]
let self_init = [ "Random.self_init"; "Random.State.make_self_init"; "Stdlib.Random.self_init" ]
let poly_hash =
  [ "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash" ]
let poly_compare = [ "compare"; "Stdlib.compare"; "="; "<>" ]

let sinks =
  [ "Format.fprintf"; "Format.printf"; "Format.eprintf"; "Format.asprintf"; "Format.kasprintf";
    "Format.sprintf"; "Printf.printf"; "Printf.sprintf"; "Printf.eprintf"; "Printf.fprintf";
    "Buffer.add_string"; "Buffer.add_char"; "output_string"; "print_string"; "print_endline" ]

let sorts = [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq"; "Array.sort" ]

let hashtbl_iters p =
  (* any [X.Hashtbl.iter]-shaped path, including plain [Hashtbl.iter] *)
  List.exists
    (fun suffix -> p = "Hashtbl" ^ suffix || Filename.check_suffix p (".Hashtbl" ^ suffix))
    [ ".iter"; ".fold" ]

let lint_structure ~file str =
  let diags = ref [] in
  let add ~loc rule severity msg hint =
    diags := Diag.v ~loc:(loc_of loc) ~hint ~rule ~severity msg :: !diags
  in
  ignore file;
  (* does a sink/sort identifier occur anywhere under [e]? *)
  let scan_for idents e =
    let found = ref false in
    let expr it x =
      (match x.pexp_desc with
       | Pexp_ident { txt; _ } when List.mem (path_of txt) idents -> found := true
       | _ -> ());
      Ast_iterator.default_iterator.expr it x
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.Ast_iterator.expr it e;
    !found
  in
  let check_structure_item top =
    (* [nargs]: how many arguments the identifier is applied to here; 0
       means it occurs as a value. A comparator needs both operands to
       stay an in-run scalar — partially applied [( = ) x] still
       escapes as a polymorphic closure. *)
    let check_ident ~nargs p loc =
      if List.mem p wall_clock then
        add ~loc "det.wall-clock" Diag.Error
          (Printf.sprintf "wall-clock read %s: simulated time comes from the harness" p)
          "route timing through Harness.Stopwatch (allowlisted) or take [now] as an argument"
      else if List.mem p self_init then
        add ~loc "det.self-init" Diag.Error
          (Printf.sprintf "%s seeds from the environment" p)
          "seed explicitly (Config.seed, Simnet.Prng.create ~seed)"
      else if List.mem p poly_hash then
        add ~loc "det.poly-hash" Diag.Error
          (Printf.sprintf "%s hashes arbitrary structure" p)
          "hash an explicit key (e.g. Five_tuple.digest) instead"
      else if nargs < 2 && List.mem p poly_compare then
        add ~loc "det.poly-compare" Diag.Error
          (Printf.sprintf "polymorphic %s passed as a value orders by physical structure"
             (if p = "=" || p = "<>" then "(" ^ p ^ ")" else p))
          "pass an explicit comparator (String.compare, Int.compare, ...)"
    in
    let expr it e =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> check_ident ~nargs:0 (path_of txt) loc
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        check_ident ~nargs:(List.length args) (path_of txt) loc;
        let p = path_of txt in
        (* order leaks when the callback itself writes to a sink (one
           write per entry, in table order) with no sort in sight *)
        if
          hashtbl_iters p
          && List.exists (fun (_, a) -> scan_for sinks a) args
          && not (List.exists (fun (_, a) -> scan_for sorts a) args)
        then
          add ~loc "det.hashtbl-order" Diag.Warning
            "Hashtbl iteration order is seed-dependent and the callback writes formatted output"
            "collect entries, sort, then render";
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
      | _ -> Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.Ast_iterator.structure_item it top
  in
  List.iter check_structure_item str;
  let allowed = allowed_rules str in
  List.filter (fun (d : Diag.t) -> not (List.mem d.Diag.rule allowed)) (List.rev !diags)

let lint_string ?(file = "<string>") src =
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = file; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  match Parse.implementation lexbuf with
  | str -> lint_structure ~file str
  | exception _ ->
    [ Diag.v ~loc:{ Diag.file; line = 1; col = 0 } ~rule:"src.parse" ~severity:Diag.Error
        "file does not parse as OCaml" ]

let lint_file path =
  let src = In_channel.with_open_bin path In_channel.input_all in
  lint_string ~file:path src

let rec walk acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    let entries = List.sort String.compare (Array.to_list entries) in
    List.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '_' || name.[0] = '.' then acc
        else
          let p = Filename.concat dir name in
          if (try Sys.is_directory p with Sys_error _ -> false) then walk acc p
          else if Filename.check_suffix name ".ml" then p :: acc
          else acc)
      acc entries

let lint_dirs dirs =
  let files = List.sort String.compare (List.fold_left walk [] dirs) in
  List.concat_map lint_file files

let default_dirs ~root =
  List.map (Filename.concat root) [ "lib"; "bin"; "test"; "bench" ]
