(* Inter-procedural Domain-safety analysis over compiler-libs typed
   trees. See the .mli for the model; the shape of the code:

     load .cmt / typecheck fixture source
       -> collect  : one node per module-level binding
                     (refs with site locations, eager allocator calls,
                      eager applications, allocator-anywhere flag)
       -> fixpoint : propagate "calling this allocates mutable state"
                     through the call graph, then classify plain value
                     bindings that eagerly apply such functions
       -> BFS      : from root-matching bindings, parent pointers give
                     the witness chain; emit diags at the access site *)

let default_roots =
  [
    "Harness.Replay.Stepper";
    "Control.Session";
    "Silkroad.Switch.process_flow";
    "Silkroad.Switch.process_batch";
  ]

(* ----- names ----- *)

(* "Silkroad__Switch" -> "Silkroad.Switch"; "Silkroad__" -> "Silkroad";
   applied per dot-component of a Path.name *)
let canon_component c =
  match String.index_opt c '_' with
  | None -> c
  | Some _ ->
    let n = String.length c in
    if n > 2 && String.sub c (n - 2) 2 = "__" then String.sub c 0 (n - 2)
    else
      (* first "__" splits library prefix from unit name *)
      let rec find i =
        if i + 1 >= n then None
        else if c.[i] = '_' && c.[i + 1] = '_' then Some i
        else find (i + 1)
      in
      (match find 0 with
       | None -> c
       | Some i ->
         let unit_part = String.sub c (i + 2) (n - i - 2) in
         String.sub c 0 i ^ "." ^ String.capitalize_ascii unit_part)

let canon_name s = String.concat "." (List.map canon_component (String.split_on_char '.' s))
let canon_path p = canon_name (Path.name p)

let strip_stdlib s =
  if String.length s > 7 && String.sub s 0 7 = "Stdlib." then String.sub s 7 (String.length s - 7)
  else s

let unsafe_makers =
  [
    "ref";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.of_seq";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.make_matrix";
    "Array.copy"; "Array.of_list"; "Array.of_seq"; "Array.sub"; "Array.append"; "Array.concat";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.of_string"; "Bytes.copy";
    "Buffer.create"; "Queue.create"; "Queue.copy"; "Stack.create";
    "Random.State.make"; "Random.State.copy";
    "Telemetry.Registry.create";
  ]

let safe_makers =
  [
    "Atomic.make";
    "Mutex.create";
    "Condition.create";
    "Semaphore.Counting.make";
    "Semaphore.Binary.make";
    "Domain.DLS.new_key";
  ]

let is_unsafe_maker n = List.mem (strip_stdlib n) unsafe_makers
let is_safe_maker n = List.mem (strip_stdlib n) safe_makers

(* ----- nodes ----- *)

type storage =
  | Fn  (** binding whose RHS is syntactically a function *)
  | Mutable of string  (** eagerly builds mutable state (the allocator) *)
  | Synchronized of string
  | Plain

type node = {
  qname : string;
  unit_name : string;  (** canonical unit the binding lives in *)
  file : string;
  def_loc : Diag.location;
  mutable storage : storage;
  refs : (string * string list * Diag.location) list;
      (** (raw name, enclosing prefixes innermost-first, site) *)
  eager_applies : string list;  (** raw names applied outside fun/lazy *)
  prefixes : string list;  (** enclosing prefixes for resolving applies *)
  maker_anywhere : bool;  (** allocator call at any depth of the RHS *)
}

type unit_acc = {
  u_name : string;
  u_file : string;
  mutable u_allow : string list;
  mutable u_nodes : node list;
}

let loc_of (l : Location.t) =
  {
    Diag.file = l.Location.loc_start.Lexing.pos_fname;
    line = l.Location.loc_start.Lexing.pos_lnum;
    col = l.Location.loc_start.Lexing.pos_cnum - l.Location.loc_start.Lexing.pos_bol;
  }

let fix_file file (l : Diag.location) = if l.Diag.file = "" then { l with Diag.file = file } else l

(* ----- collecting one binding's RHS ----- *)

type rhs_info = {
  mutable i_refs : (string * string list * Diag.location) list;
  mutable i_eager_makers : (string * Diag.location) list;
  mutable i_eager_safe : string list;
  mutable i_eager_applies : string list;
  mutable i_maker_anywhere : bool;
}

let scan_rhs ~file ~prefixes ~scopes (expr : Typedtree.expression) =
  let info =
    { i_refs = []; i_eager_makers = []; i_eager_safe = []; i_eager_applies = [];
      i_maker_anywhere = false }
  in
  let depth = ref 0 in
  let add_ref name loc =
    let resolved =
      if String.contains name '.' then name
      else match Hashtbl.find_opt scopes name with Some q -> q | None -> name
    in
    info.i_refs <- (resolved, prefixes, fix_file file (loc_of loc)) :: info.i_refs
  in
  let record_maker name loc =
    info.i_maker_anywhere <- true;
    if !depth = 0 then info.i_eager_makers <- (name, fix_file file (loc_of loc)) :: info.i_eager_makers
  in
  let rec iter =
    let open Tast_iterator in
    {
      default_iterator with
      expr =
        (fun sub e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (path, lid, _) ->
            add_ref (canon_path path) lid.Location.loc
          | Typedtree.Texp_function _ | Typedtree.Texp_lazy _ ->
            incr depth;
            default_iterator.expr sub e;
            decr depth
          | Typedtree.Texp_apply ({ Typedtree.exp_desc = Typedtree.Texp_ident (path, lid, _); _ }, args)
            when List.exists (function _, Some _ -> true | _ -> false) args ->
            let name = canon_path path in
            if is_unsafe_maker name then record_maker name lid.Location.loc
            else if is_safe_maker name then begin
              if !depth = 0 then info.i_eager_safe <- name :: info.i_eager_safe
            end
            else if !depth = 0 then info.i_eager_applies <- name :: info.i_eager_applies;
            add_ref name lid.Location.loc;
            List.iter (function _, Some a -> iter.expr iter a | _ -> ()) args
          | Typedtree.Texp_record { fields; _ }
            when Array.exists
                   (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
                   fields ->
            record_maker "{mutable}" e.Typedtree.exp_loc;
            default_iterator.expr sub e
          | Typedtree.Texp_array _ ->
            record_maker "[|...|]" e.Typedtree.exp_loc;
            default_iterator.expr sub e
          | _ -> default_iterator.expr sub e);
    }
  in
  iter.Tast_iterator.expr iter expr;
  info

let is_function (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with Typedtree.Texp_function _ -> true | _ -> false

(* ----- walking a unit's structure ----- *)

let attr_allow (attr : Parsetree.attribute) =
  if attr.Parsetree.attr_name.Location.txt = "silkroad.allow" then
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [
          {
            Parsetree.pstr_desc =
              Parsetree.Pstr_eval
                ({ Parsetree.pexp_desc = Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some s
    | _ -> None
  else None

let rec walk_structure acc ~prefixes ~scopes (str : Typedtree.structure) =
  List.iter (walk_item acc ~prefixes ~scopes) str.Typedtree.str_items

and walk_item acc ~prefixes ~scopes (item : Typedtree.structure_item) =
  match item.Typedtree.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        match vb.Typedtree.vb_pat.Typedtree.pat_desc with
        (* [let x = e] is Tpat_var; [let x : t = e] comes back as
           Tpat_alias over the constrained pattern *)
        | Typedtree.Tpat_var (_, name) | Typedtree.Tpat_alias (_, _, name) ->
          let base = name.Location.txt in
          let qname = List.hd prefixes ^ "." ^ base in
          Hashtbl.replace scopes base qname;
          let info = scan_rhs ~file:acc.u_file ~prefixes ~scopes vb.Typedtree.vb_expr in
          let fn = is_function vb.Typedtree.vb_expr in
          let storage =
            if fn then Fn
            else
              match info.i_eager_makers with
              | (mk, _) :: _ -> Mutable mk
              | [] -> if info.i_eager_safe <> [] then Synchronized (List.hd info.i_eager_safe) else Plain
          in
          acc.u_nodes <-
            {
              qname;
              unit_name = acc.u_name;
              file = acc.u_file;
              def_loc = fix_file acc.u_file (loc_of vb.Typedtree.vb_loc);
              storage;
              refs = info.i_refs;
              eager_applies = info.i_eager_applies;
              prefixes;
              maker_anywhere = info.i_maker_anywhere;
            }
            :: acc.u_nodes
        | _ -> ())
      vbs
  | Typedtree.Tstr_module mb -> walk_module_binding acc ~prefixes ~scopes mb
  | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module_binding acc ~prefixes ~scopes) mbs
  | Typedtree.Tstr_include incl -> walk_module_expr acc ~prefixes ~scopes incl.Typedtree.incl_mod
  | Typedtree.Tstr_attribute attr -> (
    match attr_allow attr with Some r -> acc.u_allow <- r :: acc.u_allow | None -> ())
  | _ -> ()

and walk_module_binding acc ~prefixes ~scopes (mb : Typedtree.module_binding) =
  match mb.Typedtree.mb_name.Location.txt with
  | None -> ()
  | Some name ->
    let prefixes = (List.hd prefixes ^ "." ^ name) :: prefixes in
    walk_module_expr acc ~prefixes ~scopes mb.Typedtree.mb_expr

and walk_module_expr acc ~prefixes ~scopes (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure str ->
    (* nested scope: copy so inner bindings do not leak outward, but
       outer bindings stay visible inside *)
    walk_structure acc ~prefixes ~scopes:(Hashtbl.copy scopes) str
  | Typedtree.Tmod_constraint (me, _, _, _) -> walk_module_expr acc ~prefixes ~scopes me
  | _ -> ()

let walk_unit ~unit_name ~file (str : Typedtree.structure) =
  let acc = { u_name = unit_name; u_file = file; u_allow = []; u_nodes = [] } in
  walk_structure acc ~prefixes:[ unit_name ] ~scopes:(Hashtbl.create 64) str;
  acc.u_nodes <- List.rev acc.u_nodes;
  acc

(* ----- the graph ----- *)

let resolve_ref graph (name, prefixes, _loc) =
  if Hashtbl.mem graph name then Some name
  else
    List.find_map
      (fun p ->
        let q = p ^ "." ^ name in
        if Hashtbl.mem graph q then Some q else None)
      prefixes

type result = {
  diags : Diag.t list;
  bindings : int;
  units : int;
  roots_matched : int;
  reachable : int;
  shared_mutable : int;
  synchronized : int;
}

let matches_root qname root =
  qname = root
  || String.length qname > String.length root
     && String.sub qname 0 (String.length root + 1) = root ^ "."

let analyze ~roots (units : unit_acc list) =
  let graph : (string, node) Hashtbl.t = Hashtbl.create 512 in
  let allow_of_unit : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun u ->
      Hashtbl.replace allow_of_unit u.u_name u.u_allow;
      List.iter (fun n -> Hashtbl.replace graph n.qname n) u.u_nodes)
    units;
  let bindings = Hashtbl.length graph in
  (* fixpoint: "applying this binding allocates mutable state" *)
  let allocates : (string, bool) Hashtbl.t = Hashtbl.create 512 in
  let rec allocates_q stack q =
    match Hashtbl.find_opt allocates q with
    | Some b -> b
    | None ->
      if List.mem q stack then false
      else (
        match Hashtbl.find_opt graph q with
        | None -> false
        | Some n ->
          let b =
            n.maker_anywhere
            || List.exists
                 (fun r ->
                   match resolve_ref graph r with
                   | Some q' when q' <> q -> allocates_q (q :: stack) q'
                   | Some _ | None -> false)
                 n.refs
          in
          Hashtbl.replace allocates q b;
          b)
  in
  Hashtbl.iter (fun q _ -> ignore (allocates_q [] q)) graph;
  (* plain value bindings that eagerly apply an allocating function *)
  Hashtbl.iter
    (fun _ n ->
      match n.storage with
      | Plain ->
        let hit =
          List.find_map
            (fun name ->
              match resolve_ref graph (name, n.prefixes, n.def_loc) with
              | Some q when allocates_q [] q -> Some q
              | Some _ | None -> None)
            n.eager_applies
        in
        (match hit with Some q -> n.storage <- Mutable (q ^ " ()") | None -> ())
      | Fn | Mutable _ | Synchronized _ -> ())
    graph;
  (* BFS from the roots *)
  let root_nodes =
    Hashtbl.fold
      (fun q n acc -> if List.exists (matches_root q) roots then (q, n) :: acc else acc)
      graph []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let parent : (string, string option * Diag.location option) Hashtbl.t = Hashtbl.create 512 in
  let order = Queue.create () in
  List.iter
    (fun (q, _) ->
      if not (Hashtbl.mem parent q) then begin
        Hashtbl.replace parent q (None, None);
        Queue.add q order
      end)
    root_nodes;
  let reachable = ref [] in
  let rec drain () =
    match Queue.take_opt order with
    | None -> ()
    | Some q ->
      reachable := q :: !reachable;
      let n = Hashtbl.find graph q in
      List.iter
        (fun ((_, _, loc) as r) ->
          match resolve_ref graph r with
          | Some q' when not (Hashtbl.mem parent q') ->
            Hashtbl.replace parent q' (Some q, Some loc);
            Queue.add q' order
          | Some _ | None -> ())
        (List.rev n.refs);
      drain ()
  in
  drain ();
  let chain_of q =
    let rec go q acc =
      match Hashtbl.find_opt parent q with
      | Some (Some p, _) -> go p (q :: acc)
      | Some (None, _) | None -> q :: acc
    in
    go q []
  in
  let short q =
    match String.rindex_opt q '.' with
    | Some i -> String.sub q (i + 1) (String.length q - i - 1)
    | None -> q
  in
  let allowed rule n accessor_unit =
    let has u = match Hashtbl.find_opt allow_of_unit u with Some l -> List.mem rule l | None -> false in
    has n.unit_name || has accessor_unit
  in
  let diags = ref [] in
  let shared = ref 0 and sync = ref 0 in
  List.iter
    (fun q ->
      let n = Hashtbl.find graph q in
      let report rule severity what hint =
        let chain = chain_of q in
        let accessor =
          match Hashtbl.find_opt parent q with
          | Some (Some p, _) -> (Hashtbl.find graph p).unit_name
          | Some (None, _) | None -> n.unit_name
        in
        if not (allowed rule n accessor) then begin
          (match rule with
           | "domain.shared-mutable" -> incr shared
           | _ -> incr sync);
          let loc =
            match Hashtbl.find_opt parent q with
            | Some (_, Some l) -> l
            | Some (_, None) | None -> n.def_loc
          in
          diags :=
            Diag.v ~loc ~rule ~severity ?hint
              (Printf.sprintf "%s: %s (%s) reachable from Domain entry %s via %s" what q
                 (match n.storage with
                  | Mutable mk | Synchronized mk -> mk
                  | Fn | Plain -> "?")
                 (List.hd chain)
                 (String.concat " -> " (List.map short chain)))
            :: !diags
        end
      in
      match n.storage with
      | Mutable _ ->
        report "domain.shared-mutable" Diag.Error "shared mutable state"
          (Some
             "make it shard-local, guard it with Atomic/Mutex/Domain.DLS, or opt the file out \
              with [@@@silkroad.allow \"domain.shared-mutable\"]")
      | Synchronized _ ->
        report "domain.synchronized" Diag.Info "synchronized shared state" None
      | Fn | Plain -> ())
    (List.rev !reachable);
  List.iter
    (fun root ->
      if not (List.exists (fun (q, _) -> matches_root q root) root_nodes) then
        diags :=
          Diag.v ~rule:"domain.no-root" ~severity:Diag.Warning
            ~hint:"update Domain_safety.default_roots or build the library that defines it"
            (Printf.sprintf "Domain entry point %s matched no analyzed binding" root)
          :: !diags)
    roots;
  {
    diags = List.sort Diag.compare !diags;
    bindings;
    units = List.length units;
    roots_matched = List.length root_nodes;
    reachable = List.length !reachable;
    shared_mutable = !shared;
    synchronized = !sync;
  }

(* ----- front ends ----- *)

let typecheck_impl ~unit_name source =
  Clflags.dont_write_files := true;
  ignore (Warnings.parse_options false "-a");
  Compmisc.init_path ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf (unit_name ^ ".ml");
  try
    let parsed = Parse.implementation lexbuf in
    let str, _, _, _, _ = Typemod.type_structure env parsed in
    str
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        Format.asprintf "%a" Location.print_report report
      | Some `Already_displayed | None -> Printexc.to_string exn
    in
    failwith (Printf.sprintf "Domain_safety: fixture %s does not typecheck: %s" unit_name msg)

let analyze_impls ?(roots = default_roots) sources =
  let units =
    List.map
      (fun (unit_name, source) ->
        let str = typecheck_impl ~unit_name source in
        walk_unit ~unit_name ~file:(unit_name ^ ".ml") str)
      sources
  in
  analyze ~roots units

let rec find_cmts dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc e ->
        let p = Filename.concat dir e in
        if Sys.is_directory p then if e = ".git" then acc else acc @ find_cmts p
        else if Filename.check_suffix e ".cmt" then acc @ [ p ]
        else acc)
      [] entries

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let unit_name = canon_name cmt.Cmt_format.cmt_modname in
      let file =
        match cmt.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
      in
      Some (walk_unit ~unit_name ~file str)
    | _ -> None)

let analyze_root ?(roots = default_roots) ~root () =
  (* from a source checkout the typed trees live under _build/default;
     from inside a dune sandbox [root] already is _build/default *)
  let candidates =
    [
      Filename.concat (Filename.concat (Filename.concat root "_build") "default") "lib";
      Filename.concat root "lib";
      root;
    ]
  in
  let cmts =
    List.fold_left
      (fun acc d -> if acc = [] && Sys.file_exists d then find_cmts d else acc)
      [] candidates
  in
  let units = List.filter_map load_cmt cmts in
  if units = [] then
    {
      diags =
        [
          Diag.v ~rule:"domain.no-cmt" ~severity:Diag.Error
            ~hint:"run `dune build` first; the analysis reads _build/**/*.cmt"
            (Printf.sprintf "no .cmt typed trees found under %s" root);
        ];
      bindings = 0;
      units = 0;
      roots_matched = 0;
      reachable = 0;
      shared_mutable = 0;
      synchronized = 0;
    }
  else analyze ~roots units
