module P = Asic.Pipeline
module R = Asic.Resources

let rule_of_failure (f : P.failure) =
  match f.P.failed_class with
  | None -> "pipe.stages"
  | Some c -> (
    match c with
    | P.Crossbar -> "pipe.crossbar"
    | P.Sram -> "pipe.sram"
    | P.Tcam -> "pipe.tcam"
    | P.Vliw -> "pipe.vliw"
    | P.Hash -> "pipe.hash"
    | P.Salu -> "pipe.salu"
    | P.Phv -> "pipe.phv")

let mb = Silkroad.Memory_model.mb

(* total SRAM a configuration's items ask for — used to price out the
   digest-width knob numerically instead of guessing *)
let sram_of_config cfg =
  (R.sum (List.map (fun (i : P.item) -> i.P.needs) (Silkroad.Program.items_of_config cfg)))
    .R.sram_bits

(* an actionable, numeric remediation for the binding resource class *)
let hint ?cfg (f : P.failure) =
  let item = f.P.failed_item in
  match (f.P.failed_class, cfg) with
  | Some P.Sram, Some cfg when item = "ConnTable" ->
    let d = cfg.Silkroad.Config.digest_bits in
    (* entries pack into fixed SRAM words, so savings appear only at
       packing thresholds: scan for the widest digest that crosses one *)
    let rec widest_saving d' =
      if d' < 8 then None
      else
        let saved = sram_of_config cfg - sram_of_config { cfg with Silkroad.Config.digest_bits = d' } in
        if saved > 0 then Some (d', saved) else widest_saving (d' - 1)
    in
    let found = widest_saving (d - 1) in
    let d', saved = match found with Some (d', s) -> (d', s) | None -> (d, 0) in
    let deficit = f.P.needed - f.P.available in
    if saved > 0 then
      Some
        (Printf.sprintf
           "digest width %d->%d saves %.1f MB (deficit %.1f MB); conn_table_rows scales SRAM linearly"
           d d' (mb saved) (mb deficit))
    else
      Some
        (Printf.sprintf "shrink conn_table_rows/ways: deficit is %.1f MB" (mb deficit))
  | Some P.Sram, _ ->
    Some (Printf.sprintf "deficit is %.1f MB of stage SRAM" (mb (f.P.needed - f.P.available)))
  | Some P.Salu, Some cfg when item = "TransitTable" ->
    Some
      (Printf.sprintf
         "transit_hashes=%d needs one stateful ALU per Bloom bank in a single stage; at most %d fit"
         cfg.Silkroad.Config.transit_hashes f.P.available)
  | Some P.Hash, Some cfg when item = "ConnTable" ->
    let k = cfg.Silkroad.Config.conn_table_stages in
    let fit = if f.P.needed > 0 then f.P.available * k / f.P.needed else k in
    Some
      (Printf.sprintf
         "%d cuckoo stages hash %d bits of index; %d stage(s) would fit the %d free bits (or narrow the digest)"
         k f.P.needed (Int.max 1 fit) f.P.available)
  | Some P.Crossbar, _ ->
    Some "narrow the match key (digest the 5-tuple earlier) or split the table"
  | Some P.Tcam, _ -> Some "move ternary matches to exact-match SRAM tables"
  | Some P.Vliw, _ -> Some "fold actions together; VLIW slots are per stage"
  | Some P.Hash, _ -> Some "fewer hash ways or a narrower index per stage"
  | Some P.Salu, _ -> Some "register banks are one stateful ALU each; reduce banks per stage"
  | Some P.Phv, Some cfg ->
    Some
      (Printf.sprintf
         "PHV is chip-wide: digest_bits=%d and version_bits=%d metadata are the knobs"
         cfg.Silkroad.Config.digest_bits cfg.Silkroad.Config.version_bits)
  | Some P.Phv, None -> Some "reduce per-packet metadata: PHV is a chip-wide budget"
  | None, _ -> Some "dependency chain is deeper than the pipeline; merge tables or cut a dependency"

let peak_sram_pct (r : P.report) =
  let b = float_of_int r.P.chip.P.stage_budget.R.sram_bits in
  Array.fold_left
    (fun acc (u : R.t) -> Float.max acc (100. *. float_of_int u.R.sram_bits /. b))
    0. r.P.per_stage

let check_items ?cfg chip items =
  let r = P.allocate chip items in
  let diags =
    match r.P.failure with
    | Some f ->
      [ Diag.v ~rule:(rule_of_failure f) ~severity:Diag.Error ?hint:(hint ?cfg f)
          (Format.asprintf "%a" P.pp_failure f) ]
    | None ->
      [ Diag.v ~rule:"pipe.ok" ~severity:Diag.Info
          (Printf.sprintf
             "feasible on %s: %d items placed, peak stage SRAM %.0f%%, chip PHV %d/%d bits"
             chip.P.chip_name (List.length r.P.placements) (peak_sram_pct r) r.P.phv_used
             chip.P.chip_phv_bits) ]
  in
  (r, diags)

let check_config ?vips cfg =
  check_items ~cfg (Silkroad.Program.chip ()) (Silkroad.Program.items_of_config ?vips cfg)

(* ----- network-wide mode (§5.3) ----- *)

let mb_bits m = int_of_float (m *. 8. *. 1024. *. 1024.)

let default_layers =
  [ { Silkroad.Assignment.layer_name = "ToR"; switches = 48; sram_budget_bits = mb_bits 25.;
      capacity_gbps = 800. };
    { Silkroad.Assignment.layer_name = "Agg"; switches = 16; sram_budget_bits = mb_bits 50.;
      capacity_gbps = 3200. };
    { Silkroad.Assignment.layer_name = "Core"; switches = 4; sram_budget_bits = mb_bits 80.;
      capacity_gbps = 6400. } ]

let default_demands ?(cfg = Silkroad.Config.default) ~vips () =
  let conn_bits connections =
    Silkroad.Memory_model.conn_table_bits ~layout:Silkroad.Memory_model.Digest_version
      ~ipv6:false ~digest_bits:cfg.Silkroad.Config.digest_bits
      ~version_bits:cfg.Silkroad.Config.version_bits ~connections
  in
  List.init vips (fun i ->
      let connections, gbps =
        if i mod 16 = 0 then (2_000_000, 100.)
        else if i mod 4 = 0 then (400_000, 12.)
        else (50_000, 1.5)
      in
      { Silkroad.Assignment.vip = Netcore.Endpoint.v4 20 0 (i / 250) (1 + (i mod 250)) 80;
        conn_bits = conn_bits connections;
        traffic_gbps = gbps })

let check_network ?(sram_warn = 0.9) ~layers ~vips () =
  let p = Silkroad.Assignment.assign ~layers ~vips in
  let unplaced =
    List.map
      (fun v ->
        Diag.v ~rule:"net.unplaced" ~severity:Diag.Error
          ~hint:"add SilkRoad switches to a layer, raise its LB SRAM budget, or shrink the VIP's ConnTable share"
          (Printf.sprintf "VIP %s fits no layer's per-switch SRAM/traffic budget"
             (Netcore.Endpoint.to_string v)))
      p.Silkroad.Assignment.unplaced
  in
  let headroom =
    if p.Silkroad.Assignment.max_sram_utilization > sram_warn then
      [ Diag.v ~rule:"net.sram-headroom" ~severity:Diag.Warning
          ~hint:"rebalance VIPs toward layers with slack before the next DIP-pool growth"
          (Printf.sprintf "max per-switch SRAM utilization %.0f%% exceeds %.0f%% headroom threshold"
             (100. *. p.Silkroad.Assignment.max_sram_utilization) (100. *. sram_warn)) ]
    else []
  in
  let ok =
    if unplaced = [] && headroom = [] then
      [ Diag.v ~rule:"net.ok" ~severity:Diag.Info
          (Printf.sprintf "%d VIPs placed across %d layers, max per-switch SRAM utilization %.0f%%"
             (List.length p.Silkroad.Assignment.assignment) (List.length layers)
             (100. *. p.Silkroad.Assignment.max_sram_utilization)) ]
    else []
  in
  (p, unplaced @ headroom @ ok)
