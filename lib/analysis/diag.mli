(** Structured diagnostics — the currency of [silkroad-lint].

    Every checker (pipeline feasibility, network-wide assignment, the
    determinism source lint) reports findings as {!t}: a stable rule
    id, a severity, an optional source location, a message, and — when
    the checker can compute one — an actionable fix hint. The CLI
    renders them as text or JSON and exits non-zero iff any
    [Error]-level finding is present. *)

type severity = Error | Warning | Info

type location = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
}

type t = {
  rule : string;  (** stable id, e.g. ["pipe.sram"], ["det.wall-clock"] *)
  severity : severity;
  loc : location option;
  message : string;
  hint : string option;  (** actionable remediation, one line *)
}

val v : ?loc:location -> ?hint:string -> rule:string -> severity:severity -> string -> t
(** [v ~rule ~severity message] builds a diagnostic. *)

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val compare : t -> t -> int
(** Deterministic order: location (file, line, col; located before
    unlocated), then rule, then message. *)

val errors : t list -> int
(** Count of [Error]-level findings. *)

val warnings : t list -> int

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity[rule]: message], with the hint on an
    indented [hint:] line when present. *)

val pp_list : Format.formatter -> t list -> unit
(** Sorted diagnostics followed by a [N error(s), M warning(s)]
    summary line. *)

val to_json : t -> Telemetry.Json.t

val list_to_json : t list -> Telemetry.Json.t
(** [{ "diagnostics": [...], "errors": n, "warnings": m }] with the
    diagnostics sorted by {!compare}. *)
