type severity = Error | Warning | Info

type location = { file : string; line : int; col : int }

type t = {
  rule : string;
  severity : severity;
  loc : location option;
  message : string;
  hint : string option;
}

let v ?loc ?hint ~rule ~severity message = { rule; severity; loc; message; hint }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let compare_loc a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> 1 (* unlocated findings sort after located ones *)
  | Some _, None -> -1
  | Some a, Some b -> (
    match String.compare a.file b.file with
    | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
    | c -> c)

let order a b =
  match compare_loc a.loc b.loc with
  | 0 -> ( match String.compare a.rule b.rule with 0 -> String.compare a.message b.message | c -> c)
  | c -> c

let compare = order

let errors ds = List.length (List.filter (fun d -> d.severity = Error) ds)
let warnings ds = List.length (List.filter (fun d -> d.severity = Warning) ds)

let pp ppf d =
  (match d.loc with
   | Some l -> Format.fprintf ppf "%s:%d:%d: " l.file l.line l.col
   | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.rule d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf "@,  hint: %s" h
  | None -> ()

let pp_list ppf ds =
  let ds = List.sort order ds in
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds;
  Format.fprintf ppf "%d error(s), %d warning(s)@]" (errors ds) (warnings ds)

let to_json d =
  let module J = Telemetry.Json in
  let base =
    [ ("rule", J.String d.rule); ("severity", J.String (severity_name d.severity)) ]
  in
  let loc =
    match d.loc with
    | None -> []
    | Some l ->
      [ ("file", J.String l.file); ("line", J.Int l.line); ("col", J.Int l.col) ]
  in
  let hint = match d.hint with None -> [] | Some h -> [ ("hint", J.String h) ] in
  J.Obj (base @ loc @ [ ("message", J.String d.message) ] @ hint)

let list_to_json ds =
  let module J = Telemetry.Json in
  let ds = List.sort order ds in
  J.Obj
    [ ("diagnostics", J.List (List.map to_json ds));
      ("errors", J.Int (errors ds));
      ("warnings", J.Int (warnings ds)) ]
