(** Pipeline feasibility as diagnostics — the [pipe.*] and [net.*]
    rules of [silkroad-lint].

    {2 Single-switch mode}

    {!check_config} places everything a {!Silkroad.Config.t} implies
    (via {!Silkroad.Program.items_of_config}) on the §6-generation chip
    and turns the allocator's verdict into diagnostics: an [Error] with
    rule [pipe.<class>] ([pipe.sram], [pipe.hash], [pipe.salu],
    [pipe.crossbar], [pipe.tcam], [pipe.vliw], [pipe.phv]) or
    [pipe.stages] when the chip runs out of stages, with a numeric fix
    hint computed from the configuration (e.g. how many Mb a narrower
    digest saves); or an [Info] summarizing the placement when
    feasible. {!check_items} is the same for caller-supplied chips and
    items (used by the tests' crafted over-budget fixtures).

    {2 Network-wide mode (§5.3)}

    {!check_network} validates a VIP→layer assignment against
    per-switch SRAM and forwarding budgets using the §5 bin-packing
    heuristic: each VIP that no layer can host is a [net.unplaced]
    error, and a maximum per-switch SRAM utilization above
    [sram_warn] (default 0.9) is a [net.sram-headroom] warning. *)

val rule_of_failure : Asic.Pipeline.failure -> string
(** [pipe.sram] / [pipe.crossbar] / … / [pipe.phv], or [pipe.stages]
    when no single class is binding. *)

val check_items :
  ?cfg:Silkroad.Config.t ->
  Asic.Pipeline.chip ->
  Asic.Pipeline.item list ->
  Asic.Pipeline.report * Diag.t list
(** Allocate and diagnose. [cfg], when given, is only used to compute
    numeric fix hints. *)

val check_config : ?vips:int -> Silkroad.Config.t -> Asic.Pipeline.report * Diag.t list
(** [check_items] on {!Silkroad.Program.chip} with the configuration's
    items ([vips] defaults to 1024). *)

val default_layers : Silkroad.Assignment.layer list
(** The three-tier topology the repo's experiments use (§5.3 /
    Figure 11): 48 ToR switches with 25 MB of LB SRAM each, 16 Agg
    with 50 MB, 4 Core with 80 MB. *)

val default_demands :
  ?cfg:Silkroad.Config.t -> vips:int -> unit -> Silkroad.Assignment.vip_demand list
(** A deterministic skewed demand set for [vips] VIPs: every 16th VIP
    is an elephant (2 M connections, 100 Gbps), every 4th a mid VIP
    (400 K, 12 Gbps), the rest mice (50 K, 1.5 Gbps); ConnTable bits
    follow [cfg]'s digest/version widths (default
    {!Silkroad.Config.default}). *)

val check_network :
  ?sram_warn:float ->
  layers:Silkroad.Assignment.layer list ->
  vips:Silkroad.Assignment.vip_demand list ->
  unit ->
  Silkroad.Assignment.placement * Diag.t list
