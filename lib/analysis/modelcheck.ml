(* Bounded exhaustive model checker for the §4.3 update machinery.

   The model mirrors Switch's control plane one function for one
   function (advance ordering, learning batching, CPU FIFO, VIPTable
   phases, version refcounts, barrier bookkeeping) over an abstract
   ConnTable (exact hit = own entry installed; false hit = a colliding
   partner's entry installed while this flow was untracked, which is
   when the placement filter cannot veto the shadowing slot) and an
   abstract TransitTable (a set of recorded flows plus an explicit
   alias relation standing in for Bloom false positives). Because the
   async completions are computed with the real timing rules rather
   than enumerated freely, every explored schedule maps 1:1 onto a
   replayable trace. *)

module Ep = Netcore.Endpoint
module Ft = Netcore.Five_tuple
module Pool = Lb.Dip_pool

type regime = {
  rg_name : string;
  cpu_rate : float;
  learn_timeout : float;
  gap : float;
}

type pattern = {
  pat_name : string;
  collide : bool;
  alias : bool;
}

type scope = {
  sc_name : string;
  sc_updates : int;
  sc_flow_packets : int list;
  sc_regimes : regime list;
  sc_patterns : pattern list;
}

type mutation = Transit_insert_disabled | Barrier_force_release | Eager_version_gc

let mutations = [ Transit_insert_disabled; Barrier_force_release; Eager_version_gc ]

let mutation_name = function
  | Transit_insert_disabled -> "transit-insert-disabled"
  | Barrier_force_release -> "barrier-force-release"
  | Eager_version_gc -> "eager-version-gc"

let mutation_model_only = function
  | Eager_version_gc -> true
  | Transit_insert_disabled | Barrier_force_release -> false

type event =
  | Pkt of { eflow : int; esyn : bool; eends : bool }
  | Upd of int

(* ----- the fixed small world ----- *)

let model_vip = Ep.v4 10 0 0 1 80
let n_dips = 6
let model_dips () = Array.init n_dips (fun i -> Ep.v4 20 0 0 (i + 1) 8080)

let verify_config ?(use_transit = true) ~cpu_rate ~learn_timeout () =
  {
    Silkroad.Config.digest_bits = 6;
    version_bits = 3;
    conn_table_stages = 2;
    conn_table_rows = 64;
    conn_table_ways = 2;
    (* 4 bytes = 32 bits: dense enough that digest collisions and Bloom
       aliases exist within the searchable 5-tuple space *)
    transit_bytes = 4;
    transit_hashes = 2;
    learning_capacity = 64;
    learning_timeout = learn_timeout;
    cpu_insertions_per_sec = cpu_rate;
    idle_timeout = 600.;
    use_transit;
    seed = 11;
  }

(* ----- regimes ----- *)

(* All three keep worst-case CPU backlog well under
   Switch.barrier_deadline, so shipped semantics never force-releases a
   barrier inside the scope (asserted by check_scope). *)
let rg_fast = { rg_name = "fast"; cpu_rate = 200.; learn_timeout = 0.01; gap = 0.25 }
let rg_medium = { rg_name = "medium"; cpu_rate = 8.; learn_timeout = 0.1; gap = 0.25 }
let rg_slow = { rg_name = "slow"; cpu_rate = 2.; learn_timeout = 0.3; gap = 0.25 }

(* Pathological: 10 s per install against the 5 s barrier deadline,
   with a grid wide enough that a packet lands between the forced
   release and the install completion. *)
let rg_stuck = { rg_name = "stuck"; cpu_rate = 0.1; learn_timeout = 0.05; gap = 3.0 }

let pat_plain = { pat_name = "plain"; collide = false; alias = false }
let pat_collide = { pat_name = "collide"; collide = true; alias = false }
let pat_alias = { pat_name = "alias"; collide = false; alias = true }
let pat_both = { pat_name = "collide+alias"; collide = true; alias = true }

let default_scopes =
  [
    {
      sc_name = "3u4p";
      sc_updates = 3;
      sc_flow_packets = [ 2; 2 ];
      sc_regimes = [ rg_fast; rg_medium; rg_slow ];
      sc_patterns = [ pat_plain; pat_collide; pat_alias; pat_both ];
    };
    {
      sc_name = "3u5p";
      sc_updates = 3;
      sc_flow_packets = [ 3; 2 ];
      sc_regimes = [ rg_fast; rg_slow ];
      sc_patterns = [ pat_plain; pat_collide ];
    };
  ]

let mutation_scopes = function
  | Transit_insert_disabled ->
    [
      {
        sc_name = "3u4p/no-transit";
        sc_updates = 3;
        sc_flow_packets = [ 2; 2 ];
        sc_regimes = [ rg_medium; rg_slow ];
        sc_patterns = [ pat_plain ];
      };
    ]
  | Barrier_force_release ->
    [
      {
        sc_name = "3u4p/stuck";
        sc_updates = 3;
        sc_flow_packets = [ 2; 2 ];
        sc_regimes = [ rg_stuck ];
        sc_patterns = [ pat_plain ];
      };
    ]
  | Eager_version_gc ->
    [
      {
        sc_name = "3u4p/eager-gc";
        sc_updates = 3;
        sc_flow_packets = [ 2; 2 ];
        sc_regimes = [ rg_medium; rg_slow ];
        sc_patterns = [ pat_plain ];
      };
    ]

(* ----- flow search -----

   Candidate 5-tuples to the model VIP, scanned deterministically.
   Properties are checked against scratch instances of the real
   ConnTable / Bloom filter, so "collide" and "alias" mean exactly what
   they mean on the real switch under the same config. *)

let candidate i =
  let srcb = 1 + (i / 60000) and port = 1024 + (i mod 60000) in
  Ft.make ~src:(Ep.v4 192 168 0 srcb port) ~dst:model_vip ~proto:Netcore.Protocol.Tcp

let max_candidates = 60000 * 60

let flow_hash_of cfg flow =
  (* Switch.flow_hash: the transit-filter key *)
  Ft.hash ~seed:(cfg.Silkroad.Config.seed lxor 0x7a17) flow

let scratch_bloom cfg =
  Asic.Bloom_filter.create ~seed:cfg.Silkroad.Config.seed
    ~bits:(cfg.Silkroad.Config.transit_bytes * 8)
    ~hashes:cfg.Silkroad.Config.transit_hashes ()

let shares_probe ct a b =
  let pa = Silkroad.Conn_table.probe_positions ct a in
  let pb = Silkroad.Conn_table.probe_positions ct b in
  List.exists (fun p -> List.mem p pb) pa

(* recording [a] makes [b] falsely hit the transit filter *)
let bloom_aliases cfg bloom a b =
  Asic.Bloom_filter.clear bloom;
  Asic.Bloom_filter.add bloom (flow_hash_of cfg a);
  Asic.Bloom_filter.mem bloom (flow_hash_of cfg b)

let select cfg pool flow = Pool.select_flow ~seed:cfg.Silkroad.Config.seed pool flow

let removed_dips k =
  let dips = model_dips () in
  Array.sub dips 0 k

let pool_full () = Pool.of_list (Array.to_list (model_dips ()))

(* victim: first DIP survives every removal, yet the first removal
   remaps it (ECMP reshuffle) — the §4.3 hazard made flesh *)
let find_victim cfg k =
  let removed = removed_dips k in
  let p0 = pool_full () in
  let p1 = Pool.remove p0 removed.(0) in
  let surviving d = not (Array.exists (Ep.equal d) removed) in
  let rec go i =
    if i >= max_candidates then failwith "Modelcheck: no victim flow in search space"
    else
      let f = candidate i in
      let d0 = select cfg p0 f in
      if surviving d0 && not (Ep.equal d0 (select cfg p1 f)) then f else go (i + 1)
  in
  go 0

let find_companion cfg k ~victim ~collide ~alias =
  let removed = removed_dips k in
  let p0 = pool_full () in
  let surviving d = not (Array.exists (Ep.equal d) removed) in
  let ct = Silkroad.Conn_table.create cfg in
  let bloom = scratch_bloom cfg in
  let rec go i =
    if i >= max_candidates then failwith "Modelcheck: no companion flow in search space"
    else
      let f = candidate i in
      if
        (not (Ft.equal f victim))
        && surviving (select cfg p0 f)
        && collide = shares_probe ct victim f
        && alias = bloom_aliases cfg bloom victim f
      then f
      else go (i + 1)
  in
  go 0

(* memoized per (pattern, k): the flow search is deterministic but the
   collide+alias pattern can scan a few hundred thousand candidates *)
let flow_cache : (bool * bool * int, Ft.t array) Hashtbl.t = Hashtbl.create 8

let scope_flows cfg k pat =
  match Hashtbl.find_opt flow_cache (pat.collide, pat.alias, k) with
  | Some fs -> fs
  | None ->
    let victim = find_victim cfg k in
    let companion = find_companion cfg k ~victim ~collide:pat.collide ~alias:pat.alias in
    let fs = [| victim; companion |] in
    Hashtbl.replace flow_cache (pat.collide, pat.alias, k) fs;
    fs

let conformance_flows ~cfg ~n =
  let ct = Silkroad.Conn_table.create cfg in
  let bloom = scratch_bloom cfg in
  let chosen = ref [] in
  let ok f =
    List.for_all (fun g -> not (Ft.equal f g) && not (shares_probe ct f g)) !chosen
    && begin
      (* membership is monotone in the bit set: if [f] misses with every
         other flow recorded, it misses in every reachable transit
         state (and symmetrically for each already-chosen flow) *)
      Asic.Bloom_filter.clear bloom;
      List.iter (fun g -> Asic.Bloom_filter.add bloom (flow_hash_of cfg g)) !chosen;
      (not (Asic.Bloom_filter.mem bloom (flow_hash_of cfg f)))
      && List.for_all
           (fun g ->
             Asic.Bloom_filter.clear bloom;
             Asic.Bloom_filter.add bloom (flow_hash_of cfg f);
             List.iter
               (fun h -> if not (Ft.equal h g) then Asic.Bloom_filter.add bloom (flow_hash_of cfg h))
               !chosen;
             not (Asic.Bloom_filter.mem bloom (flow_hash_of cfg g)))
           !chosen
    end
  in
  let i = ref 0 in
  while List.length !chosen < n do
    if !i >= max_candidates then failwith "Modelcheck: conformance flow search exhausted";
    let f = candidate !i in
    if ok f then chosen := f :: !chosen;
    incr i
  done;
  Array.of_list (List.rev !chosen)

(* ----- the model ----- *)

type mconn = {
  mutable mc_version : int;
  mutable mc_inserted : bool;
  mutable mc_in_pipeline : bool;
  mutable mc_ended : bool;
  mutable mc_gone : bool;
}

type mversion = {
  mutable mv_pool : Pool.t;
  mutable mv_refs : int;
  mutable mv_live : bool;
}

type mwork = W_insert of int list | W_delete of int | W_repair

type mjob = {
  mutable mj_waiting : int list;
  mutable mj_recorded : int list;
  mutable mj_phase : [ `Recording | `Dual ];
  mj_started : float;
  mj_update : int;
}

type mphase = M_idle | M_recording | M_dual of int

type model = {
  cfg : Silkroad.Config.t;
  deadline : float;
  eager_gc : bool;
  flows : Ft.t array;
  removed : Ep.t array;
  collide_rel : bool array array;
  alias_rel : bool array array;  (* alias_rel.(g).(f): recording g makes f hit *)
  conns : mconn option array;
  shadowed_by : int option array;  (* partner whose installed entry this flow falsely hits *)
  versions : (int, mversion) Hashtbl.t;
  mutable next_version : int;
  mutable current : int;
  mutable phase : mphase;
  mutable job : mjob option;
  queue : (float * int) Queue.t;
  transit : bool array;
  mutable pending : (int * float) list;  (* learning filter, oldest first *)
  mutable busy : float;
  cpu_done : (float * mwork) Queue.t;
  mutable clock : float;
  (* counters *)
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_forced : int;
  mutable n_repairs : int;
  mutable recycle_bad : bool;
  (* PCC (mirrors Harness.Replay.judge) *)
  pcc_first : Ep.t option array;
  pcc_state : int array;  (* bit 1 live, bit 2 excluded, bit 4 bad *)
  mutable n_violations : int;
  mutable n_broken : int;
}

let make_model ~cfg ~deadline ~eager_gc ~flows ~removed ~collide ~alias =
  let n = Array.length flows in
  let mk_rel pairs =
    let r = Array.make_matrix n n false in
    List.iter (fun (a, b) -> r.(a).(b) <- true) pairs;
    r
  in
  let versions = Hashtbl.create 8 in
  Hashtbl.replace versions 0 { mv_pool = pool_full (); mv_refs = 0; mv_live = true };
  {
    cfg;
    deadline;
    eager_gc;
    flows;
    removed;
    collide_rel = mk_rel (List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) collide);
    alias_rel = mk_rel alias;
    conns = Array.make n None;
    shadowed_by = Array.make n None;
    versions;
    next_version = 1;
    current = 0;
    phase = M_idle;
    job = None;
    queue = Queue.create ();
    transit = Array.make n false;
    pending = [];
    busy = 0.;
    cpu_done = Queue.create ();
    clock = 0.;
    n_completed = 0;
    n_failed = 0;
    n_forced = 0;
    n_repairs = 0;
    recycle_bad = false;
    pcc_first = Array.make n None;
    pcc_state = Array.make n 0;
    n_violations = 0;
    n_broken = 0;
  }

let live_conn m f =
  match m.conns.(f) with Some st when not st.mc_gone -> Some st | Some _ | None -> None

let version_info m v = Hashtbl.find_opt m.versions v

let transit_on m = m.cfg.Silkroad.Config.use_transit

let transit_mem m f =
  m.transit.(f)
  || Array.exists (fun g -> m.transit.(g) && m.alias_rel.(g).(f))
       (Array.init (Array.length m.flows) Fun.id)

let clear_transit_if_idle m =
  if m.phase = M_idle && m.job = None then Array.fill m.transit 0 (Array.length m.transit) false

(* version bookkeeping: mirror Dip_pool_table.release / gc *)
let destroy_version m v =
  match version_info m v with
  | Some i when i.mv_live ->
    i.mv_live <- false;
    Hashtbl.remove m.versions v;
    (* the recycle property: nobody still holds it *)
    Array.iter
      (fun st ->
        match st with
        | Some st when (not st.mc_gone) && st.mc_version = v -> m.recycle_bad <- true
        | Some _ | None -> ())
      m.conns
  | Some _ | None -> ()

let release_version m v =
  match version_info m v with
  | Some i ->
    i.mv_refs <- i.mv_refs - 1;
    if i.mv_refs = 0 && v <> m.current then destroy_version m v
  | None -> ()

let retain_version m v =
  match version_info m v with Some i -> i.mv_refs <- i.mv_refs + 1 | None -> ()

let gc_versions m =
  let dead =
    Hashtbl.fold
      (fun v (i : mversion) acc ->
        if v <> m.current && (i.mv_refs = 0 || m.eager_gc) then v :: acc else acc)
      m.versions []
  in
  List.iter (destroy_version m) (List.sort Int.compare dead)

let destroy_state m (st : mconn) =
  st.mc_gone <- true;
  release_version m st.mc_version

(* ----- job state machine (mirrors Switch.start_job etc.) ----- *)

let rec start_next_queued m ~now =
  match Queue.take_opt m.queue with
  | None -> ()
  | Some (_, u) -> start_job m ~now u

and finish_job m ~now job =
  ignore job;
  m.phase <- M_idle;
  m.job <- None;
  m.n_completed <- m.n_completed + 1;
  gc_versions m;
  clear_transit_if_idle m;
  start_next_queued m ~now

and execute_job m ~now job =
  let cur = Hashtbl.find m.versions m.current in
  let target = Pool.remove cur.mv_pool m.removed.(job.mj_update) in
  let equal_pool =
    Hashtbl.fold
      (fun v (i : mversion) acc ->
        match acc with Some _ -> acc | None -> if Pool.equal i.mv_pool target then Some v else None)
      m.versions None
  in
  let new_version =
    match equal_pool with
    | Some v -> Some v
    | None ->
      if Hashtbl.length m.versions >= Silkroad.Config.max_versions m.cfg then None
      else begin
        let v = m.next_version in
        m.next_version <- v + 1;
        Hashtbl.replace m.versions v { mv_pool = target; mv_refs = 0; mv_live = true };
        Some v
      end
  in
  match new_version with
  | Some v ->
    let old = m.current in
    m.current <- v;
    m.phase <- M_dual old;
    job.mj_phase <- `Dual;
    job.mj_waiting <- job.mj_recorded;
    if job.mj_waiting = [] then finish_job m ~now job
  | None ->
    (* versions exhausted: cancel_recording *)
    m.phase <- M_idle;
    m.job <- None;
    m.n_failed <- m.n_failed + 1;
    clear_transit_if_idle m;
    start_next_queued m ~now

and check_job_transition m ~now job =
  if job.mj_waiting = [] then
    match job.mj_phase with
    | `Recording -> execute_job m ~now job
    | `Dual -> finish_job m ~now job

and start_job m ~now u =
  let waiting =
    if transit_on m then
      List.filteri (fun _ _ -> true)
        (List.filter_map
           (fun f ->
             match live_conn m f with
             | Some st when (not st.mc_inserted) && not st.mc_ended -> Some f
             | Some _ | None -> None)
           (List.init (Array.length m.flows) Fun.id))
    else []
  in
  let job =
    { mj_waiting = waiting; mj_recorded = []; mj_phase = `Recording; mj_started = now; mj_update = u }
  in
  m.phase <- M_recording;
  m.job <- Some job;
  check_job_transition m ~now job

let barrier_resolved m ~now f =
  match m.job with
  | None -> ()
  | Some job ->
    job.mj_recorded <- List.filter (fun g -> g <> f) job.mj_recorded;
    if List.mem f job.mj_waiting then begin
      job.mj_waiting <- List.filter (fun g -> g <> f) job.mj_waiting;
      check_job_transition m ~now job
    end

(* ----- async pipeline (mirrors Switch.advance ordering) ----- *)

let submit_cpu m ~now items =
  let start = Float.max now m.busy in
  let finish = start +. (float_of_int items /. m.cfg.Silkroad.Config.cpu_insertions_per_sec) in
  m.busy <- finish;
  finish

(* an entry of [f] lands in the table: flows colliding with [f] that
   are untracked right now could not be protected by the placement
   filter and will falsely hit this entry *)
let cast_shadow m f =
  Array.iteri
    (fun g _ ->
      if m.collide_rel.(f).(g) && live_conn m g = None && m.shadowed_by.(g) = None then
        m.shadowed_by.(g) <- Some f)
    m.flows

let uncast_shadow m f =
  Array.iteri (fun g s -> if s = Some f then m.shadowed_by.(g) <- None) m.shadowed_by

let drain_learning m ~at =
  match m.pending with
  | [] -> ()
  | pending ->
    m.pending <- [];
    let fs = List.map fst pending in
    let done_at = submit_cpu m ~now:at (List.length fs) in
    Queue.add (done_at, W_insert fs) m.cpu_done

let complete_cpu m ~now =
  let rec go () =
    match Queue.peek_opt m.cpu_done with
    | Some (at, work) when at <= now ->
      ignore (Queue.pop m.cpu_done);
      (match work with
       | W_insert fs ->
         List.iter
           (fun f ->
             match live_conn m f with
             | None -> ()
             | Some st ->
               st.mc_in_pipeline <- false;
               if st.mc_ended then begin
                 barrier_resolved m ~now f;
                 destroy_state m st
               end
               else if not st.mc_inserted then begin
                 st.mc_inserted <- true;
                 m.shadowed_by.(f) <- None;
                 cast_shadow m f;
                 barrier_resolved m ~now f
               end)
           fs
       | W_delete f ->
         uncast_shadow m f;
         (match live_conn m f with
          | Some st ->
            st.mc_inserted <- false;
            destroy_state m st
          | None -> ())
       | W_repair -> m.n_repairs <- m.n_repairs + 1);
      go ()
    | Some _ | None -> ()
  in
  go ()

let release_stuck m ~now =
  match m.job with
  | Some job when now -. job.mj_started > m.deadline && job.mj_waiting <> [] ->
    m.n_forced <- m.n_forced + 1;
    job.mj_waiting <- [];
    check_job_transition m ~now job
  | Some _ | None -> ()

let advance m ~now =
  if now >= m.clock then begin
    m.clock <- now;
    let rec drain_due () =
      match m.pending with
      | (_, t0) :: _ when t0 +. m.cfg.Silkroad.Config.learning_timeout <= now ->
        drain_learning m ~at:(t0 +. m.cfg.Silkroad.Config.learning_timeout);
        drain_due ()
      | _ :: _ | [] -> ()
    in
    drain_due ();
    complete_cpu m ~now
    (* no idle expiry: scope spans are far below cfg.idle_timeout *);
    release_stuck m ~now
  end

(* ----- PCC oracle (mirrors Harness.Replay.judge / exclude_dip) ----- *)

let st_live = 1
let st_excluded = 2
let st_bad = 4

let judge m f dip ~ends =
  let b = m.pcc_state.(f) in
  if b land st_live = 0 then begin
    let bad = dip = None in
    if bad then begin
      m.n_broken <- m.n_broken + 1;
      m.n_violations <- m.n_violations + 1
    end;
    m.pcc_first.(f) <- dip;
    m.pcc_state.(f) <- st_live lor (if bad then st_bad else 0)
  end
  else if b land st_excluded = 0 then begin
    let consistent =
      match (m.pcc_first.(f), dip) with Some a, Some d -> Ep.equal a d | _ -> false
    in
    if not consistent then begin
      m.n_violations <- m.n_violations + 1;
      if b land st_bad = 0 then begin
        m.n_broken <- m.n_broken + 1;
        m.pcc_state.(f) <- m.pcc_state.(f) lor st_bad
      end
    end
  end;
  if ends then m.pcc_state.(f) <- 0

let exclude_dip m dip =
  Array.iteri
    (fun f b ->
      if b land st_live <> 0 then
        match m.pcc_first.(f) with
        | Some d when Ep.equal d dip -> m.pcc_state.(f) <- b lor st_excluded
        | Some _ | None -> ())
    m.pcc_state

(* ----- packet path (mirrors Switch.process_flow) ----- *)

let forward m f version =
  match version_info m version with
  | Some i when i.mv_live && not (Pool.is_empty i.mv_pool) ->
    Some (select m.cfg i.mv_pool m.flows.(f))
  | Some _ | None -> None

let how_plain = 0
let how_recorded = 1
let how_cpu_checked = 2

let version_for_miss m f ~syn =
  match m.phase with
  | M_idle -> (m.current, how_plain)
  | M_recording ->
    if transit_on m then m.transit.(f) <- true;
    (m.current, how_recorded)
  | M_dual old ->
    if transit_on m && transit_mem m f then
      if syn then (m.current, how_cpu_checked) else (old, how_plain)
    else (m.current, how_plain)

let learn m ~now f (st : mconn) =
  if not st.mc_in_pipeline then begin
    st.mc_in_pipeline <- true;
    if not (List.mem_assoc f m.pending) then begin
      m.pending <- m.pending @ [ (f, now) ];
      if List.length m.pending >= m.cfg.Silkroad.Config.learning_capacity then
        drain_learning m ~at:now
    end
  end

let create_state m f version =
  let st =
    { mc_version = version; mc_inserted = false; mc_in_pipeline = false; mc_ended = false; mc_gone = false }
  in
  m.conns.(f) <- Some st;
  retain_version m version;
  st

let submit_delete m ~now f =
  let done_at = submit_cpu m ~now 1 in
  Queue.add (done_at, W_delete f) m.cpu_done

let record_in_job m f =
  match m.job with
  | Some job when not (List.mem f job.mj_recorded) -> job.mj_recorded <- job.mj_recorded @ [ f ]
  | Some _ | None -> ()

let handle_miss m ~now f ~syn ~ends =
  let code_version, how = version_for_miss m f ~syn in
  match live_conn m f with
  | Some st ->
    if ends then st.mc_ended <- true;
    if how = how_recorded && not st.mc_inserted then record_in_job m f;
    learn m ~now f st;
    let version = if how = how_cpu_checked then st.mc_version else code_version in
    forward m f version
  | None ->
    if ends then forward m f code_version
    else begin
      let st = create_state m f code_version in
      if how = how_recorded then record_in_job m f;
      learn m ~now f st;
      forward m f code_version
    end

let handle_false_hit_syn m ~now f =
  let code_version, _how = version_for_miss m f ~syn:true in
  let st = match live_conn m f with Some st -> st | None -> create_state m f code_version in
  let done_at = submit_cpu m ~now 3 in
  Queue.add (done_at, W_repair) m.cpu_done;
  st.mc_inserted <- true;
  m.shadowed_by.(f) <- None;
  cast_shadow m f;
  barrier_resolved m ~now f;
  forward m f st.mc_version

let process_packet m ~now f ~syn ~ends =
  advance m ~now;
  let dip =
    match live_conn m f with
    | Some st when st.mc_inserted ->
      (* exact hit *)
      if ends && not st.mc_ended then begin
        st.mc_ended <- true;
        submit_delete m ~now f
      end;
      forward m f st.mc_version
    | _ -> (
      (* no own entry: a colliding partner's installed entry? *)
      match m.shadowed_by.(f) with
      | Some g
        when (match live_conn m g with Some gst -> gst.mc_inserted | None -> false) ->
        if syn then handle_false_hit_syn m ~now f
        else
          (* §4.2: forwarded with the wrong entry's version *)
          let gv = (match live_conn m g with Some gst -> gst.mc_version | None -> m.current) in
          forward m f gv
      | Some _ | None -> handle_miss m ~now f ~syn ~ends)
  in
  judge m f dip ~ends;
  dip

let process_update m ~now j =
  advance m ~now;
  exclude_dip m m.removed.(j);
  match m.job with
  | Some _ -> Queue.add (now, j) m.queue
  | None -> start_job m ~now j

let check_recycle_invariant m =
  Array.iter
    (fun st ->
      match st with
      | Some st when not st.mc_gone ->
        (match version_info m st.mc_version with
         | Some i when i.mv_live -> ()
         | Some _ | None -> m.recycle_bad <- true)
      | Some _ | None -> ())
    m.conns

type run_result = {
  rr_dips : Ep.t option array;
  rr_violations : int;
  rr_broken : int;
  rr_completed : int;
  rr_failed : int;
  rr_forced : int;
  rr_repairs : int;
  rr_recycle : bool;
}

let run_model ~cfg ~deadline ~eager_gc ~flows ~removed ~collide ~alias ~events ~horizon =
  let m = make_model ~cfg ~deadline ~eager_gc ~flows ~removed ~collide ~alias in
  let n_pkts = List.length (List.filter (fun (_, e) -> match e with Pkt _ -> true | Upd _ -> false) events) in
  let dips = Array.make n_pkts None in
  let k = ref 0 in
  List.iter
    (fun (t, ev) ->
      (match ev with
       | Pkt { eflow; esyn; eends } ->
         dips.(!k) <- process_packet m ~now:t eflow ~syn:esyn ~ends:eends;
         incr k
       | Upd j -> process_update m ~now:t j);
      check_recycle_invariant m)
    events;
  advance m ~now:horizon;
  check_recycle_invariant m;
  {
    rr_dips = dips;
    rr_violations = m.n_violations;
    rr_broken = m.n_broken;
    rr_completed = m.n_completed;
    rr_failed = m.n_failed;
    rr_forced = m.n_forced;
    rr_repairs = m.n_repairs;
    rr_recycle = m.recycle_bad;
  }

(* ----- enumeration ----- *)

(* all interleavings of the per-flow packet sequences and the (ordered)
   update sequence; streams 0..n-1 are flows, stream n is updates *)
let each_order ~flow_packets ~updates k =
  let n = List.length flow_packets in
  let remaining = Array.of_list (flow_packets @ [ updates ]) in
  let acc = ref [] in
  let rec go left =
    if left = 0 then k (List.rev !acc)
    else
      for s = 0 to n do
        if remaining.(s) > 0 then begin
          remaining.(s) <- remaining.(s) - 1;
          acc := s :: !acc;
          go (left - 1);
          acc := List.tl !acc;
          remaining.(s) <- remaining.(s) + 1
        end
      done
  in
  go (List.fold_left ( + ) updates flow_packets)

let events_of_order ~flow_packets ~gap order =
  let n = List.length flow_packets in
  let lens = Array.of_list flow_packets in
  let pkt_seen = Array.make n 0 in
  let upd_seen = ref 0 in
  List.mapi
    (fun i s ->
      let t = float_of_int (i + 1) *. gap in
      if s < n then begin
        let j = pkt_seen.(s) in
        pkt_seen.(s) <- j + 1;
        (t, Pkt { eflow = s; esyn = j = 0; eends = j = lens.(s) - 1 && lens.(s) > 1 })
      end
      else begin
        let j = !upd_seen in
        incr upd_seen;
        (t, Upd j)
      end)
    order

(* ----- checking ----- *)

type counterexample = {
  ce_mutation : mutation option;
  ce_scope : string;
  ce_regime : regime;
  ce_pattern : pattern;
  ce_cfg : Silkroad.Config.t;
  ce_vip : Ep.t;
  ce_dips : Ep.t array;
  ce_removed : Ep.t array;
  ce_flows : Ft.t array;
  ce_events : (float * event) list;
  ce_kind : [ `Pcc | `Recycle ];
  ce_model_violations : int;
}

type outcome = {
  oc_runs : int;
  oc_events : int;
  oc_violating : int;
  oc_recycled : int;
  oc_forced : int;
  oc_counterexamples : counterexample list;
}

let max_counterexamples = 8

let regime_config ?(use_transit = true) rg =
  verify_config ~use_transit ~cpu_rate:rg.cpu_rate ~learn_timeout:rg.learn_timeout ()

let horizon_of events = (match List.rev events with (t, _) :: _ -> t | [] -> 0.) +. 1.0

let check_scope ?mutation scope =
  let use_transit = mutation <> Some Transit_insert_disabled in
  let eager_gc = mutation = Some Eager_version_gc in
  let deadline = Silkroad.Switch.barrier_deadline in
  let removed = removed_dips scope.sc_updates in
  let runs = ref 0 and events_total = ref 0 in
  let violating = ref 0 and recycled = ref 0 and forced = ref 0 in
  let ces = ref [] in
  List.iter
    (fun rg ->
      let cfg = regime_config ~use_transit rg in
      List.iter
        (fun pat ->
          (* flows are searched under the shipped (transit-on) config:
             collide/alias are data-plane properties, independent of the
             mutation knobs *)
          let flows = scope_flows (regime_config rg) scope.sc_updates pat in
          let collide = if pat.collide then [ (0, 1) ] else [] in
          let alias = if pat.alias then [ (0, 1); (1, 0) ] else [] in
          each_order ~flow_packets:scope.sc_flow_packets ~updates:scope.sc_updates
            (fun order ->
              let events = events_of_order ~flow_packets:scope.sc_flow_packets ~gap:rg.gap order in
              let horizon = horizon_of events in
              let r =
                run_model ~cfg ~deadline ~eager_gc ~flows ~removed ~collide ~alias ~events
                  ~horizon
              in
              incr runs;
              events_total := !events_total + List.length events;
              if r.rr_forced > 0 then incr forced;
              let kind =
                if r.rr_recycle then Some `Recycle
                else if r.rr_violations > 0 then Some `Pcc
                else None
              in
              (match kind with
               | None -> ()
               | Some k ->
                 (match k with `Pcc -> incr violating | `Recycle -> incr recycled);
                 if List.length !ces < max_counterexamples then
                   ces :=
                     {
                       ce_mutation = mutation;
                       ce_scope = scope.sc_name;
                       ce_regime = rg;
                       ce_pattern = pat;
                       ce_cfg = cfg;
                       ce_vip = model_vip;
                       ce_dips = model_dips ();
                       ce_removed = removed;
                       ce_flows = flows;
                       ce_events = events;
                       ce_kind = k;
                       ce_model_violations = r.rr_violations;
                     }
                     :: !ces)))
        scope.sc_patterns)
    scope.sc_regimes;
  {
    oc_runs = !runs;
    oc_events = !events_total;
    oc_violating = !violating;
    oc_recycled = !recycled;
    oc_forced = !forced;
    oc_counterexamples = List.rev !ces;
  }

(* ----- realizing counterexamples ----- *)

let ce_packets ce =
  List.filter_map
    (fun (t, ev) ->
      match ev with
      | Pkt { eflow; esyn; eends } -> Some (t, (eflow, esyn, eends))
      | Upd _ -> None)
    ce.ce_events

let ce_flags ~esyn ~eends =
  if esyn then Netcore.Tcp_flags.syn
  else if eends then Netcore.Tcp_flags.fin
  else Netcore.Tcp_flags.data

let ce_trace ce =
  let pkts = ce_packets ce in
  let n = List.length pkts in
  let times = Array.make n 0. in
  let pkt_flow = Array.make n 0 in
  let pkt_flags = Bytes.make n '\000' in
  List.iteri
    (fun i (t, (eflow, esyn, eends)) ->
      times.(i) <- t;
      pkt_flow.(i) <- eflow;
      Bytes.set pkt_flags i (Char.chr (Netcore.Tcp_flags.to_byte (ce_flags ~esyn ~eends))))
    pkts;
  {
    Harness.Packed_trace.horizon = horizon_of ce.ce_events;
    vips = [| ce.ce_vip |];
    flow_ids = Array.init (Array.length ce.ce_flows) Fun.id;
    flow_vip = Array.make (Array.length ce.ce_flows) 0;
    flow_tuples = Array.copy ce.ce_flows;
    times;
    pkt_flow;
    pkt_flags;
  }

let ce_controls ce =
  List.filter_map
    (fun (t, ev) ->
      match ev with
      | Upd j ->
        Some (t, Harness.Replay.Update (ce.ce_vip, Lb.Balancer.Dip_remove ce.ce_removed.(j)))
      | Pkt _ -> None)
    ce.ce_events

let ce_script ce =
  let b = Buffer.create 512 in
  let line s =
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  let render cmd = line (Control.Protocol.render { Control.Protocol.seq = None; cmd }) in
  line
    (Printf.sprintf "# silkroad-verify counterexample (%s): scope=%s regime=%s pattern=%s kind=%s"
       (match ce.ce_mutation with None -> "shipped" | Some mu -> mutation_name mu)
       ce.ce_scope ce.ce_regime.rg_name ce.ce_pattern.pat_name
       (match ce.ce_kind with `Pcc -> "pcc" | `Recycle -> "recycle"));
  line
    (Printf.sprintf
       "# replay config: use_transit=%b cpu_insertions_per_sec=%g learning_timeout=%g"
       ce.ce_cfg.Silkroad.Config.use_transit ce.ce_cfg.Silkroad.Config.cpu_insertions_per_sec
       ce.ce_cfg.Silkroad.Config.learning_timeout);
  line "# packets ride in via --trace; this script is the control half of the schedule";
  render (Control.Protocol.Vip_add (ce.ce_vip, Array.to_list ce.ce_dips));
  let now = ref 0. in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Pkt _ -> ()
      | Upd j ->
        if t > !now then begin
          render (Control.Protocol.Advance (t -. !now));
          now := t
        end;
        render (Control.Protocol.Dip_remove (ce.ce_vip, ce.ce_removed.(j))))
    ce.ce_events;
  render Control.Protocol.Drain;
  render (Control.Protocol.Stats None);
  render Control.Protocol.Quit;
  Buffer.contents b

let replay_on_switch ce =
  let make_switch () =
    let sw = Silkroad.Switch.create ~check:`Off ce.ce_cfg in
    Silkroad.Switch.add_vip sw ce.ce_vip (Pool.of_list (Array.to_list ce.ce_dips));
    sw
  in
  Harness.Replay.run ~mode:Harness.Replay.Scalar ~make_switch ~trace:(ce_trace ce)
    ~controls:(ce_controls ce) ()

(* ----- conformance ----- *)

type obs = {
  ob_dips : Ep.t option array;
  ob_completed : int;
  ob_failed : int;
  ob_forced : int;
  ob_repairs : int;
}

let model_observe ~cfg ~flows ~removed ~events ~horizon =
  let r =
    run_model ~cfg ~deadline:Silkroad.Switch.barrier_deadline ~eager_gc:false ~flows ~removed
      ~collide:[] ~alias:[] ~events ~horizon
  in
  {
    ob_dips = r.rr_dips;
    ob_completed = r.rr_completed;
    ob_failed = r.rr_failed;
    ob_forced = r.rr_forced;
    ob_repairs = r.rr_repairs;
  }

let switch_observe ?conn_layout ~cfg ~flows ~removed ~events ~horizon () =
  let sw = Silkroad.Switch.create ~check:`Off ?conn_layout cfg in
  Silkroad.Switch.add_vip sw model_vip (pool_full ());
  let n_pkts =
    List.length (List.filter (fun (_, e) -> match e with Pkt _ -> true | Upd _ -> false) events)
  in
  let dips = Array.make n_pkts None in
  let k = ref 0 in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Pkt { eflow; esyn; eends } ->
        let d =
          Silkroad.Switch.process_flow sw ~now:t
            ~flags:(ce_flags ~esyn ~eends)
            ~payload_len:0 flows.(eflow)
        in
        dips.(!k) <- (if d == Silkroad.Switch.no_dip then None else Some d);
        incr k
      | Upd j ->
        Silkroad.Switch.advance sw ~now:t;
        Silkroad.Switch.request_update sw ~now:t ~vip:model_vip
          (Lb.Balancer.Dip_remove removed.(j)))
    events;
  Silkroad.Switch.advance sw ~now:horizon;
  let st = Silkroad.Switch.stats sw in
  {
    ob_dips = dips;
    ob_completed = st.Silkroad.Switch.updates_completed;
    ob_failed = st.Silkroad.Switch.updates_failed;
    ob_forced = st.Silkroad.Switch.forced_transitions;
    ob_repairs = st.Silkroad.Switch.collision_repairs;
  }

(* ----- the verify driver ----- *)

type report = {
  rp_shipped : (scope * outcome) list;
  rp_mutants :
    (mutation * outcome * (counterexample * Harness.Replay.result option) option) list;
  rp_diags : Diag.t list;
}

let run_verify ?(scopes = default_scopes) ?(mutants = mutations) () =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let shipped =
    List.map
      (fun sc ->
        let oc = check_scope sc in
        if oc.oc_violating > 0 then
          add
            (Diag.v ~rule:"model.pcc" ~severity:Diag.Error
               (Printf.sprintf
                  "scope %s: %d of %d interleavings violate PCC under shipped semantics"
                  sc.sc_name oc.oc_violating oc.oc_runs));
        if oc.oc_recycled > 0 then
          add
            (Diag.v ~rule:"model.recycle" ~severity:Diag.Error
               (Printf.sprintf "scope %s: %d runs recycle a version prematurely" sc.sc_name
                  oc.oc_recycled));
        if oc.oc_forced > 0 then
          add
            (Diag.v ~rule:"model.forced" ~severity:Diag.Error
               (Printf.sprintf
                  "scope %s: the barrier deadline fired inside a shipped regime (%d runs) — \
                   the scope no longer proves what it claims"
                  sc.sc_name oc.oc_forced));
        if oc.oc_violating = 0 && oc.oc_recycled = 0 && oc.oc_forced = 0 then
          add
            (Diag.v ~rule:"model.scope" ~severity:Diag.Info
               (Printf.sprintf
                  "scope %s: %d interleavings (%d events) exhausted, 0 PCC violations, 0 \
                   premature recycles"
                  sc.sc_name oc.oc_runs oc.oc_events));
        (sc, oc))
      scopes
  in
  let mutant_results =
    List.map
      (fun mu ->
        let ocs = List.map (fun sc -> check_scope ~mutation:mu sc) (mutation_scopes mu) in
        let oc =
          List.fold_left
            (fun a b ->
              {
                oc_runs = a.oc_runs + b.oc_runs;
                oc_events = a.oc_events + b.oc_events;
                oc_violating = a.oc_violating + b.oc_violating;
                oc_recycled = a.oc_recycled + b.oc_recycled;
                oc_forced = a.oc_forced + b.oc_forced;
                oc_counterexamples = a.oc_counterexamples @ b.oc_counterexamples;
              })
            { oc_runs = 0; oc_events = 0; oc_violating = 0; oc_recycled = 0; oc_forced = 0;
              oc_counterexamples = [] }
            ocs
        in
        let wanted =
          List.filter
            (fun ce ->
              match mu with Eager_version_gc -> ce.ce_kind = `Recycle | _ -> ce.ce_kind = `Pcc)
            oc.oc_counterexamples
        in
        let killed =
          if mutation_model_only mu then
            match wanted with [] -> None | ce :: _ -> Some (ce, None)
          else
            (* try counterexamples until one demonstrably breaks the real
               switch; the model is an abstraction, so keep a few arrows *)
            List.fold_left
              (fun acc ce ->
                match acc with
                | Some _ -> acc
                | None ->
                  let r = replay_on_switch ce in
                  if r.Harness.Replay.violations > 0 then Some (ce, Some r) else None)
              None wanted
        in
        (match killed with
         | Some (ce, Some r) ->
           add
             (Diag.v ~rule:"model.mutant" ~severity:Diag.Info
                (Printf.sprintf
                   "mutant %s killed: counterexample (%s/%s/%s) breaks PCC on the real switch \
                    (%d violations, %d broken connections)"
                   (mutation_name mu) ce.ce_scope ce.ce_regime.rg_name ce.ce_pattern.pat_name
                   r.Harness.Replay.violations r.Harness.Replay.broken))
         | Some (ce, None) ->
           add
             (Diag.v ~rule:"model.mutant" ~severity:Diag.Info
                (Printf.sprintf "mutant %s killed (model-only): %s counterexample at %s/%s"
                   (mutation_name mu)
                   (match ce.ce_kind with `Pcc -> "PCC" | `Recycle -> "recycle")
                   ce.ce_scope ce.ce_regime.rg_name))
         | None ->
           add
             (Diag.v ~rule:"model.mutant-survived" ~severity:Diag.Error
                ~hint:
                  "either the mutation is not actually a defect (tighten the property) or the \
                   scope is too small to expose it (widen regimes/patterns)"
                (Printf.sprintf
                   "mutant %s survived: %d runs, %d model counterexamples, none breaks the \
                    real switch"
                   (mutation_name mu) oc.oc_runs
                   (List.length wanted))));
        (mu, oc, killed))
      mutants
  in
  { rp_shipped = shipped; rp_mutants = mutant_results; rp_diags = List.sort Diag.compare !diags }
