type spec = {
  scenario : Chaos.Scenario.t;
  seed : int;
  seconds : float;
  rate : float;
  n_vips : int;
  dips_per_vip : int;
  probe_interval : float;
}

let default_spec scenario ~seed =
  {
    scenario;
    seed;
    seconds = 240.;
    rate = 100.;
    n_vips = 2;
    dips_per_vip = 8;
    probe_interval = 15.;
  }

let smoke_spec scenario ~seed =
  {
    scenario;
    seed;
    seconds = 130.;
    rate = 40.;
    n_vips = 1;
    dips_per_vip = 8;
    probe_interval = 15.;
  }

let balancer_names = [ "silkroad"; "slb"; "duet"; "ecmp" ]

let make_balancer name ~seed ~vips =
  match name with
  | "silkroad" -> snd (Common.silkroad ~vips ())
  | "slb" ->
    (* finite packet budget: CPU stalls debit the token bucket and
       surface as overload drops *)
    fst (Baselines.Slb.create ~seed ~capacity_pps:25_000. ~vips ())
  | "duet" ->
    (* a 60 s migrate-back period puts the dangerous repair-time
       remapping inside every scenario cycle *)
    fst (Baselines.Duet.create ~seed ~policy:(Baselines.Duet.Migrate_every 60.) ~vips ())
  | "ecmp" -> Baselines.Ecmp_lb.create_with ~seed vips
  | other -> invalid_arg (Printf.sprintf "Chaos_runner.make_balancer: unknown balancer %S" other)

let run spec ~balancer =
  let vips = Common.vips_of ~n_vips:spec.n_vips ~dips_per_vip:spec.dips_per_vip in
  (* the chaos scenario owns the update stream, so the workload carries
     flows only *)
  let workload =
    Common.scenario ~seed:spec.seed ~n_vips:spec.n_vips ~dips_per_vip:spec.dips_per_vip
      ~conns_per_sec_per_vip:spec.rate ~updates_per_min:0. ~trace_seconds:spec.seconds ()
  in
  let horizon = workload.Common.horizon in
  let injector =
    Chaos.Injector.create ~scenario:spec.scenario ~seed:spec.seed ~vips ~horizon ()
  in
  let b = make_balancer balancer ~seed:spec.seed ~vips in
  let result =
    Harness.Driver.run ~probe_interval:spec.probe_interval ~chaos:injector ~balancer:b
      ~flows:workload.Common.flows ~updates:[] ~horizon ()
  in
  let report =
    Chaos.Report.build ~scenario:spec.scenario ~seed:spec.seed ~horizon
      ~balancer:result.Harness.Driver.balancer_name
      ~connections:result.Harness.Driver.connections
      ~broken_connections:result.Harness.Driver.broken_connections
      ~broken_fraction:result.Harness.Driver.broken_fraction
      ~violation_packets:result.Harness.Driver.violation_packets
      ~dropped_packets:result.Harness.Driver.dropped_packets
      ~telemetry:result.Harness.Driver.telemetry
  in
  (result, report)
