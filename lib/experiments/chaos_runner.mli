(** One-stop chaos execution: build the workload, compile the scenario,
    pick a balancer, run the harness, produce the report.

    Shared by [silkroad_cli chaos], the bench soak mode and the
    regression tests, so all three measure exactly the same thing. *)

type spec = {
  scenario : Chaos.Scenario.t;
  seed : int;
  seconds : float;  (** workload trace length (the harness adds drain time) *)
  rate : float;  (** new connections per second per VIP *)
  n_vips : int;
  dips_per_vip : int;
  probe_interval : float;
      (** seconds between PCC probes on established connections; small
          values make flows re-arrive quickly after a re-route, which is
          what the switch-failure/vip-migration scenarios measure *)
}

val default_spec : Chaos.Scenario.t -> seed:int -> spec
(** 240 s, 100 conns/s over 2 VIPs with 8 DIPs each — two full cycles of
    every built-in scenario. *)

val smoke_spec : Chaos.Scenario.t -> seed:int -> spec
(** A CI-speed operating point: 130 s (one cycle), 40 conns/s, 1 VIP. *)

val balancer_names : string list
(** ["silkroad"; "slb"; "duet"; "ecmp"]. The chaos runs give the
    baselines their stressed configurations: SLB gets a finite packet
    budget (so CPU stalls surface as overload), Duet migrates back every
    60 s (so repair-time remapping is observable inside the horizon). *)

val make_balancer :
  string -> seed:int -> vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list -> Lb.Balancer.t
(** Raises [Invalid_argument] on an unknown name. *)

val run : spec -> balancer:string -> Harness.Driver.result * Chaos.Report.t
