(* Experiments for the §5.2 / §7 mechanisms beyond the numbered figures:
   performance isolation via per-VIP meters, the SilkRoad+SLB hybrid,
   and switch-failure behaviour. *)

(* §2.2/§5.2: a DDoS on one VIP. On a shared SLB instance the victim VIP
   collapses with the attacked one; SilkRoad's per-VIP meter confines
   the damage to the attacked VIP. *)
let isolation ~quick ppf =
  let horizon = if quick then 30. else 120. in
  let attacked = Common.vip 0 and victim = Common.vip 1 in
  let vips = Common.vips_of ~n_vips:2 ~dips_per_vip:4 in
  let mk_flows ~seed rate vip =
    let rng = Simnet.Prng.create ~seed in
    Simnet.Workload.take_until ~horizon
      (Simnet.Workload.arrivals ~rng ~id_base:(seed * 1_000_000)
         (Simnet.Workload.profile ~vip ~new_conns_per_sec:rate ()))
  in
  let attack = mk_flows ~seed:1 400. attacked in
  let normal = mk_flows ~seed:2 20. victim in
  let victim_ids = List.map (fun f -> f.Simnet.Flow.id) normal in
  let run balancer =
    let sim_flows = attack @ normal in
    let r =
      Harness.Driver.run ~balancer ~flows:sim_flows ~updates:[] ~horizon:(horizon +. 10.) ()
    in
    ignore r;
    balancer
  in
  (* measure per-VIP delivery by probing the victim's flows afterward *)
  let victim_delivery balancer =
    let ok = ref 0 in
    List.iter
      (fun f ->
        let pkt = Netcore.Packet.data f.Simnet.Flow.tuple in
        if (balancer.Lb.Balancer.process ~now:(horizon +. 20.) pkt).Lb.Balancer.dip <> None
        then incr ok)
      normal;
    float_of_int !ok /. float_of_int (List.length victim_ids)
  in
  Common.header ppf "Performance isolation under a DDoS on one VIP (§2.2, §5.2)";
  Common.row ppf [ "balancer"; "victim delivery" ];
  Common.rule ppf;
  (* shared SLB sized for the normal load (not the attack) *)
  let slb, _ = Baselines.Slb.create ~seed:5 ~capacity_pps:200. ~vips () in
  let slb = run slb in
  Common.row ppf [ "shared SLB (200 pps)"; Common.pct (victim_delivery slb) ];
  (* silkroad with a meter throttling the attacked VIP *)
  let sw, balancer = Common.silkroad ~vips () in
  Silkroad.Switch.set_meter sw ~vip:attacked ~cir:100_000. ~cbs:10_000 ~eir:100_000.
    ~ebs:10_000;
  let b = run balancer in
  Common.row ppf [ "SilkRoad + VIP meter"; Common.pct (victim_delivery b) ];
  Format.fprintf ppf "  metered drops on the attacked VIP: %d@." (Silkroad.Switch.metered_drops sw);
  Format.fprintf ppf
    "  paper claim: x86 SLBs have poor performance isolation; SilkRoad throttles@.";
  Format.fprintf ppf "  the offending VIP in hardware and other VIPs are unaffected.@."

(* §7: switch failure. Connections on the latest DIP-pool version
   survive a member failure (identical VIPTables hash identically);
   connections pinned to an old version break — like an SLB failure. *)
let switch_failure ~quick ppf =
  let n = if quick then 2_000 else 10_000 in
  let vips = Common.vips_of ~n_vips:1 ~dips_per_vip:8 in
  let vip = Common.vip 0 in
  Common.header ppf "Switch failure in a redundant group (§7)";
  Common.row ppf [ "scenario"; "conns"; "broken"; "fraction" ];
  Common.rule ppf;
  let run_case ~with_update name =
    let g = Silkroad.Switch_group.create ~seed:6 ~switches:3 ~vips () in
    let b = Silkroad.Switch_group.balancer g in
    let flows =
      List.init n (fun i ->
          Netcore.Five_tuple.make
            ~src:(Netcore.Endpoint.v4 3 ((i / 62500) + 1) ((i / 250) mod 250) (1 + (i mod 250)) 7777)
            ~dst:vip ~proto:Netcore.Protocol.Tcp)
    in
    let before =
      List.map (fun f -> (f, (b.Lb.Balancer.process ~now:0. (Netcore.Packet.syn f)).Lb.Balancer.dip)) flows
    in
    b.Lb.Balancer.advance ~now:1.;
    if with_update then begin
      b.Lb.Balancer.update ~now:1. ~vip (Lb.Balancer.Dip_add (Common.dip 100));
      b.Lb.Balancer.advance ~now:2.
    end;
    Silkroad.Switch_group.fail g 0;
    let broken =
      List.length
        (List.filter
           (fun (f, d) ->
             (b.Lb.Balancer.process ~now:3. (Netcore.Packet.data f)).Lb.Balancer.dip <> d)
           before)
    in
    Common.row ppf
      [ name; string_of_int n; string_of_int broken;
        Common.pct (float_of_int broken /. float_of_int n) ]
  in
  run_case ~with_update:false "no update before failure";
  run_case ~with_update:true "update pinned old versions";
  Format.fprintf ppf
    "  paper claim: latest-version connections keep PCC across a switch@.";
  Format.fprintf ppf
    "  failure; only old-version connections on the dead switch break.@."

(* §7: ConnTable as a cache — overflow spills to a small SLB with no
   PCC loss. *)
let hybrid ~quick ppf =
  let rate = if quick then 150. else 400. in
  let horizon = if quick then 120. else 300. in
  let cfg =
    { Silkroad.Config.default with
      Silkroad.Config.conn_table_rows = 512;
      conn_table_stages = 2;
      conn_table_ways = 4 }
  in
  let vips = Common.vips_of ~n_vips:1 ~dips_per_vip:8 in
  let scenario =
    Common.scenario ~seed:27 ~n_vips:1 ~dips_per_vip:8
      ~duration:(Simnet.Dist.lognormal_of_quantiles ~median:60. ~p99:600.)
      ~conns_per_sec_per_vip:rate ~updates_per_min:6. ~trace_seconds:horizon ()
  in
  Common.header ppf "SilkRoad+SLB hybrid: ConnTable as a cache (§7)";
  let h = Silkroad.Hybrid.create ~cfg ~overflow_threshold:0.9 ~seed:7 ~vips () in
  let r = Common.run (Silkroad.Hybrid.balancer h) scenario in
  Common.row ppf [ "connections"; string_of_int r.Harness.Driver.connections ];
  Common.row ppf [ "broken"; string_of_int r.Harness.Driver.broken_connections ];
  Common.row ppf
    [ "ConnTable capacity"; string_of_int (Silkroad.Config.conn_capacity cfg) ];
  Common.row ppf [ "spilled to SLB"; string_of_int (Silkroad.Hybrid.spilled_connections h) ];
  Common.row ppf [ "slb traffic"; Common.pct r.Harness.Driver.slb_traffic_fraction ];
  Format.fprintf ppf
    "  overflowing the 4K-entry ConnTable costs SLB traffic, never PCC.@."

(* §2.2/§5.2 latency: the balancer-added latency distribution per
   system. SilkRoad forwards everything in the ASIC pipeline; an SLB
   adds 50 us - 1 ms of batched software processing to every packet;
   Duet sits in between, paying the SLB price while VIPs are redirected
   (the paper reports a 474 us median for Duet under churn). *)
let latency ~quick ppf =
  let n_vips = 8 in
  let conns = if quick then 8. else 20. in
  let trace = if quick then 600. else 1200. in
  let s =
    Common.scenario ~seed:31 ~n_vips ~dips_per_vip:8
      ~duration:Simnet.Workload.hadoop_durations ~conns_per_sec_per_vip:conns
      ~updates_per_min:10. ~trace_seconds:trace ()
  in
  let vips () = Common.vips_of ~n_vips ~dips_per_vip:8 in
  Common.header ppf "Added latency per balancer (10 upd/min churn)";
  Common.row ppf [ "balancer"; "median"; "p99" ];
  Common.rule ppf;
  let show name r =
    Common.row ppf
      [ name;
        Printf.sprintf "%.1f us" (1e6 *. r.Harness.Driver.latency_median);
        Printf.sprintf "%.1f us" (1e6 *. r.Harness.Driver.latency_p99) ]
  in
  let slb, _ = Baselines.Slb.create ~seed:8 ~vips:(vips ()) () in
  show "SLB" (Common.run slb s);
  let duet, _ =
    Baselines.Duet.create ~seed:8 ~policy:(Baselines.Duet.Migrate_every 600.) ~vips:(vips ()) ()
  in
  show "Duet (10min)" (Common.run duet s);
  let _, silkroad = Common.silkroad ~vips:(vips ()) () in
  show "SilkRoad" (Common.run silkroad s);
  Format.fprintf ppf
    "  paper anchors: SLBs add 50us-1ms; Duet medians ~474us under churn;@.";
  Format.fprintf ppf "  SilkRoad stays sub-microsecond (all packets in the pipeline).@."

(* Scalability: actually instantiate a large ConnTable and fill it to
   its design occupancy, timing software insertions — the model-scale
   analogue of "we have also evaluated that up to 10M connections can
   fit in the on-chip SRAM in our SilkRoad prototype" (§5.2). *)
let scale ~quick ppf =
  let target = if quick then 250_000 else 1_000_000 in
  let cfg = Silkroad.Config.sized_for ~connections:target in
  let table = Silkroad.Conn_table.create cfg in
  let vip = Common.vip 0 in
  let flow i =
    Netcore.Five_tuple.make
      ~src:
        (Netcore.Endpoint.make
           (Netcore.Ip.v6 (Int64.of_int (i / 60000)) (Int64.of_int i))
           (1 + (i mod 60000)))
      ~dst:vip ~proto:Netcore.Protocol.Tcp
  in
  let inserted = ref 0 and moves0 = Silkroad.Conn_table.moves table in
  let (), dt =
    Harness.Stopwatch.time (fun () ->
        try
          for i = 0 to target - 1 do
            match Silkroad.Conn_table.insert table (flow i) ~version:(i mod 64) with
            | Ok _ -> incr inserted
            | Error `Duplicate -> ()
            | Error `Full -> raise Exit
          done
        with Exit -> ())
  in
  Common.header ppf "Scalability: filling a large ConnTable (§5.2)";
  Common.row ppf [ "capacity"; string_of_int (Silkroad.Conn_table.capacity table) ];
  Common.row ppf [ "inserted"; string_of_int !inserted ];
  Common.row ppf [ "occupancy"; Common.pct (Silkroad.Conn_table.occupancy table) ];
  Common.row ppf [ "cuckoo moves"; string_of_int (Silkroad.Conn_table.moves table - moves0) ];
  Common.row ppf
    [ "insert rate"; Printf.sprintf "%.0fK/s (model)" (float_of_int !inserted /. dt /. 1000.) ];
  Common.row ppf
    [ "SRAM (model)";
      Printf.sprintf "%.1f MB" (Silkroad.Memory_model.mb (Silkroad.Conn_table.sram_bits table)) ];
  (* every entry still resolves exactly *)
  let sample_ok = ref true in
  for i = 0 to 9_999 do
    let k = i * (target / 10_000) in
    match Silkroad.Conn_table.lookup table (flow k) with
    | Some r when r.Silkroad.Conn_table.exact -> ()
    | Some _ | None -> sample_ok := false
  done;
  Common.row ppf [ "lookup sample"; (if !sample_ok then "10k/10k exact" else "FAILED") ];
  Format.fprintf ppf
    "  paper anchors: 10M connections fit on-chip; the switch CPU sustains@.";
  Format.fprintf ppf "  ~200K insertions/s (ours is a host-CPU model figure).@."
