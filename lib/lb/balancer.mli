(** The common interface every load balancer in this repository
    implements — SilkRoad, the software balancer, Duet and stateless
    ECMP — so the simulation harness and the PCC oracle can drive any of
    them interchangeably.

    A balancer is driven with three calls:
    - {!advance} moves its internal control plane (switch CPU, SLB
      migration timers, ...) forward to the current virtual time;
    - {!process} forwards one packet and reports which DIP it went to
      and which component handled it;
    - {!update} requests a DIP-pool change for a VIP. *)

type update =
  | Dip_add of Netcore.Endpoint.t
  | Dip_remove of Netcore.Endpoint.t
  | Dip_replace of {
      old_dip : Netcore.Endpoint.t;
      new_dip : Netcore.Endpoint.t;
    }

type location =
  | Asic  (** forwarded at line rate by the switching ASIC *)
  | Switch_cpu  (** slow path through the switch management CPU *)
  | Slb  (** handled by a software load balancer server *)

type reroute = {
  rr_vip : Netcore.Endpoint.t option;
      (** restrict to flows of this VIP; [None] = every VIP *)
  rr_fraction : float;
      (** fraction of matching flows re-routed, selected by a salted
          5-tuple hash so the same flows are chosen on failure and on
          the matching recovery event *)
  rr_salt : int;  (** hash salt identifying this failure episode *)
}
(** Description of a network event — a switch failing, recovering, or a
    VIP migrating to another layer — that moves some flows to a
    different physical balancer instance. The affected flows lose any
    per-connection state the old instance held: ECMP re-hashes them to
    a survivor that never learned them. *)

type disturbance =
  | Cpu_backlog of int
      (** queue this many extra work items on the balancer's slow-path
          processor (the switch management CPU for SilkRoad, the x86
          packet path for an SLB). Used by the chaos harness to model
          control-plane stalls (§4.3's race window); balancers with no
          rate-limited slow path ignore it. *)
  | Reroute of reroute
      (** drop the per-connection state of the selected flows, as an
          upstream re-route to a different switch would. Stateless
          balancers (ECMP) and ones whose state survives the re-route
          (duet's SLB tier) treat it as a no-op. *)

type outcome = {
  dip : Netcore.Endpoint.t option;  (** [None] = packet dropped *)
  location : location;
}

type t = {
  name : string;
  advance : now:float -> unit;
  process : now:float -> Netcore.Packet.t -> outcome;
  update : now:float -> vip:Netcore.Endpoint.t -> update -> unit;
  connections : unit -> int;  (** connection-table entries currently held *)
  metrics : unit -> Telemetry.Registry.t;
      (** the balancer's telemetry registry. Every implementation exposes
          at least the uniform [lb.packets] / [lb.dropped_packets]
          counters, plus its own implementation-specific metrics. A thunk
          so aggregates (e.g. a switch group) can merge member registries
          at snapshot time. *)
  disturb : now:float -> disturbance -> unit;
      (** apply a fault-injection disturbance. Implementations translate
          it to whatever internal resource it stresses; a no-op where the
          disturbance has no analogue. *)
}

val pp_location : Format.formatter -> location -> unit
val pp_update : Format.formatter -> update -> unit

val apply_update : Dip_pool.t -> update -> Dip_pool.t
(** The pure pool transformation an update denotes. *)

val reroute_selects : reroute -> Netcore.Five_tuple.t -> bool
(** Does this re-route event move the given flow? Deterministic in the
    event's salt, so a recovery event with the same salt selects exactly
    the flows its failure event moved away. *)
