(** The common interface every load balancer in this repository
    implements — SilkRoad, the software balancer, Duet and stateless
    ECMP — so the simulation harness and the PCC oracle can drive any of
    them interchangeably.

    A balancer is driven with three calls:
    - {!advance} moves its internal control plane (switch CPU, SLB
      migration timers, ...) forward to the current virtual time;
    - {!process} forwards one packet and reports which DIP it went to
      and which component handled it;
    - {!update} requests a DIP-pool change for a VIP. *)

type update =
  | Dip_add of Netcore.Endpoint.t
  | Dip_remove of Netcore.Endpoint.t
  | Dip_replace of {
      old_dip : Netcore.Endpoint.t;
      new_dip : Netcore.Endpoint.t;
    }

type location =
  | Asic  (** forwarded at line rate by the switching ASIC *)
  | Switch_cpu  (** slow path through the switch management CPU *)
  | Slb  (** handled by a software load balancer server *)

type disturbance =
  | Cpu_backlog of int
      (** queue this many extra work items on the balancer's slow-path
          processor (the switch management CPU for SilkRoad, the x86
          packet path for an SLB). Used by the chaos harness to model
          control-plane stalls (§4.3's race window); balancers with no
          rate-limited slow path ignore it. *)

type outcome = {
  dip : Netcore.Endpoint.t option;  (** [None] = packet dropped *)
  location : location;
}

type t = {
  name : string;
  advance : now:float -> unit;
  process : now:float -> Netcore.Packet.t -> outcome;
  update : now:float -> vip:Netcore.Endpoint.t -> update -> unit;
  connections : unit -> int;  (** connection-table entries currently held *)
  metrics : unit -> Telemetry.Registry.t;
      (** the balancer's telemetry registry. Every implementation exposes
          at least the uniform [lb.packets] / [lb.dropped_packets]
          counters, plus its own implementation-specific metrics. A thunk
          so aggregates (e.g. a switch group) can merge member registries
          at snapshot time. *)
  disturb : now:float -> disturbance -> unit;
      (** apply a fault-injection disturbance. Implementations translate
          it to whatever internal resource it stresses; a no-op where the
          disturbance has no analogue. *)
}

val pp_location : Format.formatter -> location -> unit
val pp_update : Format.formatter -> update -> unit

val apply_update : Dip_pool.t -> update -> Dip_pool.t
(** The pure pool transformation an update denotes. *)
