(** The per-connection-consistency oracle.

    PCC (§2.1): for a given connection c, every packet of c must be
    mapped to the DIP chosen for c's first packet. The oracle watches
    every (flow, packet, chosen DIP) the harness produces and records,
    per flow, the first assignment and any later deviation. A flow with
    at least one deviating or dropped packet is a {e broken} connection —
    the quantity Figures 5b, 16, 17 and 18 report. *)

type t

val create : unit -> t

type verdict =
  | First  (** first packet of a new connection, assignment recorded *)
  | Consistent  (** matched the connection's first assignment *)
  | Violation  (** inconsistent or dropped — a PCC violation *)
  | Excluded  (** connection pinned to a removed DIP: not judged *)

val judge : t -> flow_id:int -> dip:Netcore.Endpoint.t option -> verdict
(** Record one forwarded packet of the flow and report the verdict, so a
    caller (e.g. the chaos harness) can attribute each violation to
    whatever fault was active when it happened. [dip = None] (drop) on a
    judged connection is a violation; on a first packet it both registers
    and breaks the connection. *)

val on_packet : t -> flow_id:int -> dip:Netcore.Endpoint.t option -> unit
(** [judge] with the verdict ignored. *)

val on_finish : t -> flow_id:int -> unit
(** The flow ended; its tracking state can be discarded (its verdict is
    kept). *)

val on_dip_removed : t -> dip:Netcore.Endpoint.t -> unit
(** A DIP left its pool (reboot, failure, ...): connections pinned to it
    are dead regardless of what the balancer does, so the oracle stops
    judging them. This mirrors the paper's accounting, where a PCC
    violation is a {e live} connection remapped away from a {e live}
    server. *)

val total : t -> int
(** Number of distinct connections observed. *)

val broken : t -> int
(** Connections with at least one inconsistent or dropped packet. *)

val broken_fraction : t -> float
(** [broken / total]; 0 when no connections were observed. *)

val violations : t -> int
(** Total inconsistent packets (a single broken connection may count
    several). *)
