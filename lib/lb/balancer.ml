type update =
  | Dip_add of Netcore.Endpoint.t
  | Dip_remove of Netcore.Endpoint.t
  | Dip_replace of {
      old_dip : Netcore.Endpoint.t;
      new_dip : Netcore.Endpoint.t;
    }

type location =
  | Asic
  | Switch_cpu
  | Slb

type reroute = {
  rr_vip : Netcore.Endpoint.t option;
  rr_fraction : float;
  rr_salt : int;
}

type disturbance =
  | Cpu_backlog of int
  | Reroute of reroute

type outcome = {
  dip : Netcore.Endpoint.t option;
  location : location;
}

type t = {
  name : string;
  advance : now:float -> unit;
  process : now:float -> Netcore.Packet.t -> outcome;
  update : now:float -> vip:Netcore.Endpoint.t -> update -> unit;
  connections : unit -> int;
  metrics : unit -> Telemetry.Registry.t;
  disturb : now:float -> disturbance -> unit;
}

let pp_location ppf l =
  Format.pp_print_string ppf
    (match l with Asic -> "asic" | Switch_cpu -> "switch-cpu" | Slb -> "slb")

let pp_update ppf = function
  | Dip_add d -> Format.fprintf ppf "add %a" Netcore.Endpoint.pp d
  | Dip_remove d -> Format.fprintf ppf "remove %a" Netcore.Endpoint.pp d
  | Dip_replace { old_dip; new_dip } ->
    Format.fprintf ppf "replace %a -> %a" Netcore.Endpoint.pp old_dip Netcore.Endpoint.pp new_dip

let reroute_selects r flow =
  let vip_matches =
    match r.rr_vip with
    | None -> true
    | Some vip -> Netcore.Endpoint.equal flow.Netcore.Five_tuple.dst vip
  in
  vip_matches
  && (r.rr_fraction >= 1.
     ||
     let h = Netcore.Five_tuple.hash ~seed:r.rr_salt flow in
     Netcore.Hashing.to_range h 1_000_000
     < int_of_float (r.rr_fraction *. 1_000_000.))

let apply_update pool = function
  | Dip_add d -> Dip_pool.add pool d
  | Dip_remove d -> Dip_pool.remove pool d
  | Dip_replace { old_dip; new_dip } -> Dip_pool.replace pool ~old_dip ~new_dip
