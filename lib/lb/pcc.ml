type state = {
  first : Netcore.Endpoint.t option;  (** None when the first packet was dropped *)
  mutable bad : bool;
  mutable excluded : bool;  (** its server went away: no longer judged *)
}

type t = {
  live : (int, state) Hashtbl.t;
  mutable total : int;
  mutable broken : int;
  mutable violations : int;
}

let create () = { live = Hashtbl.create 1024; total = 0; broken = 0; violations = 0 }

type verdict =
  | First
  | Consistent
  | Violation
  | Excluded

let judge t ~flow_id ~dip =
  match Hashtbl.find_opt t.live flow_id with
  | None ->
    t.total <- t.total + 1;
    let bad = dip = None in
    if bad then begin
      t.broken <- t.broken + 1;
      t.violations <- t.violations + 1
    end;
    Hashtbl.replace t.live flow_id { first = dip; bad; excluded = false };
    if bad then Violation else First
  | Some st when st.excluded -> Excluded
  | Some st ->
    let consistent =
      match st.first, dip with
      | Some f, Some d -> Netcore.Endpoint.equal f d
      | None, _ -> false
      | Some _, None -> false
    in
    if not consistent then begin
      t.violations <- t.violations + 1;
      if not st.bad then begin
        st.bad <- true;
        t.broken <- t.broken + 1
      end;
      Violation
    end
    else Consistent

let on_packet t ~flow_id ~dip = ignore (judge t ~flow_id ~dip)

let on_finish t ~flow_id = Hashtbl.remove t.live flow_id

let on_dip_removed t ~dip =
  Hashtbl.iter
    (fun _ st ->
      match st.first with
      | Some d when Netcore.Endpoint.equal d dip -> st.excluded <- true
      | Some _ | None -> ())
    t.live

let total t = t.total
let broken t = t.broken

let broken_fraction t = if t.total = 0 then 0. else float_of_int t.broken /. float_of_int t.total

let violations t = t.violations
