let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  assert (p >= 0. && p <= 100.);
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let median xs = percentile xs 50.
let p99 xs = percentile xs 99.

(* List-free counterparts on streaming histograms: constant memory, so
   the harness can use them at any packet count. The list versions above
   stay exact and are fine for small inputs. *)
let percentile_of_histogram h p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile_of_histogram";
  Telemetry.Histogram.quantile h (p /. 100.)

let median_of_histogram h = Telemetry.Histogram.median h
let p99_of_histogram h = Telemetry.Histogram.p99 h

let cdf xs ~points =
  let n = float_of_int (List.length xs) in
  List.map
    (fun point ->
      if xs = [] then (point, 0.)
      else
        let below = List.length (List.filter (fun x -> x <= point) xs) in
        (point, float_of_int below /. n))
    points

let cdf_curve xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = float_of_int (Array.length arr) in
  Array.to_list (Array.mapi (fun i v -> (v, float_of_int (i + 1) /. n)) arr)

let ccdf_at xs threshold =
  if xs = [] then 0.
  else
    let above = List.length (List.filter (fun x -> x > threshold) xs) in
    float_of_int above /. float_of_int (List.length xs)

let histogram xs ~bins =
  List.map
    (fun (lo, hi) ->
      let count = List.length (List.filter (fun x -> x >= lo && x < hi) xs) in
      (lo, hi, count))
    bins
