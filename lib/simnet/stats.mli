(** Descriptive statistics for experiment reporting: percentiles, CDFs
    and fixed-bin histograms. All figures in the paper are CDFs across
    clusters or series over a swept parameter; this module produces those
    rows. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], by linear interpolation
    between order statistics. Raises [Invalid_argument] on []. *)

val median : float list -> float
val p99 : float list -> float

(** List-free counterparts over streaming telemetry histograms — use
    these when the sample count is unbounded (the harness driver feeds
    every probe latency through one); the list versions above remain
    exact for small inputs. Accuracy is the histogram's bucket width
    (under 6% relative with {!Telemetry.Histogram.default_spec}). *)

val percentile_of_histogram : Telemetry.Histogram.t -> float -> float
(** [percentile_of_histogram h p] with [p] in [0, 100]. Returns [0.] on
    an empty histogram; raises [Invalid_argument] on a [p] out of
    range. *)

val median_of_histogram : Telemetry.Histogram.t -> float
val p99_of_histogram : Telemetry.Histogram.t -> float

val cdf : float list -> points:float list -> (float * float) list
(** [cdf xs ~points] evaluates the empirical CDF of [xs] at each point:
    fraction of samples <= point. *)

val cdf_curve : float list -> (float * float) list
(** The full empirical CDF as (value, cumulative fraction) steps, sorted
    ascending. *)

val ccdf_at : float list -> float -> float
(** Fraction of samples strictly greater than the threshold ("Y% of
    clusters have more than X updates" — Figure 2's axis). *)

val histogram : float list -> bins:(float * float) list -> (float * float * int) list
(** Counts per [lo, hi) bin. *)
