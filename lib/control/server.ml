let run_channels session ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
        match Session.exec_line session line with
        | None -> loop ()
        | Some resp ->
            output_string oc (Protocol.render_response resp);
            output_char oc '\n';
            flush oc;
            if not (Session.closed session) then loop ())
  in
  loop ()

let run_script session ~path oc =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> run_channels session ic oc)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

let run_socket session ~path =
  unlink_quiet path;
  (* A client that disconnects mid-response must surface as an EPIPE
     Sys_error on our write (caught below, next client served), not as
     a process-killing SIGPIPE. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      unlink_quiet path;
      match prev_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
      | None -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 1;
      while not (Session.closed session) do
        let fd, _ = Unix.accept srv in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try run_channels session ic oc with Sys_error _ | Unix.Unix_error _ -> ());
        (* closing the out channel closes the shared fd *)
        (try close_out oc with Sys_error _ -> ())
      done)
