(** A long-running control session: one or more hot SilkRoad switches
    driven by {!Protocol} commands while replay traffic flows through
    them concurrently.

    The session owns {!Harness.Replay.Stepper}s — the exact per-shard
    incremental loop {!Harness.Replay.run} is built from — and never
    touches the switches outside {!Harness.Replay.Stepper.apply} /
    [flush_to] / [finish]. A scripted session is therefore
    counter-identical, down to the merged telemetry snapshot, to a batch
    replay of the same trace with the equivalent control list: both
    execute the same switch calls in the same order (the test suite pins
    this).

    Time is virtual and owned by the session: it only moves on [advance]
    (and [drain], which jumps to the trace horizon), so sessions are
    deterministic regardless of wall-clock scheduling.

    {2 Sequence numbers (at-least-once delivery)}

    A command carrying [@N] is applied only when [N] is greater than the
    highest sequence number already applied; a re-delivered (stale)
    number is acked [ok @N duplicate] without touching any state.
    Failed commands do not consume their sequence number, so a client
    retrying an errored command gets the same error again — re-delivery
    is idempotent either way. Unsequenced commands always apply.

    {2 Telemetry}

    The session reports under [control.*] in its own registry:
    [control.commands] (labeled by command), [control.errors],
    [control.duplicates], [control.pending_updates],
    [control.update_apply_seconds] (request-to-finish latency of every
    3-step update, via {!Silkroad.Switch.on_update_done}),
    [control.version_recycle_seconds] (how long an update's old version
    lingered before DIPPoolTable destroyed it, observed at command
    granularity), and [control.transit_population] (TransitTable Bloom
    population sampled after every command). *)

type t

val create :
  ?cfg:Silkroad.Config.t ->
  ?shards:int ->
  ?batched:bool ->
  ?vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  ?trace:Harness.Packed_trace.t ->
  unit ->
  t
(** [?shards] (default 1) switches partitioned as in sharded replay;
    [?batched] (default true) selects {!Silkroad.Switch.process_batch}
    for the packet path; [?vips] are pre-registered on every switch
    before any traffic, exactly like [make_switch] in a batch run (VIPs
    can equally be added with [vip-add] commands at time 0); [?trace]
    (default empty) is the concurrent data-plane load, whose packets are
    interleaved with commands in virtual-time order. *)

val exec : t -> Protocol.line -> Protocol.response
val exec_line : t -> string -> Protocol.response option
(** [None] for blank/comment lines; parse failures come back as [err]
    responses (and count as [control.errors]) without touching state. *)

val now : t -> float
val horizon : t -> float
val drained : t -> bool
val closed : t -> bool

val counts : t -> Harness.Replay.counts
(** PCC accounting summed over shards — the same numbers a batch
    {!Harness.Replay.run} of the equivalent control list reports. *)

val pending_updates : t -> int
(** Control-path backlog of shard 0's switch. *)

val switches : t -> Silkroad.Switch.t array

val control_metrics : t -> Telemetry.Registry.t
(** The session's own [control.*] registry. *)

val switch_metrics : t -> Telemetry.Registry.t
(** Fresh merge of every shard switch's registry — the piece compared
    byte-for-byte against a batch replay's switch telemetry. *)

val metrics : t -> Telemetry.Registry.t
(** [control_metrics] and [switch_metrics] merged. *)
