(** Transports for a {!Session}: a line-oriented loop over channels
    (stdin/stdout, a script file, or a Unix-domain socket).

    Every transport is a thin shell around {!Session.exec_line}: read a
    line, write the rendered ack, flush, stop when the session closes
    ([quit]) or the input ends. Determinism lives entirely in the
    session — the transports add no time source of their own. *)

val run_channels : Session.t -> in_channel -> out_channel -> unit
(** Serve until [quit] is acked or EOF. Blank/comment lines produce no
    ack. *)

val run_script : Session.t -> path:string -> out_channel -> unit
(** {!run_channels} over the commands in [path] — the deterministic
    [--script FILE] mode. Raises [Sys_error] when the file cannot be
    read. *)

val run_socket : Session.t -> path:string -> unit
(** Listen on a Unix-domain socket at [path] (an existing socket file is
    replaced) and serve clients one at a time over the same session,
    until one of them issues [quit]; the socket file is removed on
    return. *)
