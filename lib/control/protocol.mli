(** The serve-mode line protocol: one command per line, one ack per
    command.

    Grammar (tokens separated by spaces or tabs; blank lines and lines
    starting with [#] are ignored):

    {v
    line        := [@SEQ] command
    command     := vip-add VIP DIP [DIP ...]
                 | vip-remove VIP
                 | dip-add VIP DIP
                 | dip-remove VIP DIP
                 | dip-replace VIP OLD_DIP NEW_DIP
                 | health down DIP | health up DIP
                 | advance SECONDS
                 | stats [METRIC]
                 | drain
                 | quit
    response    := ok [@SEQ] [payload]
                 | err [@SEQ] message
    v}

    [VIP]/[DIP] are [ip:port] endpoints ({!Netcore.Endpoint.of_string}
    syntax); [SECONDS] is a non-negative finite float rendered with
    [%.17g] so every finite value round-trips exactly; [@SEQ] is an
    optional non-negative sequence number clients use for at-least-once
    delivery — the session acks a re-delivered sequence number without
    re-applying the command (see {!Session}).

    [parse] and [render] are exact inverses on the parseable set:
    [parse (render l) = Ok (Some l)] for every [l] whose [stats] query,
    if any, contains no whitespace ([render] never produces one that
    does if the query was itself parsed). The qcheck suite pins this. *)

type command =
  | Vip_add of Netcore.Endpoint.t * Netcore.Endpoint.t list
      (** VIP plus its initial, non-empty DIP pool *)
  | Vip_remove of Netcore.Endpoint.t
  | Dip_add of Netcore.Endpoint.t * Netcore.Endpoint.t  (** (vip, dip) *)
  | Dip_remove of Netcore.Endpoint.t * Netcore.Endpoint.t
  | Dip_replace of {
      vip : Netcore.Endpoint.t;
      old_dip : Netcore.Endpoint.t;
      new_dip : Netcore.Endpoint.t;
    }
  | Health of [ `Down | `Up ] * Netcore.Endpoint.t
  | Advance of float  (** advance virtual time by this many seconds *)
  | Stats of string option  (** [None] = the one-line PCC/backlog summary *)
  | Drain
  | Quit

type line = {
  seq : int option;
  cmd : command;
}

type response = {
  rseq : int option;  (** echoes the command's sequence number *)
  body : (string, string) result;  (** [Ok payload] or [Error message] *)
}

val equal_command : command -> command -> bool
val equal_line : line -> line -> bool
val equal_response : response -> response -> bool

val render : line -> string
(** One line, no trailing newline. *)

val parse : string -> (line option, string) result
(** [Ok None] for blank/comment lines, [Error _] (human-readable, never
    raising) for anything else that is not a well-formed command.
    Tolerant of socket-client line endings: tabs, carriage returns and
    runs of spaces all separate tokens, so CRLF-terminated and
    trailing-whitespace lines parse like their canonical forms.
    [parse ∘ render] is the identity on well-formed lines. *)

val render_response : response -> string
val parse_response : string -> (response, string) result
(** Exact inverse of {!render_response}: the payload is carried
    verbatim, trailing spaces included. A line ending in ['\r'] came
    off a CRLF socket client, so its whole trailing-whitespace run is
    stripped before parsing. *)

val pp_line : Format.formatter -> line -> unit
val pp_response : Format.formatter -> response -> unit
