module Stepper = Harness.Replay.Stepper
module Registry = Telemetry.Registry

type phase =
  | Running
  | Drained
  | Closed

type t = {
  steppers : Stepper.t array;
  trace_horizon : float;
  registry : Registry.t;
  c_errors : Registry.Counter.t;
  c_dups : Registry.Counter.t;
  g_pending : Registry.Gauge.t;
  h_apply : Telemetry.Histogram.t;
  h_recycle : Telemetry.Histogram.t;
  h_transit : Telemetry.Histogram.t;
  mutable now : float;
  mutable last_seq : int;
  mutable phase : phase;
  members : (Netcore.Endpoint.t, Netcore.Endpoint.t list) Hashtbl.t;
      (* target pool membership per VIP: validated against before any
         switch call so a rejected command provably touches no state *)
  mutable vip_order : Netcore.Endpoint.t list;  (* insertion order *)
  downed : (Netcore.Endpoint.t, Netcore.Endpoint.t list) Hashtbl.t;
      (* dead DIP -> the VIPs it was withdrawn from, in order *)
  mutable watches : (Netcore.Endpoint.t * int * float) list;
      (* (vip, old version, request time): completed updates whose old
         version has not been observed recycled yet *)
}

let switch0 t = Stepper.switch t.steppers.(0)

(* Population counts span 1 .. bloom bits, far beyond the latency
   histogram's default range. *)
let transit_spec = { Telemetry.Histogram.lo = 1.0; decades = 9; buckets_per_decade = 10 }

let create ?(cfg = Silkroad.Config.default) ?(shards = 1) ?(batched = true) ?(vips = [])
    ?trace () =
  if shards < 1 then invalid_arg "Session.create: shards must be >= 1";
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Harness.Packed_trace.compile ~horizon:0. []
  in
  let sh = Stepper.make_shared ~trace ~shards in
  let steppers =
    Array.init shards (fun k ->
        let sw = Silkroad.Switch.create cfg in
        List.iter (fun (v, pool) -> Silkroad.Switch.add_vip sw v pool) vips;
        Stepper.create sh ~shard:k ~batched sw)
  in
  let registry = Registry.create () in
  let members = Hashtbl.create 16 in
  List.iter
    (fun (v, pool) ->
      Hashtbl.replace members v (Array.to_list (Lb.Dip_pool.members pool)))
    vips;
  let t =
    {
      steppers;
      trace_horizon = Stepper.horizon sh;
      registry;
      c_errors = Registry.counter registry "control.errors";
      c_dups = Registry.counter registry "control.duplicates";
      g_pending = Registry.gauge registry "control.pending_updates";
      h_apply = Registry.histogram registry "control.update_apply_seconds";
      h_recycle = Registry.histogram registry "control.version_recycle_seconds";
      h_transit = Registry.histogram registry ~spec:transit_spec "control.transit_population";
      now = 0.;
      last_seq = -1;
      phase = Running;
      members;
      vip_order = List.map fst vips;
      downed = Hashtbl.create 8;
      watches = [];
    }
  in
  Silkroad.Switch.on_update_done (switch0 t) (fun (r : Silkroad.Switch.update_report) ->
      Telemetry.Histogram.observe t.h_apply (r.ur_finished -. r.ur_requested);
      match r.ur_outcome with
      | `Completed when r.ur_old_version <> r.ur_new_version ->
          t.watches <- (r.ur_vip, r.ur_old_version, r.ur_requested) :: t.watches
      | `Completed | `Failed -> ());
  t

let now t = t.now
let horizon t = t.trace_horizon
let drained t = t.phase <> Running
let closed t = t.phase = Closed
let switches t = Array.map Stepper.switch t.steppers
let pending_updates t = Silkroad.Switch.pending_updates (switch0 t)

let counts t =
  Harness.Replay.sum_counts (Array.to_list (Array.map Stepper.counts t.steppers))

let control_metrics t = t.registry

let switch_metrics t =
  Registry.merge_all
    (Array.to_list (Array.map (fun st -> Silkroad.Switch.metrics (Stepper.switch st)) t.steppers))

let metrics t = Registry.merge_all [ t.registry; switch_metrics t ]

(* ---- command application ---- *)

let each t f = Array.iter f t.steppers
let flush t = each t (fun st -> Stepper.flush_to st t.now)
let apply_ctrl t ctrl = each t (fun st -> Stepper.apply st ~at:t.now ctrl)

let ep = Netcore.Endpoint.to_string

(* A version is recycled when its pool is gone; a version that became
   current again was reused, not recycled (drop the watch silently).
   Observed at command granularity, so the latency is rounded up to the
   next command after the actual destruction. *)
let poll_watches t =
  let sw = switch0 t in
  let pools = Silkroad.Switch.pools sw and vt = Silkroad.Switch.vip_table sw in
  t.watches <-
    List.filter
      (fun (vip, version, requested) ->
        match Silkroad.Dip_pool_table.pool pools ~vip ~version with
        | None ->
            Telemetry.Histogram.observe t.h_recycle (t.now -. requested);
            false
        | Some _ -> (
            match Silkroad.Vip_table.current vt vip with
            | Some c when c = version -> false
            | Some _ | None -> true))
      t.watches

let observe t =
  poll_watches t;
  Telemetry.Histogram.observe t.h_transit
    (float_of_int (Asic.Bloom_filter.population (Silkroad.Switch.transit_filter (switch0 t))));
  Registry.Gauge.set t.g_pending (float_of_int (pending_updates t))

let member_list t vip = Hashtbl.find_opt t.members vip

let summary t =
  let c = counts t in
  Printf.sprintf "t=%g packets=%d dropped=%d connections=%d broken=%d violations=%d pending=%d"
    t.now c.c_packets c.c_dropped c.c_connections c.c_broken c.c_violations
    (pending_updates t)

let metric_summary t name =
  match Telemetry.Snapshot.find (Registry.snapshot (metrics t)) name with
  | None -> Error (Printf.sprintf "unknown metric %S" name)
  | Some { value = Counter n; _ } -> Ok (Printf.sprintf "%s=%d" name n)
  | Some { value = Gauge g; _ } -> Ok (Printf.sprintf "%s=%g" name g)
  | Some { value = Histogram s; _ } ->
      Ok
        (Printf.sprintf "%s count=%d sum=%g min=%g max=%g p50=%g p99=%g" name s.count s.sum
           s.min s.max s.p50 s.p99)

let drain t =
  if t.phase = Running then begin
    t.now <- Float.max t.trace_horizon t.now;
    each t (fun st -> Stepper.finish st ~now:t.now);
    t.phase <- Drained
  end;
  Ok (Printf.sprintf "drained t=%g pending=%d" t.now (pending_updates t))

let rec distinct = function
  | [] -> true
  | d :: rest -> (not (List.exists (Netcore.Endpoint.equal d) rest)) && distinct rest

let vip_add t vip dips =
  if Hashtbl.mem t.members vip then Error (Printf.sprintf "vip %s already exists" (ep vip))
  else if not (distinct dips) then Error "duplicate dip in pool"
  else begin
    flush t;
    each t (fun st -> Silkroad.Switch.add_vip (Stepper.switch st) vip (Lb.Dip_pool.of_list dips));
    Hashtbl.replace t.members vip dips;
    t.vip_order <- t.vip_order @ [ vip ];
    Ok (Printf.sprintf "vip %s pool=%d" (ep vip) (List.length dips))
  end

let vip_remove t vip =
  if not (Hashtbl.mem t.members vip) then Error (Printf.sprintf "unknown vip %s" (ep vip))
  else begin
    flush t;
    (* Switch.remove_vip validates (active/queued update) before any
       mutation, and every shard is in the same update state, so a raise
       from the first switch means nothing changed anywhere. *)
    match each t (fun st -> Silkroad.Switch.remove_vip (Stepper.switch st) vip) with
    | () ->
        Hashtbl.remove t.members vip;
        t.vip_order <- List.filter (fun v -> not (Netcore.Endpoint.equal v vip)) t.vip_order;
        t.watches <- List.filter (fun (v, _, _) -> not (Netcore.Endpoint.equal v vip)) t.watches;
        Ok (Printf.sprintf "vip %s removed" (ep vip))
    | exception Invalid_argument msg -> Error msg
  end

let dip_add t vip dip =
  match member_list t vip with
  | None -> Error (Printf.sprintf "unknown vip %s" (ep vip))
  | Some ms when List.exists (Netcore.Endpoint.equal dip) ms ->
      Error (Printf.sprintf "dip %s already in pool of %s" (ep dip) (ep vip))
  | Some ms ->
      apply_ctrl t (Harness.Replay.Update (vip, Lb.Balancer.Dip_add dip));
      Hashtbl.replace t.members vip (ms @ [ dip ]);
      Ok (Printf.sprintf "vip %s pool=%d" (ep vip) (List.length ms + 1))

let dip_remove t vip dip =
  match member_list t vip with
  | None -> Error (Printf.sprintf "unknown vip %s" (ep vip))
  | Some ms when not (List.exists (Netcore.Endpoint.equal dip) ms) ->
      Error (Printf.sprintf "dip %s not in pool of %s" (ep dip) (ep vip))
  | Some [ _ ] -> Error (Printf.sprintf "cannot remove the last dip of %s" (ep vip))
  | Some ms ->
      apply_ctrl t (Harness.Replay.Update (vip, Lb.Balancer.Dip_remove dip));
      Hashtbl.replace t.members vip
        (List.filter (fun d -> not (Netcore.Endpoint.equal d dip)) ms);
      Ok (Printf.sprintf "vip %s pool=%d" (ep vip) (List.length ms - 1))

let dip_replace t vip ~old_dip ~new_dip =
  match member_list t vip with
  | None -> Error (Printf.sprintf "unknown vip %s" (ep vip))
  | Some ms when not (List.exists (Netcore.Endpoint.equal old_dip) ms) ->
      Error (Printf.sprintf "dip %s not in pool of %s" (ep old_dip) (ep vip))
  | Some ms when List.exists (Netcore.Endpoint.equal new_dip) ms ->
      Error (Printf.sprintf "dip %s already in pool of %s" (ep new_dip) (ep vip))
  | Some ms ->
      apply_ctrl t (Harness.Replay.Update (vip, Lb.Balancer.Dip_replace { old_dip; new_dip }));
      Hashtbl.replace t.members vip
        (List.map (fun d -> if Netcore.Endpoint.equal d old_dip then new_dip else d) ms);
      Ok (Printf.sprintf "vip %s pool=%d" (ep vip) (List.length ms))

let health_down t dip =
  if Hashtbl.mem t.downed dip then Error (Printf.sprintf "dip %s already down" (ep dip))
  else begin
    let containing =
      List.filter
        (fun v ->
          match member_list t v with
          | Some ms -> List.exists (Netcore.Endpoint.equal dip) ms
          | None -> false)
        t.vip_order
    in
    if containing = [] then Error (Printf.sprintf "dip %s not in any pool" (ep dip))
    else begin
      (* Withdraw from every pool it does not hold up alone; a pool may
         not go empty, so there the DIP stays and only PCC learns it is
         dead (the exclusion every removal already carries). *)
      let affected =
        List.filter
          (fun v -> List.length (Option.get (member_list t v)) > 1)
          containing
      in
      if affected = [] then apply_ctrl t (Harness.Replay.Dip_dead dip)
      else
        List.iter
          (fun vip ->
            apply_ctrl t (Harness.Replay.Update (vip, Lb.Balancer.Dip_remove dip));
            Hashtbl.replace t.members vip
              (List.filter
                 (fun d -> not (Netcore.Endpoint.equal d dip))
                 (Option.get (member_list t vip))))
          affected;
      Hashtbl.replace t.downed dip affected;
      Ok (Printf.sprintf "down %s withdrawn_from=%d" (ep dip) (List.length affected))
    end
  end

let health_up t dip =
  match Hashtbl.find_opt t.downed dip with
  | None -> Error (Printf.sprintf "dip %s is not down" (ep dip))
  | Some vips ->
      let restored =
        List.filter
          (fun vip ->
            match member_list t vip with
            | Some ms when not (List.exists (Netcore.Endpoint.equal dip) ms) ->
                apply_ctrl t (Harness.Replay.Update (vip, Lb.Balancer.Dip_add dip));
                Hashtbl.replace t.members vip (ms @ [ dip ]);
                true
            | Some _ | None -> false)
          vips
      in
      Hashtbl.remove t.downed dip;
      Ok (Printf.sprintf "up %s restored_to=%d" (ep dip) (List.length restored))

let apply t (cmd : Protocol.command) =
  match (t.phase, cmd) with
  | Closed, _ -> Error "session closed"
  | _, Quit ->
      t.phase <- Closed;
      Ok "bye"
  | _, Stats None -> Ok (summary t)
  | _, Stats (Some name) -> metric_summary t name
  | _, Drain -> drain t
  | Drained, _ -> Error "session drained"
  | Running, Vip_add (vip, dips) -> vip_add t vip dips
  | Running, Vip_remove vip -> vip_remove t vip
  | Running, Dip_add (vip, dip) -> dip_add t vip dip
  | Running, Dip_remove (vip, dip) -> dip_remove t vip dip
  | Running, Dip_replace { vip; old_dip; new_dip } -> dip_replace t vip ~old_dip ~new_dip
  | Running, Health (`Down, dip) -> health_down t dip
  | Running, Health (`Up, dip) -> health_up t dip
  | Running, Advance dt ->
      t.now <- t.now +. dt;
      flush t;
      Ok (Printf.sprintf "t=%g" t.now)

let verb : Protocol.command -> string = function
  | Vip_add _ -> "vip-add"
  | Vip_remove _ -> "vip-remove"
  | Dip_add _ -> "dip-add"
  | Dip_remove _ -> "dip-remove"
  | Dip_replace _ -> "dip-replace"
  | Health (`Down, _) -> "health-down"
  | Health (`Up, _) -> "health-up"
  | Advance _ -> "advance"
  | Stats _ -> "stats"
  | Drain -> "drain"
  | Quit -> "quit"

let mutating : Protocol.command -> bool = function
  | Stats _ -> false
  | Vip_add _ | Vip_remove _ | Dip_add _ | Dip_remove _ | Dip_replace _ | Health _
  | Advance _ | Drain | Quit ->
      true

let exec t { Protocol.seq; cmd } =
  Registry.Counter.incr (Registry.counter t.registry ~labels:[ ("cmd", verb cmd) ] "control.commands");
  match seq with
  | Some n when n <= t.last_seq ->
      Registry.Counter.incr t.c_dups;
      { Protocol.rseq = seq; body = Ok "duplicate" }
  | _ ->
      let result = apply t cmd in
      (match (result, seq) with
      | Ok _, Some n when mutating cmd -> t.last_seq <- n
      | _ -> ());
      observe t;
      (match result with Error _ -> Registry.Counter.incr t.c_errors | Ok _ -> ());
      { Protocol.rseq = seq; body = result }

let exec_line t s =
  match Protocol.parse s with
  | Ok None -> None
  | Ok (Some line) -> Some (exec t line)
  | Error msg ->
      Registry.Counter.incr t.c_errors;
      Some { Protocol.rseq = None; body = Error msg }
