type command =
  | Vip_add of Netcore.Endpoint.t * Netcore.Endpoint.t list
  | Vip_remove of Netcore.Endpoint.t
  | Dip_add of Netcore.Endpoint.t * Netcore.Endpoint.t
  | Dip_remove of Netcore.Endpoint.t * Netcore.Endpoint.t
  | Dip_replace of {
      vip : Netcore.Endpoint.t;
      old_dip : Netcore.Endpoint.t;
      new_dip : Netcore.Endpoint.t;
    }
  | Health of [ `Down | `Up ] * Netcore.Endpoint.t
  | Advance of float
  | Stats of string option
  | Drain
  | Quit

type line = {
  seq : int option;
  cmd : command;
}

type response = {
  rseq : int option;
  body : (string, string) result;
}

let equal_command a b =
  let ep = Netcore.Endpoint.equal in
  match (a, b) with
  | Vip_add (v, ds), Vip_add (v', ds') -> ep v v' && List.equal ep ds ds'
  | Vip_remove v, Vip_remove v' -> ep v v'
  | Dip_add (v, d), Dip_add (v', d') | Dip_remove (v, d), Dip_remove (v', d') ->
      ep v v' && ep d d'
  | Dip_replace r, Dip_replace r' ->
      ep r.vip r'.vip && ep r.old_dip r'.old_dip && ep r.new_dip r'.new_dip
  | Health (s, d), Health (s', d') -> s = s' && ep d d'
  | Advance x, Advance y -> Float.equal x y
  | Stats q, Stats q' -> Option.equal String.equal q q'
  | Drain, Drain | Quit, Quit -> true
  | ( ( Vip_add _ | Vip_remove _ | Dip_add _ | Dip_remove _ | Dip_replace _
      | Health _ | Advance _ | Stats _ | Drain | Quit ),
      _ ) ->
      false

let equal_line a b = Option.equal Int.equal a.seq b.seq && equal_command a.cmd b.cmd

let equal_response a b =
  Option.equal Int.equal a.rseq b.rseq
  &&
  match (a.body, b.body) with
  | Ok x, Ok y | Error x, Error y -> String.equal x y
  | Ok _, Error _ | Error _, Ok _ -> false

(* %.17g is the shortest fixed precision that round-trips every finite
   float exactly through [float_of_string]. *)
let render_float x = Printf.sprintf "%.17g" x

let render { seq; cmd } =
  let ep = Netcore.Endpoint.to_string in
  let words =
    match cmd with
    | Vip_add (vip, dips) -> ("vip-add" :: ep vip :: List.map ep dips : string list)
    | Vip_remove vip -> [ "vip-remove"; ep vip ]
    | Dip_add (vip, dip) -> [ "dip-add"; ep vip; ep dip ]
    | Dip_remove (vip, dip) -> [ "dip-remove"; ep vip; ep dip ]
    | Dip_replace { vip; old_dip; new_dip } ->
        [ "dip-replace"; ep vip; ep old_dip; ep new_dip ]
    | Health (`Down, dip) -> [ "health"; "down"; ep dip ]
    | Health (`Up, dip) -> [ "health"; "up"; ep dip ]
    | Advance dt -> [ "advance"; render_float dt ]
    | Stats None -> [ "stats" ]
    | Stats (Some q) -> [ "stats"; q ]
    | Drain -> [ "drain" ]
    | Quit -> [ "quit" ]
  in
  let words = match seq with None -> words | Some n -> Printf.sprintf "@%d" n :: words in
  String.concat " " words

let tokenize s =
  String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) s
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

(* Socket clients send CRLF line endings and the odd trailing
   tab/space; input_line only strips the '\n'. A line ending in '\r'
   came off such a client, so the whole trailing-whitespace run goes;
   a line without one is canonical and stays byte-verbatim (responses
   carry their payload verbatim, trailing spaces included). *)
let strip_line s =
  let n = String.length s in
  if n = 0 || s.[n - 1] <> '\r' then s
  else begin
    let rec last i =
      if i > 0 && (s.[i - 1] = ' ' || s.[i - 1] = '\t' || s.[i - 1] = '\r') then last (i - 1)
      else i
    in
    String.sub s 0 (last n)
  end

let parse_endpoint what tok =
  match Netcore.Endpoint.of_string tok with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "malformed %s %S (want ip:port)" what tok)

let ( let* ) = Result.bind

let parse_seq tok =
  if String.length tok < 2 || tok.[0] <> '@' then Ok None
  else
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n when n >= 0 -> Ok (Some n)
    | Some _ | None -> Error (Printf.sprintf "malformed sequence number %S" tok)

let parse_command verb args =
  let endpoints what l =
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        let* e = parse_endpoint what tok in
        Ok (e :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let arity2 what k =
    match args with
    | [ a; b ] ->
        let* vip = parse_endpoint "vip" a in
        let* dip = parse_endpoint "dip" b in
        Ok (k vip dip)
    | _ -> Error (Printf.sprintf "%s takes exactly 2 arguments (vip dip)" what)
  in
  match verb with
  | "vip-add" -> (
      match args with
      | vip :: (_ :: _ as dips) ->
          let* vip = parse_endpoint "vip" vip in
          let* dips = endpoints "dip" dips in
          Ok (Vip_add (vip, dips))
      | _ -> Error "vip-add takes a vip and at least one dip")
  | "vip-remove" -> (
      match args with
      | [ vip ] ->
          let* vip = parse_endpoint "vip" vip in
          Ok (Vip_remove vip)
      | _ -> Error "vip-remove takes exactly 1 argument (vip)")
  | "dip-add" -> arity2 "dip-add" (fun v d -> Dip_add (v, d))
  | "dip-remove" -> arity2 "dip-remove" (fun v d -> Dip_remove (v, d))
  | "dip-replace" -> (
      match args with
      | [ v; o; n ] ->
          let* vip = parse_endpoint "vip" v in
          let* old_dip = parse_endpoint "old dip" o in
          let* new_dip = parse_endpoint "new dip" n in
          Ok (Dip_replace { vip; old_dip; new_dip })
      | _ -> Error "dip-replace takes exactly 3 arguments (vip old new)")
  | "health" -> (
      match args with
      | [ state; dip ] ->
          let* state =
            match state with
            | "down" -> Ok `Down
            | "up" -> Ok `Up
            | s -> Error (Printf.sprintf "health state must be up or down, got %S" s)
          in
          let* dip = parse_endpoint "dip" dip in
          Ok (Health (state, dip))
      | _ -> Error "health takes exactly 2 arguments (down|up dip)")
  | "advance" -> (
      match args with
      | [ x ] -> (
          match float_of_string_opt x with
          | Some dt when Float.is_finite dt && dt >= 0. -> Ok (Advance dt)
          | Some _ | None ->
              Error (Printf.sprintf "advance wants a non-negative finite duration, got %S" x))
      | _ -> Error "advance takes exactly 1 argument (seconds)")
  | "stats" -> (
      match args with
      | [] -> Ok (Stats None)
      | [ q ] -> Ok (Stats (Some q))
      | _ -> Error "stats takes at most 1 argument (metric name)")
  | "drain" -> if args = [] then Ok Drain else Error "drain takes no arguments"
  | "quit" -> if args = [] then Ok Quit else Error "quit takes no arguments"
  | v -> Error (Printf.sprintf "unknown command %S" v)

let parse s =
  match tokenize s with
  | [] -> Ok None
  | first :: _ when first.[0] = '#' -> Ok None
  | first :: rest ->
      let* seq, verb, args =
        let* seq = parse_seq first in
        match (seq, rest) with
        | Some _, verb :: args -> Ok (seq, verb, args)
        | Some _, [] -> Error "sequence number without a command"
        | None, _ -> Ok (None, first, rest)
      in
      let* cmd = parse_command verb args in
      Ok (Some { seq; cmd })

let render_response { rseq; body } =
  let b = Buffer.create 64 in
  Buffer.add_string b (match body with Ok _ -> "ok" | Error _ -> "err");
  (match rseq with
  | None -> ()
  | Some n -> Buffer.add_string b (Printf.sprintf " @%d" n));
  (match body with
  | Ok "" -> ()
  | Ok payload ->
      Buffer.add_char b ' ';
      Buffer.add_string b payload
  | Error msg ->
      Buffer.add_char b ' ';
      Buffer.add_string b msg);
  Buffer.contents b

(* The payload is everything after the status word and optional @SEQ,
   verbatim (minus the one separating space), so responses round-trip
   byte-exactly. *)
let parse_response s =
  let s = strip_line s in
  let* status, rest =
    if String.length s >= 3 && String.sub s 0 3 = "ok " then Ok (`Ok, String.sub s 3 (String.length s - 3))
    else if s = "ok" then Ok (`Ok, "")
    else if String.length s >= 4 && String.sub s 0 4 = "err " then
      Ok (`Err, String.sub s 4 (String.length s - 4))
    else if s = "err" then Ok (`Err, "")
    else Error (Printf.sprintf "malformed response %S (want ok/err ...)" s)
  in
  let* rseq, payload =
    if String.length rest >= 2 && rest.[0] = '@' then begin
      let stop = match String.index_opt rest ' ' with Some i -> i | None -> String.length rest in
      match int_of_string_opt (String.sub rest 1 (stop - 1)) with
      | Some n when n >= 0 ->
          let payload =
            if stop = String.length rest then ""
            else String.sub rest (stop + 1) (String.length rest - stop - 1)
          in
          Ok (Some n, payload)
      | Some _ | None -> Error (Printf.sprintf "malformed response sequence in %S" s)
    end
    else Ok (None, rest)
  in
  match status with
  | `Ok -> Ok { rseq; body = Ok payload }
  | `Err -> Ok { rseq; body = Error payload }

let pp_line fmt l = Format.pp_print_string fmt (render l)
let pp_response fmt r = Format.pp_print_string fmt (render_response r)
