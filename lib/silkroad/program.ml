(* Table geometry mirrors Figure 10 with the §6 encoding: IPv6 keys,
   16-bit digests, 6-bit versions, 64 versions provisioned per VIP. *)

let digest_bits = 16
let version_bits = 6
let tuple_bits = 37 * 8  (* IPv6 5-tuple on the match crossbar *)
let vip_bits = (16 + 2) * 8  (* VIP address + port *)
let dip_bits = (16 + 2) * 8

let silkroad_tables ~connections ~vips =
  assert (connections > 0 && vips > 0);
  let row_bits n =
    (* bits to address the rows holding n entries, 4-way packed *)
    let rec go acc m = if m <= 1 then acc else go (acc + 1) ((m + 1) / 2) in
    go 0 (Int.max 1 (n / 4))
  in
  [
    (* ConnTable: digest -> version, two cuckoo stages *)
    Asic.Table_spec.make ~name:"ConnTable" ~entries:connections ~match_key_bits:tuple_bits
      ~stored_key_bits:digest_bits ~action_data_bits:version_bits ~n_actions:2
      ~index_hash_bits:(2 * (row_bits connections + digest_bits))
      ~metadata_phv_bits:version_bits ();
    (* VIPTable: VIP -> current version + update phase *)
    Asic.Table_spec.make ~name:"VIPTable" ~entries:vips ~match_key_bits:vip_bits
      ~action_data_bits:(version_bits + 2) ~n_actions:2 ~index_hash_bits:(row_bits vips)
      ~metadata_phv_bits:(version_bits + 2) ();
    (* DIPPoolTable member table: (VIP, version) group -> DIP; one member
       entry per (version, DIP) *)
    Asic.Table_spec.make ~name:"DIPPoolTable" ~entries:(64 * vips)
      ~match_key_bits:(vip_bits + version_bits) ~action_data_bits:dip_bits ~n_actions:2
      ~index_hash_bits:(row_bits (64 * vips) + 14) ~metadata_phv_bits:0 ();
    (* LearnTable: trigger connection learning on ConnTable miss *)
    Asic.Table_spec.make ~name:"LearnTable" ~entries:1 ~match_key_bits:8 ~action_data_bits:0
      ~n_actions:1 ~metadata_phv_bits:2 ();
  ]

let transit_bloom_bits = 256 * 8
let transit_hashes = 2

let additional_resources ~connections ~vips =
  let tables = Asic.Resources.sum (List.map Asic.Table_spec.resources (silkroad_tables ~connections ~vips)) in
  let transit =
    (* Bloom filter on register memory: two banks of stateful ALUs plus
       two more for the learning notification / stats registers *)
    Asic.Resources.make ~sram_bits:transit_bloom_bits ~stateful_alus:4
      ~hash_bits:(transit_hashes * 11) ~vliw_actions:2 ~phv_bits:2 ()
  in
  (* intermediate metadata shared between the tables (Figure 10):
     old/new version, digest, update-phase flags *)
  let metadata = Asic.Resources.make ~phv_bits:(2 * version_bits + digest_bits + 4) () in
  Asic.Resources.sum [ tables; transit; metadata ]

(* The frozen switch.p4 baseline vector. Derived once from the additions
   our model computes at the paper's operating point (1M connections) and
   Table 2's published percentages; kept constant thereafter. *)
let baseline_switch_p4 =
  Asic.Resources.make ~match_crossbar_bits:1600 ~sram_bits:180_000_000 ~tcam_bits:2_000_000
    ~vliw_actions:48 ~hash_bits:345 ~stateful_alus:9 ~phv_bits:5200 ()

let table2 ~connections ~vips =
  Asic.Resources.relative_to ~base:baseline_switch_p4
    (additional_resources ~connections ~vips)

(* ----- stage placement (the feasibility checker's view) ----- *)

let chip () = Asic.Pipeline.tofino_like ~baseline:baseline_switch_p4

(* The transit vector of [additional_resources], split into the two
   physical pieces it describes: the Bloom filter banks proper, and the
   learning-notification / stats registers. The two must sum to the
   monolithic vector so Table 2 is unchanged. *)
let transit_items ~hashes ~bloom_bits ~after =
  [
    Asic.Pipeline.item ~after ~name:"TransitTable"
      (Asic.Resources.make ~sram_bits:bloom_bits ~stateful_alus:hashes ~hash_bits:(hashes * 11)
         ~vliw_actions:2 ~phv_bits:2 ());
    Asic.Pipeline.item ~name:"LearnRegs" (Asic.Resources.make ~stateful_alus:2 ());
  ]

let metadata_item ~version_bits ~digest_bits =
  Asic.Pipeline.item ~name:"Metadata"
    (Asic.Resources.make ~phv_bits:((2 * version_bits) + digest_bits + 4) ())

(* Figure 10's dependency structure: ConnTable is consulted first;
   VIPTable runs on its result (miss path); the TransitTable registers
   are read/written under VIPTable's phase flags; DIPPoolTable consumes
   the version whoever produced it. LearnTable fires on the ConnTable
   miss signal. *)
let items_of_tables ~transit_hashes ~transit_bits ~version_bits ~digest_bits tables =
  match tables with
  | [ conn; vipt; dippool; learn ] ->
    [
      Asic.Pipeline.item_of_table ~divisible:true conn;
      Asic.Pipeline.item_of_table ~after:[ conn.Asic.Table_spec.name ] vipt;
      Asic.Pipeline.item_of_table ~after:[ conn.Asic.Table_spec.name ] learn;
    ]
    @ transit_items ~hashes:transit_hashes ~bloom_bits:transit_bits
        ~after:[ vipt.Asic.Table_spec.name ]
    @ [
        Asic.Pipeline.item_of_table ~after:[ vipt.Asic.Table_spec.name ] dippool;
        metadata_item ~version_bits ~digest_bits;
      ]
  | _ -> invalid_arg "Program.items_of_tables: expected exactly four table specs"

let pipeline_items ~connections ~vips =
  items_of_tables ~transit_hashes ~transit_bits:transit_bloom_bits ~version_bits ~digest_bits
    (silkroad_tables ~connections ~vips)

(* same geometry as [silkroad_tables], but parameterized by an actual
   switch configuration instead of the frozen §6 constants *)
let tables_of_config ?(vips = 1024) (cfg : Config.t) =
  let row_bits n =
    let rec go acc m = if m <= 1 then acc else go (acc + 1) ((m + 1) / 2) in
    go 0 (Int.max 1 (n / 4))
  in
  let connections = Config.conn_capacity cfg in
  let versions = Config.max_versions cfg in
  let d = cfg.Config.digest_bits and v = cfg.Config.version_bits in
  [
    Asic.Table_spec.make ~name:"ConnTable" ~entries:connections ~match_key_bits:tuple_bits
      ~stored_key_bits:d ~action_data_bits:v ~n_actions:2
      ~index_hash_bits:(cfg.Config.conn_table_stages * (row_bits connections + d))
      ~metadata_phv_bits:v ();
    Asic.Table_spec.make ~name:"VIPTable" ~entries:vips ~match_key_bits:vip_bits
      ~action_data_bits:(v + 2) ~n_actions:2 ~index_hash_bits:(row_bits vips)
      ~metadata_phv_bits:(v + 2) ();
    Asic.Table_spec.make ~name:"DIPPoolTable" ~entries:(versions * vips)
      ~match_key_bits:(vip_bits + v) ~action_data_bits:dip_bits ~n_actions:2
      ~index_hash_bits:(row_bits (versions * vips) + 14) ~metadata_phv_bits:0 ();
    Asic.Table_spec.make ~name:"LearnTable" ~entries:1 ~match_key_bits:8 ~action_data_bits:0
      ~n_actions:1 ~metadata_phv_bits:2 ();
  ]

let items_of_config ?vips (cfg : Config.t) =
  items_of_tables ~transit_hashes:cfg.Config.transit_hashes
    ~transit_bits:(cfg.Config.transit_bytes * 8) ~version_bits:cfg.Config.version_bits
    ~digest_bits:cfg.Config.digest_bits
    (tables_of_config ?vips cfg)

let feasibility ?vips cfg = Asic.Pipeline.allocate (chip ()) (items_of_config ?vips cfg)
