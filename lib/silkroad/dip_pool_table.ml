type pool_info = {
  mutable pool : Lb.Dip_pool.t;
  mutable refs : int;
}

type vip_state = {
  versions : (int, pool_info) Hashtbl.t;
  allocator : Version.t;
  (* one-slot (version -> pool_info) cache for the packet fast path;
     [cv = -1] means empty. Invalidated when the cached version is
     destroyed (version numbers are recycled, so a stale entry could
     otherwise alias a reallocated version's new pool). *)
  mutable cv : int;
  mutable ci : pool_info option;
}

type t = {
  seed : int;
  vips : (Netcore.Endpoint.t, vip_state) Hashtbl.t;
  version_bits : int;
  mutable reuses : int;
  (* one-slot VIP cache; invalidated by [remove_vip], the only way an
     entry ever leaves the table *)
  mutable vip_cache : (Netcore.Endpoint.t * vip_state) option;
}

let create ~version_bits ~seed =
  { seed; vips = Hashtbl.create 64; version_bits; reuses = 0; vip_cache = None }

let add_vip t vip pool =
  if Hashtbl.mem t.vips vip then Error `Exists
  else begin
    let allocator = Version.create ~bits:t.version_bits in
    let v = match Version.allocate allocator with Ok v -> v | Error `Exhausted -> assert false in
    let versions = Hashtbl.create 8 in
    Hashtbl.replace versions v { pool; refs = 0 };
    Hashtbl.replace t.vips vip { versions; allocator; cv = -1; ci = None };
    Ok v
  end

let has_vip t vip = Hashtbl.mem t.vips vip

let remove_vip t vip =
  Hashtbl.remove t.vips vip;
  match t.vip_cache with
  | Some (v, _) when Netcore.Endpoint.equal v vip -> t.vip_cache <- None
  | Some _ | None -> ()
let vips t = Hashtbl.fold (fun vip _ acc -> vip :: acc) t.vips []

let info t ~vip ~version =
  match Hashtbl.find_opt t.vips vip with
  | None -> None
  | Some vs -> Hashtbl.find_opt vs.versions version

let pool t ~vip ~version =
  match info t ~vip ~version with
  | Some i -> Some i.pool
  | None -> None

let select_dip t ~vip ~version flow =
  match pool t ~vip ~version with
  | None -> None
  | Some p -> if Lb.Dip_pool.is_empty p then None else Some (Lb.Dip_pool.select_flow ~seed:t.seed p flow)

let find_vip_state t vip =
  match t.vip_cache with
  | Some (v, vs) when Netcore.Endpoint.equal v vip -> Some vs
  | Some _ | None ->
    (match Hashtbl.find_opt t.vips vip with
     | Some vs as r ->
       t.vip_cache <- Some (vip, vs);
       r
     | None -> None)

(* Allocation-free [select_dip]: returns the caller's [none] sentinel
   (intended to be [Netcore.Endpoint.none], compared with [==]) instead
   of wrapping the DIP in an option. Same selection as [select_dip]. *)
let select_dip_fast t ~vip ~version flow ~none =
  match find_vip_state t vip with
  | None -> none
  | Some vs ->
    let i =
      if vs.cv = version then vs.ci
      else
        match Hashtbl.find_opt vs.versions version with
        | Some _ as r ->
          vs.cv <- version;
          vs.ci <- r;
          r
        | None -> None
    in
    (match i with
     | None -> none
     | Some i ->
       if Lb.Dip_pool.is_empty i.pool then none
       else Lb.Dip_pool.select_flow ~seed:t.seed i.pool flow)

(* Version reuse (§4.2). Two forms:
   - equal-pool reuse: an allocated version already holds exactly the
     target pool (e.g. a DIP flaps down and up, or rolling reboots
     revisit a pool state) — make that version current again;
   - substitution reuse: an allocated version holds the current pool
     plus exactly one extra member [r]; adding [d] is served by
     substituting [d] for [r] in that pool. *)
let find_equal_pool vs ~target =
  Hashtbl.fold
    (fun v (i : pool_info) acc ->
      match acc with
      | Some _ -> acc
      | None -> if Lb.Dip_pool.equal i.pool target then Some v else None)
    vs.versions None

let find_reusable vs ~current ~current_pool ~new_dip =
  let candidate = ref None in
  Hashtbl.iter
    (fun v (i : pool_info) ->
      if !candidate = None && v <> current then begin
        let members = Lb.Dip_pool.members i.pool in
        if Array.length members = Lb.Dip_pool.size current_pool + 1 then begin
          let extra =
            Array.to_list members
            |> List.filter (fun m -> not (Lb.Dip_pool.mem current_pool m))
          in
          match extra with
          | [ r ] ->
            if Lb.Dip_pool.equal (Lb.Dip_pool.remove i.pool r) current_pool
               && (Netcore.Endpoint.equal r new_dip || not (Lb.Dip_pool.mem i.pool new_dip))
            then candidate := Some (v, i, r)
          | _ :: _ | [] -> ()
        end
      end)
    vs.versions;
  !candidate

let publish t ~vip ~current update =
  match Hashtbl.find_opt t.vips vip with
  | None -> Error `No_such_vip
  | Some vs ->
    (match Hashtbl.find_opt vs.versions current with
     | None -> Error (`Bad_update "current version unknown")
     | Some cur_info ->
       let current_pool = cur_info.pool in
       let fresh_or_equal pool =
         match find_equal_pool vs ~target:pool with
         | Some v ->
           t.reuses <- t.reuses + 1;
           Ok v
         | None ->
           (match Version.allocate vs.allocator with
            | Ok v ->
              Hashtbl.replace vs.versions v { pool; refs = 0 };
              Ok v
            | Error `Exhausted -> Error `Versions_exhausted)
       in
       let fresh = fresh_or_equal in
       (match update with
        | Lb.Balancer.Dip_remove d ->
          if not (Lb.Dip_pool.mem current_pool d) then
            Error (`Bad_update "removing absent DIP")
          else fresh (Lb.Dip_pool.remove current_pool d)
        | Lb.Balancer.Dip_add d ->
          if Lb.Dip_pool.mem current_pool d then Error (`Bad_update "adding present DIP")
          else
            (match find_reusable vs ~current ~current_pool ~new_dip:d with
             | Some (v, i, r) ->
               if not (Netcore.Endpoint.equal r d) then
                 i.pool <- Lb.Dip_pool.replace i.pool ~old_dip:r ~new_dip:d;
               t.reuses <- t.reuses + 1;
               Ok v
             | None -> fresh (Lb.Dip_pool.add current_pool d))
        | Lb.Balancer.Dip_replace { old_dip; new_dip } ->
          if not (Lb.Dip_pool.mem current_pool old_dip) then
            Error (`Bad_update "replacing absent DIP")
          else if Lb.Dip_pool.mem current_pool new_dip then
            Error (`Bad_update "replacement DIP already present")
          else fresh (Lb.Dip_pool.replace current_pool ~old_dip ~new_dip)))

let destroy_if_dead t ~vip vs version ~current =
  match Hashtbl.find_opt vs.versions version with
  | Some i when i.refs = 0 && version <> current ->
    Hashtbl.remove vs.versions version;
    Version.release vs.allocator version;
    if vs.cv = version then begin
      vs.cv <- -1;
      vs.ci <- None
    end;
    ignore vip;
    ignore t
  | Some _ | None -> ()

let retain t ~vip ~version =
  match info t ~vip ~version with
  | Some i -> i.refs <- i.refs + 1
  | None -> invalid_arg "Dip_pool_table.retain: unknown version"

let release t ~vip ~version ~current =
  match Hashtbl.find_opt t.vips vip with
  | None -> invalid_arg "Dip_pool_table.release: unknown VIP"
  | Some vs ->
    (match Hashtbl.find_opt vs.versions version with
     | None -> invalid_arg "Dip_pool_table.release: unknown version"
     | Some i ->
       if i.refs <= 0 then invalid_arg "Dip_pool_table.release: refcount underflow";
       i.refs <- i.refs - 1;
       destroy_if_dead t ~vip vs version ~current)

let gc t ~vip ~current =
  match Hashtbl.find_opt t.vips vip with
  | None -> ()
  | Some vs ->
    let dead =
      Hashtbl.fold
        (fun v (i : pool_info) acc -> if i.refs = 0 && v <> current then v :: acc else acc)
        vs.versions []
    in
    List.iter (fun v -> destroy_if_dead t ~vip vs v ~current) dead

let refcount t ~vip ~version =
  match info t ~vip ~version with
  | Some i -> i.refs
  | None -> 0

let live_versions t ~vip =
  match Hashtbl.find_opt t.vips vip with
  | None -> 0
  | Some vs -> Hashtbl.length vs.versions

let version_exhaustions t =
  Hashtbl.fold (fun _ vs acc -> acc + Version.exhaustions vs.allocator) t.vips 0

let reuses t = t.reuses

let sram_bits t =
  Hashtbl.fold
    (fun vip vs acc ->
      let vip_bits = Netcore.Endpoint.size_bytes vip * 8 in
      Hashtbl.fold
        (fun _v (i : pool_info) acc ->
          let member_bits =
            Array.fold_left
              (fun b d -> b + (Netcore.Endpoint.size_bytes d * 8))
              0 (Lb.Dip_pool.members i.pool)
          in
          acc + vip_bits + t.version_bits + member_bits)
        vs.versions acc)
    t.vips 0
