type conn_state = {
  cs_vip : Netcore.Endpoint.t;
  cs_version : int;  (** version assigned when the connection arrived *)
  mutable inserted : bool;
  mutable in_pipeline : bool;  (** learning event in the filter or at the CPU *)
  mutable ended : bool;
  mutable last_seen : float;
}

type job_phase =
  | Job_recording
  | Job_dual

type update_job = {
  job_vip : Netcore.Endpoint.t;
  job_update : Lb.Balancer.update;
  requested : float;  (** when [request_update] accepted it (queue wait included) *)
  started : float;  (** when the job left the queue and step 1 began *)
  (* the version that was current when the update executed; meaningful
     from [Job_dual] on (initialised to the version current at start) *)
  mutable old_version : int;
  (* pending connections gating the next phase transition *)
  waiting : (Netcore.Five_tuple.t, unit) Hashtbl.t;
  (* connections recorded in the Bloom filter during step 1, still
     pending; becomes [waiting] at execution time *)
  recorded : (Netcore.Five_tuple.t, unit) Hashtbl.t;
  mutable job_phase : job_phase;
}

type update_report = {
  ur_vip : Netcore.Endpoint.t;
  ur_update : Lb.Balancer.update;
  ur_requested : float;
  ur_finished : float;
  ur_old_version : int;
  ur_new_version : int;
  ur_outcome : [ `Completed | `Failed ];
}

type cpu_work =
  | Insert_batch of Netcore.Five_tuple.t list
  | Delete_batch of Netcore.Five_tuple.t list
  | Repair_batch of Netcore.Five_tuple.t list
      (** collision repairs already applied to the table; completion
          accounts the CPU time so the backlog is observable *)
  | Overflow_retry_batch of (Netcore.Five_tuple.t * int) list
      (** deferred inserts from the overflow queue, with their attempt
          count; each retry re-runs the cuckoo search at a higher CPU
          cost than a first-time insert *)

type stats = {
  asic_packets : int;
  cpu_packets : int;
  dropped_packets : int;
  connections_seen : int;
  false_hits : int;
  collision_repairs : int;
  learning_drops : int;
  table_full_drops : int;
  insert_overflows : int;
  overflow_retries : int;
  updates_completed : int;
  updates_failed : int;
  transit_clears : int;
  forced_transitions : int;
}

type t = {
  cfg : Config.t;
  conns : Conn_table.t;
  pools : Dip_pool_table.t;
  vips : Vip_table.t;
  transit : Asic.Bloom_filter.t;
  learning : (Netcore.Five_tuple.t, unit) Asic.Learning_filter.t;
  cpu : Asic.Switch_cpu.t;
  (* completion times are monotone (FIFO CPU), so a plain queue works *)
  cpu_done : (float * cpu_work) Queue.t;
  (* insert-overflow queue (§7): connections whose insert found the
     table full wait here and are retried in batches on the switch CPU
     instead of being dropped from state on first failure. At most one
     retry batch is in flight at a time so overflow work never starves
     the learning pipeline. *)
  overflow : (Netcore.Five_tuple.t * int) Queue.t;
  mutable overflow_inflight : bool;
  flows : (Netcore.Five_tuple.t, conn_state) Hashtbl.t;
  (* lazy idle-timeout timers: one wheel entry per tracked connection,
     verified against last_seen on expiry *)
  aging : Netcore.Five_tuple.t Asic.Timer_wheel.t;
  meters : (Netcore.Endpoint.t, Asic.Meter.t) Hashtbl.t;  (** per-VIP rate limiters *)
  jobs : (Netcore.Endpoint.t, update_job) Hashtbl.t;  (** active job per VIP *)
  (* queued updates keep their request time so the control plane can
     report true request-to-finish latency across queue waits *)
  job_queue : (Netcore.Endpoint.t, (float * Lb.Balancer.update) Queue.t) Hashtbl.t;
  (* serve-mode observer: called once per update job as it completes or
     aborts, with virtual request/finish times and the version flip *)
  mutable update_hook : (update_report -> unit) option;
  mutable clock : float;  (** latest time the control plane has seen *)
  (* fast-path side channel: where the last processed packet went.
     [process_flow] returns only the DIP (or [no_dip]); callers that
     want the location read this immediately after. *)
  mutable last_location : Lb.Balancer.location;
  (* one-slot VIP-handle cache: replay traffic is heavily clustered by
     VIP, so most packets skip the VIPTable hash lookup. VIPs are never
     removed, so a cached handle never goes stale. *)
  mutable vh_vip : Netcore.Endpoint.t;
  mutable vh : Vip_table.handle option;
  (* telemetry: one registry owns every counter/gauge/histogram of this
     switch and its ASIC primitives; the handles below are cached so the
     data plane pays one int-ref bump per event, same as a mutable field *)
  metrics : Telemetry.Registry.t;
  c_asic_packets : Telemetry.Registry.Counter.t;
  c_cpu_packets : Telemetry.Registry.Counter.t;
  c_dropped_packets : Telemetry.Registry.Counter.t;
  c_connections_seen : Telemetry.Registry.Counter.t;
  c_learning_drops : Telemetry.Registry.Counter.t;
  c_table_full_drops : Telemetry.Registry.Counter.t;
  c_insert_overflows : Telemetry.Registry.Counter.t;
  c_overflow_retries : Telemetry.Registry.Counter.t;
  c_updates_completed : Telemetry.Registry.Counter.t;
  c_updates_failed : Telemetry.Registry.Counter.t;
  c_transit_clears : Telemetry.Registry.Counter.t;
  c_forced_transitions : Telemetry.Registry.Counter.t;
  c_metered_drops : Telemetry.Registry.Counter.t;
  c_repairs_completed : Telemetry.Registry.Counter.t;
  c_rerouted_flows : Telemetry.Registry.Counter.t;
  (* the uniform per-balancer pair every Lb.Balancer.t registry exposes *)
  c_lb_packets : Telemetry.Registry.Counter.t;
  c_lb_dropped : Telemetry.Registry.Counter.t;
  g_tracked_flows : Telemetry.Registry.Gauge.t;
  (* last tracked-flow count pushed to the gauge: [advance] runs per
     packet, so the gauge is only touched when the count changes *)
  mutable last_tracked : int;
}

let src = Logs.Src.create "silkroad.switch" ~doc:"SilkRoad switch control plane"

module Log = (val Logs.src_log src : Logs.LOG)

(* Updates stuck behind a barrier member that will never be inserted
   (e.g. its learning event was dropped and the flow went quiet) are
   force-released after this many seconds. Counted in [forced_transitions]
   — always 0 in a healthy configuration. *)
let barrier_deadline = 5.

(* Insert-overflow queue tuning: a deferred insert is retried at most
   [max_overflow_retries] times, in batches of [overflow_batch], each
   retried insert costing [overflow_retry_cost] CPU work items (the
   switch CPU re-runs the whole cuckoo search against a saturated
   table). The queue is bounded; beyond [overflow_cap] the connection is
   dropped from state immediately, as on real hardware. *)
let max_overflow_retries = 2
let overflow_batch = 64
let overflow_retry_cost = 4
let overflow_cap = 65536

let create ?metrics ?(check = `Warn) ?conn_layout cfg =
  (match Config.validate cfg with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Switch.create: " ^ msg));
  (* static feasibility: would this configuration compile to the ASIC's
     stages at all? (`Warn logs and proceeds — the simulation model can
     still run an over-budget table; real hardware could not.) *)
  (match check with
   | `Off -> ()
   | (`Warn | `Fail) as check ->
     (match (Program.feasibility cfg).Asic.Pipeline.failure with
      | None -> ()
      | Some f ->
        let msg = Format.asprintf "infeasible pipeline: %a" Asic.Pipeline.pp_failure f in
        (match check with
         | `Fail -> invalid_arg ("Switch.create: " ^ msg)
         | `Warn -> Log.warn (fun m -> m "%s" msg))));
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let counter = Telemetry.Registry.counter reg in
  {
    cfg;
    conns = Conn_table.create ~metrics:reg ?layout:conn_layout cfg;
    pools = Dip_pool_table.create ~version_bits:cfg.Config.version_bits ~seed:cfg.Config.seed;
    vips = Vip_table.create ();
    transit =
      Asic.Bloom_filter.create ~seed:cfg.Config.seed ~metrics:reg
        ~bits:(cfg.Config.transit_bytes * 8) ~hashes:cfg.Config.transit_hashes ();
    learning =
      Asic.Learning_filter.create ~metrics:reg ~capacity:cfg.Config.learning_capacity
        ~timeout:cfg.Config.learning_timeout ();
    cpu =
      Asic.Switch_cpu.create ~metrics:reg
        ~insertions_per_sec:cfg.Config.cpu_insertions_per_sec ();
    cpu_done = Queue.create ();
    overflow = Queue.create ();
    overflow_inflight = false;
    flows = Hashtbl.create 4096;
    aging =
      Asic.Timer_wheel.create ~granularity:(cfg.Config.idle_timeout /. 4.) ~slots:16 ();
    meters = Hashtbl.create 8;
    jobs = Hashtbl.create 16;
    job_queue = Hashtbl.create 16;
    update_hook = None;
    clock = 0.;
    last_location = Lb.Balancer.Asic;
    vh_vip = Netcore.Endpoint.none;
    vh = None;
    metrics = reg;
    c_asic_packets = counter "switch.asic_packets";
    c_cpu_packets = counter "switch.cpu_packets";
    c_dropped_packets = counter "switch.dropped_packets";
    c_connections_seen = counter "switch.connections_seen";
    c_learning_drops = counter "switch.learning_drops";
    c_table_full_drops = counter "switch.table_full_drops";
    c_insert_overflows = counter "switch.insert_overflows";
    c_overflow_retries = counter "switch.overflow_retries";
    c_updates_completed = counter "switch.updates_completed";
    c_updates_failed = counter "switch.updates_failed";
    c_transit_clears = counter "switch.transit_clears";
    c_forced_transitions = counter "switch.forced_transitions";
    c_metered_drops = counter "switch.metered_drops";
    c_repairs_completed = counter "switch.repairs_completed";
    c_rerouted_flows = counter "switch.rerouted_flows";
    c_lb_packets = counter "lb.packets";
    c_lb_dropped = counter "lb.dropped_packets";
    g_tracked_flows = Telemetry.Registry.gauge reg "switch.tracked_flows";
    last_tracked = -1;
  }

let config t = t.cfg

let add_vip t vip pool =
  match Dip_pool_table.add_vip t.pools vip pool with
  | Ok version -> Vip_table.add t.vips vip ~version
  | Error `Exists -> invalid_arg "Switch.add_vip: VIP exists"

let has_vip t vip = Vip_table.mem t.vips vip

let flow_hash t flow = Netcore.Five_tuple.hash ~seed:(t.cfg.Config.seed lxor 0x7a17) flow

let current_version t vip =
  match Vip_table.current t.vips vip with
  | Some v -> v
  | None -> invalid_arg "Switch: unknown VIP"

(* ----- update job state machine ----- *)

let clear_transit_if_idle t =
  if Vip_table.updating_count t.vips = 0 && Asic.Bloom_filter.population t.transit > 0 then begin
    Asic.Bloom_filter.clear t.transit;
    Telemetry.Registry.Counter.incr t.c_transit_clears
  end

let rec start_next_queued t ~now vip =
  match Hashtbl.find_opt t.job_queue vip with
  | None -> ()
  | Some q ->
    (match Queue.take_opt q with
     | None -> ()
     | Some (requested, u) -> start_job t ~now ~requested vip u)

and finish_job t ~now job =
  Log.debug (fun m ->
      m "update %a on %a finished at %.6f (t_req %.6f)" Lb.Balancer.pp_update job.job_update
        Netcore.Endpoint.pp job.job_vip now job.started);
  Vip_table.finish t.vips job.job_vip;
  Hashtbl.remove t.jobs job.job_vip;
  Telemetry.Registry.Counter.incr t.c_updates_completed;
  (* per-VIP scope: update churn is the figure-2 axis, so keep it
     attributable (update completion is rare enough for a name lookup) *)
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter t.metrics
       ~labels:[ ("vip", Format.asprintf "%a" Netcore.Endpoint.pp job.job_vip) ]
       "switch.vip.updates_completed");
  Dip_pool_table.gc t.pools ~vip:job.job_vip ~current:(current_version t job.job_vip);
  clear_transit_if_idle t;
  (match t.update_hook with
   | Some f ->
     f
       {
         ur_vip = job.job_vip;
         ur_update = job.job_update;
         ur_requested = job.requested;
         ur_finished = now;
         ur_old_version = job.old_version;
         ur_new_version = current_version t job.job_vip;
         ur_outcome = `Completed;
       }
   | None -> ());
  start_next_queued t ~now job.job_vip

and execute_job t ~now job =
  let vip = job.job_vip in
  let current = current_version t vip in
  (match Dip_pool_table.publish t.pools ~vip ~current job.job_update with
   | Ok new_version ->
     job.old_version <- current;
     Vip_table.execute t.vips vip ~new_version;
     job.job_phase <- Job_dual;
     (* step 3 waits for the connections recorded during step 1 *)
     Hashtbl.reset job.waiting;
     Hashtbl.iter (fun k () -> Hashtbl.replace job.waiting k ()) job.recorded;
     if Hashtbl.length job.waiting = 0 then finish_job t ~now job
   | Error ((`No_such_vip | `Versions_exhausted | `Bad_update _) as err) ->
     Log.warn (fun m ->
         m "update %a on %a aborted: %s" Lb.Balancer.pp_update job.job_update
           Netcore.Endpoint.pp vip
           (match err with
            | `No_such_vip -> "no such VIP"
            | `Versions_exhausted -> "version numbers exhausted"
            | `Bad_update msg -> msg));
     Vip_table.cancel_recording t.vips vip;
     Hashtbl.remove t.jobs vip;
     Telemetry.Registry.Counter.incr t.c_updates_failed;
     clear_transit_if_idle t;
     (match t.update_hook with
      | Some f ->
        f
          {
            ur_vip = vip;
            ur_update = job.job_update;
            ur_requested = job.requested;
            ur_finished = now;
            ur_old_version = current;
            ur_new_version = current;
            ur_outcome = `Failed;
          }
      | None -> ());
     start_next_queued t ~now vip)

and check_job_transition t ~now job =
  if Hashtbl.length job.waiting = 0 then begin
    match job.job_phase with
    | Job_recording -> execute_job t ~now job
    | Job_dual -> finish_job t ~now job
  end

and start_job t ~now ~requested vip update =
  let job =
    {
      job_vip = vip;
      job_update = update;
      requested;
      started = now;
      old_version = current_version t vip;
      waiting = Hashtbl.create 64;
      recorded = Hashtbl.create 64;
      job_phase = Job_recording;
    }
  in
  Vip_table.start_recording t.vips vip;
  (* step 1 barrier: every connection of this VIP that arrived before
     the request but is not yet in ConnTable. Without a TransitTable
     there is nothing to wait for — the update executes immediately and
     pending connections are left unprotected (Figure 16's ablation). *)
  if t.cfg.Config.use_transit then
    Hashtbl.iter
      (fun flow (st : conn_state) ->
        if Netcore.Endpoint.equal st.cs_vip vip && (not st.inserted) && not st.ended then
          Hashtbl.replace job.waiting flow ())
      t.flows;
  Hashtbl.replace t.jobs vip job;
  check_job_transition t ~now job

(* a pending connection of [vip] was installed (or abandoned): release
   any barrier waiting on it *)
let barrier_resolved t ~now ~vip flow =
  match Hashtbl.find_opt t.jobs vip with
  | None -> ()
  | Some job ->
    Hashtbl.remove job.recorded flow;
    if Hashtbl.mem job.waiting flow then begin
      Hashtbl.remove job.waiting flow;
      check_job_transition t ~now job
    end

(* ----- connection state bookkeeping ----- *)

let destroy_state t flow (st : conn_state) =
  Asic.Timer_wheel.cancel t.aging ~key:flow;
  (match Vip_table.current t.vips st.cs_vip with
   | Some current ->
     Dip_pool_table.release t.pools ~vip:st.cs_vip ~version:st.cs_version ~current
   | None -> ());
  Hashtbl.remove t.flows flow

(* ----- control plane ----- *)

let complete_cpu_work t ~now =
  let rec go () =
    (* option-free peek: this runs on every packet via [advance] *)
    if not (Queue.is_empty t.cpu_done) then begin
      let at, _ = Queue.peek t.cpu_done in
      if at <= now then begin
        let _, work = Queue.pop t.cpu_done in
        (match work with
         | Insert_batch flows ->
           List.iter
             (fun flow ->
               match Hashtbl.find_opt t.flows flow with
               | None -> ()  (* state already destroyed *)
               | Some st ->
                 st.in_pipeline <- false;
                 if st.ended then begin
                   (* flow finished before its entry was installed *)
                   barrier_resolved t ~now ~vip:st.cs_vip flow;
                   destroy_state t flow st
                 end
                 else if not st.inserted then begin
                   (match Conn_table.insert t.conns flow ~version:st.cs_version with
                    | Ok _ -> st.inserted <- true
                    | Error `Duplicate -> st.inserted <- true
                    | Error `Full ->
                      (* defer to the overflow queue: the switch CPU
                         retries the insert later at its real cost
                         instead of abandoning state on first failure *)
                      if Queue.length t.overflow < overflow_cap then begin
                        Telemetry.Registry.Counter.incr t.c_insert_overflows;
                        Queue.add (flow, 1) t.overflow;
                        st.in_pipeline <- true
                      end
                      else begin
                        Telemetry.Registry.Counter.incr t.c_table_full_drops;
                        Log.warn (fun m ->
                            m "ConnTable full (%.1f%%), overflow queue full: connection left \
                               stateless"
                              (100. *. Conn_table.occupancy t.conns))
                      end;
                      (* stays a pending connection; must not gate updates *)
                      st.inserted <- false);
                   barrier_resolved t ~now ~vip:st.cs_vip flow
                 end)
             flows
         | Delete_batch flows ->
           List.iter
             (fun flow ->
               ignore (Conn_table.remove t.conns flow);
               match Hashtbl.find_opt t.flows flow with
               | Some st -> destroy_state t flow st
               | None -> ())
             flows
         | Repair_batch flows ->
           (* repairs were applied synchronously at submission; completion
              only accounts the CPU time *)
           List.iter (fun _ -> Telemetry.Registry.Counter.incr t.c_repairs_completed) flows
         | Overflow_retry_batch items ->
           t.overflow_inflight <- false;
           List.iter
             (fun (flow, attempts) ->
               Telemetry.Registry.Counter.incr t.c_overflow_retries;
               match Hashtbl.find_opt t.flows flow with
               | None -> ()  (* state destroyed while queued *)
               | Some st ->
                 if st.ended then begin
                   st.in_pipeline <- false;
                   barrier_resolved t ~now ~vip:st.cs_vip flow;
                   destroy_state t flow st
                 end
                 else if st.inserted then st.in_pipeline <- false
                 else (
                   match Conn_table.insert t.conns flow ~version:st.cs_version with
                   | Ok _ | Error `Duplicate ->
                     st.inserted <- true;
                     st.in_pipeline <- false;
                     barrier_resolved t ~now ~vip:st.cs_vip flow
                   | Error `Full ->
                     if attempts < max_overflow_retries && Queue.length t.overflow < overflow_cap
                     then Queue.add (flow, attempts + 1) t.overflow
                     else begin
                       (* give up: the connection stays stateless, the
                          paper's §7 overflow outcome *)
                       st.in_pipeline <- false;
                       Telemetry.Registry.Counter.incr t.c_table_full_drops;
                       barrier_resolved t ~now ~vip:st.cs_vip flow;
                       Log.warn (fun m ->
                           m "ConnTable full (%.1f%%) after %d insert attempts: connection left \
                              stateless"
                             (100. *. Conn_table.occupancy t.conns)
                             (attempts + 1))
                     end))
             items);
        go ()
      end
    end
  in
  go ()

(* launch the next overflow retry batch once the previous one finished;
   one batch in flight at a time keeps deferred inserts from starving
   the learning pipeline on the shared CPU FIFO *)
let schedule_overflow_retries t ~now =
  if (not t.overflow_inflight) && not (Queue.is_empty t.overflow) then begin
    let n = Int.min overflow_batch (Queue.length t.overflow) in
    let rec take n acc = if n = 0 then List.rev acc else take (n - 1) (Queue.pop t.overflow :: acc) in
    let items = take n [] in
    let done_at = Asic.Switch_cpu.submit t.cpu ~now ~work_items:(overflow_retry_cost * n) in
    Queue.add (done_at, Overflow_retry_batch items) t.cpu_done;
    t.overflow_inflight <- true
  end

let drain_learning t ~at =
  let batch = Asic.Learning_filter.drain t.learning in
  if batch <> [] then begin
    let flows = List.map fst batch in
    let done_at = Asic.Switch_cpu.submit t.cpu ~now:at ~work_items:(List.length flows) in
    Queue.add (done_at, Insert_batch flows) t.cpu_done
  end

let submit_delete t ~now flow =
  let done_at = Asic.Switch_cpu.submit t.cpu ~now ~work_items:1 in
  Queue.add (done_at, Delete_batch [ flow ]) t.cpu_done

let expire_idle t ~now =
  List.iter
    (fun flow ->
      match Hashtbl.find_opt t.flows flow with
      | None -> ()
      | Some (st : conn_state) ->
        if st.ended then ()
        else if now -. st.last_seen >= t.cfg.Config.idle_timeout then begin
          st.ended <- true;
          if st.inserted then submit_delete t ~now flow
          else begin
            (* never installed (e.g. table full): just drop the state *)
            barrier_resolved t ~now ~vip:st.cs_vip flow;
            destroy_state t flow st
          end
        end
        else
          (* saw traffic since: re-arm for the remaining idle budget *)
          Asic.Timer_wheel.schedule t.aging ~key:flow
            ~at:(st.last_seen +. t.cfg.Config.idle_timeout))
    (Asic.Timer_wheel.advance t.aging ~now)

let release_stuck_barriers t ~now =
  Hashtbl.iter
    (fun _ job ->
      if now -. job.started > barrier_deadline && Hashtbl.length job.waiting > 0 then begin
        Telemetry.Registry.Counter.incr t.c_forced_transitions;
        Log.warn (fun m ->
            m "update barrier on %a stuck for %.1fs: force-releasing %d pending connections"
              Netcore.Endpoint.pp job.job_vip (now -. job.started)
              (Hashtbl.length job.waiting));
        Hashtbl.reset job.waiting
      end)
    t.jobs;
  (* transitions for any job whose barrier was force-cleared *)
  let ready = Hashtbl.fold (fun _ job acc -> job :: acc) t.jobs [] in
  List.iter
    (fun job -> if Hashtbl.length job.waiting = 0 then check_job_transition t ~now job)
    ready

let advance t ~now =
  if now >= t.clock then begin
    t.clock <- now;
    (* due learning batches first: their completions may already be due.
       The option-free deadline probe keeps this per-packet loop off the
       GC ([infinity <= now] is never true). *)
    let rec drain_due () =
      let deadline = Asic.Learning_filter.next_deadline_or t.learning ~default:infinity in
      if deadline <= now then begin
        drain_learning t ~at:deadline;
        drain_due ()
      end
    in
    drain_due ();
    complete_cpu_work t ~now;
    schedule_overflow_retries t ~now;
    expire_idle t ~now;
    if Hashtbl.length t.jobs > 0 then release_stuck_barriers t ~now;
    (* the gauge write boxes a float: only touch it when the count moved *)
    let tracked = Hashtbl.length t.flows in
    if tracked <> t.last_tracked then begin
      t.last_tracked <- tracked;
      Telemetry.Registry.Gauge.set t.g_tracked_flows (float_of_int tracked)
    end
  end

(* ----- data plane ----- *)

(* The fast path returns this physically-unique sentinel instead of an
   [Endpoint.t option]; callers must compare with [==]. *)
let no_dip = Netcore.Endpoint.none

let drop t =
  Telemetry.Registry.Counter.incr t.c_dropped_packets;
  Telemetry.Registry.Counter.incr t.c_lb_dropped;
  t.last_location <- Lb.Balancer.Asic;
  no_dip

let forward t ~vip ~version flow ~location =
  let dip = Dip_pool_table.select_dip_fast t.pools ~vip ~version flow ~none:no_dip in
  if dip == no_dip then drop t
  else begin
    Telemetry.Registry.Counter.incr t.c_lb_packets;
    (match location with
     | Lb.Balancer.Asic -> Telemetry.Registry.Counter.incr t.c_asic_packets
     | Lb.Balancer.Switch_cpu | Lb.Balancer.Slb ->
       Telemetry.Registry.Counter.incr t.c_cpu_packets);
    t.last_location <- location;
    dip
  end

(* learning: raise an event for a connection whose entry is missing *)
let learn t ~now flow (st : conn_state) =
  if not st.in_pipeline then begin
    match Asic.Learning_filter.offer t.learning ~now flow () with
    | `Accepted ->
      st.in_pipeline <- true;
      if Asic.Learning_filter.pending t.learning >= Asic.Learning_filter.capacity t.learning
      then drain_learning t ~at:now
    | `Duplicate -> st.in_pipeline <- true
    | `Dropped -> Telemetry.Registry.Counter.incr t.c_learning_drops
  end

(* the version VIPTable + TransitTable assign to a ConnTable miss,
   encoded allocation-free as [(version lsl 2) lor how] with [how]:
   0 = plain, 1 = recorded, 2 = cpu-checked *)
let how_plain = 0
let how_recorded = 1
let how_cpu_checked = 2

let version_for_miss_code t flow ~vh ~syn =
  match Vip_table.handle_phase vh with
  | Vip_table.Idle -> (Vip_table.handle_current vh lsl 2) lor how_plain
  | Vip_table.Recording ->
    (* step 1: old pool, and remember the connection *)
    if t.cfg.Config.use_transit then Asic.Bloom_filter.add t.transit (flow_hash t flow);
    (Vip_table.handle_current vh lsl 2) lor how_recorded
  | Vip_table.Dual { old_version } ->
    if t.cfg.Config.use_transit && Asic.Bloom_filter.mem t.transit (flow_hash t flow) then
      if syn then
        (* a SYN cannot be a pending connection: redirect to software,
           which confirms it is new and uses the new version (§4.3) *)
        (Vip_table.handle_current vh lsl 2) lor how_cpu_checked
      else (old_version lsl 2) lor how_plain
    else (Vip_table.handle_current vh lsl 2) lor how_plain

let handle_miss t ~now ~ends flow ~vip ~vh ~syn =
  let code = version_for_miss_code t flow ~vh ~syn in
  let version = code lsr 2 in
  let how = code land 3 in
  let location =
    if how = how_cpu_checked then Lb.Balancer.Switch_cpu else Lb.Balancer.Asic
  in
  (* find + exception: pending flows take this path on every packet, and
     find_opt's [Some] box was visible in the replay allocation counters *)
  match Hashtbl.find t.flows flow with
  | st ->
    (* a pending connection's later packet *)
    st.last_seen <- now;
    if ends then st.ended <- true;
    if how = how_recorded then
      (match Hashtbl.find_opt t.jobs vip with
       | Some job when not st.inserted -> Hashtbl.replace job.recorded flow ()
       | Some _ | None -> ());
    learn t ~now flow st;
    (* the software slow path knows the connection's true version; the
       hardware fast path forwards with the freshly computed one — if
       that differs from the connection's own, that is exactly a PCC
       hazard *)
    let version = if how = how_cpu_checked then st.cs_version else version in
    forward t ~vip ~version flow ~location
  | exception Not_found ->
    if ends then
      (* first-and-last packet: nothing worth learning *)
      forward t ~vip ~version flow ~location
    else begin
      Telemetry.Registry.Counter.incr t.c_connections_seen;
      let st =
        {
          cs_vip = vip;
          cs_version = version;
          inserted = false;
          in_pipeline = false;
          ended = false;
          last_seen = now;
        }
      in
      Hashtbl.replace t.flows flow st;
      Asic.Timer_wheel.schedule t.aging ~key:flow ~at:(now +. t.cfg.Config.idle_timeout);
      Dip_pool_table.retain t.pools ~vip ~version;
      if how = how_recorded then
        (match Hashtbl.find_opt t.jobs vip with
         | Some job -> Hashtbl.replace job.recorded flow ()
         | None -> ());
      learn t ~now flow st;
      forward t ~vip ~version flow ~location
    end

(* a SYN falsely hit an existing entry: the switch CPU repairs the
   digest collision and installs the newcomer's own entry (§4.2) *)
let handle_false_hit_syn t ~now flow ~vip ~vh =
  let code = version_for_miss_code t flow ~vh ~syn:true in
  let version = code lsr 2 in
  begin
    let st =
      match Hashtbl.find_opt t.flows flow with
      | Some st ->
        st.last_seen <- now;
        st
      | None ->
        Telemetry.Registry.Counter.incr t.c_connections_seen;
        let st =
          {
            cs_vip = vip;
            cs_version = version;
            inserted = false;
            in_pipeline = false;
            ended = false;
            last_seen = now;
          }
        in
        Hashtbl.replace t.flows flow st;
        Asic.Timer_wheel.schedule t.aging ~key:flow ~at:(now +. t.cfg.Config.idle_timeout);
        Dip_pool_table.retain t.pools ~vip ~version;
        st
    in
    (* the repair itself is applied synchronously below, but its CPU time
       goes through the shared FIFO so the backlog it causes is visible in
       the queue-delay histogram and accounted at completion *)
    let done_at = Asic.Switch_cpu.submit t.cpu ~now ~work_items:3 in
    Queue.add (done_at, Repair_batch [ flow ]) t.cpu_done;
    (match Conn_table.repair_collision t.conns flow ~version:st.cs_version with
     | Ok () ->
       st.inserted <- true;
       barrier_resolved t ~now ~vip flow
     | Error `Full -> Telemetry.Registry.Counter.incr t.c_table_full_drops);
    forward t ~vip ~version:st.cs_version flow ~location:Lb.Balancer.Switch_cpu
  end

(* Allocation-free packet path: returns the chosen DIP, or the
   physically-unique [no_dip] sentinel on a drop (compare with [==]);
   the location is left in [t.last_location]. [process] wraps this into
   the [Lb.Balancer.outcome] record; the replay engine calls it (and
   [process_batch]) directly to keep the hot loop off the GC. *)
let process_flow t ~now ~flags ~payload_len flow =
  advance t ~now;
  let vip = flow.Netcore.Five_tuple.dst in
  let vh =
    match t.vh with
    | Some _ when Netcore.Endpoint.equal t.vh_vip vip -> t.vh
    | Some _ | None ->
      (match Vip_table.handle t.vips vip with
       | Some _ as r ->
         t.vh_vip <- vip;
         t.vh <- r;
         r
       | None -> None)
  in
  match vh with
  | None -> drop t
  | Some vh ->
    if
      (* §5.2 performance isolation: the VIP's meter drops Red packets in
         the ASIC before any table is consulted. Guarded by the table
         size so the meter-free fast path skips the hash lookup. *)
      Hashtbl.length t.meters > 0
      && (match Hashtbl.find_opt t.meters vip with
          | Some m ->
            Asic.Meter.mark m ~now ~bytes:(Netcore.Packet.wire_size_of ~payload_len flow)
            = Asic.Meter.Red
          | None -> false)
    then begin
      Telemetry.Registry.Counter.incr t.c_metered_drops;
      Telemetry.Registry.Counter.incr
        (Telemetry.Registry.counter t.metrics
           ~labels:[ ("vip", Format.asprintf "%a" Netcore.Endpoint.pp vip) ]
           "switch.vip.metered_drops");
      drop t
    end
    else begin
      let syn = Netcore.Tcp_flags.is_connection_start flags in
      let ends = Netcore.Tcp_flags.is_connection_end flags in
      let code = Conn_table.lookup_code t.conns flow in
      if code < 0 then handle_miss t ~now ~ends flow ~vip ~vh ~syn
      else begin
        let version = code lsr 1 in
        if code land 1 = 1 then begin
          (* exact hit *)
          (match Hashtbl.find t.flows flow with
           | st ->
             st.last_seen <- now;
             if ends && not st.ended then begin
               st.ended <- true;
               submit_delete t ~now flow
             end
           | exception Not_found -> ());
          forward t ~vip ~version flow ~location:Lb.Balancer.Asic
        end
        else if syn then handle_false_hit_syn t ~now flow ~vip ~vh
        else
          (* wrong entry, wrong version — forwarded anyway (rare digest
             false positive); VIPTable is bypassed *)
          forward t ~vip ~version flow ~location:Lb.Balancer.Asic
      end
    end

let last_location t = t.last_location

let process t ~now pkt =
  let dip =
    process_flow t ~now ~flags:pkt.Netcore.Packet.flags
      ~payload_len:pkt.Netcore.Packet.payload_len pkt.Netcore.Packet.flow
  in
  if dip == no_dip then { Lb.Balancer.dip = None; location = t.last_location }
  else { Lb.Balancer.dip = Some dip; location = t.last_location }

let process_batch t ~times ~flows ~flags ~payload_len ~dips ~pos ~len =
  for i = pos to pos + len - 1 do
    dips.(i) <-
      process_flow t ~now:(Array.unsafe_get times i)
        ~flags:(Array.unsafe_get flags i) ~payload_len
        (Array.unsafe_get flows i)
  done

let request_update t ~now ~vip update =
  advance t ~now;
  if not (Vip_table.mem t.vips vip) then invalid_arg "Switch.request_update: unknown VIP";
  if Hashtbl.mem t.jobs vip then begin
    let q =
      match Hashtbl.find_opt t.job_queue vip with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.job_queue vip q;
        q
    in
    Queue.add (now, update) q
  end
  else start_job t ~now ~requested:now vip update

let on_update_done t f = t.update_hook <- Some f

let pending_updates t =
  Hashtbl.length t.jobs + Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.job_queue 0

let remove_vip t vip =
  if not (Vip_table.mem t.vips vip) then invalid_arg "Switch.remove_vip: unknown VIP";
  if
    Hashtbl.mem t.jobs vip
    || (match Hashtbl.find_opt t.job_queue vip with
        | Some q -> not (Queue.is_empty q)
        | None -> false)
  then invalid_arg "Switch.remove_vip: update in progress";
  (* tear down tracked connections: ConnTable entries, aging timers and
     version refcounts all go through the same path a deletion takes *)
  let doomed =
    Hashtbl.fold
      (fun flow (st : conn_state) acc ->
        if Netcore.Endpoint.equal st.cs_vip vip then (flow, st) :: acc else acc)
      t.flows []
  in
  List.iter
    (fun (flow, (st : conn_state)) ->
      if st.inserted then ignore (Conn_table.remove t.conns flow);
      destroy_state t flow st)
    doomed;
  Hashtbl.remove t.job_queue vip;
  Hashtbl.remove t.meters vip;
  Vip_table.remove t.vips vip;
  Dip_pool_table.remove_vip t.pools vip;
  (* the one-slot handle cache may alias the removed entry *)
  if Netcore.Endpoint.equal t.vh_vip vip then begin
    t.vh_vip <- Netcore.Endpoint.none;
    t.vh <- None
  end

let inject_cpu_backlog t ~now ~work_items =
  advance t ~now;
  if work_items > 0 then begin
    (* an empty repair batch: occupies the CPU for [work_items] units and
       is accounted through the normal completion queue, so the stall is
       visible in switch_cpu.backlog_seconds and the queue-delay
       histogram without touching any table *)
    let done_at = Asic.Switch_cpu.submit t.cpu ~now ~work_items in
    Queue.add (done_at, Repair_batch []) t.cpu_done
  end

let forget_flows t ~now select =
  advance t ~now;
  (* an upstream re-route: the selected flows now hash to a different
     physical switch, so every trace of them here — ConnTable entry,
     aging timer, version refcount, any step-1 barrier they were
     holding — is torn down exactly as a deletion would. The flows
     themselves are still alive; they will reappear as unknown
     connections wherever ECMP sends them next. *)
  let doomed =
    Hashtbl.fold
      (fun flow (st : conn_state) acc ->
        if select flow st.cs_vip then (flow, st) :: acc else acc)
      t.flows []
  in
  List.iter
    (fun (flow, (st : conn_state)) ->
      if st.inserted then ignore (Conn_table.remove t.conns flow);
      barrier_resolved t ~now ~vip:st.cs_vip flow;
      destroy_state t flow st)
    doomed;
  let n = List.length doomed in
  Telemetry.Registry.Counter.add t.c_rerouted_flows n;
  n

let set_meter t ~vip ~cir ~cbs ~eir ~ebs =
  if not (Vip_table.mem t.vips vip) then invalid_arg "Switch.set_meter: unknown VIP";
  Hashtbl.replace t.meters vip (Asic.Meter.create ~cir ~cbs ~eir ~ebs)

let clear_meter t ~vip = Hashtbl.remove t.meters vip

let metered_drops t = Telemetry.Registry.Counter.value t.c_metered_drops
let metrics t = t.metrics

let balancer t =
  {
    Lb.Balancer.name = "silkroad";
    advance = (fun ~now -> advance t ~now);
    process = (fun ~now pkt -> process t ~now pkt);
    update = (fun ~now ~vip u -> request_update t ~now ~vip u);
    connections = (fun () -> Conn_table.size t.conns);
    metrics = (fun () -> t.metrics);
    disturb =
      (fun ~now d ->
        match d with
        | Lb.Balancer.Cpu_backlog n -> inject_cpu_backlog t ~now ~work_items:n
        | Lb.Balancer.Reroute r ->
          ignore
            (forget_flows t ~now (fun flow _vip -> Lb.Balancer.reroute_selects r flow)));
  }

let stats t =
  let v = Telemetry.Registry.Counter.value in
  {
    asic_packets = v t.c_asic_packets;
    cpu_packets = v t.c_cpu_packets;
    dropped_packets = v t.c_dropped_packets;
    connections_seen = v t.c_connections_seen;
    false_hits = Conn_table.false_hits t.conns;
    collision_repairs = Conn_table.repairs t.conns;
    learning_drops = v t.c_learning_drops;
    table_full_drops = v t.c_table_full_drops;
    insert_overflows = v t.c_insert_overflows;
    overflow_retries = v t.c_overflow_retries;
    updates_completed = v t.c_updates_completed;
    updates_failed = v t.c_updates_failed;
    transit_clears = v t.c_transit_clears;
    forced_transitions = v t.c_forced_transitions;
  }

let connections t = Conn_table.size t.conns
let conn_table t = t.conns
let pools t = t.pools
let vip_table t = t.vips
let transit_filter t = t.transit

let memory_bits t =
  let vip_entry_bits vip = (Netcore.Endpoint.size_bytes vip * 8) + t.cfg.Config.version_bits in
  let vip_bits =
    let acc = ref 0 in
    Vip_table.iter (fun vip _ _ -> acc := !acc + vip_entry_bits vip) t.vips;
    !acc
  in
  Conn_table.sram_bits t.conns + Dip_pool_table.sram_bits t.pools + vip_bits
  + Asic.Bloom_filter.bits t.transit

let check_invariants t =
  let problems = ref [] in
  let bad fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* installed flows have entries; count tracked users per (vip, version) *)
  let users = Hashtbl.create 64 in
  Hashtbl.iter
    (fun flow (st : conn_state) ->
      if st.inserted && not (Conn_table.mem_exact t.conns flow) then
        bad "installed connection %a has no ConnTable entry" Netcore.Five_tuple.pp flow;
      (match Dip_pool_table.pool t.pools ~vip:st.cs_vip ~version:st.cs_version with
       | Some _ -> ()
       | None ->
         bad "connection %a uses dead version %d" Netcore.Five_tuple.pp flow st.cs_version);
      let key = (st.cs_vip, st.cs_version) in
      Hashtbl.replace users key (1 + Option.value ~default:0 (Hashtbl.find_opt users key)))
    t.flows;
  (* refcounts match tracked users *)
  Hashtbl.iter
    (fun (vip, version) n ->
      let refs = Dip_pool_table.refcount t.pools ~vip ~version in
      if refs <> n then
        bad "version %d of %a has refcount %d but %d tracked users" version Netcore.Endpoint.pp
          vip refs n)
    users;
  (* ConnTable entries all belong to tracked flows *)
  if Conn_table.size t.conns > Hashtbl.length t.flows then
    bad "ConnTable holds %d entries for %d tracked connections" (Conn_table.size t.conns)
      (Hashtbl.length t.flows);
  (* VIP phases and current versions *)
  Vip_table.iter
    (fun vip current phase ->
      (match Dip_pool_table.pool t.pools ~vip ~version:current with
       | Some _ -> ()
       | None -> bad "current version %d of %a not in DIPPoolTable" current Netcore.Endpoint.pp vip);
      let has_job = Hashtbl.mem t.jobs vip in
      let updating = phase <> Vip_table.Idle in
      if has_job <> updating then
        bad "%a: job table and VIPTable phase disagree" Netcore.Endpoint.pp vip)
    t.vips;
  (* the accumulators above iterate hash tables: sort so a violation
     report reads the same regardless of table layout *)
  match List.sort String.compare !problems with
  | [] -> Ok ()
  | l -> Error l
