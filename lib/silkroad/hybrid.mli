(** Combining SilkRoad with SLBs (§7, "Combine with SLB solutions").

    Two composition modes, both supported simultaneously:

    - {b overflow}: when ConnTable occupancy crosses a threshold, new
      connections are redirected to an SLB instead — "basically treating
      SilkRoad ConnTable as a cache of connections";
    - {b pinning}: the operator assigns specific VIPs to the SLB
      permanently — "use SilkRoad to handle VIPs with high traffic
      volume and use SLBs to handle those VIPs with a large number of
      connections".

    Unlike Duet, connections never migrate between the switch and the
    SLB: whichever component takes a connection's first packet keeps it
    until it dies, so PCC always holds. DIP-pool updates are applied to
    both components. *)

type t

val create :
  ?metrics:Telemetry.Registry.t ->
  ?cfg:Config.t ->
  ?overflow_threshold:float ->
  ?slb_vips:Netcore.Endpoint.t list ->
  seed:int ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  unit ->
  t
(** [overflow_threshold] is the ConnTable occupancy (0..1, default 0.95)
    beyond which new connections spill to the SLB; [slb_vips] are pinned
    to the SLB outright. *)

val balancer : t -> Lb.Balancer.t
val switch : t -> Switch.t

val spilled_connections : t -> int
(** Connections redirected to the SLB by the overflow rule. *)

val slb_connections : t -> int
(** Connections currently tracked by the SLB (spilled + pinned VIPs). *)
