(** DIPPoolTable: (VIP, version) → immutable DIP pool (§4.2, Figure 7).

    The extra level of indirection that lets ConnTable store a 6-bit
    version instead of an 18-byte DIP. Each VIP owns a private version
    allocator; pools are reference-counted by the connections that use
    them, and a pool whose connections have all expired is destroyed,
    returning its version number to the VIP's ring buffer.

    The table also implements {e version reuse}: when an update merely
    substitutes a new DIP for a previously removed one, an existing old
    pool is modified in place and becomes current again, instead of
    burning a fresh version number. *)

type t

val create : version_bits:int -> seed:int -> t

val add_vip : t -> Netcore.Endpoint.t -> Lb.Dip_pool.t -> (int, [ `Exists ]) result
(** Register a VIP with its initial pool; returns the initial version. *)

val has_vip : t -> Netcore.Endpoint.t -> bool

val remove_vip : t -> Netcore.Endpoint.t -> unit
(** Drop a VIP and every version it owns (serve-mode VIP teardown).
    The caller is responsible for having released the connections that
    referenced those versions first. No-op on an unknown VIP. *)

val vips : t -> Netcore.Endpoint.t list

val pool : t -> vip:Netcore.Endpoint.t -> version:int -> Lb.Dip_pool.t option

val select_dip :
  t -> vip:Netcore.Endpoint.t -> version:int -> Netcore.Five_tuple.t -> Netcore.Endpoint.t option
(** Hash the flow over the pool of the given version. [None] when the
    version is unknown or its pool is empty. *)

val select_dip_fast :
  t ->
  vip:Netcore.Endpoint.t ->
  version:int ->
  Netcore.Five_tuple.t ->
  none:Netcore.Endpoint.t ->
  Netcore.Endpoint.t
(** Allocation-free {!select_dip}: returns [none] (meant to be the
    physically-unique {!Netcore.Endpoint.none}, tested with [==]) when
    the version is unknown or its pool is empty. Caches the last
    (VIP, version) resolution internally. *)

val publish :
  t -> vip:Netcore.Endpoint.t -> current:int -> Lb.Balancer.update ->
  (int, [ `No_such_vip | `Versions_exhausted | `Bad_update of string ]) result
(** Derive the pool for an update of the current version's pool and
    return the version that should become current. Reuses an existing
    allocated version when the update substitutes a removed DIP
    (including explicit [Dip_replace]) or when an allocated version
    already holds exactly the target pool (flapping DIPs, rolling
    reboots revisiting a state); otherwise allocates a fresh version
    for the new pool. *)

val retain : t -> vip:Netcore.Endpoint.t -> version:int -> unit
(** A connection started using this version. *)

val release : t -> vip:Netcore.Endpoint.t -> version:int -> current:int -> unit
(** A connection using this version ended. When the count reaches zero
    and the version is not [current], the pool is destroyed and the
    version returns to the ring buffer. *)

val gc : t -> vip:Netcore.Endpoint.t -> current:int -> unit
(** Destroy every version of the VIP that has no connections and is not
    [current] — run after a VIPTable flip so a version that never
    attracted connections is recycled promptly. *)

val refcount : t -> vip:Netcore.Endpoint.t -> version:int -> int
val live_versions : t -> vip:Netcore.Endpoint.t -> int
(** Number of currently allocated versions for the VIP. *)

val version_exhaustions : t -> int
val reuses : t -> int
(** How many updates were absorbed by version reuse. *)

val sram_bits : t -> int
(** Memory footprint of the table: one entry per (VIP, live version)
    holding the member DIPs. *)
