type phase =
  | Idle
  | Recording
  | Dual of { old_version : int }

type entry = {
  mutable current : int;
  mutable phase : phase;
}

type t = {
  entries : (Netcore.Endpoint.t, entry) Hashtbl.t;
  mutable updating : int;
}

let create () = { entries = Hashtbl.create 64; updating = 0 }

let add t vip ~version =
  if Hashtbl.mem t.entries vip then invalid_arg "Vip_table.add: VIP exists";
  Hashtbl.replace t.entries vip { current = version; phase = Idle }

let mem t vip = Hashtbl.mem t.entries vip
let count t = Hashtbl.length t.entries

let find t vip =
  match Hashtbl.find_opt t.entries vip with
  | Some e -> e
  | None -> invalid_arg "Vip_table: unknown VIP"

type handle = entry

let handle t vip = Hashtbl.find_opt t.entries vip
let handle_current (e : handle) = e.current
let handle_phase (e : handle) = e.phase

let current t vip =
  match Hashtbl.find_opt t.entries vip with
  | Some e -> Some e.current
  | None -> None

let phase t vip =
  match Hashtbl.find_opt t.entries vip with
  | Some e -> Some e.phase
  | None -> None

let start_recording t vip =
  let e = find t vip in
  (match e.phase with
   | Idle -> ()
   | Recording | Dual _ -> invalid_arg "Vip_table.start_recording: update in progress");
  e.phase <- Recording;
  t.updating <- t.updating + 1

let execute t vip ~new_version =
  let e = find t vip in
  (match e.phase with
   | Recording -> ()
   | Idle | Dual _ -> invalid_arg "Vip_table.execute: not recording");
  e.phase <- Dual { old_version = e.current };
  e.current <- new_version

let finish t vip =
  let e = find t vip in
  (match e.phase with
   | Dual _ -> ()
   | Idle | Recording -> invalid_arg "Vip_table.finish: not in dual phase");
  e.phase <- Idle;
  t.updating <- t.updating - 1

let cancel_recording t vip =
  let e = find t vip in
  (match e.phase with
   | Recording -> ()
   | Idle | Dual _ -> invalid_arg "Vip_table.cancel_recording: not recording");
  e.phase <- Idle;
  t.updating <- t.updating - 1

let remove t vip =
  let e = find t vip in
  (match e.phase with
   | Idle -> ()
   | Recording | Dual _ -> invalid_arg "Vip_table.remove: update in progress");
  Hashtbl.remove t.entries vip

let updating_count t = t.updating

let iter f t = Hashtbl.iter (fun vip e -> f vip e.current e.phase) t.entries
