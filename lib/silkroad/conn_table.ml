module Key = struct
  type t = Netcore.Five_tuple.t

  let equal = Netcore.Five_tuple.equal
  let hash = Netcore.Five_tuple.hash
end

module Flat_table = Asic.Cuckoo.Make (Key)
module Boxed_table = Asic.Cuckoo_boxed.Make (Key)

type lookup_result = {
  version : int;
  exact : bool;
}

type layout =
  [ `Flat
  | `Boxed
  ]

(* The table logic is written once against the shared cuckoo signature;
   the flat (production) and boxed (differential reference) layouts are
   two instantiations dispatched by the wrapper type at the bottom. *)
module Core (Table : Asic.Cuckoo_intf.S with type key = Netcore.Five_tuple.t) = struct
  type t = {
    table : int Table.t;
    probe : int Table.probe;  (** reusable lookup buffer for {!lookup_code} *)
    digest_bits : int;
    version_bits : int;
    n_stages : int;
    n_rows : int;
    (* per-stage hash seeds and scratch probe positions: [lookup_code]
       computes rows/digests itself with the directly-inlinable
       Five_tuple.hash (the functorised [Key.hash] inside [Table] is an
       opaque call that boxes its int64 per invocation) and hands them
       to [Table.lookup_pos_into]. *)
    row_seeds : int array;
    dig_seeds : int array;
    scratch_rows : int array;
    scratch_digs : int array;
    (* software shadow index: packed (stage, row, digest) -> tracked
       connections whose hardware lookup would match an entry stored
       there. Placement of new entries is vetoed at positions that would
       shadow a tracked connection. *)
    probe_index : (int, Netcore.Five_tuple.t list ref) Hashtbl.t;
    c_false_hits : Telemetry.Registry.Counter.t;
    c_repairs : Telemetry.Registry.Counter.t;
    g_size : Telemetry.Registry.Gauge.t;
    g_occupancy : Telemetry.Registry.Gauge.t;
  }

  (* ConnTable always runs in digest mode (digest_bits >= 1), so the
     digest is non-negative and the packed key is injective. *)
  let pack_pos t ~stage ~row ~digest = (((stage * t.n_rows) + row) lsl t.digest_bits) lor digest

  let register t k =
    for stage = 0 to t.n_stages - 1 do
      let row = Table.probe_row t.table k ~stage in
      let digest = Table.probe_digest t.table k ~stage in
      let pos = pack_pos t ~stage ~row ~digest in
      match Hashtbl.find_opt t.probe_index pos with
      | Some l -> l := k :: !l
      | None -> Hashtbl.replace t.probe_index pos (ref [ k ])
    done

  let unregister t k =
    for stage = 0 to t.n_stages - 1 do
      let row = Table.probe_row t.table k ~stage in
      let digest = Table.probe_digest t.table k ~stage in
      let pos = pack_pos t ~stage ~row ~digest in
      match Hashtbl.find_opt t.probe_index pos with
      | Some l ->
        l := List.filter (fun k' -> not (Netcore.Five_tuple.equal k' k)) !l;
        if !l = [] then Hashtbl.remove t.probe_index pos
      | None -> ()
    done

  (* Would an entry for [k] placed at (stage, row) be falsely matched by a
     tracked connection other than [k] itself? Callers always pass the
     row [k] itself hashes to at [stage]. *)
  let placement_safe t k ~stage ~row =
    let digest = Table.probe_digest t.table k ~stage in
    match Hashtbl.find t.probe_index (pack_pos t ~stage ~row ~digest) with
    | l -> not (List.exists (fun k' -> not (Netcore.Five_tuple.equal k' k)) !l)
    | exception Not_found -> true

  let create ?metrics (cfg : Config.t) =
    let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
    let table =
      Table.create ~seed:cfg.Config.seed ~digest_bits:cfg.Config.digest_bits
        ~stages:cfg.Config.conn_table_stages ~rows_per_stage:cfg.Config.conn_table_rows
        ~ways:cfg.Config.conn_table_ways ()
    in
    let stages = cfg.Config.conn_table_stages in
    let t =
      {
        table;
        probe = Table.make_probe 0;
        digest_bits = cfg.Config.digest_bits;
        version_bits = cfg.Config.version_bits;
        n_stages = stages;
        n_rows = cfg.Config.conn_table_rows;
        row_seeds = Array.init stages (fun stage -> Table.row_seed table ~stage);
        dig_seeds = Array.init stages (fun stage -> Table.digest_seed table ~stage);
        scratch_rows = Array.make stages 0;
        scratch_digs = Array.make stages 0;
        probe_index = Hashtbl.create 4096;
        c_false_hits = Telemetry.Registry.counter reg "conn_table.false_hits";
        c_repairs = Telemetry.Registry.counter reg "conn_table.repairs";
        g_size = Telemetry.Registry.gauge reg "conn_table.size";
        g_occupancy = Telemetry.Registry.gauge reg "conn_table.occupancy";
      }
    in
    Table.set_placement_filter t.table
      (Some (fun k ~stage ~row -> placement_safe t k ~stage ~row));
    t

  let capacity t = Table.capacity t.table
  let size t = Table.size t.table
  let occupancy t = Table.occupancy t.table

  let track_size t =
    Telemetry.Registry.Gauge.set t.g_size (float_of_int (Table.size t.table));
    Telemetry.Registry.Gauge.set t.g_occupancy (Table.occupancy t.table)

  let lookup t flow =
    match Table.lookup t.table flow with
    | None -> None
    | Some hit ->
      if not hit.Table.exact then Telemetry.Registry.Counter.incr t.c_false_hits;
      Some { version = hit.Table.value; exact = hit.Table.exact }

  (* Allocation-free [lookup]: [-1] on a miss, otherwise
     [(version lsl 1) lor exact_bit]. Versions are small non-negative ints
     (at most [version_bits] wide), so the encoding is lossless. Counts
     false positives exactly like [lookup]. *)
  let lookup_code t flow =
    let rows = t.scratch_rows and digs = t.scratch_digs in
    for stage = 0 to t.n_stages - 1 do
      Array.unsafe_set rows stage
        (Netcore.Hashing.to_range
           (Netcore.Five_tuple.hash ~seed:(Array.unsafe_get t.row_seeds stage) flow)
           t.n_rows);
      Array.unsafe_set digs stage
        (Netcore.Hashing.truncate_bits
           (Netcore.Five_tuple.hash ~seed:(Array.unsafe_get t.dig_seeds stage) flow)
           t.digest_bits)
    done;
    Table.lookup_pos_into t.table ~key:flow ~rows ~digests:digs t.probe;
    if not t.probe.Table.probe_hit then -1
    else begin
      if not t.probe.Table.probe_exact then Telemetry.Registry.Counter.incr t.c_false_hits;
      (t.probe.Table.probe_value lsl 1) lor (if t.probe.Table.probe_exact then 1 else 0)
    end

  let probe_positions t flow = Table.probe_positions t.table flow
  let mem_exact t flow = Table.mem_exact t.table flow

  let insert t flow ~version =
    match Table.insert t.table flow version with
    | Ok moves ->
      register t flow;
      track_size t;
      Ok moves
    | (Error (`Full | `Duplicate)) as e -> e

  let remove t flow =
    if Table.remove t.table flow then begin
      unregister t flow;
      track_size t;
      true
    end
    else false

  (* Separating two digest-colliding connections: neither entry may stay in
     a stage where the other falsely matches it. We move the resident away
     from its current stage, insert the newcomer avoiding that stage too,
     then verify both now hit exactly; on a bad verify we widen the set of
     forbidden stages and retry. *)
  let repair_collision t flow ~version =
    let exact_hit key =
      match Table.lookup t.table key with
      | Some hit -> hit.Table.exact
      | None -> false
    in
    let rec attempt forbidden tries residents =
      if tries > 2 * Table.stages t.table then Error `Full
      else
        match Table.lookup t.table flow with
        | Some hit when not hit.Table.exact ->
          (* Move the colliding resident out of the stage where the two
             connections are indistinguishable, then retry. *)
          let forbidden =
            if List.mem hit.Table.stage forbidden then forbidden else hit.Table.stage :: forbidden
          in
          (match Table.relocate t.table hit.Table.key ~forbid_stages:forbidden with
           | Ok _ | Error `Not_found -> attempt forbidden (tries + 1) (hit.Table.key :: residents)
           | Error `Full -> Error `Full)
        | Some _ | None ->
          (* No false hit left for the newcomer; make sure it has its own
             entry (avoiding the collision stages) ... *)
          (match
             if Table.mem_exact t.table flow then Ok 0
             else Table.insert ~forbid_stages:forbidden t.table flow version
           with
           | Error `Full -> Error `Full
           | Error `Duplicate | Ok _ ->
             (* ... and verify that the newcomer and every relocated
                resident now resolve exactly. *)
             if not (exact_hit flow) then begin
               ignore (Table.remove t.table flow);
               attempt forbidden (tries + 1) residents
             end
             else
               let stale = List.filter (fun k -> not (exact_hit k)) residents in
               (match stale with
                | [] ->
                  Telemetry.Registry.Counter.incr t.c_repairs;
                  track_size t;
                  (* the raw table insert above bypassed [insert]: (re)index
                     the newcomer exactly once *)
                  unregister t flow;
                  register t flow;
                  Ok ()
                | k :: _ ->
                  (* a resident falsely hits the newcomer's entry: move the
                     newcomer instead *)
                  (match Table.lookup t.table k with
                   | Some h ->
                     let forbidden =
                       if List.mem h.Table.stage forbidden then forbidden
                       else h.Table.stage :: forbidden
                     in
                     ignore (Table.remove t.table flow);
                     attempt forbidden (tries + 1) residents
                   | None ->
                     ignore (Table.remove t.table flow);
                     Error `Full)))
    in
    attempt [] 0 []

  let false_hits t = Telemetry.Registry.Counter.value t.c_false_hits
  let repairs t = Telemetry.Registry.Counter.value t.c_repairs
  let moves t = Table.moves t.table
  let failed_inserts t = Table.failed_inserts t.table
  let greedy_kicks t = Table.greedy_kicks t.table
  let bfs_expansions t = Table.bfs_expansions t.table
  let first_full_occupancy t = Table.first_full_occupancy t.table
end

module F = Core (Flat_table)
module B = Core (Boxed_table)

type t =
  | Flat of F.t
  | Boxed of B.t

let create ?metrics ?(layout = `Flat) cfg =
  match layout with
  | `Flat -> Flat (F.create ?metrics cfg)
  | `Boxed -> Boxed (B.create ?metrics cfg)

let layout = function Flat _ -> `Flat | Boxed _ -> `Boxed
let capacity = function Flat t -> F.capacity t | Boxed t -> B.capacity t
let size = function Flat t -> F.size t | Boxed t -> B.size t
let occupancy = function Flat t -> F.occupancy t | Boxed t -> B.occupancy t
let lookup t flow = match t with Flat t -> F.lookup t flow | Boxed t -> B.lookup t flow

let lookup_code t flow =
  match t with Flat t -> F.lookup_code t flow | Boxed t -> B.lookup_code t flow

let probe_positions t flow =
  match t with Flat t -> F.probe_positions t flow | Boxed t -> B.probe_positions t flow

let mem_exact t flow = match t with Flat t -> F.mem_exact t flow | Boxed t -> B.mem_exact t flow

let insert t flow ~version =
  match t with Flat t -> F.insert t flow ~version | Boxed t -> B.insert t flow ~version

let remove t flow = match t with Flat t -> F.remove t flow | Boxed t -> B.remove t flow

let repair_collision t flow ~version =
  match t with
  | Flat t -> F.repair_collision t flow ~version
  | Boxed t -> B.repair_collision t flow ~version

let false_hits = function Flat t -> F.false_hits t | Boxed t -> B.false_hits t
let repairs = function Flat t -> F.repairs t | Boxed t -> B.repairs t
let moves = function Flat t -> F.moves t | Boxed t -> B.moves t
let failed_inserts = function Flat t -> F.failed_inserts t | Boxed t -> B.failed_inserts t
let greedy_kicks = function Flat t -> F.greedy_kicks t | Boxed t -> B.greedy_kicks t
let bfs_expansions = function Flat t -> F.bfs_expansions t | Boxed t -> B.bfs_expansions t

let first_full_occupancy = function
  | Flat t -> F.first_full_occupancy t
  | Boxed t -> B.first_full_occupancy t

(* digest + version + "a couple bytes of packing overhead" — the paper's
   §6.1 configuration packs 16 + 6 + 6 = 28 bits, four entries per
   112-bit word. *)
let overhead_bits = 6

let entry_bits t =
  match t with
  | Flat t -> t.F.digest_bits + t.F.version_bits + overhead_bits
  | Boxed t -> t.B.digest_bits + t.B.version_bits + overhead_bits

let sram_bits t = Asic.Sram.bits_for_entries ~entry_bits:(entry_bits t) ~entries:(capacity t)
