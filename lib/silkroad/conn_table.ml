module Table = Asic.Cuckoo.Make (struct
  type t = Netcore.Five_tuple.t

  let equal = Netcore.Five_tuple.equal
  let hash = Netcore.Five_tuple.hash
end)

type t = {
  table : int Table.t;
  probe : int Table.probe;  (** reusable lookup buffer for {!lookup_code} *)
  digest_bits : int;
  version_bits : int;
  (* software shadow index: (stage, row, digest) -> tracked connections
     whose hardware lookup would match an entry stored there. Placement
     of new entries is vetoed at positions that would shadow a tracked
     connection. *)
  probe_index : (int * int * int, Netcore.Five_tuple.t list ref) Hashtbl.t;
  c_false_hits : Telemetry.Registry.Counter.t;
  c_repairs : Telemetry.Registry.Counter.t;
  g_size : Telemetry.Registry.Gauge.t;
  g_occupancy : Telemetry.Registry.Gauge.t;
}

type lookup_result = {
  version : int;
  exact : bool;
}

let register t k =
  List.iter
    (fun pos ->
      match Hashtbl.find_opt t.probe_index pos with
      | Some l -> l := k :: !l
      | None -> Hashtbl.replace t.probe_index pos (ref [ k ]))
    (Table.probe_positions t.table k)

let unregister t k =
  List.iter
    (fun pos ->
      match Hashtbl.find_opt t.probe_index pos with
      | Some l ->
        l := List.filter (fun k' -> not (Netcore.Five_tuple.equal k' k)) !l;
        if !l = [] then Hashtbl.remove t.probe_index pos
      | None -> ())
    (Table.probe_positions t.table k)

(* Would an entry for [k] placed at (stage, row) be falsely matched by a
   tracked connection other than [k] itself? *)
let placement_safe t k ~stage ~row =
  match List.nth_opt (Table.probe_positions t.table k) stage with
  | Some (_, r, digest) when r = row ->
    (match Hashtbl.find_opt t.probe_index (stage, row, digest) with
     | Some l -> not (List.exists (fun k' -> not (Netcore.Five_tuple.equal k' k)) !l)
     | None -> true)
  | Some _ | None -> true

let create ?metrics (cfg : Config.t) =
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let t =
    {
      table =
        Table.create ~seed:cfg.Config.seed ~digest_bits:cfg.Config.digest_bits
          ~stages:cfg.Config.conn_table_stages ~rows_per_stage:cfg.Config.conn_table_rows
          ~ways:cfg.Config.conn_table_ways ();
      probe = Table.make_probe 0;
      digest_bits = cfg.Config.digest_bits;
      version_bits = cfg.Config.version_bits;
      probe_index = Hashtbl.create 4096;
      c_false_hits = Telemetry.Registry.counter reg "conn_table.false_hits";
      c_repairs = Telemetry.Registry.counter reg "conn_table.repairs";
      g_size = Telemetry.Registry.gauge reg "conn_table.size";
      g_occupancy = Telemetry.Registry.gauge reg "conn_table.occupancy";
    }
  in
  Table.set_placement_filter t.table
    (Some (fun k ~stage ~row -> placement_safe t k ~stage ~row));
  t

let capacity t = Table.capacity t.table
let size t = Table.size t.table
let occupancy t = Table.occupancy t.table

let track_size t =
  Telemetry.Registry.Gauge.set t.g_size (float_of_int (Table.size t.table));
  Telemetry.Registry.Gauge.set t.g_occupancy (Table.occupancy t.table)

let lookup t flow =
  match Table.lookup t.table flow with
  | None -> None
  | Some hit ->
    if not hit.Table.exact then Telemetry.Registry.Counter.incr t.c_false_hits;
    Some { version = hit.Table.value; exact = hit.Table.exact }

(* Allocation-free [lookup]: [-1] on a miss, otherwise
   [(version lsl 1) lor exact_bit]. Versions are small non-negative ints
   (at most [version_bits] wide), so the encoding is lossless. Counts
   false positives exactly like [lookup]. *)
let lookup_code t flow =
  Table.lookup_into t.table flow t.probe;
  if not t.probe.Table.probe_hit then -1
  else begin
    if not t.probe.Table.probe_exact then Telemetry.Registry.Counter.incr t.c_false_hits;
    (t.probe.Table.probe_value lsl 1) lor (if t.probe.Table.probe_exact then 1 else 0)
  end

let probe_positions t flow = Table.probe_positions t.table flow

let mem_exact t flow = Table.mem_exact t.table flow

let insert t flow ~version =
  match Table.insert t.table flow version with
  | Ok moves ->
    register t flow;
    track_size t;
    Ok moves
  | (Error (`Full | `Duplicate)) as e -> e

let remove t flow =
  if Table.remove t.table flow then begin
    unregister t flow;
    track_size t;
    true
  end
  else false

(* Separating two digest-colliding connections: neither entry may stay in
   a stage where the other falsely matches it. We move the resident away
   from its current stage, insert the newcomer avoiding that stage too,
   then verify both now hit exactly; on a bad verify we widen the set of
   forbidden stages and retry. *)
let repair_collision t flow ~version =
  let exact_hit key =
    match Table.lookup t.table key with
    | Some hit -> hit.Table.exact
    | None -> false
  in
  let rec attempt forbidden tries residents =
    if tries > 2 * Table.stages t.table then Error `Full
    else
      match Table.lookup t.table flow with
      | Some hit when not hit.Table.exact ->
        (* Move the colliding resident out of the stage where the two
           connections are indistinguishable, then retry. *)
        let forbidden =
          if List.mem hit.Table.stage forbidden then forbidden else hit.Table.stage :: forbidden
        in
        (match Table.relocate t.table hit.Table.key ~forbid_stages:forbidden with
         | Ok _ | Error `Not_found ->
           attempt forbidden (tries + 1) (hit.Table.key :: residents)
         | Error `Full -> Error `Full)
      | Some _ | None ->
        (* No false hit left for the newcomer; make sure it has its own
           entry (avoiding the collision stages) ... *)
        (match
           if Table.mem_exact t.table flow then Ok 0
           else Table.insert ~forbid_stages:forbidden t.table flow version
         with
         | Error `Full -> Error `Full
         | Error `Duplicate | Ok _ ->
           (* ... and verify that the newcomer and every relocated
              resident now resolve exactly. *)
           if not (exact_hit flow) then begin
             ignore (Table.remove t.table flow);
             attempt forbidden (tries + 1) residents
           end
           else
             let stale = List.filter (fun k -> not (exact_hit k)) residents in
             (match stale with
              | [] ->
                Telemetry.Registry.Counter.incr t.c_repairs;
                track_size t;
                (* the raw table insert above bypassed [insert]: (re)index
                   the newcomer exactly once *)
                unregister t flow;
                register t flow;
                Ok ()
              | k :: _ ->
                (* a resident falsely hits the newcomer's entry: move the
                   newcomer instead *)
                (match Table.lookup t.table k with
                 | Some h ->
                   let forbidden =
                     if List.mem h.Table.stage forbidden then forbidden
                     else h.Table.stage :: forbidden
                   in
                   ignore (Table.remove t.table flow);
                   attempt forbidden (tries + 1) residents
                 | None ->
                   ignore (Table.remove t.table flow);
                   Error `Full)))
  in
  attempt [] 0 []

let false_hits t = Telemetry.Registry.Counter.value t.c_false_hits
let repairs t = Telemetry.Registry.Counter.value t.c_repairs
let moves t = Table.moves t.table
let failed_inserts t = Table.failed_inserts t.table

(* digest + version + "a couple bytes of packing overhead" — the paper's
   §6.1 configuration packs 16 + 6 + 6 = 28 bits, four entries per
   112-bit word. *)
let overhead_bits = 6

let entry_bits t = t.digest_bits + t.version_bits + overhead_bits

let sram_bits t =
  Asic.Sram.bits_for_entries ~entry_bits:(entry_bits t) ~entries:(capacity t)
