type t = {
  seed : int;
  switches : Switch.t array;
  up : bool array;
  (* resilient ECMP over member indices: a member failure only remaps
     the flows that were pinned to it *)
  mutable routing : int Asic.Ecmp.resilient;
}

let create ?(cfg = Config.default) ~seed ~switches ~vips () =
  if switches < 2 then invalid_arg "Switch_group.create: need at least 2 switches";
  (* every member uses the same configuration — and thus the same hash
     functions, so identical VIPTables map flows identically (§7) *)
  let mk _ =
    let sw = Switch.create cfg in
    List.iter (fun (v, p) -> Switch.add_vip sw v p) vips;
    sw
  in
  {
    seed;
    switches = Array.init switches mk;
    up = Array.make switches true;
    routing = Asic.Ecmp.resilient ~slots_per_member:128 (Array.init switches (fun i -> i));
  }

let members t = t.switches

let alive t = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 t.up

let route t flow =
  Asic.Ecmp.resilient_select t.routing (Netcore.Five_tuple.hash ~seed:t.seed flow)

let fail t i =
  if not t.up.(i) then ()
  else if alive t <= 1 then invalid_arg "Switch_group.fail: cannot kill the last switch"
  else begin
    t.up.(i) <- false;
    t.routing <- Asic.Ecmp.resilient_remove ~equal:Int.equal t.routing i
  end

let balancer t =
  {
    Lb.Balancer.name = Printf.sprintf "silkroad-group-%d" (Array.length t.switches);
    advance =
      (fun ~now ->
        Array.iteri (fun i sw -> if t.up.(i) then Switch.advance sw ~now) t.switches);
    process =
      (fun ~now pkt ->
        let i = route t pkt.Netcore.Packet.flow in
        Switch.process t.switches.(i) ~now pkt);
    update =
      (fun ~now ~vip u ->
        (* every switch sees every update, so latest VIPTables agree *)
        Array.iteri
          (fun i sw -> if t.up.(i) then Switch.request_update sw ~now ~vip u)
          t.switches);
    connections =
      (fun () ->
        Array.to_list t.switches
        |> List.mapi (fun i sw -> if t.up.(i) then Switch.connections sw else 0)
        |> List.fold_left ( + ) 0);
    metrics =
      (fun () ->
        (* group view = member registries merged: counters sum,
           histograms (same spec) merge bucket-wise *)
        let reg = Telemetry.Registry.create () in
        Array.iter
          (fun sw -> Telemetry.Registry.merge_into ~into:reg (Switch.metrics sw))
          t.switches;
        reg);
    disturb =
      (fun ~now d ->
        match d with
        | Lb.Balancer.Cpu_backlog n ->
          (* every live member has its own management CPU *)
          Array.iteri
            (fun i sw -> if t.up.(i) then Switch.inject_cpu_backlog sw ~now ~work_items:n)
            t.switches
        | Lb.Balancer.Reroute r ->
          (* re-routed flows leave whichever member knew them *)
          Array.iteri
            (fun i sw ->
              if t.up.(i) then
                ignore
                  (Switch.forget_flows sw ~now (fun flow _vip ->
                       Lb.Balancer.reroute_selects r flow)))
            t.switches);
  }
