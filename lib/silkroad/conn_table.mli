(** ConnTable: the per-connection state table in the ASIC (§4.2).

    A multi-stage cuckoo exact-match table whose entries store only a
    16-bit per-stage hash {e digest} of the 5-tuple (instead of 37 bytes
    for IPv6) and a 6-bit DIP-pool {e version} (instead of an 18-byte
    DIP). Hardware lookups may therefore falsely hit a colliding entry;
    a TCP SYN that hits an existing entry signals exactly this, and the
    switch software repairs it by relocating the resident entry to a
    stage whose different hash function separates the two connections.

    Insertions and removals are software operations (the switch CPU runs
    the cuckoo BFS); the {!Switch} module drives their timing. *)

type t

type lookup_result = {
  version : int;
  exact : bool;  (** false when the hit is a digest false positive *)
}

type layout =
  [ `Flat  (** the flat SoA {!Asic.Cuckoo} layout (production default) *)
  | `Boxed  (** the per-slot boxed {!Asic.Cuckoo_boxed} reference layout *)
  ]
(** Both layouts are pinned placement-identical by the differential
    suite; [`Boxed] exists so tests can run the same traffic through
    both and compare counters byte-for-byte. *)

val create : ?metrics:Telemetry.Registry.t -> ?layout:layout -> Config.t -> t
(** [?metrics] is the registry the table reports through:
    [conn_table.false_hits] / [conn_table.repairs] counters and
    [conn_table.size] / [conn_table.occupancy] gauges. The dedicated
    accessors below read the same counters. [?layout] defaults to
    [`Flat]. *)

val layout : t -> layout

val capacity : t -> int
val size : t -> int
val occupancy : t -> float

val lookup : t -> Netcore.Five_tuple.t -> lookup_result option
(** Hardware lookup. Counts false positives as a side effect. *)

val lookup_code : t -> Netcore.Five_tuple.t -> int
(** Allocation-free {!lookup}: [-1] on a miss, otherwise
    [(version lsl 1) lor exact_bit]. Counts false positives exactly like
    {!lookup}. *)

val probe_positions : t -> Netcore.Five_tuple.t -> (int * int * int) list
(** [(stage, row, digest)] the hardware probes for this flow — a pure
    function of the table geometry and seed, independent of contents.
    Two flows can falsely hit each other iff they share a
    [(stage, row, digest)] triple. *)

val mem_exact : t -> Netcore.Five_tuple.t -> bool

val insert : t -> Netcore.Five_tuple.t -> version:int -> (int, [ `Full | `Duplicate ]) result
(** Software insertion; [Ok moves] gives the cuckoo move count. *)

val remove : t -> Netcore.Five_tuple.t -> bool

val repair_collision :
  t -> Netcore.Five_tuple.t -> version:int -> (unit, [ `Full ]) result
(** Called when a SYN of [flow] falsely hit an existing entry: relocate
    the colliding resident entry to another stage and insert [flow] with
    its own version so that both connections subsequently hit their own
    entries exactly. Retries across stages; [`Full] if the table cannot
    accommodate the separation. *)

val false_hits : t -> int
(** Hardware lookups that matched an entry whose true key differed. *)

val repairs : t -> int
val moves : t -> int
val failed_inserts : t -> int

val greedy_kicks : t -> int
(** Inserts resolved by the cuckoo greedy depth-1 kick pass (always 0 on
    the boxed layout, whose insert path is the plain BFS). *)

val bfs_expansions : t -> int
(** Cumulative cuckoo BFS node expansions across all inserts. *)

val first_full_occupancy : t -> float option
(** Occupancy at the first insert that failed with [`Full]; [None] while
    no insert has failed (§7's overflow diagnostic). *)

val entry_bits : t -> int
(** Bits per entry: digest + version + packing overhead (28 for the
    default 16+6+6). *)

val sram_bits : t -> int
(** Provisioned (capacity-based) SRAM footprint with word packing. *)
