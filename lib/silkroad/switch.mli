(** The SilkRoad switch: data plane, control plane, and the 3-step PCC
    update protocol (§4, Figure 10).

    {2 Data plane (per packet, line rate)}

    A packet to a VIP first looks up ConnTable by its 5-tuple digest.
    On an exact hit it is forwarded to the DIP its stored version maps to
    in DIPPoolTable. On a false hit, a SYN is redirected to the switch
    CPU for collision repair; a non-SYN packet is (wrongly) forwarded by
    the matched entry — the rare digest-false-positive cost §4.2
    quantifies. On a miss, VIPTable supplies the version: the current
    one when the VIP is idle or its update is still pending (step 1,
    with the connection also recorded in the TransitTable Bloom filter),
    or — after the update executed (step 2) — the old version when the
    Bloom filter remembers the connection and the new one otherwise.
    Misses raise a learning event so the switch CPU can install the
    entry.

    {2 Control plane (switch CPU)}

    Learning events batch in the learning filter (capacity/timeout) and
    are inserted into ConnTable at the CPU's bounded rate; connection
    teardown (FIN/RST) and idle expiry delete entries and release their
    version's refcount. A DIP-pool update runs the 3-step protocol:
    step 1 waits for every connection that arrived before the request to
    be inserted; step 2 executes the update on VIPTable; step 3 finishes
    when every connection recorded during step 1 is inserted, then
    clears the Bloom filter (once no VIP is updating).

    Time is supplied by the caller ([now]), so the switch composes with
    the discrete-event harness. *)

type t

val create :
  ?metrics:Telemetry.Registry.t ->
  ?check:[ `Fail | `Warn | `Off ] ->
  ?conn_layout:Conn_table.layout ->
  Config.t ->
  t
(** [?metrics] is the registry the switch and all its ASIC primitives
    (ConnTable, TransitTable, learning filter, switch CPU) report
    through; a private one is created when absent. See {!metrics}.

    [?check] (default [`Warn]) runs {!Program.feasibility} on the
    configuration: [`Fail] raises [Invalid_argument] when the implied
    tables cannot be placed on the chip's stages, [`Warn] logs the first
    infeasible resource class and proceeds (the software model can still
    simulate what hardware could not hold), [`Off] skips the check.

    [?conn_layout] (default [`Flat]) selects the ConnTable memory
    layout; the differential suite runs the same traffic through both
    layouts and pins their counters byte-identical. *)

val config : t -> Config.t

val metrics : t -> Telemetry.Registry.t
(** The switch's registry: [switch.*] counters mirroring {!stats},
    [lb.packets] / [lb.dropped_packets], per-VIP labeled counters
    ([switch.vip.updates_completed], [switch.vip.metered_drops]), the
    [switch.tracked_flows] gauge, and every metric of the underlying
    primitives ([conn_table.*], [bloom.*], [learning.*],
    [switch_cpu.*] including the queue-delay histogram). *)

val add_vip : t -> Netcore.Endpoint.t -> Lb.Dip_pool.t -> unit
(** Register a VIP with its initial DIP pool. Raises [Invalid_argument]
    if present. *)

val has_vip : t -> Netcore.Endpoint.t -> bool

val advance : t -> now:float -> unit
(** Run the control plane up to [now]: drain due learning batches,
    complete due insertions/deletions, progress update jobs, expire idle
    entries. *)

val barrier_deadline : float
(** Liveness valve on the §4.3 step-1/step-3 barriers: an update stuck
    waiting longer than this (seconds of virtual time) is force-released
    and counted under [forced_transitions]. Exposed so external models
    of the update machinery (e.g. {!Analysis.Modelcheck}) can mirror the
    exact instant safety is traded for liveness. *)

val process : t -> now:float -> Netcore.Packet.t -> Lb.Balancer.outcome
(** Forward one packet (implies [advance]). *)

(** {2 Allocation-free fast path}

    The replay engine processes millions of packets; boxing each one
    into {!Netcore.Packet.t} and each result into an option + outcome
    record dominates the run time. The fast path takes the unpacked
    header fields and returns a bare endpoint, using the
    physically-unique {!no_dip} sentinel (compare with [==]) for drops. *)

val no_dip : Netcore.Endpoint.t
(** Alias of {!Netcore.Endpoint.none}: the drop sentinel returned by
    {!process_flow}. Test with [==], never with structural equality. *)

val process_flow :
  t ->
  now:float ->
  flags:Netcore.Tcp_flags.t ->
  payload_len:int ->
  Netcore.Five_tuple.t ->
  Netcore.Endpoint.t
(** Exactly {!process} (same counters, same control-plane side effects)
    without the packet/outcome boxing. Returns the chosen DIP or
    {!no_dip}; {!last_location} reports where the packet went. *)

val last_location : t -> Lb.Balancer.location
(** Location taken by the most recent {!process_flow}/{!process} call. *)

val process_batch :
  t ->
  times:float array ->
  flows:Netcore.Five_tuple.t array ->
  flags:Netcore.Tcp_flags.t array ->
  payload_len:int ->
  dips:Netcore.Endpoint.t array ->
  pos:int ->
  len:int ->
  unit
(** Run {!process_flow} over [times/flows/flags] indices
    [pos .. pos+len-1] (times must be non-decreasing), writing each
    result into [dips]. One bounds check per array per batch; the loop
    body allocates nothing on the exact-hit path. *)

val request_update : t -> now:float -> vip:Netcore.Endpoint.t -> Lb.Balancer.update -> unit
(** Request a DIP-pool update; updates to a VIP already updating are
    queued and run in order. *)

val remove_vip : t -> Netcore.Endpoint.t -> unit
(** Withdraw a VIP (serve-mode teardown): tears down its tracked
    connections (ConnTable entries, timers, version refcounts), then
    drops it from VIPTable and DIPPoolTable — subsequent packets to the
    VIP are dropped. Raises [Invalid_argument] when the VIP is unknown
    or has an active or queued update. *)

(** {2 Control-plane observation (serve mode)} *)

type update_report = {
  ur_vip : Netcore.Endpoint.t;
  ur_update : Lb.Balancer.update;
  ur_requested : float;  (** when {!request_update} accepted it *)
  ur_finished : float;  (** when the job completed or aborted *)
  ur_old_version : int;  (** version current when the update executed *)
  ur_new_version : int;  (** version current after the flip *)
  ur_outcome : [ `Completed | `Failed ];
}
(** One 3-step update job's life, as virtual times: [ur_finished -.
    ur_requested] is the request-to-finish apply latency including any
    per-VIP queue wait. A [`Failed] job reports [ur_old_version =
    ur_new_version]. *)

val on_update_done : t -> (update_report -> unit) -> unit
(** Install the (single) update observer. The serve-mode control plane
    uses it to feed the [control.update_apply_seconds] histogram and to
    watch old versions drain for version-recycle latency. *)

val pending_updates : t -> int
(** Active update jobs plus queued updates — the control-path backlog a
    [drain] waits out. *)

val forget_flows : t -> now:float -> (Netcore.Five_tuple.t -> Netcore.Endpoint.t -> bool) -> int
(** Drop every tracked connection [select flow vip] chooses, as an
    upstream re-route to another switch would: the ConnTable entry,
    aging timer, version refcount and any step-1 barrier membership are
    torn down; the flow will next be seen (by whichever switch ECMP now
    picks) as an unknown connection. Counted in [switch.rerouted_flows];
    returns how many flows were dropped. This is the
    {!Lb.Balancer.Reroute} disturbance's implementation. *)

val inject_cpu_backlog : t -> now:float -> work_items:int -> unit
(** Queue [work_items] units of dummy work on the switch CPU, delaying
    every insertion/deletion behind it — the chaos harness's model of a
    management-CPU stall (§4.3). The stall shows up in
    [switch_cpu.backlog_seconds] and the queue-delay histogram; no table
    is modified. *)

val set_meter :
  t -> vip:Netcore.Endpoint.t -> cir:float -> cbs:int -> eir:float -> ebs:int -> unit
(** Attach a two-rate three-color meter to the VIP (§5.2 performance
    isolation): packets marked Red are dropped in the ASIC, so a VIP
    under DDoS or flash crowd cannot crowd out the others. Replaces any
    existing meter. *)

val clear_meter : t -> vip:Netcore.Endpoint.t -> unit

val metered_drops : t -> int
(** Packets dropped Red by VIP meters. *)

val balancer : t -> Lb.Balancer.t
(** Adapt to the common balancer interface. *)

(** {2 Introspection} *)

type stats = {
  asic_packets : int;  (** forwarded entirely in the ASIC *)
  cpu_packets : int;  (** redirected through the switch CPU *)
  dropped_packets : int;
  connections_seen : int;
  false_hits : int;  (** digest false positives observed by lookups *)
  collision_repairs : int;
  learning_drops : int;  (** learning-filter overflows *)
  table_full_drops : int;
      (** connections left stateless: ConnTable still full after the
          overflow queue exhausted its retries (or the queue was full) *)
  insert_overflows : int;
      (** inserts that found the table full and were deferred to the
          switch-CPU overflow queue for retry *)
  overflow_retries : int;  (** deferred insert attempts performed *)
  updates_completed : int;
  updates_failed : int;  (** aborted (e.g. version exhaustion) *)
  transit_clears : int;
  forced_transitions : int;  (** update barriers released by safety timeout *)
}

val stats : t -> stats
val connections : t -> int
(** ConnTable entries currently installed. *)

val conn_table : t -> Conn_table.t
val pools : t -> Dip_pool_table.t
val vip_table : t -> Vip_table.t
val transit_filter : t -> Asic.Bloom_filter.t

val memory_bits : t -> int
(** Data-plane SRAM currently provisioned: ConnTable + DIPPoolTable +
    VIPTable + TransitTable. *)

val check_invariants : t -> (unit, string list) result
(** Verify the cross-table invariants the design relies on (used by the
    test suite and the soak test):
    - every connection marked installed has an exact ConnTable entry,
      and every ConnTable entry belongs to a tracked connection;
    - every tracked connection's version is live in DIPPoolTable, and
      per-(VIP, version) refcounts equal the number of tracked
      connections using that version;
    - every VIP's current version is allocated;
    - a VIP has an active update job iff it is not in phase [Idle].
    Returns the list of violated invariants. *)
