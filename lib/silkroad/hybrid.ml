(* The SLB side is a minimal in-process software balancer (ConnTable +
   VIPTable in hashtables, atomic updates) — deliberately local so the
   silkroad library does not depend on the baselines library. *)

type soft_lb = {
  soft_seed : int;
  soft_vips : (Netcore.Endpoint.t, Lb.Dip_pool.t) Hashtbl.t;
  soft_conns : (Netcore.Five_tuple.t, Netcore.Endpoint.t) Hashtbl.t;
}

let soft_process slb (pkt : Netcore.Packet.t) =
  let flow = pkt.Netcore.Packet.flow in
  let finish dip = { Lb.Balancer.dip; location = Lb.Balancer.Slb } in
  match Hashtbl.find_opt slb.soft_conns flow with
  | Some dip ->
    if Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags then
      Hashtbl.remove slb.soft_conns flow;
    finish (Some dip)
  | None ->
    (match Hashtbl.find_opt slb.soft_vips flow.Netcore.Five_tuple.dst with
     | None -> finish None
     | Some pool ->
       if Lb.Dip_pool.is_empty pool then finish None
       else begin
         let dip = Lb.Dip_pool.select_flow ~seed:slb.soft_seed pool flow in
         if not (Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags) then
           Hashtbl.replace slb.soft_conns flow dip;
         finish (Some dip)
       end)

type t = {
  sw : Switch.t;
  slb : soft_lb;
  overflow_threshold : float;
  pinned : (Netcore.Endpoint.t, unit) Hashtbl.t;
  (* connections spilled to the SLB by the overflow rule: they must stay
     there for life even if occupancy later drops *)
  spilled : (Netcore.Five_tuple.t, unit) Hashtbl.t;
  metrics : Telemetry.Registry.t;
  c_spilled : Telemetry.Registry.Counter.t;
  (* soft-path packets bypass the switch, so the hybrid bumps the shared
     lb.* counters itself to keep the uniform pair accurate *)
  c_lb_packets : Telemetry.Registry.Counter.t;
  c_lb_dropped : Telemetry.Registry.Counter.t;
  g_slb_conns : Telemetry.Registry.Gauge.t;
}

let create ?metrics ?(cfg = Config.default) ?(overflow_threshold = 0.95) ?(slb_vips = [])
    ~seed ~vips () =
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let sw = Switch.create ~metrics:reg cfg in
  let slb =
    { soft_seed = seed; soft_vips = Hashtbl.create 16; soft_conns = Hashtbl.create 1024 }
  in
  let pinned = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace pinned v ()) slb_vips;
  List.iter
    (fun (v, pool) ->
      Hashtbl.replace slb.soft_vips v pool;
      if not (Hashtbl.mem pinned v) then Switch.add_vip sw v pool)
    vips;
  {
    sw;
    slb;
    overflow_threshold;
    pinned;
    spilled = Hashtbl.create 1024;
    metrics = reg;
    c_spilled = Telemetry.Registry.counter reg "hybrid.spilled";
    c_lb_packets = Telemetry.Registry.counter reg "lb.packets";
    c_lb_dropped = Telemetry.Registry.counter reg "lb.dropped_packets";
    g_slb_conns = Telemetry.Registry.gauge reg "hybrid.slb_connections";
  }

let switch t = t.sw

let soft_forward t pkt =
  let outcome = soft_process t.slb pkt in
  (match outcome.Lb.Balancer.dip with
   | Some _ -> Telemetry.Registry.Counter.incr t.c_lb_packets
   | None -> Telemetry.Registry.Counter.incr t.c_lb_dropped);
  Telemetry.Registry.Gauge.set t.g_slb_conns
    (float_of_int (Hashtbl.length t.slb.soft_conns));
  outcome

let process t ~now pkt =
  let flow = pkt.Netcore.Packet.flow in
  let vip = flow.Netcore.Five_tuple.dst in
  if Hashtbl.mem t.pinned vip || Hashtbl.mem t.spilled flow then begin
    if
      Hashtbl.mem t.spilled flow
      && Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags
    then Hashtbl.remove t.spilled flow;
    soft_forward t pkt
  end
  else if
    (* overflow rule: a connection UNKNOWN to the switch arriving while
       ConnTable runs hot spills to the SLB *)
    Netcore.Tcp_flags.is_connection_start pkt.Netcore.Packet.flags
    && Conn_table.occupancy (Switch.conn_table t.sw) >= t.overflow_threshold
  then begin
    Hashtbl.replace t.spilled flow ();
    Telemetry.Registry.Counter.incr t.c_spilled;
    soft_forward t pkt
  end
  else Switch.process t.sw ~now pkt

let update t ~now ~vip u =
  (* both components see every update; the SLB applies it atomically *)
  (match Hashtbl.find_opt t.slb.soft_vips vip with
   | Some pool -> Hashtbl.replace t.slb.soft_vips vip (Lb.Balancer.apply_update pool u)
   | None -> ());
  if Switch.has_vip t.sw vip then Switch.request_update t.sw ~now ~vip u

let balancer t =
  {
    Lb.Balancer.name = "silkroad-hybrid";
    advance = (fun ~now -> Switch.advance t.sw ~now);
    process = (fun ~now pkt -> process t ~now pkt);
    update = (fun ~now ~vip u -> update t ~now ~vip u);
    connections = (fun () -> Switch.connections t.sw + Hashtbl.length t.slb.soft_conns);
    metrics = (fun () -> t.metrics);
    disturb =
      (fun ~now d ->
        match d with
        | Lb.Balancer.Cpu_backlog n -> Switch.inject_cpu_backlog t.sw ~now ~work_items:n
        | Lb.Balancer.Reroute r ->
          (* both tiers lose the re-routed flows: the hardware table and
             the software fallback live on the same failed device *)
          let selects flow = Lb.Balancer.reroute_selects r flow in
          ignore (Switch.forget_flows t.sw ~now (fun flow _vip -> selects flow));
          let drop tbl =
            let doomed =
              Hashtbl.fold (fun flow _ acc -> if selects flow then flow :: acc else acc) tbl []
            in
            List.iter (Hashtbl.remove tbl) doomed
          in
          drop t.slb.soft_conns;
          drop t.spilled);
  }

let spilled_connections t = Telemetry.Registry.Counter.value t.c_spilled
let slb_connections t = Hashtbl.length t.slb.soft_conns
