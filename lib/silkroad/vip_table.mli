(** VIPTable: VIP → current DIP-pool version (§4.2, Figure 9).

    During a 3-step PCC update the table is in one of three phases:

    - [Idle] — one version; ConnTable misses map to it.
    - [Recording] (step 1, t_req..t_exec) — the update has been
      requested but not executed: misses still map to the old version
      {e and} are recorded in the TransitTable Bloom filter.
    - [Dual] (step 2, t_exec..t_finish) — the update has executed:
      misses consult the Bloom filter; a hit means the connection is an
      old pending one and takes the old version, a miss takes the new. *)

type phase =
  | Idle
  | Recording
  | Dual of { old_version : int }

type t

val create : unit -> t

val add : t -> Netcore.Endpoint.t -> version:int -> unit
(** Raises [Invalid_argument] when the VIP exists. *)

val mem : t -> Netcore.Endpoint.t -> bool
val count : t -> int

val current : t -> Netcore.Endpoint.t -> int option
(** The version new connections are assigned (the newest). *)

type handle
(** A stable reference to a VIP's table entry; its observed
    version/phase track updates live. Lets the packet fast path skip the
    per-packet hash lookup. A handle to a {!remove}d VIP goes stale —
    the switch drops its one-slot handle cache on removal. *)

val handle : t -> Netcore.Endpoint.t -> handle option
val handle_current : handle -> int
val handle_phase : handle -> phase

val phase : t -> Netcore.Endpoint.t -> phase option

val start_recording : t -> Netcore.Endpoint.t -> unit
(** Step 1: phase [Idle] → [Recording]. Raises on wrong phase. *)

val execute : t -> Netcore.Endpoint.t -> new_version:int -> unit
(** Step 2: phase [Recording] → [Dual]; the new version becomes
    current, the former current becomes the Dual's old version. *)

val finish : t -> Netcore.Endpoint.t -> unit
(** Step 3: phase [Dual] → [Idle]. *)

val cancel_recording : t -> Netcore.Endpoint.t -> unit
(** Abort an update before execution: [Recording] → [Idle] (e.g. when
    version allocation failed). *)

val remove : t -> Netcore.Endpoint.t -> unit
(** Remove a VIP (serve-mode VIP teardown). Raises [Invalid_argument]
    when the VIP is unknown or not in phase [Idle] — an in-flight
    3-step update must finish before its VIP can be withdrawn. *)

val updating_count : t -> int
(** VIPs not in phase [Idle] — used to decide when the shared
    TransitTable may be cleared. *)

val iter : (Netcore.Endpoint.t -> int -> phase -> unit) -> t -> unit
