(** The SilkRoad P4 program's hardware footprint (Table 2).

    The paper implements SilkRoad in ~400 lines of P4 on top of a
    baseline [switch.p4] (~5000 lines of L2/L3/ACL/QoS) and reports the
    {e additional} pipeline resources at 1 M connection entries,
    normalized by the baseline's usage. We rebuild the addition from the
    table inventory of Figure 10 (ConnTable, VIPTable, DIPPoolTable,
    TransitTable, LearnTable) via {!Asic.Table_spec}, and normalize by a
    fixed baseline resource vector representing [switch.p4] (constants
    below, derived once from the paper's implied totals and kept
    frozen — so changes to our model show up as drift from Table 2). *)

val silkroad_tables : connections:int -> vips:int -> Asic.Table_spec.t list
(** The match-action tables SilkRoad adds, sized for the given scale
    (IPv6 keys, 16-bit digests, 6-bit versions, 64 versions/VIP
    provisioned in DIPPoolTable). *)

val additional_resources : connections:int -> vips:int -> Asic.Resources.t
(** Table resources plus the TransitTable register array / stateful
    ALUs and the metadata PHV bits. *)

val baseline_switch_p4 : Asic.Resources.t
(** The frozen baseline [switch.p4] resource vector. *)

val table2 : connections:int -> vips:int -> Asic.Resources.percentages
(** Additional usage as percentages of the baseline — Table 2's rows. *)

(** {1 Stage placement}

    The same inventory, viewed as placeable {!Asic.Pipeline} items with
    Figure 10's dependency structure (ConnTable → VIPTable →
    TransitTable/DIPPoolTable, LearnTable on the miss signal). The item
    resources sum to {!additional_resources} exactly, so Table 2 is
    unchanged by the stage allocator. *)

val chip : unit -> Asic.Pipeline.chip
(** The §6-generation chip the checker places onto, with
    {!baseline_switch_p4} resident. *)

val pipeline_items : connections:int -> vips:int -> Asic.Pipeline.item list
(** Items at the frozen §6 operating constants (16-bit digest, 6-bit
    versions) — the Table 2 path. *)

val tables_of_config : ?vips:int -> Config.t -> Asic.Table_spec.t list
(** [silkroad_tables] geometry driven by an actual configuration
    (digest/version widths, ConnTable capacity, provisioned versions).
    [vips] defaults to 1024. *)

val items_of_config : ?vips:int -> Config.t -> Asic.Pipeline.item list

val feasibility : ?vips:int -> Config.t -> Asic.Pipeline.report
(** Place everything the configuration implies on {!chip}. A [failure]
    in the report means the configuration cannot be compiled to the
    ASIC: {!Switch.create} warns or refuses according to its [?check]
    argument, and [silkroad-lint] turns it into a diagnostic. *)
