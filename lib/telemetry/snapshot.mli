(** A point-in-time, immutable view of a {!Registry}: the
    machine-readable output every experiment and benchmark run emits.

    Histograms appear as fixed summaries (count/sum/min/max and the
    quantiles the paper's figures use) rather than raw buckets, so
    snapshots from different runs are directly comparable rows. A
    snapshot survives a JSON round-trip bit-exactly
    ([of_json (to_json s) = Ok s]). *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of summary

type item = {
  name : string;
  labels : (string * string) list;  (** sorted by label key *)
  value : value;
}

type t = item list

val summarize : Histogram.t -> summary

val find : t -> ?labels:(string * string) list -> string -> item option
(** Label order is irrelevant; [?labels] defaults to the unlabeled
    metric. *)

val counter : t -> ?labels:(string * string) list -> string -> int option
val gauge : t -> ?labels:(string * string) list -> string -> float option
val histogram : t -> ?labels:(string * string) list -> string -> summary option

val equal : t -> t -> bool

val to_json_value : t -> Json.t
val to_json : t -> string
(** Pretty-printed JSON array, one object per metric. *)

val of_json : string -> (t, string) result

val to_csv : t -> string
(** One [name,labels,kind,field,value] row per scalar, histogram
    summaries flattened into one row per field. *)
