type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of summary

type item = {
  name : string;
  labels : (string * string) list;
  value : value;
}

type t = item list

let summarize h =
  {
    count = Histogram.count h;
    sum = Histogram.sum h;
    min = Histogram.min_value h;
    max = Histogram.max_value h;
    p50 = Histogram.median h;
    p90 = Histogram.p90 h;
    p99 = Histogram.p99 h;
    p999 = Histogram.p999 h;
  }

let sort_labels labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let find t ?(labels = []) name =
  let labels = sort_labels labels in
  List.find_opt (fun item -> String.equal item.name name && item.labels = labels) t

let counter t ?labels name =
  match find t ?labels name with Some { value = Counter c; _ } -> Some c | _ -> None

let gauge t ?labels name =
  match find t ?labels name with Some { value = Gauge g; _ } -> Some g | _ -> None

let histogram t ?labels name =
  match find t ?labels name with Some { value = Histogram s; _ } -> Some s | _ -> None

let equal (a : t) (b : t) = a = b

(* ----- JSON ----- *)

let json_of_item item =
  let labels =
    match item.labels with
    | [] -> []
    | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls)) ]
  in
  let value =
    match item.value with
    | Counter c -> [ ("kind", Json.String "counter"); ("value", Json.Int c) ]
    | Gauge g -> [ ("kind", Json.String "gauge"); ("value", Json.Float g) ]
    | Histogram s ->
      [ ("kind", Json.String "histogram");
        ("count", Json.Int s.count);
        ("sum", Json.Float s.sum);
        ("min", Json.Float s.min);
        ("max", Json.Float s.max);
        ("p50", Json.Float s.p50);
        ("p90", Json.Float s.p90);
        ("p99", Json.Float s.p99);
        ("p999", Json.Float s.p999) ]
  in
  Json.Obj ((("name", Json.String item.name) :: labels) @ value)

let to_json_value t = Json.List (List.map json_of_item t)
let to_json t = Json.to_string_pretty (to_json_value t)

let item_of_json j =
  let ( let* ) = Option.bind in
  let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let flt k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let* name = str "name" in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj fields) ->
      sort_labels
        (List.filter_map
           (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None)
           fields)
    | _ -> []
  in
  let* kind = str "kind" in
  let* value =
    match kind with
    | "counter" ->
      let* c = int "value" in
      Some (Counter c)
    | "gauge" ->
      let* g = flt "value" in
      Some (Gauge g)
    | "histogram" ->
      let* count = int "count" in
      let* sum = flt "sum" in
      let* min = flt "min" in
      let* max = flt "max" in
      let* p50 = flt "p50" in
      let* p90 = flt "p90" in
      let* p99 = flt "p99" in
      let* p999 = flt "p999" in
      Some (Histogram { count; sum; min; max; p50; p90; p99; p999 })
    | _ -> None
  in
  Some { name; labels; value }

let of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest ->
        (match item_of_json j with
         | Some item -> go (item :: acc) rest
         | None -> Error "malformed snapshot item")
    in
    go [] items
  | Ok _ -> Error "snapshot must be a JSON array"

(* ----- CSV ----- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "name,labels,kind,field,value\n";
  let row name labels kind field value =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%s\n" (csv_escape name) (csv_escape labels) kind field value)
  in
  List.iter
    (fun item ->
      let labels =
        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) item.labels)
      in
      match item.value with
      | Counter c -> row item.name labels "counter" "value" (string_of_int c)
      | Gauge g -> row item.name labels "gauge" "value" (Printf.sprintf "%.17g" g)
      | Histogram s ->
        row item.name labels "histogram" "count" (string_of_int s.count);
        List.iter
          (fun (field, v) -> row item.name labels "histogram" field (Printf.sprintf "%.17g" v))
          [ ("sum", s.sum); ("min", s.min); ("max", s.max); ("p50", s.p50); ("p90", s.p90);
            ("p99", s.p99); ("p999", s.p999) ])
    t;
  Buffer.contents buf
