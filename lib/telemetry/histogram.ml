type spec = {
  lo : float;
  decades : int;
  buckets_per_decade : int;
}

type t = {
  sp : spec;
  log_lo : float;
  (* buckets per natural-log unit: index = floor ((ln v - ln lo) * scale) *)
  scale : float;
  hi : float;  (** upper bound of the last regular bucket *)
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_spec = { lo = 1e-9; decades = 13; buckets_per_decade = 40 }

let create ?(spec = default_spec) () =
  if spec.lo <= 0. then invalid_arg "Histogram.create: lo must be positive";
  if spec.decades <= 0 || spec.buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: empty bucket range";
  {
    sp = spec;
    log_lo = Float.log spec.lo;
    scale = float_of_int spec.buckets_per_decade /. Float.log 10.;
    hi = spec.lo *. (10. ** float_of_int spec.decades);
    counts = Array.make (spec.decades * spec.buckets_per_decade) 0;
    underflow = 0;
    overflow = 0;
    count = 0;
    sum = 0.;
    min_v = 0.;
    max_v = 0.;
  }

let spec t = t.sp

let observe t v =
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if not (Float.is_finite v) || v >= t.hi then t.overflow <- t.overflow + 1
  else if v < t.sp.lo then t.underflow <- t.underflow + 1
  else begin
    let idx = int_of_float ((Float.log v -. t.log_lo) *. t.scale) in
    let idx = if idx < 0 then 0 else if idx >= Array.length t.counts then Array.length t.counts - 1 else idx in
    t.counts.(idx) <- t.counts.(idx) + 1
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.min_v
let max_value t = if t.count = 0 then 0. else t.max_v

(* representative value of bucket [i]: its log-space midpoint *)
let bucket_mid t i = Float.exp (t.log_lo +. ((float_of_int i +. 0.5) /. t.scale))

let quantile t q =
  if t.count = 0 then 0.
  else if q <= 0. then t.min_v
  else if q >= 1. then t.max_v
  else begin
    let clamp v = Float.min t.max_v (Float.max t.min_v v) in
    let target = q *. float_of_int t.count in
    let cum = ref (float_of_int t.underflow) in
    if !cum >= target then clamp t.sp.lo
    else begin
      let result = ref t.max_v in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = t.counts.(i) in
           if c > 0 then begin
             cum := !cum +. float_of_int c;
             if !cum >= target then begin
               result := clamp (bucket_mid t i);
               raise Exit
             end
           end
         done
       with Exit -> ());
      !result
    end
  end

let median t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge_into ~into src =
  if into.sp <> src.sp then invalid_arg "Histogram.merge: incompatible bucket specs";
  if src.count > 0 then begin
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    into.underflow <- into.underflow + src.underflow;
    into.overflow <- into.overflow + src.overflow;
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts
  end

let copy t =
  let fresh = create ~spec:t.sp () in
  merge_into ~into:fresh t;
  fresh

let merge a b =
  let fresh = copy a in
  merge_into ~into:fresh b;
  fresh

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- 0.;
  t.max_v <- 0.

let memory_words t = Obj.reachable_words (Obj.repr t)
