type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit ~indent ~level buf v =
  let nl lv =
    match indent with
    | None -> ()
    | Some pad ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (lv * pad) ' ')
  in
  let seq open_c close_c items emit_item =
    Buffer.add_char buf open_c;
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit_item item)
      items;
    if items <> [] then nl level;
    Buffer.add_char buf close_c
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = infinity || f = neg_infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items -> seq '[' ']' items (fun item -> emit ~indent ~level:(level + 1) buf item)
  | Obj fields ->
    seq '{' '}' fields (fun (k, item) ->
        escape buf k;
        Buffer.add_char buf ':';
        (match indent with None -> () | Some _ -> Buffer.add_char buf ' ');
        emit ~indent ~level:(level + 1) buf item)

let render indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render None v
let to_string_pretty v = render (Some 2) v

(* ----- parsing ----- *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at offset %d, got %c" c !pos c'
    | None -> fail "expected %c at offset %d, got end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* snapshots only escape control characters, so BMP-ASCII is
              all we ever need to decode *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else fail "non-ASCII \\u escape unsupported"
         | c -> fail "bad escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] at offset %d" !pos
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected , or } at offset %d" !pos
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let equal (a : t) (b : t) = a = b
