(** A constant-memory streaming histogram with logarithmic buckets.

    Built for per-packet latencies and occupancies at "millions of
    users" scale: recording a value is O(1), the footprint is a fixed
    [int array] regardless of how many values are observed, and
    quantiles (median, p99, p999, ...) are estimated by walking the
    bucket counts. Bucket boundaries grow geometrically, so the relative
    error of a quantile estimate is bounded by half a bucket width —
    under 3% at the default resolution of 40 buckets per decade — which
    is the discipline Charon and Concury apply to datapath telemetry.

    Two histograms with the same bucketing {!spec} can be {!merge}d
    (commutatively and associatively), which is how a switch group
    aggregates its members. *)

type t

type spec = {
  lo : float;  (** lower bound of the first regular bucket, > 0 *)
  decades : int;  (** how many powers of ten the regular buckets span *)
  buckets_per_decade : int;
}

val default_spec : spec
(** [1e-9] to [1e4] (covers nanoseconds to hours when values are
    seconds) at 40 buckets per decade: 520 buckets, ~5.9% bucket width. *)

val create : ?spec:spec -> unit -> t

val spec : t -> spec

val observe : t -> float -> unit
(** Record one value. Values below [spec.lo] (including zero and
    negatives) land in an underflow bucket, values beyond the last
    boundary in an overflow bucket; both still count toward [count],
    [sum], [min] and [max], so totals are exact even when the range is
    misjudged. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Smallest observed value; 0 when empty. *)

val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: the estimated value below which a
    [q] fraction of observations fall, clamped to the observed
    [min]/[max]. 0 when empty. *)

val median : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val merge_into : into:t -> t -> unit
(** Add the right histogram's contents into [into]. Raises
    [Invalid_argument] when the specs differ. *)

val merge : t -> t -> t
(** Fresh histogram holding the union. *)

val copy : t -> t
val reset : t -> unit

val memory_words : t -> int
(** Heap words reachable from the histogram — a test hook proving the
    footprint does not grow with [count]. *)
