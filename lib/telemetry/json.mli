(** A minimal JSON abstract syntax, printer and parser.

    Just enough for the telemetry snapshots the registry exports and the
    tools that read them back — no external dependency, no streaming.
    Floats are printed with 17 significant digits so that
    [parse (to_string v)] round-trips every finite value exactly;
    non-finite floats are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without [.], [e] or [E] become [Int], all others [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val equal : t -> t -> bool
