type labels = (string * string) list

module Counter = struct
  type t = int ref

  let incr c = Stdlib.incr c
  let add c n = c := !c + n
  let value c = !c
end

module Gauge = struct
  type t = float ref

  let set g v = g := v
  let add g v = g := !g +. v
  let value g = !g
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type entry = {
  name : string;
  labels : labels;
  metric : metric;
}

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let sort_labels labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  match labels with
  | [] -> name
  | ls -> name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register t name labels fresh =
  let labels = sort_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.entries k with
  | Some e -> e.metric
  | None ->
    let metric = fresh () in
    Hashtbl.replace t.entries k { name; labels; metric };
    metric

let mismatch name ~wanted got =
  invalid_arg
    (Printf.sprintf "Telemetry.Registry: %s already registered as a %s, not a %s" name
       (kind_name got) wanted)

let counter t ?(labels = []) name =
  match register t name labels (fun () -> M_counter (ref 0)) with
  | M_counter c -> c
  | m -> mismatch name ~wanted:"counter" m

let gauge t ?(labels = []) name =
  match register t name labels (fun () -> M_gauge (ref 0.)) with
  | M_gauge g -> g
  | m -> mismatch name ~wanted:"gauge" m

let histogram t ?(labels = []) ?spec name =
  match register t name labels (fun () -> M_histogram (Histogram.create ?spec ())) with
  | M_histogram h -> h
  | m -> mismatch name ~wanted:"histogram" m

let find t name labels = Hashtbl.find_opt t.entries (key name (sort_labels labels))

let counter_value t ?(labels = []) name =
  match find t name labels with Some { metric = M_counter c; _ } -> !c | _ -> 0

let gauge_value t ?(labels = []) name =
  match find t name labels with Some { metric = M_gauge g; _ } -> !g | _ -> 0.

let find_histogram t ?(labels = []) name =
  match find t name labels with Some { metric = M_histogram h; _ } -> Some h | _ -> None

let snapshot t =
  Hashtbl.fold
    (fun _ e acc ->
      let value =
        match e.metric with
        | M_counter c -> Snapshot.Counter !c
        | M_gauge g -> Snapshot.Gauge !g
        | M_histogram h -> Snapshot.Histogram (Snapshot.summarize h)
      in
      { Snapshot.name = e.name; labels = e.labels; value } :: acc)
    t.entries []
  |> List.sort (fun (a : Snapshot.item) b ->
         match String.compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let merge_into ~into src =
  Hashtbl.iter
    (fun _ e ->
      match e.metric with
      | M_counter c -> Counter.add (counter into ~labels:e.labels e.name) !c
      | M_gauge g -> Gauge.add (gauge into ~labels:e.labels e.name) !g
      | M_histogram h ->
        Histogram.merge_into
          ~into:(histogram into ~labels:e.labels ~spec:(Histogram.spec h) e.name)
          h)
    src.entries

let merge_all regs =
  let into = create () in
  List.iter (fun r -> merge_into ~into r) regs;
  into

let to_json t = Snapshot.to_json (snapshot t)
let to_csv t = Snapshot.to_csv (snapshot t)
