(** The metrics registry: named counters, gauges and streaming
    histograms, optionally scoped by labels (per-VIP, per-balancer,
    per-switch), with JSON/CSV snapshot export.

    Every subsystem of the reproduction — the switch and its ASIC
    primitives, the baselines, the harness driver — reports through one
    of these instead of ad-hoc mutable fields, so any run can emit one
    comparable machine-readable snapshot.

    Handles ([Counter.t], [Gauge.t]) are plain references: hold on to
    them on hot paths, the name lookup happens once at registration.
    Registering the same (name, labels) twice returns the same metric;
    registering it as a different kind raises [Invalid_argument]. *)

type t

type labels = (string * string) list

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

val create : unit -> t

val counter : t -> ?labels:labels -> string -> Counter.t
val gauge : t -> ?labels:labels -> string -> Gauge.t

val histogram : t -> ?labels:labels -> ?spec:Histogram.spec -> string -> Histogram.t
(** [?spec] only applies on first registration. *)

val counter_value : t -> ?labels:labels -> string -> int
(** 0 when absent. *)

val gauge_value : t -> ?labels:labels -> string -> float
(** 0 when absent. *)

val find_histogram : t -> ?labels:labels -> string -> Histogram.t option

val snapshot : t -> Snapshot.t
(** Deterministic order: sorted by metric name, then labels. *)

val merge_into : into:t -> t -> unit
(** Fold the right registry into [into]: counters and gauges add,
    histograms merge — the aggregation a {!Snapshot} of a whole switch
    group wants. Gauges are summed, which reads naturally for
    occupancies and sizes. Raises [Invalid_argument] on a kind or
    histogram-spec mismatch. *)

val merge_all : t list -> t
(** A fresh registry holding the {!merge_into}-fold of the list — how
    sharded replay aggregates its per-shard switch registries into one
    snapshot. *)

val to_json : t -> string
val to_csv : t -> string
