type t = {
  table : Netcore.Endpoint.t array;
  backends : Netcore.Endpoint.t list;
}

let is_prime n =
  if n < 2 then false
  else
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2

let create ?metrics ?(table_size = 65537) backends =
  if backends = [] then invalid_arg "Maglev_hash.create: no backends";
  if not (is_prime table_size) then invalid_arg "Maglev_hash.create: table size must be prime";
  if List.length backends >= table_size then
    invalid_arg "Maglev_hash.create: table smaller than backend set";
  let n = List.length backends in
  let backends_arr = Array.of_list backends in
  let m = table_size in
  (* Per-backend permutation parameters from two independent hashes of
     the backend identity. *)
  let offsets = Array.make n 0 and skips = Array.make n 0 in
  Array.iteri
    (fun i b ->
      let h1 = Netcore.Endpoint.hash_fold 0x0ff5e7L b in
      let h2 = Netcore.Endpoint.hash_fold 0x5419L b in
      offsets.(i) <- Netcore.Hashing.to_range h1 m;
      skips.(i) <- Netcore.Hashing.to_range h2 (m - 1) + 1)
    backends_arr;
  let next = Array.make n 0 in
  let table = Array.make m (-1) in
  let filled = ref 0 in
  let probes = ref 0 in
  (* Round-robin: each backend claims its next preferred empty slot. *)
  while !filled < m do
    for i = 0 to n - 1 do
      if !filled < m then begin
        let rec claim () =
          incr probes;
          let c = (offsets.(i) + (next.(i) * skips.(i))) mod m in
          next.(i) <- next.(i) + 1;
          if table.(c) < 0 then begin
            table.(c) <- i;
            incr filled
          end
          else claim ()
        in
        claim ()
      end
    done
  done;
  (match metrics with
   | None -> ()
   | Some reg ->
     Telemetry.Registry.Gauge.set
       (Telemetry.Registry.gauge reg "maglev.table_size")
       (float_of_int m);
     Telemetry.Registry.Gauge.set
       (Telemetry.Registry.gauge reg "maglev.backends")
       (float_of_int n);
     (* permutation probes the build needed — the paper's O(M log M)
        expectation, so a useful regression canary *)
     Telemetry.Registry.Counter.add
       (Telemetry.Registry.counter reg "maglev.build_probes")
       !probes);
  { table = Array.map (fun i -> backends_arr.(i)) table; backends }

let lookup t h = t.table.(Netcore.Hashing.to_range h (Array.length t.table))

let table_size t = Array.length t.table
let backends t = t.backends

let entries_of t b =
  Array.fold_left (fun acc x -> if Netcore.Endpoint.equal x b then acc + 1 else acc) 0 t.table

let disruption a b =
  if Array.length a.table <> Array.length b.table then
    invalid_arg "Maglev_hash.disruption: different table sizes";
  let moved = ref 0 in
  Array.iteri
    (fun i x -> if not (Netcore.Endpoint.equal x b.table.(i)) then incr moved)
    a.table;
  float_of_int !moved /. float_of_int (Array.length a.table)
