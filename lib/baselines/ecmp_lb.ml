type state = {
  seed : int;
  vips : (Netcore.Endpoint.t, Lb.Dip_pool.t) Hashtbl.t;
  metrics : Telemetry.Registry.t;
  c_packets : Telemetry.Registry.Counter.t;
  c_dropped : Telemetry.Registry.Counter.t;
}

let drop state =
  Telemetry.Registry.Counter.incr state.c_dropped;
  { Lb.Balancer.dip = None; location = Lb.Balancer.Asic }

let process state ~now:_ (pkt : Netcore.Packet.t) =
  let vip = pkt.Netcore.Packet.flow.Netcore.Five_tuple.dst in
  match Hashtbl.find_opt state.vips vip with
  | None -> drop state
  | Some pool ->
    if Lb.Dip_pool.is_empty pool then drop state
    else begin
      let dip = Lb.Dip_pool.select_flow ~seed:state.seed pool pkt.Netcore.Packet.flow in
      Telemetry.Registry.Counter.incr state.c_packets;
      { Lb.Balancer.dip = Some dip; location = Lb.Balancer.Asic }
    end

let update state ~now:_ ~vip u =
  let pool =
    match Hashtbl.find_opt state.vips vip with
    | Some pool -> pool
    | None -> Lb.Dip_pool.of_list []
  in
  Hashtbl.replace state.vips vip (Lb.Balancer.apply_update pool u)

let create_with ?metrics ~seed vips =
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let state =
    {
      seed;
      vips = Hashtbl.create 16;
      metrics = reg;
      c_packets = Telemetry.Registry.counter reg "lb.packets";
      c_dropped = Telemetry.Registry.counter reg "lb.dropped_packets";
    }
  in
  List.iter (fun (vip, pool) -> Hashtbl.replace state.vips vip pool) vips;
  {
    Lb.Balancer.name = "ecmp";
    advance = (fun ~now:_ -> ());
    process = process state;
    update = update state;
    connections = (fun () -> 0);
    metrics = (fun () -> state.metrics);
    (* stateless: no slow path to stall *)
    disturb = (fun ~now:_ _ -> ());
  }

let create ?metrics ~seed () = create_with ?metrics ~seed []
