(** A software load balancer (Ananta / Maglev style, §2.2).

    Both ConnTable and VIPTable live in server software. Updates are
    atomic with respect to connection insertion (the SLB "locks VIPTable
    and holds new incoming connections in a buffer"), so an SLB never
    violates PCC — its drawbacks are throughput, latency and cost, which
    {!Silkroad.Cost_model} quantifies from the constants the paper cites
    (12 Mpps on 8 cores; 50 µs – 1 ms added latency).

    The balancer tracks packets and bytes processed so experiments can
    report SLB load. *)

type stats = {
  packets : int;
  bytes : int;
  connections_created : int;
  overload_drops : int;  (** packets shed because capacity_pps was exceeded *)
}

val create :
  seed:int ->
  ?metrics:Telemetry.Registry.t ->
  ?capacity_pps:float ->
  ?vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  unit ->
  Lb.Balancer.t * (unit -> stats)
(** Returns the balancer and a function reading its traffic counters.
    [capacity_pps] bounds the packets the SLB can process per second
    (default unbounded); excess packets are dropped — the x86 box has no
    per-VIP isolation, so an overloaded VIP's traffic starves every VIP
    on the instance (§2.2). *)

val added_latency : float
(** Representative per-packet latency the SLB adds, in seconds (50 µs,
    the optimistic end of the paper's 50 µs – 1 ms range). *)
