(** The stateless strawman: ECMP hashing over the DIP pool with no
    connection state anywhere (§2.3's "leverage ECMP hashing ... but do
    not maintain the connection state").

    Fast and tiny, but any DIP-pool change rehashes ongoing connections:
    PCC is violated for roughly [(n-1)/n] of the flows whose hash moves.
    Used as the lower bound in the PCC experiments. *)

val create : ?metrics:Telemetry.Registry.t -> seed:int -> unit -> Lb.Balancer.t
(** An empty balancer; VIPs are created implicitly by the first update
    ([Dip_add]) targeting them. *)

val create_with :
  ?metrics:Telemetry.Registry.t ->
  seed:int ->
  (Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  Lb.Balancer.t
(** A balancer with pre-populated VIPs. *)
