(** Duet (Gandhi et al., SIGCOMM'14 — reference [22]): VIPTable in the
    switching ASIC, ConnTable only in software load balancers.

    Steady state, a VIP's packets are ECMP-hashed to DIPs entirely in
    the switch — fast, but stateless. To change a DIP pool with any hope
    of PCC, Duet must:

    + redirect the VIP's traffic to SLBs, which snoop packets to build
      up a ConnTable;
    + wait a grace period so every ongoing connection has shown the SLB
      at least one packet (footnote 2 of the paper);
    + execute the pool update at the SLB;
    + eventually migrate the VIP back to the switch.

    The migration-back policy is the crux (§3.2): too early breaks old
    connections (the switch hashes them against the new pool); too late
    leaves most traffic on the slow SLB path. We implement the paper's
    three policies. Violations and SLB load emerge from simulation —
    Figures 5a/5b/16/17 are produced by driving this balancer. *)

type migrate_policy =
  | Migrate_every of float
      (** migrate VIPs back every [p] seconds (Duet's default is 600) *)
  | Migrate_pcc
      (** wait until every connection predating the last update has
          terminated — never violates PCC, maximal SLB load *)

type stats = {
  slb_packets : int;
  slb_bytes : int;
  switch_packets : int;
  switch_bytes : int;
  migrations : int;
}

val create :
  seed:int ->
  ?metrics:Telemetry.Registry.t ->
  ?grace:float ->
  ?switch_vip_budget:int ->
  policy:migrate_policy ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  unit ->
  Lb.Balancer.t * (unit -> stats)
(** [grace] is the redirect-to-execute wait (default 30 s): an update
    executes at the SLB only once every ongoing connection has had a
    chance to be snooped into the SLB ConnTable, so it must exceed the
    workload's maximum inter-packet gap (the harness probes every 15 s).
    [switch_vip_budget] caps how many VIPs fit the switch's ECMP table
    (§2.3: "Due to the limited ECMP table size, Duet only uses switches
    to handle VIPs with high-volume traffic"); VIPs past the budget are
    served by SLBs permanently. *)
