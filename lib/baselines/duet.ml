type migrate_policy =
  | Migrate_every of float
  | Migrate_pcc

type stats = {
  slb_packets : int;
  slb_bytes : int;
  switch_packets : int;
  switch_bytes : int;
  migrations : int;
}

type vip_state = {
  mutable pinned_to_slb : bool;
      (** VIP permanently handled by SLBs: the switch ECMP table had no
          room for it (§2.3) *)
  mutable switch_pool : Lb.Dip_pool.t;  (** what the ASIC ECMP currently hashes over *)
  mutable slb_pool : Lb.Dip_pool.t;  (** the SLB's (up-to-date) VIPTable *)
  mutable at_slb : bool;
  mutable redirect_since : float;
  mutable last_update : float;  (** execution time of the most recent update *)
  (* updates requested but not yet executed (waiting out the grace
     period), as (execute_time, update), FIFO *)
  mutable pending : (float * Lb.Balancer.update) list;
  conns : (Netcore.Five_tuple.t, Netcore.Endpoint.t) Hashtbl.t;  (** SLB ConnTable *)
  (* connections whose recorded DIP differs from what the current pool
     would hash them to — exactly the ones a migration would break;
     rebuilt on each pool change, maintained incrementally otherwise *)
  old_conns : (Netcore.Five_tuple.t, unit) Hashtbl.t;
}

type state = {
  seed : int;
  grace : float;
  policy : migrate_policy;
  vips : (Netcore.Endpoint.t, vip_state) Hashtbl.t;
  metrics : Telemetry.Registry.t;
  c_slb_packets : Telemetry.Registry.Counter.t;
  c_slb_bytes : Telemetry.Registry.Counter.t;
  c_switch_packets : Telemetry.Registry.Counter.t;
  c_switch_bytes : Telemetry.Registry.Counter.t;
  c_migrations : Telemetry.Registry.Counter.t;
  c_lb_packets : Telemetry.Registry.Counter.t;
  c_lb_dropped : Telemetry.Registry.Counter.t;
}

let get_vip state vip =
  match Hashtbl.find_opt state.vips vip with
  | Some vs -> vs
  | None ->
    let vs =
      {
        pinned_to_slb = false;
        switch_pool = Lb.Dip_pool.of_list [];
        slb_pool = Lb.Dip_pool.of_list [];
        at_slb = false;
        redirect_since = 0.;
        last_update = neg_infinity;
        pending = [];
        conns = Hashtbl.create 64;
        old_conns = Hashtbl.create 64;
      }
    in
    Hashtbl.replace state.vips vip vs;
    vs

(* Rebuild the old-connection set after a pool change. *)
let rebuild_old_conns state vs =
  Hashtbl.reset vs.old_conns;
  if Lb.Dip_pool.is_empty vs.slb_pool then
    Hashtbl.iter (fun flow _ -> Hashtbl.replace vs.old_conns flow ()) vs.conns
  else
    Hashtbl.iter
      (fun flow dip ->
        let now_dip = Lb.Dip_pool.select_flow ~seed:state.seed vs.slb_pool flow in
        if not (Netcore.Endpoint.equal now_dip dip) then Hashtbl.replace vs.old_conns flow ())
      vs.conns

let migrate_back state vs =
  vs.at_slb <- false;
  vs.switch_pool <- vs.slb_pool;
  Hashtbl.reset vs.conns;
  Hashtbl.reset vs.old_conns;
  Telemetry.Registry.Counter.incr state.c_migrations

let advance_vip state ~now vs =
  (* Execute pending updates whose grace period has elapsed. *)
  let rec exec () =
    match vs.pending with
    | (at, u) :: rest when at <= now ->
      vs.slb_pool <- Lb.Balancer.apply_update vs.slb_pool u;
      vs.last_update <- at;
      vs.pending <- rest;
      rebuild_old_conns state vs;
      exec ()
    | _ :: _ | [] -> ()
  in
  exec ();
  if vs.at_slb && (not vs.pinned_to_slb) && vs.pending = [] then begin
    match state.policy with
    | Migrate_every period ->
      (* migration events fire on global period boundaries *)
      let next_boundary = (Float.floor (vs.redirect_since /. period) +. 1.) *. period in
      if now >= next_boundary && now >= vs.last_update then migrate_back state vs
    | Migrate_pcc ->
      (* safe only once every ongoing connection has been snooped (the
         grace covers the max inter-packet gap) and none is old *)
      if now >= vs.redirect_since +. state.grace && Hashtbl.length vs.old_conns = 0 then
        migrate_back state vs
  end

let advance state ~now = Hashtbl.iter (fun _ vs -> advance_vip state ~now vs) state.vips

let account_outcome state (o : Lb.Balancer.outcome) =
  (match o.Lb.Balancer.dip with
   | Some _ -> Telemetry.Registry.Counter.incr state.c_lb_packets
   | None -> Telemetry.Registry.Counter.incr state.c_lb_dropped);
  o

let process state ~now (pkt : Netcore.Packet.t) =
  let flow = pkt.Netcore.Packet.flow in
  let vip = flow.Netcore.Five_tuple.dst in
  match Hashtbl.find_opt state.vips vip with
  | None -> account_outcome state { Lb.Balancer.dip = None; location = Lb.Balancer.Asic }
  | Some vs ->
    advance_vip state ~now vs;
    if vs.at_slb || vs.pinned_to_slb then begin
      Telemetry.Registry.Counter.incr state.c_slb_packets;
      Telemetry.Registry.Counter.add state.c_slb_bytes (Netcore.Packet.wire_size pkt);
      let finish dip =
        account_outcome state { Lb.Balancer.dip; location = Lb.Balancer.Slb }
      in
      match Hashtbl.find_opt vs.conns flow with
      | Some dip ->
        if Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags then begin
          Hashtbl.remove vs.conns flow;
          Hashtbl.remove vs.old_conns flow
        end;
        finish (Some dip)
      | None ->
        if Lb.Dip_pool.is_empty vs.slb_pool then finish None
        else begin
          let dip = Lb.Dip_pool.select_flow ~seed:state.seed vs.slb_pool flow in
          if not (Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags) then
            Hashtbl.replace vs.conns flow dip;
          finish (Some dip)
        end
    end
    else begin
      Telemetry.Registry.Counter.incr state.c_switch_packets;
      Telemetry.Registry.Counter.add state.c_switch_bytes (Netcore.Packet.wire_size pkt);
      if Lb.Dip_pool.is_empty vs.switch_pool then
        account_outcome state { Lb.Balancer.dip = None; location = Lb.Balancer.Asic }
      else
        let dip = Lb.Dip_pool.select_flow ~seed:state.seed vs.switch_pool flow in
        account_outcome state { Lb.Balancer.dip = Some dip; location = Lb.Balancer.Asic }
    end

let update state ~now ~vip u =
  let vs = get_vip state vip in
  if vs.pinned_to_slb then
    (* SLB-homed VIP: atomic software update, no redirect dance *)
    vs.slb_pool <- Lb.Balancer.apply_update vs.slb_pool u
  else begin
  if not vs.at_slb then begin
    (* Redirect the VIP's traffic to the SLBs; the update executes after
       the grace period, by which time ongoing connections have been
       snooped into the SLB ConnTable. *)
    vs.at_slb <- true;
    vs.redirect_since <- now;
    Hashtbl.reset vs.conns
  end;
  let exec_at = Float.max (now +. 1e-6) (vs.redirect_since +. state.grace) in
  (* keep FIFO order even if several updates land in the same grace *)
  let exec_at =
    match List.rev vs.pending with
    | (last, _) :: _ when last > exec_at -> last
    | _ -> exec_at
  in
  vs.pending <- vs.pending @ [ (exec_at, u) ]
  end

let create ~seed ?metrics ?(grace = 30.) ?switch_vip_budget ~policy ~vips () =
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let state =
    {
      seed;
      grace;
      policy;
      vips = Hashtbl.create 16;
      metrics = reg;
      c_slb_packets = Telemetry.Registry.counter reg "duet.slb_packets";
      c_slb_bytes = Telemetry.Registry.counter reg "duet.slb_bytes";
      c_switch_packets = Telemetry.Registry.counter reg "duet.switch_packets";
      c_switch_bytes = Telemetry.Registry.counter reg "duet.switch_bytes";
      c_migrations = Telemetry.Registry.counter reg "duet.migrations";
      c_lb_packets = Telemetry.Registry.counter reg "lb.packets";
      c_lb_dropped = Telemetry.Registry.counter reg "lb.dropped_packets";
    }
  in
  List.iteri
    (fun i (vip, pool) ->
      let vs = get_vip state vip in
      vs.switch_pool <- pool;
      vs.slb_pool <- pool;
      (* §2.3: the switch ECMP table only fits so many VIPs; the rest
         live on SLBs permanently *)
      (match switch_vip_budget with
       | Some budget when i >= budget -> vs.pinned_to_slb <- true
       | Some _ | None -> ()))
    vips;
  let balancer =
    {
      Lb.Balancer.name =
        (match policy with
         | Migrate_every p -> Printf.sprintf "duet-migrate-%.0fs" p
         | Migrate_pcc -> "duet-migrate-pcc");
      advance = (fun ~now -> advance state ~now);
      process = (fun ~now pkt -> process state ~now pkt);
      update = (fun ~now ~vip u -> update state ~now ~vip u);
      connections =
        (fun () -> Hashtbl.fold (fun _ vs acc -> acc + Hashtbl.length vs.conns) state.vips 0);
      metrics = (fun () -> state.metrics);
      (* Duet's switch path is stateless ECMP and its SLBs are modeled
         without a capacity bound here: nothing to stall *)
      disturb = (fun ~now:_ _ -> ());
    }
  in
  let stats () =
    let v = Telemetry.Registry.Counter.value in
    {
      slb_packets = v state.c_slb_packets;
      slb_bytes = v state.c_slb_bytes;
      switch_packets = v state.c_switch_packets;
      switch_bytes = v state.c_switch_bytes;
      migrations = v state.c_migrations;
    }
  in
  (balancer, stats)
