type stats = {
  packets : int;
  bytes : int;
  connections_created : int;
  overload_drops : int;
}

type state = {
  seed : int;
  capacity_pps : float;
  vips : (Netcore.Endpoint.t, Lb.Dip_pool.t) Hashtbl.t;
  conns : (Netcore.Five_tuple.t, Netcore.Endpoint.t) Hashtbl.t;
  metrics : Telemetry.Registry.t;
  c_packets : Telemetry.Registry.Counter.t;  (** packets processed (fast + drops-to-None) *)
  c_bytes : Telemetry.Registry.Counter.t;
  c_conns_created : Telemetry.Registry.Counter.t;
  c_overload_drops : Telemetry.Registry.Counter.t;
  c_lb_packets : Telemetry.Registry.Counter.t;
  c_lb_dropped : Telemetry.Registry.Counter.t;
  g_conns : Telemetry.Registry.Gauge.t;
  (* token bucket over processing capacity: one token per packet *)
  mutable tokens : float;
  mutable last_refill : float;
}

let added_latency = 50e-6

let over_capacity state ~now =
  if state.capacity_pps = infinity then false
  else begin
    let dt = Float.max 0. (now -. state.last_refill) in
    state.last_refill <- now;
    (* allow up to 10 ms of burst *)
    state.tokens <-
      Float.min (state.capacity_pps /. 100.) (state.tokens +. (dt *. state.capacity_pps));
    if state.tokens >= 1. then begin
      state.tokens <- state.tokens -. 1.;
      false
    end
    else true
  end

let process state ~now (pkt : Netcore.Packet.t) =
  if over_capacity state ~now then begin
    Telemetry.Registry.Counter.incr state.c_overload_drops;
    Telemetry.Registry.Counter.incr state.c_lb_dropped;
    { Lb.Balancer.dip = None; location = Lb.Balancer.Slb }
  end
  else begin
  Telemetry.Registry.Counter.incr state.c_packets;
  Telemetry.Registry.Counter.add state.c_bytes (Netcore.Packet.wire_size pkt);
  let flow = pkt.Netcore.Packet.flow in
  let finish dip =
    (match dip with
     | Some _ -> Telemetry.Registry.Counter.incr state.c_lb_packets
     | None -> Telemetry.Registry.Counter.incr state.c_lb_dropped);
    Telemetry.Registry.Gauge.set state.g_conns (float_of_int (Hashtbl.length state.conns));
    { Lb.Balancer.dip; location = Lb.Balancer.Slb }
  in
  match Hashtbl.find_opt state.conns flow with
  | Some dip ->
    if Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags then
      Hashtbl.remove state.conns flow;
    finish (Some dip)
  | None ->
    (match Hashtbl.find_opt state.vips flow.Netcore.Five_tuple.dst with
     | None -> finish None
     | Some pool ->
       if Lb.Dip_pool.is_empty pool then finish None
       else begin
         let dip = Lb.Dip_pool.select_flow ~seed:state.seed pool flow in
         (* Software insertion is atomic with VIPTable updates, so the
            entry is visible to the very next packet. *)
         if not (Netcore.Tcp_flags.is_connection_end pkt.Netcore.Packet.flags) then begin
           Hashtbl.replace state.conns flow dip;
           Telemetry.Registry.Counter.incr state.c_conns_created
         end;
         finish (Some dip)
       end)
  end

let update state ~now:_ ~vip u =
  let pool =
    match Hashtbl.find_opt state.vips vip with
    | Some pool -> pool
    | None -> Lb.Dip_pool.of_list []
  in
  Hashtbl.replace state.vips vip (Lb.Balancer.apply_update pool u)

let create ~seed ?metrics ?(capacity_pps = infinity) ?(vips = []) () =
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  let state =
    {
      seed;
      capacity_pps;
      vips = Hashtbl.create 16;
      conns = Hashtbl.create 4096;
      metrics = reg;
      c_packets = Telemetry.Registry.counter reg "slb.packets";
      c_bytes = Telemetry.Registry.counter reg "slb.bytes";
      c_conns_created = Telemetry.Registry.counter reg "slb.connections_created";
      c_overload_drops = Telemetry.Registry.counter reg "slb.overload_drops";
      c_lb_packets = Telemetry.Registry.counter reg "lb.packets";
      c_lb_dropped = Telemetry.Registry.counter reg "lb.dropped_packets";
      g_conns = Telemetry.Registry.gauge reg "slb.connections";
      tokens = (if capacity_pps = infinity then 0. else capacity_pps /. 100.);
      last_refill = 0.;
    }
  in
  List.iter (fun (vip, pool) -> Hashtbl.replace state.vips vip pool) vips;
  let balancer =
    {
      Lb.Balancer.name = "slb";
      advance = (fun ~now:_ -> ());
      process = process state;
      update = update state;
      connections = (fun () -> Hashtbl.length state.conns);
      metrics = (fun () -> state.metrics);
      disturb =
        (fun ~now:_ d ->
          match d with
          | Lb.Balancer.Cpu_backlog n ->
            (* the x86 packet path and control work share the cores: a
               stall steals that many packets' worth of tokens, which
               surfaces as overload drops when capacity is finite *)
            if state.capacity_pps < infinity then
              state.tokens <- state.tokens -. float_of_int n
          | Lb.Balancer.Reroute r ->
            (* an SLB instance died or the flows were re-steered: the
               per-connection table the survivors hold never saw these
               flows, so their state is simply gone *)
            let doomed =
              Hashtbl.fold
                (fun flow _dip acc ->
                  if Lb.Balancer.reroute_selects r flow then flow :: acc else acc)
                state.conns []
            in
            List.iter (Hashtbl.remove state.conns) doomed);
    }
  in
  let stats () =
    let v = Telemetry.Registry.Counter.value in
    {
      packets = v state.c_packets;
      bytes = v state.c_bytes;
      connections_created = v state.c_conns_created;
      overload_drops = v state.c_overload_drops;
    }
  in
  (balancer, stats)
