(** Maglev consistent hashing (Eisenbud et al., NSDI'16 — reference [20]
    of the paper).

    Builds a fixed-size lookup table from per-backend permutations so
    that (a) load spreads near-uniformly and (b) a membership change
    remaps only a small fraction of the table. Provided as an ablation
    alternative to plain ECMP selection for VIPTable: with consistent
    hashing, a DIP change breaks far fewer connections even without any
    connection state. *)

type t

val create :
  ?metrics:Telemetry.Registry.t -> ?table_size:int -> Netcore.Endpoint.t list -> t
(** [table_size] must be a prime larger than the number of backends
    (default 65537). Raises [Invalid_argument] on an empty backend list
    or a non-prime size. *)

val lookup : t -> int64 -> Netcore.Endpoint.t
(** Select a backend from a packet hash. *)

val table_size : t -> int
val backends : t -> Netcore.Endpoint.t list

val entries_of : t -> Netcore.Endpoint.t -> int
(** Number of table slots owned by the backend (for load-spread tests). *)

val disruption : t -> t -> float
(** Fraction of table slots whose owner differs between two tables —
    the fraction of stateless flows a membership change would remap. *)
