(* Rendezvous (highest-random-weight) hashing per layer: every (flow,
   node) pair gets an independent score, the live node with the highest
   score wins. Removing a node only re-homes the flows it was winning —
   the property the qcheck suite pins ("an Agg failure changes only
   flows that transited the dead switch"). *)

let score t (n : Topology.node) h =
  Netcore.Hashing.seeded ~seed:(t.Topology.seed + (n.Topology.node_id * 0x9e3779b1)) h

let pick t ~layer flow =
  let h = Netcore.Five_tuple.hash ~seed:t.Topology.seed flow in
  let nodes = t.Topology.layer_nodes.(layer) in
  let best = ref None in
  Array.iter
    (fun (n : Topology.node) ->
      if n.Topology.up then begin
        let s = score t n h in
        match !best with
        | Some (bs, _) when Int64.unsigned_compare bs s >= 0 -> ()
        | _ -> best := Some (s, n)
      end)
    nodes;
  Option.map snd !best

let path t ~vip flow =
  let dest = Topology.layer_of_vip t vip in
  let rec go layer acc =
    if layer > dest then List.rev acc
    else
      match pick t ~layer flow with
      | None -> List.rev acc
      | Some n -> go (layer + 1) (n :: acc)
  in
  go 0 []

let owner t ~vip flow =
  let dest = Topology.layer_of_vip t vip in
  match path t ~vip flow with
  | [] -> None
  | hops ->
    let last = List.nth hops (List.length hops - 1) in
    if last.Topology.layer_pos = dest then Some last else None
