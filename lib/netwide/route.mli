(** Deterministic per-flow routing over a {!Topology}.

    Each hop is an independent ECMP choice: at every layer the flow's
    5-tuple picks one live switch by highest-random-weight (rendezvous)
    hashing, so a switch failure remaps exactly the flows whose best
    node died — the minimal-disruption property resilient ECMP gives on
    real fabrics — and a recovery routes the same flows back.

    Routing is a pure function of (topology seed, link state, VIP
    placement, 5-tuple): same inputs, same path, on every run. *)

val pick : Topology.t -> layer:int -> Netcore.Five_tuple.t -> Topology.node option
(** The layer's live node with the highest rendezvous score for this
    flow; [None] when the whole layer is down. Ties (astronomically
    rare) break towards the lowest node id. *)

val path : Topology.t -> vip:Netcore.Endpoint.t -> Netcore.Five_tuple.t -> Topology.node list
(** The hop sequence from the entry (top) layer down to the layer
    terminating [vip], one node per layer. Stops early when a transit
    layer has no live node (the flow is undeliverable past that
    point). *)

val owner : Topology.t -> vip:Netcore.Endpoint.t -> Netcore.Five_tuple.t -> Topology.node option
(** The switch that load-balances this flow: the last hop of {!path}
    when it reaches [vip]'s layer, [None] when the flow cannot be
    delivered (terminating or transit layer fully down). *)
