(** Network-wide trace replay: a {!Harness.Packed_trace} streamed
    through every switch of a {!Topology}, with one end-to-end PCC
    judge spanning the whole network.

    Each switch is a shard whose partition is defined by the topology
    ({!Route.owner}) instead of a hash — the PR 9 worker-group replay
    machinery with ECMP as the shard function. The judge's flat
    first-DIP/state arrays are global and flow-indexed, never
    per-switch: when a topology event moves a flow to a switch that
    never learned it, the oracle keeps holding the connection to the
    DIP its very first packet got. That is the paper's network-wide
    claim stated as code — a connection must survive pool updates
    {e and} a re-route to a different switch.

    Equivalence contract (pinned by test/test_netwide.ml): on a
    degenerate topology whose placement puts every VIP on a single
    switch and with no topology events, [run] is byte-identical in
    merged telemetry to {!Harness.Replay.run} [~mode:Scalar] (or
    [Batch] when [batched]) over the same trace and controls. The
    [netwide.*] counters are registered only when a topology event
    actually fires, so event-free runs add nothing to the snapshot. *)

type event =
  | Switch_down of int  (** node id; its connection state is lost *)
  | Switch_up of int
      (** node id; returns as a {e fresh} switch (same telemetry
          registry, empty tables) hosting its layer's VIPs at their
          current pools *)
  | Vip_move of Netcore.Endpoint.t * string
      (** re-pin the VIP to the named layer; its flows' state on the
          old layer is dropped (state does not travel, §4.4) *)

type result = {
  packets : int;
  dropped : int;
  connections : int;
  broken : int;  (** connections that ever saw a wrong/no DIP *)
  violations : int;  (** packets violating per-connection consistency *)
  moved_flows : int;  (** flow re-homings applied by topology events *)
  first_dip : Netcore.Endpoint.t array;  (** per flow, network-wide *)
  telemetry : Telemetry.Registry.t;
      (** merged snapshot: the run's own [replay.*] (and, if events
          fired, [netwide.*]) counters plus every node's registry in
          node-id order. Registries survive switch failure/recovery, so
          counters continue across a down/up cycle. *)
  elapsed : float;
}

val run :
  ?cfg:Silkroad.Config.t ->
  ?batched:bool ->
  ?parallel:bool ->
  ?events:(float * event) list ->
  ?controls:(float * Harness.Replay.control) list ->
  topo:Topology.t ->
  trace:Harness.Packed_trace.t ->
  unit ->
  result
(** Replay [trace] through [topo]. [controls] are the ordinary replay
    controls (updates, chaos), applied network-wide with the driver's
    tie order (packets at a control's time fire first; at equal times
    controls fire before topology [events]). [batched] (default true)
    uses {!Silkroad.Switch.process_batch}; [parallel] (default false)
    processes the switches of each segment on a worker group of
    [min switches (auto_shards ())] domains — safe because a flow is
    owned by exactly one switch between consecutive topology events,
    and events are barriers. *)
