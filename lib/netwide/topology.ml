type node = {
  node_id : int;
  layer_name : string;
  layer_pos : int;
  member : int;
  mutable up : bool;
}

type t = {
  seed : int;
  layers : Silkroad.Assignment.layer list;
  layer_nodes : node array array;
  nodes : node array;
  placement : Silkroad.Assignment.placement;
  diags : Analysis.Diag.t list;
  vip_layer : (Netcore.Endpoint.t, int) Hashtbl.t;
  vips : (Netcore.Endpoint.t * Lb.Dip_pool.t) list;
}

(* a "mouse" VIP of Feasibility.default_demands: 50 K connections at
   ~40 ConnTable bits each *)
let demands_of_vips ?(conn_bits = 50_000 * 40) ?(traffic_gbps = 1.5) vips =
  List.map (fun (vip, _) -> { Silkroad.Assignment.vip; conn_bits; traffic_gbps }) vips

let build ?(check = `Fail) ?(sram_warn = 0.9) ?demands ?(seed = 0x7090) ~layers ~vips () =
  if layers = [] then invalid_arg "Netwide.Topology.build: no layers";
  (* a layer with no LB SRAM budget is a pure transit layer: it routes
     but cannot host VIP state, so it stays out of the bin packing *)
  let hosting =
    List.filter (fun (l : Silkroad.Assignment.layer) -> l.Silkroad.Assignment.sram_budget_bits > 0) layers
  in
  if hosting = [] then invalid_arg "Netwide.Topology.build: no layer has LB SRAM";
  let demands = match demands with Some d -> d | None -> demands_of_vips vips in
  let placement, diags =
    match check with
    | `Off -> (Silkroad.Assignment.assign ~layers:hosting ~vips:demands, [])
    | (`Fail | `Warn) as check ->
      let placement, diags =
        Analysis.Feasibility.check_network ~sram_warn ~layers:hosting ~vips:demands ()
      in
      if check = `Fail && Analysis.Diag.errors diags > 0 then
        invalid_arg
          (Format.asprintf "@[<v>Netwide.Topology.build: infeasible placement:@,%a@]"
             Analysis.Diag.pp_list
             (List.filter (fun d -> d.Analysis.Diag.severity = Analysis.Diag.Error) diags));
      (placement, diags)
  in
  let layer_arr = Array.of_list layers in
  let next_id = ref 0 in
  let layer_nodes =
    Array.mapi
      (fun pos (l : Silkroad.Assignment.layer) ->
        Array.init l.Silkroad.Assignment.switches (fun member ->
            let node_id = !next_id in
            incr next_id;
            { node_id; layer_name = l.Silkroad.Assignment.layer_name; layer_pos = pos; member; up = true }))
      layer_arr
  in
  let nodes = Array.concat (Array.to_list layer_nodes) in
  let bottom = Array.length layer_arr - 1 in
  let pos_of_name name =
    let rec go i = function
      | [] -> None
      | (l : Silkroad.Assignment.layer) :: rest ->
        if String.equal l.Silkroad.Assignment.layer_name name then Some i else go (i + 1) rest
    in
    go 0 layers
  in
  let vip_layer = Hashtbl.create (List.length vips) in
  (* placement first; anything unplaced (possible under `Warn/`Off)
     falls back to the bottom layer so routing stays total *)
  List.iter (fun (vip, _) -> Hashtbl.replace vip_layer vip bottom) vips;
  List.iter
    (fun (vip, lname) ->
      match pos_of_name lname with
      | Some pos -> Hashtbl.replace vip_layer vip pos
      | None -> ())
    placement.Silkroad.Assignment.assignment;
  { seed; layers; layer_nodes; nodes; placement; diags; vip_layer; vips }

let n_nodes t = Array.length t.nodes

let find_layer t name =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Netwide.Topology.find_layer: unknown layer %S" name)
    | (l : Silkroad.Assignment.layer) :: rest ->
      if String.equal l.Silkroad.Assignment.layer_name name then i else go (i + 1) rest
  in
  go 0 t.layers

let layer_of_vip t vip =
  match Hashtbl.find_opt t.vip_layer vip with
  | Some pos -> pos
  | None -> Array.length t.layer_nodes - 1

let move_vip t vip name = Hashtbl.replace t.vip_layer vip (find_layer t name)

let set_up t ~node_id up =
  if node_id < 0 || node_id >= Array.length t.nodes then
    invalid_arg "Netwide.Topology.set_up: bad node id";
  t.nodes.(node_id).up <- up

let live t ~layer =
  Array.to_list t.layer_nodes.(layer) |> List.filter (fun n -> n.up)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun pos nodes ->
      let l = List.nth t.layers pos in
      let up = Array.fold_left (fun acc n -> if n.up then acc + 1 else acc) 0 nodes in
      Format.fprintf ppf "%s: %d/%d up@," l.Silkroad.Assignment.layer_name up (Array.length nodes))
    t.layer_nodes;
  Format.fprintf ppf "VIPs: %d placed, %d unplaced@]" (List.length t.vips)
    (List.length t.placement.Silkroad.Assignment.unplaced)
