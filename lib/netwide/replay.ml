(* Network-wide replay: the packed trace is sliced into segments at
   control/topology-event boundaries; within a segment every flow is
   owned by exactly one switch ({!Route.owner}), so the switches can be
   driven independently (optionally on a worker group) while one global
   flow-indexed judge enforces PCC across the whole network.

   The judge mirrors Harness.Replay's flat PCC accounting (same state
   bytes, same transitions); the degenerate-topology differential in
   test/test_netwide.ml pins the two byte-identical. *)

type event =
  | Switch_down of int
  | Switch_up of int
  | Vip_move of Netcore.Endpoint.t * string

type result = {
  packets : int;
  dropped : int;
  connections : int;
  broken : int;
  violations : int;
  moved_flows : int;
  first_dip : Netcore.Endpoint.t array;
  telemetry : Telemetry.Registry.t;
  elapsed : float;
}

let payload_len = 1024

(* flat PCC state bytes — Harness.Replay's encoding *)
let st_live = 1
let st_excluded = 2
let st_bad = 4

type counters = {
  mutable nc_packets : int;
  mutable nc_dropped : int;
  mutable nc_total : int;
  mutable nc_broken : int;
  mutable nc_violations : int;
}

let fresh_counters () =
  { nc_packets = 0; nc_dropped = 0; nc_total = 0; nc_broken = 0; nc_violations = 0 }

let judge ~no_dip ~first ~state (c : counters) i dip ~ends =
  c.nc_packets <- c.nc_packets + 1;
  if dip == no_dip then c.nc_dropped <- c.nc_dropped + 1;
  let b = Char.code (Bytes.unsafe_get state i) in
  if b land st_live = 0 then begin
    c.nc_total <- c.nc_total + 1;
    let bad = dip == no_dip in
    if bad then begin
      c.nc_broken <- c.nc_broken + 1;
      c.nc_violations <- c.nc_violations + 1
    end;
    Array.unsafe_set first i dip;
    Bytes.unsafe_set state i (Char.unsafe_chr (st_live lor (if bad then st_bad else 0)))
  end
  else if b land st_excluded = 0 then begin
    let f = Array.unsafe_get first i in
    let consistent = f != no_dip && dip != no_dip && Netcore.Endpoint.equal f dip in
    if not consistent then begin
      c.nc_violations <- c.nc_violations + 1;
      if b land st_bad = 0 then begin
        c.nc_broken <- c.nc_broken + 1;
        Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_bad))
      end
    end
  end;
  if ends then Bytes.unsafe_set state i '\000'

(* Pcc.on_dip_removed, network-wide: there is one judge, so no
   shard-ownership filter is needed *)
let exclude_dip ~no_dip ~first ~state dip =
  for i = 0 to Array.length first - 1 do
    let b = Char.code (Bytes.unsafe_get state i) in
    if b land st_live <> 0 then begin
      let f = Array.unsafe_get first i in
      if f != no_dip && Netcore.Endpoint.equal f dip then
        Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_excluded))
    end
  done

type action =
  | A_control of Harness.Replay.control
  | A_event of event

let run ?(cfg = Silkroad.Config.default) ?(batched = true) ?(parallel = false) ?(events = [])
    ?(controls = []) ~topo ~(trace : Harness.Packed_trace.t) () =
  let no_dip = Silkroad.Switch.no_dip in
  let n_flows = Array.length trace.Harness.Packed_trace.flow_ids in
  let n_pkts = Array.length trace.Harness.Packed_trace.times in
  let times = trace.Harness.Packed_trace.times in
  let pkt_flow = trace.Harness.Packed_trace.pkt_flow in
  let pkt_flags = trace.Harness.Packed_trace.pkt_flags in
  let tuples = trace.Harness.Packed_trace.flow_tuples in
  let first = Array.make n_flows no_dip in
  let state = Bytes.make n_flows '\000' in
  let flow_vip_ep =
    Array.map
      (fun v -> trace.Harness.Packed_trace.vips.(v))
      trace.Harness.Packed_trace.flow_vip
  in
  let flag_tbl = Array.init 256 Netcore.Tcp_flags.of_byte in
  let n_nodes = Topology.n_nodes topo in
  (* node registries persist across switch failure/recovery so counters
     continue; switches themselves are the volatile state *)
  let registries : Telemetry.Registry.t option array = Array.make n_nodes None in
  let switches : Silkroad.Switch.t option array = Array.make n_nodes None in
  let cur_pools = Hashtbl.create 16 in
  List.iter (fun (v, p) -> Hashtbl.replace cur_pools v p) topo.Topology.vips;
  let own = Telemetry.Registry.create () in
  (* find-or-create keeps these out of the snapshot until the first
     topology event fires — the degenerate byte-identity depends on it *)
  let nw name = Telemetry.Registry.counter own ("netwide." ^ name) in
  let registry_of id =
    match registries.(id) with
    | Some r -> r
    | None ->
      let r = Telemetry.Registry.create () in
      registries.(id) <- Some r;
      r
  in
  let layer_hosts_vips pos =
    List.exists (fun (vip, _) -> Topology.layer_of_vip topo vip = pos) topo.Topology.vips
  in
  let ensure_switch id =
    match switches.(id) with
    | Some sw -> sw
    | None ->
      let node = topo.Topology.nodes.(id) in
      let sw = Silkroad.Switch.create ~metrics:(registry_of id) cfg in
      List.iter
        (fun (vip, _) ->
          if Topology.layer_of_vip topo vip = node.Topology.layer_pos then
            Silkroad.Switch.add_vip sw vip (Hashtbl.find cur_pools vip))
        topo.Topology.vips;
      switches.(id) <- Some sw;
      sw
  in
  (* switches exist only where VIPs terminate: transit layers are pure
     route hops with no connection state *)
  let create_initial () =
    Array.iter
      (fun (n : Topology.node) ->
        if n.Topology.up && layer_hosts_vips n.Topology.layer_pos then
          ignore (ensure_switch n.Topology.node_id))
      topo.Topology.nodes
  in
  let iter_live_switches f =
    for id = 0 to n_nodes - 1 do
      match switches.(id) with Some sw -> f sw | None -> ()
    done
  in
  let owner = Array.make n_flows (-1) in
  let recompute_owners () =
    let moved = ref 0 in
    for f = 0 to n_flows - 1 do
      let o =
        match Route.owner topo ~vip:flow_vip_ep.(f) tuples.(f) with
        | Some n -> n.Topology.node_id
        | None -> -1
      in
      if o <> owner.(f) then incr moved;
      owner.(f) <- o
    done;
    !moved
  in
  let totals = fresh_counters () in
  let cursor = ref 0 in
  (* process one node's gathered packets; [c] is private to the caller
     (per node in the parallel path), the judge's flow cells are owned
     by exactly one node per segment *)
  let process_node id (idxs : int array) (c : counters) =
    let m = Array.length idxs in
    let sw =
      match switches.(id) with
      | Some sw -> sw
      | None -> ensure_switch id
    in
    if batched then begin
      let ts = Array.make m 0. in
      let fls = Array.make m Harness.Packed_trace.dummy_tuple in
      let fgs = Array.make m Netcore.Tcp_flags.none in
      let dips = Array.make m no_dip in
      for j = 0 to m - 1 do
        let i = idxs.(j) in
        ts.(j) <- times.(i);
        fls.(j) <- tuples.(pkt_flow.(i));
        fgs.(j) <- flag_tbl.(Char.code (Bytes.get pkt_flags i))
      done;
      Silkroad.Switch.process_batch sw ~times:ts ~flows:fls ~flags:fgs ~payload_len ~dips ~pos:0
        ~len:m;
      for j = 0 to m - 1 do
        let i = idxs.(j) in
        judge ~no_dip ~first ~state c pkt_flow.(i) dips.(j)
          ~ends:(Netcore.Tcp_flags.is_connection_end fgs.(j))
      done
    end
    else
      for j = 0 to m - 1 do
        let i = idxs.(j) in
        let flags = flag_tbl.(Char.code (Bytes.get pkt_flags i)) in
        let dip =
          Silkroad.Switch.process_flow sw ~now:times.(i) ~flags ~payload_len tuples.(pkt_flow.(i))
        in
        judge ~no_dip ~first ~state c pkt_flow.(i) dip
          ~ends:(Netcore.Tcp_flags.is_connection_end flags)
      done
  in
  let add_counters into c =
    into.nc_packets <- into.nc_packets + c.nc_packets;
    into.nc_dropped <- into.nc_dropped + c.nc_dropped;
    into.nc_total <- into.nc_total + c.nc_total;
    into.nc_broken <- into.nc_broken + c.nc_broken;
    into.nc_violations <- into.nc_violations + c.nc_violations
  in
  (* process every packet with time <= [at] (Driver's tie order: probes
     scheduled before control events at the same timestamp) *)
  let flush_to at =
    let stop = ref !cursor in
    while !stop < n_pkts && times.(!stop) <= at do
      incr stop
    done;
    let lo = !cursor and hi = !stop in
    if hi > lo then begin
      let counts = Array.make n_nodes 0 in
      (* undeliverable packets (layer fully down): judged as drops *)
      for i = lo to hi - 1 do
        let o = owner.(pkt_flow.(i)) in
        if o >= 0 then counts.(o) <- counts.(o) + 1
        else
          judge ~no_dip ~first ~state totals pkt_flow.(i) no_dip
            ~ends:
              (Netcore.Tcp_flags.is_connection_end
                 flag_tbl.(Char.code (Bytes.get pkt_flags i)))
      done;
      let bufs = Array.map (fun c -> Array.make c 0) counts in
      let fill = Array.make n_nodes 0 in
      for i = lo to hi - 1 do
        let o = owner.(pkt_flow.(i)) in
        if o >= 0 then begin
          bufs.(o).(fill.(o)) <- i;
          fill.(o) <- fill.(o) + 1
        end
      done;
      let active = ref [] in
      for id = n_nodes - 1 downto 0 do
        if counts.(id) > 0 then begin
          (* switch creation stays sequential: the workers below only
             drive pre-existing switches *)
          ignore (ensure_switch id);
          active := id :: !active
        end
      done;
      let active = Array.of_list !active in
      let n_active = Array.length active in
      let seg_counters = Array.init n_active (fun _ -> fresh_counters ()) in
      let run_one k = process_node active.(k) bufs.(active.(k)) seg_counters.(k) in
      let workers =
        if parallel && n_active > 1 then Int.min n_active (Harness.Replay.auto_shards ()) else 1
      in
      if workers > 1 then begin
        let run_worker w =
          let k = ref w in
          while !k < n_active do
            run_one !k;
            k := !k + workers
          done
        in
        let doms =
          Array.init (workers - 1) (fun j -> Domain.spawn (fun () -> run_worker (j + 1)))
        in
        run_worker 0;
        Array.iter Domain.join doms
      end
      else
        for k = 0 to n_active - 1 do
          run_one k
        done;
      Array.iter (add_counters totals) seg_counters
    end;
    cursor := hi
  in
  let apply_control at (ctrl : Harness.Replay.control) =
    match ctrl with
    | Harness.Replay.Update (vip, u) ->
      (* Stepper order: advance, dead-server PCC accounting, update *)
      iter_live_switches (fun sw -> Silkroad.Switch.advance sw ~now:at);
      (match u with
       | Lb.Balancer.Dip_remove d -> exclude_dip ~no_dip ~first ~state d
       | Lb.Balancer.Dip_replace { old_dip; _ } -> exclude_dip ~no_dip ~first ~state old_dip
       | Lb.Balancer.Dip_add _ -> ());
      (match Hashtbl.find_opt cur_pools vip with
       | Some pool -> Hashtbl.replace cur_pools vip (Lb.Balancer.apply_update pool u)
       | None -> ());
      iter_live_switches (fun sw ->
          if Silkroad.Switch.has_vip sw vip then Silkroad.Switch.request_update sw ~now:at ~vip u)
    | Harness.Replay.Dip_dead d -> exclude_dip ~no_dip ~first ~state d
    | Harness.Replay.Cpu_backlog n ->
      iter_live_switches (fun sw ->
          Silkroad.Switch.advance sw ~now:at;
          Silkroad.Switch.inject_cpu_backlog sw ~now:at ~work_items:n)
    | Harness.Replay.Attack_syn tuple ->
      (* routed like any packet of its (spoofed) VIP; not measured *)
      (match Route.owner topo ~vip:tuple.Netcore.Five_tuple.dst tuple with
       | Some n ->
         let sw = ensure_switch n.Topology.node_id in
         Silkroad.Switch.advance sw ~now:at;
         ignore
           (Silkroad.Switch.process_flow sw ~now:at ~flags:Netcore.Tcp_flags.syn ~payload_len:0
              tuple)
       | None -> ())
    | Harness.Replay.Reroute r ->
      iter_live_switches (fun sw ->
          Silkroad.Switch.advance sw ~now:at;
          ignore
            (Silkroad.Switch.forget_flows sw ~now:at (fun flow _vip ->
                 Lb.Balancer.reroute_selects r flow)))
  in
  let moved_total = ref 0 in
  let note_moved () =
    let moved = recompute_owners () in
    moved_total := !moved_total + moved;
    Telemetry.Registry.Counter.add (nw "moved_flows") moved
  in
  let apply_event at ev =
    (match ev with
     | Switch_down id ->
       Telemetry.Registry.Counter.incr (nw "switch_downs");
       Topology.set_up topo ~node_id:id false;
       (* the device lost power: its connection state is simply gone *)
       switches.(id) <- None
     | Switch_up id ->
       Telemetry.Registry.Counter.incr (nw "switch_ups");
       Topology.set_up topo ~node_id:id true;
       if layer_hosts_vips topo.Topology.nodes.(id).Topology.layer_pos then
         (* fresh switch, same registry, current pools *)
         ignore (ensure_switch id)
     | Vip_move (vip, layer_name) ->
       Telemetry.Registry.Counter.incr (nw "vip_moves");
       let old_pos = Topology.layer_of_vip topo vip in
       Topology.move_vip topo vip layer_name;
       let new_pos = Topology.find_layer topo layer_name in
       if new_pos <> old_pos then begin
         (* state does not travel: the old layer's switches forget the
            VIP's flows (the stale VIPTable registration is harmless —
            routing no longer sends the VIP there) *)
         Array.iter
           (fun (n : Topology.node) ->
             match switches.(n.Topology.node_id) with
             | Some sw ->
               ignore
                 (Silkroad.Switch.forget_flows sw ~now:at (fun _flow v ->
                      Netcore.Endpoint.equal v vip))
             | None -> ())
           topo.Topology.layer_nodes.(old_pos);
         Array.iter
           (fun (n : Topology.node) ->
             if n.Topology.up then begin
               let sw = ensure_switch n.Topology.node_id in
               if not (Silkroad.Switch.has_vip sw vip) then
                 Silkroad.Switch.add_vip sw vip (Hashtbl.find cur_pools vip)
             end)
           topo.Topology.layer_nodes.(new_pos)
       end);
    note_moved ()
  in
  let actions =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.map (fun (t, c) -> (t, A_control c)) controls
      @ List.map (fun (t, e) -> (t, A_event e)) events)
  in
  let (), elapsed =
    Harness.Stopwatch.time (fun () ->
        create_initial ();
        ignore (recompute_owners ());
        List.iter
          (fun (at, action) ->
            flush_to at;
            match action with
            | A_control c -> apply_control at c
            | A_event e -> apply_event at e)
          actions;
        flush_to infinity;
        iter_live_switches (fun sw ->
            Silkroad.Switch.advance sw ~now:trace.Harness.Packed_trace.horizon))
  in
  let c name v = Telemetry.Registry.Counter.add (Telemetry.Registry.counter own name) v in
  c "replay.packets" totals.nc_packets;
  c "replay.dropped_packets" totals.nc_dropped;
  c "replay.connections" totals.nc_total;
  c "replay.broken_connections" totals.nc_broken;
  c "replay.violation_packets" totals.nc_violations;
  let node_regs =
    Array.to_list registries |> List.filter_map (fun r -> r)
  in
  let telemetry = Telemetry.Registry.merge_all (own :: node_regs) in
  {
    packets = totals.nc_packets;
    dropped = totals.nc_dropped;
    connections = totals.nc_total;
    broken = totals.nc_broken;
    violations = totals.nc_violations;
    moved_flows = !moved_total;
    first_dip = first;
    telemetry;
    elapsed;
  }
