(** The multi-switch deployment: SilkRoad switches arranged in layers
    (Core / Aggregation / ToR), with per-switch link state and a
    VIP-to-layer placement computed by {!Silkroad.Assignment}'s §4.4
    bin packing.

    A topology is the static half of the network-wide simulation: which
    switches exist, which are up, and which layer terminates each VIP's
    traffic. {!Route} derives the per-flow forwarding decision from it,
    and {!Replay} streams packed traces through it.

    Construction is pipeline-checked: the placement runs through
    {!Analysis.Feasibility.check_network}, so an infeasible
    configuration (a VIP no layer can host, SRAM over budget) fails at
    build time with the ordinary [net.*] diagnostics instead of
    surfacing as mysterious behaviour mid-replay. *)

type node = {
  node_id : int;  (** globally unique, dense in [0, n_nodes) *)
  layer_name : string;
  layer_pos : int;  (** 0 = entry (top) layer, increasing downwards *)
  member : int;  (** index within the layer *)
  mutable up : bool;
}

type t = {
  seed : int;  (** routing hash seed *)
  layers : Silkroad.Assignment.layer list;  (** top → bottom *)
  layer_nodes : node array array;  (** per layer position *)
  nodes : node array;  (** all nodes, grouped by layer, id order *)
  placement : Silkroad.Assignment.placement;
  diags : Analysis.Diag.t list;  (** feasibility diagnostics from construction *)
  vip_layer : (Netcore.Endpoint.t, int) Hashtbl.t;  (** VIP → layer position *)
  vips : (Netcore.Endpoint.t * Lb.Dip_pool.t) list;
}

val demands_of_vips :
  ?conn_bits:int ->
  ?traffic_gbps:float ->
  (Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  Silkroad.Assignment.vip_demand list
(** Uniform demand records for concrete VIPs (default: a "mouse" VIP,
    50 K connections at ~40 ConnTable bits each, 1.5 Gbps). *)

val build :
  ?check:[ `Fail | `Warn | `Off ] ->
  ?sram_warn:float ->
  ?demands:Silkroad.Assignment.vip_demand list ->
  ?seed:int ->
  layers:Silkroad.Assignment.layer list ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  unit ->
  t
(** Place the VIPs over the layers and materialise the switch nodes.

    [check] (default [`Fail]) controls the network-mode feasibility
    gate: [`Fail] raises [Invalid_argument] carrying the [net.*]
    diagnostics when the placement has errors (a VIP nowhere to live),
    [`Warn] keeps the diagnostics in {!field-diags} and proceeds,
    [`Off] skips {!Analysis.Feasibility.check_network} and uses the raw
    {!Silkroad.Assignment.assign} placement. [demands] defaults to
    {!demands_of_vips} over [vips]. VIPs the placement could not place
    (under [`Warn]/[`Off]) fall back to the bottom layer.

    A layer whose [sram_budget_bits] is zero is a {e pure transit}
    layer: it participates in routing but is excluded from the bin
    packing, so no VIP can terminate there. At least one layer must
    have a positive budget. *)

val n_nodes : t -> int

val find_layer : t -> string -> int
(** Layer position by name; raises [Invalid_argument] when unknown. *)

val layer_of_vip : t -> Netcore.Endpoint.t -> int
(** The layer position terminating this VIP's traffic (bottom layer for
    VIPs the topology has never seen). *)

val move_vip : t -> Netcore.Endpoint.t -> string -> unit
(** Re-pin a VIP to another layer (§4.4 migration). Routing changes
    immediately; connection state does not travel — {!Replay} models
    the state loss. Raises [Invalid_argument] on an unknown layer. *)

val set_up : t -> node_id:int -> bool -> unit
(** Mark a switch up/down. Down switches are skipped by {!Route}. *)

val live : t -> layer:int -> node list
(** Live nodes of a layer, member order. *)

val pp : Format.formatter -> t -> unit
