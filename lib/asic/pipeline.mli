(** A match-action pipeline's stage model and a static allocator.

    A switching ASIC is not one pool of memory: it is [n_stages]
    match-action stages, each with its own match crossbar, SRAM, TCAM,
    VLIW action slots, hash-distribution bits and stateful ALUs, plus a
    chip-wide packet header vector (PHV) budget. A program is feasible
    only if every logical table can be placed in some stage (or spread
    over several) without exceeding any per-stage budget, with tables
    that depend on another's result placed in strictly later stages.

    This module is the static model behind [silkroad-lint]'s pipeline
    feasibility checker: callers describe their tables and register
    arrays as {!item}s (resources from {!Table_spec.resources} /
    {!Resources.t}), pick a {!chip}, and {!allocate} either produces a
    stage-by-stage placement with utilization figures or the {e first
    infeasible resource class} — before anything is simulated. *)

type resource_class =
  | Crossbar
  | Sram
  | Tcam
  | Vliw
  | Hash
  | Salu
  | Phv

val class_name : resource_class -> string

type chip = {
  chip_name : string;
  n_stages : int;
  stage_budget : Resources.t;
      (** per-stage budgets; the [phv_bits] field is ignored (PHV is
          chip-wide) *)
  chip_phv_bits : int;  (** whole-chip PHV budget in bits *)
  baseline : Resources.t;
      (** the resident program (the paper's [switch.p4] baseline, the
          frozen Table 2 vector) — spread uniformly across stages before
          any item is placed *)
}

val tofino_like : baseline:Resources.t -> chip
(** A 12-stage chip of the paper's §6 generation (Table 2 era): 48 Mb
    SRAM, 512 Kb TCAM, 640 crossbar bits, 16 VLIW slots, 192 hash bits
    and 4 stateful ALUs per stage, 6400 PHV bits chip-wide — a 75 MB
    SRAM chip, inside the 50–100 MB band of §6's ASIC-generation table.
    [baseline] must itself fit the chip. *)

type item = {
  item_name : string;
  needs : Resources.t;
      (** logical totals, counted once per item (this is what Table 2
          sums); stage occupancy is derived from it by the allocator *)
  after : string list;
      (** names of items whose match result this one consumes: it must
          land in a strictly later stage than each of them *)
  divisible : bool;
      (** a divisible item's SRAM may spread over several stages (the
          ConnTable's cuckoo partitions); its match key is then
          re-presented to the crossbar of every stage it occupies *)
}

val item : ?after:string list -> ?divisible:bool -> name:string -> Resources.t -> item

val item_of_table : ?after:string list -> ?divisible:bool -> Table_spec.t -> item
(** An item named and sized by a table spec. *)

type failure = {
  failed_item : string;
  failed_class : resource_class option;
      (** [Some c]: resource class [c] is the first one that cannot fit;
          [None]: every class fits some stage individually but the chip
          ran out of stages (dependency depth or fragmentation) *)
  needed : int;
  available : int;
  at_stage : int option;  (** [None] for chip-wide classes (PHV) *)
  spread : bool;
      (** [true] when [needed]/[available] are cross-stage totals (a
          divisible item that exhausted the whole pipeline's SRAM, or
          the chip-wide PHV budget) rather than per-stage maxima *)
}

type placement = {
  placed : item;
  first_stage : int;
  last_stage : int;  (** = [first_stage] unless the item spread *)
}

type report = {
  chip : chip;
  items : item list;
  placements : placement list;  (** in placement order *)
  per_stage : Resources.t array;
      (** per-stage usage including the baseline share; length
          [n_stages] *)
  total_additional : Resources.t;  (** [Resources.sum] of the items *)
  phv_used : int;  (** baseline + items, chip-wide *)
  failure : failure option;
}

val allocate : chip -> item list -> report
(** Greedy dependency-respecting placement: items are processed in list
    order (dependencies must appear before their dependents — the list
    order is the program order), each placed in the earliest admissible
    stage. On the first item that cannot be placed, allocation stops and
    [failure] names the binding resource class. Raises [Invalid_argument]
    on an unknown or forward [after] reference, or if the baseline alone
    overflows a stage budget. *)

val is_feasible : report -> bool

val stage_utilization : report -> stage:int -> Resources.percentages
(** Usage of stage [stage] (baseline share included) relative to the
    per-stage budget, percentage per class. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
