type t = {
  rate : float;
  mutable busy_until : float;
  mutable total_items : int;
  c_items : Telemetry.Registry.Counter.t;
  c_batches : Telemetry.Registry.Counter.t;
  g_backlog : Telemetry.Registry.Gauge.t;
  h_queue_delay : Telemetry.Histogram.t;
}

let create ?metrics ~insertions_per_sec () =
  assert (insertions_per_sec > 0.);
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  {
    rate = insertions_per_sec;
    busy_until = 0.;
    total_items = 0;
    c_items = Telemetry.Registry.counter reg "switch_cpu.work_items";
    c_batches = Telemetry.Registry.counter reg "switch_cpu.batches";
    g_backlog = Telemetry.Registry.gauge reg "switch_cpu.backlog_seconds";
    h_queue_delay = Telemetry.Registry.histogram reg "switch_cpu.queue_delay";
  }

let insertions_per_sec t = t.rate

let submit t ~now ~work_items =
  assert (work_items >= 0);
  let start = Float.max now t.busy_until in
  let finish = start +. (float_of_int work_items /. t.rate) in
  t.busy_until <- finish;
  t.total_items <- t.total_items + work_items;
  Telemetry.Registry.Counter.add t.c_items work_items;
  Telemetry.Registry.Counter.incr t.c_batches;
  (* sojourn time of this batch: backlog wait plus its own service *)
  Telemetry.Histogram.observe t.h_queue_delay (finish -. now);
  Telemetry.Registry.Gauge.set t.g_backlog (finish -. now);
  finish

let busy_until t = t.busy_until
let total_items t = t.total_items
let queue_delay t = t.h_queue_delay
