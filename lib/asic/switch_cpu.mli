(** The switch management CPU as a rate-limited server.

    Entry insertion/deletion is the job of software on the embedded x86
    CPU connected to the ASIC over PCI-E (§4.1). The paper measures an
    achievable ConnTable insertion throughput of about 200K entries per
    second (§5.2). We model the CPU as a FIFO work-conserving server: a
    batch of [n] insertions submitted at time [t] completes at
    [max t backlog_free_time + n / rate].

    The gap between a connection's first packet and its insertion
    completion is the "pending connection" window that TransitTable must
    cover. *)

type t

val create : ?metrics:Telemetry.Registry.t -> insertions_per_sec:float -> unit -> t
(** [?metrics]: registry the CPU reports through — a [switch_cpu.work_items]
    counter, a [switch_cpu.backlog_seconds] gauge and a
    [switch_cpu.queue_delay] histogram of per-batch sojourn times
    (backlog wait + service). A private registry is used when omitted. *)

val insertions_per_sec : t -> float

val submit : t -> now:float -> work_items:int -> float
(** Schedule [work_items] units of work; returns the absolute completion
    time. Work is served FIFO, so the completion time is monotone in
    submission order. *)

val busy_until : t -> float
(** Time at which all currently-queued work completes. *)

val total_items : t -> int

val queue_delay : t -> Telemetry.Histogram.t
(** The sojourn-time histogram (same object the registry snapshots). *)
