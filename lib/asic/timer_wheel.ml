type 'k t = {
  granularity : float;
  slots : ('k, float) Hashtbl.t array;
  index : ('k, int) Hashtbl.t;  (** key -> slot currently holding it *)
  mutable last_swept : int;  (** highest completed tick already swept *)
}

let create ~granularity ~slots () =
  assert (granularity > 0.);
  assert (slots >= 2);
  {
    granularity;
    slots = Array.init slots (fun _ -> Hashtbl.create 16);
    index = Hashtbl.create 64;
    last_swept = -1;
  }

let cancel t ~key =
  match Hashtbl.find_opt t.index key with
  | Some slot ->
    Hashtbl.remove t.slots.(slot) key;
    Hashtbl.remove t.index key
  | None -> ()

let schedule t ~key ~at =
  cancel t ~key;
  (* never place a deadline into an already-completed tick: it would sit
     unseen until the wheel came all the way around again *)
  let tick = Int.max (int_of_float (at /. t.granularity)) (t.last_swept + 1) in
  let slot = tick mod Array.length t.slots in
  Hashtbl.replace t.slots.(slot) key at;
  Hashtbl.replace t.index key slot

let mem t ~key = Hashtbl.mem t.index key

let scheduled t = Hashtbl.length t.index

(* Deadlines are delivered when their tick completes, i.e. up to one
   granularity late. The payoff is the fast path: [advance] is called on
   every packet, and while time moves within the current tick it is a
   single integer compare — no slot scan, no allocation. The previous
   version folded over the current slot's whole hashtable on every call,
   which at millions of scheduled entries turned each packet into an
   O(slot population) scan. *)
let advance t ~now =
  let target_tick = int_of_float (now /. t.granularity) in
  if target_tick - 1 <= t.last_swept then []
  else begin
    let n = Array.length t.slots in
    let last = target_tick - 1 in
    (* at most one full revolution: n consecutive ticks visit every
       slot, and the [at <= now] filter keeps future-revolution entries
       in place regardless of which tick index visits their slot *)
    let first = Int.max (t.last_swept + 1) (last - n + 1) in
    let expired = ref [] in
    for tick = first to last do
      let h = t.slots.(tick mod n) in
      if Hashtbl.length h > 0 then begin
        let due =
          Hashtbl.fold (fun key at acc -> if at <= now then (key, at) :: acc else acc) h []
        in
        List.iter
          (fun (key, _) ->
            Hashtbl.remove h key;
            Hashtbl.remove t.index key)
          due;
        expired := due @ !expired
      end
    done;
    t.last_swept <- last;
    List.sort (fun (_, a) (_, b) -> Float.compare a b) !expired |> List.map fst
  end
