(* The original per-slot boxed-record cuckoo layout, kept verbatim as the
   differential-testing reference for the flat SoA layout in Cuckoo. Its
   insert path is the plain BFS (no greedy kick pass): the test suite
   relies on the flat layout's greedy pass selecting exactly the same
   victim as this BFS's first depth-1 solution, so both layouts make
   identical placements for identical operation sequences. *)

module type KEY = Cuckoo_intf.KEY

module Make (Key : KEY) = struct
  type key = Key.t

  type 'v hit = {
    stage : int;
    exact : bool;
    key : Key.t;
    value : 'v;
  }

  type 'v entry = {
    key : Key.t;
    mutable stored_digest : int;  (** digest under the entry's current stage; -1 in exact mode *)
    mutable value : 'v;
  }

  type 'v t = {
    seed : int;
    digest_bits : int option;
    max_bfs_nodes : int;
    n_stages : int;
    n_rows : int;
    n_ways : int;
    (* slots.(stage) is a flat array of rows*ways slots *)
    slots : 'v entry option array array;
    mutable size : int;
    mutable moves : int;
    mutable failed_inserts : int;
    mutable bfs_expansions : int;
    mutable last_bfs_expanded : int;
    mutable first_full_occupancy : float option;
    mutable placement_filter : (Key.t -> stage:int -> row:int -> bool) option;
  }

  let create ?(seed = 0xc0c0) ?digest_bits ?(max_bfs_nodes = 4096) ?max_kicks:_ ~stages
      ~rows_per_stage ~ways () =
    assert (stages >= 2);
    assert (rows_per_stage > 0);
    assert (ways >= 1);
    (match digest_bits with
     | None -> ()
     | Some b -> assert (b >= 1 && b <= 30));
    {
      seed;
      digest_bits;
      max_bfs_nodes;
      n_stages = stages;
      n_rows = rows_per_stage;
      n_ways = ways;
      slots = Array.init stages (fun _ -> Array.make (rows_per_stage * ways) None);
      size = 0;
      moves = 0;
      failed_inserts = 0;
      bfs_expansions = 0;
      last_bfs_expanded = 0;
      first_full_occupancy = None;
      placement_filter = None;
    }

  let stages t = t.n_stages
  let rows_per_stage t = t.n_rows
  let ways t = t.n_ways
  let digest_bits t = t.digest_bits
  let capacity t = t.n_stages * t.n_rows * t.n_ways
  let size t = t.size
  let occupancy t = float_of_int t.size /. float_of_int (capacity t)
  let max_bfs_nodes t = t.max_bfs_nodes

  (* Per-stage hash functions: one for the row index, one for the digest.
     Seeds are decorrelated by distinct multipliers. *)
  let row_seed t ~stage = t.seed + (stage * 2) + 1
  let digest_seed t ~stage = t.seed + 0x5eed + (stage * 2)
  let row_of t stage k = Netcore.Hashing.to_range (Key.hash ~seed:(row_seed t ~stage) k) t.n_rows

  let digest_of t stage k =
    match t.digest_bits with
    | None -> -1
    | Some bits -> Netcore.Hashing.truncate_bits (Key.hash ~seed:(digest_seed t ~stage) k) bits

  let probe_row t k ~stage = row_of t stage k
  let probe_digest t k ~stage = digest_of t stage k
  let slot_index t row way = (row * t.n_ways) + way

  let matches t stage k (slot : _ entry option) =
    match slot with
    | None -> false
    | Some e ->
      (match t.digest_bits with
       | None -> Key.equal e.key k
       | Some _ -> e.stored_digest = digest_of t stage k)

  type 'v probe = {
    mutable probe_hit : bool;
    mutable probe_exact : bool;
    mutable probe_stage : int;
    mutable probe_value : 'v;
  }

  let make_probe v = { probe_hit = false; probe_exact = false; probe_stage = 0; probe_value = v }

  (* [lookup] without the hit record: results land in a caller-owned
     probe buffer, so the hardware fast path allocates nothing. *)
  let lookup_into t k (p : 'v probe) =
    p.probe_hit <- false;
    let rec by_stage stage =
      if stage < t.n_stages then begin
        let row = row_of t stage k in
        let rec by_way way =
          if way >= t.n_ways then by_stage (stage + 1)
          else
            let slot = t.slots.(stage).(slot_index t row way) in
            if matches t stage k slot then begin
              match (slot : _ entry option) with
              | Some e ->
                p.probe_hit <- true;
                p.probe_exact <- Key.equal e.key k;
                p.probe_stage <- stage;
                p.probe_value <- e.value
              | None -> assert false
            end
            else by_way (way + 1)
        in
        by_way 0
      end
    in
    by_stage 0

  (* As [lookup_into], with the per-stage rows/digests precomputed by the
     caller (via [row_seed]/[digest_seed]); probes the same slots in the
     same order. *)
  let lookup_pos_into t ~key:k ~(rows : int array) ~(digests : int array) (p : 'v probe) =
    p.probe_hit <- false;
    let exact_mode = t.digest_bits = None in
    let rec by_stage stage =
      if stage < t.n_stages then begin
        let row = rows.(stage) in
        let digest = digests.(stage) in
        let rec by_way way =
          if way >= t.n_ways then by_stage (stage + 1)
          else
            match t.slots.(stage).(slot_index t row way) with
            | Some e when (if exact_mode then Key.equal e.key k else e.stored_digest = digest) ->
              p.probe_hit <- true;
              p.probe_exact <- Key.equal e.key k;
              p.probe_stage <- stage;
              p.probe_value <- e.value
            | Some _ | None -> by_way (way + 1)
        in
        by_way 0
      end
    in
    by_stage 0

  let lookup t k =
    let rec by_stage stage =
      if stage >= t.n_stages then None
      else
        let row = row_of t stage k in
        let rec by_way way =
          if way >= t.n_ways then by_stage (stage + 1)
          else
            let slot = t.slots.(stage).(slot_index t row way) in
            if matches t stage k slot then
              match (slot : _ entry option) with
              | Some e ->
                Some ({ stage; exact = Key.equal e.key k; key = e.key; value = e.value } : _ hit)
              | None -> assert false
            else by_way (way + 1)
        in
        by_way 0
    in
    by_stage 0

  (* Software-side scan by true key: the entry for [k] can only sit in one
     of its candidate rows. *)
  let locate_exact t k =
    let rec by_stage stage =
      if stage >= t.n_stages then None
      else
        let row = row_of t stage k in
        let rec by_way way =
          if way >= t.n_ways then by_stage (stage + 1)
          else
            match t.slots.(stage).(slot_index t row way) with
            | Some e when Key.equal e.key k -> Some (stage, row, way, e)
            | Some _ | None -> by_way (way + 1)
        in
        by_way 0
    in
    by_stage 0

  let find_exact t k =
    match locate_exact t k with
    | Some (_, _, _, e) -> Some e.value
    | None -> None

  let mem_exact t k = locate_exact t k <> None

  let stage_of_exact t k =
    match locate_exact t k with
    | Some (stage, _, _, _) -> Some stage
    | None -> None

  let placement_allowed t key stage row =
    match t.placement_filter with
    | None -> true
    | Some f -> f key ~stage ~row

  let free_way t stage row =
    let rec go way =
      if way >= t.n_ways then None
      else if t.slots.(stage).(slot_index t row way) = None then Some way
      else go (way + 1)
    in
    go 0

  let place t stage row way entry =
    entry.stored_digest <- digest_of t stage entry.key;
    t.slots.(stage).(slot_index t row way) <- Some entry

  (* BFS node: a slot whose occupant we may evict, with a link to the slot
     whose occupant wants to move into it. *)
  type bfs_node = {
    ns : int;  (** stage *)
    nr : int;  (** row *)
    nw : int;  (** way *)
    parent : bfs_node option;
  }

  exception Found_free of int * int * int * bfs_node option
  (* free (stage, row, way) and the node whose occupant moves into it *)

  let insert_entry t ~allowed_root_stage entry =
    let k = entry.key in
    (* Fast path: a free slot in one of the candidate rows. *)
    let rec direct stage =
      if stage >= t.n_stages then None
      else if not (allowed_root_stage stage) then direct (stage + 1)
      else
        let row = row_of t stage k in
        if not (placement_allowed t k stage row) then direct (stage + 1)
        else
          match free_way t stage row with
          | Some way -> Some (stage, row, way)
          | None -> direct (stage + 1)
    in
    match direct 0 with
    | Some (stage, row, way) ->
      place t stage row way entry;
      t.size <- t.size + 1;
      Ok 0
    | None ->
      (* BFS over eviction chains. *)
      let queue = Queue.create () in
      let visited = Hashtbl.create 64 in
      let visit_row stage row = Hashtbl.replace visited (stage, row) () in
      let row_visited stage row = Hashtbl.mem visited (stage, row) in
      for stage = 0 to t.n_stages - 1 do
        if allowed_root_stage stage && placement_allowed t k stage (row_of t stage k) then begin
          let row = row_of t stage k in
          if not (row_visited stage row) then begin
            visit_row stage row;
            for way = 0 to t.n_ways - 1 do
              Queue.add { ns = stage; nr = row; nw = way; parent = None } queue
            done
          end
        end
      done;
      let expanded = ref 0 in
      let result =
        try
          while not (Queue.is_empty queue) && !expanded < t.max_bfs_nodes do
            let node = Queue.pop queue in
            incr expanded;
            let occupant =
              match t.slots.(node.ns).(slot_index t node.nr node.nw) with
              | Some e -> e
              | None ->
                (* The slot freed up since enqueue cannot happen (no moves
                   during BFS) — root candidates were full by construction. *)
                assert false
            in
            (* The occupant may move to its candidate row in any other stage. *)
            for stage = 0 to t.n_stages - 1 do
              if
                stage <> node.ns
                && placement_allowed t occupant.key stage (row_of t stage occupant.key)
              then begin
                let row = row_of t stage occupant.key in
                match free_way t stage row with
                | Some way -> raise (Found_free (stage, row, way, Some node))
                | None ->
                  if not (row_visited stage row) then begin
                    visit_row stage row;
                    for way = 0 to t.n_ways - 1 do
                      Queue.add { ns = stage; nr = row; nw = way; parent = Some node } queue
                    done
                  end
              end
            done
          done;
          t.failed_inserts <- t.failed_inserts + 1;
          if t.first_full_occupancy = None then t.first_full_occupancy <- Some (occupancy t);
          Error `Full
        with Found_free (fs, fr, fw, last) ->
          (* Unwind the eviction chain leaf-to-root: each occupant moves into
             the slot freed by its successor. *)
          let rec unwind (free_s, free_r, free_w) node moves =
            match node with
            | None ->
              (* The root slot is now free: it is a candidate row of [k]. *)
              place t free_s free_r free_w entry;
              moves
            | Some n ->
              let e =
                match t.slots.(n.ns).(slot_index t n.nr n.nw) with
                | Some e -> e
                | None -> assert false
              in
              place t free_s free_r free_w e;
              t.slots.(n.ns).(slot_index t n.nr n.nw) <- None;
              unwind (n.ns, n.nr, n.nw) n.parent (moves + 1)
          in
          let moves = unwind (fs, fr, fw) last 0 in
          t.moves <- t.moves + moves;
          t.size <- t.size + 1;
          Ok moves
      in
      t.bfs_expansions <- t.bfs_expansions + !expanded;
      t.last_bfs_expanded <- !expanded;
      result

  let insert ?(forbid_stages = []) t k v =
    if mem_exact t k then Error `Duplicate
    else
      let allowed stage = not (List.mem stage forbid_stages) in
      let entry = { key = k; stored_digest = -1; value = v } in
      insert_entry t ~allowed_root_stage:allowed entry

  let remove t k =
    match locate_exact t k with
    | Some (stage, row, way, _) ->
      t.slots.(stage).(slot_index t row way) <- None;
      t.size <- t.size - 1;
      true
    | None -> false

  let set_exact t k v =
    match locate_exact t k with
    | Some (_, _, _, e) ->
      e.value <- v;
      true
    | None -> false

  let relocate t k ~forbid_stages =
    match locate_exact t k with
    | None -> Error `Not_found
    | Some (stage, row, way, e) ->
      if List.mem stage forbid_stages then begin
        t.slots.(stage).(slot_index t row way) <- None;
        t.size <- t.size - 1;
        let allowed s = not (List.mem s forbid_stages) in
        match insert_entry t ~allowed_root_stage:allowed e with
        | Ok moves -> Ok (moves + 1)
        | Error `Full ->
          (* Roll back so the table is unchanged on failure. *)
          t.slots.(stage).(slot_index t row way) <- Some e;
          t.size <- t.size + 1;
          Error `Full
      end
      else Ok 0

  let iter f t =
    Array.iter
      (fun stage_slots -> Array.iter (function Some e -> f e.key e.value | None -> ()) stage_slots)
      t.slots

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let moves t = t.moves
  let failed_inserts t = t.failed_inserts
  let greedy_kicks _ = 0
  let bfs_expansions t = t.bfs_expansions
  let last_bfs_expanded t = t.last_bfs_expanded
  let first_full_occupancy t = t.first_full_occupancy

  let probe_positions t k =
    List.init t.n_stages (fun stage -> (stage, row_of t stage k, digest_of t stage k))

  let set_placement_filter t f = t.placement_filter <- f
end
