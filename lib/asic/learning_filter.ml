type ('k, 'm) t = {
  capacity : int;
  timeout : float;
  keys : ('k, unit) Hashtbl.t;
  queue : ('k * 'm * float) Queue.t;
  mutable dropped : int;
  c_offered : Telemetry.Registry.Counter.t;
  c_dropped : Telemetry.Registry.Counter.t;
  g_pending : Telemetry.Registry.Gauge.t;
}

let create ?metrics ~capacity ~timeout () =
  assert (capacity > 0);
  assert (timeout >= 0.);
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  {
    capacity;
    timeout;
    keys = Hashtbl.create 256;
    queue = Queue.create ();
    dropped = 0;
    c_offered = Telemetry.Registry.counter reg "learning.offered";
    c_dropped = Telemetry.Registry.counter reg "learning.dropped";
    g_pending = Telemetry.Registry.gauge reg "learning.pending";
  }

let capacity t = t.capacity
let timeout t = t.timeout

let pending t = Queue.length t.queue
let dropped t = t.dropped

let offer t ~now k m =
  Telemetry.Registry.Counter.incr t.c_offered;
  if Hashtbl.mem t.keys k then `Duplicate
  else if Queue.length t.queue >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    Telemetry.Registry.Counter.incr t.c_dropped;
    `Dropped
  end
  else begin
    Hashtbl.replace t.keys k ();
    Queue.add (k, m, now) t.queue;
    Telemetry.Registry.Gauge.set t.g_pending (float_of_int (Queue.length t.queue));
    `Accepted
  end

let oldest_time t =
  match Queue.peek_opt t.queue with
  | Some (_, _, at) -> Some at
  | None -> None

let ready t ~now =
  Queue.length t.queue >= t.capacity
  ||
  match oldest_time t with
  | Some at -> now -. at >= t.timeout
  | None -> false

let next_deadline t =
  match oldest_time t with
  | Some at -> Some (at +. t.timeout)
  | None -> None

(* Option-free [next_deadline] for per-packet polling: the switch's
   [advance] calls this on every packet, and the [Some] boxes of
   [next_deadline]/[oldest_time] were measurable on the replay path. *)
let[@inline] next_deadline_or t ~default =
  if Queue.is_empty t.queue then default
  else
    let _, _, at = Queue.peek t.queue in
    at +. t.timeout

let drain t =
  let events = Queue.fold (fun acc (k, m, _) -> (k, m) :: acc) [] t.queue in
  Queue.clear t.queue;
  Hashtbl.reset t.keys;
  Telemetry.Registry.Gauge.set t.g_pending 0.;
  List.rev events
