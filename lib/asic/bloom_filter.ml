type t = {
  regs : Register_array.t;
  nbits : int;
  hashes : int;
  family : Netcore.Hashing.family;
  mutable population : int;
  c_adds : Telemetry.Registry.Counter.t;
  c_clears : Telemetry.Registry.Counter.t;
  g_fill : Telemetry.Registry.Gauge.t;
}

let create ?(seed = 0x710f) ?metrics ~bits ~hashes () =
  assert (bits > 0);
  assert (hashes >= 1 && hashes <= 16);
  let reg = match metrics with Some r -> r | None -> Telemetry.Registry.create () in
  {
    regs = Register_array.create ~name:"bloom" ~width_bits:1 ~size:bits ();
    nbits = bits;
    hashes;
    family = Netcore.Hashing.family ~seed;
    population = 0;
    c_adds = Telemetry.Registry.counter reg "bloom.adds";
    c_clears = Telemetry.Registry.counter reg "bloom.clears";
    g_fill = Telemetry.Registry.gauge reg "bloom.fill_ratio";
  }

let bits t = t.nbits
let hashes t = t.hashes

let index t i key = Netcore.Hashing.to_range (Netcore.Hashing.apply t.family i key) t.nbits

let add t key =
  for i = 0 to t.hashes - 1 do
    let idx = index t i key in
    if Register_array.read t.regs idx = 0 then begin
      Register_array.write t.regs idx 1;
      t.population <- t.population + 1
    end
  done;
  Telemetry.Registry.Counter.incr t.c_adds;
  Telemetry.Registry.Gauge.set t.g_fill
    (float_of_int t.population /. float_of_int t.nbits)

let mem t key =
  let rec probe i =
    i >= t.hashes || (Register_array.read t.regs (index t i key) = 1 && probe (i + 1))
  in
  probe 0

let clear t =
  Register_array.clear t.regs;
  t.population <- 0;
  Telemetry.Registry.Counter.incr t.c_clears;
  Telemetry.Registry.Gauge.set t.g_fill 0.

let population t = t.population

let fill_ratio t = float_of_int t.population /. float_of_int t.nbits

let false_positive_probability t = fill_ratio t ** float_of_int t.hashes

let index_bits t =
  (* bits needed to address nbits cells *)
  let rec go acc n = if n <= 1 then acc else go (acc + 1) ((n + 1) / 2) in
  go 0 t.nbits

let resources t =
  Resources.add
    (Register_array.resources t.regs)
    (Resources.make ~hash_bits:(t.hashes * index_bits t) ())
