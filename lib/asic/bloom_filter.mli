(** A Bloom filter over the ASIC's transactional register array.

    SilkRoad's TransitTable is "a simple bloom filter ... built on
    commonly available transactional memory" (§4.3): [k] hash functions
    address a bit array; insertion sets the bits in one transactional
    pass, membership tests them. There are no false negatives; false
    positives occur when every probed bit was set by other keys.

    Keys are supplied pre-hashed as 64-bit values; the filter derives its
    [k] probe indices from an internal hash family, so callers hash the
    5-tuple exactly once. *)

type t

val create : ?seed:int -> ?metrics:Telemetry.Registry.t -> bits:int -> hashes:int -> unit -> t
(** [create ~bits ~hashes ()] is an empty filter of [bits] bits (must be
    positive) probed by [hashes] functions (1..16). A 256-byte
    TransitTable is [create ~bits:2048 ~hashes:2 ()]. [?metrics] is the
    registry the filter reports through: [bloom.adds] and [bloom.clears]
    counters and a [bloom.fill_ratio] gauge. *)

val bits : t -> int
val hashes : t -> int

val add : t -> int64 -> unit
val mem : t -> int64 -> bool
val clear : t -> unit

val population : t -> int
(** Number of set bits. *)

val fill_ratio : t -> float

val false_positive_probability : t -> float
(** Probability that a fresh uniformly-hashed key would falsely hit,
    given the current fill ratio: [fill_ratio ^ hashes]. *)

val resources : t -> Resources.t
(** Underlying register-array footprint plus the hash bits consumed by
    the multi-way addressing. *)
