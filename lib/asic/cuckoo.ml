(* Flat structure-of-arrays cuckoo layout.

   One int array holds the per-slot stored digest (-1 = empty; the
   occupied marker 0 in exact mode), and two lazily-created parallel
   arrays hold the true keys and values, indexed by
   ((stage * rows + row) * ways + way). Lookups touch only the digest
   array until a match is found — cache-line friendly and free of the
   per-slot option/record boxes of the original layout (Cuckoo_boxed).

   The insert path escalates through three regimes (§4.1's switch-CPU
   insert at its real costs):
   - direct: a free way in a candidate row;
   - greedy kick: a bounded scan of the depth-1 eviction frontier —
     move one resident to its free alternative slot. The scan order
     (root stages ascending, ways ascending, victim's alternative
     stages ascending) is exactly the order the reference BFS would
     pop, so the greedy pass picks the same victim the BFS's first
     depth-1 solution would, keeping both layouts' placements
     identical;
   - BFS over eviction chains, run in a pre-allocated scratch arena
     (int queues + generation-stamped visited array) so a saturated
     table no longer allocates a queue, hashtable and chain nodes per
     insert.

   The differential suite (test_asic, test_replay) pins this module's
   placements, sizes, moves and lookups byte-identical to Cuckoo_boxed
   for identical operation sequences. *)

module type KEY = Cuckoo_intf.KEY

module Make (Key : KEY) = struct
  type key = Key.t

  type 'v hit = {
    stage : int;
    exact : bool;
    key : Key.t;
    value : 'v;
  }

  (* Keys/values can only be allocated once a first key and value are
     available, so they live behind an option set on first insert. The
     dummies blank freed slots, keeping removed entries collectable. *)
  type ('k, 'v) cells = {
    ckeys : 'k array;
    cvals : 'v array;
    cdk : 'k;
    cdv : 'v;
  }

  type 'v t = {
    seed : int;
    digest_bits : int option;
    exact_mode : bool;
    max_bfs_nodes : int;
    max_kicks : int;
    n_stages : int;
    n_rows : int;
    n_ways : int;
    codes : int array;  (** per-slot stored digest; -1 = empty (0 marks occupied in exact mode) *)
    mutable cells : (Key.t, 'v) cells option;
    (* BFS scratch arena, reused across inserts *)
    q_slot : int array;
    q_parent : int array;
    visited : int array;  (** (stage * n_rows + row) -> generation stamp *)
    mutable bfs_gen : int;
    mutable size : int;
    mutable moves : int;
    mutable failed_inserts : int;
    mutable greedy_kicks : int;
    mutable bfs_expansions : int;
    mutable last_bfs_expanded : int;
    mutable first_full_occupancy : float option;
    mutable placement_filter : (Key.t -> stage:int -> row:int -> bool) option;
  }

  let create ?(seed = 0xc0c0) ?digest_bits ?(max_bfs_nodes = 4096) ?max_kicks ~stages
      ~rows_per_stage ~ways () =
    assert (stages >= 2);
    assert (rows_per_stage > 0);
    assert (ways >= 1);
    (match digest_bits with
     | None -> ()
     | Some b -> assert (b >= 1 && b <= 30));
    let max_kicks = match max_kicks with Some k -> k | None -> stages * ways in
    let total = stages * rows_per_stage * ways in
    (* Each BFS enqueues at most [ways] nodes per newly visited row:
       bounded both by the root frontier plus (stages-1)*ways per
       expansion, and by every row being visited at most once. *)
    let arena_cap =
      Int.min total ((stages * ways) + (max_bfs_nodes * (stages - 1) * ways))
    in
    {
      seed;
      digest_bits;
      exact_mode = digest_bits = None;
      max_bfs_nodes;
      max_kicks;
      n_stages = stages;
      n_rows = rows_per_stage;
      n_ways = ways;
      codes = Array.make total (-1);
      cells = None;
      q_slot = Array.make arena_cap 0;
      q_parent = Array.make arena_cap (-1);
      visited = Array.make (stages * rows_per_stage) 0;
      bfs_gen = 0;
      size = 0;
      moves = 0;
      failed_inserts = 0;
      greedy_kicks = 0;
      bfs_expansions = 0;
      last_bfs_expanded = 0;
      first_full_occupancy = None;
      placement_filter = None;
    }

  let stages t = t.n_stages
  let rows_per_stage t = t.n_rows
  let ways t = t.n_ways
  let digest_bits t = t.digest_bits
  let capacity t = t.n_stages * t.n_rows * t.n_ways
  let size t = t.size
  let occupancy t = float_of_int t.size /. float_of_int (capacity t)
  let max_bfs_nodes t = t.max_bfs_nodes

  (* Per-stage hash functions: one for the row index, one for the digest.
     Seeds are decorrelated by distinct multipliers. *)
  let row_seed t ~stage = t.seed + (stage * 2) + 1
  let digest_seed t ~stage = t.seed + 0x5eed + (stage * 2)
  let row_of t stage k = Netcore.Hashing.to_range (Key.hash ~seed:(row_seed t ~stage) k) t.n_rows

  let digest_of t stage k =
    match t.digest_bits with
    | None -> -1
    | Some bits -> Netcore.Hashing.truncate_bits (Key.hash ~seed:(digest_seed t ~stage) k) bits

  (* The stored per-slot code: the digest, or 0 as the exact-mode
     occupied marker (empty slots store -1 in either mode). *)
  let code_of t stage k =
    match t.digest_bits with
    | None -> 0
    | Some bits -> Netcore.Hashing.truncate_bits (Key.hash ~seed:(digest_seed t ~stage) k) bits

  let probe_row t k ~stage = row_of t stage k
  let probe_digest t k ~stage = digest_of t stage k
  let[@inline] base t stage row = ((stage * t.n_rows) + row) * t.n_ways
  let[@inline] stage_of_idx t idx = idx / (t.n_rows * t.n_ways)

  let ensure_cells t k v =
    match t.cells with
    | Some c -> c
    | None ->
      let total = capacity t in
      let c = { ckeys = Array.make total k; cvals = Array.make total v; cdk = k; cdv = v } in
      t.cells <- Some c;
      c

  let cells_exn t =
    match t.cells with
    | Some c -> c
    | None -> assert false

  type 'v probe = {
    mutable probe_hit : bool;
    mutable probe_exact : bool;
    mutable probe_stage : int;
    mutable probe_value : 'v;
  }

  let make_probe v = { probe_hit = false; probe_exact = false; probe_stage = 0; probe_value = v }

  (* [lookup] without the hit record: results land in a caller-owned
     probe buffer, so the hardware fast path allocates nothing. *)
  let lookup_into t k (p : 'v probe) =
    p.probe_hit <- false;
    match t.cells with
    | None -> ()
    | Some c ->
      let rec by_stage stage =
        if stage < t.n_stages then begin
          let b = base t stage (row_of t stage k) in
          let code = code_of t stage k in
          let rec by_way way =
            if way >= t.n_ways then by_stage (stage + 1)
            else
              let i = b + way in
              let stored = Array.unsafe_get t.codes i in
              if
                if t.exact_mode then stored >= 0 && Key.equal (Array.unsafe_get c.ckeys i) k
                else stored = code
              then begin
                p.probe_hit <- true;
                p.probe_exact <- Key.equal (Array.unsafe_get c.ckeys i) k;
                p.probe_stage <- stage;
                p.probe_value <- Array.unsafe_get c.cvals i
              end
              else by_way (way + 1)
          in
          by_way 0
        end
      in
      by_stage 0

  (* As [lookup_into], with the per-stage probe rows/digests precomputed
     by the caller: inside the functor [Key.hash] is an opaque closure
     call that boxes its int64 result on every invocation, so hot paths
     whose key module has an inlinable hash compute the positions
     themselves (via [row_seed]/[digest_seed]) and skip it. *)
  let lookup_pos_into t ~key:k ~(rows : int array) ~(digests : int array) (p : 'v probe) =
    p.probe_hit <- false;
    match t.cells with
    | None -> ()
    | Some c ->
      let rec by_stage stage =
        if stage < t.n_stages then begin
          let b = base t stage (Array.unsafe_get rows stage) in
          let code = Array.unsafe_get digests stage in
          let rec by_way way =
            if way >= t.n_ways then by_stage (stage + 1)
            else
              let i = b + way in
              let stored = Array.unsafe_get t.codes i in
              if
                if t.exact_mode then stored >= 0 && Key.equal (Array.unsafe_get c.ckeys i) k
                else stored = code
              then begin
                p.probe_hit <- true;
                p.probe_exact <- Key.equal (Array.unsafe_get c.ckeys i) k;
                p.probe_stage <- stage;
                p.probe_value <- Array.unsafe_get c.cvals i
              end
              else by_way (way + 1)
          in
          by_way 0
        end
      in
      by_stage 0

  let lookup t k =
    match t.cells with
    | None -> None
    | Some c ->
      let rec by_stage stage =
        if stage >= t.n_stages then None
        else
          let b = base t stage (row_of t stage k) in
          let code = code_of t stage k in
          let rec by_way way =
            if way >= t.n_ways then by_stage (stage + 1)
            else
              let i = b + way in
              let stored = t.codes.(i) in
              if
                if t.exact_mode then stored >= 0 && Key.equal c.ckeys.(i) k else stored = code
              then
                Some
                  ({
                     stage;
                     exact = Key.equal c.ckeys.(i) k;
                     key = c.ckeys.(i);
                     value = c.cvals.(i);
                   }
                    : _ hit)
              else by_way (way + 1)
          in
          by_way 0
      in
      by_stage 0

  (* Software-side scan by true key: the entry for [k] can only sit in one
     of its candidate rows. Returns the slot index, or -1. *)
  let locate_exact_idx t k =
    match t.cells with
    | None -> -1
    | Some c ->
      let rec by_stage stage =
        if stage >= t.n_stages then -1
        else
          let b = base t stage (row_of t stage k) in
          let rec by_way way =
            if way >= t.n_ways then by_stage (stage + 1)
            else
              let i = b + way in
              if t.codes.(i) >= 0 && Key.equal c.ckeys.(i) k then i else by_way (way + 1)
          in
          by_way 0
      in
      by_stage 0

  let find_exact t k =
    let idx = locate_exact_idx t k in
    if idx < 0 then None else Some (cells_exn t).cvals.(idx)

  let mem_exact t k = locate_exact_idx t k >= 0

  let stage_of_exact t k =
    let idx = locate_exact_idx t k in
    if idx < 0 then None else Some (stage_of_idx t idx)

  let placement_allowed t key stage row =
    match t.placement_filter with
    | None -> true
    | Some f -> f key ~stage ~row

  (* First free way of the row, or -1. *)
  let free_way_i t stage row =
    let b = base t stage row in
    let rec go way = if way >= t.n_ways then -1 else if t.codes.(b + way) < 0 then way else go (way + 1) in
    go 0

  let place t c idx stage k v =
    t.codes.(idx) <- code_of t stage k;
    c.ckeys.(idx) <- k;
    c.cvals.(idx) <- v

  let clear_slot t c idx =
    t.codes.(idx) <- -1;
    c.ckeys.(idx) <- c.cdk;
    c.cvals.(idx) <- c.cdv

  (* Greedy depth-1 kick: scan the eviction frontier in exactly the
     order the BFS would pop it (root stages ascending, ways ascending,
     the victim's alternative stages ascending) and move the first
     resident that has a free alternative slot. Bounded by [max_kicks]
     examined victims; on budget exhaustion the BFS below re-derives the
     same (or a deeper) solution, so the bound never changes placement
     outcomes — only how cheaply they are found. *)
  exception Kick of int * int
  (* victim slot index, destination free slot index *)

  let greedy_pass t (c : _ cells) ~allowed_root_stage k =
    let examined = ref 0 in
    try
      let stage = ref 0 in
      while !stage < t.n_stages do
        let s = !stage in
        if allowed_root_stage s then begin
          let row = row_of t s k in
          if placement_allowed t k s row then begin
            let b = base t s row in
            for way = 0 to t.n_ways - 1 do
              if !examined < t.max_kicks then begin
                incr examined;
                let vk = c.ckeys.(b + way) in
                for s2 = 0 to t.n_stages - 1 do
                  if s2 <> s then begin
                    let row2 = row_of t s2 vk in
                    if placement_allowed t vk s2 row2 then begin
                      let w2 = free_way_i t s2 row2 in
                      if w2 >= 0 then raise (Kick (b + way, base t s2 row2 + w2))
                    end
                  end
                done
              end
            done
          end
        end;
        incr stage
      done;
      (-1, -1)
    with Kick (v, d) -> (v, d)

  exception Found_free of int * int
  (* free slot index and the arena node whose occupant moves into it *)

  (* BFS over eviction chains, in the pre-allocated scratch arena:
     [q_slot]/[q_parent] are the queue and the eviction tree (parent -1 =
     a root, i.e. a candidate slot of [k] itself); [visited] uses
     generation stamps so no per-insert clearing is needed. Traversal
     order is identical to the reference implementation's queue-and-
     hashtable BFS. *)
  let bfs_insert t (c : _ cells) ~allowed_root_stage k v =
    t.bfs_gen <- t.bfs_gen + 1;
    let gen = t.bfs_gen in
    let head = ref 0 and tail = ref 0 in
    let enqueue slot parent =
      t.q_slot.(!tail) <- slot;
      t.q_parent.(!tail) <- parent;
      incr tail
    in
    for stage = 0 to t.n_stages - 1 do
      let row = row_of t stage k in
      if allowed_root_stage stage && placement_allowed t k stage row then begin
        let vi = (stage * t.n_rows) + row in
        if t.visited.(vi) <> gen then begin
          t.visited.(vi) <- gen;
          for way = 0 to t.n_ways - 1 do
            enqueue (base t stage row + way) (-1)
          done
        end
      end
    done;
    let expanded = ref 0 in
    let result =
      try
        while !head < !tail && !expanded < t.max_bfs_nodes do
          let node = !head in
          incr head;
          incr expanded;
          let vidx = t.q_slot.(node) in
          (* Roots were full by construction and no moves happen during
             the search, so every queued slot is still occupied. *)
          assert (t.codes.(vidx) >= 0);
          let vk = c.ckeys.(vidx) in
          let ns = stage_of_idx t vidx in
          (* The occupant may move to its candidate row in any other stage. *)
          for stage = 0 to t.n_stages - 1 do
            if stage <> ns then begin
              let row = row_of t stage vk in
              if placement_allowed t vk stage row then begin
                let w = free_way_i t stage row in
                if w >= 0 then raise (Found_free (base t stage row + w, node))
                else begin
                  let vi = (stage * t.n_rows) + row in
                  if t.visited.(vi) <> gen then begin
                    t.visited.(vi) <- gen;
                    for way = 0 to t.n_ways - 1 do
                      enqueue (base t stage row + way) node
                    done
                  end
                end
              end
            end
          done
        done;
        t.failed_inserts <- t.failed_inserts + 1;
        if t.first_full_occupancy = None then t.first_full_occupancy <- Some (occupancy t);
        Error `Full
      with Found_free (free_idx, last) ->
        (* Unwind the eviction chain leaf-to-root: each occupant moves
           into the slot freed by its successor; the root slot freed last
           is a candidate slot of [k]. *)
        let rec unwind free_idx node moves =
          if node < 0 then begin
            place t c free_idx (stage_of_idx t free_idx) k v;
            moves
          end
          else begin
            let vidx = t.q_slot.(node) in
            let mk = c.ckeys.(vidx) and mv = c.cvals.(vidx) in
            place t c free_idx (stage_of_idx t free_idx) mk mv;
            clear_slot t c vidx;
            unwind vidx t.q_parent.(node) (moves + 1)
          end
        in
        let moves = unwind free_idx last 0 in
        t.moves <- t.moves + moves;
        t.size <- t.size + 1;
        Ok moves
    in
    t.bfs_expansions <- t.bfs_expansions + !expanded;
    t.last_bfs_expanded <- !expanded;
    result

  let insert_kv t ~allowed_root_stage k v =
    let c = ensure_cells t k v in
    (* Direct: a free slot in one of the candidate rows. *)
    let rec direct stage =
      if stage >= t.n_stages then -1
      else if not (allowed_root_stage stage) then direct (stage + 1)
      else
        let row = row_of t stage k in
        if not (placement_allowed t k stage row) then direct (stage + 1)
        else
          let w = free_way_i t stage row in
          if w >= 0 then base t stage row + w else direct (stage + 1)
    in
    let idx = direct 0 in
    if idx >= 0 then begin
      place t c idx (stage_of_idx t idx) k v;
      t.size <- t.size + 1;
      Ok 0
    end
    else
      let vidx, dest = greedy_pass t c ~allowed_root_stage k in
      if vidx >= 0 then begin
        let mk = c.ckeys.(vidx) and mv = c.cvals.(vidx) in
        place t c dest (stage_of_idx t dest) mk mv;
        place t c vidx (stage_of_idx t vidx) k v;
        t.moves <- t.moves + 1;
        t.greedy_kicks <- t.greedy_kicks + 1;
        t.size <- t.size + 1;
        Ok 1
      end
      else bfs_insert t c ~allowed_root_stage k v

  let insert ?(forbid_stages = []) t k v =
    if mem_exact t k then Error `Duplicate
    else
      let allowed stage = not (List.mem stage forbid_stages) in
      insert_kv t ~allowed_root_stage:allowed k v

  let remove t k =
    let idx = locate_exact_idx t k in
    if idx < 0 then false
    else begin
      clear_slot t (cells_exn t) idx;
      t.size <- t.size - 1;
      true
    end

  let set_exact t k v =
    let idx = locate_exact_idx t k in
    if idx < 0 then false
    else begin
      (cells_exn t).cvals.(idx) <- v;
      true
    end

  let relocate t k ~forbid_stages =
    let idx = locate_exact_idx t k in
    if idx < 0 then Error `Not_found
    else
      let stage = stage_of_idx t idx in
      if List.mem stage forbid_stages then begin
        let c = cells_exn t in
        let v = c.cvals.(idx) in
        let code = t.codes.(idx) in
        clear_slot t c idx;
        t.size <- t.size - 1;
        let allowed s = not (List.mem s forbid_stages) in
        match insert_kv t ~allowed_root_stage:allowed k v with
        | Ok moves -> Ok (moves + 1)
        | Error `Full ->
          (* Roll back so the table is unchanged on failure. *)
          t.codes.(idx) <- code;
          c.ckeys.(idx) <- k;
          c.cvals.(idx) <- v;
          t.size <- t.size + 1;
          Error `Full
      end
      else Ok 0

  let iter f t =
    match t.cells with
    | None -> ()
    | Some c ->
      for i = 0 to Array.length t.codes - 1 do
        if t.codes.(i) >= 0 then f c.ckeys.(i) c.cvals.(i)
      done

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let moves t = t.moves
  let failed_inserts t = t.failed_inserts
  let greedy_kicks t = t.greedy_kicks
  let bfs_expansions t = t.bfs_expansions
  let last_bfs_expanded t = t.last_bfs_expanded
  let first_full_occupancy t = t.first_full_occupancy

  let probe_positions t k =
    List.init t.n_stages (fun stage -> (stage, row_of t stage k, digest_of t stage k))

  let set_placement_filter t f = t.placement_filter <- f
end
