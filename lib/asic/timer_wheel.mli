(** A hashed timing wheel for entry aging.

    Hardware tables age entries with coarse-grained timers rather than
    per-entry scans; this wheel gives the control plane the same O(1)
    schedule/advance behaviour. Keys are scheduled at absolute deadlines
    and delivered (at wheel granularity) by {!advance}; re-scheduling a
    key replaces its previous deadline, so the lazy-refresh idiom —
    schedule once, verify staleness on expiry, reschedule if the entry
    saw traffic — costs one wheel operation per timeout rather than one
    per packet. *)

type 'k t

val create : granularity:float -> slots:int -> unit -> 'k t
(** A wheel spanning [granularity *. slots] seconds; deadlines further
    out than one revolution are handled correctly (they survive
    intermediate passes). [granularity > 0], [slots >= 2]. *)

val schedule : 'k t -> key:'k -> at:float -> unit
(** (Re)schedule [key] to fire at absolute time [at]. *)

val cancel : 'k t -> key:'k -> unit
val mem : 'k t -> key:'k -> bool
val scheduled : 'k t -> int

val advance : 'k t -> now:float -> 'k list
(** All keys whose deadline lies in a tick that has completed by [now],
    in deadline order; they are removed from the wheel. Delivery is at
    wheel precision: a key scheduled at [at] fires on the first call
    with [now >= (floor (at / granularity) + 1) * granularity], i.e. up
    to one granularity late. Calls that do not cross a tick boundary
    are O(1) and allocation-free — [advance] is safe to call per
    packet. *)
