(** Multi-stage cuckoo exact-match tables.

    Modern switching ASICs implement large exact-match tables as cuckoo
    hash tables spread over several physical pipeline stages (§4.1). Each
    stage has its own hash function addressing rows of [ways] slots
    (word packing puts the [ways] entries of a row in one SRAM word).
    Lookup probes one row per stage at line rate; insertion is performed
    by the switch CPU, which runs a breadth-first search over eviction
    chains to make room ("a sequence of moves").

    Two matching modes are supported:

    - {b exact}: the full key is stored and compared — no false hits;
    - {b digest} ([digest_bits = Some b]): only a per-stage [b]-bit hash
      digest of the key is stored and compared, the compression at the
      heart of SilkRoad's ConnTable (§4.2). Lookups can then falsely hit
      an entry whose digest collides; software-side functions
      ({!find_exact}, {!remove}, {!relocate}) always use the true key,
      which the switch software keeps in its shadow copy.

    The table never resizes: when the BFS cannot free a slot the insert
    fails with [`Full], which is exactly the "ConnTable is full" overflow
    condition §7 discusses. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : seed:int -> t -> int64
end

module Make (Key : KEY) : sig
  type 'v t

  type 'v hit = {
    stage : int;  (** stage of the matching entry *)
    exact : bool;  (** false when the hit is a digest false positive *)
    key : Key.t;  (** the true key of the matched entry *)
    value : 'v;
  }

  val create :
    ?seed:int ->
    ?digest_bits:int ->
    ?max_bfs_nodes:int ->
    stages:int ->
    rows_per_stage:int ->
    ways:int ->
    unit ->
    'v t

  val stages : _ t -> int
  val rows_per_stage : _ t -> int
  val ways : _ t -> int
  val digest_bits : _ t -> int option
  val capacity : _ t -> int
  val size : _ t -> int
  val occupancy : _ t -> float

  val lookup : 'v t -> Key.t -> 'v hit option
  (** Hardware lookup: probes stages in pipeline order and returns the
      first slot whose stored key (digest or full key) matches. *)

  type 'v probe = {
    mutable probe_hit : bool;
    mutable probe_exact : bool;
    mutable probe_stage : int;
    mutable probe_value : 'v;
  }
  (** Caller-owned result buffer for {!lookup_into}: the replay fast
      path reuses one per table instead of allocating a hit record per
      packet. Fields other than [probe_hit] are meaningful only when
      [probe_hit] is true. *)

  val make_probe : 'v -> 'v probe
  (** A fresh buffer; the argument is a placeholder value. *)

  val lookup_into : 'v t -> Key.t -> 'v probe -> unit
  (** Allocation-free {!lookup}: probes the same slots in the same order
      and writes the outcome into the buffer. *)

  val find_exact : 'v t -> Key.t -> 'v option
  (** Software lookup by true key. *)

  val mem_exact : _ t -> Key.t -> bool

  val insert :
    ?forbid_stages:int list -> 'v t -> Key.t -> 'v -> (int, [ `Full | `Duplicate ]) result
  (** [insert t k v] places [k] using BFS eviction; [Ok moves] reports
      how many existing entries were moved. [forbid_stages] restricts
      only where [k] itself lands (entries displaced along the eviction
      chain may go anywhere). [`Duplicate] if [k] is already present. *)

  val remove : 'v t -> Key.t -> bool
  (** Remove by true key. Returns false when absent. *)

  val set_exact : 'v t -> Key.t -> 'v -> bool
  (** Update the value of an existing entry in place. *)

  val relocate : 'v t -> Key.t -> forbid_stages:int list -> (int, [ `Full | `Not_found ]) result
  (** Move an existing entry so that it no longer occupies any of
      [forbid_stages]. Used to repair digest false positives (§4.2):
      the colliding resident entry is migrated to another stage, whose
      different hash function separates the two connections. *)

  val iter : (Key.t -> 'v -> unit) -> 'v t -> unit
  val fold : (Key.t -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a

  val moves : _ t -> int
  (** Cumulative entry moves performed by insertions/relocations. *)

  val failed_inserts : _ t -> int

  val stage_of_exact : _ t -> Key.t -> int option
  (** Which stage holds the entry with this true key, if any. *)

  val probe_positions : _ t -> Key.t -> (int * int * int) list
  (** [(stage, row, digest)] triples the hardware probes when looking up
      this key — one per stage ([digest] is [-1] in exact mode). Lets the
      switch software maintain a shadow index of which table positions
      each tracked connection would match. *)

  val set_placement_filter : 'v t -> (Key.t -> stage:int -> row:int -> bool) option -> unit
  (** Software veto over entry placement: when set, an entry for [key]
      may only be placed (by insertion, eviction moves or relocation) in
      a row where the filter returns [true]. Used to refuse positions
      that would make an existing connection falsely match the new
      entry (digest shadowing). *)
end
