(** Multi-stage cuckoo exact-match tables — flat SoA layout.

    Modern switching ASICs implement large exact-match tables as cuckoo
    hash tables spread over several physical pipeline stages (§4.1). Each
    stage has its own hash function addressing rows of [ways] slots
    (word packing puts the [ways] entries of a row in one SRAM word).
    Lookup probes one row per stage at line rate; insertion is performed
    by the switch CPU, which first tries a bounded greedy kick of the
    depth-1 eviction frontier and then runs a breadth-first search over
    eviction chains to make room ("a sequence of moves").

    This implementation stores the table as flat parallel arrays —
    per-slot digests in one int array, true keys and values in two
    lazily-created companion arrays — mirroring how the hardware packs a
    row's [ways] digests into one SRAM word, and runs the BFS in a
    pre-allocated scratch arena so inserts allocate nothing. The
    original per-slot boxed layout survives as {!Cuckoo_boxed}, pinned
    placement-identical by the differential suite.

    Two matching modes are supported:

    - {b exact}: the full key is stored and compared — no false hits;
    - {b digest} ([digest_bits = Some b]): only a per-stage [b]-bit hash
      digest of the key is stored and compared, the compression at the
      heart of SilkRoad's ConnTable (§4.2). Lookups can then falsely hit
      an entry whose digest collides; software-side functions
      ({!Cuckoo_intf.S.find_exact}, {!Cuckoo_intf.S.remove},
      {!Cuckoo_intf.S.relocate}) always use the true key, which the
      switch software keeps in its shadow copy.

    The table never resizes: when the BFS cannot free a slot the insert
    fails with [`Full], which is exactly the "ConnTable is full" overflow
    condition §7 discusses. *)

module type KEY = Cuckoo_intf.KEY

module Make (Key : KEY) : Cuckoo_intf.S with type key = Key.t
