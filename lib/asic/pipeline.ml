type resource_class =
  | Crossbar
  | Sram
  | Tcam
  | Vliw
  | Hash
  | Salu
  | Phv

let class_name = function
  | Crossbar -> "match-crossbar"
  | Sram -> "sram"
  | Tcam -> "tcam"
  | Vliw -> "vliw-actions"
  | Hash -> "hash-bits"
  | Salu -> "stateful-alus"
  | Phv -> "phv"

(* the per-stage classes, in the order failures are reported *)
let stage_classes = [ Crossbar; Sram; Tcam; Vliw; Hash; Salu ]

let get (r : Resources.t) = function
  | Crossbar -> r.Resources.match_crossbar_bits
  | Sram -> r.Resources.sram_bits
  | Tcam -> r.Resources.tcam_bits
  | Vliw -> r.Resources.vliw_actions
  | Hash -> r.Resources.hash_bits
  | Salu -> r.Resources.stateful_alus
  | Phv -> r.Resources.phv_bits

type chip = {
  chip_name : string;
  n_stages : int;
  stage_budget : Resources.t;
  chip_phv_bits : int;
  baseline : Resources.t;
}

let tofino_like ~baseline =
  {
    chip_name = "tofino-like (12 stages, 75 MB SRAM)";
    n_stages = 12;
    stage_budget =
      Resources.make ~match_crossbar_bits:640 ~sram_bits:(48 * 1024 * 1024)
        ~tcam_bits:(512 * 1024) ~vliw_actions:16 ~hash_bits:192 ~stateful_alus:4 ();
    chip_phv_bits = 6400;
    baseline;
  }

type item = {
  item_name : string;
  needs : Resources.t;
  after : string list;
  divisible : bool;
}

let item ?(after = []) ?(divisible = false) ~name needs =
  { item_name = name; needs; after; divisible }

let item_of_table ?after ?divisible (spec : Table_spec.t) =
  item ?after ?divisible ~name:spec.Table_spec.name (Table_spec.resources spec)

type failure = {
  failed_item : string;
  failed_class : resource_class option;
  needed : int;
  available : int;
  at_stage : int option;
  spread : bool;
}

type placement = {
  placed : item;
  first_stage : int;
  last_stage : int;
}

type report = {
  chip : chip;
  items : item list;
  placements : placement list;
  per_stage : Resources.t array;
  total_additional : Resources.t;
  phv_used : int;
  failure : failure option;
}

let ceil_div a b = (a + b - 1) / b

(* the baseline program's per-stage share, rounded up so the model errs
   toward caution *)
let baseline_share chip =
  let n = chip.n_stages in
  let b = chip.baseline in
  Resources.make
    ~match_crossbar_bits:(ceil_div b.Resources.match_crossbar_bits n)
    ~sram_bits:(ceil_div b.Resources.sram_bits n)
    ~tcam_bits:(ceil_div b.Resources.tcam_bits n)
    ~vliw_actions:(ceil_div b.Resources.vliw_actions n)
    ~hash_bits:(ceil_div b.Resources.hash_bits n)
    ~stateful_alus:(ceil_div b.Resources.stateful_alus n)
    ()

(* charge [amount] of class [c] to stage [s] *)
let charge per_stage s c amount =
  let r = per_stage.(s) in
  per_stage.(s) <-
    (match c with
     | Crossbar -> { r with Resources.match_crossbar_bits = r.Resources.match_crossbar_bits + amount }
     | Sram -> { r with Resources.sram_bits = r.Resources.sram_bits + amount }
     | Tcam -> { r with Resources.tcam_bits = r.Resources.tcam_bits + amount }
     | Vliw -> { r with Resources.vliw_actions = r.Resources.vliw_actions + amount }
     | Hash -> { r with Resources.hash_bits = r.Resources.hash_bits + amount }
     | Salu -> { r with Resources.stateful_alus = r.Resources.stateful_alus + amount }
     | Phv -> r)

let free chip per_stage s c = get chip.stage_budget c - get per_stage.(s) c

let allocate chip items =
  let n = chip.n_stages in
  if n <= 0 then invalid_arg "Pipeline.allocate: chip has no stages";
  let share = baseline_share chip in
  List.iter
    (fun c ->
      if get share c > get chip.stage_budget c then
        invalid_arg
          (Printf.sprintf "Pipeline.allocate: baseline alone overflows per-stage %s budget"
             (class_name c)))
    stage_classes;
  let per_stage = Array.make n share in
  let placements = ref [] in
  let placed_last : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let failure = ref None in
  (* the stage an item may start in, one past its deepest dependency *)
  let min_stage it =
    List.fold_left
      (fun acc dep ->
        match Hashtbl.find_opt placed_last dep with
        | Some s -> Int.max acc (s + 1)
        | None ->
          invalid_arg
            (Printf.sprintf "Pipeline.allocate: %s depends on %s, which is not placed before it"
               it.item_name dep))
      0 it.after
  in
  (* can stage [s] take the whole of [needs]' per-stage classes? *)
  let fits_whole s needs = List.for_all (fun c -> get needs c <= free chip per_stage s c) stage_classes in
  (* which class can never fit, even in a stage holding only the
     baseline? (per-stage classes only) *)
  let impossible_class needs =
    List.find_opt (fun c -> get needs c > get chip.stage_budget c - get share c) stage_classes
  in
  let fail it = function
    | Some c ->
      failure :=
        Some
          {
            failed_item = it.item_name;
            failed_class = Some c;
            needed = get it.needs c;
            available = get chip.stage_budget c - get share c;
            at_stage = None;
            spread = false;
          }
    | None ->
      failure :=
        Some
          { failed_item = it.item_name; failed_class = None; needed = 1; available = 0;
            at_stage = Some (n - 1); spread = false }
  in
  let place_indivisible it =
    let lo = min_stage it in
    let rec go s =
      if s >= n then begin
        fail it (impossible_class it.needs);
        false
      end
      else if fits_whole s it.needs then begin
        List.iter (fun c -> charge per_stage s c (get it.needs c)) stage_classes;
        placements := { placed = it; first_stage = s; last_stage = s } :: !placements;
        Hashtbl.replace placed_last it.item_name s;
        true
      end
      else go (s + 1)
    in
    go lo
  in
  (* A divisible item spreads its SRAM over as many stages as needed.
     Its match key is matched against every occupied stage's partition
     (crossbar charged per stage); actions, hashing and stateful ALUs
     execute once (charged in the first occupied stage). *)
  let place_divisible it =
    let first_cost = { it.needs with Resources.sram_bits = 0 } in
    let later_cost =
      Resources.make ~match_crossbar_bits:it.needs.Resources.match_crossbar_bits ()
    in
    let lo = min_stage it in
    let remaining = ref it.needs.Resources.sram_bits in
    let first = ref None in
    let last = ref (-1) in
    let s = ref lo in
    let ok = ref true in
    let finished () = !first <> None && !remaining = 0 in
    while (not (finished ())) && !ok do
      if !s >= n then ok := false
      else begin
        let head = !first = None in
        let cost = if head then first_cost else later_cost in
        let sram_room = free chip per_stage !s Sram in
        let take = Int.min !remaining (Int.max 0 sram_room) in
        (* occupy this stage if its fixed costs fit and it contributes
           (head stages may contribute zero SRAM: small tables) *)
        if fits_whole !s cost && (take > 0 || (head && !remaining = 0)) then begin
          List.iter (fun c -> charge per_stage !s c (get cost c)) stage_classes;
          charge per_stage !s Sram take;
          remaining := !remaining - take;
          if head then first := Some !s;
          last := !s
        end;
        incr s
      end
    done;
    if finished () then begin
      let f = Option.get !first in
      placements := { placed = it; first_stage = f; last_stage = !last } :: !placements;
      Hashtbl.replace placed_last it.item_name !last;
      true
    end
    else begin
      (match impossible_class first_cost with
       | Some c -> fail it (Some c)
       | None ->
         (* per-stage costs fit somewhere: SRAM (or stages) ran out *)
         let total_free =
           let acc = ref 0 in
           for st = Int.max lo 0 to n - 1 do
             acc := !acc + Int.max 0 (free chip per_stage st Sram)
           done;
           !acc
         in
         (* [total_free] is what is left after this item's partial
            placement; add back what it grabbed to report the free SRAM
            it actually saw *)
         let free_before = total_free + (it.needs.Resources.sram_bits - !remaining) in
         if !remaining > 0 && it.needs.Resources.sram_bits > free_before then
           failure :=
             Some
               { failed_item = it.item_name; failed_class = Some Sram;
                 needed = it.needs.Resources.sram_bits;
                 available = free_before;
                 at_stage = None; spread = true }
         else fail it None);
      false
    end
  in
  (try
     List.iter
       (fun it ->
         let placed = if it.divisible then place_divisible it else place_indivisible it in
         if not placed then raise Exit)
       items
   with Exit -> ());
  let total_additional = Resources.sum (List.map (fun it -> it.needs) items) in
  let phv_used = chip.baseline.Resources.phv_bits + total_additional.Resources.phv_bits in
  (* chip-wide PHV: checked even when staging succeeded *)
  (match !failure with
   | Some _ -> ()
   | None ->
     if phv_used > chip.chip_phv_bits then
       failure :=
         Some
           {
             failed_item = "metadata (chip-wide PHV)";
             failed_class = Some Phv;
             needed = phv_used;
             available = chip.chip_phv_bits;
             at_stage = None;
             spread = true;
           });
  {
    chip;
    items;
    placements = List.rev !placements;
    per_stage;
    total_additional;
    phv_used;
    failure = !failure;
  }

let is_feasible r = r.failure = None

let stage_utilization r ~stage =
  if stage < 0 || stage >= Array.length r.per_stage then
    invalid_arg "Pipeline.stage_utilization: no such stage";
  let budget = { r.chip.stage_budget with Resources.phv_bits = r.chip.chip_phv_bits } in
  let used = { r.per_stage.(stage) with Resources.phv_bits = r.phv_used } in
  Resources.relative_to ~base:budget used

let pp_failure ppf f =
  match f.failed_class with
  | Some Phv ->
    Format.fprintf ppf "%s: needs %d PHV bits chip-wide, budget %d" f.failed_item f.needed
      f.available
  | Some c ->
    let unit = match c with Sram | Tcam | Crossbar | Hash -> " bits" | _ -> "" in
    if f.spread then
      Format.fprintf ppf "%s: needs %d %s%s, %d free across the pipeline" f.failed_item
        f.needed (class_name c) unit f.available
    else
      Format.fprintf ppf "%s: needs %d %s%s, at most %d available in any stage" f.failed_item
        f.needed (class_name c) unit f.available
  | None ->
    Format.fprintf ppf "%s: no stage left to place it (%d-stage chip exhausted)" f.failed_item
      (match f.at_stage with Some s -> s + 1 | None -> 0)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>pipeline on %s:@," r.chip.chip_name;
  List.iter
    (fun p ->
      if p.first_stage = p.last_stage then
        Format.fprintf ppf "  %-14s stage %d@," p.placed.item_name p.first_stage
      else
        Format.fprintf ppf "  %-14s stages %d-%d@," p.placed.item_name p.first_stage p.last_stage)
    r.placements;
  Array.iteri
    (fun i used ->
      let b = r.chip.stage_budget in
      Format.fprintf ppf "  stage %2d: xbar %d/%d  sram %.1f/%.1f Mb  vliw %d/%d  hash %d/%d  salu %d/%d@,"
        i used.Resources.match_crossbar_bits b.Resources.match_crossbar_bits
        (float_of_int used.Resources.sram_bits /. 1e6)
        (float_of_int b.Resources.sram_bits /. 1e6)
        used.Resources.vliw_actions b.Resources.vliw_actions used.Resources.hash_bits
        b.Resources.hash_bits used.Resources.stateful_alus b.Resources.stateful_alus)
    r.per_stage;
  Format.fprintf ppf "  phv (chip): %d/%d bits@," r.phv_used r.chip.chip_phv_bits;
  (match r.failure with
   | None -> Format.fprintf ppf "  feasible@,"
   | Some f -> Format.fprintf ppf "  INFEASIBLE: %a@," pp_failure f);
  Format.fprintf ppf "@]"
