(** The original per-slot boxed-record cuckoo table layout.

    Kept as the semantic reference for {!Cuckoo} (the flat
    structure-of-arrays layout): the differential suite runs identical
    operation sequences through both and demands identical placements,
    sizes, moves and lookups. Its insert path is the plain eviction-chain
    BFS with per-insert queue/visited allocation — the behaviour the flat
    layout's greedy-kick + scratch-arena path must reproduce exactly. *)

module type KEY = Cuckoo_intf.KEY

module Make (Key : KEY) : Cuckoo_intf.S with type key = Key.t
