(** Shared signature for the multi-stage cuckoo exact-match tables.

    Two implementations satisfy {!S}: {!Cuckoo.Make}, the flat
    structure-of-arrays layout used in production, and
    {!Cuckoo_boxed.Make}, the original per-slot boxed-record layout kept
    as the differential-testing reference. Both implement the same §4.1
    hardware model — per-stage hash functions addressing rows of [ways]
    slots, line-rate lookups, switch-CPU inserts via eviction chains —
    and are required by the test suite to make {e identical} placement
    decisions for identical operation sequences. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : seed:int -> t -> int64
end

module type S = sig
  type key
  type 'v t

  type 'v hit = {
    stage : int;  (** stage of the matching entry *)
    exact : bool;  (** false when the hit is a digest false positive *)
    key : key;  (** the true key of the matched entry *)
    value : 'v;
  }

  val create :
    ?seed:int ->
    ?digest_bits:int ->
    ?max_bfs_nodes:int ->
    ?max_kicks:int ->
    stages:int ->
    rows_per_stage:int ->
    ways:int ->
    unit ->
    'v t
  (** [max_bfs_nodes] bounds the eviction-chain BFS (default 4096
      expansions); [max_kicks] bounds the greedy depth-1 kick pass that
      runs before the BFS (default [stages * ways], i.e. the whole
      depth-1 frontier — implementations without a kick pass ignore
      it). *)

  val stages : _ t -> int
  val rows_per_stage : _ t -> int
  val ways : _ t -> int
  val digest_bits : _ t -> int option
  val capacity : _ t -> int
  val size : _ t -> int
  val occupancy : _ t -> float

  val max_bfs_nodes : _ t -> int
  (** The BFS expansion bound this table was created with. *)

  val lookup : 'v t -> key -> 'v hit option
  (** Hardware lookup: probes stages in pipeline order and returns the
      first slot whose stored key (digest or full key) matches. *)

  type 'v probe = {
    mutable probe_hit : bool;
    mutable probe_exact : bool;
    mutable probe_stage : int;
    mutable probe_value : 'v;
  }
  (** Caller-owned result buffer for {!lookup_into}: the replay fast
      path reuses one per table instead of allocating a hit record per
      packet. Fields other than [probe_hit] are meaningful only when
      [probe_hit] is true. *)

  val make_probe : 'v -> 'v probe
  (** A fresh buffer; the argument is a placeholder value. *)

  val lookup_into : 'v t -> key -> 'v probe -> unit
  (** Allocation-free {!lookup}: probes the same slots in the same order
      and writes the outcome into the buffer. *)

  val row_seed : _ t -> stage:int -> int
  (** Seed for the stage's row-index hash: callers whose key module has
      a directly inlinable hash can compute
      [Hashing.to_range (hash ~seed k) rows_per_stage] themselves and
      feed the result to {!lookup_pos_into}, bypassing the functorised
      (non-inlinable) [Key.hash] call. *)

  val digest_seed : _ t -> stage:int -> int
  (** Seed for the stage's digest hash; the digest is
      [Hashing.truncate_bits (hash ~seed k) digest_bits]. *)

  val probe_row : _ t -> key -> stage:int -> int
  (** Row the hardware probes for this key at [stage]. *)

  val probe_digest : _ t -> key -> stage:int -> int
  (** Digest stored/compared for this key at [stage]; [-1] in exact
      mode. *)

  val lookup_pos_into :
    'v t -> key:key -> rows:int array -> digests:int array -> 'v probe -> unit
  (** {!lookup_into} with caller-precomputed probe positions:
      [rows.(stage)] and [digests.(stage)] must equal
      [probe_row]/[probe_digest] for [key] (computed via
      {!row_seed}/{!digest_seed}). Probes the same slots in the same
      order as {!lookup_into}; [digests] is ignored in exact mode. *)

  val find_exact : 'v t -> key -> 'v option
  (** Software lookup by true key. *)

  val mem_exact : _ t -> key -> bool

  val insert :
    ?forbid_stages:int list -> 'v t -> key -> 'v -> (int, [ `Full | `Duplicate ]) result
  (** [insert t k v] places [k], evicting residents as needed — first a
      bounded greedy depth-1 kick pass, then the BFS over eviction
      chains; [Ok moves] reports how many existing entries were moved.
      [forbid_stages] restricts only where [k] itself lands (entries
      displaced along the eviction chain may go anywhere). [`Duplicate]
      if [k] is already present. *)

  val remove : 'v t -> key -> bool
  (** Remove by true key. Returns false when absent. *)

  val set_exact : 'v t -> key -> 'v -> bool
  (** Update the value of an existing entry in place. *)

  val relocate : 'v t -> key -> forbid_stages:int list -> (int, [ `Full | `Not_found ]) result
  (** Move an existing entry so that it no longer occupies any of
      [forbid_stages]. Used to repair digest false positives (§4.2):
      the colliding resident entry is migrated to another stage, whose
      different hash function separates the two connections. *)

  val iter : (key -> 'v -> unit) -> 'v t -> unit
  val fold : (key -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a

  val moves : _ t -> int
  (** Cumulative entry moves performed by insertions/relocations. *)

  val failed_inserts : _ t -> int

  val greedy_kicks : _ t -> int
  (** Inserts resolved by the greedy depth-1 kick pass (each performed
      exactly one move without entering the BFS). *)

  val bfs_expansions : _ t -> int
  (** Cumulative BFS node expansions across all inserts. *)

  val last_bfs_expanded : _ t -> int
  (** Node expansions performed by the most recent BFS run (0 if the
      last insert never reached the BFS). *)

  val first_full_occupancy : _ t -> float option
  (** Occupancy at the first insert that failed with [`Full]; [None]
      while no insert has failed. The §7 overflow diagnostic: how full
      the table really was when the eviction search first gave up. *)

  val stage_of_exact : _ t -> key -> int option
  (** Which stage holds the entry with this true key, if any. *)

  val probe_positions : _ t -> key -> (int * int * int) list
  (** [(stage, row, digest)] triples the hardware probes when looking up
      this key — one per stage ([digest] is [-1] in exact mode). Lets the
      switch software maintain a shadow index of which table positions
      each tracked connection would match. *)

  val set_placement_filter : 'v t -> (key -> stage:int -> row:int -> bool) option -> unit
  (** Software veto over entry placement: when set, an entry for [key]
      may only be placed (by insertion, eviction moves or relocation) in
      a row where the filter returns [true]. Used to refuse positions
      that would make an existing connection falsely match the new
      entry (digest shadowing). *)
end
