(** The hardware learning filter.

    When the first packet of a connection misses ConnTable, the ASIC
    records a learning event. To avoid interrupting the switch CPU for
    every packet, events are batched in a learning filter that also
    removes duplicates (several packets of the same connection produce
    one event). The CPU is notified when the filter is full or after a
    configurable timeout — the paper expects 500 µs to 5 ms (§4.3).

    This window is precisely what creates {e pending connections}: flows
    the hardware has seen but whose ConnTable entry is not yet installed.

    The filter is generic in the event key ['k] (deduplication key) and
    payload ['m]. Time is the simulator's float seconds. *)

type ('k, 'm) t

val create :
  ?metrics:Telemetry.Registry.t -> capacity:int -> timeout:float -> unit -> ('k, 'm) t
(** [capacity] is the number of distinct pending events the filter can
    hold ("up to thousands"); [timeout] the notification deadline in
    seconds. [?metrics] is the registry the filter reports through:
    [learning.offered] / [learning.dropped] counters and a
    [learning.pending] gauge. *)

val capacity : _ t -> int
val timeout : _ t -> float

val offer : ('k, 'm) t -> now:float -> 'k -> 'm -> [ `Accepted | `Duplicate | `Dropped ]
(** Record an event. [`Duplicate] when the key is already pending
    (removed by hardware dedup); [`Dropped] when the filter is full —
    the connection will be re-learned by a later packet. *)

val pending : _ t -> int
val dropped : _ t -> int
(** Total events dropped because the filter was full. *)

val ready : _ t -> now:float -> bool
(** True when the CPU should drain: filter full, or the oldest pending
    event has waited at least [timeout]. *)

val next_deadline : _ t -> float option
(** Absolute time at which the timeout of the oldest event fires, if any
    event is pending. *)

val next_deadline_or : _ t -> default:float -> float
(** Allocation-free {!next_deadline}: the deadline, or [default] when no
    event is pending. Hot-path variant for per-packet polling. *)

val drain : ('k, 'm) t -> ('k * 'm) list
(** Hand all pending events to the CPU, oldest first, and empty the
    filter. *)
