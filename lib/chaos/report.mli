(** The chaos run report: one self-contained JSON document per
    (scenario, seed, balancer) run, with the PCC outcome and every
    [chaos.*] counter — including the per-fault attribution breakdown —
    pulled out of the run's telemetry snapshot.

    Rendering is deterministic: same snapshot, same bytes. The
    determinism regression test compares two independently compiled and
    executed runs of the same (scenario, seed) byte-for-byte. *)

type t = {
  scenario : string;
  description : string;
  seed : int;
  horizon : float;
  balancer : string;
  connections : int;
  broken_connections : int;
  broken_fraction : float;
  violation_packets : int;
  dropped_packets : int;
  counters : (string * int) list;
      (** every unlabeled [chaos.*] counter in the snapshot, sorted by name *)
  events_by_fault : (string * int) list;  (** [chaos.events] by fault label, sorted *)
  violations_by_fault : (string * int) list;
      (** [chaos.violations] by fault label, sorted *)
}

val build :
  scenario:Scenario.t ->
  seed:int ->
  horizon:float ->
  balancer:string ->
  connections:int ->
  broken_connections:int ->
  broken_fraction:float ->
  violation_packets:int ->
  dropped_packets:int ->
  telemetry:Telemetry.Snapshot.t ->
  t

val to_json_value : t -> Telemetry.Json.t
val to_json : t -> string
(** Pretty-printed; ends with a newline. *)

val save : string -> t -> unit
val pp : Format.formatter -> t -> unit
