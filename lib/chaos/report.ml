type t = {
  scenario : string;
  description : string;
  seed : int;
  horizon : float;
  balancer : string;
  connections : int;
  broken_connections : int;
  broken_fraction : float;
  violation_packets : int;
  dropped_packets : int;
  counters : (string * int) list;
  events_by_fault : (string * int) list;
  violations_by_fault : (string * int) list;
}

let is_chaos_name name =
  String.length name > 6 && String.equal (String.sub name 0 6) "chaos."

let build ~scenario ~seed ~horizon ~balancer ~connections ~broken_connections ~broken_fraction
    ~violation_packets ~dropped_packets ~telemetry =
  let scalar_counters =
    List.filter_map
      (fun (it : Telemetry.Snapshot.item) ->
        match (it.labels, it.value) with
        | [], Telemetry.Snapshot.Counter v when is_chaos_name it.name -> Some (it.name, v)
        | _ -> None)
      telemetry
  in
  let by_fault metric =
    List.filter_map
      (fun (it : Telemetry.Snapshot.item) ->
        match (it.labels, it.value) with
        | [ ("fault", l) ], Telemetry.Snapshot.Counter v when String.equal it.name metric ->
          Some (l, v)
        | _ -> None)
      telemetry
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    scenario = scenario.Scenario.name;
    description = scenario.Scenario.description;
    seed;
    horizon;
    balancer;
    connections;
    broken_connections;
    broken_fraction;
    violation_packets;
    dropped_packets;
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) scalar_counters;
    events_by_fault = by_fault "chaos.events";
    violations_by_fault = by_fault "chaos.violations";
  }

let to_json_value t =
  let module J = Telemetry.Json in
  let assoc l = J.Obj (List.map (fun (k, v) -> (k, J.Int v)) l) in
  J.Obj
    [
      ("scenario", J.String t.scenario);
      ("description", J.String t.description);
      ("seed", J.Int t.seed);
      ("horizon_s", J.Float t.horizon);
      ("balancer", J.String t.balancer);
      ("connections", J.Int t.connections);
      ("broken_connections", J.Int t.broken_connections);
      ("broken_fraction", J.Float t.broken_fraction);
      ("violation_packets", J.Int t.violation_packets);
      ("dropped_packets", J.Int t.dropped_packets);
      ("counters", assoc t.counters);
      ("events_by_fault", assoc t.events_by_fault);
      ("violations_by_fault", assoc t.violations_by_fault);
    ]

let to_json t = Telemetry.Json.to_string_pretty (to_json_value t) ^ "\n"

let save path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>chaos %s (seed %d, %.0fs) on %s:@,\
     connections %d, broken %d (%.6f), violation packets %d, dropped %d" t.scenario t.seed
    t.horizon t.balancer t.connections t.broken_connections t.broken_fraction t.violation_packets
    t.dropped_packets;
  List.iter (fun (k, v) -> Format.fprintf ppf "@,%s = %d" k v) t.counters;
  List.iter (fun (l, v) -> Format.fprintf ppf "@,events{fault=%s} = %d" l v) t.events_by_fault;
  List.iter
    (fun (l, v) -> Format.fprintf ppf "@,violations{fault=%s} = %d" l v)
    t.violations_by_fault;
  Format.fprintf ppf "@]"
