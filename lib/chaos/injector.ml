type t = {
  compiled : Engine.t;
  metrics : Telemetry.Registry.t;
  c_violations : Telemetry.Registry.Counter.t;
  c_delivered : Telemetry.Registry.Counter.t;
  c_dropped : Telemetry.Registry.Counter.t;
  c_suppressed : Telemetry.Registry.Counter.t;
  c_dips_failed : Telemetry.Registry.Counter.t;
  c_dips_recovered : Telemetry.Registry.Counter.t;
  c_cpu_backlog : Telemetry.Registry.Counter.t;
  c_syn_packets : Telemetry.Registry.Counter.t;
  c_switch_failures : Telemetry.Registry.Counter.t;
  c_switch_recoveries : Telemetry.Registry.Counter.t;
  c_vip_migrations : Telemetry.Registry.Counter.t;
}

let create ~scenario ~seed ~vips ~horizon () =
  let compiled = Engine.compile ~scenario ~seed ~vips ~horizon in
  let reg = Telemetry.Registry.create () in
  {
    compiled;
    metrics = reg;
    c_violations = Telemetry.Registry.counter reg "chaos.violations";
    c_delivered = Telemetry.Registry.counter reg "chaos.updates_delivered";
    c_dropped = Telemetry.Registry.counter reg "chaos.updates_dropped";
    c_suppressed = Telemetry.Registry.counter reg "chaos.updates_suppressed";
    c_dips_failed = Telemetry.Registry.counter reg "chaos.dips_failed";
    c_dips_recovered = Telemetry.Registry.counter reg "chaos.dips_recovered";
    c_cpu_backlog = Telemetry.Registry.counter reg "chaos.cpu_backlog_items";
    c_syn_packets = Telemetry.Registry.counter reg "chaos.syn_flood_packets";
    c_switch_failures = Telemetry.Registry.counter reg "chaos.switch_failures";
    c_switch_recoveries = Telemetry.Registry.counter reg "chaos.switch_recoveries";
    c_vip_migrations = Telemetry.Registry.counter reg "chaos.vip_migrations";
  }

let scenario t = t.compiled.Engine.scenario
let seed t = t.compiled.Engine.seed
let compiled t = t.compiled
let events t = t.compiled.Engine.events
let metrics t = t.metrics

let note_event t (ev : Engine.event) =
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter t.metrics ~labels:[ ("fault", ev.fault) ] "chaos.events");
  match ev.op with
  | Engine.Deliver_update _ -> Telemetry.Registry.Counter.incr t.c_delivered
  | Engine.Update_dropped _ -> Telemetry.Registry.Counter.incr t.c_dropped
  | Engine.Update_suppressed _ -> Telemetry.Registry.Counter.incr t.c_suppressed
  | Engine.Dip_died _ -> Telemetry.Registry.Counter.incr t.c_dips_failed
  | Engine.Dip_recovered _ -> Telemetry.Registry.Counter.incr t.c_dips_recovered
  | Engine.Cpu_backlog n -> Telemetry.Registry.Counter.add t.c_cpu_backlog n
  | Engine.Syn_packet _ -> Telemetry.Registry.Counter.incr t.c_syn_packets
  | Engine.Switch_failed _ -> Telemetry.Registry.Counter.incr t.c_switch_failures
  | Engine.Switch_recovered _ -> Telemetry.Registry.Counter.incr t.c_switch_recoveries
  | Engine.Vip_migrated _ -> Telemetry.Registry.Counter.incr t.c_vip_migrations

let active_fault t ~now = Engine.active_fault t.compiled ~now

let attribute_violation t ~now =
  Telemetry.Registry.Counter.incr t.c_violations;
  let label =
    match active_fault t ~now with Some l -> l | None -> Scenario.none_label
  in
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter t.metrics ~labels:[ ("fault", label) ] "chaos.violations")
