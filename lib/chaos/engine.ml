type op =
  | Deliver_update of Netcore.Endpoint.t * Lb.Balancer.update
  | Update_dropped of Netcore.Endpoint.t * Lb.Balancer.update
  | Update_suppressed of Netcore.Endpoint.t * Lb.Balancer.update
  | Dip_died of Netcore.Endpoint.t
  | Dip_recovered of Netcore.Endpoint.t
  | Cpu_backlog of int
  | Syn_packet of Netcore.Five_tuple.t
  | Switch_failed of Lb.Balancer.reroute
  | Switch_recovered of Lb.Balancer.reroute
  | Vip_migrated of Lb.Balancer.reroute

type event = {
  time : float;
  fault : string;
  op : op;
}

type window = {
  label : string;
  w_start : float;
  w_stop : float;
}

type t = {
  scenario : Scenario.t;
  seed : int;
  horizon : float;
  events : event list;
  windows : window list;
}

(* Attribution windows outlast the fault itself: a violation caused by a
   fault often surfaces only when the repair lands (e.g. a migrate-back
   after a mass failure), so the window extends this far past the last
   primitive event of the occurrence. *)
let window_slack = 60.

(* Primitive timeline entries produced by fault expansion, before the
   health checker and the control channel have been applied. *)
type prim =
  | P_fail of Netcore.Endpoint.t
  | P_recover of Netcore.Endpoint.t
  | P_cpu of int
  | P_syn of Netcore.Five_tuple.t
  | P_request of Netcore.Endpoint.t * Lb.Balancer.update
  | P_health
  | P_topology of op  (** pre-built topology op, passed through to emission *)

let compile ~scenario ~seed ~vips ~horizon =
  let root = Simnet.Prng.create ~seed in
  (* Split order is part of the determinism contract: control channel
     first, then one stream per fault in list order, then one per VIP
     for background churn. *)
  let rng_ctl = Simnet.Prng.split root in
  let sc = scenario in
  let cycle = if sc.Scenario.cycle > 0. then sc.Scenario.cycle else horizon in
  let n_cycles = int_of_float (Float.ceil (horizon /. cycle)) in
  (* the DIP universe, deduplicated in VIP order *)
  let all_dips =
    List.concat_map (fun (_, pool) -> Array.to_list (Lb.Dip_pool.members pool)) vips
    |> List.fold_left
         (fun acc d -> if List.exists (Netcore.Endpoint.equal d) acc then acc else d :: acc)
         []
    |> List.rev
  in
  let dip_array = Array.of_list all_dips in
  let vip_members =
    List.map (fun (vip, pool) -> (vip, Array.to_list (Lb.Dip_pool.members pool))) vips
  in
  let prims = ref [] in
  let prim_seq = ref 0 in
  let push time label p =
    if time >= 0. && time < horizon then begin
      prims := (time, !prim_seq, label, p) :: !prims;
      incr prim_seq
    end
  in
  let windows = ref [] in
  let add_window label w_start w_stop =
    if w_start < horizon then
      windows := { label; w_start; w_stop = Float.min horizon w_stop } :: !windows
  in
  (* control-channel fault windows, with their parameters *)
  let ctl_windows = ref [] in
  List.iter
    (fun fault ->
      let rng = Simnet.Prng.split root in
      let label = Scenario.fault_label fault in
      for k = 0 to n_cycles - 1 do
        let c = float_of_int k *. cycle in
        if c < horizon then begin
          match fault with
          | Scenario.Dip_mass_failure { at; fraction; downtime } ->
            let n =
              Int.max 1 (int_of_float (Float.round (fraction *. float_of_int (Array.length dip_array))))
            in
            let order = Array.copy dip_array in
            Simnet.Prng.shuffle rng order;
            let t0 = c +. at in
            add_window label t0 (t0 +. downtime +. window_slack);
            for i = 0 to Int.min n (Array.length order) - 1 do
              push t0 label (P_fail order.(i));
              push (t0 +. downtime) label (P_recover order.(i))
            done
          | Scenario.Dip_flap { start; stop; dips; period } ->
            add_window label (c +. start) (c +. stop +. window_slack);
            let order = Array.copy dip_array in
            Simnet.Prng.shuffle rng order;
            for i = 0 to Int.min dips (Array.length order) - 1 do
              let d = order.(i) in
              let t = ref (c +. start) in
              let down = ref false in
              while !t < c +. stop do
                push !t label (if !down then P_recover d else P_fail d);
                down := not !down;
                t := !t +. (period /. 2.)
              done;
              if !down then push (c +. stop) label (P_recover d)
            done
          | Scenario.Cpu_stall { start; stop; period; work_items } ->
            add_window label (c +. start) (c +. stop +. window_slack);
            let t = ref (c +. start) in
            while !t <= c +. stop do
              push !t label (P_cpu work_items);
              t := !t +. period
            done
          | Scenario.Control_fault { start; stop; delay; drop_prob } ->
            add_window label (c +. start) (c +. stop +. window_slack);
            ctl_windows := (c +. start, c +. stop, delay, drop_prob) :: !ctl_windows
          | Scenario.Syn_flood { start; stop; pps } ->
            add_window label (c +. start) (c +. stop +. window_slack);
            let mean = 1. /. pps in
            let vip_arr = Array.of_list (List.map fst vips) in
            let t = ref (c +. start +. Simnet.Prng.exponential rng ~mean) in
            let i = ref 0 in
            while !t < c +. stop do
              let vip = vip_arr.(!i mod Array.length vip_arr) in
              (* spoofed sources from benchmarking space (198.18/15), far
                 from the workload's client population *)
              let src =
                Netcore.Endpoint.v4 198
                  (18 + Simnet.Prng.int rng 2)
                  (Simnet.Prng.int rng 256) (Simnet.Prng.int rng 256)
                  (1024 + Simnet.Prng.int rng 60000)
              in
              push !t label
                (P_syn (Netcore.Five_tuple.make ~src ~dst:vip ~proto:Netcore.Protocol.Tcp));
              incr i;
              t := !t +. Simnet.Prng.exponential rng ~mean
            done
          | Scenario.Update_storm { start; stop; updates_per_sec } ->
            add_window label (c +. start) (c +. stop +. window_slack);
            let gap = 1. /. updates_per_sec in
            let vip, pool = List.nth vips (k mod List.length vips) in
            let members = Lb.Dip_pool.members pool in
            if Array.length members >= 2 then begin
              let t = ref (c +. start) in
              let i = ref 0 in
              while !t < c +. stop do
                let d = members.(!i mod Array.length members) in
                push !t label (P_request (vip, Lb.Balancer.Dip_remove d));
                push (!t +. (gap /. 2.)) label (P_request (vip, Lb.Balancer.Dip_add d));
                incr i;
                t := !t +. gap
              done
            end
          | Scenario.Switch_failure { at; fraction; downtime } ->
            add_window label (c +. at) (c +. at +. downtime +. window_slack);
            (* the salt identifies this failure episode: the recovery
               event re-routes exactly the flows the failure moved away *)
            let salt = 0x5f00 + Simnet.Prng.int rng 0x10000 in
            let r = { Lb.Balancer.rr_vip = None; rr_fraction = fraction; rr_salt = salt } in
            push (c +. at) label (P_topology (Switch_failed r));
            push (c +. at +. downtime) label (P_topology (Switch_recovered r))
          | Scenario.Vip_migration { at } ->
            add_window label (c +. at) (c +. at +. window_slack);
            let vip, _ = List.nth vips (k mod List.length vips) in
            let r = { Lb.Balancer.rr_vip = Some vip; rr_fraction = 1.; rr_salt = 0 } in
            push (c +. at) label (P_topology (Vip_migrated r))
        end
      done)
    sc.Scenario.faults;
  if sc.Scenario.background_updates_per_min > 0. then begin
    add_window Scenario.background_label 0. horizon;
    let per_vip = sc.Scenario.background_updates_per_min /. float_of_int (List.length vips) in
    List.iter
      (fun (vip, pool) ->
        let rng = Simnet.Prng.split root in
        let members = Lb.Dip_pool.members pool in
        if Array.length members >= 2 then
          Simnet.Update_trace.generate ~rng ~updates_per_min:per_vip ~horizon
            ~pool_size:(Array.length members)
          |> List.iter (fun (e : Simnet.Update_trace.event) ->
                 let d = members.(e.dip) in
                 let u =
                   match e.kind with
                   | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove d
                   | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add d
                 in
                 push e.time Scenario.background_label (P_request (vip, u))))
      vips
  end;
  (* health-probe ticks *)
  let t = ref sc.Scenario.health_interval in
  while !t < horizon do
    push !t "" P_health;
    t := !t +. sc.Scenario.health_interval
  done;
  let sorted_prims =
    List.sort
      (fun (t1, s1, _, _) (t2, s2, _, _) -> if t1 <> t2 then compare t1 t2 else compare s1 s2)
      !prims
  in
  (* --- the forward walk: liveness, health checker, control channel --- *)
  let liveness : (Netcore.Endpoint.t, bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace liveness d true) all_dips;
  let alive d = match Hashtbl.find_opt liveness d with Some a -> a | None -> true in
  (* which fault last changed a DIP's liveness — health-driven updates
     for that DIP are attributed to it *)
  let cause : (Netcore.Endpoint.t, string) Hashtbl.t = Hashtbl.create 64 in
  let hc =
    Silkroad.Health_checker.create ~interval:sc.Scenario.health_interval
      ~threshold:sc.Scenario.health_threshold ~is_alive:alive ~dips:all_dips ()
  in
  let out = ref [] in
  let out_seq = ref 0 in
  let emit time fault op =
    if time >= 0. && time < horizon then begin
      out := (time, !out_seq, { time; fault; op }) :: !out;
      incr out_seq
    end
  in
  let ctl_at t =
    List.fold_left
      (fun acc (w0, w1, delay, drop) ->
        match acc with
        | Some _ -> acc
        | None -> if t >= w0 && t < w1 then Some (delay, drop) else None)
      None
      (List.rev !ctl_windows)
  in
  let ctl_label = Scenario.fault_label (Scenario.Control_fault { start = 0.; stop = 0.; delay = 0.; drop_prob = 0. }) in
  let deliveries = ref [] in
  let delivery_seq = ref 0 in
  let route_request time label vip u =
    match ctl_at time with
    | Some (_, drop) when Simnet.Prng.uniform rng_ctl < drop ->
      emit time ctl_label (Update_dropped (vip, u))
    | Some (delay, _) ->
      deliveries := (time +. delay, !delivery_seq, label, vip, u) :: !deliveries;
      incr delivery_seq
    | None ->
      deliveries := (time, !delivery_seq, label, vip, u) :: !deliveries;
      incr delivery_seq
  in
  List.iter
    (fun (time, _, label, p) ->
      match p with
      | P_fail d ->
        if alive d then begin
          Hashtbl.replace liveness d false;
          Hashtbl.replace cause d label;
          emit time label (Dip_died d)
        end
      | P_recover d ->
        if not (alive d) then begin
          Hashtbl.replace liveness d true;
          Hashtbl.replace cause d label;
          emit time label (Dip_recovered d)
        end
      | P_cpu n -> emit time label (Cpu_backlog n)
      | P_syn tuple -> emit time label (Syn_packet tuple)
      | P_topology op -> emit time label op
      | P_request (vip, u) -> route_request time label vip u
      | P_health ->
        Silkroad.Health_checker.advance hc ~now:time
        |> List.iter (fun (d, dir) ->
               let label =
                 match Hashtbl.find_opt cause d with Some l -> l | None -> Scenario.none_label
               in
               let u =
                 match dir with
                 | `Down -> Lb.Balancer.Dip_remove d
                 | `Up -> Lb.Balancer.Dip_add d
               in
               List.iter
                 (fun (vip, members) ->
                   if List.exists (Netcore.Endpoint.equal d) members then
                     route_request time label vip u)
                 vip_members))
    sorted_prims;
  (* --- controller sanitisation, in delivery order --- *)
  let sorted_deliveries =
    List.sort
      (fun (t1, s1, _, _, _) (t2, s2, _, _, _) ->
        if t1 <> t2 then compare t1 t2 else compare s1 s2)
      !deliveries
  in
  let membership : (Netcore.Endpoint.t, Netcore.Endpoint.t list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (vip, members) -> Hashtbl.replace membership vip (ref members))
    vip_members;
  List.iter
    (fun (time, _, label, vip, u) ->
      let mref = Hashtbl.find membership vip in
      let mem d = List.exists (Netcore.Endpoint.equal d) !mref in
      let accept =
        match u with
        | Lb.Balancer.Dip_add d ->
          if mem d then None else Some (!mref @ [ d ])
        | Lb.Balancer.Dip_remove d ->
          (* never empty a pool: a controller would refuse to blackhole a VIP *)
          if mem d && List.length !mref > 1 then
            Some (List.filter (fun x -> not (Netcore.Endpoint.equal x d)) !mref)
          else None
        | Lb.Balancer.Dip_replace { old_dip; new_dip } ->
          if mem old_dip && not (mem new_dip) then
            Some
              (List.map
                 (fun x -> if Netcore.Endpoint.equal x old_dip then new_dip else x)
                 !mref)
          else None
      in
      match accept with
      | Some next ->
        mref := next;
        emit time label (Deliver_update (vip, u))
      | None -> emit time label (Update_suppressed (vip, u)))
    sorted_deliveries;
  let events =
    List.sort
      (fun (t1, s1, _) (t2, s2, _) -> if t1 <> t2 then compare t1 t2 else compare s1 s2)
      !out
    |> List.map (fun (_, _, e) -> e)
  in
  { scenario = sc; seed; horizon; events; windows = List.rev !windows }

let active_fault t ~now =
  List.fold_left
    (fun acc w ->
      if w.w_start <= now && now < w.w_stop then
        match acc with
        | Some (best_start, _) when best_start >= w.w_start -> acc
        | _ -> Some (w.w_start, w.label)
      else acc)
    None t.windows
  |> Option.map snd
