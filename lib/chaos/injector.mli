(** Runtime side of the chaos engine: a compiled scenario plus the
    [chaos.*] telemetry it fills in as the harness replays the timeline.

    The harness driver ({!Harness.Driver.run}'s [?chaos] argument)
    schedules every {!Engine.event} into the simulation, calls
    {!note_event} as each fires, and calls {!attribute_violation} for
    every PCC violation its probes observe — so the final snapshot
    explains each violation by the fault window it happened in.

    Counters:
    - [chaos.events\{fault\}] — injected events per fault
    - [chaos.violations] and [chaos.violations\{fault\}] — PCC violations,
      total and attributed (label {!Scenario.none_label} when no fault
      window was active)
    - [chaos.updates_delivered] / [chaos.updates_dropped] /
      [chaos.updates_suppressed] — control-channel outcomes
    - [chaos.dips_failed] / [chaos.dips_recovered]
    - [chaos.cpu_backlog_items], [chaos.syn_flood_packets]
    - [chaos.switch_failures] / [chaos.switch_recoveries] /
      [chaos.vip_migrations] — topology re-route events *)

type t

val create :
  scenario:Scenario.t ->
  seed:int ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  horizon:float ->
  unit ->
  t

val scenario : t -> Scenario.t
val seed : t -> int
val compiled : t -> Engine.t
val events : t -> Engine.event list
val metrics : t -> Telemetry.Registry.t

val note_event : t -> Engine.event -> unit
(** Account one timeline event as it is injected. *)

val attribute_violation : t -> now:float -> unit
(** Account one PCC violation observed at [now], attributed via
    {!Engine.active_fault}. *)

val active_fault : t -> now:float -> string option
