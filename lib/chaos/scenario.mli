(** Named failure scenarios for the chaos engine.

    A scenario is a small declarative record: a list of fault
    activations laid out inside a repeating pattern window ([cycle]
    seconds long), plus the health-checking parameters and the benign
    background churn the faults ride on. {!Engine.compile} expands a
    scenario against a concrete seed, VIP set and horizon into a
    deterministic event timeline — the same (scenario, seed, vips,
    horizon) always produces the same stream, byte for byte.

    Times inside a fault are relative to the start of each cycle; a
    fault whose window extends past the cycle end is clipped at the
    horizon, not at the cycle boundary. *)

type fault =
  | Dip_mass_failure of {
      at : float;  (** seconds into the cycle *)
      fraction : float;  (** fraction of all DIPs that die together *)
      downtime : float;  (** seconds until the failed DIPs recover *)
    }
      (** Correlated mass failure (a rack or power-domain loss): a
          random [fraction] of the DIP universe goes down at [at] and
          recovers together. Detected and repaired by the health
          checker. *)
  | Dip_flap of {
      start : float;
      stop : float;
      dips : int;  (** how many DIPs flap *)
      period : float;  (** full down+up cycle length, seconds *)
    }
      (** Fast up/down oscillation. With [period] shorter than
          [health_interval * health_threshold] the checker must not
          oscillate pool membership. *)
  | Cpu_stall of {
      start : float;
      stop : float;
      period : float;  (** seconds between stall bursts *)
      work_items : int;  (** backlog injected per burst *)
    }
      (** Switch-CPU stall/backlog bursts: widens the §4.3 pending
          window that TransitTable must cover. *)
  | Control_fault of {
      start : float;
      stop : float;
      delay : float;  (** extra delivery delay for updates, seconds *)
      drop_prob : float;  (** probability an update is lost entirely *)
    }
      (** Degraded control channel: every [Lb.Balancer.update] delivery
          requested inside the window is delayed by [delay] and dropped
          with probability [drop_prob]. *)
  | Syn_flood of {
      start : float;
      stop : float;
      pps : float;  (** spoofed SYNs per second (Poisson) *)
    }
      (** SYN flood from spoofed sources: every SYN is a new pending
          connection, pressuring the learning filter, the switch CPU and
          the TransitTable Bloom filter. *)
  | Update_storm of {
      start : float;
      stop : float;
      updates_per_sec : float;
    }
      (** Rapid remove/re-add churn on one VIP — the version-space
          exhaustion attack the §4.2 version-reuse path defends
          against. *)
  | Switch_failure of {
      at : float;  (** seconds into the cycle *)
      fraction : float;  (** fraction of flows ECMP re-routes away *)
      downtime : float;  (** seconds until the switch returns *)
    }
      (** A load-balancing switch dies: upstream ECMP re-routes
          [fraction] of the flows (selected by a salted 5-tuple hash) to
          surviving switches that never learned them, and routes the
          same flows back when the switch recovers [downtime] later —
          both transitions drop the affected connections' state
          ({!Lb.Balancer.Reroute}). *)
  | Vip_migration of { at : float }
      (** §4.4 VIP migration: one VIP (rotating per cycle) is moved to a
          different switch/layer, so every one of its connections loses
          its per-connection state at once. *)

type t = {
  name : string;
  description : string;
  cycle : float;  (** fault pattern repeats every [cycle] seconds; [<= 0.] means no repetition *)
  background_updates_per_min : float;
      (** benign §3.1-style churn running alongside the faults (aggregate
          across VIPs); [0.] for none *)
  health_interval : float;  (** seconds between health-probe rounds *)
  health_threshold : int;  (** consecutive missed probes before [`Down] *)
  faults : fault list;
}

val fault_label : fault -> string
(** Stable kebab-case label used for [chaos.*] telemetry attribution. *)

val background_label : string
(** The label benign background churn is attributed to. *)

val none_label : string
(** The label violations get when no fault window is active. *)

val all : t list
(** The built-in scenario catalogue. *)

val find : string -> t option
val pp : Format.formatter -> t -> unit
