type fault =
  | Dip_mass_failure of {
      at : float;
      fraction : float;
      downtime : float;
    }
  | Dip_flap of {
      start : float;
      stop : float;
      dips : int;
      period : float;
    }
  | Cpu_stall of {
      start : float;
      stop : float;
      period : float;
      work_items : int;
    }
  | Control_fault of {
      start : float;
      stop : float;
      delay : float;
      drop_prob : float;
    }
  | Syn_flood of {
      start : float;
      stop : float;
      pps : float;
    }
  | Update_storm of {
      start : float;
      stop : float;
      updates_per_sec : float;
    }
  | Switch_failure of {
      at : float;
      fraction : float;
      downtime : float;
    }
  | Vip_migration of { at : float }

type t = {
  name : string;
  description : string;
  cycle : float;
  background_updates_per_min : float;
  health_interval : float;
  health_threshold : int;
  faults : fault list;
}

let fault_label = function
  | Dip_mass_failure _ -> "dip-mass-failure"
  | Dip_flap _ -> "dip-flap"
  | Cpu_stall _ -> "cpu-stall"
  | Control_fault _ -> "control-fault"
  | Syn_flood _ -> "syn-flood"
  | Update_storm _ -> "update-storm"
  | Switch_failure _ -> "switch-failure"
  | Vip_migration _ -> "vip-migration"

let background_label = "background-churn"
let none_label = "none"

let base =
  {
    name = "";
    description = "";
    cycle = 120.;
    background_updates_per_min = 0.;
    health_interval = 5.;
    health_threshold = 2;
    faults = [];
  }

let all =
  [
    {
      base with
      name = "quiet";
      description = "no faults, background DIP churn only (control scenario)";
      background_updates_per_min = 6.;
    };
    {
      base with
      name = "dip-mass-failure";
      description =
        "half the DIP universe dies at once every cycle (rack/power-domain loss), \
         detected and repaired by the health checker";
      faults = [ Dip_mass_failure { at = 30.; fraction = 0.5; downtime = 45. } ];
    };
    {
      base with
      name = "dip-flap";
      description =
        "two DIPs oscillate up/down on a period that aliases against the health \
         probes, so the checker repeatedly removes and re-adds them; the repeated \
         updates must ride the version-reuse path without breaking PCC";
      faults = [ Dip_flap { start = 10.; stop = 110.; dips = 2; period = 4. } ];
    };
    {
      base with
      name = "cpu-stall";
      description =
        "periodic switch-CPU backlog bursts widen the insertion race window (\xc2\xa74.3) \
         while background churn keeps updates flowing";
      background_updates_per_min = 12.;
      faults = [ Cpu_stall { start = 10.; stop = 110.; period = 15.; work_items = 100_000 } ];
    };
    {
      base with
      name = "control-partition";
      description =
        "the control channel degrades for 30 s each cycle: pool updates are \
         delayed 3 s and a quarter are lost outright";
      background_updates_per_min = 12.;
      faults = [ Control_fault { start = 30.; stop = 60.; delay = 3.; drop_prob = 0.25 } ];
    };
    {
      base with
      name = "syn-flood";
      description =
        "spoofed-source SYN burst saturates the pending-connection path \
         (learning filter, switch CPU, TransitTable Bloom filter)";
      background_updates_per_min = 6.;
      faults = [ Syn_flood { start = 30.; stop = 45.; pps = 800. } ];
    };
    {
      base with
      name = "update-storm";
      description =
        "rapid remove/re-add churn on one VIP per cycle drives version \
         allocation towards exhaustion and exercises the reuse path";
      faults = [ Update_storm { start = 20.; stop = 50.; updates_per_sec = 4. } ];
    };
    {
      base with
      name = "switch-failure";
      description =
        "a switch dies mid-update and half the flows are ECMP re-routed to a \
         peer that never learned them, then routed back when it recovers; a \
         CPU stall widens the \xc2\xa74.3 race window around a concurrent pool update";
      cycle = 240.;
      faults =
        [
          Cpu_stall { start = 29.; stop = 29.2; period = 10.; work_items = 1_000_000 };
          Switch_failure { at = 30.; fraction = 0.5; downtime = 150. };
          Update_storm { start = 30.4; stop = 30.5; updates_per_sec = 2. };
        ];
    };
    {
      base with
      name = "vip-migration";
      description =
        "one VIP migrates to a different switch layer each cycle: every one of \
         its connections loses its ConnTable entry at once, racing a concurrent \
         pool update behind a stalled switch CPU";
      cycle = 240.;
      faults =
        [
          Cpu_stall { start = 29.; stop = 29.2; period = 10.; work_items = 1_000_000 };
          Vip_migration { at = 30. };
          Update_storm { start = 30.4; stop = 30.5; updates_per_sec = 2. };
        ];
    };
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

let pp_fault ppf = function
  | Dip_mass_failure { at; fraction; downtime } ->
    Format.fprintf ppf "mass-failure %.0f%% of DIPs at t+%.0fs for %.0fs" (100. *. fraction) at
      downtime
  | Dip_flap { start; stop; dips; period } ->
    Format.fprintf ppf "flap %d DIPs every %.1fs during [%.0fs, %.0fs]" dips period start stop
  | Cpu_stall { start; stop; period; work_items } ->
    Format.fprintf ppf "CPU backlog %d items every %.0fs during [%.0fs, %.0fs]" work_items period
      start stop
  | Control_fault { start; stop; delay; drop_prob } ->
    Format.fprintf ppf "control channel +%.1fs delay, %.0f%% drop during [%.0fs, %.0fs]" delay
      (100. *. drop_prob) start stop
  | Syn_flood { start; stop; pps } ->
    Format.fprintf ppf "SYN flood %.0f pps during [%.0fs, %.0fs]" pps start stop
  | Update_storm { start; stop; updates_per_sec } ->
    Format.fprintf ppf "update storm %.1f/s during [%.0fs, %.0fs]" updates_per_sec start stop
  | Switch_failure { at; fraction; downtime } ->
    Format.fprintf ppf "switch failure re-routing %.0f%% of flows at t+%.0fs for %.0fs"
      (100. *. fraction) at downtime
  | Vip_migration { at } -> Format.fprintf ppf "VIP migration at t+%.0fs" at

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s: %s@,cycle %.0fs, churn %.1f/min, health %.0fs x%d" t.name
    t.description t.cycle t.background_updates_per_min t.health_interval t.health_threshold;
  List.iter (fun f -> Format.fprintf ppf "@,- %a" pp_fault f) t.faults;
  Format.fprintf ppf "@]"
