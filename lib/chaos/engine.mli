(** Deterministic scenario compiler.

    [compile] expands a {!Scenario.t} against a seed, the VIP layout and
    a horizon into a fully materialised, time-sorted event list. All
    randomness is drawn from a {!Simnet.Prng} stream derived from the
    seed, and ties are broken by emission order, so the same inputs
    always produce the same timeline — the property the determinism
    regression test pins down byte-for-byte.

    Compilation runs the whole control loop ahead of time: ground-truth
    DIP liveness evolves as the faults dictate, a real
    {!Silkroad.Health_checker} observes it and emits pool updates, and
    every update request (health-driven, background churn, or
    update-storm) is then passed through the control-channel fault model
    (delay/drop) and a sanitisation pass that keeps the *delivered*
    stream membership-consistent per VIP — mirroring a controller that
    validates state before pushing, and guaranteeing the balancer under
    test never sees a duplicate add or a remove of an absent DIP no
    matter which updates were dropped. *)

type op =
  | Deliver_update of Netcore.Endpoint.t * Lb.Balancer.update
      (** call [balancer.update] for this VIP now *)
  | Update_dropped of Netcore.Endpoint.t * Lb.Balancer.update
      (** the control channel lost this update; accounting only *)
  | Update_suppressed of Netcore.Endpoint.t * Lb.Balancer.update
      (** dropped by the controller's sanitiser (it would have produced
          inconsistent membership after earlier losses); accounting only *)
  | Dip_died of Netcore.Endpoint.t
      (** ground truth: the DIP stopped serving — connections pinned to
          it are dead regardless of the balancer *)
  | Dip_recovered of Netcore.Endpoint.t
  | Cpu_backlog of int  (** stall the balancer's slow path by this many work items *)
  | Syn_packet of Netcore.Five_tuple.t
      (** spoofed attack SYN: processed by the balancer but not part of
          the legitimate workload *)
  | Switch_failed of Lb.Balancer.reroute
      (** a switch died: the selected flows are ECMP re-routed to a peer
          that never learned them — their per-connection state is gone *)
  | Switch_recovered of Lb.Balancer.reroute
      (** the switch returned: the same flows (same salt) route back,
          again landing on an instance without their state *)
  | Vip_migrated of Lb.Balancer.reroute
      (** a VIP moved to another switch/layer: all its flows lose their
          per-connection state at once (§4.4) *)

type event = {
  time : float;
  fault : string;  (** {!Scenario.fault_label} of the fault that caused it *)
  op : op;
}

type window = {
  label : string;
  w_start : float;
  w_stop : float;
}

type t = {
  scenario : Scenario.t;
  seed : int;
  horizon : float;
  events : event list;  (** time-sorted, ties in deterministic emission order *)
  windows : window list;  (** attribution windows, one per fault occurrence *)
}

val compile :
  scenario:Scenario.t ->
  seed:int ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  horizon:float ->
  t

val active_fault : t -> now:float -> string option
(** The fault a PCC violation observed at [now] is attributed to: the
    most recently started attribution window containing [now] (windows
    extend past the fault itself to cover its aftermath), or [None]
    when no window is active. *)
