(** The 5-tuple identifying a layer-4 connection:
    (source ip, source port, destination ip, destination port, protocol).

    This is the match key of the load balancer's ConnTable. For an IPv6
    connection it is 37 bytes on the wire — the very size SilkRoad's
    digest compression exists to avoid storing. *)

type t = {
  src : Endpoint.t;
  dst : Endpoint.t;
  proto : Protocol.t;
}

val make : src:Endpoint.t -> dst:Endpoint.t -> proto:Protocol.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : seed:int -> t -> int64
(** Seed-keyed hash over the canonical byte representation. Different
    seeds give independent functions (cuckoo stages, Bloom indices,
    ECMP selection each use their own seed). *)

val digest : bits:int -> seed:int -> t -> int
(** [digest ~bits ~seed t] is the [bits]-bit connection digest stored in
    ConnTable instead of the full key (SilkRoad §4.2). *)

val key_bytes : t -> int
(** Match-key size if the full tuple were stored: 13 bytes for IPv4,
    37 bytes for IPv6 (addresses + ports + protocol). *)

val is_v6 : t -> bool

val write : Buffer.t -> t -> unit
(** Binary codec used by packed traces: [src], [dst] ({!Endpoint.write})
    then the IANA protocol byte. *)

val read : Bytes.t -> int -> t * int
(** Decodes a tuple written by {!write}; returns it with the position
    just past it. Raises [Failure] on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
