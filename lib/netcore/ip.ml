type t =
  | V4 of int32
  | V6 of int64 * int64

let compare a b =
  match a, b with
  | V4 x, V4 y -> Int32.compare x y
  | V6 (xh, xl), V6 (yh, yl) ->
    let c = Int64.compare xh yh in
    if c <> 0 then c else Int64.compare xl yl
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1

let equal a b = compare a b = 0

let[@inline] hash_fold acc = function
  | V4 x -> Hashing.mix64 (Int64.logxor acc (Int64.of_int32 x))
  | V6 (h, l) -> Hashing.mix64 (Int64.logxor (Hashing.mix64 (Int64.logxor acc h)) l)

let v4 a b c d =
  assert (a land 0xff = a && b land 0xff = b && c land 0xff = c && d land 0xff = d);
  V4 (Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d))

let v6 h l = V6 (h, l)

let family_bytes = function V4 _ -> 4 | V6 _ -> 16
let is_v6 = function V4 _ -> false | V6 _ -> true

let pp ppf = function
  | V4 x ->
    let x = Int32.to_int x land 0xffffffff in
    Format.fprintf ppf "%d.%d.%d.%d"
      ((x lsr 24) land 0xff) ((x lsr 16) land 0xff) ((x lsr 8) land 0xff) (x land 0xff)
  | V6 (h, l) ->
    let group i =
      let word = if i < 4 then h else l in
      let shift = 48 - 16 * (i mod 4) in
      Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xffffL)
    in
    Format.fprintf ppf "%x:%x:%x:%x:%x:%x:%x:%x"
      (group 0) (group 1) (group 2) (group 3) (group 4) (group 5) (group 6) (group 7)

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let parse_v4 s =
    match String.split_on_char '.' s with
    | [a; b; c; d] ->
      (try
         let a = int_of_string a and b = int_of_string b
         and c = int_of_string c and d = int_of_string d in
         if a land 0xff = a && b land 0xff = b && c land 0xff = c && d land 0xff = d
         then Some (v4 a b c d)
         else None
       with Failure _ -> None)
    | _ -> None
  in
  let parse_v6 s =
    let group_value g =
      if g = "" || String.length g > 4 then None
      else
        match int_of_string_opt ("0x" ^ g) with
        | Some v when v >= 0 && v land 0xffff = v -> Some v
        | Some _ | None -> None
    in
    let pack values =
      let fold vs =
        List.fold_left
          (fun acc v -> Int64.logor (Int64.shift_left acc 16) (Int64.of_int v))
          0L vs
      in
      let rec split n acc = function
        | rest when n = 0 -> List.rev acc, rest
        | [] -> List.rev acc, []
        | x :: rest -> split (n - 1) (x :: acc) rest
      in
      let hi, lo = split 4 [] values in
      V6 (fold hi, fold lo)
    in
    let groups_of parts =
      let rec all acc = function
        | [] -> Some (List.rev acc)
        | g :: rest ->
          (match group_value g with
           | Some v -> all (v :: acc) rest
           | None -> None)
      in
      all [] parts
    in
    (* Split on "::" first: at most one abbreviation is allowed. *)
    match Str_split.on_double_colon s with
    | Str_split.No_abbrev parts ->
      (match groups_of parts with
       | Some values when List.length values = 8 -> Some (pack values)
       | Some _ | None -> None)
    | Str_split.Abbrev (left, right) ->
      (match groups_of left, groups_of right with
       | Some l, Some r when List.length l + List.length r <= 7 ->
         let zeros = List.init (8 - List.length l - List.length r) (fun _ -> 0) in
         Some (pack (l @ zeros @ r))
       | _, _ -> None)
    | Str_split.Malformed -> None
  in
  if String.contains s ':' then parse_v6 s else parse_v4 s

let to_bytes = function
  | V4 x ->
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 x;
    b
  | V6 (h, l) ->
    let b = Bytes.create 16 in
    Bytes.set_int64_be b 0 h;
    Bytes.set_int64_be b 8 l;
    b
