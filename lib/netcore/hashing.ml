(* [@inline] matters on the replay hot path: once mix64/seeded inline
   into their callers, the compiler can keep the Int64 intermediates
   unboxed inside one function body instead of boxing each step. *)
let[@inline] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline] seeded ~seed x =
  (* The golden-ratio stride decorrelates nearby seeds before mixing. *)
  let key = Int64.mul (Int64.of_int (seed + 1)) 0x9e3779b97f4a7c15L in
  mix64 (Int64.logxor (mix64 key) x)

let fold_bytes acc b =
  let len = Bytes.length b in
  let rec go acc off =
    if off >= len then acc
    else if len - off >= 8 then
      go (mix64 (Int64.logxor acc (Bytes.get_int64_be b off))) (off + 8)
    else
      (* Tail bytes: widen one at a time. *)
      let rec tail acc off =
        if off >= len then mix64 acc
        else
          tail
            (Int64.logxor (Int64.shift_left acc 8)
               (Int64.of_int (Char.code (Bytes.get b off))))
            (off + 1)
      in
      tail acc off
  in
  go acc 0

let[@inline] to_range h n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's native positive int range. *)
  let v = Int64.to_int (Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod n

let[@inline] truncate_bits h k =
  assert (k > 0 && k <= 30);
  Int64.to_int (Int64.logand h (Int64.of_int ((1 lsl k) - 1)))

type family = { seed : int }

let family ~seed = { seed }

let apply { seed } i x = seeded ~seed:(seed * 1013 + i * 7919 + 17) x
