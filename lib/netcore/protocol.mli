(** Transport protocols understood by the layer-4 load balancer. *)

type t =
  | Tcp
  | Udp

val equal : t -> t -> bool
val compare : t -> t -> int
val to_byte : t -> int
(** IANA protocol number: 6 for TCP, 17 for UDP. *)

val of_byte : int -> t option
(** Inverse of {!to_byte}; [None] for any other protocol number. *)

val pp : Format.formatter -> t -> unit
