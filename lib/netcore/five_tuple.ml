type t = {
  src : Endpoint.t;
  dst : Endpoint.t;
  proto : Protocol.t;
}

let make ~src ~dst ~proto = { src; dst; proto }

let compare a b =
  let c = Endpoint.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Endpoint.compare a.dst b.dst in
    if c <> 0 then c else Protocol.compare a.proto b.proto

let equal a b = compare a b = 0

let write buf { src; dst; proto } =
  Endpoint.write buf src;
  Endpoint.write buf dst;
  Buffer.add_uint8 buf (Protocol.to_byte proto)

let read b pos =
  let src, pos = Endpoint.read b pos in
  let dst, pos = Endpoint.read b pos in
  let proto =
    match Protocol.of_byte (Bytes.get_uint8 b pos) with
    | Some p -> p
    | None -> failwith "Five_tuple.read: bad protocol byte"
  in
  ({ src; dst; proto }, pos + 1)

(* [@inline] so callers outside the Cuckoo functor (whose [Key.hash]
   parameter can never be inlined) get the whole Int64 chain unboxed. *)
let[@inline] hash ~seed { src; dst; proto } =
  let acc = Endpoint.hash_fold 0x5117_0a4dL src in
  let acc = Endpoint.hash_fold acc dst in
  let acc = Hashing.mix64 (Int64.logxor acc (Int64.of_int (Protocol.to_byte proto))) in
  Hashing.seeded ~seed acc

let digest ~bits ~seed t = Hashing.truncate_bits (hash ~seed t) bits

let key_bytes { src; dst; proto = _ } =
  Endpoint.size_bytes src + Endpoint.size_bytes dst + 1

let is_v6 { dst = { ip; _ }; _ } = Ip.is_v6 ip

let pp ppf { src; dst; proto } =
  Format.fprintf ppf "%a->%a/%a" Endpoint.pp src Endpoint.pp dst Protocol.pp proto

let to_string t = Format.asprintf "%a" pp t
