type t = {
  flow : Five_tuple.t;
  flags : Tcp_flags.t;
  payload_len : int;
}

let make ?(flags = Tcp_flags.data) ?(payload_len = 0) flow =
  assert (payload_len >= 0);
  { flow; flags; payload_len }

let syn flow = make ~flags:Tcp_flags.syn ~payload_len:0 flow
let fin flow = make ~flags:Tcp_flags.fin ~payload_len:0 flow
let data ?(payload_len = 1024) flow = make ~flags:Tcp_flags.data ~payload_len flow

(* Wire size without a packet record in hand — the batched replay path
   meters flows it never boxes into [t]. *)
let wire_size_of ~payload_len flow =
  let eth = 14 in
  let ip = if Five_tuple.is_v6 flow then 40 else 20 in
  let l4 = match flow.Five_tuple.proto with Protocol.Tcp -> 20 | Protocol.Udp -> 8 in
  eth + ip + l4 + payload_len

let wire_size { flow; flags = _; payload_len } = wire_size_of ~payload_len flow

let rewrite_dst t dip = { t with flow = { t.flow with Five_tuple.dst = dip } }

let pp ppf { flow; flags; payload_len } =
  Format.fprintf ppf "%a [%a] %dB" Five_tuple.pp flow Tcp_flags.pp flags payload_len
