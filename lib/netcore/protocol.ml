type t =
  | Tcp
  | Udp

let equal a b = a = b
let to_byte = function Tcp -> 6 | Udp -> 17
let of_byte = function 6 -> Some Tcp | 17 -> Some Udp | _ -> None
let compare a b = Int.compare (to_byte a) (to_byte b)
let pp ppf t = Format.pp_print_string ppf (match t with Tcp -> "tcp" | Udp -> "udp")
