type t = {
  ip : Ip.t;
  port : int;
}

let make ip port =
  assert (port >= 0 && port < 65536);
  { ip; port }

let v4 a b c d port = make (Ip.v4 a b c d) port

(* A physically unique record: allocation-free code paths return [none]
   instead of [Endpoint.t option] and callers test with [==]. Never use
   structural equality against it — 0.0.0.0:0 is a legal (if useless)
   endpoint value. *)
let none = { ip = Ip.v4 0 0 0 0; port = 0 }

let compare a b =
  let c = Ip.compare a.ip b.ip in
  if c <> 0 then c else Int.compare a.port b.port

let equal a b = compare a b = 0

let[@inline] hash_fold acc { ip; port } =
  Hashing.mix64 (Int64.logxor (Ip.hash_fold acc ip) (Int64.of_int port))

let size_bytes { ip; port = _ } = Ip.family_bytes ip + 2

let pp ppf { ip; port } =
  if Ip.is_v6 ip then Format.fprintf ppf "[%a]:%d" Ip.pp ip port
  else Format.fprintf ppf "%a:%d" Ip.pp ip port

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let parse_port p = int_of_string_opt p in
  if String.length s > 0 && s.[0] = '[' then
    match String.index_opt s ']' with
    | Some i when i + 1 < String.length s && s.[i + 1] = ':' ->
      let addr = String.sub s 1 (i - 1) in
      let port = String.sub s (i + 2) (String.length s - i - 2) in
      (match Ip.of_string addr, parse_port port with
       | Some ip, Some p when p >= 0 && p < 65536 -> Some (make ip p)
       | _, _ -> None)
    | Some _ | None -> None
  else
    match String.rindex_opt s ':' with
    | None -> None
    | Some i ->
      let addr = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match Ip.of_string addr, parse_port port with
       | Some ip, Some p when p >= 0 && p < 65536 -> Some (make ip p)
       | _, _ -> None)

(* ----- binary codec (packed traces) ----- *)

let write buf { ip; port } =
  (match ip with
   | Ip.V4 x ->
     Buffer.add_char buf '\004';
     Buffer.add_int32_be buf x
   | Ip.V6 (h, l) ->
     Buffer.add_char buf '\006';
     Buffer.add_int64_be buf h;
     Buffer.add_int64_be buf l);
  Buffer.add_uint16_be buf port

let read b pos =
  match Char.code (Bytes.get b pos) with
  | 4 ->
    let ip = Ip.V4 (Bytes.get_int32_be b (pos + 1)) in
    let port = Bytes.get_uint16_be b (pos + 5) in
    (make ip port, pos + 7)
  | 6 ->
    let h = Bytes.get_int64_be b (pos + 1) in
    let l = Bytes.get_int64_be b (pos + 9) in
    let port = Bytes.get_uint16_be b (pos + 17) in
    (make (Ip.V6 (h, l)) port, pos + 19)
  | tag -> failwith (Printf.sprintf "Endpoint.read: bad family tag %d" tag)
