(** A layer-4 packet as seen by the load balancer's data plane.

    We model exactly the header fields the balancer reads or rewrites:
    the 5-tuple, TCP flags, and payload length. The balancer's action is
    destination NAT — rewriting [flow.dst] (the VIP) to the selected DIP. *)

type t = {
  flow : Five_tuple.t;
  flags : Tcp_flags.t;
  payload_len : int;  (** bytes of L4 payload *)
}

val make : ?flags:Tcp_flags.t -> ?payload_len:int -> Five_tuple.t -> t
val syn : Five_tuple.t -> t
(** First packet of a TCP connection. *)

val fin : Five_tuple.t -> t
val data : ?payload_len:int -> Five_tuple.t -> t

val wire_size : t -> int
(** Total bytes on the wire: Ethernet + IP + TCP/UDP headers + payload.
    Used by meters and throughput accounting. *)

val wire_size_of : payload_len:int -> Five_tuple.t -> int
(** {!wire_size} without building a packet record — the batched replay
    path meters flows it never boxes into [t]. *)

val rewrite_dst : t -> Endpoint.t -> t
(** Destination NAT: the balancer forwards the packet with the VIP
    replaced by the chosen DIP. *)

val pp : Format.formatter -> t -> unit
