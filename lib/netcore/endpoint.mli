(** An [ip:port] pair — the representation of both VIPs and DIPs. *)

type t = {
  ip : Ip.t;
  port : int;  (** 0..65535 *)
}

val make : Ip.t -> int -> t
val v4 : int -> int -> int -> int -> int -> t
(** [v4 a b c d port] is a convenience constructor for [a.b.c.d:port]. *)

val none : t
(** A {e physically unique} sentinel ([0.0.0.0:0]) that allocation-free
    code paths return instead of ['t option]. Test with [==], never with
    {!equal} — the same value can also be built legitimately. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash_fold : int64 -> t -> int64
val size_bytes : t -> int
(** Wire size of the endpoint: address bytes + 2 port bytes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
(** Parses ["a.b.c.d:port"] (or an IPv6 literal in square brackets,
    ["[h:...:h]:port"]). *)

val write : Buffer.t -> t -> unit
(** Binary codec used by packed traces: family tag byte (4 or 6), the
    address in network byte order, then the port as big-endian u16. *)

val read : Bytes.t -> int -> t * int
(** [read b pos] decodes an endpoint written by {!write} and returns it
    with the position just past it. Raises [Failure] on a bad tag. *)
