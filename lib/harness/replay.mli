(** The fast-path replay engine: stream a {!Packed_trace.t} through one
    or more {!Silkroad.Switch.t} instances with flat-array PCC
    accounting, allocation-free on the per-packet path.

    Three modes, with a pinned equivalence contract:

    - [Scalar] — one switch, one {!Silkroad.Switch.process_flow} call
      per packet. Reproduces {!Driver.run}'s observable counters exactly
      (same packets, same order, same control tie-breaking).
    - [Batch] — one switch, {!Silkroad.Switch.process_batch} over the
      packet runs between control events. Byte-identical to [Scalar],
      including the merged telemetry snapshot.
    - [Sharded] — flows partitioned by 5-tuple hash over K independent
      switches ([parallel] runs them on Domains). PCC is preserved
      trivially: every packet of a flow lands on the same switch.
      Digest collisions and Bloom false positives can only involve
      co-sharded flows — a strictly smaller collision class than the
      scalar run — so equivalence with [Scalar] is stated over the
      collision-free counters only.

    Judged-workload accounting mirrors {!Lb.Pcc} exactly; attack SYNs
    go through the switch but touch neither the packet counters nor the
    oracle, as in the driver. *)

type control =
  | Update of Netcore.Endpoint.t * Lb.Balancer.update
      (** apply to the switch, with dead-server PCC exclusion for
          removals/replacements — the driver's scripted-update rule *)
  | Dip_dead of Netcore.Endpoint.t  (** ground truth only: PCC exclusion *)
  | Cpu_backlog of int
  | Attack_syn of Netcore.Five_tuple.t

type mode =
  | Scalar
  | Batch
  | Sharded of {
      shards : int;
      parallel : bool;  (** spawn one Domain per extra shard *)
    }

val controls_of_chaos : horizon:float -> Chaos.Engine.event list -> (float * control) list
(** The control stream {!Driver.run} would derive from a compiled chaos
    timeline: delivered updates, DIP deaths, CPU backlogs and attack
    SYNs, with dropped/suppressed updates and recoveries elided.
    Events at or after the horizon are discarded. *)

val controls_of_updates :
  horizon:float ->
  (float * Netcore.Endpoint.t * Lb.Balancer.update) list ->
  (float * control) list
(** Scripted updates as controls. When combining with chaos controls,
    concatenate chaos first — {!run} sorts stably by time, so the
    driver's tie order is preserved. *)

type result = {
  mode : mode;
  packets : int;  (** measured probes (attack SYNs excluded) *)
  dropped : int;
  connections : int;  (** distinct connections judged (Pcc.total) *)
  broken : int;
  violations : int;
  false_hits : int;  (** summed over shards *)
  repairs : int;
  first_dip : Netcore.Endpoint.t array;
      (** per flow index: the DIP of its first judged packet;
          {!Silkroad.Switch.no_dip} (compare with [==]) when the first
          packet was dropped or the flow never sent *)
  telemetry : Telemetry.Registry.t;
      (** replay.* counters merged with every shard switch's registry *)
  elapsed : float;  (** CPU seconds spent replaying (gather excluded) *)
}

val shard_of : shards:int -> Netcore.Five_tuple.t -> int
(** The flow partition used by [Sharded] mode (dedicated hash seed,
    independent of all table seeds). *)

val run :
  ?mode:mode ->
  make_switch:(unit -> Silkroad.Switch.t) ->
  trace:Packed_trace.t ->
  controls:(float * control) list ->
  unit ->
  result
(** Replay the trace. [make_switch] is called once per shard and must
    return identically configured switches (same config, same VIPs and
    pools); the trace's horizon bounds the run and every switch gets a
    final [advance ~now:horizon]. Default mode: [Batch]. *)
