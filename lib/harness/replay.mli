(** The fast-path replay engine: stream a {!Packed_trace.t} through one
    or more {!Silkroad.Switch.t} instances with flat-array PCC
    accounting, allocation-free on the per-packet path.

    Three modes, with a pinned equivalence contract:

    - [Scalar] — one switch, one {!Silkroad.Switch.process_flow} call
      per packet. Reproduces {!Driver.run}'s observable counters exactly
      (same packets, same order, same control tie-breaking).
    - [Batch] — one switch, {!Silkroad.Switch.process_batch} over the
      packet runs between control events. Byte-identical to [Scalar],
      including the merged telemetry snapshot.
    - [Sharded] — flows partitioned by 5-tuple hash over K independent
      switches ([parallel] runs them on Domains). PCC is preserved
      trivially: every packet of a flow lands on the same switch.
      Digest collisions and Bloom false positives can only involve
      co-sharded flows — a strictly smaller collision class than the
      scalar run — so equivalence with [Scalar] is stated over the
      collision-free counters only.

    Judged-workload accounting mirrors {!Lb.Pcc} exactly; attack SYNs
    go through the switch but touch neither the packet counters nor the
    oracle, as in the driver. *)

type control =
  | Update of Netcore.Endpoint.t * Lb.Balancer.update
      (** apply to the switch, with dead-server PCC exclusion for
          removals/replacements — the driver's scripted-update rule *)
  | Dip_dead of Netcore.Endpoint.t  (** ground truth only: PCC exclusion *)
  | Cpu_backlog of int
  | Attack_syn of Netcore.Five_tuple.t
  | Reroute of Lb.Balancer.reroute
      (** topology re-route (switch failure/recovery, VIP migration):
          the selected flows lose their switch-side connection state via
          {!Silkroad.Switch.forget_flows}; the PCC arrays are untouched,
          so the oracle keeps holding the re-routed connections to their
          original DIP — the network-wide consistency question. *)

type mode =
  | Scalar
  | Batch
  | Sharded of {
      shards : int;
      parallel : bool;
          (** run the shards on a worker group of
              [min shards (auto_shards ())] Domains (one spawn per extra
              worker per run, shards strided across workers). With one
              available core the group degenerates to the sequential
              loop, so parallel never loses to sequential by
              oversubscription; counters are byte-identical to the
              sequential sharded run either way. *)
    }

val auto_shards : unit -> int
(** [max 1 (Domain.recommended_domain_count ())] — the shard/worker
    count matched to this machine. *)

val controls_of_chaos : horizon:float -> Chaos.Engine.event list -> (float * control) list
(** The control stream {!Driver.run} would derive from a compiled chaos
    timeline: delivered updates, DIP deaths, CPU backlogs and attack
    SYNs, with dropped/suppressed updates and recoveries elided.
    Events at or after the horizon are discarded. *)

val controls_of_updates :
  horizon:float ->
  (float * Netcore.Endpoint.t * Lb.Balancer.update) list ->
  (float * control) list
(** Scripted updates as controls. When combining with chaos controls,
    concatenate chaos first — {!run} sorts stably by time, so the
    driver's tie order is preserved. *)

type result = {
  mode : mode;
  packets : int;  (** measured probes (attack SYNs excluded) *)
  dropped : int;
  connections : int;  (** distinct connections judged (Pcc.total) *)
  broken : int;
  violations : int;
  false_hits : int;  (** summed over shards *)
  repairs : int;
  first_dip : Netcore.Endpoint.t array;
      (** per flow index: the DIP of its first judged packet;
          {!Silkroad.Switch.no_dip} (compare with [==]) when the first
          packet was dropped or the flow never sent *)
  telemetry : Telemetry.Registry.t;
      (** replay.* counters merged with every shard switch's registry *)
  elapsed : float;  (** CPU seconds spent replaying (gather excluded) *)
}

val shard_of : shards:int -> Netcore.Five_tuple.t -> int
(** The flow partition used by [Sharded] mode (dedicated hash seed,
    independent of all table seeds). *)

type counts = {
  c_packets : int;
  c_dropped : int;
  c_connections : int;  (** distinct connections judged (Pcc.total) *)
  c_broken : int;
  c_violations : int;
}

val sum_counts : counts list -> counts

(** The replay loop, exposed incrementally: one stepper per shard, each
    owning a switch and a cursor into its share of the packed trace.
    {!run} is exactly "apply every control in time order, then finish" on
    these steppers — the long-running serve mode ({!Control.Session})
    drives the same steppers one command at a time, which is what makes
    a scripted serve session counter-identical to a batch replay by
    construction.

    Discipline (shared with {!run}): packets at time [t <= at] fire
    before a control applied at [at] (the driver's tie order), and
    {!Stepper.apply}/{!Stepper.finish} are the only places the switch's
    control plane is advanced outside the packet path. *)
module Stepper : sig
  type shared
  (** The trace gathered per shard plus the flow-indexed PCC arrays
      (first-DIP and state) all shards of a run share; writes are
      disjoint by flow owner, so parallel steppers need no locks. *)

  val make_shared : trace:Packed_trace.t -> shards:int -> shared
  val horizon : shared -> float

  val first_dip : shared -> Netcore.Endpoint.t array
  (** Flow-indexed first judged DIP ({!Silkroad.Switch.no_dip}, compared
      with [==], when dropped or never sent). *)

  type t

  val create : shared -> shard:int -> batched:bool -> Silkroad.Switch.t -> t
  (** One stepper per shard, [shard] in [0 .. shards-1]. [batched] uses
      {!Silkroad.Switch.process_batch} (the fast path); [false] mirrors
      the scalar one-call-per-packet loop. *)

  val switch : t -> Silkroad.Switch.t

  val flush_to : t -> float -> unit
  (** Process this shard's packets with time [<= t] (monotone: already
      processed packets are never revisited). Does {e not} advance the
      switch's control plane beyond what the packet path itself does —
      exactly the batch loop's behaviour between controls. *)

  val apply : t -> at:float -> control -> unit
  (** [flush_to at], then apply the control: updates/backlogs advance
      the switch to [at] first; DIP removals and deaths exclude the DIP
      from PCC over this shard's flows; attack SYNs are applied only on
      their flow's owner shard (broadcast-safe). Controls must be
      applied in non-decreasing time order. *)

  val finish : t -> now:float -> unit
  (** Process every remaining packet, then advance the switch to [now]
      (the trace horizon in {!run}; a serve session may drain later). *)

  val counts : t -> counts
end

val run :
  ?mode:mode ->
  make_switch:(unit -> Silkroad.Switch.t) ->
  trace:Packed_trace.t ->
  controls:(float * control) list ->
  unit ->
  result
(** Replay the trace. [make_switch] is called once per shard and must
    return identically configured switches (same config, same VIPs and
    pools); the trace's horizon bounds the run and every switch gets a
    final [advance ~now:horizon]. Default mode: [Batch]. *)
