(* Flat pre-encoded packet traces for the replay fast path: one float
   per packet time, one int per flow index, one byte per flag set, all
   in time-sorted arrays. Compilation shares Driver.probe_points, so a
   packed trace is packet-for-packet the schedule the driver would have
   fired, including tie order (equal-time packets keep flow-major
   emission order, exactly the event queue's insertion order). *)

type t = {
  horizon : float;
  vips : Netcore.Endpoint.t array;
  flow_ids : int array;
  flow_vip : int array;  (** per flow: index into [vips] *)
  flow_tuples : Netcore.Five_tuple.t array;
  times : float array;  (** per packet, sorted (ties: emission order) *)
  pkt_flow : int array;  (** per packet: index into the flow arrays *)
  pkt_flags : Bytes.t;  (** per packet: [Tcp_flags.to_byte] *)
}

let n_flows t = Array.length t.flow_ids
let n_packets t = Array.length t.times

let dummy_tuple =
  Netcore.Five_tuple.make ~src:Netcore.Endpoint.none ~dst:Netcore.Endpoint.none
    ~proto:Netcore.Protocol.Tcp

let compile ?(early_offsets = Driver.default_early) ?(probe_interval = 15.) ~horizon flows =
  let kept =
    List.filter_map
      (fun f ->
        match Driver.probe_points ~early_offsets ~probe_interval ~horizon f with
        | [] -> None
        | pts -> Some (f, pts))
      flows
  in
  let n_flows = List.length kept in
  let vip_index = Hashtbl.create 16 in
  let vips_rev = ref [] in
  let n_vips = ref 0 in
  let vip_idx vip =
    match Hashtbl.find_opt vip_index vip with
    | Some i -> i
    | None ->
      let i = !n_vips in
      Hashtbl.replace vip_index vip i;
      vips_rev := vip :: !vips_rev;
      incr n_vips;
      i
  in
  let flow_ids = Array.make n_flows 0 in
  let flow_vip = Array.make n_flows 0 in
  let flow_tuples = Array.make n_flows dummy_tuple in
  let total = List.fold_left (fun acc (_, pts) -> acc + List.length pts) 0 kept in
  let raw_times = Array.make total 0. in
  let raw_flow = Array.make total 0 in
  let raw_flags = Bytes.create total in
  let p = ref 0 in
  List.iteri
    (fun fi ((flow : Simnet.Flow.t), pts) ->
      flow_ids.(fi) <- flow.Simnet.Flow.id;
      flow_tuples.(fi) <- flow.Simnet.Flow.tuple;
      flow_vip.(fi) <- vip_idx flow.Simnet.Flow.tuple.Netcore.Five_tuple.dst;
      List.iter
        (fun (at, flags) ->
          raw_times.(!p) <- at;
          raw_flow.(!p) <- fi;
          Bytes.set raw_flags !p (Char.chr (Netcore.Tcp_flags.to_byte flags));
          incr p)
        pts)
    kept;
  (* sort by (time, emission index): the driver schedules flows
     first-to-last, so emission order is its tie order *)
  let order = Array.init total (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare raw_times.(a) raw_times.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  let times = Array.make total 0. in
  let pkt_flow = Array.make total 0 in
  let pkt_flags = Bytes.create total in
  Array.iteri
    (fun i src ->
      times.(i) <- raw_times.(src);
      pkt_flow.(i) <- raw_flow.(src);
      Bytes.set pkt_flags i (Bytes.get raw_flags src))
    order;
  {
    horizon;
    vips = Array.of_list (List.rev !vips_rev);
    flow_ids;
    flow_vip;
    flow_tuples;
    times;
    pkt_flow;
    pkt_flags;
  }

(* ----- shard partitioning ----- *)

type partition = {
  pt_shards : int;
  flow_shard : int array;
  sh_times : float array array;
  sh_flows : Netcore.Five_tuple.t array array;
  sh_flags : Netcore.Tcp_flags.t array array;
  sh_pflow : int array array;
}

(* Counting-sort gather: two linear passes over the packet arrays, one
   contiguous sub-trace per shard. Within a shard, packets keep the
   global (time, emission) order — the per-shard streams are exactly the
   subsequences a per-shard switch would have seen in a scalar run. *)
let partition t ~shards ~shard_of =
  if shards < 1 then invalid_arg "Packed_trace.partition: shards must be >= 1";
  let n_flows = Array.length t.flow_ids in
  let n_pkts = Array.length t.times in
  let flow_shard = Array.init n_flows (fun i -> shard_of t.flow_tuples.(i)) in
  Array.iter
    (fun k ->
      if k < 0 || k >= shards then invalid_arg "Packed_trace.partition: shard_of out of range")
    flow_shard;
  (* decode flag bytes once: 6 TCP flag bits -> 64 possible sets *)
  let flags_tab = Array.init 64 Netcore.Tcp_flags.of_byte in
  let counts = Array.make shards 0 in
  for p = 0 to n_pkts - 1 do
    let k = flow_shard.(t.pkt_flow.(p)) in
    counts.(k) <- counts.(k) + 1
  done;
  let sh_times = Array.init shards (fun k -> Array.make counts.(k) 0.) in
  let sh_flows = Array.init shards (fun k -> Array.make counts.(k) dummy_tuple) in
  let sh_flags = Array.init shards (fun k -> Array.make counts.(k) Netcore.Tcp_flags.data) in
  let sh_pflow = Array.init shards (fun k -> Array.make counts.(k) 0) in
  let fill = Array.make shards 0 in
  for p = 0 to n_pkts - 1 do
    let fi = t.pkt_flow.(p) in
    let k = flow_shard.(fi) in
    let j = fill.(k) in
    fill.(k) <- j + 1;
    sh_times.(k).(j) <- t.times.(p);
    sh_flows.(k).(j) <- t.flow_tuples.(fi);
    sh_flags.(k).(j) <- flags_tab.(Char.code (Bytes.get t.pkt_flags p));
    sh_pflow.(k).(j) <- fi
  done;
  { pt_shards = shards; flow_shard; sh_times; sh_flows; sh_flags; sh_pflow }

(* ----- binary codec ----- *)

let magic = "SRPTRC01"

let save path t =
  let buf = Buffer.create (65536 + (17 * Array.length t.times)) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (Int64.bits_of_float t.horizon);
  Buffer.add_int64_le buf (Int64.of_int (Array.length t.vips));
  Array.iter (fun v -> Netcore.Endpoint.write buf v) t.vips;
  Buffer.add_int64_le buf (Int64.of_int (Array.length t.flow_ids));
  Array.iteri
    (fun i id ->
      Buffer.add_int64_le buf (Int64.of_int id);
      Buffer.add_int32_le buf (Int32.of_int t.flow_vip.(i));
      Netcore.Endpoint.write buf t.flow_tuples.(i).Netcore.Five_tuple.src;
      Buffer.add_uint8 buf (Netcore.Protocol.to_byte t.flow_tuples.(i).Netcore.Five_tuple.proto))
    t.flow_ids;
  Buffer.add_int64_le buf (Int64.of_int (Array.length t.times));
  Array.iteri
    (fun i at ->
      Buffer.add_int64_le buf (Int64.bits_of_float at);
      Buffer.add_int32_le buf (Int32.of_int t.pkt_flow.(i));
      Buffer.add_char buf (Bytes.get t.pkt_flags i))
    t.times;
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input ic b 0 len);
  if len < 8 || not (String.equal (Bytes.sub_string b 0 8) magic) then
    failwith "Packed_trace.load: bad magic";
  let pos = ref 8 in
  let i64 () =
    let v = Bytes.get_int64_le b !pos in
    pos := !pos + 8;
    v
  in
  let i32 () =
    let v = Bytes.get_int32_le b !pos in
    pos := !pos + 4;
    Int32.to_int v
  in
  let int () = Int64.to_int (i64 ()) in
  let horizon = Int64.float_of_bits (i64 ()) in
  let n_vips = int () in
  let vips = Array.make n_vips Netcore.Endpoint.none in
  for i = 0 to n_vips - 1 do
    let v, p = Netcore.Endpoint.read b !pos in
    pos := p;
    vips.(i) <- v
  done;
  let n_flows = int () in
  let flow_ids = Array.make n_flows 0 in
  let flow_vip = Array.make n_flows 0 in
  let flow_tuples = Array.make n_flows dummy_tuple in
  for i = 0 to n_flows - 1 do
    flow_ids.(i) <- int ();
    flow_vip.(i) <- i32 ();
    let src, p = Netcore.Endpoint.read b !pos in
    pos := p;
    let proto =
      match Netcore.Protocol.of_byte (Bytes.get_uint8 b !pos) with
      | Some pr -> pr
      | None -> failwith "Packed_trace.load: bad protocol byte"
    in
    incr pos;
    (* intern the destination: every flow of a VIP shares one endpoint
       record, as after [compile] *)
    flow_tuples.(i) <-
      Netcore.Five_tuple.make ~src ~dst:vips.(flow_vip.(i)) ~proto
  done;
  let n_pkts = int () in
  let times = Array.make n_pkts 0. in
  let pkt_flow = Array.make n_pkts 0 in
  let pkt_flags = Bytes.create n_pkts in
  for i = 0 to n_pkts - 1 do
    times.(i) <- Int64.float_of_bits (i64 ());
    pkt_flow.(i) <- i32 ();
    Bytes.set pkt_flags i (Bytes.get b !pos);
    incr pos
  done;
  { horizon; vips; flow_ids; flow_vip; flow_tuples; times; pkt_flow; pkt_flags }
