(** Flat pre-encoded packet traces for the replay fast path.

    A packed trace is the driver's packet schedule with all the boxing
    stripped: per-packet time, flow index and flag byte live in three
    parallel arrays sorted by (time, emission order) — the exact order
    {!Driver.run}'s event queue would fire them in — and per-flow
    metadata (5-tuple, VIP, id) lives in flow-indexed arrays. The
    replay engine streams these through {!Silkroad.Switch.process_batch}
    without allocating a packet record per probe.

    The binary codec ([save]/[load]) makes a compiled trace a reusable
    artifact: compile a big workload once, replay it under many
    configurations. *)

type t = {
  horizon : float;
  vips : Netcore.Endpoint.t array;  (** distinct VIPs, first-appearance order *)
  flow_ids : int array;
  flow_vip : int array;  (** per flow: index into [vips] *)
  flow_tuples : Netcore.Five_tuple.t array;
  times : float array;  (** per packet; sorted, ties in emission order *)
  pkt_flow : int array;  (** per packet: flow index *)
  pkt_flags : Bytes.t;  (** per packet: {!Netcore.Tcp_flags.to_byte} *)
}

val n_flows : t -> int
val n_packets : t -> int

val dummy_tuple : Netcore.Five_tuple.t
(** Placeholder tuple ([Endpoint.none] to [Endpoint.none]) used to
    initialise flow arrays before they are filled. *)

val compile :
  ?early_offsets:float list ->
  ?probe_interval:float ->
  horizon:float ->
  Simnet.Flow.t list ->
  t
(** Pre-encode the packet trains {!Driver.probe_points} generates for
    these flows (same defaults as {!Driver.run}). Flows starting at or
    after the horizon are dropped. *)

type partition = {
  pt_shards : int;
  flow_shard : int array;  (** per flow: owning shard *)
  sh_times : float array array;  (** per shard: packet times, globally ordered *)
  sh_flows : Netcore.Five_tuple.t array array;
  sh_flags : Netcore.Tcp_flags.t array array;  (** decoded flag sets *)
  sh_pflow : int array array;  (** per shard packet: global flow index *)
}
(** A trace pre-partitioned into per-shard packed sub-traces: one
    contiguous (times, flows, flags, flow-index) quadruple per shard,
    each preserving the global (time, emission) order. Built once at
    compile/load time so the replay hot loop — including the parallel
    worker handoff — touches only flat arrays. *)

val partition : t -> shards:int -> shard_of:(Netcore.Five_tuple.t -> int) -> partition
(** Gather each shard's packets into contiguous arrays (two linear
    passes; flag bytes decoded through a 64-entry table). [shard_of]
    must return values in [0, shards); raises [Invalid_argument]
    otherwise or when [shards < 1]. *)

val save : string -> t -> unit
(** Write the binary format (little-endian, magic ["SRPTRC01"]). *)

val load : string -> t
(** Read a trace written by {!save}; VIP endpoints are interned so every
    flow of a VIP shares one record. Raises [Failure] on malformed
    input. *)
