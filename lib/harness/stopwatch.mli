(** The allowlisted wall clock.

    Simulated time always comes from the harness; real (CPU) time may
    only be read here, and only to {e report} how long model-scale work
    took (e.g. the scalability experiment's insert rate) — never to
    influence simulation state. [silkroad-lint]'s [det.wall-clock] rule
    flags any other wall-clock read in [lib/] or [bin/]. *)

val elapsed : unit -> float
(** Processor time consumed by the program, in seconds ([Sys.time]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the CPU seconds it
    took. *)

val time_metric : ?metrics:Telemetry.Registry.t -> name:string -> (unit -> 'a) -> 'a * float
(** [time] that additionally records the duration on gauge [name] when
    a registry is given. *)
