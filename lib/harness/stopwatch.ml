(* The one module allowed to read the wall clock: everything else takes
   simulated [now] from the harness, and silkroad-lint's det.wall-clock
   rule enforces it. Timings measured here are *reported*, never fed
   back into simulation state, so determinism of results is preserved. *)
[@@@silkroad.allow "det.wall-clock"]

let elapsed () = Sys.time ()

let time f =
  let t0 = elapsed () in
  let x = f () in
  let dt = elapsed () -. t0 in
  (x, dt)

let time_metric ?metrics ~name f =
  let x, dt = time f in
  (match metrics with
   | Some registry ->
     Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge registry name) dt
   | None -> ());
  (x, dt)
