type result = {
  balancer_name : string;
  connections : int;
  broken_connections : int;
  broken_fraction : float;
  violation_packets : int;
  packets : int;
  dropped_packets : int;
  asic_bytes : float;
  cpu_bytes : float;
  slb_bytes : float;
  slb_traffic_fraction : float;
  latency_median : float;
  latency_p99 : float;
  telemetry : Telemetry.Snapshot.t;
}

(* sub-microsecond pipeline latency (§5.2: "full line-rate load
   balancing with sub-microsecond processing latency") *)
let asic_latency = 0.7e-6

(* "SLBs add a high latency of 50 us to 1 ms" (§2.2) *)
let slb_latency = Simnet.Dist.lognormal_of_quantiles ~median:150e-6 ~p99:1e-3

(* redirected packets cross PCI-E and the switch software: "a few
   milliseconds delay to the redirected TCP SYN packet" (§4.2) *)
let cpu_latency = Simnet.Dist.lognormal_of_quantiles ~median:2e-3 ~p99:10e-3

type acc = {
  balancer : Lb.Balancer.t;
  pcc : Lb.Pcc.t;
  chaos : Chaos.Injector.t option;
  lat_rng : Simnet.Prng.t;
  metrics : Telemetry.Registry.t;
  (* streaming latency histograms replace the old per-packet list: the
     driver's footprint no longer grows with the probe count *)
  h_latency : Telemetry.Histogram.t;
  h_lat_asic : Telemetry.Histogram.t;
  h_lat_cpu : Telemetry.Histogram.t;
  h_lat_slb : Telemetry.Histogram.t;
  c_packets : Telemetry.Registry.Counter.t;
  c_dropped : Telemetry.Registry.Counter.t;
  g_asic_bytes : Telemetry.Registry.Gauge.t;
  g_cpu_bytes : Telemetry.Registry.Gauge.t;
  g_slb_bytes : Telemetry.Registry.Gauge.t;
}

let make_acc ?chaos balancer =
  let reg = Telemetry.Registry.create () in
  let lat where =
    Telemetry.Registry.histogram reg ~labels:[ ("location", where) ] "driver.latency"
  in
  {
    balancer;
    pcc = Lb.Pcc.create ();
    chaos;
    lat_rng = Simnet.Prng.create ~seed:0x1a7;
    metrics = reg;
    h_latency = Telemetry.Registry.histogram reg "driver.latency";
    h_lat_asic = lat "asic";
    h_lat_cpu = lat "switch-cpu";
    h_lat_slb = lat "slb";
    c_packets = Telemetry.Registry.counter reg "driver.packets";
    c_dropped = Telemetry.Registry.counter reg "driver.dropped_packets";
    g_asic_bytes = Telemetry.Registry.gauge reg "driver.asic_bytes";
    g_cpu_bytes = Telemetry.Registry.gauge reg "driver.cpu_bytes";
    g_slb_bytes = Telemetry.Registry.gauge reg "driver.slb_bytes";
  }

let observe_latency acc per_location v =
  Telemetry.Histogram.observe acc.h_latency v;
  Telemetry.Histogram.observe per_location v

(* One probe of [flow] at [at], carrying the traffic volume of the
   [weight_dt] seconds preceding it. *)
let probe acc ~flags ~weight_dt (flow : Simnet.Flow.t) at sim =
  ignore sim;
  let pkt = Netcore.Packet.make ~flags ~payload_len:1024 flow.Simnet.Flow.tuple in
  acc.balancer.Lb.Balancer.advance ~now:at;
  let outcome = acc.balancer.Lb.Balancer.process ~now:at pkt in
  Telemetry.Registry.Counter.incr acc.c_packets;
  let bytes = flow.Simnet.Flow.bytes_per_sec *. Float.max weight_dt 1e-4 in
  (match outcome.Lb.Balancer.location with
   | Lb.Balancer.Asic ->
     Telemetry.Registry.Gauge.add acc.g_asic_bytes bytes;
     observe_latency acc acc.h_lat_asic asic_latency
   | Lb.Balancer.Switch_cpu ->
     Telemetry.Registry.Gauge.add acc.g_cpu_bytes bytes;
     observe_latency acc acc.h_lat_cpu (Simnet.Dist.sample cpu_latency acc.lat_rng)
   | Lb.Balancer.Slb ->
     Telemetry.Registry.Gauge.add acc.g_slb_bytes bytes;
     observe_latency acc acc.h_lat_slb (Simnet.Dist.sample slb_latency acc.lat_rng));
  if outcome.Lb.Balancer.dip = None then Telemetry.Registry.Counter.incr acc.c_dropped;
  (match Lb.Pcc.judge acc.pcc ~flow_id:flow.Simnet.Flow.id ~dip:outcome.Lb.Balancer.dip with
   | Lb.Pcc.Violation ->
     (match acc.chaos with
      | Some inj -> Chaos.Injector.attribute_violation inj ~now:at
      | None -> ())
   | Lb.Pcc.First | Lb.Pcc.Consistent | Lb.Pcc.Excluded -> ());
  if Netcore.Tcp_flags.is_connection_end flags then
    Lb.Pcc.on_finish acc.pcc ~flow_id:flow.Simnet.Flow.id

let default_early = [ 250e-6; 1e-3; 5e-3; 20e-3; 0.1 ]

(* The packet train of one flow, as (time, flags) pairs in strictly
   increasing time order: SYN at start, early + steady data probes, FIN
   when the flow ends inside the horizon. Shared with the packed-trace
   compiler so replay sees byte-identical packet schedules. *)
let probe_points ~early_offsets ~probe_interval ~horizon (flow : Simnet.Flow.t) =
  let start = flow.Simnet.Flow.start in
  let finish = Float.min (Simnet.Flow.finish flow) horizon in
  if start >= horizon then []
  else begin
    let times = ref [] in
    List.iter
      (fun off ->
        let at = start +. off in
        if at < finish then times := at :: !times)
      early_offsets;
    let rec steady at =
      if at < finish then begin
        times := at :: !times;
        steady (at +. probe_interval)
      end
    in
    steady (start +. probe_interval);
    let times = List.sort_uniq Float.compare !times in
    let pts =
      (start, Netcore.Tcp_flags.syn)
      :: List.map (fun at -> (at, Netcore.Tcp_flags.data)) times
    in
    if Simnet.Flow.finish flow < horizon then
      pts @ [ (Simnet.Flow.finish flow, Netcore.Tcp_flags.fin) ]
    else pts
  end

let schedule_flow acc ~early_offsets ~probe_interval ~horizon sim (flow : Simnet.Flow.t) =
  let last = ref flow.Simnet.Flow.start in
  List.iter
    (fun (at, flags) ->
      let dt = at -. !last in
      last := at;
      Simnet.Sim.schedule sim ~at (probe acc ~flags ~weight_dt:dt flow at))
    (probe_points ~early_offsets ~probe_interval ~horizon flow)

(* Replay one compiled chaos event into the running simulation. *)
let inject_chaos_event acc inj (ev : Chaos.Engine.event) sim =
  ignore sim;
  let now = ev.Chaos.Engine.time in
  Chaos.Injector.note_event inj ev;
  match ev.Chaos.Engine.op with
  | Chaos.Engine.Deliver_update (vip, u) ->
    acc.balancer.Lb.Balancer.advance ~now;
    (* same dead-server accounting as for scripted updates *)
    (match u with
     | Lb.Balancer.Dip_remove d -> Lb.Pcc.on_dip_removed acc.pcc ~dip:d
     | Lb.Balancer.Dip_replace { old_dip; _ } -> Lb.Pcc.on_dip_removed acc.pcc ~dip:old_dip
     | Lb.Balancer.Dip_add _ -> ());
    acc.balancer.Lb.Balancer.update ~now ~vip u
  | Chaos.Engine.Update_dropped _ | Chaos.Engine.Update_suppressed _ ->
    (* the balancer never hears about these; accounting only *)
    ()
  | Chaos.Engine.Dip_died d ->
    (* ground truth: connections pinned to a dead server are dead on
       arrival whatever the balancer does — exclude them from PCC *)
    Lb.Pcc.on_dip_removed acc.pcc ~dip:d
  | Chaos.Engine.Dip_recovered _ -> ()
  | Chaos.Engine.Cpu_backlog n ->
    acc.balancer.Lb.Balancer.advance ~now;
    acc.balancer.Lb.Balancer.disturb ~now (Lb.Balancer.Cpu_backlog n)
  | Chaos.Engine.Switch_failed r
  | Chaos.Engine.Switch_recovered r
  | Chaos.Engine.Vip_migrated r ->
    (* topology re-route: the affected flows land on a balancer instance
       without their state. The connections themselves are fine — the
       PCC oracle keeps judging them, which is the point: a stateful
       balancer must survive the re-route without remapping them. *)
    acc.balancer.Lb.Balancer.advance ~now;
    acc.balancer.Lb.Balancer.disturb ~now (Lb.Balancer.Reroute r)
  | Chaos.Engine.Syn_packet tuple ->
    (* attack traffic: goes through the balancer (filling tables and
       queues) but is not part of the measured workload, so it touches
       neither the PCC oracle nor the driver.* counters *)
    acc.balancer.Lb.Balancer.advance ~now;
    let pkt = Netcore.Packet.make ~flags:Netcore.Tcp_flags.syn ~payload_len:0 tuple in
    ignore (acc.balancer.Lb.Balancer.process ~now pkt)

let run ?(early_offsets = default_early) ?(probe_interval = 15.) ?chaos ~balancer ~flows ~updates
    ~horizon () =
  let sim = Simnet.Sim.create () in
  let acc = make_acc ?chaos balancer in
  List.iter (fun flow -> schedule_flow acc ~early_offsets ~probe_interval ~horizon sim flow) flows;
  (match chaos with
   | None -> ()
   | Some inj ->
     List.iter
       (fun (ev : Chaos.Engine.event) ->
         if ev.Chaos.Engine.time < horizon then
           Simnet.Sim.schedule sim ~at:ev.Chaos.Engine.time (inject_chaos_event acc inj ev))
       (Chaos.Injector.events inj));
  List.iter
    (fun (at, vip, u) ->
      if at < horizon then
        Simnet.Sim.schedule sim ~at (fun _ ->
            balancer.Lb.Balancer.advance ~now:at;
            (* a removed DIP's server is gone: its connections are dead
               on arrival, not PCC victims *)
            (match u with
             | Lb.Balancer.Dip_remove d -> Lb.Pcc.on_dip_removed acc.pcc ~dip:d
             | Lb.Balancer.Dip_replace { old_dip; _ } ->
               Lb.Pcc.on_dip_removed acc.pcc ~dip:old_dip
             | Lb.Balancer.Dip_add _ -> ());
            balancer.Lb.Balancer.update ~now:at ~vip u))
    updates;
  Simnet.Sim.run sim ~until:horizon;
  balancer.Lb.Balancer.advance ~now:horizon;
  let asic_bytes = Telemetry.Registry.Gauge.value acc.g_asic_bytes in
  let cpu_bytes = Telemetry.Registry.Gauge.value acc.g_cpu_bytes in
  let slb_bytes = Telemetry.Registry.Gauge.value acc.g_slb_bytes in
  let total_bytes = asic_bytes +. cpu_bytes +. slb_bytes in
  (* one combined snapshot: the driver's own metrics plus everything the
     balancer reports (merged, so neither registry is mutated) *)
  let combined = Telemetry.Registry.create () in
  Telemetry.Registry.merge_into ~into:combined acc.metrics;
  Telemetry.Registry.merge_into ~into:combined (balancer.Lb.Balancer.metrics ());
  (match chaos with
   | Some inj -> Telemetry.Registry.merge_into ~into:combined (Chaos.Injector.metrics inj)
   | None -> ());
  {
    balancer_name = balancer.Lb.Balancer.name;
    connections = Lb.Pcc.total acc.pcc;
    broken_connections = Lb.Pcc.broken acc.pcc;
    broken_fraction = Lb.Pcc.broken_fraction acc.pcc;
    violation_packets = Lb.Pcc.violations acc.pcc;
    packets = Telemetry.Registry.Counter.value acc.c_packets;
    dropped_packets = Telemetry.Registry.Counter.value acc.c_dropped;
    asic_bytes;
    cpu_bytes;
    slb_bytes;
    slb_traffic_fraction = (if total_bytes > 0. then slb_bytes /. total_bytes else 0.);
    latency_median = Simnet.Stats.median_of_histogram acc.h_latency;
    latency_p99 = Simnet.Stats.p99_of_histogram acc.h_latency;
    telemetry = Telemetry.Registry.snapshot combined;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%s: conns=%d broken=%d (%.4f%%) packets=%d dropped=%d slb-traffic=%.1f%%"
    r.balancer_name r.connections r.broken_connections (100. *. r.broken_fraction) r.packets
    r.dropped_packets (100. *. r.slb_traffic_fraction)
