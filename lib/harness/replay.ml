(* The fast-path replay engine: stream a packed trace through one or
   more Switch instances with flat-array PCC accounting.

   Equivalence contract (pinned by test/test_replay.ml):
   - [Scalar] reproduces Driver.run's observable counters exactly: same
     packets in the same order, controls applied with the driver's tie
     order (packets at a control's timestamp fire first, because the
     driver schedules every probe before any control event).
   - [Batch] is byte-identical to [Scalar]: same single switch, same
     packet order — only the boxing differs.
   - [Sharded] partitions flows by 5-tuple hash across K independent
     switches. PCC is preserved trivially: every packet of a flow lands
     on the same switch, so each connection sees one consistent view.
     Per-shard ConnTables mean digest collisions (and Bloom-filter false
     positives) can only involve co-sharded flows — a strictly smaller
     collision class than the scalar run, which is why shard equivalence
     is stated over the collision-free counter set. *)

type control =
  | Update of Netcore.Endpoint.t * Lb.Balancer.update
  | Dip_dead of Netcore.Endpoint.t
  | Cpu_backlog of int
  | Attack_syn of Netcore.Five_tuple.t

type mode =
  | Scalar
  | Batch
  | Sharded of {
      shards : int;
      parallel : bool;
    }

let controls_of_chaos ~horizon events =
  List.filter_map
    (fun (ev : Chaos.Engine.event) ->
      if ev.Chaos.Engine.time >= horizon then None
      else
        match ev.Chaos.Engine.op with
        | Chaos.Engine.Deliver_update (vip, u) -> Some (ev.Chaos.Engine.time, Update (vip, u))
        | Chaos.Engine.Update_dropped _ | Chaos.Engine.Update_suppressed _ -> None
        | Chaos.Engine.Dip_died d -> Some (ev.Chaos.Engine.time, Dip_dead d)
        | Chaos.Engine.Dip_recovered _ -> None
        | Chaos.Engine.Cpu_backlog n -> Some (ev.Chaos.Engine.time, Cpu_backlog n)
        | Chaos.Engine.Syn_packet tuple -> Some (ev.Chaos.Engine.time, Attack_syn tuple))
    events

let controls_of_updates ~horizon updates =
  List.filter_map
    (fun (at, vip, u) -> if at >= horizon then None else Some (at, Update (vip, u)))
    updates

type result = {
  mode : mode;
  packets : int;
  dropped : int;
  connections : int;
  broken : int;
  violations : int;
  false_hits : int;
  repairs : int;
  first_dip : Netcore.Endpoint.t array;
  telemetry : Telemetry.Registry.t;
  elapsed : float;
}

(* per-shard accounting; summed at the end *)
type counters = {
  mutable sc_packets : int;
  mutable sc_dropped : int;
  mutable sc_total : int;
  mutable sc_broken : int;
  mutable sc_violations : int;
}

(* flat PCC state bytes (shared arrays, disjoint writes by flow owner) *)
let st_live = 1
let st_excluded = 2
let st_bad = 4

(* Mirrors Lb.Pcc.judge + on_finish, flow-indexed and allocation-free.
   [no_dip] is the physically-unique drop sentinel (tested with [==]),
   which doubles as the oracle's "first packet was dropped" marker —
   exactly Pcc's [first = None]. *)
let judge ~no_dip ~first ~state (c : counters) i dip ~ends =
  c.sc_packets <- c.sc_packets + 1;
  if dip == no_dip then c.sc_dropped <- c.sc_dropped + 1;
  let b = Char.code (Bytes.unsafe_get state i) in
  if b land st_live = 0 then begin
    c.sc_total <- c.sc_total + 1;
    let bad = dip == no_dip in
    if bad then begin
      c.sc_broken <- c.sc_broken + 1;
      c.sc_violations <- c.sc_violations + 1
    end;
    Array.unsafe_set first i dip;
    Bytes.unsafe_set state i (Char.unsafe_chr (st_live lor (if bad then st_bad else 0)))
  end
  else if b land st_excluded = 0 then begin
    let f = Array.unsafe_get first i in
    let consistent = f != no_dip && dip != no_dip && Netcore.Endpoint.equal f dip in
    if not consistent then begin
      c.sc_violations <- c.sc_violations + 1;
      if b land st_bad = 0 then begin
        c.sc_broken <- c.sc_broken + 1;
        Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_bad))
      end
    end
  end;
  (* Pcc.on_finish: drop the tracking state (the verdict counters keep
     what happened; [first] keeps the assignment for introspection) *)
  if ends then Bytes.unsafe_set state i '\000'

(* Pcc.on_dip_removed over this shard's flows only: a flow is judged
   exclusively by its owner shard, so shard-local exclusion is globally
   equivalent. *)
let exclude_dip ~no_dip ~first ~state ~flow_shard ~shard dip =
  for i = 0 to Array.length first - 1 do
    if Array.unsafe_get flow_shard i = shard then begin
      let b = Char.code (Bytes.unsafe_get state i) in
      if b land st_live <> 0 then begin
        let f = Array.unsafe_get first i in
        if f != no_dip && Netcore.Endpoint.equal f dip then
          Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_excluded))
      end
    end
  done

(* flows are partitioned by a dedicated hash seed, independent of every
   table/ECMP seed, so sharding never correlates with placement *)
let shard_seed = 0x51a9

let shard_of ~shards tuple =
  if shards = 1 then 0
  else Netcore.Hashing.to_range (Netcore.Five_tuple.hash ~seed:shard_seed tuple) shards

let run ?(mode = Batch) ~make_switch ~(trace : Packed_trace.t) ~controls () =
  let horizon = trace.Packed_trace.horizon in
  let shards, parallel =
    match mode with
    | Scalar | Batch -> (1, false)
    | Sharded { shards; parallel } ->
      if shards < 1 then invalid_arg "Replay.run: shards must be >= 1";
      (shards, parallel)
  in
  let batched = match mode with Scalar -> false | Batch | Sharded _ -> true in
  let n_flows = Array.length trace.Packed_trace.flow_ids in
  let n_pkts = Array.length trace.Packed_trace.times in
  let flow_shard =
    Array.init n_flows (fun i -> shard_of ~shards trace.Packed_trace.flow_tuples.(i))
  in
  (* decode flag bytes once: 6 TCP flag bits -> 64 possible sets *)
  let flags_tab = Array.init 64 Netcore.Tcp_flags.of_byte in
  (* gather each shard's packets into contiguous arrays *)
  let counts = Array.make shards 0 in
  for p = 0 to n_pkts - 1 do
    let k = flow_shard.(trace.Packed_trace.pkt_flow.(p)) in
    counts.(k) <- counts.(k) + 1
  done;
  let sh_times = Array.init shards (fun k -> Array.make counts.(k) 0.) in
  let sh_flows =
    Array.init shards (fun k -> Array.make counts.(k) Packed_trace.dummy_tuple)
  in
  let sh_flags = Array.init shards (fun k -> Array.make counts.(k) Netcore.Tcp_flags.data) in
  let sh_pflow = Array.init shards (fun k -> Array.make counts.(k) 0) in
  let fill = Array.make shards 0 in
  for p = 0 to n_pkts - 1 do
    let fi = trace.Packed_trace.pkt_flow.(p) in
    let k = flow_shard.(fi) in
    let j = fill.(k) in
    fill.(k) <- j + 1;
    sh_times.(k).(j) <- trace.Packed_trace.times.(p);
    sh_flows.(k).(j) <- trace.Packed_trace.flow_tuples.(fi);
    sh_flags.(k).(j) <- flags_tab.(Char.code (Bytes.get trace.Packed_trace.pkt_flags p));
    sh_pflow.(k).(j) <- fi
  done;
  (* controls: stable time sort keeps the driver's tie order (chaos
     events before scripted updates when the caller concatenates them in
     that order); attack SYNs route to their flow's owner shard, every
     other control is broadcast *)
  let controls = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) controls in
  let ctrls_of_shard k =
    Array.of_list
      (List.filter
         (fun (_, c) ->
           match c with
           | Attack_syn tuple -> shard_of ~shards tuple = k
           | Update _ | Dip_dead _ | Cpu_backlog _ -> true)
         controls)
  in
  let no_dip = Silkroad.Switch.no_dip in
  let first = Array.make n_flows no_dip in
  let state = Bytes.make n_flows '\000' in
  let switches = Array.init shards (fun _ -> make_switch ()) in
  let shard_counters =
    Array.init shards (fun _ ->
        { sc_packets = 0; sc_dropped = 0; sc_total = 0; sc_broken = 0; sc_violations = 0 })
  in
  let run_shard k =
    let sw = switches.(k) in
    let c = shard_counters.(k) in
    let times = sh_times.(k)
    and flows = sh_flows.(k)
    and flags = sh_flags.(k)
    and pflow = sh_pflow.(k) in
    let n = Array.length times in
    let dips = Array.make n no_dip in
    let ctrls = ctrls_of_shard k in
    let nc = Array.length ctrls in
    let payload_len = 1024 in
    let judge_range lo hi =
      for j = lo to hi - 1 do
        judge ~no_dip ~first ~state c (Array.unsafe_get pflow j) (Array.unsafe_get dips j)
          ~ends:(Netcore.Tcp_flags.is_connection_end (Array.unsafe_get flags j))
      done
    in
    let process_range lo hi =
      if hi > lo then begin
        if batched then
          Silkroad.Switch.process_batch sw ~times ~flows ~flags ~payload_len ~dips ~pos:lo
            ~len:(hi - lo)
        else
          for j = lo to hi - 1 do
            dips.(j) <-
              Silkroad.Switch.process_flow sw ~now:times.(j) ~flags:flags.(j) ~payload_len
                flows.(j)
          done;
        judge_range lo hi
      end
    in
    let exclude dip = exclude_dip ~no_dip ~first ~state ~flow_shard ~shard:k dip in
    let apply (at, ctrl) =
      match ctrl with
      | Update (vip, u) ->
        (* driver order: advance, dead-server PCC accounting, update *)
        Silkroad.Switch.advance sw ~now:at;
        (match u with
         | Lb.Balancer.Dip_remove d -> exclude d
         | Lb.Balancer.Dip_replace { old_dip; _ } -> exclude old_dip
         | Lb.Balancer.Dip_add _ -> ());
        Silkroad.Switch.request_update sw ~now:at ~vip u
      | Dip_dead d ->
        (* ground truth only: no balancer interaction *)
        exclude d
      | Cpu_backlog n ->
        Silkroad.Switch.advance sw ~now:at;
        Silkroad.Switch.inject_cpu_backlog sw ~now:at ~work_items:n
      | Attack_syn tuple ->
        (* fills tables and queues but is not measured workload: no
           counter, no PCC *)
        Silkroad.Switch.advance sw ~now:at;
        ignore
          (Silkroad.Switch.process_flow sw ~now:at ~flags:Netcore.Tcp_flags.syn ~payload_len:0
             tuple)
    in
    let i = ref 0 in
    let ci = ref 0 in
    while !ci < nc do
      let (at, _) = ctrls.(!ci) in
      (* packets at the control's timestamp fire first: the driver
         schedules every probe before any control event *)
      let j = ref !i in
      while !j < n && times.(!j) <= at do incr j done;
      process_range !i !j;
      i := !j;
      apply ctrls.(!ci);
      incr ci
    done;
    process_range !i n;
    Silkroad.Switch.advance sw ~now:horizon
  in
  let (), elapsed =
    Stopwatch.time (fun () ->
        if parallel && shards > 1 then begin
          let doms =
            Array.init (shards - 1) (fun j -> Domain.spawn (fun () -> run_shard (j + 1)))
          in
          run_shard 0;
          Array.iter Domain.join doms
        end
        else
          for k = 0 to shards - 1 do
            run_shard k
          done)
  in
  let tot = { sc_packets = 0; sc_dropped = 0; sc_total = 0; sc_broken = 0; sc_violations = 0 } in
  Array.iter
    (fun c ->
      tot.sc_packets <- tot.sc_packets + c.sc_packets;
      tot.sc_dropped <- tot.sc_dropped + c.sc_dropped;
      tot.sc_total <- tot.sc_total + c.sc_total;
      tot.sc_broken <- tot.sc_broken + c.sc_broken;
      tot.sc_violations <- tot.sc_violations + c.sc_violations)
    shard_counters;
  let false_hits = ref 0 in
  let repairs = ref 0 in
  Array.iter
    (fun sw ->
      let s = Silkroad.Switch.stats sw in
      false_hits := !false_hits + s.Silkroad.Switch.false_hits;
      repairs := !repairs + s.Silkroad.Switch.collision_repairs)
    switches;
  let own = Telemetry.Registry.create () in
  let c name v = Telemetry.Registry.Counter.add (Telemetry.Registry.counter own name) v in
  c "replay.packets" tot.sc_packets;
  c "replay.dropped_packets" tot.sc_dropped;
  c "replay.connections" tot.sc_total;
  c "replay.broken_connections" tot.sc_broken;
  c "replay.violation_packets" tot.sc_violations;
  let telemetry =
    Telemetry.Registry.merge_all
      (own :: Array.to_list (Array.map Silkroad.Switch.metrics switches))
  in
  {
    mode;
    packets = tot.sc_packets;
    dropped = tot.sc_dropped;
    connections = tot.sc_total;
    broken = tot.sc_broken;
    violations = tot.sc_violations;
    false_hits = !false_hits;
    repairs = !repairs;
    first_dip = first;
    telemetry;
    elapsed;
  }
