(* The fast-path replay engine: stream a packed trace through one or
   more Switch instances with flat-array PCC accounting.

   Equivalence contract (pinned by test/test_replay.ml):
   - [Scalar] reproduces Driver.run's observable counters exactly: same
     packets in the same order, controls applied with the driver's tie
     order (packets at a control's timestamp fire first, because the
     driver schedules every probe before any control event).
   - [Batch] is byte-identical to [Scalar]: same single switch, same
     packet order — only the boxing differs.
   - [Sharded] partitions flows by 5-tuple hash across K independent
     switches. PCC is preserved trivially: every packet of a flow lands
     on the same switch, so each connection sees one consistent view.
     Per-shard ConnTables mean digest collisions (and Bloom-filter false
     positives) can only involve co-sharded flows — a strictly smaller
     collision class than the scalar run, which is why shard equivalence
     is stated over the collision-free counter set.

   The engine is factored as an incremental [Stepper] (one per shard)
   so the long-running serve mode can drive the identical loop one
   control command at a time: [run] below is nothing but "apply every
   control in time order, then finish", which is why a scripted serve
   session is counter-identical to a batch replay by construction. *)

type control =
  | Update of Netcore.Endpoint.t * Lb.Balancer.update
  | Dip_dead of Netcore.Endpoint.t
  | Cpu_backlog of int
  | Attack_syn of Netcore.Five_tuple.t
  | Reroute of Lb.Balancer.reroute

type mode =
  | Scalar
  | Batch
  | Sharded of {
      shards : int;
      parallel : bool;
    }

let controls_of_chaos ~horizon events =
  List.filter_map
    (fun (ev : Chaos.Engine.event) ->
      if ev.Chaos.Engine.time >= horizon then None
      else
        match ev.Chaos.Engine.op with
        | Chaos.Engine.Deliver_update (vip, u) -> Some (ev.Chaos.Engine.time, Update (vip, u))
        | Chaos.Engine.Update_dropped _ | Chaos.Engine.Update_suppressed _ -> None
        | Chaos.Engine.Dip_died d -> Some (ev.Chaos.Engine.time, Dip_dead d)
        | Chaos.Engine.Dip_recovered _ -> None
        | Chaos.Engine.Cpu_backlog n -> Some (ev.Chaos.Engine.time, Cpu_backlog n)
        | Chaos.Engine.Syn_packet tuple -> Some (ev.Chaos.Engine.time, Attack_syn tuple)
        | Chaos.Engine.Switch_failed r
        | Chaos.Engine.Switch_recovered r
        | Chaos.Engine.Vip_migrated r -> Some (ev.Chaos.Engine.time, Reroute r))
    events

let controls_of_updates ~horizon updates =
  List.filter_map
    (fun (at, vip, u) -> if at >= horizon then None else Some (at, Update (vip, u)))
    updates

type result = {
  mode : mode;
  packets : int;
  dropped : int;
  connections : int;
  broken : int;
  violations : int;
  false_hits : int;
  repairs : int;
  first_dip : Netcore.Endpoint.t array;
  telemetry : Telemetry.Registry.t;
  elapsed : float;
}

type counts = {
  c_packets : int;
  c_dropped : int;
  c_connections : int;
  c_broken : int;
  c_violations : int;
}

(* per-shard accounting; summed at the end *)
type counters = {
  mutable sc_packets : int;
  mutable sc_dropped : int;
  mutable sc_total : int;
  mutable sc_broken : int;
  mutable sc_violations : int;
}

(* flat PCC state bytes (shared arrays, disjoint writes by flow owner) *)
let st_live = 1
let st_excluded = 2
let st_bad = 4

(* Mirrors Lb.Pcc.judge + on_finish, flow-indexed and allocation-free.
   [no_dip] is the physically-unique drop sentinel (tested with [==]),
   which doubles as the oracle's "first packet was dropped" marker —
   exactly Pcc's [first = None]. *)
let judge ~no_dip ~first ~state (c : counters) i dip ~ends =
  c.sc_packets <- c.sc_packets + 1;
  if dip == no_dip then c.sc_dropped <- c.sc_dropped + 1;
  let b = Char.code (Bytes.unsafe_get state i) in
  if b land st_live = 0 then begin
    c.sc_total <- c.sc_total + 1;
    let bad = dip == no_dip in
    if bad then begin
      c.sc_broken <- c.sc_broken + 1;
      c.sc_violations <- c.sc_violations + 1
    end;
    Array.unsafe_set first i dip;
    Bytes.unsafe_set state i (Char.unsafe_chr (st_live lor (if bad then st_bad else 0)))
  end
  else if b land st_excluded = 0 then begin
    let f = Array.unsafe_get first i in
    let consistent = f != no_dip && dip != no_dip && Netcore.Endpoint.equal f dip in
    if not consistent then begin
      c.sc_violations <- c.sc_violations + 1;
      if b land st_bad = 0 then begin
        c.sc_broken <- c.sc_broken + 1;
        Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_bad))
      end
    end
  end;
  (* Pcc.on_finish: drop the tracking state (the verdict counters keep
     what happened; [first] keeps the assignment for introspection) *)
  if ends then Bytes.unsafe_set state i '\000'

(* Pcc.on_dip_removed over this shard's flows only: a flow is judged
   exclusively by its owner shard, so shard-local exclusion is globally
   equivalent. *)
let exclude_dip ~no_dip ~first ~state ~flow_shard ~shard dip =
  for i = 0 to Array.length first - 1 do
    if Array.unsafe_get flow_shard i = shard then begin
      let b = Char.code (Bytes.unsafe_get state i) in
      if b land st_live <> 0 then begin
        let f = Array.unsafe_get first i in
        if f != no_dip && Netcore.Endpoint.equal f dip then
          Bytes.unsafe_set state i (Char.unsafe_chr (b lor st_excluded))
      end
    end
  done

(* flows are partitioned by a dedicated hash seed, independent of every
   table/ECMP seed, so sharding never correlates with placement *)
let shard_seed = 0x51a9

let shard_of ~shards tuple =
  if shards = 1 then 0
  else Netcore.Hashing.to_range (Netcore.Five_tuple.hash ~seed:shard_seed tuple) shards

(* Shard count matched to the machine: one shard per domain the runtime
   recommends, never fewer than one. On a single-core box this is 1 —
   sharding still pays (smaller per-table working sets), but extra
   domains would not. *)
let auto_shards () = Int.max 1 (Domain.recommended_domain_count ())

module Stepper = struct
  type shared = {
    horizon : float;
    shards : int;
    part : Packed_trace.partition;
    first : Netcore.Endpoint.t array;
    state : Bytes.t;
  }

  let make_shared ~(trace : Packed_trace.t) ~shards =
    if shards < 1 then invalid_arg "Replay.Stepper.make_shared: shards must be >= 1";
    let n_flows = Array.length trace.Packed_trace.flow_ids in
    let part = Packed_trace.partition trace ~shards ~shard_of:(shard_of ~shards) in
    {
      horizon = trace.Packed_trace.horizon;
      shards;
      part;
      first = Array.make n_flows Silkroad.Switch.no_dip;
      state = Bytes.make n_flows '\000';
    }

  let horizon sh = sh.horizon
  let first_dip sh = sh.first

  type t = {
    sh : shared;
    shard : int;
    switch : Silkroad.Switch.t;
    batched : bool;
    counters : counters;
    dips : Netcore.Endpoint.t array;
    mutable cursor : int;  (** next unprocessed packet of this shard *)
  }

  let create sh ~shard ~batched switch =
    if shard < 0 || shard >= sh.shards then invalid_arg "Replay.Stepper.create: bad shard";
    {
      sh;
      shard;
      switch;
      batched;
      counters =
        { sc_packets = 0; sc_dropped = 0; sc_total = 0; sc_broken = 0; sc_violations = 0 };
      dips = Array.make (Array.length sh.part.Packed_trace.sh_times.(shard)) Silkroad.Switch.no_dip;
      cursor = 0;
    }

  let switch st = st.switch

  let no_dip = Silkroad.Switch.no_dip
  let payload_len = 1024

  let process_range st lo hi =
    if hi > lo then begin
      let times = st.sh.part.Packed_trace.sh_times.(st.shard)
      and flows = st.sh.part.Packed_trace.sh_flows.(st.shard)
      and flags = st.sh.part.Packed_trace.sh_flags.(st.shard)
      and pflow = st.sh.part.Packed_trace.sh_pflow.(st.shard) in
      if st.batched then
        Silkroad.Switch.process_batch st.switch ~times ~flows ~flags ~payload_len ~dips:st.dips
          ~pos:lo ~len:(hi - lo)
      else
        for j = lo to hi - 1 do
          st.dips.(j) <-
            Silkroad.Switch.process_flow st.switch ~now:times.(j) ~flags:flags.(j) ~payload_len
              flows.(j)
        done;
      let first = st.sh.first and state = st.sh.state and c = st.counters in
      for j = lo to hi - 1 do
        judge ~no_dip ~first ~state c (Array.unsafe_get pflow j) (Array.unsafe_get st.dips j)
          ~ends:(Netcore.Tcp_flags.is_connection_end (Array.unsafe_get flags j))
      done
    end

  (* process this shard's packets with time <= [at] (the driver
     schedules every probe before any control event at the same time) *)
  let flush_to st at =
    let times = st.sh.part.Packed_trace.sh_times.(st.shard) in
    let n = Array.length times in
    let j = ref st.cursor in
    while !j < n && times.(!j) <= at do
      incr j
    done;
    process_range st st.cursor !j;
    st.cursor <- !j

  let exclude st dip =
    exclude_dip ~no_dip ~first:st.sh.first ~state:st.sh.state
      ~flow_shard:st.sh.part.Packed_trace.flow_shard ~shard:st.shard dip

  let apply st ~at ctrl =
    flush_to st at;
    match ctrl with
    | Update (vip, u) ->
      (* driver order: advance, dead-server PCC accounting, update *)
      Silkroad.Switch.advance st.switch ~now:at;
      (match u with
       | Lb.Balancer.Dip_remove d -> exclude st d
       | Lb.Balancer.Dip_replace { old_dip; _ } -> exclude st old_dip
       | Lb.Balancer.Dip_add _ -> ());
      Silkroad.Switch.request_update st.switch ~now:at ~vip u
    | Dip_dead d ->
      (* ground truth only: no balancer interaction *)
      exclude st d
    | Cpu_backlog n ->
      Silkroad.Switch.advance st.switch ~now:at;
      Silkroad.Switch.inject_cpu_backlog st.switch ~now:at ~work_items:n
    | Attack_syn tuple ->
      (* routed to the flow's owner shard; fills tables and queues but
         is not measured workload: no counter, no PCC *)
      if shard_of ~shards:st.sh.shards tuple = st.shard then begin
        Silkroad.Switch.advance st.switch ~now:at;
        ignore
          (Silkroad.Switch.process_flow st.switch ~now:at ~flags:Netcore.Tcp_flags.syn
             ~payload_len:0 tuple)
      end
    | Reroute r ->
      (* topology re-route: selected flows lose their switch-side state.
         No PCC effect here — the oracle keeps judging them, which is
         exactly the network-wide consistency question. *)
      Silkroad.Switch.advance st.switch ~now:at;
      ignore
        (Silkroad.Switch.forget_flows st.switch ~now:at (fun flow _vip ->
             Lb.Balancer.reroute_selects r flow))

  let finish st ~now =
    let n = Array.length st.sh.part.Packed_trace.sh_times.(st.shard) in
    process_range st st.cursor n;
    st.cursor <- n;
    Silkroad.Switch.advance st.switch ~now

  let counts st =
    let c = st.counters in
    {
      c_packets = c.sc_packets;
      c_dropped = c.sc_dropped;
      c_connections = c.sc_total;
      c_broken = c.sc_broken;
      c_violations = c.sc_violations;
    }
end

let sum_counts l =
  List.fold_left
    (fun acc c ->
      {
        c_packets = acc.c_packets + c.c_packets;
        c_dropped = acc.c_dropped + c.c_dropped;
        c_connections = acc.c_connections + c.c_connections;
        c_broken = acc.c_broken + c.c_broken;
        c_violations = acc.c_violations + c.c_violations;
      })
    { c_packets = 0; c_dropped = 0; c_connections = 0; c_broken = 0; c_violations = 0 }
    l

let run ?(mode = Batch) ~make_switch ~(trace : Packed_trace.t) ~controls () =
  let horizon = trace.Packed_trace.horizon in
  let shards, parallel =
    match mode with
    | Scalar | Batch -> (1, false)
    | Sharded { shards; parallel } ->
      if shards < 1 then invalid_arg "Replay.run: shards must be >= 1";
      (shards, parallel)
  in
  let batched = match mode with Scalar -> false | Batch | Sharded _ -> true in
  let sh = Stepper.make_shared ~trace ~shards in
  (* controls: stable time sort keeps the driver's tie order (chaos
     events before scripted updates when the caller concatenates them in
     that order); [Stepper.apply] routes attack SYNs to their flow's
     owner shard and broadcasts every other control *)
  let controls =
    Array.of_list (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) controls)
  in
  let steppers = Array.init shards (fun k -> Stepper.create sh ~shard:k ~batched (make_switch ())) in
  let run_shard k =
    let st = steppers.(k) in
    Array.iter (fun (at, ctrl) -> Stepper.apply st ~at ctrl) controls;
    Stepper.finish st ~now:horizon
  in
  (* Worker groups, not one Domain per shard: [workers] is capped at
     what the machine can actually run ([auto_shards]), each worker owns
     the stride [w, w+workers, ...] of shards and runs them start to
     finish, and exactly [workers - 1] Domains are spawned per run.
     With one available core, workers = 1 and the parallel branch is the
     literal sequential loop — parallel can never lose to sequential by
     oversubscription. *)
  let workers = if parallel && shards > 1 then Int.min shards (auto_shards ()) else 1 in
  let run_worker w =
    let k = ref w in
    while !k < shards do
      run_shard !k;
      k := !k + workers
    done
  in
  let (), elapsed =
    Stopwatch.time (fun () ->
        if workers > 1 then begin
          let doms =
            Array.init (workers - 1) (fun j -> Domain.spawn (fun () -> run_worker (j + 1)))
          in
          run_worker 0;
          Array.iter Domain.join doms
        end
        else
          for k = 0 to shards - 1 do
            run_shard k
          done)
  in
  let tot = sum_counts (Array.to_list (Array.map Stepper.counts steppers)) in
  let switches = Array.map Stepper.switch steppers in
  let false_hits = ref 0 in
  let repairs = ref 0 in
  Array.iter
    (fun sw ->
      let s = Silkroad.Switch.stats sw in
      false_hits := !false_hits + s.Silkroad.Switch.false_hits;
      repairs := !repairs + s.Silkroad.Switch.collision_repairs)
    switches;
  let own = Telemetry.Registry.create () in
  let c name v = Telemetry.Registry.Counter.add (Telemetry.Registry.counter own name) v in
  c "replay.packets" tot.c_packets;
  c "replay.dropped_packets" tot.c_dropped;
  c "replay.connections" tot.c_connections;
  c "replay.broken_connections" tot.c_broken;
  c "replay.violation_packets" tot.c_violations;
  let telemetry =
    Telemetry.Registry.merge_all
      (own :: Array.to_list (Array.map Silkroad.Switch.metrics switches))
  in
  {
    mode;
    packets = tot.c_packets;
    dropped = tot.c_dropped;
    connections = tot.c_connections;
    broken = tot.c_broken;
    violations = tot.c_violations;
    false_hits = !false_hits;
    repairs = !repairs;
    first_dip = Stepper.first_dip sh;
    telemetry;
    elapsed;
  }
