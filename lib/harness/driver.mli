(** The experiment driver: replay a flow-level workload and a DIP-update
    schedule against any {!Lb.Balancer.t}, and measure what the paper
    measures.

    Each flow is turned into a packet train: a SYN at its start, a burst
    of early probes (250 µs, 1 ms, 5 ms, 20 ms, 100 ms — inside the
    connection-learning race window §4.3 is about), steady probes every
    [probe_interval] for its lifetime (which expose Duet-style breakage
    at migration time), and a FIN at its end. Every probe is checked by
    the {!Lb.Pcc} oracle against the flow's first assignment; traffic
    volume is attributed to whichever component handled each probe,
    weighted by the flow's rate over the preceding inter-probe gap. *)

type result = {
  balancer_name : string;
  connections : int;
  broken_connections : int;
  broken_fraction : float;
  violation_packets : int;
  packets : int;
  dropped_packets : int;
  asic_bytes : float;
  cpu_bytes : float;
  slb_bytes : float;
  slb_traffic_fraction : float;  (** SLB bytes / total bytes — Figure 5a *)
  latency_median : float;  (** load-balancer-added latency (seconds) *)
  latency_p99 : float;
  telemetry : Telemetry.Snapshot.t;
      (** everything the run measured, machine-readable: the driver's own
          [driver.*] metrics (including the [driver.latency] histograms,
          overall and per handling location) merged with the balancer's
          registry. [latency_median] / [latency_p99] are read from the
          same histograms — the driver keeps no per-packet lists, so its
          memory footprint is independent of the probe count. *)
}

(** Per-packet latency added by the component that handled it, sampled
    from the paper's characterizations: sub-microsecond in the ASIC
    pipeline, 50 µs – 1 ms in an SLB (batched software processing),
    milliseconds through the switch CPU slow path. *)

val asic_latency : float
val slb_latency : Simnet.Dist.t
val cpu_latency : Simnet.Dist.t

val default_early : float list
(** The default [early_offsets]: 250 µs, 1 ms, 5 ms, 20 ms, 100 ms. *)

val probe_points :
  early_offsets:float list ->
  probe_interval:float ->
  horizon:float ->
  Simnet.Flow.t ->
  (float * Netcore.Tcp_flags.t) list
(** The packet train {!run} generates for one flow, as (time, flags)
    pairs in strictly increasing time order — SYN at the flow's start,
    early and steady data probes, FIN when the flow ends before the
    horizon; empty when the flow starts at or after the horizon. The
    packed-trace compiler uses the same function, so a replayed trace is
    packet-for-packet identical to a driver run. *)

val run :
  ?early_offsets:float list ->
  ?probe_interval:float ->
  ?chaos:Chaos.Injector.t ->
  balancer:Lb.Balancer.t ->
  flows:Simnet.Flow.t list ->
  updates:(float * Netcore.Endpoint.t * Lb.Balancer.update) list ->
  horizon:float ->
  unit ->
  result
(** Flows starting after [horizon] are ignored; probes are truncated at
    [horizon]. Updates are applied at their scheduled times.

    With [?chaos], the injector's compiled timeline is scheduled into
    the simulation alongside the workload: delivered updates drive
    [balancer.update] (with the same dead-server PCC accounting as
    scripted [updates]), CPU-backlog events hit [balancer.disturb],
    SYN-flood packets are processed by the balancer but excluded from
    the measured workload, and every PCC violation a probe observes is
    attributed to the active fault window in the injector's [chaos.*]
    counters, which are merged into [result.telemetry]. A chaos scenario
    that generates pool churn assumes it owns the update stream — don't
    also pass scripted [updates] that touch the same pools, the two
    streams would desynchronise membership. *)

val pp_result : Format.formatter -> result -> unit
