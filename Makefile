.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full verification: build everything, run the test suite, then a smoke
# bench run that exercises the telemetry pipeline end to end and leaves
# its registry snapshot in BENCH_telemetry.json.
check: build test
	dune exec bench/main.exe -- --smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
	rm -f BENCH_telemetry.json
