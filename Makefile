.PHONY: all build test check bench soak lint verify fmt fmt-check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full verification: build everything, run the test suite and the
# silkroad-verify gate, then a smoke bench run that exercises the
# telemetry pipeline end to end (leaving its registry snapshot in
# BENCH_telemetry.json) and the control-plane smoke bench (serve-mode
# update churn under replay load).
check: build test verify
	dune exec bench/main.exe -- --smoke
	dune exec bench/main.exe -- --control --smoke

bench:
	dune exec bench/main.exe

# silkroad-lint: pipeline feasibility (stage/SRAM/ALU budgets on the §6
# chip), network-wide VIP placement, and the determinism source lint
# over lib/ and bin/. Non-zero exit on any error-level finding; CI runs
# this as the `lint` job.
lint: build
	dune exec bin/silkroad_cli.exe -- lint

# silkroad-verify: the inter-procedural Domain-safety race analysis over
# the built .cmt trees plus the bounded PCC model checker (exhausts the
# update/packet interleaving scopes and demands every seeded mutation is
# killed). Non-zero exit on any error-level finding; CI runs this as the
# `verify` job and `check` depends on it.
verify: build
	dune exec bin/silkroad_cli.exe -- verify

# The chaos soak: every built-in fault scenario crossed with every
# balancer at the full operating point (~10 minutes). Writes one
# CHAOS_soak.<scenario>.<balancer>.json report per run and fails if
# silkroad breaks per-connection consistency anywhere. CI runs this
# nightly and on manual dispatch (the `soak` workflow job).
soak: build
	dune exec bench/main.exe -- --soak

# Formatting gates. ocamlformat is not vendored: when the binary is
# missing (e.g. a minimal container) these targets skip with a notice
# instead of failing; CI installs the version pinned in .ocamlformat.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping fmt (CI enforces it)"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping fmt-check (CI enforces it)"; \
	fi

clean:
	dune clean
	rm -f BENCH_telemetry.json CHAOS_soak.*.json chaos_report*.json
	rm -f BENCH_control.json.tmp BENCH_replay.json.tmp BENCH_netwide.json.tmp
	rm -f netwide_metrics.json *.sock *.srptrc
