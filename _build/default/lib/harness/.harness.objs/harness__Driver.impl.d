lib/harness/driver.ml: Float Format Lb List Netcore Simnet
