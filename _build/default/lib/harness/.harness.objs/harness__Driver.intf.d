lib/harness/driver.mli: Format Lb Netcore Simnet
