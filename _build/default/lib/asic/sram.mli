(** SRAM geometry of a match-action ASIC.

    Exact-match tables are laid out in SRAM words; the paper (following
    RMT) uses 112-bit words and packs several narrow entries into one
    word ("word packing" — four 28-bit SilkRoad ConnTable entries per
    word). This module centralises all the bit/word/byte arithmetic the
    memory model depends on. *)

val word_bits : int
(** Width of one SRAM word: 112 bits. *)

val block_words : int
(** Words per SRAM block (the allocation granularity of the pipeline):
    1024. *)

val entries_per_word : entry_bits:int -> int
(** How many entries of [entry_bits] bits pack into one word (at least
    one entry is assumed to fit; wider entries span multiple words). *)

val words_for_entries : entry_bits:int -> entries:int -> int
(** Words needed to store [entries] entries with word packing. For
    entries wider than a word this rounds the per-entry word count up. *)

val bits_for_entries : entry_bits:int -> entries:int -> int
(** Total SRAM bits consumed, including the packing waste. *)

val bytes_of_bits : int -> int
val mib_of_bits : int -> float
(** Bits to binary megabytes (the unit Table 1 and Figures 12/14 use). *)
