let select members h =
  assert (Array.length members > 0);
  members.(Netcore.Hashing.to_range h (Array.length members))

let select_index n h = Netcore.Hashing.to_range h n

type 'a resilient = {
  slots : 'a array;
  members : 'a array;
}

let resilient ?(slots_per_member = 64) members =
  assert (Array.length members > 0);
  assert (slots_per_member > 0);
  let n = Array.length members * slots_per_member in
  { slots = Array.init n (fun i -> members.(i mod Array.length members)); members }

let resilient_select t h = t.slots.(Netcore.Hashing.to_range h (Array.length t.slots))

let resilient_members t = t.members

let resilient_remove ~equal t m =
  let survivors = Array.of_list (List.filter (fun x -> not (equal x m)) (Array.to_list t.members)) in
  assert (Array.length survivors > 0);
  let counter = ref 0 in
  let slots =
    Array.map
      (fun owner ->
        if equal owner m then begin
          let s = survivors.(!counter mod Array.length survivors) in
          incr counter;
          s
        end
        else owner)
      t.slots
  in
  { slots; members = survivors }

let resilient_add t m =
  let members = Array.append t.members [| m |] in
  let n_members = Array.length members in
  let share = Array.length t.slots / n_members in
  (* Deterministically steal every (n_members)-th slot until the new
     member owns an even share. *)
  let slots = Array.copy t.slots in
  let stolen = ref 0 in
  let i = ref 0 in
  while !stolen < share && !i < Array.length slots do
    if !i mod n_members = 0 then begin
      slots.(!i) <- m;
      incr stolen
    end;
    incr i
  done;
  { slots; members }
