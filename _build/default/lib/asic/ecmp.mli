(** ECMP-style hash selection over a member group.

    The generic hash units of the ASIC select one member of a group from
    a packet hash — the primitive both Duet's VIPTable and SilkRoad's
    DIPPoolTable use to pick a DIP. Two policies are provided:

    - {!select}: plain modulo selection. Removing a member reshuffles
      almost every flow — the source of Duet's PCC violations.
    - {!select_resilient}: resilient hashing over a fixed slot table.
      Only flows of a removed member are remapped (§7 "Handle DIP
      failures"). *)

val select : 'a array -> int64 -> 'a
(** [select members h] picks the member indexed by [h mod n]. The array
    must be non-empty. *)

val select_index : int -> int64 -> int
(** [select_index n h] is just the index selection, for callers that
    keep members elsewhere. *)

type 'a resilient
(** A resilient-hashing group: a slot table of fixed size, each slot
    owned by a member; membership changes only reassign the slots of the
    affected member. *)

val resilient : ?slots_per_member:int -> 'a array -> 'a resilient
(** Build a slot table (default 64 slots per member, in round-robin). *)

val resilient_select : 'a resilient -> int64 -> 'a
val resilient_members : 'a resilient -> 'a array

val resilient_remove : equal:('a -> 'a -> bool) -> 'a resilient -> 'a -> 'a resilient
(** Remove a member: its slots are redistributed round-robin over the
    survivors; all other slots keep their owner. *)

val resilient_add : 'a resilient -> 'a -> 'a resilient
(** Add a member: it steals an even share of slots (deterministically)
    from existing members; unaffected slots keep their owner. *)
