lib/asic/resources.ml: Format List
