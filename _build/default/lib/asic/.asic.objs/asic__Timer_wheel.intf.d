lib/asic/timer_wheel.mli:
