lib/asic/switch_cpu.ml: Float
