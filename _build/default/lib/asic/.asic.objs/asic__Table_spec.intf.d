lib/asic/table_spec.mli: Resources
