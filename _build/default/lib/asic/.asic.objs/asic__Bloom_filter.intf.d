lib/asic/bloom_filter.mli: Resources
