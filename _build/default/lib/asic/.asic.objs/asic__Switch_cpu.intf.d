lib/asic/switch_cpu.mli:
