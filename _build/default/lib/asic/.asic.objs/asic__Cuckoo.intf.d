lib/asic/cuckoo.mli:
