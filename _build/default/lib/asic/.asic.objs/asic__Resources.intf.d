lib/asic/resources.mli: Format
