lib/asic/meter.mli: Format
