lib/asic/ecmp.ml: Array List Netcore
