lib/asic/sram.ml:
