lib/asic/ecmp.mli:
