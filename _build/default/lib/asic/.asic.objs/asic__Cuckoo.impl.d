lib/asic/cuckoo.ml: Array Hashtbl List Netcore Queue
