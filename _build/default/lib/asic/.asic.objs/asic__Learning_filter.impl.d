lib/asic/learning_filter.ml: Hashtbl List Queue
