lib/asic/table_spec.ml: Resources Sram
