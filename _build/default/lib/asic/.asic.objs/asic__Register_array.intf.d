lib/asic/register_array.mli: Resources
