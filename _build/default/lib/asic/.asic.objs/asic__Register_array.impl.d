lib/asic/register_array.ml: Array Resources
