lib/asic/learning_filter.mli:
