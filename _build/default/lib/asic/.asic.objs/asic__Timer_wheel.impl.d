lib/asic/timer_wheel.ml: Array Float Hashtbl Int List
