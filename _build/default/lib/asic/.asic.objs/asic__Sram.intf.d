lib/asic/sram.mli:
