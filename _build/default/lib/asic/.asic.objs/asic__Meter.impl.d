lib/asic/meter.ml: Float Format
