lib/asic/bloom_filter.ml: Netcore Register_array Resources
