let word_bits = 112
let block_words = 1024

let entries_per_word ~entry_bits =
  assert (entry_bits > 0);
  if entry_bits >= word_bits then 1 else word_bits / entry_bits

let words_for_entries ~entry_bits ~entries =
  assert (entries >= 0);
  if entries = 0 then 0
  else if entry_bits <= word_bits then
    let per = entries_per_word ~entry_bits in
    (entries + per - 1) / per
  else
    let words_per_entry = (entry_bits + word_bits - 1) / word_bits in
    entries * words_per_entry

let bits_for_entries ~entry_bits ~entries = words_for_entries ~entry_bits ~entries * word_bits

let bytes_of_bits bits = (bits + 7) / 8
let mib_of_bits bits = float_of_int bits /. 8. /. 1024. /. 1024.
