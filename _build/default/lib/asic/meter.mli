(** Two-rate three-color marker (RFC 4115), the ASIC's rate limiter.

    SilkRoad attaches a meter to each VIP for performance isolation:
    packets are marked Green (within committed rate), Yellow (within
    excess rate) or Red (dropped) by two token buckets refilled at the
    committed and excess information rates (§5.2). *)

type color =
  | Green
  | Yellow
  | Red

type t

val create : cir:float -> cbs:int -> eir:float -> ebs:int -> t
(** [cir]/[eir] in bytes per second; [cbs]/[ebs] burst sizes in bytes.
    Buckets start full. *)

val mark : t -> now:float -> bytes:int -> color
(** Mark (and account) a packet of [bytes] arriving at [now]. Seconds
    may not go backwards between calls. *)

val marked : t -> color -> int
(** Total bytes marked with the given color so far. *)

val pp_color : Format.formatter -> color -> unit
