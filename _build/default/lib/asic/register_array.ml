type t = {
  name : string;
  width_bits : int;
  mask : int;
  cells : int array;
  mutable ops : int;
}

let create ?(name = "registers") ~width_bits ~size () =
  assert (width_bits >= 1 && width_bits <= 62);
  assert (size > 0);
  { name; width_bits; mask = (1 lsl width_bits) - 1; cells = Array.make size 0; ops = 0 }

let name t = t.name
let size t = Array.length t.cells
let width_bits t = t.width_bits

let read t i =
  t.ops <- t.ops + 1;
  t.cells.(i)

let write t i v =
  t.ops <- t.ops + 1;
  t.cells.(i) <- v land t.mask

let read_modify_write t i f =
  t.ops <- t.ops + 1;
  let v = f t.cells.(i) land t.mask in
  t.cells.(i) <- v;
  v

let clear t = Array.fill t.cells 0 (Array.length t.cells) 0

let ops t = t.ops

let sram_bits t = size t * t.width_bits

let resources t = Resources.make ~sram_bits:(sram_bits t) ~stateful_alus:1 ()
