type 'k t = {
  granularity : float;
  slots : ('k, float) Hashtbl.t array;
  index : ('k, int) Hashtbl.t;  (** key -> slot currently holding it *)
  mutable cursor : int;  (** next slot to sweep *)
  mutable cursor_time : float;  (** time up to which slots were swept *)
}

let create ~granularity ~slots () =
  assert (granularity > 0.);
  assert (slots >= 2);
  {
    granularity;
    slots = Array.init slots (fun _ -> Hashtbl.create 16);
    index = Hashtbl.create 64;
    cursor = 0;
    cursor_time = 0.;
  }

let slot_of t at = int_of_float (at /. t.granularity) mod Array.length t.slots

let cancel t ~key =
  match Hashtbl.find_opt t.index key with
  | Some slot ->
    Hashtbl.remove t.slots.(slot) key;
    Hashtbl.remove t.index key
  | None -> ()

let schedule t ~key ~at =
  cancel t ~key;
  let slot = slot_of t (Float.max at t.cursor_time) in
  Hashtbl.replace t.slots.(slot) key at;
  Hashtbl.replace t.index key slot

let mem t ~key = Hashtbl.mem t.index key

let scheduled t = Hashtbl.length t.index

let advance t ~now =
  if now <= t.cursor_time then []
  else begin
    let expired = ref [] in
    let n = Array.length t.slots in
    let target_tick = int_of_float (now /. t.granularity) in
    let start_tick = int_of_float (t.cursor_time /. t.granularity) in
    (* sweep at most one full revolution: later slots repeat *)
    let ticks = Int.min (target_tick - start_tick) (n - 1) in
    for tick = start_tick to start_tick + ticks do
      let slot = tick mod n in
      let due =
        Hashtbl.fold (fun key at acc -> if at <= now then (key, at) :: acc else acc)
          t.slots.(slot) []
      in
      List.iter
        (fun (key, _) ->
          Hashtbl.remove t.slots.(slot) key;
          Hashtbl.remove t.index key)
        due;
      expired := due @ !expired
    done;
    t.cursor_time <- now;
    t.cursor <- target_tick mod n;
    List.sort (fun (_, a) (_, b) -> Float.compare a b) !expired |> List.map fst
  end
