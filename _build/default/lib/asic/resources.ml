type t = {
  match_crossbar_bits : int;
  sram_bits : int;
  tcam_bits : int;
  vliw_actions : int;
  hash_bits : int;
  stateful_alus : int;
  phv_bits : int;
}

let zero =
  {
    match_crossbar_bits = 0;
    sram_bits = 0;
    tcam_bits = 0;
    vliw_actions = 0;
    hash_bits = 0;
    stateful_alus = 0;
    phv_bits = 0;
  }

let add a b =
  {
    match_crossbar_bits = a.match_crossbar_bits + b.match_crossbar_bits;
    sram_bits = a.sram_bits + b.sram_bits;
    tcam_bits = a.tcam_bits + b.tcam_bits;
    vliw_actions = a.vliw_actions + b.vliw_actions;
    hash_bits = a.hash_bits + b.hash_bits;
    stateful_alus = a.stateful_alus + b.stateful_alus;
    phv_bits = a.phv_bits + b.phv_bits;
  }

let sum = List.fold_left add zero

let make ?(match_crossbar_bits = 0) ?(sram_bits = 0) ?(tcam_bits = 0) ?(vliw_actions = 0)
    ?(hash_bits = 0) ?(stateful_alus = 0) ?(phv_bits = 0) () =
  { match_crossbar_bits; sram_bits; tcam_bits; vliw_actions; hash_bits; stateful_alus; phv_bits }

type percentages = {
  p_match_crossbar : float;
  p_sram : float;
  p_tcam : float;
  p_vliw : float;
  p_hash_bits : float;
  p_stateful_alus : float;
  p_phv : float;
}

let pct part base =
  if base = 0 then if part = 0 then 0. else infinity
  else 100. *. float_of_int part /. float_of_int base

let relative_to ~base t =
  {
    p_match_crossbar = pct t.match_crossbar_bits base.match_crossbar_bits;
    p_sram = pct t.sram_bits base.sram_bits;
    p_tcam = pct t.tcam_bits base.tcam_bits;
    p_vliw = pct t.vliw_actions base.vliw_actions;
    p_hash_bits = pct t.hash_bits base.hash_bits;
    p_stateful_alus = pct t.stateful_alus base.stateful_alus;
    p_phv = pct t.phv_bits base.phv_bits;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>crossbar: %d bits@,sram: %d bits@,tcam: %d bits@,vliw: %d@,hash: %d bits@,salu: %d@,phv: %d bits@]"
    t.match_crossbar_bits t.sram_bits t.tcam_bits t.vliw_actions t.hash_bits t.stateful_alus
    t.phv_bits

let pp_percentages ppf p =
  Format.fprintf ppf
    "@[<v>Match Crossbar: %.2f%%@,SRAM: %.2f%%@,TCAM: %.2f%%@,VLIW Actions: %.2f%%@,Hash Bits: %.2f%%@,Stateful ALUs: %.2f%%@,Packet Header Vector: %.2f%%@]"
    p.p_match_crossbar p.p_sram p.p_tcam p.p_vliw p.p_hash_bits p.p_stateful_alus p.p_phv
