(** Hardware resource accounting for a match-action pipeline.

    These are the seven resource classes Table 2 of the paper reports:
    match crossbar bits, SRAM, TCAM, VLIW action slots, hash bits,
    stateful ALUs and PHV (packet header vector) bits. Every table,
    register array and meter in our ASIC model reports its consumption
    as a value of this type; a whole program is the sum. *)

type t = {
  match_crossbar_bits : int;
  sram_bits : int;
  tcam_bits : int;
  vliw_actions : int;
  hash_bits : int;
  stateful_alus : int;
  phv_bits : int;
}

val zero : t
val add : t -> t -> t
val sum : t list -> t

val make :
  ?match_crossbar_bits:int ->
  ?sram_bits:int ->
  ?tcam_bits:int ->
  ?vliw_actions:int ->
  ?hash_bits:int ->
  ?stateful_alus:int ->
  ?phv_bits:int ->
  unit ->
  t

type percentages = {
  p_match_crossbar : float;
  p_sram : float;
  p_tcam : float;
  p_vliw : float;
  p_hash_bits : float;
  p_stateful_alus : float;
  p_phv : float;
}

val relative_to : base:t -> t -> percentages
(** [relative_to ~base extra] expresses [extra] as a percentage of
    [base], field by field (Table 2's "additional usage normalized by
    the baseline switch.p4"). A zero base field with non-zero extra
    yields [infinity]; zero over zero yields [0.]. *)

val pp : Format.formatter -> t -> unit
val pp_percentages : Format.formatter -> percentages -> unit
