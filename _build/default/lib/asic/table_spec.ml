type t = {
  name : string;
  entries : int;
  match_key_bits : int;
  stored_key_bits : int;
  action_data_bits : int;
  overhead_bits : int;
  n_actions : int;
  index_hash_bits : int;
  metadata_phv_bits : int;
  uses_stateful_alu : int;
}

let make ~name ~entries ~match_key_bits ?stored_key_bits ~action_data_bits ?(overhead_bits = 6)
    ?(n_actions = 1) ?(index_hash_bits = 0) ?(metadata_phv_bits = 0) ?(uses_stateful_alu = 0) () =
  assert (entries >= 0);
  {
    name;
    entries;
    match_key_bits;
    stored_key_bits = (match stored_key_bits with Some b -> b | None -> match_key_bits);
    action_data_bits;
    overhead_bits;
    n_actions;
    index_hash_bits;
    metadata_phv_bits;
    uses_stateful_alu;
  }

let entry_bits t = t.stored_key_bits + t.action_data_bits + t.overhead_bits

let sram_bits t =
  if t.entries = 0 then 0
  else Sram.bits_for_entries ~entry_bits:(entry_bits t) ~entries:t.entries

let resources t =
  Resources.make ~match_crossbar_bits:t.match_key_bits ~sram_bits:(sram_bits t)
    ~vliw_actions:t.n_actions ~hash_bits:t.index_hash_bits ~phv_bits:t.metadata_phv_bits
    ~stateful_alus:t.uses_stateful_alu ()
