(** Static resource model of a match-action table.

    Given a table's geometry (entries, key width, action data width,
    per-entry overhead) this computes the pipeline resources it consumes,
    mirroring how a P4 compiler reports usage: match key bits go through
    the match crossbar, stored entries consume word-packed SRAM, hash
    units provide the cuckoo row addressing (and digest computation),
    each action uses a VLIW slot, and any metadata the table produces
    occupies PHV bits. Used to reproduce Table 2. *)

type t = {
  name : string;
  entries : int;  (** provisioned capacity *)
  match_key_bits : int;  (** bits presented to the match crossbar *)
  stored_key_bits : int;  (** bits stored per entry (digest or full key) *)
  action_data_bits : int;
  overhead_bits : int;  (** instruction + next-table pointers per entry *)
  n_actions : int;
  index_hash_bits : int;  (** hash bits for row addressing / digests *)
  metadata_phv_bits : int;
  uses_stateful_alu : int;  (** stateful ALUs (registers/meters) *)
}

val make :
  name:string ->
  entries:int ->
  match_key_bits:int ->
  ?stored_key_bits:int ->
  action_data_bits:int ->
  ?overhead_bits:int ->
  ?n_actions:int ->
  ?index_hash_bits:int ->
  ?metadata_phv_bits:int ->
  ?uses_stateful_alu:int ->
  unit ->
  t
(** [stored_key_bits] defaults to [match_key_bits] (exact match storing
    the full key); [overhead_bits] defaults to 6 — "an instruction
    address and a next table address" (§6 footnote 5). *)

val entry_bits : t -> int
(** Bits one entry occupies in SRAM: stored key + action data +
    overhead. *)

val sram_bits : t -> int
(** Word-packed footprint of the full table. *)

val resources : t -> Resources.t
