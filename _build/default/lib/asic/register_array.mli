(** Transactional register arrays.

    Switching ASICs expose arrays of small registers (used for counters
    and meters) with packet-transactional semantics: a
    read-check-modify-write completes in one clock cycle, so the update
    made for one packet is visible to the very next packet (§4.1). This
    is the primitive SilkRoad builds its TransitTable Bloom filter on.

    Values are masked to the register width on every write. *)

type t

val create : ?name:string -> width_bits:int -> size:int -> unit -> t
(** [create ~width_bits ~size ()] allocates [size] registers of
    [width_bits] bits each, all zero. [1 <= width_bits <= 62]. *)

val name : t -> string
val size : t -> int
val width_bits : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val read_modify_write : t -> int -> (int -> int) -> int
(** Atomic update; returns the value after modification. This is the
    one-cycle transactional primitive: there is no window between the
    read and the write. *)

val clear : t -> unit

val ops : t -> int
(** Number of read/write operations performed (for instrumentation). *)

val sram_bits : t -> int
(** Memory footprint of the array. *)

val resources : t -> Resources.t
(** Pipeline resources: its SRAM plus one stateful ALU. *)
