type t = {
  rate : float;
  mutable busy_until : float;
  mutable total_items : int;
}

let create ~insertions_per_sec =
  assert (insertions_per_sec > 0.);
  { rate = insertions_per_sec; busy_until = 0.; total_items = 0 }

let insertions_per_sec t = t.rate

let submit t ~now ~work_items =
  assert (work_items >= 0);
  let start = Float.max now t.busy_until in
  let finish = start +. (float_of_int work_items /. t.rate) in
  t.busy_until <- finish;
  t.total_items <- t.total_items + work_items;
  finish

let busy_until t = t.busy_until
let total_items t = t.total_items
