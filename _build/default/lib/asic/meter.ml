type color =
  | Green
  | Yellow
  | Red

type t = {
  cir : float;
  cbs : int;
  eir : float;
  ebs : int;
  mutable tc : float;  (** committed bucket tokens (bytes) *)
  mutable te : float;  (** excess bucket tokens (bytes) *)
  mutable last : float;
  mutable green : int;
  mutable yellow : int;
  mutable red : int;
}

let create ~cir ~cbs ~eir ~ebs =
  assert (cir >= 0. && eir >= 0.);
  assert (cbs >= 0 && ebs >= 0);
  {
    cir;
    cbs;
    eir;
    ebs;
    tc = float_of_int cbs;
    te = float_of_int ebs;
    last = 0.;
    green = 0;
    yellow = 0;
    red = 0;
  }

let refill t ~now =
  let dt = now -. t.last in
  assert (dt >= -1e-9);
  let dt = Float.max dt 0. in
  t.tc <- Float.min (float_of_int t.cbs) (t.tc +. (t.cir *. dt));
  t.te <- Float.min (float_of_int t.ebs) (t.te +. (t.eir *. dt));
  t.last <- now

let mark t ~now ~bytes =
  assert (bytes >= 0);
  refill t ~now;
  let b = float_of_int bytes in
  if t.tc >= b then begin
    t.tc <- t.tc -. b;
    t.green <- t.green + bytes;
    Green
  end
  else if t.te >= b then begin
    t.te <- t.te -. b;
    t.yellow <- t.yellow + bytes;
    Yellow
  end
  else begin
    t.red <- t.red + bytes;
    Red
  end

let marked t = function Green -> t.green | Yellow -> t.yellow | Red -> t.red

let pp_color ppf c =
  Format.pp_print_string ppf (match c with Green -> "green" | Yellow -> "yellow" | Red -> "red")
