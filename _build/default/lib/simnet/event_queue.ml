type 'a cell = {
  time : float;
  seq : int;
  payload : 'a;
}

type 'a t = {
  mutable heap : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let dummy = t.heap.(0) in
    let nheap = Array.make ncap dummy in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let add t ~time payload =
  let cell = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 cell;
  grow t;
  t.heap.(t.size) <- cell;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let drain_until t ~time =
  let rec go acc =
    match peek_time t with
    | Some ts when ts <= time ->
      (match pop t with
       | Some ev -> go (ev :: acc)
       | None -> assert false)
    | Some _ | None -> List.rev acc
  in
  go []
