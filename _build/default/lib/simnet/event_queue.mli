(** A priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order, so simulations are fully
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val is_empty : _ t -> bool
val size : _ t -> int

val add : 'a t -> time:float -> 'a -> unit
(** Schedule an event. Times may be in any order. *)

val peek_time : _ t -> float option

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val drain_until : 'a t -> time:float -> (float * 'a) list
(** Pop every event with timestamp <= [time], in order. *)
