type profile = {
  vip : Netcore.Endpoint.t;
  new_conns_per_sec : float;
  duration : Dist.t;
  bytes_per_sec : Dist.t;
  client_ipv6 : bool;
}

(* Median 10 s with a modest spread: most Hadoop flows finish within a
   minute, a few run for minutes. *)
let hadoop_durations = Dist.lognormal_of_quantiles ~median:10. ~p99:120.

(* Median 4.5 minutes (270 s); long-lived cache sessions run for an hour. *)
let cache_durations = Dist.lognormal_of_quantiles ~median:270. ~p99:3600.

let default_rate = Dist.lognormal_of_quantiles ~median:100_000. ~p99:10_000_000.

let profile ?(duration = hadoop_durations) ?(bytes_per_sec = default_rate)
    ?(client_ipv6 = false) ~vip ~new_conns_per_sec () =
  assert (new_conns_per_sec > 0.);
  { vip; new_conns_per_sec; duration; bytes_per_sec; client_ipv6 }

let random_client rng ~ipv6 =
  let port = 1024 + Prng.int rng (65536 - 1024) in
  let ip =
    if ipv6 then Netcore.Ip.v6 (Prng.int64 rng) (Prng.int64 rng)
    else
      (* public-looking /8 to avoid colliding with the 10.x DIP space *)
      Netcore.Ip.v4 (1 + Prng.int rng 223) (Prng.int rng 256) (Prng.int rng 256)
        (Prng.int rng 256)
  in
  Netcore.Endpoint.make ip port

let arrivals ~rng ~id_base p =
  let rng = Prng.copy rng in
  let mean_gap = 1. /. p.new_conns_per_sec in
  let rec gen id at () =
    let gap = Prng.exponential rng ~mean:mean_gap in
    let start = at +. gap in
    let src = random_client rng ~ipv6:p.client_ipv6 in
    let tuple = Netcore.Five_tuple.make ~src ~dst:p.vip ~proto:Netcore.Protocol.Tcp in
    let duration = Float.max 0.001 (Dist.sample p.duration rng) in
    let bytes_per_sec = Float.max 1. (Dist.sample p.bytes_per_sec rng) in
    let flow = { Flow.id; tuple; start; duration; bytes_per_sec } in
    Seq.Cons (flow, gen (id + 1) start)
  in
  gen id_base 0.

let merge seqs =
  (* Small-N merge: scan the current heads for the minimum start time. *)
  let rec next heads () =
    let heads = List.filter_map (fun s -> match s () with
      | Seq.Nil -> None
      | Seq.Cons (flow, rest) -> Some (flow, rest)) heads
    in
    match heads with
    | [] -> Seq.Nil
    | _ ->
      let (best, _) =
        List.fold_left
          (fun (bf, br) (f, r) ->
            if f.Flow.start < bf.Flow.start then (f, r) else (bf, br))
          (List.hd heads) (List.tl heads)
      in
      let rest =
        List.map
          (fun (f, r) -> if f == best then r else fun () -> Seq.Cons (f, r))
          heads
      in
      Seq.Cons (best, next rest)
  in
  next seqs

let take_until ~horizon seq =
  let rec go acc s =
    match s () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons (flow, rest) ->
      if flow.Flow.start >= horizon then List.rev acc else go (flow :: acc) rest
  in
  go [] seq
