(** Deterministic pseudo-random number generator (splitmix64).

    Every experiment in the repository is seeded, so results are
    reproducible run to run. The generator is splittable: {!split}
    derives an independent stream, which lets concurrent generators
    (per-VIP workloads, per-cluster traces) draw without interfering. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent child stream; the parent advances by one draw. *)

val copy : t -> t

val int64 : t -> int64
val bits30 : t -> int
(** 30 uniform bits as a non-negative int. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n). [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> float
(** Uniform on [0, 1) — never exactly 1. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val normal : t -> float
(** Standard normal (Box–Muller). *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** Choice proportional to the (positive) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
