type t = {
  id : int;
  tuple : Netcore.Five_tuple.t;
  start : float;
  duration : float;
  bytes_per_sec : float;
}

let finish t = t.start +. t.duration
let active_at t at = at >= t.start && at < finish t
let bytes t = t.bytes_per_sec *. t.duration
let vip t = t.tuple.Netcore.Five_tuple.dst

let pp ppf t =
  Format.fprintf ppf "flow#%d %a [%.3f,%.3f)" t.id Netcore.Five_tuple.pp t.tuple t.start
    (finish t)
