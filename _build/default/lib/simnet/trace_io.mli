(** Plain-text serialization of workload and update traces.

    The paper's evaluation replays production traces; an open-source
    release must let operators feed their own. The formats are
    line-oriented and diff-friendly:

    Flow trace — one flow per line:
    {v flow <id> <src> <dst> <start> <duration> <bytes_per_sec> v}

    Update trace — one event per line:
    {v update <time> <vip> add|remove <dip> v}

    Endpoints use the [Netcore.Endpoint] syntax ([a.b.c.d:port] or
    [[v6]:port]); lines starting with [#] and blank lines are ignored.
    Parsing is strict: any malformed line fails with its line number, so
    a truncated trace cannot be half-loaded silently. *)

val flow_to_line : Flow.t -> string
val update_to_line : float * Netcore.Endpoint.t * [ `Add | `Remove ] * Netcore.Endpoint.t -> string

val flow_of_line : string -> (Flow.t, string) result
val update_of_line :
  string -> (float * Netcore.Endpoint.t * [ `Add | `Remove ] * Netcore.Endpoint.t, string) result

val save_flows : string -> Flow.t list -> unit
(** Write a flow trace file (with a header comment). *)

val load_flows : string -> (Flow.t list, string) result
(** Errors are ["line N: reason"]. *)

val save_updates :
  string -> (float * Netcore.Endpoint.t * [ `Add | `Remove ] * Netcore.Endpoint.t) list -> unit

val load_updates :
  string ->
  ((float * Netcore.Endpoint.t * [ `Add | `Remove ] * Netcore.Endpoint.t) list, string) result
