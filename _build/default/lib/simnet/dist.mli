(** Random distributions used to synthesize the paper's workloads.

    Each distribution carries both a sampler and (where meaningful) its
    analytic mean, so tests can check sampling against theory. Workload
    calibration helpers build distributions from the anchor points the
    paper publishes (e.g. a downtime with median 3 minutes and
    99th-percentile 100 minutes — Figure 4). *)

type t

val sample : t -> Prng.t -> float
val mean : t -> float option
(** Analytic mean when known in closed form. *)

val constant : float -> t
val uniform : lo:float -> hi:float -> t
val exponential : mean:float -> t

val lognormal : mu:float -> sigma:float -> t
(** exp(N(mu, sigma²)). *)

val lognormal_of_quantiles : median:float -> p99:float -> t
(** The lognormal hitting the given median and 99th percentile — the
    natural way to encode the paper's "median 3 min, p99 100 min"
    shapes. Requires [0 < median < p99]. *)

val pareto : shape:float -> scale:float -> t
(** Heavy-tailed; [scale] is the minimum value. *)

val mixture : (t * float) list -> t
(** Weighted mixture. *)

val scaled : t -> float -> t
(** [scaled d f] samples [d] and multiplies by [f]. *)

val truncated : t -> lo:float -> hi:float -> t
(** Clamps samples into [lo, hi]. The analytic mean is dropped. *)

val empirical : (float * float) list -> t
(** [empirical [(v1, w1); ...]] draws [vi] with probability proportional
    to [wi]. *)
