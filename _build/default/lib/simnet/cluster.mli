(** Synthetic cluster populations.

    The paper studies "about a hundred clusters" of three classes — PoPs,
    Frontends and Backends (§3.1) — and reports per-cluster statistics:
    active connections per ToR (Figure 6, up to 10–15 M in the loaded
    PoPs/Backends, small in Frontends), new connections per VIP-minute
    (Figure 8, up to 50 M), and DIP-pool update rates (Figure 2, Backends
    busiest). We synthesize cluster descriptors whose cross-cluster
    distributions match those published shapes; the calibration constants
    live here and are recorded in EXPERIMENTS.md. *)

type cluster_class =
  | Pop
  | Frontend
  | Backend

type t = {
  name : string;
  cls : cluster_class;
  n_tors : int;
  n_vips : int;
  dips_per_vip : int;
  total_dips : int;
      (** distinct DIPs in the cluster — VIPs share DIPs ("a DIP is often
          shared by most of the VIPs", §3.1); ~4.2K in the paper's peak
          Backend *)
  ipv6 : bool;  (** Backends mostly IPv6; PoPs/Frontends IPv4 (§6.1) *)
  conns_per_tor_median : float;  (** active connections per ToR, median minute *)
  conns_per_tor_p99 : float;  (** ... 99th-percentile minute (Figure 6) *)
  new_conns_per_vip_min_median : float;  (** Figure 8 *)
  new_conns_per_vip_min_p99 : float;
  updates_per_min_median : float;  (** Figure 2, median minute *)
  updates_per_min_p99 : float;  (** Figure 2, p99 minute *)
  gbps_per_tor : float;  (** VIP traffic volume per ToR *)
}

val class_name : cluster_class -> string
val pp : Format.formatter -> t -> unit

val sample : rng:Prng.t -> cluster_class -> int -> t
(** [sample ~rng cls i] draws one cluster of the given class (index [i]
    is only used for naming). *)

val population : ?n:int -> rng:Prng.t -> unit -> t list
(** A study population (default 96 clusters: 1/3 of each class, echoing
    "about a hundred clusters"). *)

val flow_duration : cluster_class -> Dist.t
(** Flow durations per class: user-facing PoP connections are short;
    Frontends hold persistent connections; Backends mix both. *)
