type cluster_class =
  | Pop
  | Frontend
  | Backend

type t = {
  name : string;
  cls : cluster_class;
  n_tors : int;
  n_vips : int;
  dips_per_vip : int;
  total_dips : int;  (** distinct DIPs in the cluster (VIPs share DIPs) *)
  ipv6 : bool;
  conns_per_tor_median : float;
  conns_per_tor_p99 : float;
  new_conns_per_vip_min_median : float;
  new_conns_per_vip_min_p99 : float;
  updates_per_min_median : float;
  updates_per_min_p99 : float;
  gbps_per_tor : float;
}

let class_name = function
  | Pop -> "PoP"
  | Frontend -> "Frontend"
  | Backend -> "Backend"

(* Calibration anchors, per class. Each field is the (median, p99) of a
   lognormal describing how that statistic varies ACROSS clusters of the
   class. Anchors come from the paper's figures:
   - Fig. 6: most-loaded PoPs ~11M active conns/ToR, Backends ~15M,
     Frontends well under 1M;
   - Fig. 8: new conns per VIP-minute reach 50M, typical ~10-100K;
   - Fig. 2: 32% of clusters >10 updates/min at p99 minute; half of
     Backends >16; some PoPs/Frontends >100 (shared-DIP bursts). *)
type anchors = {
  a_conns_p99 : float * float;  (* across-cluster spread of per-ToR p99 conns *)
  a_new_conns_med : float * float;  (* per-VIP new conns per minute, median *)
  a_updates_p99 : float * float;
  a_tors : int * int;  (* min/max ToRs *)
  a_vips : int * int;
  a_dips : int * int;
  a_gbps : float * float;
}

let anchors = function
  | Pop ->
    {
      a_conns_p99 = (2.0e6, 11.0e6);
      a_new_conns_med = (2.0e4, 2.0e6);
      a_updates_p99 = (4., 120.);
      a_tors = (8, 48);
      a_vips = (64, 256);
      a_dips = (16, 128);
      a_gbps = (4., 20.);
    }
  | Frontend ->
    {
      a_conns_p99 = (8.0e4, 9.0e5);
      a_new_conns_med = (2.0e3, 1.0e5);
      a_updates_p99 = (3., 60.);
      a_tors = (8, 64);
      a_vips = (32, 128);
      a_dips = (16, 256);
      a_gbps = (2., 15.);
    }
  | Backend ->
    {
      a_conns_p99 = (2.0e6, 15.0e6);
      a_new_conns_med = (1.0e4, 5.0e6);
      a_updates_p99 = (16., 150.);
      a_tors = (16, 96);
      a_vips = (64, 512);
      a_dips = (32, 512);
      a_gbps = (6., 400.);
    }

let draw rng (median, p99) =
  Dist.sample (Dist.lognormal_of_quantiles ~median ~p99) rng

let int_range rng (lo, hi) = lo + Prng.int rng (Int.max 1 (hi - lo + 1))

let sample ~rng cls i =
  let a = anchors cls in
  (* A quarter of Backends are volume-centric (§6.1): "connections there
     are typically volume-centric traffic across services (e.g. storage)
     and the prevalent use of persistent connections" — huge traffic,
     few connections. These are the clusters where one SilkRoad replaces
     hundreds of SLBs. *)
  let a =
    if cls = Backend && Prng.uniform rng < 0.25 then
      { a with a_conns_p99 = (1.5e5, 1.5e6); a_gbps = (60., 400.) }
    else a
  in
  let conns_p99 = draw rng a.a_conns_p99 in
  (* within a cluster the median minute carries ~40-70% of the p99 load *)
  let conns_med = conns_p99 *. (0.4 +. Prng.float rng 0.3) in
  let new_conns_med = draw rng a.a_new_conns_med in
  let new_conns_p99 = new_conns_med *. (3. +. Prng.float rng 22.) in
  let upd_p99 = draw rng a.a_updates_p99 in
  let upd_med = upd_p99 *. (0.05 +. Prng.float rng 0.35) in
  let n_vips = int_range rng a.a_vips in
  let dips_per_vip = int_range rng a.a_dips in
  {
    name = Printf.sprintf "%s-%02d" (class_name cls) i;
    cls;
    n_tors = int_range rng a.a_tors;
    n_vips;
    dips_per_vip;
    (* DIPs are shared across VIPs ("a DIP is often shared by most of
       the VIPs", §3.1); the peak cluster of the paper hosts ~4.2K DIPs *)
    total_dips = Int.max 32 (Int.min 6000 (n_vips * dips_per_vip / 8));
    ipv6 = (match cls with Backend -> true | Pop | Frontend -> false);
    conns_per_tor_median = conns_med;
    conns_per_tor_p99 = conns_p99;
    new_conns_per_vip_min_median = new_conns_med;
    new_conns_per_vip_min_p99 = new_conns_p99;
    updates_per_min_median = upd_med;
    updates_per_min_p99 = upd_p99;
    gbps_per_tor = draw rng a.a_gbps;
  }

let population ?(n = 96) ~rng () =
  assert (n >= 3);
  let per = n / 3 in
  let mk cls count base =
    List.init count (fun i -> sample ~rng cls (base + i))
  in
  mk Pop per 0 @ mk Frontend per 0 @ mk Backend (n - (2 * per)) 0

let flow_duration = function
  | Pop -> Dist.lognormal_of_quantiles ~median:8. ~p99:90.
  | Frontend -> Dist.lognormal_of_quantiles ~median:600. ~p99:7200.
  | Backend -> Dist.lognormal_of_quantiles ~median:60. ~p99:3600.

let pp ppf t =
  Format.fprintf ppf
    "%s: tors=%d vips=%d dips/vip=%d conns/tor(p99)=%.2e new/vip-min(med)=%.2e upd/min(p99)=%.1f"
    t.name t.n_tors t.n_vips t.dips_per_vip t.conns_per_tor_p99 t.new_conns_per_vip_min_median
    t.updates_per_min_p99
