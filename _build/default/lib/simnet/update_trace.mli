(** DIP-pool update traces.

    §3.1 of the paper characterises how often and why DIP pools change in
    production: 82.7 % of additions/removals come from service upgrades
    (rolling reboots), with testing, failures, preemption, provisioning
    and removal making up the rest (Figure 3); DIP downtime has a median
    of 3 minutes and a 99th percentile of 100 minutes (Figure 4); update
    rates reach tens of updates per minute in the busiest minute of a
    month (Figure 2).

    This module synthesizes update event streams with those statistics:
    a Poisson process of update operations in which every removal
    schedules the re-addition of the same DIP after a cause-dependent
    downtime. *)

type root_cause =
  | Upgrade
  | Testing
  | Failure
  | Preempting
  | Provisioning
  | Removing

val cause_mix : (root_cause * float) list
(** Figure 3's distribution of root causes (weights sum to 100). *)

val downtime : root_cause -> Dist.t
(** Figure 4's downtime distribution, per cause. Provisioning "does not
    cause downtime": a provisioned DIP is a pure addition. *)

type kind =
  | Remove
  | Add

type event = {
  time : float;
  dip : int;  (** index into the VIP's DIP array *)
  kind : kind;
  cause : root_cause;
}

val generate :
  rng:Prng.t ->
  updates_per_min:float ->
  horizon:float ->
  pool_size:int ->
  event list
(** A time-sorted stream of update events averaging [updates_per_min],
    over [horizon] seconds, for a DIP pool of [pool_size] members. The
    pool never shrinks below half its size: when too many DIPs are down,
    the generator re-adds a ready DIP instead of removing another. *)

val rolling_reboot :
  ?batch:int ->
  ?period:float ->
  rng:Prng.t ->
  start:float ->
  pool_size:int ->
  unit ->
  event list
(** The §3.1 service-upgrade pattern: reboot [batch] DIPs (default 2)
    every [period] seconds (default 300 — "two DIPs every five minutes"),
    each coming back after an Upgrade-distributed downtime. *)

val count_per_minute : event list -> horizon:float -> int array
(** Number of events in each whole minute of the horizon — the quantity
    Figure 2 reports. *)

val pp_cause : Format.formatter -> root_cause -> unit
