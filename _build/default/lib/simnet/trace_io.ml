let flow_to_line (f : Flow.t) =
  Printf.sprintf "flow %d %s %s %.6f %.6f %.3f" f.Flow.id
    (Netcore.Endpoint.to_string f.Flow.tuple.Netcore.Five_tuple.src)
    (Netcore.Endpoint.to_string f.Flow.tuple.Netcore.Five_tuple.dst)
    f.Flow.start f.Flow.duration f.Flow.bytes_per_sec

let update_to_line (time, vip, kind, dip) =
  Printf.sprintf "update %.6f %s %s %s" time
    (Netcore.Endpoint.to_string vip)
    (match kind with `Add -> "add" | `Remove -> "remove")
    (Netcore.Endpoint.to_string dip)

let fields line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_endpoint what s =
  match Netcore.Endpoint.of_string s with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "bad %s endpoint %S" what s)

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let ( let* ) = Result.bind

let flow_of_line line =
  match fields line with
  | [ "flow"; id; src; dst; start; duration; rate ] ->
    let* id =
      match int_of_string_opt id with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad flow id %S" id)
    in
    let* src = parse_endpoint "src" src in
    let* dst = parse_endpoint "dst" dst in
    let* start = parse_float "start" start in
    let* duration = parse_float "duration" duration in
    let* rate = parse_float "rate" rate in
    if duration < 0. || rate < 0. then Error "negative duration or rate"
    else
      Ok
        {
          Flow.id;
          tuple = Netcore.Five_tuple.make ~src ~dst ~proto:Netcore.Protocol.Tcp;
          start;
          duration;
          bytes_per_sec = rate;
        }
  | "flow" :: _ -> Error "flow line needs: flow <id> <src> <dst> <start> <duration> <rate>"
  | _ -> Error "not a flow line"

let update_of_line line =
  match fields line with
  | [ "update"; time; vip; kind; dip ] ->
    let* time = parse_float "time" time in
    let* vip = parse_endpoint "vip" vip in
    let* kind =
      match kind with
      | "add" -> Ok `Add
      | "remove" -> Ok `Remove
      | other -> Error (Printf.sprintf "bad update kind %S (want add|remove)" other)
    in
    let* dip = parse_endpoint "dip" dip in
    Ok (time, vip, kind, dip)
  | "update" :: _ -> Error "update line needs: update <time> <vip> add|remove <dip>"
  | _ -> Error "not an update line"

let save path header to_line items =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      List.iter
        (fun item ->
          output_string oc (to_line item);
          output_char oc '\n')
        items)

let load path of_line =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go n acc =
        match In_channel.input_line ic with
        | None -> Ok (List.rev acc)
        | Some line ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc
          else (
            match of_line trimmed with
            | Ok item -> go (n + 1) (item :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
      in
      go 1 [])

let save_flows path flows =
  save path "# silkroad flow trace: flow <id> <src> <dst> <start> <duration> <bytes/s>\n"
    flow_to_line flows

let load_flows path = load path flow_of_line

let save_updates path updates =
  save path "# silkroad update trace: update <time> <vip> add|remove <dip>\n" update_to_line
    updates

let load_updates path = load path update_of_line
