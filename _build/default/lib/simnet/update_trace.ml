type root_cause =
  | Upgrade
  | Testing
  | Failure
  | Preempting
  | Provisioning
  | Removing

(* Figure 3: upgrades dominate at 82.7 %; the remaining causes share the
   rest ("all the other sources ... account for less than 13%"). *)
let cause_mix =
  [
    (Upgrade, 82.7);
    (Testing, 5.3);
    (Failure, 4.0);
    (Preempting, 3.5);
    (Provisioning, 2.5);
    (Removing, 2.0);
  ]

(* Figure 4: downtimes from seconds to hours; upgrades have a median of
   3 minutes and a p99 of 100 minutes. Failures/preemption recover with
   similar heavy tails; testing reboots are quicker. *)
let downtime = function
  | Upgrade -> Dist.lognormal_of_quantiles ~median:180. ~p99:6000.
  | Testing -> Dist.lognormal_of_quantiles ~median:120. ~p99:1800.
  | Failure -> Dist.lognormal_of_quantiles ~median:240. ~p99:7200.
  | Preempting -> Dist.lognormal_of_quantiles ~median:300. ~p99:7200.
  | Provisioning -> Dist.constant 0.
  | Removing -> Dist.lognormal_of_quantiles ~median:600. ~p99:10000.

type kind =
  | Remove
  | Add

type event = {
  time : float;
  dip : int;
  kind : kind;
  cause : root_cause;
}

let generate ~rng ~updates_per_min ~horizon ~pool_size =
  assert (updates_per_min > 0.);
  assert (pool_size >= 2);
  let rng = Prng.copy rng in
  let mean_gap = 60. /. updates_per_min in
  let up = Array.make pool_size true in
  let n_up = ref pool_size in
  (* (ready_time, dip, cause) of DIPs waiting to come back *)
  let pending = ref [] in
  let events = ref [] in
  let t = ref 0. in
  let next_ready () =
    match !pending with
    | [] -> None
    | l ->
      let best = List.fold_left (fun (bt, bd, bc) (pt, pd, pc) ->
        if pt < bt then (pt, pd, pc) else (bt, bd, bc)) (List.hd l) (List.tl l)
      in
      Some best
  in
  let remove_pending (pt, pd, _) =
    pending := List.filter (fun (t', d', _) -> not (t' = pt && d' = pd)) !pending
  in
  t := Prng.exponential rng ~mean:mean_gap;
  while !t < horizon do
    let now = !t in
    let ready = next_ready () in
    let must_add =
      (* keep at least half the pool alive *)
      !n_up * 2 <= pool_size
    in
    let can_add =
      match ready with
      | Some (rt, _, _) -> rt <= now
      | None -> false
    in
    (if (must_add || (can_add && Prng.bool rng)) && ready <> None then begin
       match ready with
       | Some ((_, dip, cause) as p) ->
         remove_pending p;
         up.(dip) <- true;
         incr n_up;
         events := { time = now; dip; kind = Add; cause } :: !events
       | None -> assert false
     end
     else if !n_up - 1 >= (pool_size + 1) / 2 then begin
       (* remove a random live DIP *)
       let live = ref [] in
       Array.iteri (fun i alive -> if alive then live := i :: !live) up;
       let dip = Prng.choose rng (Array.of_list !live) in
       let cause = Prng.choose_weighted rng cause_mix in
       up.(dip) <- false;
       decr n_up;
       events := { time = now; dip; kind = Remove; cause } :: !events;
       (* every removal eventually returns: even a capacity removal is
          re-provisioned later, keeping the pool near its target size *)
       let dt = Float.max 1. (Dist.sample (downtime cause) rng) in
       pending := (now +. dt, dip, cause) :: !pending
     end);
    t := now +. Prng.exponential rng ~mean:mean_gap
  done;
  List.rev !events

let rolling_reboot ?(batch = 2) ?(period = 300.) ~rng ~start ~pool_size () =
  assert (batch >= 1 && pool_size >= 1);
  let rng = Prng.copy rng in
  let dist = downtime Upgrade in
  let events = ref [] in
  let batch_index dip = dip / batch in
  for dip = 0 to pool_size - 1 do
    let t_remove = start +. (float_of_int (batch_index dip) *. period) in
    let dt = Float.max 1. (Dist.sample dist rng) in
    events := { time = t_remove; dip; kind = Remove; cause = Upgrade } :: !events;
    events := { time = t_remove +. dt; dip; kind = Add; cause = Upgrade } :: !events
  done;
  List.sort (fun a b -> Float.compare a.time b.time) !events

let count_per_minute events ~horizon =
  let minutes = int_of_float (Float.ceil (horizon /. 60.)) in
  let counts = Array.make (Int.max minutes 1) 0 in
  List.iter
    (fun { time; _ } ->
      if time >= 0. && time < horizon then begin
        let m = Int.min (minutes - 1) (int_of_float (time /. 60.)) in
        counts.(m) <- counts.(m) + 1
      end)
    events;
  counts

let pp_cause ppf c =
  Format.pp_print_string ppf
    (match c with
     | Upgrade -> "upgrade"
     | Testing -> "testing"
     | Failure -> "failure"
     | Preempting -> "preempting"
     | Provisioning -> "provisioning"
     | Removing -> "removing")
