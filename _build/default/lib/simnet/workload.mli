(** Workload generation: Poisson flow arrivals per VIP with configurable
    flow-duration and rate distributions.

    The paper's evaluation workloads (§3.2, §6.2) are reproduced by two
    canned profiles:
    - {!hadoop_durations}: median flow duration of 10 seconds
      ("we simulate Hadoop traffic with a median flow duration of 10
      seconds as in [39]");
    - {!cache_durations}: median 4.5 minutes (the cache traffic of the
      same study).

    Flows are produced as a lazy, time-ordered infinite sequence so
    experiments can stream millions of arrivals without materialising
    them. *)

type profile = {
  vip : Netcore.Endpoint.t;
  new_conns_per_sec : float;
  duration : Dist.t;
  bytes_per_sec : Dist.t;  (** per-flow average rate *)
  client_ipv6 : bool;
}

val hadoop_durations : Dist.t
(** Lognormal with 10 s median, heavy tail. *)

val cache_durations : Dist.t
(** Lognormal with 270 s (4.5 min) median. *)

val default_rate : Dist.t
(** Per-flow throughput distribution, ~100 KB/s median. *)

val profile :
  ?duration:Dist.t ->
  ?bytes_per_sec:Dist.t ->
  ?client_ipv6:bool ->
  vip:Netcore.Endpoint.t ->
  new_conns_per_sec:float ->
  unit ->
  profile

val arrivals : rng:Prng.t -> id_base:int -> profile -> Flow.t Seq.t
(** Infinite sequence of flows with increasing start times (Poisson
    arrivals). Client 5-tuples are drawn uniformly from a synthetic
    client population; collisions are possible but astronomically
    rare. *)

val merge : Flow.t Seq.t list -> Flow.t Seq.t
(** Merge several time-ordered sequences into one, preserving order. *)

val take_until : horizon:float -> Flow.t Seq.t -> Flow.t list
(** Materialize every flow that starts before [horizon]. *)
