(** A flow (one L4 connection) in the flow-level simulator. *)

type t = {
  id : int;
  tuple : Netcore.Five_tuple.t;  (** destination is the VIP *)
  start : float;
  duration : float;  (** seconds the connection stays active *)
  bytes_per_sec : float;  (** average rate while active *)
}

val finish : t -> float
(** [start +. duration]. *)

val active_at : t -> float -> bool
(** Whether the flow is open at the given instant. *)

val bytes : t -> float
(** Total bytes the flow transfers over its lifetime. *)

val vip : t -> Netcore.Endpoint.t
val pp : Format.formatter -> t -> unit
