(** Discrete-event simulation core: a virtual clock plus an event queue
    of callbacks. All simulations in the repository (flow-level PCC
    experiments, control-plane timing, Duet migration) run on this
    engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Schedule a callback at an absolute time (>= now). *)

val schedule_in : t -> delay:float -> (t -> unit) -> unit
(** Schedule a callback [delay] seconds from now. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty, or until the
    clock would pass [until] (remaining events stay queued and the clock
    is left at [until]). *)

val step : t -> bool
(** Process a single event; false when the queue is empty. *)

val events_processed : t -> int
val pending : t -> int
