lib/simnet/flow.ml: Format Netcore
