lib/simnet/update_trace.ml: Array Dist Float Format Int List Prng
