lib/simnet/update_trace.mli: Dist Format Prng
