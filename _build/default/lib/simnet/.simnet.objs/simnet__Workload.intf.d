lib/simnet/workload.mli: Dist Flow Netcore Prng Seq
