lib/simnet/flow.mli: Format Netcore
