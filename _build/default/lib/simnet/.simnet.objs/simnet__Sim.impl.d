lib/simnet/sim.ml: Event_queue Float
