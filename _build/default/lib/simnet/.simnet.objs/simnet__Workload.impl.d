lib/simnet/workload.ml: Dist Float Flow List Netcore Prng Seq
