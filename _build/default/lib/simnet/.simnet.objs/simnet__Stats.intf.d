lib/simnet/stats.mli:
