lib/simnet/cluster.mli: Dist Format Prng
