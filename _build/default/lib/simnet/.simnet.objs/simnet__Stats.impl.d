lib/simnet/stats.ml: Array Float List
