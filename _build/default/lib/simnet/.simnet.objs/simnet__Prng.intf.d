lib/simnet/prng.mli:
