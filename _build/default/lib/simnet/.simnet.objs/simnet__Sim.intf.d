lib/simnet/sim.mli:
