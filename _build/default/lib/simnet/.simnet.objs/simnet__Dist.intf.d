lib/simnet/dist.mli: Prng
