lib/simnet/dist.ml: Float List Prng
