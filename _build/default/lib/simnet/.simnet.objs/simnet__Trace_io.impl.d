lib/simnet/trace_io.ml: Flow Fun In_channel List Netcore Printf Result String
