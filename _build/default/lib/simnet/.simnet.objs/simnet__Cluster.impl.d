lib/simnet/cluster.ml: Dist Format Int List Printf Prng
