lib/simnet/prng.ml: Array Float Int64 List Netcore
