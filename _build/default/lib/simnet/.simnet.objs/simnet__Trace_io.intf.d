lib/simnet/trace_io.mli: Flow Netcore
