type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable events_processed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.; events_processed = 0 }

let now t = t.clock

let schedule t ~at f =
  assert (at >= t.clock -. 1e-9);
  Event_queue.add t.queue ~time:(Float.max at t.clock) f

let schedule_in t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Float.max t.clock time;
    t.events_processed <- t.events_processed + 1;
    f t;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Event_queue.peek_time t.queue with
      | Some time when time <= horizon -> ignore (step t)
      | Some _ | None ->
        t.clock <- Float.max t.clock horizon;
        continue := false
    done

let events_processed t = t.events_processed
let pending t = Event_queue.size t.queue
