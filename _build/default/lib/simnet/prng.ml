type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let create ~seed = { state = Netcore.Hashing.mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  Netcore.Hashing.mix64 t.state

let split t = { state = Netcore.Hashing.mix64 (Int64.logxor (next t) 0x5111_c0adL) }

let copy t = { state = t.state }

let int64 = next

let bits30 t = Int64.to_int (Int64.shift_right_logical (next t) 34)

let int t n =
  assert (n > 0);
  if n <= 1 lsl 30 then bits30 t mod n
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let uniform t = float_of_int (bits30 t) /. 1073741824.

let float t x = uniform t *. x

let bool t = Int64.logand (next t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = 1. -. uniform t in
  -.mean *. log u

let normal t =
  let u1 = 1. -. uniform t and u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t weighted =
  assert (weighted <> []);
  let total = List.fold_left (fun acc (_, w) -> assert (w >= 0.); acc +. w) 0. weighted in
  assert (total > 0.);
  let x = float t total in
  let rec pick acc = function
    | [] -> assert false
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0. weighted

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
