type t = {
  sample : Prng.t -> float;
  mean : float option;
}

let sample t rng = t.sample rng
let mean t = t.mean

let constant v = { sample = (fun _ -> v); mean = Some v }

let uniform ~lo ~hi =
  assert (hi >= lo);
  { sample = (fun rng -> lo +. Prng.float rng (hi -. lo)); mean = Some ((lo +. hi) /. 2.) }

let exponential ~mean =
  { sample = (fun rng -> Prng.exponential rng ~mean); mean = Some mean }

let lognormal ~mu ~sigma =
  assert (sigma >= 0.);
  {
    sample = (fun rng -> exp (mu +. (sigma *. Prng.normal rng)));
    mean = Some (exp (mu +. (sigma *. sigma /. 2.)));
  }

(* z-score of the 99th percentile of the standard normal *)
let z99 = 2.3263478740408408

let lognormal_of_quantiles ~median ~p99 =
  assert (median > 0. && p99 > median);
  let mu = log median in
  let sigma = (log p99 -. mu) /. z99 in
  lognormal ~mu ~sigma

let pareto ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  {
    sample =
      (fun rng ->
        let u = 1. -. Prng.uniform rng in
        scale /. (u ** (1. /. shape)));
    mean = (if shape > 1. then Some (shape *. scale /. (shape -. 1.)) else None);
  }

let mixture parts =
  assert (parts <> []);
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. parts in
  assert (total > 0.);
  let mean =
    List.fold_left
      (fun acc (d, w) ->
        match acc, d.mean with
        | Some m, Some dm -> Some (m +. (dm *. w /. total))
        | _, _ -> None)
      (Some 0.) parts
  in
  {
    sample =
      (fun rng ->
        let d = Prng.choose_weighted rng (List.map (fun (d, w) -> (d, w)) parts) in
        d.sample rng);
    mean;
  }

let scaled d f =
  {
    sample = (fun rng -> d.sample rng *. f);
    mean = (match d.mean with Some m -> Some (m *. f) | None -> None);
  }

let truncated d ~lo ~hi =
  assert (hi >= lo);
  { sample = (fun rng -> Float.min hi (Float.max lo (d.sample rng))); mean = None }

let empirical values =
  assert (values <> []);
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. values in
  assert (total > 0.);
  let mean = List.fold_left (fun acc (v, w) -> acc +. (v *. w /. total)) 0. values in
  {
    sample = (fun rng -> Prng.choose_weighted rng values);
    mean = Some mean;
  }
