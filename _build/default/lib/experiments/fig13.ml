(* Figure 13: how many SLBs one SilkRoad replaces, per cluster. Demand
   comes from each cluster's peak traffic and peak connection count. *)

let ratio (c : Simnet.Cluster.t) =
  (* volume-weighted average packet size: user-facing PoP traffic is
     small-packet; backend volume traffic larger *)
  let avg_pkt = match c.Simnet.Cluster.cls with
    | Simnet.Cluster.Pop -> 600
    | Simnet.Cluster.Frontend -> 1000
    | Simnet.Cluster.Backend -> 1000
  in
  let d =
    Silkroad.Cost_model.demand_of_traffic
      ~gbps:(c.Simnet.Cluster.gbps_per_tor *. float_of_int c.Simnet.Cluster.n_tors)
      ~avg_packet_bytes:avg_pkt
      ~connections:(int_of_float (c.Simnet.Cluster.conns_per_tor_p99 *. float_of_int c.Simnet.Cluster.n_tors))
  in
  Silkroad.Cost_model.replacement_ratio d

let run ~quick:_ ppf =
  let pop = Common.study_population () in
  Common.header ppf "Figure 13: #SLBs replaced by one SilkRoad (CDF across clusters)";
  Common.row ppf [ "class"; "median"; "p90"; "max" ];
  Common.rule ppf;
  List.iter
    (fun cls ->
      let rs = List.filter_map (fun c -> if c.Simnet.Cluster.cls = cls then Some (ratio c) else None) pop in
      Common.row ppf
        [ Simnet.Cluster.class_name cls;
          Common.float1 (Simnet.Stats.median rs);
          Common.float1 (Simnet.Stats.percentile rs 90.);
          Common.float1 (List.fold_left Float.max 0. rs) ])
    [ Simnet.Cluster.Pop; Simnet.Cluster.Frontend; Simnet.Cluster.Backend ];
  Format.fprintf ppf
    "  paper anchors: PoPs 2-3x; Frontends 11x median; Backends 3x median, 277x peak.@."
