let study_population_memo = ref None

let study_population () =
  match !study_population_memo with
  | Some pop -> pop
  | None ->
    let rng = Simnet.Prng.create ~seed:20170821 in
    let pop = Simnet.Cluster.population ~n:96 ~rng () in
    study_population_memo := Some pop;
    pop

let vip i = Netcore.Endpoint.v4 20 0 0 (1 + (i mod 250)) 80

let dip i =
  Netcore.Endpoint.v4 10 0 (1 + (i / 250)) (1 + (i mod 250)) 20

let dip_pool ~n = Lb.Dip_pool.of_list (List.init n dip)

type scenario = {
  flows : Simnet.Flow.t list;
  updates : (float * Netcore.Endpoint.t * Lb.Balancer.update) list;
  horizon : float;
}

let vips_of ~n_vips ~dips_per_vip =
  List.init n_vips (fun i ->
      (vip i, Lb.Dip_pool.of_list (List.init dips_per_vip (fun j -> dip ((i * dips_per_vip) + j)))))

let scenario ?(seed = 7011) ?(n_vips = 4) ?(dips_per_vip = 8) ?duration ~conns_per_sec_per_vip
    ~updates_per_min ~trace_seconds () =
  let root = Simnet.Prng.create ~seed in
  let flows =
    List.concat
      (List.init n_vips (fun i ->
           let rng = Simnet.Prng.split root in
           let p =
             Simnet.Workload.profile ?duration ~vip:(vip i)
               ~new_conns_per_sec:conns_per_sec_per_vip ()
           in
           Simnet.Workload.take_until ~horizon:trace_seconds
             (Simnet.Workload.arrivals ~rng ~id_base:(i * 10_000_000) p)))
  in
  let updates =
    if updates_per_min <= 0. then []
    else
      List.concat
        (List.init n_vips (fun i ->
             let rng = Simnet.Prng.split root in
             let events =
               Simnet.Update_trace.generate ~rng
                 ~updates_per_min:(updates_per_min /. float_of_int n_vips)
                 ~horizon:trace_seconds ~pool_size:dips_per_vip
             in
             List.map
               (fun (e : Simnet.Update_trace.event) ->
                 let d = dip ((i * dips_per_vip) + e.Simnet.Update_trace.dip) in
                 ( e.Simnet.Update_trace.time,
                   vip i,
                   match e.Simnet.Update_trace.kind with
                   | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove d
                   | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add d ))
               events))
  in
  { flows; updates; horizon = trace_seconds +. 60. }

let silkroad ?(cfg = Silkroad.Config.default) ~vips () =
  let sw = Silkroad.Switch.create cfg in
  List.iter (fun (v, p) -> Silkroad.Switch.add_vip sw v p) vips;
  (sw, Silkroad.Switch.balancer sw)

let run balancer (s : scenario) =
  Harness.Driver.run ~balancer ~flows:s.flows ~updates:s.updates ~horizon:s.horizon ()

(* ----- output ----- *)

let header ppf title =
  Format.fprintf ppf "@.=== %s ===@." title

let row ppf cells =
  Format.fprintf ppf "  %s@."
    (String.concat "  " (List.map (fun c -> Printf.sprintf "%-14s" c) cells))

let rule ppf = Format.fprintf ppf "  %s@." (String.make 76 '-')

let pct x = Printf.sprintf "%.2f%%" (100. *. x)
let float1 x = Printf.sprintf "%.1f" x
let sci x = Printf.sprintf "%.3g" x
