(* Table 1: trend of SRAM size and switching capacity in ASICs. *)

let run ~quick:_ ppf =
  Common.header ppf "Table 1: ASIC generations (capacity vs SRAM)";
  Common.row ppf [ "generation"; "year"; "capacity"; "SRAM (MB)" ];
  Common.rule ppf;
  List.iter
    (fun (g : Silkroad.Memory_model.generation) ->
      Common.row ppf
        [ g.Silkroad.Memory_model.gen_name;
          string_of_int g.Silkroad.Memory_model.gen_year;
          Printf.sprintf "%.1f Tbps" g.Silkroad.Memory_model.gen_tbps;
          Printf.sprintf "%d-%d" g.Silkroad.Memory_model.gen_sram_mb_lo
            g.Silkroad.Memory_model.gen_sram_mb_hi ])
    Silkroad.Memory_model.asic_generations;
  Format.fprintf ppf "  SRAM grew ~5x over four years, enabling in-ASIC ConnTables.@."
