(* Figure 18: how small can the TransitTable be? Sweep the Bloom filter
   size and the learning-filter timeout; a filter too small for the
   pending set lets Dual-phase false positives steer new connections to
   the old pool. The control plane is slowed (2K inserts/s) to widen
   the pending window, as a stress test. *)

let run ~quick ppf =
  let n_vips = 2 in
  let dips_per_vip = 8 in
  let conns = if quick then 200. else 400. in
  let trace = if quick then 240. else 600. in
  let sizes = [ 1; 8; 64; 256 ] in
  let timeouts = [ 0.001; 0.005; 0.02 ] in
  Common.header ppf "Figure 18: broken connections vs TransitTable size (10 upd/min)";
  Common.row ppf ("filter bytes" :: List.map (fun t -> Printf.sprintf "timeout %gms" (1000. *. t)) timeouts);
  Common.rule ppf;
  List.iter
    (fun bytes ->
      let cells =
        List.map
          (fun timeout ->
            let cfg =
              { Silkroad.Config.default with
                Silkroad.Config.transit_bytes = bytes;
                learning_timeout = timeout;
                cpu_insertions_per_sec = 2_000. }
            in
            let s =
              Common.scenario ~seed:18 ~n_vips ~dips_per_vip
                ~duration:Simnet.Workload.hadoop_durations ~conns_per_sec_per_vip:conns
                ~updates_per_min:10. ~trace_seconds:trace ()
            in
            let _, b = Common.silkroad ~cfg ~vips:(Common.vips_of ~n_vips ~dips_per_vip) () in
            let r = Common.run b s in
            string_of_int r.Harness.Driver.broken_connections)
          timeouts
      in
      Common.row ppf (string_of_int bytes :: cells))
    sizes;
  Format.fprintf ppf
    "  paper anchors: 8B suffices at 1ms timeout; at 5ms, 8B breaks ~20@.";
  Format.fprintf ppf "  connections in an hour while 256B breaks none.@."
