(* Figure 14: memory saving from the compact ConnTable encodings, CDF
   across clusters: digest-only vs naive, and digest+version (incl. the
   DIPPoolTable overhead) vs naive. *)

let savings (c : Simnet.Cluster.t) =
  let conns = int_of_float c.Simnet.Cluster.conns_per_tor_p99 in
  let ipv6 = c.Simnet.Cluster.ipv6 in
  let bits layout =
    Silkroad.Memory_model.switch_bits ~layout ~ipv6 ~digest_bits:16 ~version_bits:6
      ~connections:conns ~versions:64 ~total_dips:c.Simnet.Cluster.total_dips
  in
  let naive = bits Silkroad.Memory_model.Naive in
  let digest_only = bits Silkroad.Memory_model.Digest_only in
  (* §4.2: "if the number of active connections is small ... we fall
     back to the design that maps each connection to the actual DIP
     instead of version" — the deployed layout is the cheaper one *)
  let versioned = Int.min digest_only (bits Silkroad.Memory_model.Digest_version) in
  ( Silkroad.Memory_model.saving_percent ~baseline:naive ~compact:digest_only,
    Silkroad.Memory_model.saving_percent ~baseline:naive ~compact:versioned )

let run ~quick:_ ppf =
  let pop = Common.study_population () in
  Common.header ppf "Figure 14: memory saving vs naive ConnTable (CDF across clusters)";
  Common.row ppf [ "class"; "digest med"; "dig+ver med"; "dig+ver min"; "dig+ver max" ];
  Common.rule ppf;
  List.iter
    (fun cls ->
      let sel = List.filter (fun c -> c.Simnet.Cluster.cls = cls) pop in
      let digest = List.map (fun c -> fst (savings c)) sel in
      let both = List.map (fun c -> snd (savings c)) sel in
      Common.row ppf
        [ Simnet.Cluster.class_name cls;
          Printf.sprintf "%.1f%%" (Simnet.Stats.median digest);
          Printf.sprintf "%.1f%%" (Simnet.Stats.median both);
          Printf.sprintf "%.1f%%" (List.fold_left Float.min 100. both);
          Printf.sprintf "%.1f%%" (List.fold_left Float.max 0. both) ])
    [ Simnet.Cluster.Pop; Simnet.Cluster.Frontend; Simnet.Cluster.Backend ];
  Format.fprintf ppf
    "  paper anchors: all clusters save >40%%; PoPs ~85%% with digest+version;@.";
  Format.fprintf ppf
    "                 Frontends ~50%% (digest only pays off); Backends 60-95%%.@."
