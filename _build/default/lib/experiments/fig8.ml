(* Figure 8: new connections per VIP per minute (CDF across VIPs of all
   clusters, median and p99 minute). Per-VIP rates are drawn from each
   cluster's lognormal calibrated to its (median, p99) anchors. *)

let run ~quick ppf =
  let per_cluster_vips = if quick then 16 else 64 in
  let rng = Simnet.Prng.create ~seed:8 in
  let pop = Common.study_population () in
  let rates_med = ref [] and rates_p99 = ref [] in
  List.iter
    (fun (c : Simnet.Cluster.t) ->
      let d =
        Simnet.Dist.truncated ~lo:1. ~hi:2.5e7
          (Simnet.Dist.lognormal_of_quantiles
             ~median:c.Simnet.Cluster.new_conns_per_vip_min_median
             ~p99:c.Simnet.Cluster.new_conns_per_vip_min_p99)
      in
      for _ = 1 to Int.min per_cluster_vips c.Simnet.Cluster.n_vips do
        let r = Simnet.Dist.sample d rng in
        rates_med := r :: !rates_med;
        (* the p99 minute of a VIP carries a burst multiple *)
        rates_p99 := Float.min 5e7 (r *. (2. +. Simnet.Prng.float rng 6.)) :: !rates_p99
      done)
    pop;
  Common.header ppf "Figure 8: new connections per VIP per minute (CDF across VIPs)";
  Common.row ppf [ "conns/min <="; "median minute"; "p99 minute" ];
  Common.rule ppf;
  List.iter
    (fun x ->
      Common.row ppf
        [ Common.sci x;
          Common.pct (1. -. Simnet.Stats.ccdf_at !rates_med x);
          Common.pct (1. -. Simnet.Stats.ccdf_at !rates_p99 x) ])
    [ 1e3; 1e4; 1e5; 1e6; 1e7; 5e7 ];
  Format.fprintf ppf "  max p99-minute rate: %s conns/min (paper: up to ~50M)@."
    (Common.sci (List.fold_left Float.max 0. !rates_p99))
