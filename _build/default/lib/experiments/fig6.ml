(* Figure 6: number of active connections per ToR switch across clusters
   (median-minute and p99-minute per cluster, CDF across clusters). *)

let run ~quick:_ ppf =
  let pop = Common.study_population () in
  Common.header ppf "Figure 6: active connections per ToR (CDF across clusters)";
  Common.row ppf [ "class"; "med(median)"; "p99(median)"; "med(p99)"; "max(p99)" ];
  Common.rule ppf;
  List.iter
    (fun cls ->
      let sel = List.filter (fun c -> c.Simnet.Cluster.cls = cls) pop in
      let med = List.map (fun c -> c.Simnet.Cluster.conns_per_tor_median) sel in
      let p99 = List.map (fun c -> c.Simnet.Cluster.conns_per_tor_p99) sel in
      Common.row ppf
        [ Simnet.Cluster.class_name cls;
          Common.sci (Simnet.Stats.median med);
          Common.sci (Simnet.Stats.p99 med);
          Common.sci (Simnet.Stats.median p99);
          Common.sci (List.fold_left Float.max 0. p99) ])
    [ Simnet.Cluster.Pop; Simnet.Cluster.Frontend; Simnet.Cluster.Backend ];
  Format.fprintf ppf
    "  paper anchors: most loaded PoPs ~10-11M conns/ToR, Backends up to 15M,@.";
  Format.fprintf ppf
    "                 Frontends far fewer (persistent connections from PoPs).@."
