(* Figure 2: frequency of DIP pool updates — "Y% of clusters have more
   than X updates per minute in the median / 99th-percentile minute".

   For every cluster in the study population we synthesize a one-hour
   update trace whose base rate comes from the cluster descriptor (plus
   rolling-reboot bursts, the §3.1 dominant cause), measure per-minute
   update counts, and report the cross-cluster CCDF of the median and
   p99 minute. *)

let minute_stats ~rng (c : Simnet.Cluster.t) ~horizon =
  let base =
    Simnet.Update_trace.generate ~rng ~updates_per_min:(Float.max 0.2 c.Simnet.Cluster.updates_per_min_median)
      ~horizon ~pool_size:(Int.max 4 c.Simnet.Cluster.dips_per_vip)
  in
  (* burst minutes: a rolling service upgrade sweeping a large VIP *)
  let bursts =
    let n_bursts = 1 + Simnet.Prng.int rng 3 in
    List.concat
      (List.init n_bursts (fun _ ->
           let start = Simnet.Prng.float rng horizon in
           let pool = Int.max 8 (c.Simnet.Cluster.updates_per_min_p99 *. 0.7 |> int_of_float) in
           Simnet.Update_trace.rolling_reboot ~batch:(Int.max 2 (pool / 4)) ~period:30. ~rng
             ~start ~pool_size:pool ()))
  in
  let counts = Simnet.Update_trace.count_per_minute (base @ bursts) ~horizon in
  let as_floats = Array.to_list (Array.map float_of_int counts) in
  (Simnet.Stats.median as_floats, Simnet.Stats.p99 as_floats)

let run ~quick ppf =
  let horizon = if quick then 1800. else 3600. in
  let rng = Simnet.Prng.create ~seed:2 in
  let pop = Common.study_population () in
  let stats = List.map (fun c -> (c, minute_stats ~rng c ~horizon)) pop in
  let classes =
    [ (None, "All"); (Some Simnet.Cluster.Pop, "PoP"); (Some Simnet.Cluster.Frontend, "Frontend");
      (Some Simnet.Cluster.Backend, "Backend") ]
  in
  Common.header ppf "Figure 2: DIP pool updates per minute (CCDF across clusters)";
  Common.row ppf ("x upd/min" :: List.concat_map (fun (_, n) -> [ n ^ " med"; n ^ " p99" ]) classes);
  Common.rule ppf;
  List.iter
    (fun x ->
      let cells =
        List.concat_map
          (fun (cls, _) ->
            let sel =
              List.filter (fun (c, _) -> match cls with None -> true | Some k -> c.Simnet.Cluster.cls = k) stats
            in
            let meds = List.map (fun (_, (m, _)) -> m) sel in
            let p99s = List.map (fun (_, (_, p)) -> p) sel in
            [ Common.pct (Simnet.Stats.ccdf_at meds (float_of_int x));
              Common.pct (Simnet.Stats.ccdf_at p99s (float_of_int x)) ])
          classes
      in
      Common.row ppf (string_of_int x :: cells))
    [ 1; 2; 5; 10; 20; 50; 100 ];
  Format.fprintf ppf
    "  paper anchors: 32%% of clusters >10 upd/min at p99 minute; 3%% >50;@.";
  Format.fprintf ppf
    "                 half of Backends >16 at p99; some PoPs/Frontends >100.@."
