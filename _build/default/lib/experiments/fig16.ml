(* Figure 16: PCC violations vs DIP pool update frequency, for Duet
   (10-minute migration), SilkRoad without TransitTable (updates execute
   immediately, pending connections unprotected), and full SilkRoad. *)

let arms ~n_vips ~dips_per_vip =
  let vips () = Common.vips_of ~n_vips ~dips_per_vip in
  [ ("Duet", fun () -> fst (Baselines.Duet.create ~seed:66 ~policy:(Baselines.Duet.Migrate_every 600.) ~vips:(vips ()) ()));
    ( "SilkRoad w/o TT",
      fun () ->
        let cfg = { Silkroad.Config.default with Silkroad.Config.use_transit = false;
                    cpu_insertions_per_sec = 20_000. } in
        snd (Common.silkroad ~cfg ~vips:(vips ()) ()) );
    ( "SilkRoad",
      fun () ->
        let cfg = { Silkroad.Config.default with Silkroad.Config.cpu_insertions_per_sec = 20_000. } in
        snd (Common.silkroad ~cfg ~vips:(vips ()) ()) ) ]

let run ~quick ppf =
  let n_vips = if quick then 2 else 4 in
  let dips_per_vip = 8 in
  let conns = if quick then 60. else 120. in
  let trace = if quick then 900. else 1500. in
  let rates = if quick then [ 1.; 10.; 50. ] else [ 1.; 10.; 20.; 30.; 40.; 50. ] in
  Common.header ppf "Figure 16: broken connections vs update frequency";
  Common.row ppf [ "upd/min"; "Duet"; "SilkRoad w/o TT"; "SilkRoad" ];
  Common.rule ppf;
  List.iter
    (fun rate ->
      let s =
        Common.scenario ~seed:16 ~n_vips ~dips_per_vip
          ~duration:Simnet.Workload.hadoop_durations ~conns_per_sec_per_vip:conns
          ~updates_per_min:rate ~trace_seconds:trace ()
      in
      let cells =
        List.map
          (fun (_, mk) ->
            let r = Common.run (mk ()) s in
            Printf.sprintf "%d (%s)" r.Harness.Driver.broken_connections
              (Common.pct r.Harness.Driver.broken_fraction))
          (arms ~n_vips ~dips_per_vip)
      in
      Common.row ppf (Common.float1 rate :: cells))
    rates;
  Format.fprintf ppf
    "  paper anchors @10/min: Duet breaks 0.08%% of connections; SilkRoad w/o@.";
  Format.fprintf ppf
    "  TransitTable 0.00005%% (3 orders less); SilkRoad with 256B filter: zero.@."
