(* Figure 3: distribution of root causes for DIP additions/removals.
   We draw a large sample from the generator's cause mix and print the
   observed shares against the paper's. *)

let run ~quick ppf =
  let n = if quick then 20_000 else 200_000 in
  let rng = Simnet.Prng.create ~seed:3 in
  let counts = Hashtbl.create 8 in
  for _ = 1 to n do
    let c = Simnet.Prng.choose_weighted rng Simnet.Update_trace.cause_mix in
    Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
  done;
  Common.header ppf "Figure 3: root causes of DIP additions/removals";
  Common.row ppf [ "cause"; "observed"; "paper" ];
  Common.rule ppf;
  List.iter
    (fun (cause, paper_share) ->
      let obs = Option.value ~default:0 (Hashtbl.find_opt counts cause) in
      Common.row ppf
        [ Format.asprintf "%a" Simnet.Update_trace.pp_cause cause;
          Common.pct (float_of_int obs /. float_of_int n);
          Printf.sprintf "%.1f%%" paper_share ])
    Simnet.Update_trace.cause_mix;
  Format.fprintf ppf "  paper anchor: 82.7%% of updates come from service upgrades.@."
