(* Figure 12: SRAM usage of SilkRoad deployed on ToR switches, CDF
   across clusters. Memory = word-packed ConnTable (digest+version) at
   the cluster's p99 connections per ToR + DIPPoolTable (64 versions of
   the cluster's DIP population). *)

let cluster_bits (c : Simnet.Cluster.t) =
  Silkroad.Memory_model.switch_bits ~layout:Silkroad.Memory_model.Digest_version
    ~ipv6:c.Simnet.Cluster.ipv6 ~digest_bits:16 ~version_bits:6
    ~connections:(int_of_float c.Simnet.Cluster.conns_per_tor_p99)
    ~versions:64 ~total_dips:c.Simnet.Cluster.total_dips

let run ~quick:_ ppf =
  let pop = Common.study_population () in
  Common.header ppf "Figure 12: SilkRoad SRAM usage per ToR (CDF across clusters)";
  Common.row ppf [ "class"; "median MB"; "p90 MB"; "peak MB"; "fits 100MB?" ];
  Common.rule ppf;
  List.iter
    (fun cls ->
      let sel = List.filter (fun c -> c.Simnet.Cluster.cls = cls) pop in
      let mbs = List.map (fun c -> Silkroad.Memory_model.mb (cluster_bits c)) sel in
      let peak = List.fold_left Float.max 0. mbs in
      Common.row ppf
        [ Simnet.Cluster.class_name cls;
          Common.float1 (Simnet.Stats.median mbs);
          Common.float1 (Simnet.Stats.percentile mbs 90.);
          Common.float1 peak;
          (if peak <= 100. then "yes" else "NO") ])
    [ Simnet.Cluster.Pop; Simnet.Cluster.Frontend; Simnet.Cluster.Backend ];
  (* breakdown of the peak Backend, as in the paper's prose *)
  let backends = List.filter (fun c -> c.Simnet.Cluster.cls = Simnet.Cluster.Backend) pop in
  let peak =
    List.fold_left
      (fun acc c -> match acc with
        | None -> Some c
        | Some b -> if cluster_bits c > cluster_bits b then Some c else acc)
      None backends
  in
  (match peak with
   | Some c ->
     let conn =
       Silkroad.Memory_model.conn_table_bits ~layout:Silkroad.Memory_model.Digest_version
         ~ipv6:c.Simnet.Cluster.ipv6 ~digest_bits:16 ~version_bits:6
         ~connections:(int_of_float c.Simnet.Cluster.conns_per_tor_p99)
     in
     let total = cluster_bits c in
     Format.fprintf ppf
       "  peak Backend: %.1f MB total, ConnTable %.1f%% (%.2g conns), DIPPool %d dips@."
       (Silkroad.Memory_model.mb total)
       (100. *. float_of_int conn /. float_of_int total)
       c.Simnet.Cluster.conns_per_tor_p99 c.Simnet.Cluster.total_dips
   | None -> ());
  Format.fprintf ppf
    "  paper anchors: PoPs median 14MB / peak 32MB; Backends median 15MB / peak 58MB@.";
  Format.fprintf ppf "                 (ConnTable 91.7%% of the peak); Frontends < 2MB.@."
