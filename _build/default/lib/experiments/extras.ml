(* Text-of-paper experiments that are not numbered figures:
   - digest size vs false positives (§6.1),
   - power / capital cost comparison (§6.1),
   - meter (trTCM) marking accuracy (§5.2). *)

let digest_fp ~quick ppf =
  let n = if quick then 100_000 else 400_000 in
  Common.header ppf "Digest size vs false positives (§6.1)";
  Common.row ppf [ "digest bits"; "SRAM MB @10M"; "false hits"; "rate" ];
  Common.rule ppf;
  List.iter
    (fun bits ->
      (* install n connections, then probe n fresh flows (one packet
         each) and count hardware false hits *)
      let cfg =
        { (Silkroad.Config.sized_for ~connections:n) with Silkroad.Config.digest_bits = bits }
      in
      let table = Silkroad.Conn_table.create cfg in
      let v = Common.vip 0 in
      let flow i =
        Netcore.Five_tuple.make
          ~src:(Netcore.Endpoint.v4 1 ((i / 4_000_000) + 1) ((i / 16_000) mod 250) 4
                  (1 + (i mod 16_000)))
          ~dst:v ~proto:Netcore.Protocol.Tcp
      in
      for i = 0 to n - 1 do
        ignore (Silkroad.Conn_table.insert table (flow i) ~version:1)
      done;
      for i = n to (2 * n) - 1 do
        ignore (Silkroad.Conn_table.lookup table (flow i))
      done;
      let fh = Silkroad.Conn_table.false_hits table in
      let mb =
        Silkroad.Memory_model.mb
          (Silkroad.Memory_model.conn_table_bits ~layout:Silkroad.Memory_model.Digest_version
             ~ipv6:true ~digest_bits:bits ~version_bits:6 ~connections:10_000_000)
      in
      Common.row ppf
        [ string_of_int bits; Common.float1 mb; string_of_int fh;
          Common.pct (float_of_int fh /. float_of_int n) ])
    [ 8; 12; 16; 24 ];
  Format.fprintf ppf
    "  paper anchors: 16-bit digest -> 0.01%% of connections falsely hit@.";
  Format.fprintf ppf
    "  (270/min on a 2.77M conns/min trace, 32MB); 24-bit -> 0.00004%% (42.8MB).@."

let cost ~quick:_ ppf =
  let c = Silkroad.Cost_model.power_and_cost () in
  Common.header ppf "Power & capital cost: SLB vs SilkRoad (§6.1)";
  Common.row ppf [ ""; "SLB"; "SilkRoad"; "ratio" ];
  Common.rule ppf;
  Common.row ppf
    [ "throughput"; Printf.sprintf "%.0f Mpps" Silkroad.Cost_model.slb_mpps;
      Printf.sprintf "%.0f Gpps" Silkroad.Cost_model.silkroad_gpps; "~833x" ];
  Common.row ppf
    [ "watts/Gpps"; Printf.sprintf "%.0f" c.Silkroad.Cost_model.slb_watts_per_gpps;
      Printf.sprintf "%.0f" c.Silkroad.Cost_model.silkroad_watts_per_gpps;
      Printf.sprintf "%.0fx" c.Silkroad.Cost_model.power_ratio ];
  Common.row ppf
    [ "USD/Gpps"; Printf.sprintf "%.0f" c.Silkroad.Cost_model.slb_usd_per_gpps;
      Printf.sprintf "%.0f" c.Silkroad.Cost_model.silkroad_usd_per_gpps;
      Printf.sprintf "%.0fx" c.Silkroad.Cost_model.cost_ratio ];
  Format.fprintf ppf
    "  paper anchors: ~1/500 of the power and ~1/250 of the capital cost.@.";
  (* the 15 Tbps datacenter sizing example *)
  let d =
    Silkroad.Cost_model.demand_of_traffic ~gbps:15_000. ~avg_packet_bytes:800
      ~connections:30_000_000
  in
  Format.fprintf ppf "  40K-server DC (15 Tbps): %d SLBs vs %d SilkRoads@."
    (Silkroad.Cost_model.slb_count d) (Silkroad.Cost_model.silkroad_count d)

let meter ~quick ppf =
  Common.header ppf "Meter (trTCM) marking accuracy (§5.2)";
  Common.row ppf [ "offered/CIR"; "expected green"; "measured green"; "error" ];
  Common.rule ppf;
  let n = if quick then 400_000 else 2_000_000 in
  List.iter
    (fun mult ->
      let cir = 1.25e9 in
      (* 10 Gbps committed *)
      (* burst sizes of ~1 ms at CIR so the initial token burst does not
         bias the measured shares *)
      let m =
        Asic.Meter.create ~cir ~cbs:(int_of_float (cir /. 1000.)) ~eir:cir
          ~ebs:(int_of_float (cir /. 1000.))
      in
      let offered = cir *. mult in
      let pkt = 1250 in
      let dt = float_of_int pkt /. offered in
      let green = ref 0 in
      for i = 0 to n - 1 do
        if Asic.Meter.mark m ~now:(float_of_int i *. dt) ~bytes:pkt = Asic.Meter.Green then
          green := !green + pkt
      done;
      let measured = float_of_int !green /. float_of_int (n * pkt) in
      let expected = Float.min 1. (1. /. mult) in
      Common.row ppf
        [ Printf.sprintf "%.2f" mult; Common.pct expected; Common.pct measured;
          Common.pct (abs_float (measured -. expected)) ])
    [ 0.5; 1.0; 1.5; 2.0; 4.0 ];
  Format.fprintf ppf "  paper anchor: <1%% average marking error at 10 Gbps offered load.@."
