(* Figure 4: CDF of DIP downtime duration by root cause. We sample each
   cause's downtime distribution and print the CDF at the paper's axis
   points (seconds to ~20000 s) plus the calibration anchors (median
   3 min, p99 100 min for upgrades). *)

let causes =
  [ Simnet.Update_trace.Upgrade; Simnet.Update_trace.Testing; Simnet.Update_trace.Failure;
    Simnet.Update_trace.Preempting; Simnet.Update_trace.Removing ]

let run ~quick ppf =
  let n = if quick then 5_000 else 50_000 in
  let rng = Simnet.Prng.create ~seed:4 in
  let samples =
    List.map
      (fun cause ->
        let d = Simnet.Update_trace.downtime cause in
        (cause, List.init n (fun _ -> Simnet.Dist.sample d rng)))
      causes
  in
  Common.header ppf "Figure 4: DIP downtime duration CDF by root cause";
  Common.row ppf
    ("downtime <=" :: List.map (fun c -> Format.asprintf "%a" Simnet.Update_trace.pp_cause c) causes);
  Common.rule ppf;
  List.iter
    (fun secs ->
      let cells =
        List.map
          (fun (_, xs) ->
            let below = List.length (List.filter (fun x -> x <= secs) xs) in
            Common.pct (float_of_int below /. float_of_int n))
          samples
      in
      Common.row ppf (Printf.sprintf "%.0fs" secs :: cells))
    [ 10.; 60.; 180.; 600.; 6000.; 20000. ];
  let upgrades = List.assoc Simnet.Update_trace.Upgrade samples in
  Format.fprintf ppf "  upgrade downtime: median %.0fs (paper 180s), p99 %.0fs (paper 6000s)@."
    (Simnet.Stats.median upgrades) (Simnet.Stats.p99 upgrades);
  Format.fprintf ppf "  provisioning causes no downtime (pure addition).@."
