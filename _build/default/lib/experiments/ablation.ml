(* Ablations over the design choices DESIGN.md calls out:
   - digest width vs memory vs false-positive rate (see Extras.digest_fp),
   - ConnTable geometry (stages x ways) vs achievable occupancy,
   - version-field width vs exhaustion under heavy updates,
   - consistent hashing (Maglev / resilient) vs plain ECMP disruption. *)

module Int_cuckoo = Asic.Cuckoo.Make (struct
  type t = int

  let equal = Int.equal
  let hash ~seed x = Netcore.Hashing.seeded ~seed (Int64.of_int x)
end)

let cuckoo_geometry ~quick ppf =
  Common.header ppf "Ablation: cuckoo geometry vs achievable occupancy";
  Common.row ppf [ "stages"; "ways"; "capacity"; "fill at first failure" ];
  Common.rule ppf;
  let rows = if quick then 1024 else 8192 in
  List.iter
    (fun (stages, ways) ->
      let t = Int_cuckoo.create ~stages ~rows_per_stage:(rows / stages) ~ways () in
      let cap = Int_cuckoo.capacity t in
      let filled = ref 0 in
      (try
         for i = 0 to cap - 1 do
           match Int_cuckoo.insert t i i with
           | Ok _ -> incr filled
           | Error `Full -> raise Exit
           | Error `Duplicate -> ()
         done
       with Exit -> ());
      Common.row ppf
        [ string_of_int stages; string_of_int ways; string_of_int cap;
          Common.pct (float_of_int !filled /. float_of_int cap) ])
    [ (2, 1); (2, 4); (4, 1); (4, 4); (8, 4) ];
  Format.fprintf ppf "  more stages/ways -> higher safe occupancy before insertion failure.@."

let version_bits ~quick ppf =
  Common.header ppf "Ablation: version width vs exhaustion (updates with pinned versions)";
  Common.row ppf [ "bits"; "capacity"; "updates applied"; "exhaustions" ];
  Common.rule ppf;
  let updates = if quick then 120 else 400 in
  List.iter
    (fun bits ->
      let t = Silkroad.Dip_pool_table.create ~version_bits:bits ~seed:5 in
      let v = Common.vip 0 in
      let pool = Lb.Dip_pool.of_list (List.init 16 Common.dip) in
      let v0 = Result.get_ok (Silkroad.Dip_pool_table.add_vip t v pool) in
      Silkroad.Dip_pool_table.retain t ~vip:v ~version:v0;
      let current = ref v0 in
      let rng = Simnet.Prng.create ~seed:77 in
      let events =
        Simnet.Update_trace.generate ~rng ~updates_per_min:(float_of_int updates /. 10.)
          ~horizon:600. ~pool_size:16
      in
      let applied = ref 0 in
      List.iter
        (fun (e : Simnet.Update_trace.event) ->
          let d = Common.dip e.Simnet.Update_trace.dip in
          let u =
            match e.Simnet.Update_trace.kind with
            | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove d
            | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add d
          in
          match Silkroad.Dip_pool_table.publish t ~vip:v ~current:!current u with
          | Ok nv ->
            incr applied;
            if Silkroad.Dip_pool_table.refcount t ~vip:v ~version:nv = 0 then
              Silkroad.Dip_pool_table.retain t ~vip:v ~version:nv;
            current := nv
          | Error _ -> ())
        events;
      Common.row ppf
        [ string_of_int bits; string_of_int (1 lsl bits); string_of_int !applied;
          string_of_int (Silkroad.Dip_pool_table.version_exhaustions t) ])
    [ 4; 6; 8 ];
  Format.fprintf ppf "  6 bits absorb production update rates once versions are reused.@."

let hashing_disruption ~quick ppf =
  Common.header ppf "Ablation: stateless disruption on one DIP removal (16 -> 15)";
  Common.row ppf [ "scheme"; "flows remapped" ];
  Common.rule ppf;
  let n = if quick then 20_000 else 100_000 in
  let dips = List.init 16 Common.dip in
  let removed = Common.dip 3 in
  let survivors = List.filter (fun d -> not (Netcore.Endpoint.equal d removed)) dips in
  let flows =
    List.init n (fun i ->
        Netcore.Five_tuple.hash ~seed:9
          (Netcore.Five_tuple.make
             ~src:(Netcore.Endpoint.v4 1 2 ((i / 60000) + 1) 4 (1 + (i mod 60000)))
             ~dst:(Common.vip 0) ~proto:Netcore.Protocol.Tcp))
  in
  let count name before after =
    let moved = List.length (List.filter (fun h -> before h <> after h) flows) in
    Common.row ppf [ name; Common.pct (float_of_int moved /. float_of_int n) ]
  in
  (* plain ECMP: mod 16 -> mod 15 *)
  let arr_before = Array.of_list dips and arr_after = Array.of_list survivors in
  count "ECMP (mod n)" (Asic.Ecmp.select arr_before) (Asic.Ecmp.select arr_after);
  (* resilient hashing *)
  let r = Asic.Ecmp.resilient ~slots_per_member:64 arr_before in
  let r' = Asic.Ecmp.resilient_remove ~equal:Netcore.Endpoint.equal r removed in
  count "Resilient" (Asic.Ecmp.resilient_select r) (Asic.Ecmp.resilient_select r');
  (* maglev *)
  let m = Baselines.Maglev_hash.create ~table_size:65537 dips in
  let m' = Baselines.Maglev_hash.create ~table_size:65537 survivors in
  count "Maglev" (Baselines.Maglev_hash.lookup m) (Baselines.Maglev_hash.lookup m');
  Format.fprintf ppf
    "  ideal minimum is 1/16 = 6.25%% (only the removed DIP's flows);@.";
  Format.fprintf ppf
    "  SilkRoad's ConnTable achieves 0%% for live connections regardless.@."

let network_wide ~quick:_ ppf =
  Common.header ppf "Network-wide VIP assignment (Figure 11 / §5.3 bin packing)";
  let mb_bits m = int_of_float (m *. 8. *. 1024. *. 1024.) in
  let layers =
    [ { Silkroad.Assignment.layer_name = "ToR"; switches = 48; sram_budget_bits = mb_bits 25.;
        capacity_gbps = 800. };
      { Silkroad.Assignment.layer_name = "Agg"; switches = 16; sram_budget_bits = mb_bits 50.;
        capacity_gbps = 3200. };
      { Silkroad.Assignment.layer_name = "Core"; switches = 4; sram_budget_bits = mb_bits 80.;
        capacity_gbps = 6400. } ]
  in
  let rng = Simnet.Prng.create ~seed:11 in
  let vips =
    List.init 200 (fun i ->
        let conns = Simnet.Dist.sample (Simnet.Dist.lognormal_of_quantiles ~median:2e5 ~p99:2e7) rng in
        let gbps = Simnet.Dist.sample (Simnet.Dist.lognormal_of_quantiles ~median:2. ~p99:220.) rng in
        { Silkroad.Assignment.vip = Common.vip i;
          conn_bits =
            Silkroad.Memory_model.conn_table_bits ~layout:Silkroad.Memory_model.Digest_version
              ~ipv6:false ~digest_bits:16 ~version_bits:6 ~connections:(int_of_float conns);
          traffic_gbps = gbps })
  in
  let p = Silkroad.Assignment.assign ~layers ~vips in
  Common.row ppf [ "layer"; "SRAM util"; "traffic util"; "#VIPs" ];
  Common.rule ppf;
  List.iter
    (fun (layer : Silkroad.Assignment.layer) ->
      let name = layer.Silkroad.Assignment.layer_name in
      let s = List.assoc name p.Silkroad.Assignment.sram_utilization in
      let tr = List.assoc name p.Silkroad.Assignment.traffic_utilization in
      let n = List.length (List.filter (fun (_, l) -> l = name) p.Silkroad.Assignment.assignment) in
      Common.row ppf [ name; Common.pct s; Common.pct tr; string_of_int n ])
    layers;
  Format.fprintf ppf "  max SRAM utilization %s; unplaced VIPs: %d@."
    (Common.pct p.Silkroad.Assignment.max_sram_utilization)
    (List.length p.Silkroad.Assignment.unplaced)
