(* Figure 5: the dilemma of keeping ConnTable only in SLBs (Duet).
   Sweep the aggregate DIP update rate and measure, for each migration
   policy, (a) the share of traffic handled by SLBs and (b) the share of
   broken connections. Hadoop-like flow durations (10 s median), as in
   §3.2's conservative setting. *)

let policies =
  [ ("Migrate-10min", Baselines.Duet.Migrate_every 600.);
    ("Migrate-1min", Baselines.Duet.Migrate_every 60.);
    ("Migrate-PCC", Baselines.Duet.Migrate_pcc) ]

(* §3.2's closing observation: with cache-like flow durations (4.5 min
   median) there are far more old connections alive at each migration,
   so Migrate-10min breaks over half of all connections at high update
   rates. *)
let run_cache ~quick ppf =
  let n_vips = if quick then 8 else 16 in
  let conns = if quick then 3. else 6. in
  let trace = if quick then 1500. else 2400. in
  let s =
    Common.scenario ~seed:52 ~n_vips ~dips_per_vip:8
      ~duration:Simnet.Workload.cache_durations ~conns_per_sec_per_vip:conns
      ~updates_per_min:50. ~trace_seconds:trace ()
  in
  Common.header ppf "Figure 5 (cache traffic, 4.5 min median flows, 50 upd/min)";
  Common.row ppf [ "policy"; "broken"; "slb traffic" ];
  Common.rule ppf;
  List.iter
    (fun (name, policy) ->
      let b, _ =
        Baselines.Duet.create ~seed:53 ~policy ~vips:(Common.vips_of ~n_vips ~dips_per_vip:8) ()
      in
      let r = Common.run b s in
      Common.row ppf
        [ name; Common.pct r.Harness.Driver.broken_fraction;
          Common.pct r.Harness.Driver.slb_traffic_fraction ])
    policies;
  Format.fprintf ppf
    "  paper anchor: with cache traffic Migrate-10min breaks 53.5%% of@.";
  Format.fprintf ppf "  connections at 50 upd/min (long-lived flows pile up old state).@."

let run ~quick ppf =
  let n_vips = if quick then 12 else 32 in
  let dips_per_vip = 8 in
  let conns = if quick then 4. else 6. in
  let trace = if quick then 900. else 1500. in
  let rates = if quick then [ 1.; 10.; 30.; 50. ] else [ 1.; 10.; 20.; 30.; 40.; 50. ] in
  let results =
    List.map
      (fun rate ->
        let s =
          Common.scenario ~seed:5 ~n_vips ~dips_per_vip
            ~duration:Simnet.Workload.hadoop_durations ~conns_per_sec_per_vip:conns
            ~updates_per_min:rate ~trace_seconds:trace ()
        in
        let per_policy =
          List.map
            (fun (name, policy) ->
              let b, _ =
                Baselines.Duet.create ~seed:55 ~policy
                  ~vips:(Common.vips_of ~n_vips ~dips_per_vip) ()
              in
              (name, Common.run b s))
            policies
        in
        (rate, per_policy))
      rates
  in
  Common.header ppf "Figure 5a: % of traffic volume handled in SLBs (Duet)";
  Common.row ppf ("upd/min" :: List.map fst policies);
  Common.rule ppf;
  List.iter
    (fun (rate, per_policy) ->
      Common.row ppf
        (Common.float1 rate
         :: List.map (fun (_, r) -> Common.pct r.Harness.Driver.slb_traffic_fraction) per_policy))
    results;
  Format.fprintf ppf
    "  paper anchors @50/min: Migrate-10min 74.3%%, Migrate-1min 13.2%%, Migrate-PCC 93.8%%@.";
  Common.header ppf "Figure 5b: % of connections broken (Duet)";
  Common.row ppf ("upd/min" :: List.map fst policies);
  Common.rule ppf;
  List.iter
    (fun (rate, per_policy) ->
      Common.row ppf
        (Common.float1 rate
         :: List.map (fun (_, r) -> Common.pct r.Harness.Driver.broken_fraction) per_policy))
    results;
  Format.fprintf ppf
    "  paper anchors @50/min: Migrate-1min 1.4%% broken, Migrate-10min 0.3%%, Migrate-PCC 0%%@."
