(** Shared machinery for the paper-reproduction experiments: canned
    cluster populations, workload/update synthesis for a set of VIPs,
    balancer construction, and tabular output helpers.

    Every experiment is deterministic (fixed seeds) and has a [quick]
    mode that scales the workload down for CI-speed runs; the full mode
    is closer to the paper's operating points. EXPERIMENTS.md records
    which scale each reported number was produced at. *)

val study_population : unit -> Simnet.Cluster.t list
(** The fixed 96-cluster population every cross-cluster figure uses. *)

val vip : int -> Netcore.Endpoint.t
(** The i-th experiment VIP (20.0.0.i:80). *)

val dip : int -> Netcore.Endpoint.t
(** The i-th experiment DIP (10.0.x.y:20). *)

val dip_pool : n:int -> Lb.Dip_pool.t
(** A pool of the first [n] DIPs. *)

type scenario = {
  flows : Simnet.Flow.t list;
  updates : (float * Netcore.Endpoint.t * Lb.Balancer.update) list;
  horizon : float;  (** harness horizon (includes drain time) *)
}

val scenario :
  ?seed:int ->
  ?n_vips:int ->
  ?dips_per_vip:int ->
  ?duration:Simnet.Dist.t ->
  conns_per_sec_per_vip:float ->
  updates_per_min:float ->
  trace_seconds:float ->
  unit ->
  scenario
(** A multi-VIP workload plus a DIP-update schedule: per-VIP Poisson
    arrivals and independent update traces, time-sorted, ready for
    {!Harness.Driver.run}. [updates_per_min] is the aggregate rate across
    all VIPs (as in §3.2's sweeps). *)

val vips_of : n_vips:int -> dips_per_vip:int -> (Netcore.Endpoint.t * Lb.Dip_pool.t) list

val silkroad : ?cfg:Silkroad.Config.t -> vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list ->
  unit -> Silkroad.Switch.t * Lb.Balancer.t

val run : Lb.Balancer.t -> scenario -> Harness.Driver.result

(** Output helpers: fixed-width table rendering shared by every bench. *)

val header : Format.formatter -> string -> unit
(** Section banner with the experiment id and title. *)

val row : Format.formatter -> string list -> unit
val rule : Format.formatter -> unit

val pct : float -> string
val float1 : float -> string
val sci : float -> string
