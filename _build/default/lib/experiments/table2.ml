(* Table 2: additional hardware resources used by SilkRoad with 1M
   connection entries, normalized by the baseline switch.p4. Recomputed
   from our table inventory; paper values shown for comparison. *)

let paper =
  [ ("Match Crossbar", 37.53); ("SRAM", 27.92); ("TCAM", 0.0); ("VLIW Actions", 18.89);
    ("Hash Bits", 34.17); ("Stateful ALUs", 44.44); ("Packet Header Vector", 0.98) ]

let run ~quick:_ ppf =
  let p = Silkroad.Program.table2 ~connections:1_000_000 ~vips:1024 in
  let ours =
    [ ("Match Crossbar", p.Asic.Resources.p_match_crossbar); ("SRAM", p.Asic.Resources.p_sram);
      ("TCAM", p.Asic.Resources.p_tcam); ("VLIW Actions", p.Asic.Resources.p_vliw);
      ("Hash Bits", p.Asic.Resources.p_hash_bits);
      ("Stateful ALUs", p.Asic.Resources.p_stateful_alus);
      ("Packet Header Vector", p.Asic.Resources.p_phv) ]
  in
  Common.header ppf "Table 2: additional H/W resources of SilkRoad @1M connections";
  Common.row ppf [ "resource"; "ours"; "paper" ];
  Common.rule ppf;
  List.iter2
    (fun (name, v) (_, pv) ->
      Common.row ppf [ name; Printf.sprintf "%.2f%%" v; Printf.sprintf "%.2f%%" pv ])
    ours paper;
  Format.fprintf ppf "  (normalized by the frozen switch.p4 baseline vector; see DESIGN.md)@."
