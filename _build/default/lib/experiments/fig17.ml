(* Figure 17: PCC violations vs new-connection arrival rate at a fixed
   10 updates/min (scaling the paper's 2.77M conns/min trace by 0.1-2x). *)

let run ~quick ppf =
  let n_vips = if quick then 2 else 4 in
  let dips_per_vip = 8 in
  let base = if quick then 50. else 100. in
  let trace = if quick then 900. else 1500. in
  let scales = if quick then [ 0.25; 1.; 2. ] else [ 0.1; 0.25; 0.5; 1.; 1.5; 2. ] in
  Common.header ppf "Figure 17: broken connections vs arrival rate (10 upd/min)";
  Common.row ppf [ "rate scale"; "Duet"; "SilkRoad w/o TT"; "SilkRoad" ];
  Common.rule ppf;
  List.iter
    (fun scale ->
      let s =
        Common.scenario ~seed:17 ~n_vips ~dips_per_vip
          ~duration:Simnet.Workload.hadoop_durations
          ~conns_per_sec_per_vip:(base *. scale) ~updates_per_min:10. ~trace_seconds:trace ()
      in
      let cells =
        List.map
          (fun (_, mk) ->
            let r = Common.run (mk ()) s in
            Printf.sprintf "%d/%d" r.Harness.Driver.broken_connections r.Harness.Driver.connections)
          (Fig16.arms ~n_vips ~dips_per_vip)
      in
      Common.row ppf (Printf.sprintf "%.2fx" scale :: cells))
    scales;
  Format.fprintf ppf
    "  paper shape: Duet and SilkRoad-w/o-TT worsen with arrival rate;@.";
  Format.fprintf ppf "  SilkRoad with its 256B TransitTable stays at zero.@."
