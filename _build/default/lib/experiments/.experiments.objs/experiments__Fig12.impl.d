lib/experiments/fig12.ml: Common Float Format List Silkroad Simnet
