lib/experiments/fig17.ml: Common Fig16 Format Harness List Printf Simnet
