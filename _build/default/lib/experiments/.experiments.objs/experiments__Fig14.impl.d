lib/experiments/fig14.ml: Common Float Format Int List Printf Silkroad Simnet
