lib/experiments/extras.ml: Asic Common Float Format List Netcore Printf Silkroad
