lib/experiments/fig5.ml: Baselines Common Format Harness List Simnet
