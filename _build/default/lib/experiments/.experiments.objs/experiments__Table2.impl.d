lib/experiments/table2.ml: Asic Common Format List Printf Silkroad
