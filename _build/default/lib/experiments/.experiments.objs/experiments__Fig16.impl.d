lib/experiments/fig16.ml: Baselines Common Format Harness List Printf Silkroad Simnet
