lib/experiments/fig3.ml: Common Format Hashtbl List Option Printf Simnet
