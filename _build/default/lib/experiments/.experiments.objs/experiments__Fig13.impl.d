lib/experiments/fig13.ml: Common Float Format List Silkroad Simnet
