lib/experiments/fig2.ml: Array Common Float Format Int List Simnet
