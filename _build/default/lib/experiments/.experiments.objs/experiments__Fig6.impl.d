lib/experiments/fig6.ml: Common Float Format List Simnet
