lib/experiments/fig18.ml: Common Format Harness List Printf Silkroad Simnet
