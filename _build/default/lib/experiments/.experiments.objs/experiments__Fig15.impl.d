lib/experiments/fig15.ml: Common Float Format Int Lb List Silkroad Simnet
