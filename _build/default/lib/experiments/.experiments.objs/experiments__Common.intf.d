lib/experiments/common.mli: Format Harness Lb Netcore Silkroad Simnet
