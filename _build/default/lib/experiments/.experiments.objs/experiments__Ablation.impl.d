lib/experiments/ablation.ml: Array Asic Baselines Common Format Int Int64 Lb List Netcore Result Silkroad Simnet
