lib/experiments/registry.ml: Ablation Extensions Extras Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Fig18 Fig2 Fig3 Fig4 Fig5 Fig6 Fig8 Format List Table1 Table2
