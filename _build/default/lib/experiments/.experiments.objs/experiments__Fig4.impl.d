lib/experiments/fig4.ml: Common Format List Printf Simnet
