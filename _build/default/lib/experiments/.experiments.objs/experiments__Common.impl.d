lib/experiments/common.ml: Format Harness Lb List Netcore Printf Silkroad Simnet String
