lib/experiments/extensions.ml: Baselines Common Format Harness Int64 Lb List Netcore Printf Silkroad Simnet Sys
