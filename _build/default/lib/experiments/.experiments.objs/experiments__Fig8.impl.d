lib/experiments/fig8.ml: Common Float Format Int List Simnet
