(* Figure 15: benefit of version reuse. For a Backend VIP under a given
   number of DIP pool updates per ten-minute window, count the version
   numbers needed without reuse (every update burns one — the paper's
   "330 updates -> 330 versions, 9 bits") and with reuse (drive the
   updates through DIPPoolTable; every version is pinned for the whole
   window, the worst case for the allocator). *)

let versions_with_reuse ~rng ~updates ~pool_size =
  let t = Silkroad.Dip_pool_table.create ~version_bits:10 ~seed:99 in
  let vip = Common.vip 0 in
  let pool = Lb.Dip_pool.of_list (List.init pool_size Common.dip) in
  let v0 =
    match Silkroad.Dip_pool_table.add_vip t vip pool with Ok v -> v | Error `Exists -> assert false
  in
  (* pin every version that becomes current: connections from the whole
     window are still alive *)
  Silkroad.Dip_pool_table.retain t ~vip ~version:v0;
  let current = ref v0 in
  let events =
    Simnet.Update_trace.generate ~rng ~updates_per_min:(float_of_int updates /. 10.)
      ~horizon:600. ~pool_size
  in
  let applied = ref 0 in
  List.iter
    (fun (e : Simnet.Update_trace.event) ->
      let d = Common.dip e.Simnet.Update_trace.dip in
      let u =
        match e.Simnet.Update_trace.kind with
        | Simnet.Update_trace.Remove -> Lb.Balancer.Dip_remove d
        | Simnet.Update_trace.Add -> Lb.Balancer.Dip_add d
      in
      match Silkroad.Dip_pool_table.publish t ~vip ~current:!current u with
      | Ok v ->
        incr applied;
        if not (Silkroad.Dip_pool_table.refcount t ~vip ~version:v > 0) then
          Silkroad.Dip_pool_table.retain t ~vip ~version:v;
        current := v
      | Error _ -> ())
    events;
  (!applied, Silkroad.Dip_pool_table.live_versions t ~vip)

let run ~quick:_ ppf =
  let rng = Simnet.Prng.create ~seed:15 in
  Common.header ppf "Figure 15: versions needed per 10-minute window (reuse on/off)";
  Common.row ppf [ "updates/10min"; "no reuse"; "with reuse"; "bits no-reuse"; "bits reuse" ];
  Common.rule ppf;
  let bits n = int_of_float (Float.ceil (log (float_of_int (Int.max 2 n)) /. log 2.)) in
  List.iter
    (fun target ->
      let applied, with_reuse = versions_with_reuse ~rng ~updates:target ~pool_size:8 in
      let without = applied + 1 in
      Common.row ppf
        [ string_of_int applied; string_of_int without; string_of_int with_reuse;
          string_of_int (bits without); string_of_int (bits with_reuse) ])
    [ 10; 50; 100; 200; 330 ];
  Format.fprintf ppf
    "  paper anchors: 330 updates need 330 versions (9 bits) without reuse,@.";
  Format.fprintf ppf "                 up to ~51 versions (6 bits) with reuse.@."
