(* The experiment registry: every table and figure of the paper's
   evaluation, addressable by id from both the bench harness and the
   CLI. *)

type t = {
  id : string;
  title : string;
  run : quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "fig2"; title = "DIP pool update frequency"; run = Fig2.run };
    { id = "fig3"; title = "Root causes of DIP updates"; run = Fig3.run };
    { id = "fig4"; title = "DIP downtime durations"; run = Fig4.run };
    { id = "fig5"; title = "Duet: SLB load vs PCC violations"; run = Fig5.run };
    { id = "fig5_cache"; title = "Duet under cache traffic (§3.2)"; run = Fig5.run_cache };
    { id = "fig6"; title = "Active connections per ToR"; run = Fig6.run };
    { id = "fig8"; title = "New connections per VIP-minute"; run = Fig8.run };
    { id = "table1"; title = "ASIC SRAM trend"; run = Table1.run };
    { id = "table2"; title = "SilkRoad hardware resources"; run = Table2.run };
    { id = "fig12"; title = "SilkRoad SRAM usage per ToR"; run = Fig12.run };
    { id = "fig13"; title = "SLBs replaced per SilkRoad"; run = Fig13.run };
    { id = "fig14"; title = "Memory saving of digest/version"; run = Fig14.run };
    { id = "fig15"; title = "Version reuse"; run = Fig15.run };
    { id = "fig16"; title = "PCC vs update frequency"; run = Fig16.run };
    { id = "fig17"; title = "PCC vs arrival rate"; run = Fig17.run };
    { id = "fig18"; title = "TransitTable sizing"; run = Fig18.run };
    { id = "digest_fp"; title = "Digest false positives (§6.1)"; run = Extras.digest_fp };
    { id = "cost"; title = "Power & cost comparison (§6.1)"; run = Extras.cost };
    { id = "meter"; title = "Meter accuracy (§5.2)"; run = Extras.meter };
    { id = "ablate_cuckoo"; title = "Ablation: cuckoo geometry"; run = Ablation.cuckoo_geometry };
    { id = "ablate_versions"; title = "Ablation: version width"; run = Ablation.version_bits };
    { id = "ablate_hashing"; title = "Ablation: hashing disruption"; run = Ablation.hashing_disruption };
    { id = "network_wide"; title = "Network-wide assignment (§5.3)"; run = Ablation.network_wide };
    { id = "isolation"; title = "Performance isolation (§2.2/§5.2)"; run = Extensions.isolation };
    { id = "switch_failure"; title = "Switch failure (§7)"; run = Extensions.switch_failure };
    { id = "hybrid"; title = "SilkRoad+SLB hybrid (§7)"; run = Extensions.hybrid };
    { id = "latency"; title = "Added latency per balancer (§2.2)"; run = Extensions.latency };
    { id = "scale"; title = "ConnTable at scale (§5.2)"; run = Extensions.scale };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ~quick ppf =
  List.iter (fun e -> e.run ~quick ppf) all
