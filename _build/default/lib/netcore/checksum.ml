let ones_complement_sum b =
  let len = Bytes.length b in
  let rec go acc i =
    if i + 1 < len then
      go (acc + ((Char.code (Bytes.get b i) lsl 8) lor Char.code (Bytes.get b (i + 1)))) (i + 2)
    else if i < len then acc + (Char.code (Bytes.get b i) lsl 8)
    else acc
  in
  let sum = go 0 0 in
  (* Fold carries back in until the sum fits 16 bits. *)
  let rec fold s = if s > 0xffff then fold ((s land 0xffff) + (s lsr 16)) else s in
  fold sum

let checksum b = lnot (ones_complement_sum b) land 0xffff

let verify b = ones_complement_sum b = 0xffff

let incremental_update ~old_checksum ~old_word ~new_word =
  (* RFC 1624: HC' = ~(~HC + ~m + m') with ones-complement arithmetic. *)
  let add a b =
    let s = a + b in
    (s land 0xffff) + (s lsr 16)
  in
  let nhc = add (add (lnot old_checksum land 0xffff) (lnot old_word land 0xffff)) new_word in
  lnot nhc land 0xffff
