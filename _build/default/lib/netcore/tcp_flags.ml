type t = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let none = { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }
let syn = { none with syn = true }
let syn_ack = { none with syn = true; ack = true }
let fin = { none with fin = true; ack = true }
let rst = { none with rst = true }
let data = { none with ack = true; psh = true }

let to_byte { syn; ack; fin; rst; psh; urg } =
  (if fin then 0x01 else 0)
  lor (if syn then 0x02 else 0)
  lor (if rst then 0x04 else 0)
  lor (if psh then 0x08 else 0)
  lor (if ack then 0x10 else 0)
  lor (if urg then 0x20 else 0)

let of_byte b =
  {
    fin = b land 0x01 <> 0;
    syn = b land 0x02 <> 0;
    rst = b land 0x04 <> 0;
    psh = b land 0x08 <> 0;
    ack = b land 0x10 <> 0;
    urg = b land 0x20 <> 0;
  }

let is_connection_start t = t.syn && not t.ack
let is_connection_end t = t.fin || t.rst

let pp ppf t =
  let parts =
    List.filter_map
      (fun (set, name) -> if set then Some name else None)
      [ (t.syn, "SYN"); (t.ack, "ACK"); (t.fin, "FIN"); (t.rst, "RST");
        (t.psh, "PSH"); (t.urg, "URG") ]
  in
  Format.pp_print_string ppf (if parts = [] then "-" else String.concat "|" parts)
