(** Deterministic hash primitives modelled after the generic hash units of
    a switching ASIC.

    Switching ASICs expose a set of independent hardware hash units (used
    for ECMP, LAG, learning filters, cuckoo stages, ...). We model them as
    a family of 64-bit mixing functions parameterised by a seed: two
    different seeds give (statistically) independent functions, which is
    what the multi-stage cuckoo table and the Bloom filter rely on.

    All functions here are pure and deterministic across runs, which keeps
    every simulation reproducible. *)

val mix64 : int64 -> int64
(** A strong 64-bit finalizer (splitmix64 / murmur3-style avalanche). *)

val seeded : seed:int -> int64 -> int64
(** [seeded ~seed x] applies a seed-keyed mix: functions with different
    seeds behave as independent hash functions. *)

val fold_bytes : int64 -> Bytes.t -> int64
(** Fold a byte string into an accumulator, 8 bytes at a time. *)

val to_range : int64 -> int -> int
(** [to_range h n] maps a hash value uniformly onto [0, n). [n] must be
    positive. *)

val truncate_bits : int64 -> int -> int
(** [truncate_bits h k] keeps the low [k] bits of [h] (the hardware
    "digest" extraction). [0 < k <= 30]. *)

type family
(** A family of independent hash functions [h_0 ... h_{k-1}]. *)

val family : seed:int -> family
val apply : family -> int -> int64 -> int64
(** [apply fam i x] is the i-th function of the family applied to [x]. *)
