lib/netcore/str_split.mli:
