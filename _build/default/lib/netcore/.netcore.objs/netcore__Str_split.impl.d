lib/netcore/str_split.ml: List String
