lib/netcore/packet.ml: Five_tuple Format Protocol Tcp_flags
