lib/netcore/ip.ml: Bytes Format Hashing Int32 Int64 List Str_split String
