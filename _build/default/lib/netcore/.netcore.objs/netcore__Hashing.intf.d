lib/netcore/hashing.mli: Bytes
