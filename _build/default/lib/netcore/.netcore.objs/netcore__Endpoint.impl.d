lib/netcore/endpoint.ml: Format Hashing Int Int64 Ip String
