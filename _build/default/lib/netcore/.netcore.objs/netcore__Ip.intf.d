lib/netcore/ip.mli: Bytes Format
