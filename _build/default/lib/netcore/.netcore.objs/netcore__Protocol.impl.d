lib/netcore/protocol.ml: Format
