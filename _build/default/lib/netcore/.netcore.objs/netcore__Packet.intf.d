lib/netcore/packet.mli: Endpoint Five_tuple Format Tcp_flags
