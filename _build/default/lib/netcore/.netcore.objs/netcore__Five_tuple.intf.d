lib/netcore/five_tuple.mli: Endpoint Format Protocol
