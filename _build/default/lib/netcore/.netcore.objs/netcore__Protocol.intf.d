lib/netcore/protocol.mli: Format
