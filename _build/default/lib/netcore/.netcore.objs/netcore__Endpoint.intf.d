lib/netcore/endpoint.mli: Format Ip
