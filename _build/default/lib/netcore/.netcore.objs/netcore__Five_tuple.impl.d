lib/netcore/five_tuple.ml: Endpoint Format Hashing Int64 Ip Protocol
