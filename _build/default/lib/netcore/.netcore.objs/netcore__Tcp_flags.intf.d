lib/netcore/tcp_flags.mli: Format
