lib/netcore/tcp_flags.ml: Format List String
