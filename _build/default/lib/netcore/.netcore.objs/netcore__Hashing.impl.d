lib/netcore/hashing.ml: Bytes Char Int64
