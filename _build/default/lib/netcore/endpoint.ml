type t = {
  ip : Ip.t;
  port : int;
}

let make ip port =
  assert (port >= 0 && port < 65536);
  { ip; port }

let v4 a b c d port = make (Ip.v4 a b c d) port

let compare a b =
  let c = Ip.compare a.ip b.ip in
  if c <> 0 then c else Int.compare a.port b.port

let equal a b = compare a b = 0

let hash_fold acc { ip; port } =
  Hashing.mix64 (Int64.logxor (Ip.hash_fold acc ip) (Int64.of_int port))

let size_bytes { ip; port = _ } = Ip.family_bytes ip + 2

let pp ppf { ip; port } =
  if Ip.is_v6 ip then Format.fprintf ppf "[%a]:%d" Ip.pp ip port
  else Format.fprintf ppf "%a:%d" Ip.pp ip port

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let parse_port p = int_of_string_opt p in
  if String.length s > 0 && s.[0] = '[' then
    match String.index_opt s ']' with
    | Some i when i + 1 < String.length s && s.[i + 1] = ':' ->
      let addr = String.sub s 1 (i - 1) in
      let port = String.sub s (i + 2) (String.length s - i - 2) in
      (match Ip.of_string addr, parse_port port with
       | Some ip, Some p when p >= 0 && p < 65536 -> Some (make ip p)
       | _, _ -> None)
    | Some _ | None -> None
  else
    match String.rindex_opt s ':' with
    | None -> None
    | Some i ->
      let addr = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match Ip.of_string addr, parse_port port with
       | Some ip, Some p when p >= 0 && p < 65536 -> Some (make ip p)
       | _, _ -> None)
