(** An [ip:port] pair — the representation of both VIPs and DIPs. *)

type t = {
  ip : Ip.t;
  port : int;  (** 0..65535 *)
}

val make : Ip.t -> int -> t
val v4 : int -> int -> int -> int -> int -> t
(** [v4 a b c d port] is a convenience constructor for [a.b.c.d:port]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash_fold : int64 -> t -> int64
val size_bytes : t -> int
(** Wire size of the endpoint: address bytes + 2 port bytes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
(** Parses ["a.b.c.d:port"] (or an IPv6 literal in square brackets,
    ["[h:...:h]:port"]). *)
