type t =
  | Tcp
  | Udp

let equal a b = a = b
let compare = compare
let to_byte = function Tcp -> 6 | Udp -> 17
let pp ppf t = Format.pp_print_string ppf (match t with Tcp -> "tcp" | Udp -> "udp")
