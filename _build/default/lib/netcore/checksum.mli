(** The Internet (RFC 1071) ones-complement checksum, plus the
    incremental-update rule (RFC 1624) that a NAT device like a load
    balancer applies when it rewrites a destination address. *)

val ones_complement_sum : Bytes.t -> int
(** 16-bit ones-complement sum of the byte string (final complement not
    applied). *)

val checksum : Bytes.t -> int
(** The RFC 1071 checksum of the byte string: the complemented 16-bit
    ones-complement sum. *)

val verify : Bytes.t -> bool
(** [verify b] is true when [b], which includes its checksum field, sums
    to [0xffff] — i.e. the checksum is valid. *)

val incremental_update : old_checksum:int -> old_word:int -> new_word:int -> int
(** RFC 1624 eqn. 3: recompute a checksum after a single 16-bit word of
    the covered data changed — this is what the data plane does when it
    rewrites VIP to DIP without touching the payload. *)
