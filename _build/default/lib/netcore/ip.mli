(** IP addresses, both IPv4 and IPv6.

    The load balancer is address-family agnostic: VIPs and DIPs may be v4
    or v6, and the memory model depends on the family (an IPv6 5-tuple is
    37 bytes, an IPv4 one is 13). Addresses are stored as unboxed integers
    so that millions of them stay cheap in the simulator. *)

type t =
  | V4 of int32
  | V6 of int64 * int64  (** high 64 bits, low 64 bits *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash_fold : int64 -> t -> int64
(** [hash_fold acc t] folds the address bytes into a running 64-bit hash
    accumulator (see {!Hashing.mix64}). *)

val v4 : int -> int -> int -> int -> t
(** [v4 a b c d] is the address [a.b.c.d]. Each component must fit in a
    byte. *)

val v6 : int64 -> int64 -> t

val family_bytes : t -> int
(** Size of the address in bytes: 4 or 16. *)

val is_v6 : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parses dotted-quad IPv4 ([a.b.c.d]) and full/abbreviated-free IPv6
    ([h:h:h:h:h:h:h:h], 8 hex groups; [::] abbreviation is supported). *)

val to_bytes : t -> Bytes.t
(** Network byte order representation, 4 or 16 bytes. *)
