(** Internal helper: split an IPv6 literal around its "::" abbreviation. *)

type t =
  | No_abbrev of string list  (** groups of a full 8-group literal *)
  | Abbrev of string list * string list
      (** groups left and right of a single "::" *)
  | Malformed  (** empty string, or more than one "::" *)

val on_double_colon : string -> t
