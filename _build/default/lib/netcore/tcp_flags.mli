(** TCP control flags. SilkRoad's data plane only needs SYN (new
    connection — used to detect digest false positives) and FIN/RST
    (connection teardown — drives ConnTable entry expiry), but we carry
    the full flag byte for completeness. *)

type t = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val none : t
val syn : t
(** A bare SYN — first packet of a connection. *)

val syn_ack : t
val fin : t
val rst : t
val data : t
(** ACK+PSH — a mid-connection data segment. *)

val to_byte : t -> int
val of_byte : int -> t
val is_connection_start : t -> bool
(** SYN set and ACK clear. *)

val is_connection_end : t -> bool
(** FIN or RST set. *)

val pp : Format.formatter -> t -> unit
