(* Helper for splitting IPv6 literals around the "::" abbreviation. *)

type t =
  | No_abbrev of string list
  | Abbrev of string list * string list
  | Malformed

let non_empty_groups s =
  if s = "" then [] else String.split_on_char ':' s

let on_double_colon s =
  let len = String.length s in
  let rec find i =
    if i + 1 >= len then None
    else if s.[i] = ':' && s.[i + 1] = ':' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None ->
    if String.length s = 0 then Malformed else No_abbrev (String.split_on_char ':' s)
  | Some i ->
    let left = String.sub s 0 i in
    let right = String.sub s (i + 2) (len - i - 2) in
    (* A second "::" makes the literal ambiguous. *)
    let rec has_other j =
      if j + 1 >= String.length right then false
      else if right.[j] = ':' && right.[j + 1] = ':' then true
      else has_other (j + 1)
    in
    if has_other 0 then Malformed
    else
      let lg = non_empty_groups left and rg = non_empty_groups right in
      if List.mem "" lg || List.mem "" rg then Malformed else Abbrev (lg, rg)
