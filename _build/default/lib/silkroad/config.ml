type t = {
  digest_bits : int;
  version_bits : int;
  conn_table_stages : int;
  conn_table_rows : int;
  conn_table_ways : int;
  transit_bytes : int;
  transit_hashes : int;
  learning_capacity : int;
  learning_timeout : float;
  cpu_insertions_per_sec : float;
  idle_timeout : float;
  use_transit : bool;
  seed : int;
}

let default =
  {
    digest_bits = 16;
    version_bits = 6;
    conn_table_stages = 2;
    conn_table_rows = 131072;
    conn_table_ways = 4;
    transit_bytes = 256;
    transit_hashes = 2;
    learning_capacity = 2048;
    learning_timeout = 1e-3;
    cpu_insertions_per_sec = 200_000.;
    idle_timeout = 60.;
    use_transit = true;
    seed = 42;
  }

let conn_capacity t = t.conn_table_stages * t.conn_table_rows * t.conn_table_ways

let sized_for ~connections =
  assert (connections > 0);
  let stages = 4 and ways = 4 in
  let target = float_of_int connections /. 0.85 in
  let rows = int_of_float (Float.ceil (target /. float_of_int (stages * ways))) in
  { default with conn_table_stages = stages; conn_table_ways = ways; conn_table_rows = Int.max 1 rows }

let max_versions t = 1 lsl t.version_bits

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.digest_bits >= 1 && t.digest_bits <= 30) "digest_bits must be in 1..30" in
  let* () = check (t.version_bits >= 1 && t.version_bits <= 16) "version_bits must be in 1..16" in
  let* () = check (t.conn_table_stages >= 2) "conn_table_stages must be >= 2" in
  let* () = check (t.conn_table_rows > 0) "conn_table_rows must be positive" in
  let* () = check (t.conn_table_ways >= 1) "conn_table_ways must be >= 1" in
  let* () = check (t.transit_bytes > 0) "transit_bytes must be positive" in
  let* () = check (t.transit_hashes >= 1 && t.transit_hashes <= 16) "transit_hashes in 1..16" in
  let* () = check (t.learning_capacity > 0) "learning_capacity must be positive" in
  let* () = check (t.learning_timeout >= 0.) "learning_timeout must be >= 0" in
  let* () = check (t.cpu_insertions_per_sec > 0.) "cpu_insertions_per_sec must be positive" in
  check (t.idle_timeout > 0.) "idle_timeout must be positive"
