type t = {
  bits : int;
  free : int Queue.t;
  allocated : bool array;
  mutable exhaustions : int;
}

let create ~bits =
  assert (bits >= 1 && bits <= 16);
  let n = 1 lsl bits in
  let free = Queue.create () in
  for v = 0 to n - 1 do
    Queue.add v free
  done;
  { bits; free; allocated = Array.make n false; exhaustions = 0 }

let bits t = t.bits
let capacity t = 1 lsl t.bits
let free_count t = Queue.length t.free
let allocated_count t = capacity t - free_count t

let allocate t =
  match Queue.take_opt t.free with
  | Some v ->
    t.allocated.(v) <- true;
    Ok v
  | None ->
    t.exhaustions <- t.exhaustions + 1;
    Error `Exhausted

let release t v =
  if v < 0 || v >= capacity t || not t.allocated.(v) then
    invalid_arg "Version.release: not allocated";
  t.allocated.(v) <- false;
  Queue.add v t.free

let is_allocated t v = v >= 0 && v < capacity t && t.allocated.(v)

let exhaustions t = t.exhaustions
