type layer = {
  layer_name : string;
  switches : int;
  sram_budget_bits : int;
  capacity_gbps : float;
}

type vip_demand = {
  vip : Netcore.Endpoint.t;
  conn_bits : int;
  traffic_gbps : float;
}

type placement = {
  assignment : (Netcore.Endpoint.t * string) list;
  sram_utilization : (string * float) list;
  traffic_utilization : (string * float) list;
  max_sram_utilization : float;
  unplaced : Netcore.Endpoint.t list;
}

type bin = {
  layer : layer;
  mutable used_bits_per_switch : float;
  mutable used_gbps_per_switch : float;
}

let assign ~layers ~vips =
  assert (layers <> []);
  List.iter (fun l -> assert (l.switches > 0 && l.sram_budget_bits > 0)) layers;
  let bins =
    List.map (fun layer -> { layer; used_bits_per_switch = 0.; used_gbps_per_switch = 0. }) layers
  in
  (* First-fit decreasing: place the memory-hungriest VIPs first, each on
     the layer that ends up least SRAM-utilized. *)
  let sorted = List.sort (fun a b -> Int.compare b.conn_bits a.conn_bits) vips in
  let assignment = ref [] in
  let unplaced = ref [] in
  List.iter
    (fun v ->
      let candidates =
        List.filter_map
          (fun bin ->
            let add_bits = float_of_int v.conn_bits /. float_of_int bin.layer.switches in
            let add_gbps = v.traffic_gbps /. float_of_int bin.layer.switches in
            let new_bits = bin.used_bits_per_switch +. add_bits in
            let new_gbps = bin.used_gbps_per_switch +. add_gbps in
            if new_bits <= float_of_int bin.layer.sram_budget_bits
               && new_gbps <= bin.layer.capacity_gbps
            then Some (bin, add_bits, add_gbps, new_bits /. float_of_int bin.layer.sram_budget_bits)
            else None)
          bins
      in
      match candidates with
      | [] -> unplaced := v.vip :: !unplaced
      | first :: rest ->
        let (bin, add_bits, add_gbps, _) =
          List.fold_left
            (fun ((_, _, _, bu) as best) ((_, _, _, cu) as cand) ->
              if cu < bu then cand else best)
            first rest
        in
        bin.used_bits_per_switch <- bin.used_bits_per_switch +. add_bits;
        bin.used_gbps_per_switch <- bin.used_gbps_per_switch +. add_gbps;
        assignment := (v.vip, bin.layer.layer_name) :: !assignment)
    sorted;
  let sram_utilization =
    List.map
      (fun bin ->
        (bin.layer.layer_name, bin.used_bits_per_switch /. float_of_int bin.layer.sram_budget_bits))
      bins
  in
  let traffic_utilization =
    List.map
      (fun bin -> (bin.layer.layer_name, bin.used_gbps_per_switch /. bin.layer.capacity_gbps))
      bins
  in
  {
    assignment = List.rev !assignment;
    sram_utilization;
    traffic_utilization;
    max_sram_utilization =
      List.fold_left (fun acc (_, u) -> Float.max acc u) 0. sram_utilization;
    unplaced = List.rev !unplaced;
  }
