(* Table geometry mirrors Figure 10 with the §6 encoding: IPv6 keys,
   16-bit digests, 6-bit versions, 64 versions provisioned per VIP. *)

let digest_bits = 16
let version_bits = 6
let tuple_bits = 37 * 8  (* IPv6 5-tuple on the match crossbar *)
let vip_bits = (16 + 2) * 8  (* VIP address + port *)
let dip_bits = (16 + 2) * 8

let silkroad_tables ~connections ~vips =
  assert (connections > 0 && vips > 0);
  let row_bits n =
    (* bits to address the rows holding n entries, 4-way packed *)
    let rec go acc m = if m <= 1 then acc else go (acc + 1) ((m + 1) / 2) in
    go 0 (Int.max 1 (n / 4))
  in
  [
    (* ConnTable: digest -> version, two cuckoo stages *)
    Asic.Table_spec.make ~name:"ConnTable" ~entries:connections ~match_key_bits:tuple_bits
      ~stored_key_bits:digest_bits ~action_data_bits:version_bits ~n_actions:2
      ~index_hash_bits:(2 * (row_bits connections + digest_bits))
      ~metadata_phv_bits:version_bits ();
    (* VIPTable: VIP -> current version + update phase *)
    Asic.Table_spec.make ~name:"VIPTable" ~entries:vips ~match_key_bits:vip_bits
      ~action_data_bits:(version_bits + 2) ~n_actions:2 ~index_hash_bits:(row_bits vips)
      ~metadata_phv_bits:(version_bits + 2) ();
    (* DIPPoolTable member table: (VIP, version) group -> DIP; one member
       entry per (version, DIP) *)
    Asic.Table_spec.make ~name:"DIPPoolTable" ~entries:(64 * vips)
      ~match_key_bits:(vip_bits + version_bits) ~action_data_bits:dip_bits ~n_actions:2
      ~index_hash_bits:(row_bits (64 * vips) + 14) ~metadata_phv_bits:0 ();
    (* LearnTable: trigger connection learning on ConnTable miss *)
    Asic.Table_spec.make ~name:"LearnTable" ~entries:1 ~match_key_bits:8 ~action_data_bits:0
      ~n_actions:1 ~metadata_phv_bits:2 ();
  ]

let transit_bloom_bits = 256 * 8
let transit_hashes = 2

let additional_resources ~connections ~vips =
  let tables = Asic.Resources.sum (List.map Asic.Table_spec.resources (silkroad_tables ~connections ~vips)) in
  let transit =
    (* Bloom filter on register memory: two banks of stateful ALUs plus
       two more for the learning notification / stats registers *)
    Asic.Resources.make ~sram_bits:transit_bloom_bits ~stateful_alus:4
      ~hash_bits:(transit_hashes * 11) ~vliw_actions:2 ~phv_bits:2 ()
  in
  (* intermediate metadata shared between the tables (Figure 10):
     old/new version, digest, update-phase flags *)
  let metadata = Asic.Resources.make ~phv_bits:(2 * version_bits + digest_bits + 4) () in
  Asic.Resources.sum [ tables; transit; metadata ]

(* The frozen switch.p4 baseline vector. Derived once from the additions
   our model computes at the paper's operating point (1M connections) and
   Table 2's published percentages; kept constant thereafter. *)
let baseline_switch_p4 =
  Asic.Resources.make ~match_crossbar_bits:1600 ~sram_bits:180_000_000 ~tcam_bits:2_000_000
    ~vliw_actions:48 ~hash_bits:345 ~stateful_alus:9 ~phv_bits:5200 ()

let table2 ~connections ~vips =
  Asic.Resources.relative_to ~base:baseline_switch_p4
    (additional_resources ~connections ~vips)
