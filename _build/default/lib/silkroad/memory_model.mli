(** Analytic SRAM model for ConnTable layouts and ASIC generations.

    Used by the scalability experiments (Table 1, Figures 12 and 14):
    given a cluster's connection count and address family, compute the
    switch SRAM needed under three ConnTable layouts —

    - [Naive]: full 5-tuple match key and full DIP action ("storing the
      states of ten million connections ... takes a few hundreds of MB");
    - [Digest_only]: 16-bit digest key, full DIP action;
    - [Digest_version]: 16-bit digest key and 6-bit version action, plus
      the DIPPoolTable indirection it requires.

    All sizes account for 112-bit word packing. *)

type layout =
  | Naive
  | Digest_only
  | Digest_version

type generation = {
  gen_name : string;
  gen_year : int;
  gen_tbps : float;
  gen_sram_mb_lo : int;
  gen_sram_mb_hi : int;
}

val asic_generations : generation list
(** Table 1: <1.6 Tbps / 2012 / 10–20 MB ... 6.4+ Tbps / 2016 /
    50–100 MB. *)

val conn_entry_bits : layout:layout -> ipv6:bool -> digest_bits:int -> version_bits:int -> int
(** Bits per ConnTable entry under the layout (including the 6-bit
    instruction/next-table overhead and, for [Naive]/[Digest_only], the
    DIP + port action data). *)

val conn_table_bits :
  layout:layout -> ipv6:bool -> digest_bits:int -> version_bits:int -> connections:int -> int
(** Word-packed ConnTable footprint. *)

val dip_pool_table_bits : ipv6:bool -> versions:int -> total_dips:int -> int
(** DIPPoolTable footprint: every live version holds its member DIPs
    ("64 versions of 4187 IPv6 DIPs" ≈ 4.8 MB). [total_dips] is the
    total membership across the VIPs' pools. *)

val switch_bits :
  layout:layout ->
  ipv6:bool ->
  digest_bits:int ->
  version_bits:int ->
  connections:int ->
  versions:int ->
  total_dips:int ->
  int
(** Full data-plane footprint of a layout: ConnTable plus (for
    [Digest_version]) DIPPoolTable. *)

val saving_percent : baseline:int -> compact:int -> float
(** [100 * (1 - compact/baseline)] — the Figure 14 metric. *)

val mb : int -> float
(** Bits to MiB, for reporting. *)
