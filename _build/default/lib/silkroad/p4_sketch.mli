(** Emit the SilkRoad data plane as a P4_16 program sketch.

    The paper's artifact is "defined in a 400 line P4 program" on top of
    a baseline switch.p4. This module renders that program from a
    {!Config.t}: the same tables (ConnTable, VIPTable, DIPPoolTable,
    LearnTable), the TransitTable register pair, the digest/version
    metadata, and the Figure-10 control flow, with sizes taken from the
    configuration. It is a faithful sketch for porting back onto a real
    programmable ASIC — not something this repository compiles.

    [silkroad_cli p4] prints it. *)

val emit : Config.t -> string
(** The program text (P4_16, v1model-flavoured). *)

val line_count : Config.t -> int
