type dip_state = {
  mutable misses : int;
  mutable marked_down : bool;
}

type t = {
  interval : float;
  threshold : int;
  probe_bytes : int;
  is_alive : Netcore.Endpoint.t -> bool;
  dips : Netcore.Endpoint.t list;
  states : (Netcore.Endpoint.t, dip_state) Hashtbl.t;
  mutable next_round : float;
  mutable probes_sent : int;
}

let create ?(interval = 10.) ?(threshold = 3) ?(probe_bytes = 100) ~is_alive ~dips () =
  assert (interval > 0. && threshold >= 1 && probe_bytes > 0);
  let states = Hashtbl.create (List.length dips) in
  List.iter (fun d -> Hashtbl.replace states d { misses = 0; marked_down = false }) dips;
  { interval; threshold; probe_bytes; is_alive; dips; states; next_round = 0.; probes_sent = 0 }

let probe_round t =
  List.filter_map
    (fun dip ->
      t.probes_sent <- t.probes_sent + 1;
      let st = Hashtbl.find t.states dip in
      if t.is_alive dip then begin
        st.misses <- 0;
        if st.marked_down then begin
          st.marked_down <- false;
          Some (dip, `Up)
        end
        else None
      end
      else begin
        st.misses <- st.misses + 1;
        if (not st.marked_down) && st.misses >= t.threshold then begin
          st.marked_down <- true;
          Some (dip, `Down)
        end
        else None
      end)
    t.dips

let advance t ~now =
  let events = ref [] in
  while t.next_round <= now do
    events := !events @ probe_round t;
    t.next_round <- t.next_round +. t.interval
  done;
  !events

let is_marked_down t dip =
  match Hashtbl.find_opt t.states dip with
  | Some st -> st.marked_down
  | None -> false

let probes_sent t = t.probes_sent

let probe_bandwidth_bps ~dips ~interval ~probe_bytes =
  float_of_int (dips * probe_bytes * 8) /. interval
