type demand = {
  gbps : float;
  mpps : float;
  connections : int;
}

let slb_mpps = 12.
let slb_gbps = 10.
let slb_watts = 200.
let slb_usd = 3_000.

let silkroad_gpps = 10.
let silkroad_tbps = 6.4
let silkroad_connections = 10_000_000
let silkroad_watts = 300.
let silkroad_usd = 10_000.

let demand_of_traffic ~gbps ~avg_packet_bytes ~connections =
  assert (gbps >= 0. && avg_packet_bytes > 0 && connections >= 0);
  let mpps = gbps *. 1e9 /. 8. /. float_of_int avg_packet_bytes /. 1e6 in
  { gbps; mpps; connections }

let ceil_div_f x y = Int.max 1 (int_of_float (Float.ceil (x /. y)))

let slb_count d =
  Int.max (ceil_div_f d.gbps slb_gbps) (ceil_div_f d.mpps slb_mpps)

let silkroad_count d =
  let by_traffic = ceil_div_f d.gbps (silkroad_tbps *. 1000.) in
  let by_pps = ceil_div_f d.mpps (silkroad_gpps *. 1000.) in
  let by_conns =
    Int.max 1
      (int_of_float
         (Float.ceil (float_of_int d.connections /. float_of_int silkroad_connections)))
  in
  Int.max by_traffic (Int.max by_pps by_conns)

let replacement_ratio d = float_of_int (slb_count d) /. float_of_int (silkroad_count d)

type comparison = {
  slb_watts_per_gpps : float;
  silkroad_watts_per_gpps : float;
  power_ratio : float;
  slb_usd_per_gpps : float;
  silkroad_usd_per_gpps : float;
  cost_ratio : float;
}

let power_and_cost () =
  let slb_gpps = slb_mpps /. 1000. in
  let slb_watts_per_gpps = slb_watts /. slb_gpps in
  let silkroad_watts_per_gpps = silkroad_watts /. silkroad_gpps in
  let slb_usd_per_gpps = slb_usd /. slb_gpps in
  let silkroad_usd_per_gpps = silkroad_usd /. silkroad_gpps in
  {
    slb_watts_per_gpps;
    silkroad_watts_per_gpps;
    power_ratio = slb_watts_per_gpps /. silkroad_watts_per_gpps;
    slb_usd_per_gpps;
    silkroad_usd_per_gpps;
    cost_ratio = slb_usd_per_gpps /. silkroad_usd_per_gpps;
  }
