lib/silkroad/switch_group.ml: Array Asic Config Int Lb List Netcore Printf Switch
