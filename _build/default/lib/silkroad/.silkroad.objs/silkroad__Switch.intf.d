lib/silkroad/switch.mli: Asic Config Conn_table Dip_pool_table Lb Netcore Vip_table
