lib/silkroad/hybrid.mli: Config Lb Netcore Switch
