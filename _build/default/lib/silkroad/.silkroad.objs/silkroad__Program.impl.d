lib/silkroad/program.ml: Asic Int List
