lib/silkroad/dip_pool_table.ml: Array Hashtbl Lb List Netcore Version
