lib/silkroad/hybrid.ml: Config Conn_table Hashtbl Lb List Netcore Switch
