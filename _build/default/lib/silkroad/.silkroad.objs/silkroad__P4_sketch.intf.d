lib/silkroad/p4_sketch.mli: Config
