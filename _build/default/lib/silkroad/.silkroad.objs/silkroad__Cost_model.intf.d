lib/silkroad/cost_model.mli:
