lib/silkroad/memory_model.ml: Asic
