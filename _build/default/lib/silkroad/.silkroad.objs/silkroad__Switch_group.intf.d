lib/silkroad/switch_group.mli: Config Lb Netcore Switch
