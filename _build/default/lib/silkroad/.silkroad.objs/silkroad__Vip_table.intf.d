lib/silkroad/vip_table.mli: Netcore
