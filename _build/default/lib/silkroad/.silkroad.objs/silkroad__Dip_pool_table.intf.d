lib/silkroad/dip_pool_table.mli: Lb Netcore
