lib/silkroad/conn_table.ml: Asic Config Hashtbl List Netcore
