lib/silkroad/version.mli:
