lib/silkroad/assignment.mli: Netcore
