lib/silkroad/health_checker.mli: Netcore
