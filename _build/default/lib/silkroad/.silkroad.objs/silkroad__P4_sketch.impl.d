lib/silkroad/p4_sketch.ml: Buffer Config Format Int List String
