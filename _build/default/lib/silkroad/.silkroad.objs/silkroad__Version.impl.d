lib/silkroad/version.ml: Array Queue
