lib/silkroad/memory_model.mli:
