lib/silkroad/assignment.ml: Float Int List Netcore
