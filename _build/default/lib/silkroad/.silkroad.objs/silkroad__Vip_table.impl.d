lib/silkroad/vip_table.ml: Hashtbl Netcore
