lib/silkroad/health_checker.ml: Hashtbl List Netcore
