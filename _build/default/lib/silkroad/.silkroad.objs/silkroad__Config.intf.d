lib/silkroad/config.mli:
