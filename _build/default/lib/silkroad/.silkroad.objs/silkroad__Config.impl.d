lib/silkroad/config.ml: Float Int Result
