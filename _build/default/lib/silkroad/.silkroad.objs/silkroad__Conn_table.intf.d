lib/silkroad/conn_table.mli: Config Netcore
