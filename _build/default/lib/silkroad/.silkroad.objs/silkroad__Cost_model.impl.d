lib/silkroad/cost_model.ml: Float Int
