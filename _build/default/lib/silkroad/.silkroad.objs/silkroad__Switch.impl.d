lib/silkroad/switch.ml: Asic Config Conn_table Dip_pool_table Format Hashtbl Lb List Logs Netcore Option Queue Vip_table
