lib/silkroad/program.mli: Asic
