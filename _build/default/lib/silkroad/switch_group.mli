(** A group of redundant SilkRoad switches (§7, "Handle switch
    failures").

    In a real deployment every VIP is announced by several switches and
    ECMP splits the flows between them; all switches see the same
    DIP-pool updates and therefore hold identical {e latest} VIPTables.
    When one fails, its flows re-hash onto the survivors, where:

    - connections that used the latest version map identically (same
      VIPTable, same hash) — PCC preserved;
    - connections pinned to an {e old} version in the dead switch's
      ConnTable are lost and get re-hashed under the latest pool —
      exactly the breakage the paper says matches an SLB failure.

    Exposed as a single {!Lb.Balancer.t}; call {!fail} to kill a member
    mid-run. *)

type t

val create :
  ?cfg:Config.t -> seed:int -> switches:int ->
  vips:(Netcore.Endpoint.t * Lb.Dip_pool.t) list -> unit -> t
(** [switches >= 2] identical switches, all carrying all VIPs. *)

val balancer : t -> Lb.Balancer.t
val members : t -> Switch.t array
val alive : t -> int

val fail : t -> int -> unit
(** Kill member [i]: its ConnTable is lost and its flows re-hash to the
    survivors. Raises [Invalid_argument] if it is the last one alive. *)
