(** The SilkRoad P4 program's hardware footprint (Table 2).

    The paper implements SilkRoad in ~400 lines of P4 on top of a
    baseline [switch.p4] (~5000 lines of L2/L3/ACL/QoS) and reports the
    {e additional} pipeline resources at 1 M connection entries,
    normalized by the baseline's usage. We rebuild the addition from the
    table inventory of Figure 10 (ConnTable, VIPTable, DIPPoolTable,
    TransitTable, LearnTable) via {!Asic.Table_spec}, and normalize by a
    fixed baseline resource vector representing [switch.p4] (constants
    below, derived once from the paper's implied totals and kept
    frozen — so changes to our model show up as drift from Table 2). *)

val silkroad_tables : connections:int -> vips:int -> Asic.Table_spec.t list
(** The match-action tables SilkRoad adds, sized for the given scale
    (IPv6 keys, 16-bit digests, 6-bit versions, 64 versions/VIP
    provisioned in DIPPoolTable). *)

val additional_resources : connections:int -> vips:int -> Asic.Resources.t
(** Table resources plus the TransitTable register array / stateful
    ALUs and the metadata PHV bits. *)

val baseline_switch_p4 : Asic.Resources.t
(** The frozen baseline [switch.p4] resource vector. *)

val table2 : connections:int -> vips:int -> Asic.Resources.percentages
(** Additional usage as percentages of the baseline — Table 2's rows. *)
