(** DIP-pool version numbers and their allocator.

    SilkRoad stores a small version number in each ConnTable entry
    instead of the DIP itself (§4.2). Versions are a finite resource
    (2^version_bits, 64 by default), so freed numbers return to a ring
    buffer for reassignment; the paper observed 6 bits suffice for
    production update patterns once versions are {e reused} across
    remove/add pairs. *)

type t

val create : bits:int -> t
(** All 2^bits version numbers free. *)

val bits : t -> int
val capacity : t -> int
val free_count : t -> int
val allocated_count : t -> int

val allocate : t -> (int, [ `Exhausted ]) result
(** Take the next free version number from the ring buffer. *)

val release : t -> int -> unit
(** Return a version to the ring buffer. Raises [Invalid_argument] if it
    was not allocated. *)

val is_allocated : t -> int -> bool
val exhaustions : t -> int
(** How many allocations have failed — the paper's "very rare chance
    that we use out all the versions". *)
