(** Capacity, power and capital-cost comparison between SLB fleets and
    SilkRoad switches (§6.1, Figure 13 and the cost paragraph).

    Constants come straight from the paper: an SLB sustains 12 Mpps of
    52-byte packets on 8 cores behind a 10 Gbps NIC, costs ≈ 3 K USD and
    draws ≈ 200 W (Intel Xeon E5-2660); a SilkRoad on a 6.4 Tbps ASIC
    forwards ≈ 10 Gpps, holds 10 M connections, costs ≈ 10 K USD and
    draws ≈ 300 W. *)

type demand = {
  gbps : float;  (** peak load-balanced traffic *)
  mpps : float;  (** peak packet rate *)
  connections : int;  (** peak simultaneous connections *)
}

val demand_of_traffic : gbps:float -> avg_packet_bytes:int -> connections:int -> demand

val slb_count : demand -> int
(** SLBs needed: the binding constraint of NIC line rate (10 Gbps) and
    packet rate (12 Mpps). Always at least 1. *)

val silkroad_count : demand -> int
(** SilkRoad switches needed: the binding constraint of forwarding
    capacity (6.4 Tbps / 10 Gpps) and ConnTable size (10 M). At least 1. *)

val replacement_ratio : demand -> float
(** [#SLBs / #SilkRoads] — Figure 13's metric. *)

type comparison = {
  slb_watts_per_gpps : float;
  silkroad_watts_per_gpps : float;
  power_ratio : float;  (** SLB power / SilkRoad power, same throughput *)
  slb_usd_per_gpps : float;
  silkroad_usd_per_gpps : float;
  cost_ratio : float;
}

val power_and_cost : unit -> comparison
(** ≈ 500x power and ≈ 250x capital-cost advantage (§6.1). *)

(** Paper constants, exposed for tests and reports. *)

val slb_mpps : float
val slb_gbps : float
val slb_watts : float
val slb_usd : float
val silkroad_gpps : float
val silkroad_tbps : float
val silkroad_connections : int
val silkroad_watts : float
val silkroad_usd : float
