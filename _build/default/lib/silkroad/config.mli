(** SilkRoad switch configuration.

    Defaults follow the paper's evaluation setup (§6): 16-bit digests,
    6-bit versions, a 256-byte TransitTable Bloom filter, a learning
    filter of 2K events with 1 ms timeout, and a switch CPU sustaining
    200K ConnTable insertions per second. *)

type t = {
  digest_bits : int;  (** ConnTable match digest width (16) *)
  version_bits : int;  (** DIP-pool version width (6) *)
  conn_table_stages : int;  (** physical stages ConnTable spans *)
  conn_table_rows : int;  (** rows per stage *)
  conn_table_ways : int;  (** entries per row (word packing) *)
  transit_bytes : int;  (** TransitTable Bloom filter size in bytes (256) *)
  transit_hashes : int;  (** Bloom probe count (2) *)
  learning_capacity : int;  (** learning filter capacity in events (2048) *)
  learning_timeout : float;  (** learning filter timeout in seconds (1e-3) *)
  cpu_insertions_per_sec : float;  (** switch CPU insertion rate (200e3) *)
  idle_timeout : float;  (** ConnTable entry expiry for silent flows (60 s) *)
  use_transit : bool;
      (** when false, DIP-pool updates execute immediately with no
          TransitTable protection — the "SilkRoad without TransitTable"
          arm of Figure 16 *)
  seed : int;
}

val default : t
(** 2 stages x 131072 rows x 4 ways ≈ 1M-entry ConnTable, paper-default
    parameters elsewhere. *)

val sized_for : connections:int -> t
(** A configuration whose ConnTable holds [connections] entries at ~85%
    target occupancy (4 stages, 4 ways). *)

val conn_capacity : t -> int
(** Total ConnTable slots. *)

val max_versions : t -> int
(** 2^version_bits. *)

val validate : t -> (unit, string) result
(** Check the invariants (positive sizes, digest 1..30 bits, ...). *)
