type layout =
  | Naive
  | Digest_only
  | Digest_version

type generation = {
  gen_name : string;
  gen_year : int;
  gen_tbps : float;
  gen_sram_mb_lo : int;
  gen_sram_mb_hi : int;
}

let asic_generations =
  [
    { gen_name = "<1.6 Tbps (Trident II / FlexPipe)"; gen_year = 2012; gen_tbps = 1.6;
      gen_sram_mb_lo = 10; gen_sram_mb_hi = 20 };
    { gen_name = "3.2 Tbps (Tomahawk / XPliant)"; gen_year = 2014; gen_tbps = 3.2;
      gen_sram_mb_lo = 30; gen_sram_mb_hi = 60 };
    { gen_name = "6.4+ Tbps (Tofino / Tomahawk II / Spectrum)"; gen_year = 2016; gen_tbps = 6.4;
      gen_sram_mb_lo = 50; gen_sram_mb_hi = 100 };
  ]

(* §6 footnote 5: "an instruction address and a next table address". *)
let overhead_bits = 6

(* action data: DIP address + port *)
let dip_action_bits ~ipv6 = if ipv6 then (16 + 2) * 8 else (4 + 2) * 8

(* match key: the 5-tuple *)
let tuple_key_bits ~ipv6 = if ipv6 then 37 * 8 else 13 * 8

let conn_entry_bits ~layout ~ipv6 ~digest_bits ~version_bits =
  match layout with
  | Naive -> tuple_key_bits ~ipv6 + dip_action_bits ~ipv6 + overhead_bits
  | Digest_only -> digest_bits + dip_action_bits ~ipv6 + overhead_bits
  | Digest_version -> digest_bits + version_bits + overhead_bits

let conn_table_bits ~layout ~ipv6 ~digest_bits ~version_bits ~connections =
  let entry_bits = conn_entry_bits ~layout ~ipv6 ~digest_bits ~version_bits in
  Asic.Sram.bits_for_entries ~entry_bits ~entries:connections

let dip_pool_table_bits ~ipv6 ~versions ~total_dips =
  let member_bits = dip_action_bits ~ipv6 in
  versions * total_dips * member_bits

let switch_bits ~layout ~ipv6 ~digest_bits ~version_bits ~connections ~versions ~total_dips =
  let conn = conn_table_bits ~layout ~ipv6 ~digest_bits ~version_bits ~connections in
  match layout with
  | Naive | Digest_only -> conn
  | Digest_version -> conn + dip_pool_table_bits ~ipv6 ~versions ~total_dips

let saving_percent ~baseline ~compact =
  if baseline = 0 then 0.
  else 100. *. (1. -. (float_of_int compact /. float_of_int baseline))

let mb = Asic.Sram.mib_of_bits
