(** DIP health checking (§7, "Handle DIP failures").

    Switches already run BFD-style liveness probes; SilkRoad points them
    at the DIPs: every [interval] seconds each DIP is probed, a DIP that
    misses [threshold] consecutive probes is declared down and removed
    from its pools, and a recovered DIP is re-added (feeding the version
    allocator's reuse path).

    The checker is driven by the simulation clock ({!advance}) and reads
    ground-truth liveness from a callback; it emits the
    {!Lb.Balancer.update}s a control loop would push into the switch.

    {!probe_bandwidth_bps} reproduces the paper's overhead estimate:
    probing 10 K DIPs every 10 s with 100-byte packets costs ~800 kbps
    (the paper rounds the same arithmetic to "around 800 Kbps"). *)

type t

val create :
  ?interval:float ->
  ?threshold:int ->
  ?probe_bytes:int ->
  is_alive:(Netcore.Endpoint.t -> bool) ->
  dips:Netcore.Endpoint.t list ->
  unit ->
  t
(** Defaults: probe every 10 s, declare down after 3 missed probes,
    100-byte probes. *)

val advance : t -> now:float -> (Netcore.Endpoint.t * [ `Down | `Up ]) list
(** Run all probes due by [now] (in order) and return the state
    transitions detected, oldest first. A [`Down] transition should be
    turned into [Dip_remove] on every pool containing the DIP; [`Up]
    into [Dip_add]. *)

val is_marked_down : t -> Netcore.Endpoint.t -> bool
val probes_sent : t -> int

val probe_bandwidth_bps : dips:int -> interval:float -> probe_bytes:int -> float
(** Probe traffic this checker injects. *)
