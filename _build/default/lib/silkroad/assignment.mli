(** Network-wide VIP-to-layer assignment (§5.3, Figure 11).

    Rather than load balancing every VIP at its first-hop switch, the
    operator may pin each VIP to one switch layer (ToR / Aggregation /
    Core); the VIP's traffic then ECMP-splits over that layer's
    SilkRoad switches, and so does its connection state. The paper
    formulates choosing the layer as a bin-packing problem: minimize the
    maximum SRAM utilization across switches subject to per-switch
    forwarding capacity and SRAM budget.

    We implement the natural greedy heuristic (first-fit decreasing by
    memory demand), which is the standard approximation for min-max bin
    packing. *)

type layer = {
  layer_name : string;
  switches : int;  (** SilkRoad-enabled switches in the layer *)
  sram_budget_bits : int;  (** per-switch SRAM budget for load balancing *)
  capacity_gbps : float;  (** per-switch forwarding budget *)
}

type vip_demand = {
  vip : Netcore.Endpoint.t;
  conn_bits : int;  (** ConnTable + DIPPoolTable bits the VIP needs *)
  traffic_gbps : float;
}

type placement = {
  assignment : (Netcore.Endpoint.t * string) list;  (** VIP → layer name *)
  sram_utilization : (string * float) list;  (** per layer, of one switch *)
  traffic_utilization : (string * float) list;
  max_sram_utilization : float;
  unplaced : Netcore.Endpoint.t list;  (** VIPs no layer could host *)
}

val assign : layers:layer list -> vips:vip_demand list -> placement
(** Greedy min-max assignment. A VIP's demand divides evenly over the
    layer's switches (ECMP). VIPs that would push every layer past its
    SRAM or traffic budget are reported unplaced. *)
